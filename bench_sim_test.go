package repro

// Simulation-throughput benchmarks for the fast Titan execution engine:
// host ns per simulated cycle of titan.Machine.Run (the engine) vs
// RunReference (the reference interpreter) on the E-series evaluation
// workloads at one processor and on a large synthetic doall at four.
// Besides the standard benchmark output, every measured sub-benchmark is
// recorded and TestMain writes the set — plus the engine/reference
// speedups the change claims — to BENCH_sim.json so CI can archive the
// numbers per commit:
//
//	go test -run=NONE -bench=Simulate -benchtime=1x .
//
// Each row carries ns_per_op, the workload's simulated cycle count,
// host ns per simulated cycle, the modelled machine's simulated MFLOPS,
// and allocs/op.

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/titan"
)

// simBenchRow is one sub-benchmark's result as written to BENCH_sim.json.
type simBenchRow struct {
	Name          string  `json:"name"`
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"` // "fast" or "ref"
	Processors    int     `json:"processors"`
	N             int     `json:"n"`
	NsPerOp       float64 `json:"ns_per_op"`
	SimCycles     int64   `json:"sim_cycles"`
	NsPerSimCycle float64 `json:"ns_per_sim_cycle"`
	SimMFLOPS     float64 `json:"sim_mflops"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

var simBench struct {
	mu   sync.Mutex
	rows []simBenchRow
}

// recordSimBench keeps one row per sub-benchmark: the fastest
// measurement across b.N calibration stages and -count repetitions.
// Minimum-of-runs is the standard noise-robust estimator — on a shared
// host the fastest run is the one with the least interference — with a
// guard so a lucky one-iteration calibration run cannot displace a
// long measurement.
func recordSimBench(r simBenchRow) {
	simBench.mu.Lock()
	defer simBench.mu.Unlock()
	for i := range simBench.rows {
		old := &simBench.rows[i]
		if old.Name == r.Name {
			if r.NsPerSimCycle < old.NsPerSimCycle && 10*r.N >= old.N {
				*old = r
			}
			return
		}
	}
	simBench.rows = append(simBench.rows, r)
}

// simBenchSpeedups distills the recorded rows into the two headline
// ratios: reference ns-per-simulated-cycle over engine
// ns-per-simulated-cycle, as a geometric mean across the E-series at one
// processor and directly on the synthetic doall at four.
func simBenchSpeedups(rows []simBenchRow) (eseriesGeomean, doallP4 float64) {
	type pair struct{ fast, ref float64 }
	byKey := map[string]*pair{}
	for _, r := range rows {
		key := r.Workload + "/p" + strconv.Itoa(r.Processors)
		p := byKey[key]
		if p == nil {
			p = &pair{}
			byKey[key] = p
		}
		if r.Engine == "fast" {
			p.fast = r.NsPerSimCycle
		} else {
			p.ref = r.NsPerSimCycle
		}
	}
	prod, n := 1.0, 0
	for key, p := range byKey {
		if p.fast <= 0 || p.ref <= 0 {
			continue
		}
		switch {
		case key == "syntheticdoall/p4":
			doallP4 = p.ref / p.fast
		case strings.HasSuffix(key, "/p1") && !strings.HasPrefix(key, "syntheticdoall"):
			prod *= p.ref / p.fast
			n++
		}
	}
	if n > 0 {
		eseriesGeomean = math.Pow(prod, 1.0/float64(n))
	}
	return eseriesGeomean, doallP4
}

// benchSimulate measures one engine on one compiled workload at one
// processor count, recording the row for the JSON artifact. The machine
// is rebuilt every iteration (machines are single-use); the program is
// compiled and decoded once outside the timed region.
func benchSimulate(b *testing.B, prog *titan.Program, workload string, procs int, fast bool) {
	run := func() (titan.Result, error) {
		m := titan.NewMachine(prog, procs)
		if fast {
			return m.Run("main")
		}
		return m.RunReference("main")
	}
	first, err := run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Machines are single-use; build each outside the timed
		// region so ns/op measures engine execution, not the cost of
		// allocating and zeroing the 16 MB memory slab (identical for
		// both engines).
		b.StopTimer()
		m := titan.NewMachine(prog, procs)
		b.StartTimer()
		var res titan.Result
		if fast {
			res, err = m.Run("main")
		} else {
			res, err = m.RunReference("main")
		}
		if err != nil {
			b.Fatal(err)
		}
		if res != first {
			b.Fatal("nondeterministic result")
		}
	}
	b.StopTimer()
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	engine := "ref"
	if fast {
		engine = "fast"
	}
	recordSimBench(simBenchRow{
		Name:          b.Name(),
		Workload:      workload,
		Engine:        engine,
		Processors:    procs,
		N:             b.N,
		NsPerOp:       nsPerOp,
		SimCycles:     first.Cycles,
		NsPerSimCycle: nsPerOp / float64(first.Cycles),
		SimMFLOPS:     first.MFLOPS(),
		AllocsPerOp:   float64(testing.AllocsPerRun(1, func() { _, _ = run() })),
	})
}

// BenchmarkSimulate is the engine-vs-reference suite: every E-series
// workload at one processor, and the large synthetic doall at four
// (where the reference serializes four full per-processor interpreter
// passes per region). The fast/ref pairs on identical programs are the
// measured claim of this change.
func BenchmarkSimulate(b *testing.B) {
	// The E-series at benchmark size (well above the differential
	// tests' 512) so simulated work dominates each run, plus the
	// parallel doall sized for many strips per processor per region.
	workloads := []bench.Workload{
		bench.Backsolve(4096),
		bench.Daxpy(16384),
		bench.CopyLoop(16384),
		bench.ReverseAxpy(16384),
		bench.VectorAdd(16384),
		bench.Transform4x4(4096),
		bench.SyntheticDoall(16384, 8),
	}
	for _, w := range workloads {
		w := w
		name, procs := w.Name, 1
		if w.Name == "syntheticdoall" {
			procs = 4
		}
		res, err := driver.Compile(w.Src, driver.FullOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []string{"fast", "ref"} {
			eng := eng
			b.Run(name+"/p"+strconv.Itoa(procs)+"/"+eng, func(b *testing.B) {
				benchSimulate(b, res.Machine, name, procs, eng == "fast")
			})
		}
	}
}
