package repro

// Golden coverage of the diagnostics layer: every §9 E-series workload,
// compiled at full optimization, must emit the pinned remark stream —
// one vectorize-or-not and one parallelize-or-not verdict per loop, with
// a stable code, a nonzero source position, and the blocking dependence
// named on rejection. Regenerate after an intentional pipeline change:
//
//	UPDATE_GOLDEN=1 go test -run TestESeriesRemarksGolden .

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/diag"
	"repro/internal/driver"
	"repro/internal/pass"
)

// compileRemarks runs the full pipeline over src and returns the sorted
// diagnostic stream.
func compileRemarks(t *testing.T, src string) []diag.Diagnostic {
	t.Helper()
	ctx := pass.NewContext()
	if _, err := driver.CompileWith(src, driver.FullOptions(), ctx); err != nil {
		t.Fatal(err)
	}
	return ctx.Diags.All()
}

// remarkWorkloads is the golden-remark corpus: the §9 E-series suite
// plus the conditional (if-converted, masked) workloads.
func remarkWorkloads() []bench.Workload {
	return append(eseriesWorkloads(), maskedWorkloads()...)
}

func TestESeriesRemarksGolden(t *testing.T) {
	for _, w := range remarkWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			for _, d := range compileRemarks(t, w.Src) {
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			path := filepath.Join("testdata", "remarks", strings.ToLower(w.Name)+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1): %v", path, err)
			}
			if string(want) != got {
				t.Errorf("remark stream for %s drifted.\n--- want\n%s\n--- got\n%s", w.Name, want, got)
			}
		})
	}
}

// TestESeriesRemarkInvariants asserts the properties the golden files
// rely on, independent of their exact text: every diagnostic is
// positioned, each loop gets at most one verdict per phase, and every
// dependence-based rejection names the blocking dependence.
func TestESeriesRemarkInvariants(t *testing.T) {
	for _, w := range remarkWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ds := compileRemarks(t, w.Src)
			if len(ds) == 0 {
				t.Fatal("full pipeline emitted no diagnostics")
			}
			var vect, par int
			seen := map[string]bool{}
			// The vectorizer must pass exactly one verdict per examined
			// loop; vect-if-converted and vect-interchanged are
			// transformation notes, not verdicts, so a loop that was
			// if-converted still gets its single verdict (vect-masked,
			// vect-vectorized, or a rejection) at the same position.
			verdicts := map[diag.Code]bool{
				diag.VectVectorized: true, diag.VectMasked: true,
				diag.VectDepCycle: true, diag.VectNotNormalized: true,
				diag.VectEmptyBody: true, diag.VectScalarFlow: true,
				diag.VectBarrier: true, diag.VectNotAffine: true,
				diag.VectIfRejected: true,
			}
			verdictAt := map[string]int{}
			verdictInProc := map[string]int{}
			ifConvProc := map[string]bool{}
			for _, d := range ds {
				loop := d.Proc + "|" + d.Pos.String()
				if verdicts[d.Code] {
					verdictAt[loop]++
					verdictInProc[d.Proc]++
				}
				if d.Code == diag.VectIfConverted {
					ifConvProc[d.Proc] = true
				}
			}
			for loop, n := range verdictAt {
				if n > 1 {
					t.Errorf("loop %s got %d vectorizer verdicts, want exactly one", loop, n)
				}
			}
			// The note rides at the If's own position; the examined loop
			// still gets its single verdict, so an if-converting proc
			// without any verdict means the loop escaped judgment.
			for proc := range ifConvProc {
				if verdictInProc[proc] == 0 {
					t.Errorf("proc %s if-converted a conditional but got no vectorizer verdict", proc)
				}
			}
			for _, d := range ds {
				if d.Pos.Line == 0 {
					t.Errorf("diagnostic %s has zero position: %s", d.Code, d)
				}
				key := string(d.Code) + "|" + d.Proc + "|" + d.Pos.String()
				if seen[key] {
					t.Errorf("duplicate verdict %s at %s in %s", d.Code, d.Pos, d.Proc)
				}
				seen[key] = true
				code := string(d.Code)
				switch {
				case strings.HasPrefix(code, "vect-"):
					vect++
				case strings.HasPrefix(code, "par-"):
					par++
				}
				// A rejection that blames a dependence must name it.
				if d.Code == diag.VectDepCycle || d.Code == diag.ParCarriedDep {
					if d.Args["dep"] == "" {
						t.Errorf("%s at %s does not name the blocking dependence", d.Code, d.Pos)
					}
				}
			}
			if vect == 0 {
				t.Error("no vectorize-or-not verdict emitted")
			}
			if par == 0 {
				t.Error("no parallelize-or-not verdict emitted")
			}
		})
	}
}
