package repro

// DOACROSS speedup benchmarks: simulated kernel cycles of the recurrence
// suite (internal/bench.LagRecurrence, SmoothDamp, Wavefront) compiled
// serial (full pipeline, parallelization off) versus DOACROSS (full
// pipeline) at two and four processors. Cycle counts are deterministic,
// so one iteration measures everything; besides the standard benchmark
// output every row is recorded and TestMain writes the set to
// BENCH_doacross.json so CI can archive — and smoke-check — the numbers
// per commit:
//
//	go test -run=NONE -bench=Doacross -benchtime=1x .

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
)

// doacrossBenchRow is one workload's result as written to
// BENCH_doacross.json. Cycles are kernel-differential (the init and
// checksum loops are measured separately and subtracted), so the row
// compares exactly the loop that pipelines.
type doacrossBenchRow struct {
	Workload         string  `json:"workload"`
	N                int     `json:"n"`
	SerialCycles     int64   `json:"serial_cycles"`
	DoacrossP2Cycles int64   `json:"doacross_p2_cycles"`
	DoacrossP4Cycles int64   `json:"doacross_p4_cycles"`
	SpeedupP2        float64 `json:"speedup_p2"`
	SpeedupP4        float64 `json:"speedup_p4"`
}

var doacrossBench struct {
	mu   sync.Mutex
	rows []doacrossBenchRow
}

func recordDoacrossBench(r doacrossBenchRow) {
	doacrossBench.mu.Lock()
	defer doacrossBench.mu.Unlock()
	for _, old := range doacrossBench.rows {
		if old.Workload == r.Workload {
			return // deterministic: every run records the same row
		}
	}
	doacrossBench.rows = append(doacrossBench.rows, r)
}

// BenchmarkDoacross measures the recurrence suite serial vs DOACROSS.
// ns/op is compile+simulate host time (incidental); the artifact rows
// carry the simulated cycle counts, which are the claim of this change.
func BenchmarkDoacross(b *testing.B) {
	const n = 4096
	workloads := []bench.Workload{
		bench.LagRecurrence(n),
		bench.SmoothDamp(n),
		bench.Wavefront(n),
	}
	serialCfg := bench.Config{Name: "serial", Opts: serialOptions(), Processors: 1}
	for _, w := range workloads {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var row doacrossBenchRow
			for i := 0; i < b.N; i++ {
				ser, err := bench.Run(w, serialCfg)
				if err != nil {
					b.Fatal(err)
				}
				p2, err := bench.Run(w, bench.Config{Name: "doacross", Opts: driver.FullOptions(), Processors: 2})
				if err != nil {
					b.Fatal(err)
				}
				p4, err := bench.Run(w, bench.Config{Name: "doacross", Opts: driver.FullOptions(), Processors: 4})
				if err != nil {
					b.Fatal(err)
				}
				row = doacrossBenchRow{
					Workload:         w.Name,
					N:                n,
					SerialCycles:     ser.KernelCycles,
					DoacrossP2Cycles: p2.KernelCycles,
					DoacrossP4Cycles: p4.KernelCycles,
					SpeedupP2:        bench.Speedup(ser, p2),
					SpeedupP4:        bench.Speedup(ser, p4),
				}
			}
			b.ReportMetric(float64(row.SerialCycles), "serial_cycles")
			b.ReportMetric(float64(row.DoacrossP4Cycles), "doacross_p4_cycles")
			b.ReportMetric(row.SpeedupP4, "speedup_p4")
			recordDoacrossBench(row)
		})
	}
}
