package repro

// Differential validation of the fast Titan execution engine: on every
// E-series evaluation workload, compiled at full optimization, the
// engine (titan.Machine.Run) must produce a bit-identical Result —
// cycles, flops, instruction count, exit code, and output — to the
// reference interpreter (RunReference) at every supported processor
// count. Run with -race these tests also prove the goroutine-backed
// parallel regions clean.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/driver"
	"repro/internal/titan"
)

// eseriesWorkloads is the §9 evaluation set at a size that exercises
// multiple vector strips and parallel chunks per processor.
func eseriesWorkloads() []bench.Workload {
	return []bench.Workload{
		bench.Backsolve(512),
		bench.Daxpy(512),
		bench.CopyLoop(512),
		bench.ReverseAxpy(512),
		bench.VectorAdd(512),
		bench.Transform4x4(64),
	}
}

func TestEngineMatchesReferenceOnESeries(t *testing.T) {
	for _, w := range eseriesWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			res, err := driver.Compile(w.Src, driver.FullOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 2, 4} {
				fast, errF := titan.NewMachine(res.Machine, procs).Run("main")
				ref, errR := titan.NewMachine(res.Machine, procs).RunReference("main")
				if errF != nil || errR != nil {
					t.Fatalf("p=%d: engine err %v, reference err %v", procs, errF, errR)
				}
				if fast != ref {
					t.Errorf("p=%d: engine %+v != reference %+v", procs, fast, ref)
				}
			}
		})
	}
}

// TestEngineDeterministicOnSyntheticDoall runs the large parallel
// workload repeatedly at 4 processors: goroutine scheduling must never
// reach the simulated Result.
func TestEngineDeterministicOnSyntheticDoall(t *testing.T) {
	w := bench.SyntheticDoall(2048, 4)
	res, err := driver.Compile(w.Src, driver.FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	var first titan.Result
	for i := 0; i < 10; i++ {
		got, err := titan.NewMachine(res.Machine, 4).Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
			ref, err := titan.NewMachine(res.Machine, 4).RunReference("main")
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("engine %+v != reference %+v", got, ref)
			}
		} else if got != first {
			t.Fatalf("run %d: %+v != first %+v", i, got, first)
		}
	}
}
