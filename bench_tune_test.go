package repro

// Autotuner benchmarks: tune.Tune over the E-series workloads, recording
// both the search cost (ns/op) and the search outcome — default vs tuned
// cycles and the candidate count — per workload. TestMain writes the set
// to BENCH_tune.json so CI can archive the tuner's wins per commit:
//
//	go test -run=NONE -bench=Tune -benchtime=1x .
//
// The headline claim rides in the JSON: on every recorded workload
// tuned_cycles ≤ default_cycles (the tuner never adopts a regression),
// and on at least one workload the inequality is strict.

import (
	"sync"
	"testing"

	"repro/internal/driver"
	"repro/internal/tune"
)

// tuneBenchRow is one workload's search outcome as written to
// BENCH_tune.json.
type tuneBenchRow struct {
	Name          string  `json:"name"`
	DefaultCycles int64   `json:"default_cycles"`
	TunedCycles   int64   `json:"tuned_cycles"`
	Speedup       float64 `json:"speedup"`
	Decisions     int     `json:"decisions"`
	NonDefault    int     `json:"non_default"`
	Measured      int     `json:"measured"`
	NsPerOp       float64 `json:"ns_per_op"`
}

var tuneBench struct {
	mu   sync.Mutex
	rows []tuneBenchRow
}

func recordTuneBench(r tuneBenchRow) {
	tuneBench.mu.Lock()
	tuneBench.rows = append(tuneBench.rows, r)
	tuneBench.mu.Unlock()
}

// BenchmarkTune measures the full schedule search per E-series workload.
// ns/op is the cost of tuning (dozens of compiles + simulations); the
// recorded row carries the outcome the cost buys.
func BenchmarkTune(b *testing.B) {
	opts := driver.FullOptions()
	for _, w := range evalWorkloads() {
		b.Run(w.Name, func(b *testing.B) {
			var last *tune.Result
			for i := 0; i < b.N; i++ {
				res, err := tune.Tune(w.Src, opts, tune.Config{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			if last.TunedCycles > last.DefaultCycles {
				b.Fatalf("tuner regressed %s: tuned %d > default %d",
					w.Name, last.TunedCycles, last.DefaultCycles)
			}
			recordTuneBench(tuneBenchRow{
				Name:          b.Name(),
				DefaultCycles: last.DefaultCycles,
				TunedCycles:   last.TunedCycles,
				Speedup:       float64(last.DefaultCycles) / float64(last.TunedCycles),
				Decisions:     len(last.Decisions),
				NonDefault:    last.Schedules.Len(),
				Measured:      last.Measured,
				NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			})
		})
	}
}
