// Package repro is a reproduction of Allen & Johnson, "Compiling C for
// Vectorization, Parallelization, and Inline Expansion" (PLDI 1988): the
// Ardent Titan C compiler, rebuilt in Go, together with a simulated Titan
// to run its output on.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every number in EXPERIMENTS.md:
//
//	go test -bench=. -benchmem .
package repro
