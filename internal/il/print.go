package il

import (
	"fmt"
	"strings"
)

// This file renders procedures in a readable named form for ildump, golden
// tests, and debugging.

// ExprString renders e with variable names from the procedure's table.
func (p *Proc) ExprString(e Expr) string {
	if e == nil {
		return "<nil>"
	}
	switch n := e.(type) {
	case *VarRef:
		return p.varName(n.ID)
	case *AddrOf:
		return "&" + p.varName(n.ID)
	case *Load:
		if n.Volatile {
			return fmt.Sprintf("*(volatile)(%s)", p.ExprString(n.Addr))
		}
		return fmt.Sprintf("*(%s)", p.ExprString(n.Addr))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", p.ExprString(n.L), n.Op, p.ExprString(n.R))
	case *Un:
		return fmt.Sprintf("(%s %s)", n.Op, p.ExprString(n.X))
	case *Cast:
		return fmt.Sprintf("(%s)(%s)", n.T, p.ExprString(n.X))
	case *VecRef:
		return fmt.Sprintf("[%s :%s]", p.ExprString(n.Base), p.ExprString(n.Stride))
	default:
		return e.String()
	}
}

func (p *Proc) varName(id VarID) string {
	if id == NoVar {
		return "_"
	}
	if int(id) < len(p.Vars) {
		return p.Vars[id].Name
	}
	return fmt.Sprintf("v%d", id)
}

// StmtString renders a statement (single line for simple forms, nested
// multi-line for structured forms) at the given indent level.
func (p *Proc) StmtString(s Stmt, indent int) string {
	pad := strings.Repeat("    ", indent)
	switch n := s.(type) {
	case *Assign:
		return fmt.Sprintf("%s%s = %s", pad, p.ExprString(n.Dst), p.ExprString(n.Src))
	case *PredAssign:
		return fmt.Sprintf("%s(%s)? %s = %s", pad, p.ExprString(n.Cond),
			p.ExprString(n.Dst), p.ExprString(n.Src))
	case *Call:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = p.ExprString(a)
		}
		target := n.Callee
		if n.FunPtr != nil {
			target = "(*" + p.ExprString(n.FunPtr) + ")"
		}
		if n.Dst == NoVar {
			return fmt.Sprintf("%scall %s(%s)", pad, target, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s%s = call %s(%s)", pad, p.varName(n.Dst), target, strings.Join(args, ", "))
	case *If:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%sif %s {\n%s", pad, p.ExprString(n.Cond), p.stmtsString(n.Then, indent+1))
		if len(n.Else) > 0 {
			fmt.Fprintf(&sb, "%s} else {\n%s", pad, p.stmtsString(n.Else, indent+1))
		}
		fmt.Fprintf(&sb, "%s}", pad)
		return sb.String()
	case *While:
		safe := ""
		if n.Safe {
			safe = " /*safe*/"
		}
		return fmt.Sprintf("%swhile %s%s {\n%s%s}", pad, p.ExprString(n.Cond), safe,
			p.stmtsString(n.Body, indent+1), pad)
	case *DoLoop:
		safe := ""
		if n.Safe {
			safe = " /*safe*/"
		}
		return fmt.Sprintf("%sdo %s = %s, %s, %s%s {\n%s%s}", pad, p.varName(n.IV),
			p.ExprString(n.Init), p.ExprString(n.Limit), p.ExprString(n.Step), safe,
			p.stmtsString(n.Body, indent+1), pad)
	case *DoParallel:
		sync := ""
		if n.Sync != nil {
			sync = fmt.Sprintf(" sync(%d)", n.Sync.Distance)
		}
		return fmt.Sprintf("%sdo parallel%s %s = %s, %s, %s {\n%s%s}", pad, sync, p.varName(n.IV),
			p.ExprString(n.Init), p.ExprString(n.Limit), p.ExprString(n.Step),
			p.stmtsString(n.Body, indent+1), pad)
	case *VectorAssign:
		if n.Mask != nil {
			return fmt.Sprintf("%s[%s :%s](0:%s) =?(%s) %s", pad, p.ExprString(n.DstBase),
				p.ExprString(n.DstStride), p.ExprString(n.Len), p.ExprString(n.Mask), p.ExprString(n.RHS))
		}
		return fmt.Sprintf("%s[%s :%s](0:%s) = %s", pad, p.ExprString(n.DstBase),
			p.ExprString(n.DstStride), p.ExprString(n.Len), p.ExprString(n.RHS))
	case *Goto:
		return pad + "goto " + n.Target
	case *Label:
		return pad + n.Name + ":"
	case *Return:
		if n.Val == nil {
			return pad + "return"
		}
		return pad + "return " + p.ExprString(n.Val)
	default:
		return pad + s.String()
	}
}

func (p *Proc) stmtsString(list []Stmt, indent int) string {
	var sb strings.Builder
	for _, s := range list {
		sb.WriteString(p.StmtString(s, indent))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the whole procedure.
func (p *Proc) String() string {
	var sb strings.Builder
	params := make([]string, len(p.Params))
	for i, id := range p.Params {
		params[i] = fmt.Sprintf("%s %s", p.Vars[id].Type, p.Vars[id].Name)
	}
	fmt.Fprintf(&sb, "proc %s(%s) %s {\n", p.Name, strings.Join(params, ", "), p.Ret)
	for i, v := range p.Vars {
		if v.Class == ClassParam {
			continue
		}
		flags := ""
		if v.AddrTaken {
			flags = " addrtaken"
		}
		fmt.Fprintf(&sb, "    var %s %s // %s%s (v%d)\n", v.Name, v.Type, v.Class, flags, i)
	}
	sb.WriteString(p.stmtsString(p.Body, 1))
	sb.WriteString("}\n")
	return sb.String()
}

// String renders the whole program.
func (pr *Program) String() string {
	var sb strings.Builder
	for _, g := range pr.Globals {
		fmt.Fprintf(&sb, "global %s %s\n", g.Type, g.Name)
	}
	for _, p := range pr.Procs {
		sb.WriteString(p.String())
	}
	return sb.String()
}

// CountStmts returns the number of statements in the list, including those
// nested inside structured statements. It is the code-size metric used by
// the unreachable-code experiments (E5).
func CountStmts(list []Stmt) int {
	n := 0
	WalkStmts(list, func(Stmt) bool {
		n++
		return true
	})
	return n
}
