package il

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ctype"
)

func TestSmartConstructorsFold(t *testing.T) {
	cases := []struct {
		got  Expr
		want int64
	}{
		{NewBin(OpAdd, Int(2), Int(3), ctype.IntType), 5},
		{NewBin(OpSub, Int(2), Int(3), ctype.IntType), -1},
		{NewBin(OpMul, Int(4), Int(3), ctype.IntType), 12},
		{NewBin(OpDiv, Int(7), Int(2), ctype.IntType), 3},
		{NewBin(OpRem, Int(7), Int(2), ctype.IntType), 1},
		{NewBin(OpShl, Int(1), Int(4), ctype.IntType), 16},
		{NewBin(OpLt, Int(1), Int(2), ctype.IntType), 1},
		{NewBin(OpGe, Int(1), Int(2), ctype.IntType), 0},
		{NewUn(OpNeg, Int(5), ctype.IntType), -5},
		{NewUn(OpNot, Int(0), ctype.IntType), 1},
		{NewUn(OpBitNot, Int(0), ctype.IntType), -1},
	}
	for i, c := range cases {
		ci, ok := c.got.(*ConstInt)
		if !ok {
			t.Errorf("case %d: not folded: %s", i, c.got)
			continue
		}
		if ci.Val != c.want {
			t.Errorf("case %d: got %d want %d", i, ci.Val, c.want)
		}
	}
}

func TestIdentities(t *testing.T) {
	x := Ref(0, ctype.IntType)
	if got := NewBin(OpAdd, x, Int(0), ctype.IntType); got != x {
		t.Errorf("x+0: %s", got)
	}
	if got := NewBin(OpAdd, Int(0), x, ctype.IntType); got != x {
		t.Errorf("0+x: %s", got)
	}
	if got := NewBin(OpMul, x, Int(1), ctype.IntType); got != x {
		t.Errorf("x*1: %s", got)
	}
	if got := NewBin(OpMul, Int(0), x, ctype.IntType); !IsZero(got) {
		t.Errorf("0*x: %s", got)
	}
	if got := NewBin(OpSub, x, Int(0), ctype.IntType); got != x {
		t.Errorf("x-0: %s", got)
	}
	if got := NewBin(OpDiv, x, Int(1), ctype.IntType); got != x {
		t.Errorf("x/1: %s", got)
	}
}

func TestNoFoldDivZero(t *testing.T) {
	e := NewBin(OpDiv, Int(1), Int(0), ctype.IntType)
	if _, ok := e.(*ConstInt); ok {
		t.Error("1/0 must not fold")
	}
}

func TestFloatFold(t *testing.T) {
	e := NewBin(OpMul, Flt(2, ctype.FloatType), Flt(3, ctype.FloatType), ctype.FloatType)
	if c, ok := e.(*ConstFloat); !ok || c.Val != 6 {
		t.Errorf("2.0*3.0: %s", e)
	}
}

func TestCastFold(t *testing.T) {
	if c, ok := NewCast(Int(3), ctype.FloatType).(*ConstFloat); !ok || c.Val != 3 {
		t.Error("(float)3 should fold")
	}
	if c, ok := NewCast(Flt(2.7, ctype.FloatType), ctype.IntType).(*ConstInt); !ok || c.Val != 2 {
		t.Error("(int)2.7 should fold to 2")
	}
	x := Ref(0, ctype.IntType)
	if NewCast(x, ctype.IntType) != x {
		t.Error("identity cast should be elided")
	}
}

func mkProc() *Proc {
	p := NewProc("f", ctype.VoidType)
	p.AddVar(Var{Name: "a", Type: ctype.IntType, Class: ClassLocal})
	p.AddVar(Var{Name: "b", Type: ctype.IntType, Class: ClassLocal})
	return p
}

func TestCloneIndependence(t *testing.T) {
	p := mkProc()
	orig := &Assign{
		Dst: Ref(0, ctype.IntType),
		Src: &Bin{Op: OpAdd, L: Ref(1, ctype.IntType), R: Int(1), T: ctype.IntType},
	}
	cl := CloneStmt(orig).(*Assign)
	cl.Src.(*Bin).R.(*ConstInt).Val = 99
	if orig.Src.(*Bin).R.(*ConstInt).Val != 1 {
		t.Error("clone shares structure with original")
	}
	_ = p
}

func TestCloneLoops(t *testing.T) {
	body := []Stmt{
		&Assign{Dst: Ref(0, ctype.IntType), Src: Int(1)},
		&If{Cond: Ref(1, ctype.IntType), Then: []Stmt{&Goto{Target: "L"}}},
		&Label{Name: "L"},
	}
	loop := &DoLoop{IV: 0, Init: Int(0), Limit: Int(9), Step: Int(1), Body: body}
	cl := CloneStmt(loop).(*DoLoop)
	cl.Body[0].(*Assign).Src = Int(42)
	if v, _ := IsIntConst(loop.Body[0].(*Assign).Src); v != 1 {
		t.Error("loop clone shares body")
	}
	if !reflect.DeepEqual(cl.Body[2], body[2]) {
		t.Error("label not cloned equal")
	}
}

func TestWalkStmtsVisitsNested(t *testing.T) {
	prog := []Stmt{
		&While{Cond: Int(1), Body: []Stmt{
			&If{Cond: Int(1), Then: []Stmt{&Return{}}, Else: []Stmt{&Goto{Target: "x"}}},
		}},
		&Label{Name: "x"},
	}
	var kinds []string
	WalkStmts(prog, func(s Stmt) bool {
		kinds = append(kinds, reflect.TypeOf(s).Elem().Name())
		return true
	})
	want := []string{"While", "If", "Return", "Goto", "Label"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("visit order %v want %v", kinds, want)
	}
}

func TestWalkExprPrune(t *testing.T) {
	e := &Bin{Op: OpAdd,
		L: &Load{Addr: Ref(0, ctype.PointerTo(ctype.IntType)), T: ctype.IntType},
		R: Int(1), T: ctype.IntType}
	count := 0
	WalkExpr(e, func(x Expr) bool {
		count++
		_, isLoad := x.(*Load)
		return !isLoad // prune below loads
	})
	if count != 3 { // Bin, Load, ConstInt — not the Load's address
		t.Errorf("visited %d nodes", count)
	}
}

func TestRewriteExpr(t *testing.T) {
	// Replace VarRef(0) with constant 7 in (v0 + v1): should fold nothing
	// but substitute correctly.
	e := &Bin{Op: OpAdd, L: Ref(0, ctype.IntType), R: Ref(1, ctype.IntType), T: ctype.IntType}
	out := RewriteExpr(e, func(x Expr) Expr {
		if v, ok := x.(*VarRef); ok && v.ID == 0 {
			return Int(7)
		}
		return x
	})
	b := out.(*Bin)
	if v, ok := IsIntConst(b.L); !ok || v != 7 {
		t.Errorf("substitution failed: %s", out)
	}
	// Original untouched.
	if _, ok := e.L.(*VarRef); !ok {
		t.Error("RewriteExpr mutated its input")
	}
}

func TestExprEqual(t *testing.T) {
	a := &Bin{Op: OpMul, L: Ref(2, ctype.IntType), R: Int(4), T: ctype.IntType}
	b := &Bin{Op: OpMul, L: Ref(2, ctype.IntType), R: Int(4), T: ctype.IntType}
	c := &Bin{Op: OpMul, L: Ref(2, ctype.IntType), R: Int(5), T: ctype.IntType}
	if !ExprEqual(a, b) {
		t.Error("a != b")
	}
	if ExprEqual(a, c) {
		t.Error("a == c")
	}
	if !ExprEqual(CloneExpr(a), a) {
		t.Error("clone not equal")
	}
}

func TestUsesVar(t *testing.T) {
	e := &Load{Addr: &Bin{Op: OpAdd, L: Ref(3, ctype.PointerTo(ctype.FloatType)),
		R: Ref(4, ctype.IntType), T: ctype.PointerTo(ctype.FloatType)}, T: ctype.FloatType}
	if !UsesVar(e, 3) || !UsesVar(e, 4) || UsesVar(e, 5) {
		t.Error("UsesVar wrong")
	}
	addr := &AddrOf{ID: 9, T: ctype.PointerTo(ctype.IntType)}
	if !UsesVar(addr, 9) {
		t.Error("AddrOf should count as a use")
	}
}

func TestHasVolatile(t *testing.T) {
	p := NewProc("f", ctype.VoidType)
	vol := p.AddVar(Var{Name: "ks", Type: ctype.Qualified(ctype.IntType, true, false), Class: ClassGlobal})
	norm := p.AddVar(Var{Name: "x", Type: ctype.IntType, Class: ClassLocal})
	if !p.HasVolatile(Ref(vol, p.Vars[vol].Type)) {
		t.Error("volatile var ref not detected")
	}
	if p.HasVolatile(Ref(norm, ctype.IntType)) {
		t.Error("normal var flagged volatile")
	}
	vl := &Load{Addr: Ref(norm, ctype.PointerTo(ctype.IntType)), T: ctype.IntType, Volatile: true}
	if !p.HasVolatile(vl) {
		t.Error("volatile load not detected")
	}
}

func TestDefinedVarAndIsStore(t *testing.T) {
	a := &Assign{Dst: Ref(2, ctype.IntType), Src: Int(1)}
	if DefinedVar(a) != 2 || IsStore(a) {
		t.Error("scalar assign misclassified")
	}
	st := &Assign{Dst: &Load{Addr: Ref(0, ctype.PointerTo(ctype.IntType)), T: ctype.IntType}, Src: Int(1)}
	if DefinedVar(st) != NoVar || !IsStore(st) {
		t.Error("store misclassified")
	}
	c := &Call{Dst: 5, Callee: "f", T: ctype.IntType}
	if DefinedVar(c) != 5 {
		t.Error("call dst missed")
	}
}

func TestProcPrinting(t *testing.T) {
	p := NewProc("axpy", ctype.VoidType)
	x := p.AddVar(Var{Name: "x", Type: ctype.PointerTo(ctype.FloatType), Class: ClassParam})
	n := p.AddVar(Var{Name: "n", Type: ctype.IntType, Class: ClassParam})
	p.Params = []VarID{x, n}
	i := p.AddVar(Var{Name: "i", Type: ctype.IntType, Class: ClassLocal})
	p.Body = []Stmt{
		&DoLoop{IV: i, Init: Int(0), Limit: Sub(Ref(n, ctype.IntType), Int(1), ctype.IntType), Step: Int(1),
			Body: []Stmt{
				&Assign{
					Dst: &Load{Addr: Add(Ref(x, p.Vars[x].Type), Mul(Int(4), Ref(i, ctype.IntType), ctype.IntType), p.Vars[x].Type), T: ctype.FloatType},
					Src: Flt(0, ctype.FloatType),
				},
			}},
	}
	s := p.String()
	for _, want := range []string{"proc axpy", "do i = 0,", "*(", "= 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestNewTempAndLabelUnique(t *testing.T) {
	p := NewProc("f", ctype.VoidType)
	t1 := p.NewTemp(ctype.IntType)
	t2 := p.NewTemp(ctype.IntType)
	if t1 == t2 || p.Vars[t1].Name == p.Vars[t2].Name {
		t.Error("temps collide")
	}
	l1 := p.NewLabel("x")
	l2 := p.NewLabel("x")
	if l1 == l2 {
		t.Error("labels collide")
	}
}

func TestCountStmts(t *testing.T) {
	body := []Stmt{
		&Assign{Dst: Ref(0, ctype.IntType), Src: Int(1)},
		&If{Cond: Int(1), Then: []Stmt{&Return{}, &Return{}}},
	}
	if got := CountStmts(body); got != 4 {
		t.Errorf("CountStmts = %d, want 4", got)
	}
}

// randomExpr builds a random expression tree over two int variables.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Int(int64(r.Intn(100) - 50))
		case 1:
			return Ref(0, ctype.IntType)
		default:
			return Ref(1, ctype.IntType)
		}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpLt}
	return &Bin{Op: ops[r.Intn(len(ops))],
		L: randomExpr(r, depth-1), R: randomExpr(r, depth-1), T: ctype.IntType}
}

// Property: CloneExpr produces an ExprEqual tree, and rewriting the clone
// never changes the original.
func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		cl := CloneExpr(e)
		if !ExprEqual(e, cl) {
			return false
		}
		RewriteExpr(cl, func(x Expr) Expr {
			if c, ok := x.(*ConstInt); ok {
				return Int(c.Val + 1)
			}
			return x
		})
		return ExprEqual(e, cl) // RewriteExpr must not mutate its input
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: constant folding in NewBin agrees with direct evaluation.
func TestQuickFoldCorrect(t *testing.T) {
	eval := func(op Op, a, b int64) (int64, bool) { return foldInt(op, a, b) }
	f := func(a, b int32, opIdx uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLt, OpGt, OpLe, OpGe}
		op := ops[int(opIdx)%len(ops)]
		e := NewBin(op, Int(int64(a)), Int(int64(b)), ctype.IntType)
		want, ok := eval(op, int64(a), int64(b))
		if !ok {
			return true
		}
		c, isConst := e.(*ConstInt)
		return isConst && c.Val == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
