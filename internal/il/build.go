package il

import "repro/internal/ctype"

// This file provides smart constructors used throughout the optimizer. The
// binary constructors fold constant operands and apply simple algebraic
// identities, which keeps address arithmetic built by the lowering and
// substitution passes in a canonical, readable form.

// Int returns an int constant.
func Int(v int64) *ConstInt { return &ConstInt{Val: v, T: ctype.IntType} }

// Flt returns a float constant of type t (float or double).
func Flt(v float64, t *ctype.Type) *ConstFloat { return &ConstFloat{Val: v, T: t} }

// Ref returns a variable reference.
func Ref(id VarID, t *ctype.Type) *VarRef { return &VarRef{ID: id, T: t} }

// IsIntConst reports whether e is an integer constant, returning its value.
func IsIntConst(e Expr) (int64, bool) {
	if c, ok := e.(*ConstInt); ok {
		return c.Val, true
	}
	return 0, false
}

// IsZero reports whether e is the integer or float constant zero.
func IsZero(e Expr) bool {
	switch c := e.(type) {
	case *ConstInt:
		return c.Val == 0
	case *ConstFloat:
		return c.Val == 0
	}
	return false
}

// IsOne reports whether e is the integer constant one.
func IsOne(e Expr) bool {
	c, ok := e.(*ConstInt)
	return ok && c.Val == 1
}

// NewBin builds a binary expression, folding integer constant operands and
// applying the identities x+0, x-0, x*1, x*0, 0+x, 1*x, x/1.
func NewBin(op Op, l, r Expr, t *ctype.Type) Expr { return NewBinIn(nil, op, l, r, t) }

// NewBinIn is NewBin allocating from arena a (nil allocates from the heap).
func NewBinIn(a *Arena, op Op, l, r Expr, t *ctype.Type) Expr {
	lc, lok := l.(*ConstInt)
	rc, rok := r.(*ConstInt)
	if lok && rok && t.IsInteger() {
		// Folding uses signed 64-bit semantics; an unsigned operand whose
		// value wrapped negative would fold wrong, so leave it to the
		// machine (which canonicalizes unsigned operands).
		unsignedHazard := (unsignedType(lc.T) && lc.Val < 0) ||
			(unsignedType(rc.T) && rc.Val < 0)
		if !unsignedHazard {
			if v, ok := foldInt(op, lc.Val, rc.Val); ok {
				return a.ConstInt(v, t)
			}
		}
	}
	lf, lfok := l.(*ConstFloat)
	rf, rfok := r.(*ConstFloat)
	if lfok && rfok && t.IsFloat() {
		if v, ok := foldFloat(op, lf.Val, rf.Val); ok {
			return a.ConstFloat(v, t)
		}
	}
	switch op {
	case OpAdd:
		if IsZero(l) {
			return r
		}
		if IsZero(r) {
			return l
		}
	case OpSub:
		if IsZero(r) {
			return l
		}
	case OpMul:
		if IsOne(l) {
			return r
		}
		if IsOne(r) {
			return l
		}
		if t.IsInteger() && (IsZero(l) || IsZero(r)) {
			return a.ConstInt(0, t)
		}
	case OpDiv:
		if IsOne(r) {
			return l
		}
	}
	return a.Bin(op, l, r, t)
}

func unsignedType(t *ctype.Type) bool { return t != nil && t.Unsigned }

// BinFoldable reports whether NewBin(op, l, r, t) would return anything
// other than a fresh Bin with the same operands — i.e. whether constant
// folding or an algebraic identity applies. It mirrors NewBinIn's checks
// exactly, letting callers skip the constructor (and its allocation) on
// the common nothing-to-fold path.
func BinFoldable(op Op, l, r Expr, t *ctype.Type) bool {
	lc, lok := l.(*ConstInt)
	rc, rok := r.(*ConstInt)
	if lok && rok && t.IsInteger() {
		unsignedHazard := (unsignedType(lc.T) && lc.Val < 0) ||
			(unsignedType(rc.T) && rc.Val < 0)
		if !unsignedHazard {
			if _, ok := foldInt(op, lc.Val, rc.Val); ok {
				return true
			}
		}
	}
	lf, lfok := l.(*ConstFloat)
	rf, rfok := r.(*ConstFloat)
	if lfok && rfok && t.IsFloat() {
		if _, ok := foldFloat(op, lf.Val, rf.Val); ok {
			return true
		}
	}
	switch op {
	case OpAdd:
		return IsZero(l) || IsZero(r)
	case OpSub:
		return IsZero(r)
	case OpMul:
		return IsOne(l) || IsOne(r) || (t.IsInteger() && (IsZero(l) || IsZero(r)))
	case OpDiv:
		return IsOne(r)
	}
	return false
}

func foldInt(op Op, a, b int64) (int64, bool) {
	b2i := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case OpShr:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	case OpEq:
		return b2i(a == b), true
	case OpNe:
		return b2i(a != b), true
	case OpLt:
		return b2i(a < b), true
	case OpGt:
		return b2i(a > b), true
	case OpLe:
		return b2i(a <= b), true
	case OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func foldFloat(op Op, a, b float64) (float64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	}
	return 0, false
}

// FoldCompareFloat folds a comparison over float constants to 0/1.
func FoldCompareFloat(op Op, a, b float64) (int64, bool) {
	b2i := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case OpEq:
		return b2i(a == b), true
	case OpNe:
		return b2i(a != b), true
	case OpLt:
		return b2i(a < b), true
	case OpGt:
		return b2i(a > b), true
	case OpLe:
		return b2i(a <= b), true
	case OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

// Add builds l+r of type t with folding.
func Add(l, r Expr, t *ctype.Type) Expr { return NewBin(OpAdd, l, r, t) }

// Sub builds l-r of type t with folding.
func Sub(l, r Expr, t *ctype.Type) Expr { return NewBin(OpSub, l, r, t) }

// Mul builds l*r of type t with folding.
func Mul(l, r Expr, t *ctype.Type) Expr { return NewBin(OpMul, l, r, t) }

// NewUn builds a unary expression, folding constants.
func NewUn(op Op, x Expr, t *ctype.Type) Expr { return NewUnIn(nil, op, x, t) }

// NewUnIn is NewUn allocating from arena a.
func NewUnIn(a *Arena, op Op, x Expr, t *ctype.Type) Expr {
	if c, ok := x.(*ConstInt); ok {
		switch op {
		case OpNeg:
			return a.ConstInt(-c.Val, t)
		case OpBitNot:
			return a.ConstInt(^c.Val, t)
		case OpNot:
			v := int64(0)
			if c.Val == 0 {
				v = 1
			}
			return a.ConstInt(v, t)
		}
	}
	if c, ok := x.(*ConstFloat); ok && op == OpNeg {
		return a.ConstFloat(-c.Val, t)
	}
	return a.Un(op, x, t)
}

// NewCast builds a cast, folding constant operands and eliding identity
// casts between same-kind scalar types.
func NewCast(x Expr, to *ctype.Type) Expr { return NewCastIn(nil, x, to) }

// NewCastIn is NewCast allocating from arena a.
func NewCastIn(a *Arena, x Expr, to *ctype.Type) Expr {
	if x.Type() != nil && x.Type().Kind == to.Kind && x.Type().Unsigned == to.Unsigned {
		return x
	}
	if c, ok := x.(*ConstInt); ok {
		if to.IsFloat() {
			return a.ConstFloat(float64(c.Val), to)
		}
		if to.IsInteger() || to.Kind == ctype.Pointer {
			return a.ConstInt(c.Val, to)
		}
	}
	if c, ok := x.(*ConstFloat); ok {
		if to.IsInteger() {
			return a.ConstInt(int64(c.Val), to)
		}
		if to.IsFloat() {
			return a.ConstFloat(c.Val, to)
		}
	}
	return a.Cast(x, to)
}
