package il

// Arena-backed allocation for IL nodes. A compile allocates each
// procedure's statements and expressions from chunked slabs owned by the
// procedure, so node allocation is a bump pointer instead of a malloc,
// nodes of the same kind sit contiguously in memory, and freeing a
// compile is one Release call that drops the slabs (instead of the
// garbage collector tracing a few hundred thousand individual nodes).
//
// Ownership contract:
//
//   - The front end attaches one Arena per Proc (lower.File); every pass
//     that rewrites a procedure allocates replacement nodes from
//     p.Arena(). Nodes never migrate between procedures — inline
//     expansion clones catalog bodies into the caller's arena.
//   - A nil *Arena is valid everywhere and falls back to individual heap
//     allocation, so hand-built test IL and catalog-decoded procedures
//     keep working unchanged (and the serial-heap differential baseline
//     stays available).
//   - Release drops the arena's slab references and retires its bytes
//     from the process-wide ArenaBytesLive gauge. The nodes themselves
//     stay valid as long as the IL references them (chunks are reclaimed
//     by the collector with the Program); Release marks the moment the
//     compile stops holding bulk IL memory, which is what the titand
//     daemon frees after an artifact is encoded.
import (
	"sync/atomic"
	"unsafe"

	"repro/internal/ctype"
)

// liveBytes is the process-wide total of bytes held by un-released
// arenas: chunk allocations add, Release subtracts. The titand /metrics
// arena_bytes_live gauge reads it.
var liveBytes atomic.Int64

// ArenaBytesLive reports the bytes currently held by all un-released
// arenas in the process.
func ArenaBytesLive() int64 { return liveBytes.Load() }

// Chunk geometry: slabs start small (most procedures are small) and
// double up to the cap so large procedures amortize to one allocation
// per 1024 nodes of a kind.
const (
	arenaChunkMin = 64
	arenaChunkMax = 1024
)

// slab is one node kind's chunked storage. alloc hands out pointers into
// the current chunk; when it fills, a new chunk is started and the old
// one stays reachable through the handed-out pointers.
type slab[T any] struct {
	cur  []T
	next int // next chunk's capacity
}

func (s *slab[T]) alloc(a *Arena) *T {
	if len(s.cur) == cap(s.cur) {
		if s.next < arenaChunkMin {
			s.next = arenaChunkMin
		} else if s.next < arenaChunkMax {
			s.next *= 2
		}
		s.cur = make([]T, 0, s.next)
		var zero T
		a.grew(int64(unsafe.Sizeof(zero)) * int64(s.next))
	}
	s.cur = s.cur[:len(s.cur)+1]
	return &s.cur[len(s.cur)-1]
}

func (s *slab[T]) drop() { s.cur = nil; s.next = 0 }

// Arena owns chunked slabs for every IL node kind. The zero value is
// ready to use; a nil *Arena is valid and allocates from the heap.
// An Arena is not safe for concurrent use: it is owned by one Proc and
// the pass manager's worker pool never runs two passes over one
// procedure at once.
type Arena struct {
	bytes    int64
	released bool

	constInts   slab[ConstInt]
	constFloats slab[ConstFloat]
	varRefs     slab[VarRef]
	addrOfs     slab[AddrOf]
	loads       slab[Load]
	bins        slab[Bin]
	uns         slab[Un]
	casts       slab[Cast]
	vecRefs     slab[VecRef]

	assigns     slab[Assign]
	predAssigns slab[PredAssign]
	calls       slab[Call]
	ifs         slab[If]
	whiles      slab[While]
	doLoops     slab[DoLoop]
	doPars      slab[DoParallel]
	vecAssigns  slab[VectorAssign]
	gotos       slab[Goto]
	labels      slab[Label]
	returns     slab[Return]
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) grew(n int64) {
	a.bytes += n
	liveBytes.Add(n)
}

// Bytes reports the bytes of chunk storage the arena has allocated.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes
}

// Release drops the arena's slab references and retires its bytes from
// the ArenaBytesLive gauge. Safe to call more than once; a released
// arena keeps working (new allocations open fresh chunks and are
// accounted again).
func (a *Arena) Release() {
	if a == nil || a.released {
		return
	}
	a.released = true
	liveBytes.Add(-a.bytes)
	a.bytes = 0
	a.constInts.drop()
	a.constFloats.drop()
	a.varRefs.drop()
	a.addrOfs.drop()
	a.loads.drop()
	a.bins.drop()
	a.uns.drop()
	a.casts.drop()
	a.vecRefs.drop()
	a.assigns.drop()
	a.predAssigns.drop()
	a.calls.drop()
	a.ifs.drop()
	a.whiles.drop()
	a.doLoops.drop()
	a.doPars.drop()
	a.vecAssigns.drop()
	a.gotos.drop()
	a.labels.drop()
	a.returns.drop()
}

// ---------------------------------------------------------------- expressions

// ConstInt allocates an integer constant.
func (a *Arena) ConstInt(v int64, t *ctype.Type) *ConstInt {
	if a == nil {
		return &ConstInt{Val: v, T: t}
	}
	n := a.constInts.alloc(a)
	n.Val, n.T = v, t
	return n
}

// ConstFloat allocates a floating constant.
func (a *Arena) ConstFloat(v float64, t *ctype.Type) *ConstFloat {
	if a == nil {
		return &ConstFloat{Val: v, T: t}
	}
	n := a.constFloats.alloc(a)
	n.Val, n.T = v, t
	return n
}

// VarRef allocates a variable reference.
func (a *Arena) VarRef(id VarID, t *ctype.Type) *VarRef {
	if a == nil {
		return &VarRef{ID: id, T: t}
	}
	n := a.varRefs.alloc(a)
	n.ID, n.T = id, t
	return n
}

// AddrOf allocates an address-of expression.
func (a *Arena) AddrOf(id VarID, t *ctype.Type) *AddrOf {
	if a == nil {
		return &AddrOf{ID: id, T: t}
	}
	n := a.addrOfs.alloc(a)
	n.ID, n.T = id, t
	return n
}

// Load allocates a memory load.
func (a *Arena) Load(addr Expr, t *ctype.Type, volatile bool) *Load {
	if a == nil {
		return &Load{Addr: addr, T: t, Volatile: volatile}
	}
	n := a.loads.alloc(a)
	n.Addr, n.T, n.Volatile = addr, t, volatile
	return n
}

// Bin allocates a binary expression (no folding; see NewBinIn).
func (a *Arena) Bin(op Op, l, r Expr, t *ctype.Type) *Bin {
	if a == nil {
		return &Bin{Op: op, L: l, R: r, T: t}
	}
	n := a.bins.alloc(a)
	n.Op, n.L, n.R, n.T = op, l, r, t
	return n
}

// Un allocates a unary expression (no folding; see NewUnIn).
func (a *Arena) Un(op Op, x Expr, t *ctype.Type) *Un {
	if a == nil {
		return &Un{Op: op, X: x, T: t}
	}
	n := a.uns.alloc(a)
	n.Op, n.X, n.T = op, x, t
	return n
}

// Cast allocates a cast (no simplification; see NewCastIn).
func (a *Arena) Cast(x Expr, t *ctype.Type) *Cast {
	if a == nil {
		return &Cast{X: x, T: t}
	}
	n := a.casts.alloc(a)
	n.X, n.T = x, t
	return n
}

// VecRef allocates a vector section reference.
func (a *Arena) VecRef(base, stride Expr, t *ctype.Type) *VecRef {
	if a == nil {
		return &VecRef{Base: base, Stride: stride, T: t}
	}
	n := a.vecRefs.alloc(a)
	n.Base, n.Stride, n.T = base, stride, t
	return n
}

// ---------------------------------------------------------------- statements

// Assign allocates an assignment statement.
func (a *Arena) Assign(s Assign) *Assign {
	if a == nil {
		n := s
		return &n
	}
	n := a.assigns.alloc(a)
	*n = s
	return n
}

// PredAssign allocates a predicated-store statement.
func (a *Arena) PredAssign(s PredAssign) *PredAssign {
	if a == nil {
		n := s
		return &n
	}
	n := a.predAssigns.alloc(a)
	*n = s
	return n
}

// Call allocates a call statement.
func (a *Arena) Call(s Call) *Call {
	if a == nil {
		n := s
		return &n
	}
	n := a.calls.alloc(a)
	*n = s
	return n
}

// If allocates an if statement.
func (a *Arena) If(s If) *If {
	if a == nil {
		n := s
		return &n
	}
	n := a.ifs.alloc(a)
	*n = s
	return n
}

// While allocates a while statement.
func (a *Arena) While(s While) *While {
	if a == nil {
		n := s
		return &n
	}
	n := a.whiles.alloc(a)
	*n = s
	return n
}

// DoLoop allocates a DO loop.
func (a *Arena) DoLoop(s DoLoop) *DoLoop {
	if a == nil {
		n := s
		return &n
	}
	n := a.doLoops.alloc(a)
	*n = s
	return n
}

// DoParallel allocates a parallel DO loop.
func (a *Arena) DoParallel(s DoParallel) *DoParallel {
	if a == nil {
		n := s
		return &n
	}
	n := a.doPars.alloc(a)
	*n = s
	return n
}

// VectorAssign allocates a vector assignment.
func (a *Arena) VectorAssign(s VectorAssign) *VectorAssign {
	if a == nil {
		n := s
		return &n
	}
	n := a.vecAssigns.alloc(a)
	*n = s
	return n
}

// Goto allocates a goto.
func (a *Arena) Goto(s Goto) *Goto {
	if a == nil {
		n := s
		return &n
	}
	n := a.gotos.alloc(a)
	*n = s
	return n
}

// Label allocates a label.
func (a *Arena) Label(s Label) *Label {
	if a == nil {
		n := s
		return &n
	}
	n := a.labels.alloc(a)
	*n = s
	return n
}

// Return allocates a return.
func (a *Arena) Return(s Return) *Return {
	if a == nil {
		n := s
		return &n
	}
	n := a.returns.alloc(a)
	*n = s
	return n
}
