package il

// This file provides the traversal, rewriting, and cloning utilities the
// optimizer phases are built on.

// WalkExpr calls f on e and every subexpression, pre-order. If f returns
// false the subtree below the node is skipped.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *Load:
		WalkExpr(n.Addr, f)
	case *Bin:
		WalkExpr(n.L, f)
		WalkExpr(n.R, f)
	case *Un:
		WalkExpr(n.X, f)
	case *Cast:
		WalkExpr(n.X, f)
	case *VecRef:
		WalkExpr(n.Base, f)
		WalkExpr(n.Stride, f)
	}
}

// WalkStmts calls f on every statement in the list and, recursively, in
// nested bodies. If f returns false the statement's nested bodies are
// skipped.
func WalkStmts(stmts []Stmt, f func(Stmt) bool) {
	for _, s := range stmts {
		if !f(s) {
			continue
		}
		switch n := s.(type) {
		case *If:
			WalkStmts(n.Then, f)
			WalkStmts(n.Else, f)
		case *While:
			WalkStmts(n.Body, f)
		case *DoLoop:
			WalkStmts(n.Body, f)
		case *DoParallel:
			WalkStmts(n.Body, f)
		}
	}
}

// StmtExprs calls f on each top-level expression operand of s (not
// recursing into subexpressions; use WalkExpr for that).
func StmtExprs(s Stmt, f func(Expr)) {
	switch n := s.(type) {
	case *Assign:
		f(n.Dst)
		f(n.Src)
	case *PredAssign:
		f(n.Cond)
		f(n.Dst)
		f(n.Src)
	case *Call:
		if n.FunPtr != nil {
			f(n.FunPtr)
		}
		for _, a := range n.Args {
			f(a)
		}
	case *If:
		f(n.Cond)
	case *While:
		f(n.Cond)
	case *DoLoop:
		f(n.Init)
		f(n.Limit)
		f(n.Step)
	case *DoParallel:
		f(n.Init)
		f(n.Limit)
		f(n.Step)
	case *VectorAssign:
		f(n.DstBase)
		f(n.DstStride)
		f(n.Len)
		f(n.RHS)
		if n.Mask != nil {
			f(n.Mask)
		}
	case *Return:
		if n.Val != nil {
			f(n.Val)
		}
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with f(node).
// f receives a node whose children have already been rewritten. The
// rewrite is copy-on-write: a node whose children came back unchanged is
// passed to f as-is (not copied), and when f is the identity over a
// whole subtree the subtree is returned untouched. Rewriters therefore
// must not mutate the node they receive — they return a replacement (or
// the argument) instead. The input tree is never mutated.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	return RewriteExprIn(nil, e, f)
}

// RewriteExprIn is RewriteExpr with the copied spine nodes allocated
// from arena a (nil allocates from the heap). Passes rewriting a
// procedure pass p.Arena().
func RewriteExprIn(a *Arena, e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Load:
		addr := RewriteExprIn(a, n.Addr, f)
		if addr != n.Addr {
			return f(a.Load(addr, n.T, n.Volatile))
		}
		return f(n)
	case *Bin:
		l := RewriteExprIn(a, n.L, f)
		r := RewriteExprIn(a, n.R, f)
		if l != n.L || r != n.R {
			return f(a.Bin(n.Op, l, r, n.T))
		}
		return f(n)
	case *Un:
		x := RewriteExprIn(a, n.X, f)
		if x != n.X {
			return f(a.Un(n.Op, x, n.T))
		}
		return f(n)
	case *Cast:
		x := RewriteExprIn(a, n.X, f)
		if x != n.X {
			return f(a.Cast(x, n.T))
		}
		return f(n)
	case *VecRef:
		base := RewriteExprIn(a, n.Base, f)
		stride := RewriteExprIn(a, n.Stride, f)
		if base != n.Base || stride != n.Stride {
			return f(a.VecRef(base, stride, n.T))
		}
		return f(n)
	default:
		return f(e)
	}
}

// RewriteStmtExprs applies RewriteExpr with f to every expression operand
// of s, in place.
func RewriteStmtExprs(s Stmt, f func(Expr) Expr) {
	RewriteStmtExprsIn(nil, s, f)
}

// RewriteStmtExprsIn is RewriteStmtExprs allocating from arena a.
func RewriteStmtExprsIn(a *Arena, s Stmt, f func(Expr) Expr) {
	switch n := s.(type) {
	case *Assign:
		// The destination of a store is an expression too, but a VarRef
		// destination is a definition, not a use; rewriters that must
		// distinguish handle Assign themselves before calling this.
		n.Dst = RewriteExprIn(a, n.Dst, f)
		n.Src = RewriteExprIn(a, n.Src, f)
	case *PredAssign:
		n.Cond = RewriteExprIn(a, n.Cond, f)
		n.Dst = RewriteExprIn(a, n.Dst, f)
		n.Src = RewriteExprIn(a, n.Src, f)
	case *Call:
		if n.FunPtr != nil {
			n.FunPtr = RewriteExprIn(a, n.FunPtr, f)
		}
		for i := range n.Args {
			n.Args[i] = RewriteExprIn(a, n.Args[i], f)
		}
	case *If:
		n.Cond = RewriteExprIn(a, n.Cond, f)
	case *While:
		n.Cond = RewriteExprIn(a, n.Cond, f)
	case *DoLoop:
		n.Init = RewriteExprIn(a, n.Init, f)
		n.Limit = RewriteExprIn(a, n.Limit, f)
		n.Step = RewriteExprIn(a, n.Step, f)
	case *DoParallel:
		n.Init = RewriteExprIn(a, n.Init, f)
		n.Limit = RewriteExprIn(a, n.Limit, f)
		n.Step = RewriteExprIn(a, n.Step, f)
	case *VectorAssign:
		n.DstBase = RewriteExprIn(a, n.DstBase, f)
		n.DstStride = RewriteExprIn(a, n.DstStride, f)
		n.Len = RewriteExprIn(a, n.Len, f)
		n.RHS = RewriteExprIn(a, n.RHS, f)
		if n.Mask != nil {
			n.Mask = RewriteExprIn(a, n.Mask, f)
		}
	case *Return:
		if n.Val != nil {
			n.Val = RewriteExprIn(a, n.Val, f)
		}
	}
}

// RewriteTreeExprs applies f (via RewriteExpr) to every expression operand
// of s and of all statements nested inside it. Scalar assignment
// destinations are definitions, not uses, and are left alone; store
// destinations have their address rewritten.
func RewriteTreeExprs(s Stmt, f func(Expr) Expr) {
	RewriteTreeExprsIn(nil, s, f)
}

// RewriteTreeExprsIn is RewriteTreeExprs allocating from arena a.
func RewriteTreeExprsIn(a *Arena, s Stmt, f func(Expr) Expr) {
	WalkStmts([]Stmt{s}, func(sub Stmt) bool {
		if as, ok := sub.(*Assign); ok {
			if ld, isStore := as.Dst.(*Load); isStore {
				if addr := RewriteExprIn(a, ld.Addr, f); addr != ld.Addr {
					as.Dst = a.Load(addr, ld.T, ld.Volatile)
				}
			}
			as.Src = RewriteExprIn(a, as.Src, f)
			return true
		}
		RewriteStmtExprsIn(a, sub, f)
		return true
	})
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr { return CloneExprIn(nil, e) }

// CloneExprIn deep-copies an expression into arena a (nil copies to the
// heap).
func CloneExprIn(a *Arena, e Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ConstInt:
		return a.ConstInt(n.Val, n.T)
	case *ConstFloat:
		return a.ConstFloat(n.Val, n.T)
	case *VarRef:
		return a.VarRef(n.ID, n.T)
	case *AddrOf:
		return a.AddrOf(n.ID, n.T)
	case *Load:
		return a.Load(CloneExprIn(a, n.Addr), n.T, n.Volatile)
	case *Bin:
		return a.Bin(n.Op, CloneExprIn(a, n.L), CloneExprIn(a, n.R), n.T)
	case *Un:
		return a.Un(n.Op, CloneExprIn(a, n.X), n.T)
	case *Cast:
		return a.Cast(CloneExprIn(a, n.X), n.T)
	case *VecRef:
		return a.VecRef(CloneExprIn(a, n.Base), CloneExprIn(a, n.Stride), n.T)
	}
	panic("il: CloneExpr of unknown node")
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt { return CloneStmtIn(nil, s) }

// CloneStmtIn deep-copies a statement into arena a.
func CloneStmtIn(a *Arena, s Stmt) Stmt {
	switch n := s.(type) {
	case *Assign:
		return a.Assign(Assign{Dst: CloneExprIn(a, n.Dst), Src: CloneExprIn(a, n.Src), Pos: n.Pos})
	case *PredAssign:
		return a.PredAssign(PredAssign{Cond: CloneExprIn(a, n.Cond), Dst: CloneExprIn(a, n.Dst),
			Src: CloneExprIn(a, n.Src), Pos: n.Pos})
	case *Call:
		m := a.Call(Call{Dst: n.Dst, Callee: n.Callee, T: n.T, FunPtr: CloneExprIn(a, n.FunPtr), Pos: n.Pos})
		for _, arg := range n.Args {
			m.Args = append(m.Args, CloneExprIn(a, arg))
		}
		return m
	case *If:
		return a.If(If{Cond: CloneExprIn(a, n.Cond), Then: CloneStmtsIn(a, n.Then), Else: CloneStmtsIn(a, n.Else), Pos: n.Pos})
	case *While:
		return a.While(While{Cond: CloneExprIn(a, n.Cond), Body: CloneStmtsIn(a, n.Body), Safe: n.Safe, Pos: n.Pos})
	case *DoLoop:
		return a.DoLoop(DoLoop{IV: n.IV, Init: CloneExprIn(a, n.Init), Limit: CloneExprIn(a, n.Limit),
			Step: CloneExprIn(a, n.Step), Body: CloneStmtsIn(a, n.Body), Safe: n.Safe, Pos: n.Pos})
	case *DoParallel:
		m := a.DoParallel(DoParallel{IV: n.IV, Init: CloneExprIn(a, n.Init), Limit: CloneExprIn(a, n.Limit),
			Step: CloneExprIn(a, n.Step), Body: CloneStmtsIn(a, n.Body), Width: n.Width, Pos: n.Pos})
		if n.Sync != nil {
			info := *n.Sync
			m.Sync = &info
		}
		return m
	case *SyncPost:
		return &SyncPost{Pos: n.Pos}
	case *SyncWait:
		return &SyncWait{Distance: n.Distance, Pos: n.Pos}
	case *VectorAssign:
		return a.VectorAssign(VectorAssign{DstBase: CloneExprIn(a, n.DstBase), DstStride: CloneExprIn(a, n.DstStride),
			Len: CloneExprIn(a, n.Len), Elem: n.Elem, RHS: CloneExprIn(a, n.RHS),
			Mask: CloneExprIn(a, n.Mask), Pos: n.Pos})
	case *Goto:
		return a.Goto(*n)
	case *Label:
		return a.Label(*n)
	case *Return:
		return a.Return(Return{Val: CloneExprIn(a, n.Val), Pos: n.Pos})
	}
	panic("il: CloneStmt of unknown node")
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt { return CloneStmtsIn(nil, list) }

// CloneStmtsIn deep-copies a statement list into arena a.
func CloneStmtsIn(a *Arena, list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmtIn(a, s)
	}
	return out
}

// ExprEqual reports structural equality of two expressions (types compared
// by kind, not identity).
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.Val == y.Val
	case *ConstFloat:
		y, ok := b.(*ConstFloat)
		return ok && x.Val == y.Val
	case *VarRef:
		y, ok := b.(*VarRef)
		return ok && x.ID == y.ID
	case *AddrOf:
		y, ok := b.(*AddrOf)
		return ok && x.ID == y.ID
	case *Load:
		y, ok := b.(*Load)
		return ok && x.Volatile == y.Volatile && ExprEqual(x.Addr, y.Addr)
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case *Un:
		y, ok := b.(*Un)
		return ok && x.Op == y.Op && ExprEqual(x.X, y.X)
	case *Cast:
		y, ok := b.(*Cast)
		return ok && x.T.Kind == y.T.Kind && ExprEqual(x.X, y.X)
	case *VecRef:
		y, ok := b.(*VecRef)
		return ok && ExprEqual(x.Base, y.Base) && ExprEqual(x.Stride, y.Stride)
	}
	return false
}

// UsesVar reports whether e reads variable id (VarRef or AddrOf).
func UsesVar(e Expr, id VarID) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *VarRef:
			if n.ID == id {
				found = true
			}
		case *AddrOf:
			if n.ID == id {
				found = true
			}
		}
		return !found
	})
	return found
}

// HasVolatile reports whether e contains a volatile load or a reference to
// a volatile variable.
func (p *Proc) HasVolatile(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Load:
			if n.Volatile {
				found = true
			}
		case *VarRef:
			if p.Vars[n.ID].IsVolatile() {
				found = true
			}
		}
		return !found
	})
	return found
}

// HasLoad reports whether e contains any memory load.
func HasLoad(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*Load); ok {
			found = true
		}
		return !found
	})
	return found
}

// DefinedVar returns the variable a statement defines directly (a scalar
// assignment destination or a call result), or NoVar.
func DefinedVar(s Stmt) VarID {
	switch n := s.(type) {
	case *Assign:
		if v, ok := n.Dst.(*VarRef); ok {
			return v.ID
		}
	case *Call:
		return n.Dst
	}
	return NoVar
}

// IsStore reports whether s writes through memory (store or vector store).
func IsStore(s Stmt) bool {
	switch n := s.(type) {
	case *Assign:
		_, isLoad := n.Dst.(*Load)
		return isLoad
	case *PredAssign:
		return true
	case *VectorAssign:
		return true
	}
	return false
}
