package il

// This file provides the traversal, rewriting, and cloning utilities the
// optimizer phases are built on.

// WalkExpr calls f on e and every subexpression, pre-order. If f returns
// false the subtree below the node is skipped.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *Load:
		WalkExpr(n.Addr, f)
	case *Bin:
		WalkExpr(n.L, f)
		WalkExpr(n.R, f)
	case *Un:
		WalkExpr(n.X, f)
	case *Cast:
		WalkExpr(n.X, f)
	case *VecRef:
		WalkExpr(n.Base, f)
		WalkExpr(n.Stride, f)
	}
}

// WalkStmts calls f on every statement in the list and, recursively, in
// nested bodies. If f returns false the statement's nested bodies are
// skipped.
func WalkStmts(stmts []Stmt, f func(Stmt) bool) {
	for _, s := range stmts {
		if !f(s) {
			continue
		}
		switch n := s.(type) {
		case *If:
			WalkStmts(n.Then, f)
			WalkStmts(n.Else, f)
		case *While:
			WalkStmts(n.Body, f)
		case *DoLoop:
			WalkStmts(n.Body, f)
		case *DoParallel:
			WalkStmts(n.Body, f)
		}
	}
}

// StmtExprs calls f on each top-level expression operand of s (not
// recursing into subexpressions; use WalkExpr for that).
func StmtExprs(s Stmt, f func(Expr)) {
	switch n := s.(type) {
	case *Assign:
		f(n.Dst)
		f(n.Src)
	case *Call:
		if n.FunPtr != nil {
			f(n.FunPtr)
		}
		for _, a := range n.Args {
			f(a)
		}
	case *If:
		f(n.Cond)
	case *While:
		f(n.Cond)
	case *DoLoop:
		f(n.Init)
		f(n.Limit)
		f(n.Step)
	case *DoParallel:
		f(n.Init)
		f(n.Limit)
		f(n.Step)
	case *VectorAssign:
		f(n.DstBase)
		f(n.DstStride)
		f(n.Len)
		f(n.RHS)
	case *Return:
		if n.Val != nil {
			f(n.Val)
		}
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with f(node).
// f receives a node whose children have already been rewritten.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Load:
		m := *n
		m.Addr = RewriteExpr(n.Addr, f)
		return f(&m)
	case *Bin:
		m := *n
		m.L = RewriteExpr(n.L, f)
		m.R = RewriteExpr(n.R, f)
		return f(&m)
	case *Un:
		m := *n
		m.X = RewriteExpr(n.X, f)
		return f(&m)
	case *Cast:
		m := *n
		m.X = RewriteExpr(n.X, f)
		return f(&m)
	case *VecRef:
		m := *n
		m.Base = RewriteExpr(n.Base, f)
		m.Stride = RewriteExpr(n.Stride, f)
		return f(&m)
	default:
		return f(CloneExpr(e))
	}
}

// RewriteStmtExprs applies RewriteExpr with f to every expression operand
// of s, in place.
func RewriteStmtExprs(s Stmt, f func(Expr) Expr) {
	switch n := s.(type) {
	case *Assign:
		// The destination of a store is an expression too, but a VarRef
		// destination is a definition, not a use; rewriters that must
		// distinguish handle Assign themselves before calling this.
		n.Dst = RewriteExpr(n.Dst, f)
		n.Src = RewriteExpr(n.Src, f)
	case *Call:
		if n.FunPtr != nil {
			n.FunPtr = RewriteExpr(n.FunPtr, f)
		}
		for i := range n.Args {
			n.Args[i] = RewriteExpr(n.Args[i], f)
		}
	case *If:
		n.Cond = RewriteExpr(n.Cond, f)
	case *While:
		n.Cond = RewriteExpr(n.Cond, f)
	case *DoLoop:
		n.Init = RewriteExpr(n.Init, f)
		n.Limit = RewriteExpr(n.Limit, f)
		n.Step = RewriteExpr(n.Step, f)
	case *DoParallel:
		n.Init = RewriteExpr(n.Init, f)
		n.Limit = RewriteExpr(n.Limit, f)
		n.Step = RewriteExpr(n.Step, f)
	case *VectorAssign:
		n.DstBase = RewriteExpr(n.DstBase, f)
		n.DstStride = RewriteExpr(n.DstStride, f)
		n.Len = RewriteExpr(n.Len, f)
		n.RHS = RewriteExpr(n.RHS, f)
	case *Return:
		if n.Val != nil {
			n.Val = RewriteExpr(n.Val, f)
		}
	}
}

// RewriteTreeExprs applies f (via RewriteExpr) to every expression operand
// of s and of all statements nested inside it. Scalar assignment
// destinations are definitions, not uses, and are left alone; store
// destinations have their address rewritten.
func RewriteTreeExprs(s Stmt, f func(Expr) Expr) {
	WalkStmts([]Stmt{s}, func(sub Stmt) bool {
		if as, ok := sub.(*Assign); ok {
			if ld, isStore := as.Dst.(*Load); isStore {
				as.Dst = &Load{Addr: RewriteExpr(ld.Addr, f), T: ld.T, Volatile: ld.Volatile}
			}
			as.Src = RewriteExpr(as.Src, f)
			return true
		}
		RewriteStmtExprs(sub, f)
		return true
	})
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ConstInt:
		m := *n
		return &m
	case *ConstFloat:
		m := *n
		return &m
	case *VarRef:
		m := *n
		return &m
	case *AddrOf:
		m := *n
		return &m
	case *Load:
		return &Load{Addr: CloneExpr(n.Addr), T: n.T, Volatile: n.Volatile}
	case *Bin:
		return &Bin{Op: n.Op, L: CloneExpr(n.L), R: CloneExpr(n.R), T: n.T}
	case *Un:
		return &Un{Op: n.Op, X: CloneExpr(n.X), T: n.T}
	case *Cast:
		return &Cast{X: CloneExpr(n.X), T: n.T}
	case *VecRef:
		return &VecRef{Base: CloneExpr(n.Base), Stride: CloneExpr(n.Stride), T: n.T}
	}
	panic("il: CloneExpr of unknown node")
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch n := s.(type) {
	case *Assign:
		return &Assign{Dst: CloneExpr(n.Dst), Src: CloneExpr(n.Src), Pos: n.Pos}
	case *Call:
		m := &Call{Dst: n.Dst, Callee: n.Callee, T: n.T, FunPtr: CloneExpr(n.FunPtr), Pos: n.Pos}
		for _, a := range n.Args {
			m.Args = append(m.Args, CloneExpr(a))
		}
		return m
	case *If:
		return &If{Cond: CloneExpr(n.Cond), Then: CloneStmts(n.Then), Else: CloneStmts(n.Else), Pos: n.Pos}
	case *While:
		return &While{Cond: CloneExpr(n.Cond), Body: CloneStmts(n.Body), Safe: n.Safe, Pos: n.Pos}
	case *DoLoop:
		return &DoLoop{IV: n.IV, Init: CloneExpr(n.Init), Limit: CloneExpr(n.Limit),
			Step: CloneExpr(n.Step), Body: CloneStmts(n.Body), Safe: n.Safe, Pos: n.Pos}
	case *DoParallel:
		return &DoParallel{IV: n.IV, Init: CloneExpr(n.Init), Limit: CloneExpr(n.Limit),
			Step: CloneExpr(n.Step), Body: CloneStmts(n.Body), Width: n.Width, Pos: n.Pos}
	case *VectorAssign:
		return &VectorAssign{DstBase: CloneExpr(n.DstBase), DstStride: CloneExpr(n.DstStride),
			Len: CloneExpr(n.Len), Elem: n.Elem, RHS: CloneExpr(n.RHS), Pos: n.Pos}
	case *Goto:
		m := *n
		return &m
	case *Label:
		m := *n
		return &m
	case *Return:
		return &Return{Val: CloneExpr(n.Val), Pos: n.Pos}
	}
	panic("il: CloneStmt of unknown node")
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// ExprEqual reports structural equality of two expressions (types compared
// by kind, not identity).
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case *ConstInt:
		y, ok := b.(*ConstInt)
		return ok && x.Val == y.Val
	case *ConstFloat:
		y, ok := b.(*ConstFloat)
		return ok && x.Val == y.Val
	case *VarRef:
		y, ok := b.(*VarRef)
		return ok && x.ID == y.ID
	case *AddrOf:
		y, ok := b.(*AddrOf)
		return ok && x.ID == y.ID
	case *Load:
		y, ok := b.(*Load)
		return ok && x.Volatile == y.Volatile && ExprEqual(x.Addr, y.Addr)
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case *Un:
		y, ok := b.(*Un)
		return ok && x.Op == y.Op && ExprEqual(x.X, y.X)
	case *Cast:
		y, ok := b.(*Cast)
		return ok && x.T.Kind == y.T.Kind && ExprEqual(x.X, y.X)
	case *VecRef:
		y, ok := b.(*VecRef)
		return ok && ExprEqual(x.Base, y.Base) && ExprEqual(x.Stride, y.Stride)
	}
	return false
}

// UsesVar reports whether e reads variable id (VarRef or AddrOf).
func UsesVar(e Expr, id VarID) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *VarRef:
			if n.ID == id {
				found = true
			}
		case *AddrOf:
			if n.ID == id {
				found = true
			}
		}
		return !found
	})
	return found
}

// HasVolatile reports whether e contains a volatile load or a reference to
// a volatile variable.
func (p *Proc) HasVolatile(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Load:
			if n.Volatile {
				found = true
			}
		case *VarRef:
			if p.Vars[n.ID].IsVolatile() {
				found = true
			}
		}
		return !found
	})
	return found
}

// HasLoad reports whether e contains any memory load.
func HasLoad(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*Load); ok {
			found = true
		}
		return !found
	})
	return found
}

// DefinedVar returns the variable a statement defines directly (a scalar
// assignment destination or a call result), or NoVar.
func DefinedVar(s Stmt) VarID {
	switch n := s.(type) {
	case *Assign:
		if v, ok := n.Dst.(*VarRef); ok {
			return v.ID
		}
	case *Call:
		return n.Dst
	}
	return NoVar
}

// IsStore reports whether s writes through memory (store or vector store).
func IsStore(s Stmt) bool {
	switch n := s.(type) {
	case *Assign:
		_, isLoad := n.Dst.(*Load)
		return isLoad
	case *VectorAssign:
		return true
	}
	return false
}
