package il

import (
	"strings"
	"testing"

	"repro/internal/ctype"
)

// mkP builds a tiny procedure for rendering tests.
func mkP() *Proc {
	p := NewProc("demo", ctype.IntType)
	p.AddVar(Var{Name: "x", Type: ctype.IntType, Class: ClassLocal})
	p.AddVar(Var{Name: "p", Type: ctype.PointerTo(ctype.FloatType), Class: ClassParam})
	p.Params = []VarID{1}
	return p
}

func TestStmtStringForms(t *testing.T) {
	p := mkP()
	intT := ctype.IntType
	cases := []struct {
		s    Stmt
		want []string
	}{
		{&Assign{Dst: Ref(0, intT), Src: Int(5)}, []string{"x = 5"}},
		{&Assign{Dst: &Load{Addr: Ref(1, p.Vars[1].Type), T: ctype.FloatType}, Src: Flt(1, ctype.FloatType)},
			[]string{"*(p) = 1"}},
		{&Call{Dst: 0, Callee: "g", Args: []Expr{Int(1), Int(2)}, T: intT},
			[]string{"x = call g(1, 2)"}},
		{&Call{Dst: NoVar, Callee: "h", T: ctype.VoidType}, []string{"call h()"}},
		{&Call{Dst: NoVar, FunPtr: Ref(0, intT), T: ctype.VoidType}, []string{"call (*x)()"}},
		{&If{Cond: Ref(0, intT), Then: []Stmt{&Return{}}, Else: []Stmt{&Return{Val: Int(1)}}},
			[]string{"if x {", "} else {", "return 1"}},
		{&While{Cond: Ref(0, intT), Safe: true, Body: []Stmt{&Goto{Target: "L"}}},
			[]string{"while x /*safe*/", "goto L"}},
		{&DoLoop{IV: 0, Init: Int(0), Limit: Int(9), Step: Int(1), Safe: true},
			[]string{"do x = 0, 9, 1 /*safe*/"}},
		{&DoParallel{IV: 0, Init: Int(0), Limit: Int(9), Step: Int(2)},
			[]string{"do parallel x = 0, 9, 2"}},
		{&VectorAssign{DstBase: Ref(1, p.Vars[1].Type), DstStride: Int(4), Len: Int(8),
			Elem: ctype.FloatType,
			RHS:  &VecRef{Base: Ref(1, p.Vars[1].Type), Stride: Int(4), T: ctype.FloatType}},
			[]string{"[p :4](0:8) = [p :4]"}},
		{&Label{Name: "top"}, []string{"top:"}},
		{&Return{}, []string{"return"}},
	}
	for _, c := range cases {
		got := p.StmtString(c.s, 0)
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("StmtString(%T) = %q, missing %q", c.s, got, w)
			}
		}
	}
}

func TestExprStringForms(t *testing.T) {
	p := mkP()
	cases := []struct {
		e    Expr
		want string
	}{
		{Int(7), "7"},
		{Flt(2.5, ctype.FloatType), "2.5"},
		{Ref(0, ctype.IntType), "x"},
		{&AddrOf{ID: 0, T: ctype.PointerTo(ctype.IntType)}, "&x"},
		{&Load{Addr: Ref(1, p.Vars[1].Type), T: ctype.FloatType, Volatile: true}, "*(volatile)(p)"},
		{&Un{Op: OpNot, X: Ref(0, ctype.IntType), T: ctype.IntType}, "(! x)"},
		{&Cast{X: Ref(0, ctype.IntType), T: ctype.FloatType}, "(float)(x)"},
	}
	for _, c := range cases {
		if got := p.ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
	if p.ExprString(nil) != "<nil>" {
		t.Error("nil expr")
	}
}

func TestRawStringMethods(t *testing.T) {
	// The raw String() forms (v-numbers) used outside a proc context.
	e := &Bin{Op: OpAdd, L: &VarRef{ID: 3, T: ctype.IntType}, R: Int(1), T: ctype.IntType}
	if e.String() != "(v3 + 1)" {
		t.Errorf("Bin.String: %s", e)
	}
	s := &Assign{Dst: &VarRef{ID: 0, T: ctype.IntType}, Src: Int(2)}
	if s.String() != "v0 = 2" {
		t.Errorf("Assign.String: %s", s)
	}
	g := &Goto{Target: "L"}
	if g.String() != "goto L" {
		t.Errorf("Goto.String: %s", g)
	}
	w := &While{Cond: Int(1), Body: []Stmt{s}}
	if !strings.Contains(w.String(), "while 1 [1 stmts]") {
		t.Errorf("While.String: %s", w)
	}
	ifs := &If{Cond: Int(0)}
	if !strings.Contains(ifs.String(), "if 0") {
		t.Errorf("If.String: %s", ifs)
	}
	va := &VectorAssign{DstBase: Int(0), DstStride: Int(4), Len: Int(8), RHS: Int(1)}
	if !strings.Contains(va.String(), "](0:8)") {
		t.Errorf("VectorAssign.String: %s", va)
	}
	d := &DoParallel{IV: 1, Init: Int(0), Limit: Int(3), Step: Int(1)}
	if !strings.Contains(d.String(), "do parallel v1") {
		t.Errorf("DoParallel.String: %s", d)
	}
	vr := &VecRef{Base: Int(0), Stride: Int(4), T: ctype.FloatType}
	if vr.String() != "[0 :4]" {
		t.Errorf("VecRef.String: %s", vr)
	}
	c := &Call{Dst: 2, Callee: "f", T: ctype.IntType}
	if c.String() != "v2 = call f()" {
		t.Errorf("Call.String: %s", c)
	}
	r := &Return{Val: Int(1)}
	if r.String() != "return 1" {
		t.Errorf("Return.String: %s", r)
	}
}

func TestProgramString(t *testing.T) {
	prog := &Program{}
	prog.AddGlobal(GlobalVar{Name: "g", Type: ctype.IntType})
	prog.AddGlobal(GlobalVar{Name: "g", Type: ctype.IntType}) // dup ignored
	if len(prog.Globals) != 1 {
		t.Error("duplicate global added")
	}
	p := mkP()
	p.Body = []Stmt{&Return{Val: Int(0)}}
	prog.Procs = append(prog.Procs, p)
	out := prog.String()
	if !strings.Contains(out, "global int g") || !strings.Contains(out, "proc demo") {
		t.Errorf("program string:\n%s", out)
	}
	if prog.Proc("demo") != p || prog.Proc("nope") != nil {
		t.Error("Proc lookup")
	}
	if prog.Global("g") == nil || prog.Global("zz") != nil {
		t.Error("Global lookup")
	}
}

func TestVarNameFallbacks(t *testing.T) {
	p := mkP()
	if p.varName(NoVar) != "_" {
		t.Error("NoVar name")
	}
	if p.varName(VarID(99)) != "v99" {
		t.Error("out-of-range name")
	}
	if p.LookupVar("x") != 0 || p.LookupVar("zz") != NoVar {
		t.Error("LookupVar")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsCommutative() || OpSub.IsCommutative() {
		t.Error("commutativity")
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("comparison")
	}
	if OpShl.String() != "<<" || OpNeg.String() != "neg" {
		t.Error("op names")
	}
}

func TestVarClassString(t *testing.T) {
	if ClassParam.String() != "param" || ClassStatic.String() != "static" {
		t.Error("class names")
	}
	v := Var{Name: "ks", Type: ctype.Qualified(ctype.IntType, true, false)}
	if !v.IsVolatile() {
		t.Error("volatile var")
	}
}
