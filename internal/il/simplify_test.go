package il

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ctype"
)

func TestSimplifyCancellation(t *testing.T) {
	it := ctype.IntType
	a := Ref(0, ctype.PointerTo(ctype.FloatType))
	n := Ref(1, it)
	// (a + 4*n) + (-4*n)  →  a
	e := &Bin{Op: OpAdd,
		L: &Bin{Op: OpAdd, L: a, R: &Bin{Op: OpMul, L: Int(4), R: n, T: it}, T: a.T},
		R: &Bin{Op: OpMul, L: Int(-4), R: Ref(1, it), T: it},
		T: a.T}
	got := SimplifyLinear(e)
	if v, ok := got.(*VarRef); !ok || v.ID != 0 {
		t.Errorf("got %s", got)
	}
}

func TestSimplifyLikeTerms(t *testing.T) {
	it := ctype.IntType
	i := Ref(2, it)
	// 2*i + 3*i → 5*i
	e := &Bin{Op: OpAdd,
		L: &Bin{Op: OpMul, L: Int(2), R: i, T: it},
		R: &Bin{Op: OpMul, L: Int(3), R: Ref(2, it), T: it},
		T: it}
	got := SimplifyLinear(e)
	b, ok := got.(*Bin)
	if !ok || b.Op != OpMul {
		t.Fatalf("got %s", got)
	}
	if v, _ := IsIntConst(b.L); v != 5 {
		t.Errorf("coef %s", b.L)
	}
}

func TestSimplifyConstantMerge(t *testing.T) {
	it := ctype.IntType
	x := Ref(0, it)
	// (x + 2) + 3 → x + 5
	e := &Bin{Op: OpAdd,
		L: &Bin{Op: OpAdd, L: x, R: Int(2), T: it},
		R: Int(3), T: it}
	got := SimplifyLinear(e)
	b, ok := got.(*Bin)
	if !ok || b.Op != OpAdd {
		t.Fatalf("got %s", got)
	}
	if v, _ := IsIntConst(b.R); v != 5 {
		t.Errorf("constant %s", b.R)
	}
	// (x + 2) - 5 → x - 3
	e2 := &Bin{Op: OpSub,
		L: &Bin{Op: OpAdd, L: Ref(0, it), R: Int(2), T: it},
		R: Int(5), T: it}
	got2 := SimplifyLinear(e2)
	b2, ok := got2.(*Bin)
	if !ok || b2.Op != OpSub {
		t.Fatalf("got %s", got2)
	}
	if v, _ := IsIntConst(b2.R); v != 3 {
		t.Errorf("constant %s", b2.R)
	}
}

func TestSimplifyLeavesUncombinable(t *testing.T) {
	it := ctype.IntType
	e := &Bin{Op: OpAdd, L: Ref(0, it), R: Ref(1, it), T: it}
	if got := SimplifyLinear(e); got != e {
		t.Errorf("uncombinable rebuilt: %s", got)
	}
	// Volatile loads must not be touched.
	vol := &Bin{Op: OpAdd,
		L: &Load{Addr: Ref(0, ctype.PointerTo(it)), T: it, Volatile: true},
		R: &Load{Addr: Ref(0, ctype.PointerTo(it)), T: it, Volatile: true},
		T: it}
	if got := SimplifyLinear(vol); got != vol {
		t.Errorf("volatile sum rebuilt: %s", got)
	}
	// Floats are out of scope.
	fe := &Bin{Op: OpAdd, L: Flt(1, ctype.FloatType), R: Flt(2, ctype.FloatType), T: ctype.FloatType}
	if got := SimplifyLinear(fe); got != fe {
		t.Errorf("float sum touched: %s", got)
	}
}

func TestSimplifyToZero(t *testing.T) {
	it := ctype.IntType
	x := Ref(0, it)
	e := &Bin{Op: OpSub, L: x, R: Ref(0, it), T: it}
	got := SimplifyLinear(e)
	if v, ok := IsIntConst(got); !ok || v != 0 {
		t.Errorf("x - x = %s", got)
	}
}

// evalLinear evaluates an expression over two int variables.
func evalLinear(e Expr, v0, v1 int64) int64 {
	switch n := e.(type) {
	case *ConstInt:
		return n.Val
	case *VarRef:
		if n.ID == 0 {
			return v0
		}
		return v1
	case *Bin:
		l, r := evalLinear(n.L, v0, v1), evalLinear(n.R, v0, v1)
		switch n.Op {
		case OpAdd:
			return l + r
		case OpSub:
			return l - r
		case OpMul:
			return l * r
		}
	case *Un:
		if n.Op == OpNeg {
			return -evalLinear(n.X, v0, v1)
		}
	}
	panic("evalLinear: " + e.String())
}

// randomLinear builds a random +,-,*const tree over two variables.
func randomLinear(r *rand.Rand, depth int) Expr {
	it := ctype.IntType
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Int(int64(r.Intn(11) - 5))
		case 1:
			return Ref(0, it)
		default:
			return Ref(1, it)
		}
	}
	switch r.Intn(4) {
	case 0:
		return &Bin{Op: OpAdd, L: randomLinear(r, depth-1), R: randomLinear(r, depth-1), T: it}
	case 1:
		return &Bin{Op: OpSub, L: randomLinear(r, depth-1), R: randomLinear(r, depth-1), T: it}
	case 2:
		return &Bin{Op: OpMul, L: Int(int64(r.Intn(7) - 3)), R: randomLinear(r, depth-1), T: it}
	default:
		return &Un{Op: OpNeg, X: randomLinear(r, depth-1), T: it}
	}
}

// Property: SimplifyLinear preserves value and is idempotent.
func TestQuickSimplifyPreservesValue(t *testing.T) {
	f := func(seed int64, a, b int8) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomLinear(r, 5)
		s := SimplifyLinear(e)
		v0, v1 := int64(a), int64(b)
		if evalLinear(e, v0, v1) != evalLinear(s, v0, v1) {
			return false
		}
		s2 := SimplifyLinear(s)
		return evalLinear(s2, v0, v1) == evalLinear(s, v0, v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
