package il

import "repro/internal/token"

// StmtPos returns the source position recorded on s (the zero Pos if the
// statement was never stamped).
func StmtPos(s Stmt) token.Pos {
	switch n := s.(type) {
	case *Assign:
		return n.Pos
	case *PredAssign:
		return n.Pos
	case *Call:
		return n.Pos
	case *If:
		return n.Pos
	case *While:
		return n.Pos
	case *DoLoop:
		return n.Pos
	case *DoParallel:
		return n.Pos
	case *VectorAssign:
		return n.Pos
	case *Goto:
		return n.Pos
	case *Label:
		return n.Pos
	case *Return:
		return n.Pos
	}
	return token.Pos{}
}

// SetStmtPos records position p on s (top-level only; nested bodies are
// untouched).
func SetStmtPos(s Stmt, p token.Pos) {
	switch n := s.(type) {
	case *Assign:
		n.Pos = p
	case *PredAssign:
		n.Pos = p
	case *Call:
		n.Pos = p
	case *If:
		n.Pos = p
	case *While:
		n.Pos = p
	case *DoLoop:
		n.Pos = p
	case *DoParallel:
		n.Pos = p
	case *VectorAssign:
		n.Pos = p
	case *Goto:
		n.Pos = p
	case *Label:
		n.Pos = p
	case *Return:
		n.Pos = p
	}
}

// StampStmts fills position p into every statement in list (recursively)
// whose position is still zero. Lowering uses it to give
// compiler-manufactured statements the position of the C statement they
// implement, and inline expansion uses it to give cloned catalog bodies
// the call-site position — so no diagnostic ever prints a zero position.
func StampStmts(list []Stmt, p token.Pos) {
	if p.Line == 0 {
		return
	}
	WalkStmts(list, func(s Stmt) bool {
		if q := StmtPos(s); q.Line == 0 {
			SetStmtPos(s, p)
		}
		return true
	})
}
