// Package il defines the Titan compiler's high-level intermediate language.
//
// Following the paper (§3), the IL departs from the traditional low-level C
// representation in three ways:
//
//   - Expressions are pure. Every operation that changes memory is an
//     explicit statement: the IL has an assignment statement but no
//     assignment operator, and ?:, &&, || and function calls are not
//     representable inside expressions.
//   - Loops are explicit. The front end lowers every C for loop to a While;
//     the optimizer converts While loops to Fortran-style DoLoops when it
//     can prove the iteration pattern, and the vectorizer converts DoLoops
//     to VectorAssign and DoParallel forms.
//   - Procedures contain no hard pointers. Variables are referenced by
//     VarID (an index into the procedure's variable table), globals by
//     name, and callees by name, so a procedure can be written to a catalog
//     and inlined into another translation unit (§7).
package il

import (
	"fmt"
	"strings"

	"repro/internal/ctype"
	"repro/internal/token"
)

// VarID indexes a procedure's Vars table.
type VarID int

// NoVar marks "no variable" (e.g. a call whose result is discarded).
const NoVar VarID = -1

// VarClass says where a variable lives.
type VarClass int

// Variable classes.
const (
	ClassParam  VarClass = iota // incoming parameter
	ClassLocal                  // automatic local
	ClassTemp                   // compiler temporary
	ClassGlobal                 // reference to a program global (by name)
	ClassStatic                 // function-static, exported as a hidden global
)

var classNames = [...]string{"param", "local", "temp", "global", "static"}

// String names the class.
func (c VarClass) String() string { return classNames[c] }

// Var is one entry in a procedure's variable table.
type Var struct {
	Name  string
	Type  *ctype.Type
	Class VarClass
	// AddrTaken records whether & was applied to the variable (or it is an
	// array/aggregate, which is addressed by nature). Address-taken
	// variables cannot be register-allocated and may alias loads/stores.
	AddrTaken bool
}

// IsVolatile reports whether accesses to the variable are volatile.
func (v *Var) IsVolatile() bool { return v.Type != nil && v.Type.Volatile }

// ---------------------------------------------------------------- Expressions

// Op is an IL operator. The set is smaller than C's: logical and
// conditional operators were statement-ized by the front end.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpNeg // unary -
	OpNot // unary ! (0/1 result)
	OpBitNot
)

var opNames = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", ">", "<=", ">=", "neg", "!", "~"}

// String returns the operator spelling.
func (op Op) String() string { return opNames[op] }

// IsComparison reports whether op produces a 0/1 int.
func (op Op) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsCommutative reports whether op commutes.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// Expr is a pure IL expression.
type Expr interface {
	Type() *ctype.Type
	String() string
	exprNode()
}

// ConstInt is an integer constant.
type ConstInt struct {
	Val int64
	T   *ctype.Type
}

// Type returns the constant's type.
func (e *ConstInt) Type() *ctype.Type { return e.T }

// String renders the constant.
func (e *ConstInt) String() string { return fmt.Sprintf("%d", e.Val) }
func (e *ConstInt) exprNode()      {}

// ConstFloat is a floating constant.
type ConstFloat struct {
	Val float64
	T   *ctype.Type
}

// Type returns the constant's type.
func (e *ConstFloat) Type() *ctype.Type { return e.T }

// String renders the constant.
func (e *ConstFloat) String() string { return fmt.Sprintf("%g", e.Val) }
func (e *ConstFloat) exprNode()      {}

// VarRef reads a scalar variable.
type VarRef struct {
	ID VarID
	T  *ctype.Type
}

// Type returns the variable's type.
func (e *VarRef) Type() *ctype.Type { return e.T }

// String renders the reference as v<ID>; Proc.ExprString gives names.
func (e *VarRef) String() string { return fmt.Sprintf("v%d", e.ID) }
func (e *VarRef) exprNode()      {}

// AddrOf takes the address of a variable (for arrays and aggregates this is
// the base address).
type AddrOf struct {
	ID VarID
	T  *ctype.Type // pointer type
}

// Type returns the pointer type.
func (e *AddrOf) Type() *ctype.Type { return e.T }

// String renders the address expression.
func (e *AddrOf) String() string { return fmt.Sprintf("&v%d", e.ID) }
func (e *AddrOf) exprNode()      {}

// Load reads memory at Addr. Volatile loads must not be duplicated,
// eliminated, or reordered.
type Load struct {
	Addr     Expr
	T        *ctype.Type
	Volatile bool
}

// Type returns the loaded value's type.
func (e *Load) Type() *ctype.Type { return e.T }

// String renders the load.
func (e *Load) String() string {
	if e.Volatile {
		return fmt.Sprintf("*(volatile)(%s)", e.Addr)
	}
	return fmt.Sprintf("*(%s)", e.Addr)
}
func (e *Load) exprNode() {}

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
	T    *ctype.Type
}

// Type returns the result type.
func (e *Bin) Type() *ctype.Type { return e.T }

// String renders the expression fully parenthesized.
func (e *Bin) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *Bin) exprNode()      {}

// Un applies a unary operator.
type Un struct {
	Op Op
	X  Expr
	T  *ctype.Type
}

// Type returns the result type.
func (e *Un) Type() *ctype.Type { return e.T }

// String renders the expression.
func (e *Un) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.X) }
func (e *Un) exprNode()      {}

// Cast converts between scalar types.
type Cast struct {
	X Expr
	T *ctype.Type
}

// Type returns the target type.
func (e *Cast) Type() *ctype.Type { return e.T }

// String renders the cast.
func (e *Cast) String() string { return fmt.Sprintf("(%s)(%s)", e.T, e.X) }
func (e *Cast) exprNode()      {}

// VecRef is a vector operand inside a VectorAssign right-hand side: the
// memory section Base + lane*Stride for lane in [0, length). Base is a byte
// address expression; Stride is in bytes.
type VecRef struct {
	Base   Expr
	Stride Expr
	T      *ctype.Type // element type
}

// Type returns the element type.
func (e *VecRef) Type() *ctype.Type { return e.T }

// String renders the section in the paper's colon notation.
func (e *VecRef) String() string { return fmt.Sprintf("[%s :%s]", e.Base, e.Stride) }
func (e *VecRef) exprNode()      {}

// ---------------------------------------------------------------- Statements

// Stmt is an IL statement. Every statement carries the source position of
// the C statement it was lowered from (or, for statements manufactured by
// the optimizer, the position of the construct that caused them — the
// converted loop, the inline call site); StmtPos/SetStmtPos access it
// uniformly.
type Stmt interface {
	String() string
	stmtNode()
}

// Assign stores Src into Dst. Dst must be a *VarRef (scalar variable) or a
// *Load (store through an address).
type Assign struct {
	Dst Expr
	Src Expr
	Pos token.Pos
}

// String renders the assignment.
func (s *Assign) String() string { return fmt.Sprintf("%s = %s", s.Dst, s.Src) }
func (s *Assign) stmtNode()      {}

// PredAssign is a predicated store, the scalar form if-conversion
// rewrites a guarded assignment into:  if (Cond) Dst = Src  with no
// branch. Dst must be a *Load (a store through an address): guarded
// scalar-variable assignments stay as If so scalar dataflow is
// unchanged. When Cond is false the statement has no effect — no store,
// no fault from the destination address. The vectorizer turns these
// into masked VectorAssign strips; codegen lowers a scalar residue
// PredAssign to a conditional skip around the store.
type PredAssign struct {
	Cond Expr
	Dst  Expr // must be *Load
	Src  Expr
	Pos  token.Pos
}

// String renders the predicated store.
func (s *PredAssign) String() string {
	return fmt.Sprintf("(%s)? %s = %s", s.Cond, s.Dst, s.Src)
}
func (s *PredAssign) stmtNode() {}

// Call invokes Callee. Dst receives the result (NoVar to discard). An
// indirect call through a function pointer sets FunPtr instead of Callee.
type Call struct {
	Dst    VarID
	Callee string
	FunPtr Expr // non-nil for indirect calls
	Args   []Expr
	T      *ctype.Type // result type (void for none)
	Pos    token.Pos
}

// String renders the call.
func (s *Call) String() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.String()
	}
	target := s.Callee
	if s.FunPtr != nil {
		target = "(*" + s.FunPtr.String() + ")"
	}
	if s.Dst == NoVar {
		return fmt.Sprintf("call %s(%s)", target, strings.Join(args, ", "))
	}
	return fmt.Sprintf("v%d = call %s(%s)", s.Dst, target, strings.Join(args, ", "))
}
func (s *Call) stmtNode() {}

// If branches on Cond.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  token.Pos
}

// String renders a one-line summary.
func (s *If) String() string {
	return fmt.Sprintf("if %s then [%d stmts] else [%d stmts]", s.Cond, len(s.Then), len(s.Else))
}
func (s *If) stmtNode() {}

// While loops while Cond is non-zero.
type While struct {
	Cond Expr
	Body []Stmt
	// Safe is set by "#pragma safe": the loop body is free of aliasing
	// between distinct pointer parameters.
	Safe bool
	Pos  token.Pos
}

// String renders a one-line summary.
func (s *While) String() string { return fmt.Sprintf("while %s [%d stmts]", s.Cond, len(s.Body)) }
func (s *While) stmtNode()      {}

// DoLoop is a Fortran-style counted loop: IV takes Init, Init+Step, ...
// while the trip count floor((Limit-Init)/Step)+1 (when positive) has not
// been exhausted. Step must evaluate non-zero; its sign gives direction.
// The loop body must not assign IV; the conversion passes guarantee this.
type DoLoop struct {
	IV    VarID
	Init  Expr
	Limit Expr
	Step  Expr
	Body  []Stmt
	Safe  bool
	Pos   token.Pos
}

// String renders a one-line summary.
func (s *DoLoop) String() string {
	return fmt.Sprintf("do v%d = %s, %s, %s [%d stmts]", s.IV, s.Init, s.Limit, s.Step, len(s.Body))
}
func (s *DoLoop) stmtNode() {}

// DoParallel is a DoLoop whose iterations are independent and may be
// spread across processors.
type DoParallel struct {
	IV    VarID
	Init  Expr
	Limit Expr
	Step  Expr
	Body  []Stmt
	// Width caps how many processors the iterations spread over; 0 means
	// every processor (the schedule layer sets nonzero widths).
	Width int
	// Sync, when non-nil, makes the loop a DOACROSS region: iterations
	// carry a dependence of constant distance Sync.Distance, enforced by
	// SyncPost/SyncWait markers in Body that codegen lowers to post/wait.
	Sync *SyncInfo
	Pos  token.Pos
}

// SyncInfo annotates a DoParallel scheduled DOACROSS: its iterations are
// not independent but pipeline across processors, synchronized on the
// carried dependence it describes (arXiv:1211.4101). All carried
// dependences of the loop are covered by one combined post/wait pair at
// the minimum distance.
type SyncInfo struct {
	// Distance is the combined (minimum) constant dependence distance in
	// iterations; the consumer of iteration i waits for iteration
	// i-Distance to pass its SyncPost.
	Distance int64
	// Stride coalesces posts: only every Stride-th iteration posts,
	// trading sync overhead for pipeline latency (schedule SyncStride).
	Stride int
	// Desc names the dependence being synchronized, for remarks.
	Desc string
}

// String renders a one-line summary.
func (s *DoParallel) String() string {
	suffix := ""
	if s.Sync != nil {
		suffix = fmt.Sprintf(" sync(%d)", s.Sync.Distance)
	}
	if s.Width > 0 {
		return fmt.Sprintf("do parallel(%d)%s v%d = %s, %s, %s [%d stmts]", s.Width, suffix, s.IV, s.Init, s.Limit, s.Step, len(s.Body))
	}
	return fmt.Sprintf("do parallel%s v%d = %s, %s, %s [%d stmts]", suffix, s.IV, s.Init, s.Limit, s.Step, len(s.Body))
}
func (s *DoParallel) stmtNode() {}

// SyncPost marks the point in a DOACROSS body after which the iteration's
// contribution to the carried dependence is complete: codegen emits the
// post releasing iteration IV+Distance here. Valid only directly inside a
// DoParallel with Sync set.
type SyncPost struct {
	Pos token.Pos
}

// String renders a one-line summary.
func (s *SyncPost) String() string { return "sync.post" }
func (s *SyncPost) stmtNode()      {}

// SyncWait marks the point in a DOACROSS body before which the iteration
// must observe iteration IV-Distance's SyncPost: codegen emits the wait
// here. Valid only directly inside a DoParallel with Sync set.
type SyncWait struct {
	// Distance mirrors the enclosing loop's Sync.Distance.
	Distance int64
	Pos      token.Pos
}

// String renders a one-line summary.
func (s *SyncWait) String() string { return fmt.Sprintf("sync.wait(%d)", s.Distance) }
func (s *SyncWait) stmtNode()      {}

// VectorAssign is the vector statement  dst[0:Len) = RHS  where the
// destination section starts at byte address DstBase with byte stride
// DstStride, and RHS is an expression over VecRef sections (all of length
// Len) and scalar (broadcast) operands. Len is an expression (elements).
type VectorAssign struct {
	DstBase   Expr
	DstStride Expr
	Len       Expr
	Elem      *ctype.Type
	RHS       Expr
	// Mask, when non-nil, predicates the statement per lane: only lanes
	// where Mask evaluates non-zero load operands, compute, and store
	// (if-conversion / masked vector execution). A nil Mask is the dense
	// form. Mask is an expression over VecRef sections and scalar
	// operands, like RHS, compared non-zero lane-wise.
	Mask Expr
	Pos  token.Pos
}

// String renders the vector statement.
func (s *VectorAssign) String() string {
	if s.Mask != nil {
		return fmt.Sprintf("[%s :%s](0:%s) =?(%s) %s", s.DstBase, s.DstStride, s.Len, s.Mask, s.RHS)
	}
	return fmt.Sprintf("[%s :%s](0:%s) = %s", s.DstBase, s.DstStride, s.Len, s.RHS)
}
func (s *VectorAssign) stmtNode() {}

// Goto transfers control to a label.
type Goto struct {
	Target string
	Pos    token.Pos
}

// String renders the goto.
func (s *Goto) String() string { return "goto " + s.Target }
func (s *Goto) stmtNode()      {}

// Label marks a goto target.
type Label struct {
	Name string
	Pos  token.Pos
}

// String renders the label.
func (s *Label) String() string { return s.Name + ":" }
func (s *Label) stmtNode()      {}

// Return leaves the procedure, optionally with a value.
type Return struct {
	Val Expr
	Pos token.Pos
}

// String renders the return.
func (s *Return) String() string {
	if s.Val == nil {
		return "return"
	}
	return "return " + s.Val.String()
}
func (s *Return) stmtNode() {}

// ---------------------------------------------------------------- Procedures

// Proc is one procedure in IL form. It is self-contained: all variables it
// touches are in Vars (globals appear as ClassGlobal entries naming the
// program-level symbol), so a Proc can be serialized to a catalog.
type Proc struct {
	Name     string
	Ret      *ctype.Type
	Params   []VarID // indexes of ClassParam vars, in order
	Vars     []Var
	Body     []Stmt
	Variadic bool

	labelSeq int
	// arena, when non-nil, owns the chunked slabs this procedure's
	// statements and expressions are allocated from (the front end
	// attaches one per procedure). Passes reach it through Arena(); a
	// procedure without one (hand-built test IL, catalog-decoded procs)
	// allocates from the heap node by node.
	arena *Arena
	// gen counts mutations of the procedure (body rewrites, new
	// variables). Analyses memoize per (proc, generation): a pass that
	// made no changes leaves gen alone, so the next analysis request can
	// reuse the previous solution (§5.2's incremental-reconstruction
	// obligation, discharged by generation-keyed caching in package
	// analysis). Every mutating pass must route its change count through
	// Changed (or call BumpGeneration directly); AddVar bumps on its own
	// so growing the variable table can never be forgotten.
	gen uint64
}

// NewProc returns an empty procedure.
func NewProc(name string, ret *ctype.Type) *Proc {
	return &Proc{Name: name, Ret: ret}
}

// Arena returns the procedure's node arena, or nil when the procedure
// allocates from the heap. A nil result is safe to allocate from.
func (p *Proc) Arena() *Arena { return p.arena }

// SetArena attaches the arena the procedure's nodes are allocated from.
func (p *Proc) SetArena(a *Arena) { p.arena = a }

// Generation returns the procedure's mutation counter. Two calls
// returning the same value bracket a window in which no pass registered a
// change, so any analysis computed inside the window is still valid.
func (p *Proc) Generation() uint64 { return p.gen }

// BumpGeneration invalidates every cached analysis of the procedure.
func (p *Proc) BumpGeneration() { p.gen++ }

// Changed notes that a pass made n changes to the procedure: any nonzero
// count bumps the generation so generation-keyed analysis caches
// invalidate. It returns n, so mutating passes end with
// `return p.Changed(n)` and cannot forget the bump.
func (p *Proc) Changed(n int) int {
	if n != 0 {
		p.gen++
	}
	return n
}

// AddVar appends a variable and returns its ID. Growing the variable
// table invalidates cached analyses (their bitsets are sized to Vars), so
// it bumps the generation itself.
func (p *Proc) AddVar(v Var) VarID {
	p.Vars = append(p.Vars, v)
	p.gen++
	return VarID(len(p.Vars) - 1)
}

// NewTemp creates a fresh compiler temporary of type t.
func (p *Proc) NewTemp(t *ctype.Type) VarID {
	return p.AddVar(Var{Name: fmt.Sprintf("t%d", len(p.Vars)), Type: t, Class: ClassTemp})
}

// NewLabel returns a fresh label name unique within the procedure.
func (p *Proc) NewLabel(hint string) string {
	p.labelSeq++
	return fmt.Sprintf(".%s%d", hint, p.labelSeq)
}

// Var returns the variable table entry for id.
func (p *Proc) Var(id VarID) *Var { return &p.Vars[id] }

// LookupVar finds a variable by name, returning NoVar if absent.
func (p *Proc) LookupVar(name string) VarID {
	for i := range p.Vars {
		if p.Vars[i].Name == name {
			return VarID(i)
		}
	}
	return NoVar
}

// Program is a whole translation unit in IL form.
type Program struct {
	Globals []GlobalVar
	Procs   []*Proc
}

// GlobalVar is a program-level variable.
type GlobalVar struct {
	Name string
	Type *ctype.Type
	// Init is an optional scalar initial value.
	InitInt   int64
	InitFloat float64
	HasInit   bool
	// Data holds raw initial bytes (string literals).
	Data []byte
}

// Proc finds a procedure by name, or nil.
func (pr *Program) Proc(name string) *Proc {
	for _, p := range pr.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Global finds a global by name, or nil.
func (pr *Program) Global(name string) *GlobalVar {
	for i := range pr.Globals {
		if pr.Globals[i].Name == name {
			return &pr.Globals[i]
		}
	}
	return nil
}

// AddGlobal appends a global if not already present.
func (pr *Program) AddGlobal(g GlobalVar) {
	if pr.Global(g.Name) == nil {
		pr.Globals = append(pr.Globals, g)
	}
}

// Release releases every procedure's arena (see Arena.Release): the
// program stops holding bulk IL memory and the ArenaBytesLive gauge
// drops by its share. The IL remains readable until the Program itself
// is dropped. Safe on a nil program and safe to call more than once.
func (pr *Program) Release() {
	if pr == nil {
		return
	}
	for _, p := range pr.Procs {
		p.arena.Release()
	}
}
