package il

import "repro/internal/ctype"

// SimplifyLinear canonicalizes an integer or pointer-typed sum: it
// collects additive terms (constants, scaled variables and addresses,
// opaque subtrees), combines like terms, and rebuilds the expression.
// The pass turns the induction-variable algebra the optimizer generates —
// (a + 4·n) + (−4·n), x + 0, 2·i + 3·i — back into readable, cheap forms.
// Expressions containing volatile references are returned unchanged.
func SimplifyLinear(e Expr) Expr {
	t := e.Type()
	if t == nil || !(t.IsInteger() || t.Kind == ctype.Pointer) {
		return e
	}
	c := &collector{terms: map[string]*term{}}
	if !c.collect(e, 1) {
		return e
	}
	// Only rebuild when something actually combined or vanished; the
	// canonical form is idempotent, so the folding fixpoint terminates.
	zeroed := false
	for _, tm := range c.terms {
		if tm.coef == 0 {
			zeroed = true
		}
	}
	if !c.combined && !zeroed && c.constCount < 2 {
		return e
	}
	if len(c.order) == 0 {
		return &ConstInt{Val: c.constant, T: t}
	}
	// Rebuild: terms in first-seen order, constant last.
	var out Expr
	add := func(x Expr) {
		if out == nil {
			out = x
			return
		}
		out = &Bin{Op: OpAdd, L: out, R: x, T: t}
	}
	for _, key := range c.order {
		tm := c.terms[key]
		if tm.coef == 0 {
			continue
		}
		// Clone so the rebuilt tree never shares nodes with the original
		// (or with a merged duplicate term).
		switch {
		case tm.coef == 1:
			add(CloneExpr(tm.expr))
		case tm.coef == -1:
			add(&Un{Op: OpNeg, X: CloneExpr(tm.expr), T: ctype.IntType})
		default:
			add(&Bin{Op: OpMul, L: &ConstInt{Val: tm.coef, T: ctype.IntType},
				R: CloneExpr(tm.expr), T: ctype.IntType})
		}
	}
	if out == nil {
		return &ConstInt{Val: c.constant, T: t}
	}
	if c.constant > 0 {
		out = &Bin{Op: OpAdd, L: out, R: &ConstInt{Val: c.constant, T: t}, T: t}
	} else if c.constant < 0 {
		out = &Bin{Op: OpSub, L: out, R: &ConstInt{Val: -c.constant, T: t}, T: t}
	}
	// Give the root the original type.
	setExprType(out, t)
	return out
}

func setExprType(e Expr, t *ctype.Type) {
	switch n := e.(type) {
	case *Bin:
		n.T = t
	case *Un:
		n.T = t
	case *ConstInt:
		n.T = t
	}
}

type term struct {
	expr Expr
	coef int64
}

type collector struct {
	constant   int64
	constCount int
	terms      map[string]*term
	order      []string
	combined   bool
}

// collect walks e as a signed sum; returns false when the expression is
// not linear enough to be worth rebuilding (or contains volatiles).
func (c *collector) collect(e Expr, sign int64) bool {
	switch n := e.(type) {
	case *ConstInt:
		c.constant += sign * n.Val
		c.constCount++
		return true
	case *Bin:
		switch n.Op {
		case OpAdd:
			return c.collect(n.L, sign) && c.collect(n.R, sign)
		case OpSub:
			return c.collect(n.L, sign) && c.collect(n.R, -sign)
		case OpMul:
			if v, ok := IsIntConst(n.L); ok {
				return c.collectScaled(n.R, sign*v)
			}
			if v, ok := IsIntConst(n.R); ok {
				return c.collectScaled(n.L, sign*v)
			}
		}
	case *Un:
		if n.Op == OpNeg {
			return c.collect(n.X, -sign)
		}
	}
	return c.addTerm(e, sign)
}

// collectScaled handles k·subexpr where subexpr may itself be a sum.
func (c *collector) collectScaled(e Expr, k int64) bool {
	switch n := e.(type) {
	case *ConstInt:
		c.constant += k * n.Val
		c.constCount++
		return true
	case *Bin:
		switch n.Op {
		case OpAdd:
			return c.collectScaled(n.L, k) && c.collectScaled(n.R, k)
		case OpSub:
			return c.collectScaled(n.L, k) && c.collectScaled(n.R, -k)
		case OpMul:
			if v, ok := IsIntConst(n.L); ok {
				return c.collectScaled(n.R, k*v)
			}
			if v, ok := IsIntConst(n.R); ok {
				return c.collectScaled(n.L, k*v)
			}
		}
	case *Un:
		if n.Op == OpNeg {
			return c.collectScaled(n.X, -k)
		}
	}
	return c.addTerm(e, k)
}

func (c *collector) addTerm(e Expr, coef int64) bool {
	if coef == 0 {
		c.combined = true
		return true
	}
	// Volatile or impure subtrees must not be merged or duplicated.
	impure := false
	WalkExpr(e, func(x Expr) bool {
		if l, ok := x.(*Load); ok && l.Volatile {
			impure = true
		}
		return !impure
	})
	if impure {
		return false
	}
	key := e.String()
	if tm, ok := c.terms[key]; ok {
		tm.coef += coef
		c.combined = true
		return true
	}
	c.terms[key] = &term{expr: e, coef: coef}
	c.order = append(c.order, key)
	return true
}
