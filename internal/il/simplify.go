package il

import (
	"math"

	"repro/internal/ctype"
)

// SimplifyLinear canonicalizes an integer or pointer-typed sum: it
// collects additive terms (constants, scaled variables and addresses,
// opaque subtrees), combines like terms, and rebuilds the expression.
// The pass turns the induction-variable algebra the optimizer generates —
// (a + 4·n) + (−4·n), x + 0, 2·i + 3·i — back into readable, cheap forms.
// Expressions containing volatile references are returned unchanged.
func SimplifyLinear(e Expr) Expr { return SimplifyLinearIn(nil, e) }

// SimplifyLinearIn is SimplifyLinear with rebuilt nodes allocated from
// arena a (nil allocates from the heap).
func SimplifyLinearIn(a *Arena, e Expr) Expr {
	t := e.Type()
	if t == nil || !(t.IsInteger() || t.Kind == ctype.Pointer) {
		return e
	}
	var c collector
	c.terms = c.buf[:0]
	if !c.collect(e, 1) {
		return e
	}
	// Only rebuild when something actually combined or vanished; the
	// canonical form is idempotent, so the folding fixpoint terminates.
	zeroed := false
	for i := range c.terms {
		if c.terms[i].coef == 0 {
			zeroed = true
		}
	}
	if !c.combined && !zeroed && c.constCount < 2 {
		return e
	}
	if len(c.terms) == 0 {
		return a.ConstInt(c.constant, t)
	}
	// Rebuild: terms in first-seen order, constant last.
	var out Expr
	add := func(x Expr) {
		if out == nil {
			out = x
			return
		}
		out = a.Bin(OpAdd, out, x, t)
	}
	for i := range c.terms {
		tm := &c.terms[i]
		if tm.coef == 0 {
			continue
		}
		// Clone so the rebuilt tree never shares nodes with the original
		// (or with a merged duplicate term).
		switch {
		case tm.coef == 1:
			add(CloneExprIn(a, tm.expr))
		case tm.coef == -1:
			add(a.Un(OpNeg, CloneExprIn(a, tm.expr), ctype.IntType))
		default:
			add(a.Bin(OpMul, a.ConstInt(tm.coef, ctype.IntType),
				CloneExprIn(a, tm.expr), ctype.IntType))
		}
	}
	if out == nil {
		return a.ConstInt(c.constant, t)
	}
	if c.constant > 0 {
		out = a.Bin(OpAdd, out, a.ConstInt(c.constant, t), t)
	} else if c.constant < 0 {
		out = a.Bin(OpSub, out, a.ConstInt(-c.constant, t), t)
	}
	// Give the root the original type.
	setExprType(out, t)
	return out
}

func setExprType(e Expr, t *ctype.Type) {
	switch n := e.(type) {
	case *Bin:
		n.T = t
	case *Un:
		n.T = t
	case *ConstInt:
		n.T = t
	}
}

type term struct {
	expr Expr
	coef int64
}

// collector accumulates the additive terms of a sum. Terms are held in a
// small slice in first-seen order and matched structurally (sameTerm),
// which keeps collection allocation-free for the common few-term case —
// the previous implementation keyed a map by e.String(), which built a
// string per node visit.
type collector struct {
	constant   int64
	constCount int
	terms      []term
	combined   bool
	// buf backs terms for the common few-term case, keeping collection
	// allocation-free (the collector itself lives on the caller's stack).
	buf [8]term
}

// collect walks e as a signed sum; returns false when the expression is
// not linear enough to be worth rebuilding (or contains volatiles).
func (c *collector) collect(e Expr, sign int64) bool {
	switch n := e.(type) {
	case *ConstInt:
		c.constant += sign * n.Val
		c.constCount++
		return true
	case *Bin:
		switch n.Op {
		case OpAdd:
			return c.collect(n.L, sign) && c.collect(n.R, sign)
		case OpSub:
			return c.collect(n.L, sign) && c.collect(n.R, -sign)
		case OpMul:
			if v, ok := IsIntConst(n.L); ok {
				return c.collectScaled(n.R, sign*v)
			}
			if v, ok := IsIntConst(n.R); ok {
				return c.collectScaled(n.L, sign*v)
			}
		}
	case *Un:
		if n.Op == OpNeg {
			return c.collect(n.X, -sign)
		}
	}
	return c.addTerm(e, sign)
}

// collectScaled handles k·subexpr where subexpr may itself be a sum.
func (c *collector) collectScaled(e Expr, k int64) bool {
	switch n := e.(type) {
	case *ConstInt:
		c.constant += k * n.Val
		c.constCount++
		return true
	case *Bin:
		switch n.Op {
		case OpAdd:
			return c.collectScaled(n.L, k) && c.collectScaled(n.R, k)
		case OpSub:
			return c.collectScaled(n.L, k) && c.collectScaled(n.R, -k)
		case OpMul:
			if v, ok := IsIntConst(n.L); ok {
				return c.collectScaled(n.R, k*v)
			}
			if v, ok := IsIntConst(n.R); ok {
				return c.collectScaled(n.L, k*v)
			}
		}
	case *Un:
		if n.Op == OpNeg {
			return c.collectScaled(n.X, -k)
		}
	}
	return c.addTerm(e, k)
}

func (c *collector) addTerm(e Expr, coef int64) bool {
	if coef == 0 {
		c.combined = true
		return true
	}
	// Volatile or impure subtrees must not be merged or duplicated.
	impure := false
	WalkExpr(e, func(x Expr) bool {
		if l, ok := x.(*Load); ok && l.Volatile {
			impure = true
		}
		return !impure
	})
	if impure {
		return false
	}
	for i := range c.terms {
		if sameTerm(c.terms[i].expr, e) {
			c.terms[i].coef += coef
			c.combined = true
			return true
		}
	}
	c.terms = append(c.terms, term{expr: e, coef: coef})
	return true
}

// sameTerm reports whether two expressions print identically — it is the
// structural mirror of String() equality, which is what term merging has
// always keyed on (so constants of different declared types merge, while
// casts to differently-spelled types do not). Keeping exactly this
// equivalence is what keeps SimplifyLinear's output bit-identical to the
// string-keyed implementation it replaced.
func sameTerm(x, y Expr) bool {
	if x == y {
		return true
	}
	if x == nil || y == nil {
		return false
	}
	switch a := x.(type) {
	case *ConstInt:
		b, ok := y.(*ConstInt)
		return ok && a.Val == b.Val
	case *ConstFloat:
		b, ok := y.(*ConstFloat)
		// %g prints a unique shortest form per value; NaNs all print "NaN".
		return ok && (math.Float64bits(a.Val) == math.Float64bits(b.Val) ||
			(math.IsNaN(a.Val) && math.IsNaN(b.Val)))
	case *VarRef:
		b, ok := y.(*VarRef)
		return ok && a.ID == b.ID
	case *AddrOf:
		b, ok := y.(*AddrOf)
		return ok && a.ID == b.ID
	case *Load:
		b, ok := y.(*Load)
		return ok && a.Volatile == b.Volatile && sameTerm(a.Addr, b.Addr)
	case *Bin:
		b, ok := y.(*Bin)
		return ok && a.Op == b.Op && sameTerm(a.L, b.L) && sameTerm(a.R, b.R)
	case *Un:
		b, ok := y.(*Un)
		return ok && a.Op == b.Op && sameTerm(a.X, b.X)
	case *Cast:
		b, ok := y.(*Cast)
		// Cast prints its full target type spelling.
		return ok && (a.T == b.T || a.T.String() == b.T.String()) && sameTerm(a.X, b.X)
	case *VecRef:
		b, ok := y.(*VecRef)
		return ok && sameTerm(a.Base, b.Base) && sameTerm(a.Stride, b.Stride)
	}
	return false
}
