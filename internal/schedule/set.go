package schedule

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/token"
)

// LoopKey identifies one source loop: the owning procedure plus the
// loop's source position. Positions survive the pipeline (every rewrite
// stamps manufactured statements with the originating construct's
// position), so the key is stable from the tuner's snapshot of the
// program to the final schedule-driven compile — and across compiles of
// the same translation unit, which is what makes the titand tuned-
// schedule cache sound.
type LoopKey struct {
	Proc string `json:"proc"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// KeyFor builds the key for a loop at pos inside proc.
func KeyFor(proc string, pos token.Pos) LoopKey {
	return LoopKey{Proc: proc, Line: pos.Line, Col: pos.Col}
}

func (k LoopKey) less(o LoopKey) bool {
	if k.Proc != o.Proc {
		return k.Proc < o.Proc
	}
	if k.Line != o.Line {
		return k.Line < o.Line
	}
	return k.Col < o.Col
}

// Set maps source loops to their schedules. A nil *Set is valid and
// holds nothing: every Lookup reports the default schedule, so the
// phases take their pre-schedule-layer path untouched.
type Set struct {
	m map[LoopKey]Schedule
}

// NewSet returns an empty schedule set.
func NewSet() *Set { return &Set{m: map[LoopKey]Schedule{}} }

// Put assigns s to the loop identified by key.
func (t *Set) Put(key LoopKey, s Schedule) {
	if t.m == nil {
		t.m = map[LoopKey]Schedule{}
	}
	t.m[key] = s
}

// Lookup returns the schedule for the loop at pos in proc, falling back
// to Default() when the set is nil or has no entry. The second result
// reports whether an explicit entry was found.
func (t *Set) Lookup(proc string, pos token.Pos) (Schedule, bool) {
	if t == nil || t.m == nil {
		return Default(), false
	}
	if s, ok := t.m[KeyFor(proc, pos)]; ok {
		return s, true
	}
	return Default(), false
}

// Len reports the number of explicit entries.
func (t *Set) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}

// Keys returns the explicit loop keys in deterministic order.
func (t *Set) Keys() []LoopKey {
	if t == nil {
		return nil
	}
	keys := make([]LoopKey, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// Validate checks every schedule in the set against the machine-range
// invariants (Schedule.Validate), naming the offending loop. Wire
// consumers (titand's plan write-through) reject sets that fail this
// before caching them.
func (t *Set) Validate() error {
	if t == nil {
		return nil
	}
	for _, k := range t.Keys() {
		if err := t.m[k].Validate(); err != nil {
			return fmt.Errorf("loop %s:%d:%d: %w", k.Proc, k.Line, k.Col, err)
		}
	}
	return nil
}

// entry is the wire form of one (loop, schedule) pair. A sorted array of
// pairs rather than a map keyed by a composite string: the encoding is
// byte-deterministic, so schedule sets can ride cache keys and artifacts.
type entry struct {
	Loop     LoopKey  `json:"loop"`
	Schedule Schedule `json:"schedule"`
}

// MarshalJSON encodes the set as a sorted array of entries.
func (t *Set) MarshalJSON() ([]byte, error) {
	entries := make([]entry, 0, t.Len())
	for _, k := range t.Keys() {
		entries = append(entries, entry{Loop: k, Schedule: t.m[k]})
	}
	return json.Marshal(entries)
}

// UnmarshalJSON decodes the sorted-array wire form.
func (t *Set) UnmarshalJSON(data []byte) error {
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	t.m = make(map[LoopKey]Schedule, len(entries))
	for _, e := range entries {
		t.m[e.Loop] = e.Schedule
	}
	return nil
}
