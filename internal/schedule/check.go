package schedule

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/titan"
)

// Check decides whether schedule s may legally be applied to loop inside
// p, consulting the same cached dependence graphs the loop phases use
// (a nil cache computes directly). It rejects any plan the phases could
// not carry out soundly:
//
//   - ParallelWidth > 0 (spreading strips across processors) requires
//     independent iterations: no carried dependence and no barrier
//     statement (call, volatile access, irregular control).
//   - Unroll > 1 requires a countable straight-line loop: constant
//     nonzero step and an all-Assign body, so body replicas can be
//     stamped out with IV+j·step substitution.
//   - Interchange requires a perfect two-level nest with rectangular
//     bounds (inner bounds invariant in the outer IV) where neither
//     level carries a dependence over the innermost statements — every
//     direction vector is (=,=), so the swap trivially preserves all
//     dependences.
//
// The phases keep their own guards as well; Check is the tuner's and
// the service's gate, not the only line of defense.
func Check(p *il.Proc, loop *il.DoLoop, s Schedule, ac *analysis.Cache, opts depend.Options) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.ParallelWidth > 0 && !s.SerialStrips {
		ld := ac.LoopDeps(p, loop, opts)
		for i, b := range ld.Barrier {
			if b {
				return fmt.Errorf("schedule: parallel width %d illegal: statement S%d is a barrier", s.ParallelWidth, i)
			}
		}
		for i := range ld.Deps {
			if d := &ld.Deps[i]; d.Carried && s.SyncStride == 0 {
				return fmt.Errorf("schedule: parallel width %d illegal: carried dependence %s", s.ParallelWidth, d)
			}
		}
	}
	if s.SyncStride > 0 && !s.SerialStrips {
		// A sync stride only makes sense for DOACROSS: the loop must have
		// carried dependences the parallelizer can plan post/wait for, and
		// coalesced posting (stride > 1) must keep the awaited iteration
		// strictly earlier than the waiter at the scheduled width.
		ld := ac.LoopDeps(p, loop, opts)
		carried := false
		for i := range ld.Deps {
			if ld.Deps[i].Carried {
				carried = true
				break
			}
		}
		if carried {
			plan := depend.Doacross(p, ld)
			if plan == nil {
				return fmt.Errorf("schedule: sync stride %d illegal: no computable DOACROSS plan for the loop's carried dependences", s.SyncStride)
			}
			width := s.ParallelWidth
			if width == 0 {
				width = titan.MaxProcessors
			}
			if s.SyncStride > 1 && plan.Distance < int64(s.SyncStride)*int64(width) {
				return fmt.Errorf("schedule: sync stride %d illegal: coalesced posting needs dependence distance ≥ stride·width (distance %d, width %d)",
					s.SyncStride, plan.Distance, width)
			}
		}
	}
	if s.Unroll > 1 {
		if c, ok := loop.Step.(*il.ConstInt); !ok || c.Val == 0 {
			return fmt.Errorf("schedule: unroll %d illegal: loop step is not a nonzero constant", s.Unroll)
		}
		for i, st := range loop.Body {
			if _, ok := st.(*il.Assign); !ok {
				return fmt.Errorf("schedule: unroll %d illegal: body statement S%d is not an assignment", s.Unroll, i)
			}
		}
	}
	if s.Interchange {
		if err := CheckInterchange(p, loop, opts); err != nil {
			return err
		}
	}
	if s.MaskStrategy == MaskAuto || s.MaskStrategy == MaskBranchy {
		// Masked strategies direct how a guard is executed; a loop with no
		// conditional (and nothing already if-converted) has no guard to
		// direct, so the plan is inapplicable.
		guarded := false
		for _, st := range loop.Body {
			switch st.(type) {
			case *il.If, *il.PredAssign:
				guarded = true
			}
		}
		if !guarded {
			return fmt.Errorf("schedule: mask strategy %q illegal: loop body has no conditional to if-convert", s.MaskStrategy)
		}
	}
	return nil
}

// CheckInterchange verifies loop is a perfect rectangular two-level nest
// whose innermost statements carry no dependence over either index.
func CheckInterchange(p *il.Proc, loop *il.DoLoop, opts depend.Options) error {
	inner, ok := perfectNestInner(loop)
	if !ok {
		return fmt.Errorf("schedule: interchange illegal: loop is not a perfect two-level nest")
	}
	for _, e := range []il.Expr{inner.Init, inner.Limit, inner.Step} {
		if il.UsesVar(e, loop.IV) {
			return fmt.Errorf("schedule: interchange illegal: inner bounds depend on the outer index (triangular nest)")
		}
	}
	if _, ok := loop.Step.(*il.ConstInt); !ok {
		return fmt.Errorf("schedule: interchange illegal: outer step is not constant")
	}
	if _, ok := inner.Step.(*il.ConstInt); !ok {
		return fmt.Errorf("schedule: interchange illegal: inner step is not constant")
	}
	// Dependences over the inner index, then over the outer index: the
	// latter via a synthetic loop iterating the outer IV directly over
	// the innermost statements. Synthetic loops are never cached — their
	// identity is fresh each call.
	if d := carriedDep(depend.AnalyzeLoop(p, inner, opts)); d != nil {
		return fmt.Errorf("schedule: interchange illegal: inner-carried dependence %s", d)
	}
	outerView := &il.DoLoop{IV: loop.IV, Init: loop.Init, Limit: loop.Limit,
		Step: loop.Step, Body: inner.Body, Safe: loop.Safe || inner.Safe, Pos: loop.Pos}
	if d := carriedDep(depend.AnalyzeLoop(p, outerView, opts)); d != nil {
		return fmt.Errorf("schedule: interchange illegal: outer-carried dependence %s", d)
	}
	return nil
}

// perfectNestInner returns the inner loop of a perfect two-level nest:
// the outer body must be exactly the inner DoLoop.
func perfectNestInner(loop *il.DoLoop) (*il.DoLoop, bool) {
	if len(loop.Body) != 1 {
		return nil, false
	}
	inner, ok := loop.Body[0].(*il.DoLoop)
	return inner, ok
}

// carriedDep returns the first carried dependence or barrier-induced
// edge in ld, or nil when iterations are independent.
func carriedDep(ld *depend.LoopDeps) *depend.Dep {
	for i, b := range ld.Barrier {
		if b {
			return &depend.Dep{From: i, To: i, Kind: depend.Output, Carried: true}
		}
	}
	for i := range ld.Deps {
		if ld.Deps[i].Carried {
			return &ld.Deps[i]
		}
	}
	return nil
}
