package schedule_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/titan"
	"repro/internal/token"
)

func sampleSet() *schedule.Set {
	s := schedule.NewSet()
	s.Put(schedule.LoopKey{Proc: "main", Line: 10, Col: 2},
		schedule.Schedule{VL: 64, Unroll: 2})
	s.Put(schedule.LoopKey{Proc: "daxpy", Line: 4, Col: 2},
		schedule.Schedule{VL: 32, Unroll: 1, SerialStrips: true})
	s.Put(schedule.LoopKey{Proc: "main", Line: 3, Col: 2},
		schedule.Schedule{VL: 32, Unroll: 1, Interchange: true, ParallelWidth: 2})
	s.Put(schedule.LoopKey{Proc: "clip", Line: 7, Col: 2},
		schedule.Schedule{VL: 32, Unroll: 1, MaskStrategy: schedule.MaskBranchy})
	return s
}

// TestSetJSONRoundTrip: titand's schedule cache and any tooling that
// persists tuned plans ship Sets as JSON; marshal → unmarshal must
// reproduce every entry.
func TestSetJSONRoundTrip(t *testing.T) {
	want := sampleSet()
	blob, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := schedule.NewSet()
	if err := json.Unmarshal(blob, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", got.Len(), want.Len())
	}
	for _, k := range want.Keys() {
		pos := token.Pos{Line: k.Line, Col: k.Col}
		w, _ := want.Lookup(k.Proc, pos)
		g, ok := got.Lookup(k.Proc, pos)
		if !ok || !reflect.DeepEqual(g, w) {
			t.Errorf("entry %v: got %+v (present=%v), want %+v", k, g, ok, w)
		}
	}
}

// TestSetJSONStable pins the wire form: a sorted array of loop/schedule
// pairs with these exact field names. Machine consumers (the service's
// schedule cache, saved tuning runs) key on this shape.
func TestSetJSONStable(t *testing.T) {
	blob, err := json.Marshal(sampleSet())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	const want = `[` +
		`{"loop":{"proc":"clip","line":7,"col":2},"schedule":{"vl":32,"unroll":1,"mask_strategy":"branchy-serial"}},` +
		`{"loop":{"proc":"daxpy","line":4,"col":2},"schedule":{"vl":32,"unroll":1,"serial_strips":true}},` +
		`{"loop":{"proc":"main","line":3,"col":2},"schedule":{"vl":32,"unroll":1,"interchange":true,"parallel_width":2}},` +
		`{"loop":{"proc":"main","line":10,"col":2},"schedule":{"vl":64,"unroll":2}}]`
	if string(blob) != want {
		t.Fatalf("wire shape drifted:\n got %s\nwant %s", blob, want)
	}
}

// An empty set is a valid, small document, and a nil set is readable.
func TestSetJSONEmpty(t *testing.T) {
	blob, err := json.Marshal(schedule.NewSet())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(blob) != "[]" {
		t.Fatalf("empty set marshals as %s, want []", blob)
	}
	got := schedule.NewSet()
	if err := json.Unmarshal([]byte("[]"), got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip has %d entries", got.Len())
	}
}

// TestSetValidateRejectsUnknownMaskStrategy: the wire form decodes any
// string into MaskStrategy (a newer peer may know strategies we don't),
// so Set.Validate is the gate — it must reject unknown values and name
// the offending loop. titand's PUT /schedules handler answers 400 on
// this error.
func TestSetValidateRejectsUnknownMaskStrategy(t *testing.T) {
	if err := sampleSet().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	var nilSet *schedule.Set
	if err := nilSet.Validate(); err != nil {
		t.Fatalf("nil set rejected: %v", err)
	}
	blob := []byte(`[{"loop":{"proc":"clip","line":7,"col":2},` +
		`"schedule":{"vl":32,"unroll":1,"mask_strategy":"diagonal"}}]`)
	got := schedule.NewSet()
	if err := json.Unmarshal(blob, got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	err := got.Validate()
	if err == nil {
		t.Fatal("unknown mask strategy validated")
	}
	for _, want := range []string{"clip:7:2", "diagonal"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestLookupDefaults(t *testing.T) {
	var nilSet *schedule.Set
	s, ok := nilSet.Lookup("main", token.Pos{Line: 1, Col: 1})
	if ok || !s.IsDefault() {
		t.Errorf("nil set lookup = (%+v, %v), want (default, false)", s, ok)
	}
	s, ok = schedule.NewSet().Lookup("main", token.Pos{Line: 1, Col: 1})
	if ok || !s.IsDefault() {
		t.Errorf("empty set lookup = (%+v, %v), want (default, false)", s, ok)
	}
}

func TestValidateBounds(t *testing.T) {
	cases := []struct {
		name string
		s    schedule.Schedule
		ok   bool
	}{
		{"default", schedule.Default(), true},
		{"max vl", schedule.Schedule{VL: titan.MaxVL, Unroll: 1}, true},
		{"vl zero", schedule.Schedule{VL: 0, Unroll: 1}, false},
		{"vl negative", schedule.Schedule{VL: -4, Unroll: 1}, false},
		{"vl too big", schedule.Schedule{VL: titan.MaxVL + 1, Unroll: 1}, false},
		{"unroll zero", schedule.Schedule{VL: 32, Unroll: 0}, false},
		{"unroll max", schedule.Schedule{VL: 32, Unroll: schedule.MaxUnroll}, true},
		{"unroll too big", schedule.Schedule{VL: 32, Unroll: schedule.MaxUnroll + 1}, false},
		{"width max", schedule.Schedule{VL: 32, Unroll: 1, ParallelWidth: titan.MaxProcessors}, true},
		{"width too big", schedule.Schedule{VL: 32, Unroll: 1, ParallelWidth: titan.MaxProcessors + 1}, false},
		{"width negative", schedule.Schedule{VL: 32, Unroll: 1, ParallelWidth: -1}, false},
		{"mask auto", schedule.Schedule{VL: 32, Unroll: 1, MaskStrategy: schedule.MaskAuto}, true},
		{"mask off", schedule.Schedule{VL: 32, Unroll: 1, MaskStrategy: schedule.MaskOff}, true},
		{"mask branchy", schedule.Schedule{VL: 32, Unroll: 1, MaskStrategy: schedule.MaskBranchy}, true},
		{"mask unknown", schedule.Schedule{VL: 32, Unroll: 1, MaskStrategy: "sideways"}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if err := schedule.ValidateVL(1); err != nil {
		t.Errorf("ValidateVL(1) = %v", err)
	}
	if err := schedule.ValidateVL(titan.MaxVL + 1); err == nil {
		t.Error("ValidateVL past the register file accepted")
	}
}
