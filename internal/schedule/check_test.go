package schedule_test

import (
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/driver"
	"repro/internal/il"
	"repro/internal/schedule"
	"repro/internal/titan"
)

// loopsOf compiles src through the scalar phase only — while loops are
// already DO loops and induction variables are substituted (the shape
// the loop phases actually see), but no loop transformation has run —
// and returns the named procedure plus its DO loops in source order.
func loopsOf(t *testing.T, src, proc string) (*il.Proc, []*il.DoLoop) {
	t.Helper()
	res, err := driver.CompileIL(src, driver.Options{OptLevel: 1, ForceIVSub: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, p := range res.IL.Procs {
		if p.Name != proc {
			continue
		}
		var loops []*il.DoLoop
		il.WalkStmts(p.Body, func(s il.Stmt) bool {
			if loop, ok := s.(*il.DoLoop); ok {
				loops = append(loops, loop)
			}
			return true
		})
		return p, loops
	}
	t.Fatalf("no procedure %q in %q", proc, src)
	return nil, nil
}

func check(p *il.Proc, loop *il.DoLoop, s schedule.Schedule) error {
	return schedule.Check(p, loop, s, nil, depend.Options{})
}

const independentSrc = `
float a[128], b[128];
void f(int n)
{
	int i;
	for (i = 0; i < n; i++)
		a[i] = b[i] + 1.0f;
}
`

const carriedSrc = `
float a[128];
void f(int n)
{
	int i;
	for (i = 1; i < n; i++)
		a[i] = a[i-1] + 1.0f;
}
`

const callBodySrc = `
int g(int x) { return x + 1; }
int acc;
void f(int n)
{
	int i;
	for (i = 0; i < n; i++)
		acc = g(i);
}
`

const rectNestSrc = `
float m[16][16], s[16][16];
void f(void)
{
	int i, j;
	for (i = 0; i < 16; i++)
		for (j = 0; j < 16; j++)
			m[i][j] = s[i][j] * 2.0f;
}
`

const triNestSrc = `
float m[16][16], s[16][16];
void f(void)
{
	int i, j;
	for (i = 0; i < 16; i++)
		for (j = 0; j < i; j++)
			m[i][j] = s[i][j] * 2.0f;
}
`

// TestCheckParallelWidth: spreading iterations across processors is legal
// exactly when the loop carries no dependence and no barrier.
func TestCheckParallelWidth(t *testing.T) {
	width := schedule.Schedule{VL: 32, Unroll: 1, ParallelWidth: 2}

	p, loops := loopsOf(t, independentSrc, "f")
	if err := check(p, loops[0], width); err != nil {
		t.Errorf("independent loop rejected: %v", err)
	}

	p, loops = loopsOf(t, carriedSrc, "f")
	err := check(p, loops[0], width)
	if err == nil {
		t.Fatal("carried-dependence loop accepted for parallel spreading")
	}
	if !strings.Contains(err.Error(), "carried") {
		t.Errorf("rejection does not name the carried dependence: %v", err)
	}

	p, loops = loopsOf(t, callBodySrc, "f")
	if check(p, loops[0], width) == nil {
		t.Error("loop with a call barrier accepted for parallel spreading")
	}

	// Serial strips sidestep the dependence question entirely: the strip
	// loop stays serial, so a carried dependence is fine.
	p, loops = loopsOf(t, carriedSrc, "f")
	serial := schedule.Schedule{VL: 32, Unroll: 1, SerialStrips: true}
	if err := check(p, loops[0], serial); err != nil {
		t.Errorf("serial strips rejected on a carried-dependence loop: %v", err)
	}
}

// TestCheckUnroll: unrolling needs a constant nonzero step and a
// straight-line assignment body (replicas are substituted copies; calls
// and control flow don't replicate safely).
func TestCheckUnroll(t *testing.T) {
	unroll := schedule.Schedule{VL: 32, Unroll: 4}

	p, loops := loopsOf(t, independentSrc, "f")
	if err := check(p, loops[0], unroll); err != nil {
		t.Errorf("assign-body loop rejected for unrolling: %v", err)
	}

	// A carried dependence does NOT block unrolling — replicas execute in
	// the original serial order.
	p, loops = loopsOf(t, carriedSrc, "f")
	if err := check(p, loops[0], unroll); err != nil {
		t.Errorf("carried-dependence loop rejected for unrolling: %v", err)
	}

	p, loops = loopsOf(t, callBodySrc, "f")
	if check(p, loops[0], unroll) == nil {
		t.Error("call-body loop accepted for unrolling")
	}
}

// TestCheckInterchange: only perfect rectangular 2-nests with
// direction-free dependence interchange.
func TestCheckInterchange(t *testing.T) {
	ic := schedule.Schedule{VL: 32, Unroll: 1, Interchange: true}

	p, loops := loopsOf(t, rectNestSrc, "f")
	if err := check(p, loops[0], ic); err != nil {
		t.Errorf("rectangular perfect nest rejected for interchange: %v", err)
	}

	p, loops = loopsOf(t, triNestSrc, "f")
	if check(p, loops[0], ic) == nil {
		t.Error("triangular nest accepted for interchange (inner bound uses outer IV)")
	}

	p, loops = loopsOf(t, independentSrc, "f")
	if check(p, loops[0], ic) == nil {
		t.Error("non-nest loop accepted for interchange")
	}
}

// Check refuses invalid schedules before it ever looks at the loop.
func TestCheckValidates(t *testing.T) {
	p, loops := loopsOf(t, independentSrc, "f")
	bad := schedule.Schedule{VL: titan.MaxVL + 1, Unroll: 1}
	if check(p, loops[0], bad) == nil {
		t.Error("out-of-range VL accepted")
	}
}
