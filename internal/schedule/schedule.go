// Package schedule is the explicit loop-plan layer: every transformation
// the loop phases (vector, parallel, strength) can apply to a DO loop is
// described by a Schedule value — strip length, unroll factor, loop
// interchange, processor width, serial-vs-parallel strips — instead of
// constants baked into each phase. The paper hardwires one strategy
// (strip-mine to 32, no unrolling, spread over every processor);
// Default() reproduces exactly that, and the autotuner (internal/tune)
// searches the schedule space per loop by measuring candidates on the
// fast Titan engine.
//
// Schedules are assigned per source loop: a LoopKey is the owning
// procedure plus the loop's source position, which is stable across
// compiles of the same translation unit — that is what lets titand cache
// tuned schedules by source fingerprint and reapply them without
// re-tuning. A Set is the JSON-serializable mapping the tuner produces
// and the pass pipeline consumes (pass.Context.Schedules).
//
// Legality is checked against the same cached dependence graphs the
// phases use (internal/analysis): parallel spreading needs independence,
// interchange needs a fully permutable perfect nest, unrolling needs a
// countable straight-line body. Check rejects a schedule the phases
// could not apply soundly; the phases additionally keep their own
// guards, so an illegal schedule can only ever degrade to the legal
// subset, never miscompile.
package schedule

import (
	"fmt"
	"strings"

	"repro/internal/titan"
)

// DefaultVL is the paper's strip length: the Titan's vector register
// file holds 8192 words; 32-element strips let four strips of eight
// vector temporaries fit comfortably (§9).
const DefaultVL = 32

// MaxUnroll bounds the unroll factor the schedule layer will apply;
// beyond 8 the replicated bodies blow the instruction cache the §6
// scheduler models without buying further loop-overhead reduction.
const MaxUnroll = 8

// MaxSyncStride bounds DOACROSS post coalescing; beyond 8 the legality
// condition (distance ≥ stride·width) is out of reach for the distances
// the dependence test accepts at useful widths.
const MaxSyncStride = 8

// Schedule describes how the loop phases transform one DO loop. The
// zero value is not meaningful; use Default().
type Schedule struct {
	// VL is the strip length vector statements are mined to (§9).
	VL int `json:"vl"`
	// Unroll is the §6 unroll factor for serial loops (1 = no unroll).
	// Unrolling replicates the body in source order, so it is legal even
	// for loops with carried dependences.
	Unroll int `json:"unroll"`
	// Interchange swaps the headers of a perfect two-level nest before
	// vectorization, exposing the outer dimension to the inner phases.
	Interchange bool `json:"interchange,omitempty"`
	// ParallelWidth caps how many processors a do-parallel loop spreads
	// over; 0 means every processor the machine has (the default).
	ParallelWidth int `json:"parallel_width,omitempty"`
	// SerialStrips keeps the loop serial even when spreading would be
	// legal — for short loops the fork/join overhead outweighs the
	// spread (§2's "significant speedups" need enough work per strip).
	SerialStrips bool `json:"serial_strips,omitempty"`
	// SyncStride tunes DOACROSS synchronization for loops with carried
	// constant-distance dependences: 0 leaves the parallelizer's default
	// (post every iteration), N ≥ 1 posts every N-th iteration per
	// processor, trading sync traffic for pipeline slack. Strides above
	// 1 are only legal when the dependence distance covers
	// stride·width (Check enforces this; coalesced posting would
	// deadlock the pipeline otherwise).
	SyncStride int `json:"sync_stride,omitempty"`
	// MaskStrategy directs how conditionals in the loop body are handled
	// ahead of vectorization: "" and MaskAuto if-convert and vectorize
	// under a mask when legal (the default), MaskOff suppresses
	// if-conversion for this loop, and MaskBranchy if-converts but keeps
	// the strips scalar (predicated serial execution — profitable when
	// the mask is almost always false and masked vector ops would charge
	// full-density cycles for idle lanes).
	MaskStrategy string `json:"mask_strategy,omitempty"`
}

// MaskStrategy values. The empty string means MaskAuto.
const (
	MaskAuto    = "masked"
	MaskOff     = "off"
	MaskBranchy = "branchy-serial"
)

// Default is the paper's hardwired strategy: 32-element strips, no
// unrolling, no interchange, spread over every processor when legal.
func Default() Schedule { return Schedule{VL: DefaultVL, Unroll: 1} }

// IsDefault reports whether s is exactly the paper's default plan.
func (s Schedule) IsDefault() bool { return s == Default() }

// String renders the schedule compactly, e.g. "vl=32 unroll=4" or
// "vl=64 unroll=1 width=2 serial-strips". Used in sched-selected
// remarks and logs; the JSON form is the wire format.
func (s Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vl=%d unroll=%d", s.VL, s.Unroll)
	if s.Interchange {
		sb.WriteString(" interchange")
	}
	if s.ParallelWidth > 0 {
		fmt.Fprintf(&sb, " width=%d", s.ParallelWidth)
	}
	if s.SerialStrips {
		sb.WriteString(" serial-strips")
	}
	if s.SyncStride > 0 {
		fmt.Fprintf(&sb, " sync=%d", s.SyncStride)
	}
	if s.MaskStrategy != "" {
		fmt.Fprintf(&sb, " mask=%s", s.MaskStrategy)
	}
	return sb.String()
}

// ValidateVL rejects strip lengths outside the hardware range — the
// validation titancc -vl and the titand compile option share.
func ValidateVL(vl int) error {
	if vl < 1 || vl > titan.MaxVL {
		return fmt.Errorf("schedule: strip length %d out of range (the Titan vector register file supports VL 1..%d)", vl, titan.MaxVL)
	}
	return nil
}

// Validate checks the machine-range invariants every schedule must
// satisfy regardless of the loop it is applied to.
func (s Schedule) Validate() error {
	if err := ValidateVL(s.VL); err != nil {
		return err
	}
	if s.Unroll < 1 || s.Unroll > MaxUnroll {
		return fmt.Errorf("schedule: unroll factor %d out of range (1..%d)", s.Unroll, MaxUnroll)
	}
	if s.ParallelWidth < 0 || s.ParallelWidth > titan.MaxProcessors {
		return fmt.Errorf("schedule: parallel width %d out of range (0..%d)", s.ParallelWidth, titan.MaxProcessors)
	}
	if s.SyncStride < 0 || s.SyncStride > MaxSyncStride {
		return fmt.Errorf("schedule: sync stride %d out of range (0..%d)", s.SyncStride, MaxSyncStride)
	}
	switch s.MaskStrategy {
	case "", MaskAuto, MaskOff, MaskBranchy:
	default:
		return fmt.Errorf("schedule: unknown mask strategy %q (want %q, %q, or %q)",
			s.MaskStrategy, MaskAuto, MaskOff, MaskBranchy)
	}
	return nil
}
