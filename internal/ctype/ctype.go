// Package ctype implements the C type system shared by the front end and
// the intermediate language.
//
// The Titan, like most word-addressed vector machines of its era, gives the
// compiler a simple data model: the IL distinguishes a single integer width
// (32-bit int, which char/short/long collapse to after loading) and two
// float widths. Types here retain the full C surface (so sizeof and pointer
// arithmetic scale correctly) while mapping onto that model.
package ctype

import (
	"fmt"
	"strings"
)

// Kind discriminates types.
type Kind int

// Type kinds.
const (
	Void Kind = iota
	Char
	Short
	Int
	Long
	Float
	Double
	Pointer
	Array
	Func
	Struct
	Union
	Enum
)

// Sizes in bytes. The Titan model uses 4-byte words; double is two words.
const (
	CharSize    = 1
	ShortSize   = 2
	IntSize     = 4
	LongSize    = 4
	FloatSize   = 4
	DoubleSize  = 8
	PointerSize = 4
)

// Field is one member of a struct or union.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset within the aggregate
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// Type is a C type. Types are immutable after construction; share freely.
type Type struct {
	Kind     Kind
	Unsigned bool  // for integer kinds
	Elem     *Type // Pointer: pointee; Array: element
	Len      int   // Array: element count (-1 if unknown, e.g. param decay source)

	// Func.
	Ret      *Type
	Params   []Param
	Variadic bool
	// OldStyle marks a function declared with an empty parameter list
	// "f()" — unknown arguments, K&R style.
	OldStyle bool

	// Struct/Union/Enum.
	Tag    string
	Fields []Field
	size   int // computed aggregate size

	// Qualifiers.
	Volatile bool
	Const    bool
}

// Predeclared singleton types for the common cases. Qualified or derived
// types are built with the constructor functions.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	UCharType  = &Type{Kind: Char, Unsigned: true}
	ShortType  = &Type{Kind: Short}
	IntType    = &Type{Kind: Int}
	UIntType   = &Type{Kind: Int, Unsigned: true}
	LongType   = &Type{Kind: Long}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns an array type of n elems.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type.
func FuncOf(ret *Type, params []Param, variadic bool) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params, Variadic: variadic}
}

// StructOf returns a struct type with fields laid out at word-aligned
// offsets (char packs at byte granularity; everything else aligns to its
// size, capped at word size, as on the Titan).
func StructOf(tag string, fields []Field) *Type {
	t := &Type{Kind: Struct, Tag: tag}
	off := 0
	for _, f := range fields {
		a := alignOf(f.Type)
		off = alignUp(off, a)
		f.Offset = off
		off += f.Type.Size()
		t.Fields = append(t.Fields, f)
	}
	t.size = alignUp(off, alignOf(t))
	return t
}

// UnionOf returns a union type: all fields at offset zero, size of largest.
func UnionOf(tag string, fields []Field) *Type {
	t := &Type{Kind: Union, Tag: tag}
	size := 0
	for _, f := range fields {
		f.Offset = 0
		t.Fields = append(t.Fields, f)
		if s := f.Type.Size(); s > size {
			size = s
		}
	}
	t.size = alignUp(size, alignOf(t))
	return t
}

// Qualified returns a copy of t with the given qualifiers OR-ed in.
// It returns t itself when nothing changes.
func Qualified(t *Type, volatile, cnst bool) *Type {
	if (t.Volatile || !volatile) && (t.Const || !cnst) {
		return t
	}
	q := *t
	q.Volatile = t.Volatile || volatile
	q.Const = t.Const || cnst
	return &q
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

func alignOf(t *Type) int {
	switch t.Kind {
	case Char:
		return 1
	case Short:
		return 2
	case Double:
		return 4 // word-aligned doubles, Titan-style
	case Struct, Union:
		a := 1
		for _, f := range t.Fields {
			if fa := alignOf(f.Type); fa > a {
				a = fa
			}
		}
		return a
	case Array:
		return alignOf(t.Elem)
	default:
		return 4
	}
}

// Size returns sizeof(t) in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Char:
		return CharSize
	case Short:
		return ShortSize
	case Int, Enum:
		return IntSize
	case Long:
		return LongSize
	case Float:
		return FloatSize
	case Double:
		return DoubleSize
	case Pointer:
		return PointerSize
	case Array:
		if t.Len < 0 {
			return PointerSize
		}
		return t.Len * t.Elem.Size()
	case Struct, Union:
		return t.size
	case Func:
		return PointerSize
	}
	panic(fmt.Sprintf("ctype: Size of unknown kind %d", t.Kind))
}

// IsInteger reports whether t is an integer type (char..long or enum).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, Short, Int, Long, Enum:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArith reports whether t is an arithmetic (integer or floating) type.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer — usable in a
// boolean context.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == Pointer }

// IsAggregate reports whether t is a struct or union.
func (t *Type) IsAggregate() bool { return t.Kind == Struct || t.Kind == Union }

// Decay returns the type after array-to-pointer and function-to-pointer
// decay, as happens in rvalue contexts.
func (t *Type) Decay() *Type {
	switch t.Kind {
	case Array:
		return PointerTo(t.Elem)
	case Func:
		return PointerTo(t)
	}
	return t
}

// Field returns the field with the given name, or nil.
func (t *Type) Field(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// Compatible reports whether a and b are compatible enough for assignment
// and comparison purposes in this compiler: identical kinds with compatible
// components, any-pointer ↔ void-pointer, and arithmetic ↔ arithmetic.
func Compatible(a, b *Type) bool {
	if a == nil || b == nil {
		return false
	}
	if a.IsArith() && b.IsArith() {
		return true
	}
	if a.Kind == Pointer && b.Kind == Pointer {
		if a.Elem.Kind == Void || b.Elem.Kind == Void {
			return true
		}
		return Compatible(a.Elem, b.Elem) || a.Elem.Kind == b.Elem.Kind
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Struct, Union:
		return a == b || (a.Tag != "" && a.Tag == b.Tag)
	case Func:
		return true // checked at call sites
	}
	return true
}

// Common returns the usual-arithmetic-conversions result type for a binary
// operation over a and b. Pointers win over integers (pointer arithmetic);
// double > float > long/int.
func Common(a, b *Type) *Type {
	if a.Kind == Pointer || a.Kind == Array {
		return a.Decay()
	}
	if b.Kind == Pointer || b.Kind == Array {
		return b.Decay()
	}
	if a.Kind == Double || b.Kind == Double {
		return DoubleType
	}
	if a.Kind == Float || b.Kind == Float {
		return FloatType
	}
	if a.Unsigned || b.Unsigned {
		return UIntType
	}
	return IntType
}

// Cell is one scalar storage cell within a (possibly aggregate) type.
type Cell struct {
	Offset int
	Type   *Type
}

// ScalarCells flattens a type into its scalar cells in layout order:
// arrays contribute their elements, structs their fields, unions their
// first member. Scalars yield a single cell at offset 0. This is the
// traversal brace initializers follow.
func ScalarCells(t *Type) []Cell {
	var out []Cell
	var walk func(t *Type, base int)
	walk = func(t *Type, base int) {
		switch t.Kind {
		case Array:
			n := t.Len
			if n < 0 {
				n = 0
			}
			for i := 0; i < n; i++ {
				walk(t.Elem, base+i*t.Elem.Size())
			}
		case Struct:
			for _, f := range t.Fields {
				walk(f.Type, base+f.Offset)
			}
		case Union:
			if len(t.Fields) > 0 {
				walk(t.Fields[0].Type, base+t.Fields[0].Offset)
			}
		default:
			out = append(out, Cell{Offset: base, Type: t})
		}
	}
	walk(t, 0)
	return out
}

// String renders the type in C-like notation.
func (t *Type) String() string {
	var sb strings.Builder
	if t.Volatile {
		sb.WriteString("volatile ")
	}
	if t.Const {
		sb.WriteString("const ")
	}
	switch t.Kind {
	case Void:
		sb.WriteString("void")
	case Char:
		if t.Unsigned {
			sb.WriteString("unsigned ")
		}
		sb.WriteString("char")
	case Short:
		sb.WriteString("short")
	case Int:
		if t.Unsigned {
			sb.WriteString("unsigned ")
		}
		sb.WriteString("int")
	case Long:
		sb.WriteString("long")
	case Float:
		sb.WriteString("float")
	case Double:
		sb.WriteString("double")
	case Pointer:
		fmt.Fprintf(&sb, "%s*", t.Elem)
	case Array:
		if t.Len < 0 {
			fmt.Fprintf(&sb, "%s[]", t.Elem)
		} else {
			fmt.Fprintf(&sb, "%s[%d]", t.Elem, t.Len)
		}
	case Func:
		fmt.Fprintf(&sb, "%s(", t.Ret)
		for i, p := range t.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Type.String())
		}
		if t.Variadic {
			if len(t.Params) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("...")
		}
		sb.WriteString(")")
	case Struct:
		fmt.Fprintf(&sb, "struct %s", t.Tag)
	case Union:
		fmt.Fprintf(&sb, "union %s", t.Tag)
	case Enum:
		fmt.Fprintf(&sb, "enum %s", t.Tag)
	}
	return sb.String()
}
