package ctype

import (
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{CharType, 1}, {ShortType, 2}, {IntType, 4}, {LongType, 4},
		{FloatType, 4}, {DoubleType, 8},
		{PointerTo(DoubleType), 4},
		{ArrayOf(FloatType, 100), 400},
		{ArrayOf(ArrayOf(FloatType, 4), 4), 64},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("sizeof(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := StructOf("point", []Field{
		{Name: "tag", Type: CharType},
		{Name: "x", Type: FloatType},
		{Name: "y", Type: FloatType},
	})
	if f := s.Field("tag"); f.Offset != 0 {
		t.Errorf("tag offset %d", f.Offset)
	}
	if f := s.Field("x"); f.Offset != 4 {
		t.Errorf("x offset %d (char should pad to word)", f.Offset)
	}
	if f := s.Field("y"); f.Offset != 8 {
		t.Errorf("y offset %d", f.Offset)
	}
	if s.Size() != 12 {
		t.Errorf("size %d", s.Size())
	}
	if s.Field("missing") != nil {
		t.Error("found missing field")
	}
}

func TestStructWithEmbeddedArray(t *testing.T) {
	// The paper's §10 lesson: arrays embedded within structures (graphics
	// code). Layout must place the matrix contiguously.
	m := StructOf("xform", []Field{
		{Name: "m", Type: ArrayOf(ArrayOf(FloatType, 4), 4)},
		{Name: "flags", Type: IntType},
	})
	if m.Field("m").Offset != 0 || m.Field("flags").Offset != 64 {
		t.Errorf("offsets %d %d", m.Field("m").Offset, m.Field("flags").Offset)
	}
	if m.Size() != 68 {
		t.Errorf("size %d", m.Size())
	}
}

func TestUnionLayout(t *testing.T) {
	u := UnionOf("u", []Field{
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
		{Name: "c", Type: CharType},
	})
	if u.Size() != 8 {
		t.Errorf("union size %d", u.Size())
	}
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Errorf("field %s at offset %d", f.Name, f.Offset)
		}
	}
}

func TestDecay(t *testing.T) {
	a := ArrayOf(FloatType, 10)
	d := a.Decay()
	if d.Kind != Pointer || d.Elem.Kind != Float {
		t.Errorf("array decay: %s", d)
	}
	f := FuncOf(IntType, nil, false)
	if fd := f.Decay(); fd.Kind != Pointer || fd.Elem.Kind != Func {
		t.Errorf("func decay: %s", fd)
	}
	if IntType.Decay() != IntType {
		t.Error("int decays")
	}
}

func TestPredicates(t *testing.T) {
	if !IntType.IsInteger() || !IntType.IsArith() || !IntType.IsScalar() {
		t.Error("int predicates")
	}
	if !FloatType.IsFloat() || FloatType.IsInteger() {
		t.Error("float predicates")
	}
	p := PointerTo(IntType)
	if !p.IsScalar() || p.IsArith() {
		t.Error("pointer predicates")
	}
	if VoidType.IsScalar() {
		t.Error("void is scalar")
	}
	s := StructOf("s", nil)
	if !s.IsAggregate() || s.IsScalar() {
		t.Error("struct predicates")
	}
}

func TestCommon(t *testing.T) {
	cases := []struct {
		a, b *Type
		want Kind
	}{
		{IntType, IntType, Int},
		{IntType, FloatType, Float},
		{FloatType, DoubleType, Double},
		{CharType, IntType, Int},
		{PointerTo(FloatType), IntType, Pointer},
		{IntType, PointerTo(FloatType), Pointer},
		{ArrayOf(FloatType, 8), IntType, Pointer},
	}
	for _, c := range cases {
		if got := Common(c.a, c.b); got.Kind != c.want {
			t.Errorf("Common(%s, %s) = %s, want kind %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(IntType, DoubleType) {
		t.Error("arith compat")
	}
	if !Compatible(PointerTo(VoidType), PointerTo(FloatType)) {
		t.Error("void* compat")
	}
	if Compatible(PointerTo(FloatType), IntType) {
		t.Error("ptr/int compat should fail")
	}
	s1 := StructOf("a", nil)
	s2 := StructOf("a", nil)
	s3 := StructOf("b", nil)
	if !Compatible(s1, s2) || Compatible(s1, s3) {
		t.Error("struct tag compat")
	}
}

func TestQualified(t *testing.T) {
	v := Qualified(IntType, true, false)
	if !v.Volatile || v.Const {
		t.Error("volatile qualifier")
	}
	if IntType.Volatile {
		t.Error("Qualified mutated the singleton")
	}
	if Qualified(IntType, false, false) != IntType {
		t.Error("no-op Qualified should return the same type")
	}
	if v2 := Qualified(v, true, false); v2 != v {
		t.Error("idempotent Qualified should return the same type")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"},
		{PointerTo(FloatType), "float*"},
		{ArrayOf(FloatType, 100), "float[100]"},
		{Qualified(IntType, true, false), "volatile int"},
		{FuncOf(VoidType, []Param{{Type: PointerTo(FloatType)}, {Type: IntType}}, false), "void(float*, int)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

// Property: array sizes scale linearly with length.
func TestQuickArraySize(t *testing.T) {
	f := func(n uint8) bool {
		a := ArrayOf(IntType, int(n))
		return a.Size() == int(n)*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct field offsets are non-decreasing and within size.
func TestQuickStructOffsets(t *testing.T) {
	prims := []*Type{CharType, ShortType, IntType, FloatType, DoubleType}
	f := func(picks []uint8) bool {
		var fields []Field
		for i, p := range picks {
			if i >= 12 {
				break
			}
			fields = append(fields, Field{Name: string(rune('a' + i)), Type: prims[int(p)%len(prims)]})
		}
		s := StructOf("q", fields)
		prev := 0
		for _, f := range s.Fields {
			if f.Offset < prev {
				return false
			}
			if f.Offset+f.Type.Size() > s.Size() {
				return false
			}
			prev = f.Offset
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalarCells(t *testing.T) {
	// int[3] → three int cells.
	cells := ScalarCells(ArrayOf(IntType, 3))
	if len(cells) != 3 || cells[2].Offset != 8 {
		t.Fatalf("array cells: %+v", cells)
	}
	// struct { char tag; float xy[2]; } → char at 0, floats at 4, 8.
	s := StructOf("s", []Field{
		{Name: "tag", Type: CharType},
		{Name: "xy", Type: ArrayOf(FloatType, 2)},
	})
	cells = ScalarCells(s)
	if len(cells) != 3 {
		t.Fatalf("struct cells: %+v", cells)
	}
	if cells[0].Offset != 0 || cells[0].Type.Kind != Char {
		t.Errorf("cell 0: %+v", cells[0])
	}
	if cells[1].Offset != 4 || cells[2].Offset != 8 {
		t.Errorf("float cells: %+v", cells[1:])
	}
	// union: first member only.
	u := UnionOf("u", []Field{
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
	})
	cells = ScalarCells(u)
	if len(cells) != 1 || cells[0].Type.Kind != Int {
		t.Errorf("union cells: %+v", cells)
	}
	// scalar: one cell at 0.
	cells = ScalarCells(DoubleType)
	if len(cells) != 1 || cells[0].Offset != 0 {
		t.Errorf("scalar cells: %+v", cells)
	}
}
