// Package analysis memoizes the mid-end's per-procedure analyses — the
// CFG + reaching-definition chains, live-variable sets, and per-loop
// dependence graphs — so sub-passes that made no changes reuse the
// previous solution instead of re-solving from scratch.
//
// Invalidation is generation-based: every mutating rewrite bumps the
// owning il.Proc's generation counter (il.Proc.Changed / AddVar do it
// structurally), and each cached artifact is keyed by the generation it
// was computed at. A query under a newer generation discards the stale
// state and recomputes; a query under the same generation is a hit.
// Dependence graphs are additionally keyed by loop identity and
// depend.Options, so the vector, parallel, and strength passes share one
// analysis of an unchanged loop instead of triple-analyzing it.
//
// A nil *Cache is valid and computes every query directly (the uncached
// pre-cache behavior); the differential tests compare the two modes.
// One Cache may be used from concurrent goroutines as long as no two
// goroutines query the same procedure while it is being mutated — the
// pass manager's per-procedure worker pool satisfies this by
// construction.
package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/dataflow"
	"repro/internal/depend"
	"repro/internal/il"
)

// Stats counts cache hits and misses per artifact kind.
type Stats struct {
	DataflowHits   uint64 `json:"dataflow_hits"`
	DataflowMisses uint64 `json:"dataflow_misses"`
	LivenessHits   uint64 `json:"liveness_hits"`
	LivenessMisses uint64 `json:"liveness_misses"`
	DependHits     uint64 `json:"depend_hits"`
	DependMisses   uint64 `json:"depend_misses"`
}

// Add folds another run's stats into s.
func (s *Stats) Add(o Stats) {
	s.DataflowHits += o.DataflowHits
	s.DataflowMisses += o.DataflowMisses
	s.LivenessHits += o.LivenessHits
	s.LivenessMisses += o.LivenessMisses
	s.DependHits += o.DependHits
	s.DependMisses += o.DependMisses
}

// Cache memoizes analyses per (procedure, generation). The zero value is
// not usable; call NewCache. A nil *Cache computes everything uncached.
type Cache struct {
	mu    sync.Mutex
	procs map[*il.Proc]*procState

	dfHits, dfMisses   atomic.Uint64
	lvHits, lvMisses   atomic.Uint64
	depHits, depMisses atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{procs: map[*il.Proc]*procState{}} }

// depKey identifies one dependence-graph entry: the loop plus the
// aliasing assumptions it was analyzed under (depend.Options is
// comparable by design).
type depKey struct {
	loop *il.DoLoop
	opts depend.Options
}

type procState struct {
	mu    sync.Mutex
	gen   uint64
	df    *dataflow.Analysis
	dfErr error
	dfOK  bool
	lv    *dataflow.Liveness
	deps  map[depKey]*depend.LoopDeps
}

func (c *Cache) state(p *il.Proc) *procState {
	c.mu.Lock()
	ps := c.procs[p]
	if ps == nil {
		ps = &procState{gen: p.Generation(), deps: map[depKey]*depend.LoopDeps{}}
		c.procs[p] = ps
	}
	c.mu.Unlock()
	return ps
}

// sync discards everything computed under an older generation. Caller
// holds ps.mu.
func (ps *procState) sync(p *il.Proc) {
	if g := p.Generation(); g != ps.gen {
		ps.gen = g
		ps.df, ps.dfErr, ps.dfOK = nil, nil, false
		ps.lv = nil
		clear(ps.deps)
	}
}

// Dataflow returns the CFG + reaching-definition analysis for p at its
// current generation.
func (c *Cache) Dataflow(p *il.Proc) (*dataflow.Analysis, error) {
	if c == nil {
		return dataflow.Analyze(p)
	}
	ps := c.state(p)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	c.dataflowLocked(ps, p)
	return ps.df, ps.dfErr
}

func (c *Cache) dataflowLocked(ps *procState, p *il.Proc) {
	ps.sync(p)
	if ps.dfOK {
		c.dfHits.Add(1)
		return
	}
	ps.df, ps.dfErr = dataflow.Analyze(p)
	ps.dfOK = true
	c.dfMisses.Add(1)
}

// DataflowLiveness returns the reaching-definition analysis and the
// live-variable solution over the same CFG, computing at most one of
// each per generation.
func (c *Cache) DataflowLiveness(p *il.Proc) (*dataflow.Analysis, *dataflow.Liveness, error) {
	if c == nil {
		a, err := dataflow.Analyze(p)
		if err != nil {
			return nil, nil, err
		}
		return a, dataflow.ComputeLiveness(p, a.Graph), nil
	}
	ps := c.state(p)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	c.dataflowLocked(ps, p)
	if ps.dfErr != nil {
		return nil, nil, ps.dfErr
	}
	if ps.lv != nil {
		c.lvHits.Add(1)
	} else {
		ps.lv = dataflow.ComputeLiveness(p, ps.df.Graph)
		c.lvMisses.Add(1)
	}
	return ps.df, ps.lv, nil
}

// LoopDeps returns the dependence graph of loop under opts at p's current
// generation. The vector, parallel, and strength passes all come through
// here, so an unchanged loop is analyzed once, not three times.
func (c *Cache) LoopDeps(p *il.Proc, loop *il.DoLoop, opts depend.Options) *depend.LoopDeps {
	if c == nil {
		return depend.AnalyzeLoop(p, loop, opts)
	}
	ps := c.state(p)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.sync(p)
	k := depKey{loop, opts}
	if ld, ok := ps.deps[k]; ok {
		c.depHits.Add(1)
		return ld
	}
	ld := depend.AnalyzeLoop(p, loop, opts)
	ps.deps[k] = ld
	c.depMisses.Add(1)
	return ld
}

// Stats snapshots the hit/miss counters. Safe to call concurrently with
// queries.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		DataflowHits:   c.dfHits.Load(),
		DataflowMisses: c.dfMisses.Load(),
		LivenessHits:   c.lvHits.Load(),
		LivenessMisses: c.lvMisses.Load(),
		DependHits:     c.depHits.Load(),
		DependMisses:   c.depMisses.Load(),
	}
}
