// The test package is external so it can build procs through the front
// end (parser → sema → lower) without creating an import cycle back
// through the packages that consume the cache.
package analysis_test

import (
	"testing"

	. "repro/internal/analysis"

	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

// procOf lowers src, runs the scalar optimizer (so for-loops become DO
// loops), and returns the named procedure and its first DO loop (nil if
// the source has none).
func procOf(t *testing.T, src, name string) (*il.Proc, *il.DoLoop) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	opt.Optimize(p, opt.DefaultOptions())
	var loop *il.DoLoop
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoLoop); ok && loop == nil {
			loop = d
		}
		return loop == nil
	})
	return p, loop
}

const loopSrc = `
float a[100], b[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = b[i] + 1.0;
}
`

func TestDataflowHitAndInvalidation(t *testing.T) {
	p, _ := procOf(t, loopSrc, "f")
	c := NewCache()

	a1, err := c.Dataflow(p)
	if err != nil {
		t.Fatalf("dataflow: %v", err)
	}
	a2, err := c.Dataflow(p)
	if err != nil {
		t.Fatalf("dataflow: %v", err)
	}
	if a1 != a2 {
		t.Errorf("same generation returned distinct analyses")
	}
	if st := c.Stats(); st.DataflowHits != 1 || st.DataflowMisses != 1 {
		t.Errorf("stats after repeat query = %+v, want 1 hit / 1 miss", st)
	}

	// A generation bump must force a recompute.
	p.BumpGeneration()
	a3, err := c.Dataflow(p)
	if err != nil {
		t.Fatalf("dataflow: %v", err)
	}
	if a3 == a1 {
		t.Errorf("stale analysis survived a generation bump")
	}
	if st := c.Stats(); st.DataflowHits != 1 || st.DataflowMisses != 2 {
		t.Errorf("stats after invalidation = %+v, want 1 hit / 2 misses", st)
	}
}

func TestDataflowLivenessSharesSolution(t *testing.T) {
	p, _ := procOf(t, loopSrc, "f")
	c := NewCache()

	a1, lv1, err := c.DataflowLiveness(p)
	if err != nil {
		t.Fatalf("liveness: %v", err)
	}
	a2, lv2, err := c.DataflowLiveness(p)
	if err != nil {
		t.Fatalf("liveness: %v", err)
	}
	if a1 != a2 || lv1 != lv2 {
		t.Errorf("same generation returned distinct solutions")
	}
	// The second query hits both tiers; a plain Dataflow call afterwards
	// reuses the same underlying analysis.
	if a3, _ := c.Dataflow(p); a3 != a1 {
		t.Errorf("Dataflow and DataflowLiveness disagree on the cached analysis")
	}
	st := c.Stats()
	if st.DataflowHits != 2 || st.DataflowMisses != 1 {
		t.Errorf("dataflow stats = %+v, want 2 hits / 1 miss", st)
	}
	if st.LivenessHits != 1 || st.LivenessMisses != 1 {
		t.Errorf("liveness stats = %+v, want 1 hit / 1 miss", st)
	}

	p.BumpGeneration()
	if _, lv3, err := c.DataflowLiveness(p); err != nil || lv3 == lv1 {
		t.Errorf("stale liveness survived a generation bump (err=%v)", err)
	}
}

func TestLoopDepsKeyedByLoopAndOptions(t *testing.T) {
	p, loop := procOf(t, loopSrc, "f")
	if loop == nil {
		t.Fatal("no DO loop")
	}
	c := NewCache()

	ld1 := c.LoopDeps(p, loop, depend.Options{})
	ld2 := c.LoopDeps(p, loop, depend.Options{})
	if ld1 != ld2 {
		t.Errorf("same (loop, options) returned distinct dependence graphs")
	}
	// Different aliasing assumptions are a different cache entry.
	ldNoAlias := c.LoopDeps(p, loop, depend.Options{NoAlias: true})
	if ldNoAlias == ld1 {
		t.Errorf("NoAlias query shared the aliasing-aware graph")
	}
	if st := c.Stats(); st.DependHits != 1 || st.DependMisses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}

	p.BumpGeneration()
	if ld3 := c.LoopDeps(p, loop, depend.Options{}); ld3 == ld1 {
		t.Errorf("stale dependence graph survived a generation bump")
	}
}

// A nil cache must behave exactly like calling the analyses directly:
// every query computes, nothing is retained, stats stay zero.
func TestNilCachePassthrough(t *testing.T) {
	p, loop := procOf(t, loopSrc, "f")
	var c *Cache

	a1, err := c.Dataflow(p)
	if err != nil || a1 == nil {
		t.Fatalf("nil-cache Dataflow: %v", err)
	}
	if a2, _ := c.Dataflow(p); a2 == a1 {
		t.Errorf("nil cache memoized a dataflow solution")
	}
	if _, lv, err := c.DataflowLiveness(p); err != nil || lv == nil {
		t.Fatalf("nil-cache DataflowLiveness: %v", err)
	}
	if loop != nil {
		if ld := c.LoopDeps(p, loop, depend.Options{}); ld == nil {
			t.Fatal("nil-cache LoopDeps returned nil")
		}
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache reported stats %+v", st)
	}
}
