package bench

import (
	"fmt"
	"strings"
)

// GenConfig sizes SyntheticProgram's output. The generator is
// deterministic: the same config always yields the same source, so
// benchmark runs compare like with like.
type GenConfig struct {
	// Procs is the number of loop procedures.
	Procs int
	// LoopsPerProc is how many vectorizable for-loops each procedure
	// gets, in addition to its fixed while-loop and nested-loop blocks.
	LoopsPerProc int
	// ChainWidth is the number of multiply-add terms in each loop body's
	// expression chain (wider chains mean bigger use-def problems).
	ChainWidth int
}

// SyntheticProgram generates a large compilable C program that stresses
// the mid-end the way the evaluation workloads do, only at scale: every
// procedure mixes vectorizable for-loops with wide expression chains,
// a while-loop that the §5.2 conversion turns into a DO loop, a 2-level
// nest for the nest parallelizer, and straight-line scalar code for
// constant propagation and dead-code elimination to chew on. The compile
// benchmarks measure driver.Compile throughput over this source.
func SyntheticProgram(cfg GenConfig) string {
	var sb strings.Builder
	sb.WriteString("float a[512], b[512], c[512], d[512];\nfloat m[32][32], w[32][32];\n")
	for p := 0; p < cfg.Procs; p++ {
		fmt.Fprintf(&sb, "\nvoid p%d(int n)\n{\n\tint i, j, t;\n\tfloat s;\n", p)
		// Straight-line scalar food: a constant chain with a dead store.
		fmt.Fprintf(&sb, "\tt = %d;\n\tt = t * 2 + 1;\n\tt = t - t;\n\ts = 0;\n", p+1)
		// Vectorizable loops with ChainWidth-term bodies. Coefficients
		// vary per (proc, loop, term) so no two loops fold identically.
		for l := 0; l < cfg.LoopsPerProc; l++ {
			terms := make([]string, 0, cfg.ChainWidth)
			for k := 0; k < cfg.ChainWidth; k++ {
				src := []string{"b[i]", "c[i]", "d[i]"}[k%3]
				terms = append(terms, fmt.Sprintf("%s * %d.0f", src, (p+l+k)%7+1))
			}
			fmt.Fprintf(&sb, "\tfor (i = 0; i < n; i++)\n\t\ta[i] = %s;\n",
				strings.Join(terms, " + "))
		}
		// A while loop for the §5.2 conversion (and its use-def splice).
		sb.WriteString("\twhile (n) {\n\t\td[n-1] = a[n-1] + b[n-1];\n\t\tn--;\n\t}\n")
		// A 2-level independent nest for the nest parallelizer.
		fmt.Fprintf(&sb, "\tfor (i = 0; i < 32; i++)\n\t\tfor (j = 0; j < 32; j++)\n"+
			"\t\t\tm[i][j] = w[i][j] * %d.0f + s;\n", p%5+1)
		sb.WriteString("}\n")
	}
	// main stays empty: the compile benchmarks never simulate, and under
	// full options the inliner would otherwise merge every procedure into
	// main, collapsing the many-procedure shape this program exists to
	// provide (and blowing codegen's register budget).
	sb.WriteString("\nint main(void)\n{\n\treturn 0;\n}\n")
	return sb.String()
}
