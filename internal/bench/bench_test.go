package bench

import (
	"strings"
	"testing"

	"repro/internal/driver"
)

func TestKernelDifferentialMeasurement(t *testing.T) {
	w := Daxpy(128)
	if !strings.Contains(w.Src, KernelMarker) {
		t.Fatal("workload missing kernel marker")
	}
	m, err := Run(w, Config{Name: "scalar", Opts: driver.Options{OptLevel: 1}, Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelCycles <= 0 || m.KernelCycles >= m.Cycles {
		t.Errorf("kernel cycles %d of %d total (differential broken?)", m.KernelCycles, m.Cycles)
	}
	if m.KernelFlops <= 0 || m.KernelFlops > m.Flops {
		t.Errorf("kernel flops %d of %d", m.KernelFlops, m.Flops)
	}
	// daxpy does 2 flops per element.
	if m.KernelFlops != 2*128 {
		t.Errorf("kernel flops %d, want 256", m.KernelFlops)
	}
}

func TestStripKernelRemovesOnlyMarkedLines(t *testing.T) {
	src := "a\nb " + KernelMarker + "\nc\n"
	got := StripKernel(src)
	if got != "a\nc\n" {
		t.Errorf("stripKernel: %q", got)
	}
}

func TestWorkloadsCompileEverywhere(t *testing.T) {
	workloads := []Workload{
		Backsolve(128), Daxpy(64), CopyLoop(64), ReverseAxpy(64),
		VectorAdd(128), Transform4x4(8),
	}
	cfgs := StandardConfigs(2)
	for _, w := range workloads {
		for _, c := range cfgs {
			if _, err := Run(w, c); err != nil {
				t.Errorf("%s under %s: %v", w.Name, c.Name, err)
			}
		}
	}
}

func TestMFLOPSAndSpeedup(t *testing.T) {
	base := Measurement{KernelCycles: 1600, KernelFlops: 100}
	half := Measurement{KernelCycles: 800, KernelFlops: 100}
	if s := Speedup(base, half); s != 2 {
		t.Errorf("speedup %f", s)
	}
	// 1600 cycles at 16 MHz = 100 µs; 100 flops → 1 MFLOPS.
	if m := base.MFLOPS(); m < 0.99 || m > 1.01 {
		t.Errorf("MFLOPS %f", m)
	}
	var zero Measurement
	if zero.MFLOPS() != 0 {
		t.Error("zero measurement MFLOPS")
	}
}

func TestSweep(t *testing.T) {
	ms, err := Sweep(VectorAdd(256), StandardConfigs(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("measurements: %d", len(ms))
	}
	// The full configuration must beat plain scalar.
	if ms[3].KernelCycles >= ms[0].KernelCycles {
		t.Errorf("no win: %d vs %d", ms[3].KernelCycles, ms[0].KernelCycles)
	}
}
