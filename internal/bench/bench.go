// Package bench provides the measurement harness shared by the repository
// benchmarks (bench_test.go), the experiments tool (cmd/experiments), and
// the examples: it compiles C workloads under named configurations and
// measures simulated cycles, kernel-only differential cycles, and MFLOPS.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/driver"
	"repro/internal/titan"
)

// Workload is a C program whose kernel region is delimited by the marker
// line "/*KERNEL*/" — the harness measures the kernel differentially by
// also running a variant with the kernel line removed, so setup loops do
// not dilute the measurement.
type Workload struct {
	Name string
	Src  string
}

// KernelMarker delimits the measured call in a workload's main.
const KernelMarker = "/*KERNEL*/"

// Measurement is one configuration's result.
type Measurement struct {
	Config     string
	Processors int
	// Total program numbers.
	Cycles int64
	Flops  int64
	// Kernel-only (differential) numbers; equal to the totals when the
	// workload has no marker.
	KernelCycles int64
	KernelFlops  int64
}

// MFLOPS is the kernel's simulated floating-point rate.
func (m Measurement) MFLOPS() float64 {
	if m.KernelCycles <= 0 {
		return 0
	}
	sec := float64(m.KernelCycles) / (titan.ClockMHz * 1e6)
	return float64(m.KernelFlops) / sec / 1e6
}

// Config names an optimization configuration.
type Config struct {
	Name       string
	Opts       driver.Options
	Processors int
}

// StandardConfigs are the paper's evaluation axes.
func StandardConfigs(maxProcs int) []Config {
	return []Config{
		{"scalar", driver.Options{OptLevel: 1}, 1},
		{"scalar+sched (§6)", driver.ScalarOptions(), 1},
		{"inline+vector (§5,7)", driver.Options{OptLevel: 1, Inline: true, Vectorize: true, StrengthReduce: true}, 1},
		{fmt.Sprintf("full, P=%d (§2,9)", maxProcs), driver.FullOptions(), maxProcs},
	}
}

// Run measures one workload under one configuration.
func Run(w Workload, cfg Config) (Measurement, error) {
	full, err := driver.Run(w.Src, cfg.Opts, cfg.Processors)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s/%s: %w", w.Name, cfg.Name, err)
	}
	m := Measurement{
		Config:       cfg.Name,
		Processors:   cfg.Processors,
		Cycles:       full.Cycles,
		Flops:        full.FlopCount,
		KernelCycles: full.Cycles,
		KernelFlops:  full.FlopCount,
	}
	if strings.Contains(w.Src, KernelMarker) {
		baseSrc := StripKernel(w.Src)
		base, err := driver.Run(baseSrc, cfg.Opts, cfg.Processors)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s/%s baseline: %w", w.Name, cfg.Name, err)
		}
		m.KernelCycles = full.Cycles - base.Cycles
		m.KernelFlops = full.FlopCount - base.FlopCount
		if m.KernelCycles < 1 {
			m.KernelCycles = 1
		}
	}
	return m, nil
}

// StripKernel removes every line containing the marker, producing the
// baseline variant used for kernel-differential measurement.
func StripKernel(src string) string {
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		if strings.Contains(l, KernelMarker) {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// Sweep measures a workload under several configurations.
func Sweep(w Workload, cfgs []Config) ([]Measurement, error) {
	var out []Measurement
	for _, c := range cfgs {
		m, err := Run(w, c)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Speedup returns base.KernelCycles / m.KernelCycles.
func Speedup(base, m Measurement) float64 {
	if m.KernelCycles == 0 {
		return 0
	}
	return float64(base.KernelCycles) / float64(m.KernelCycles)
}

// ------------------------------------------------------------- workloads

// Backsolve is E1: the §6 recurrence loop.
func Backsolve(n int) Workload {
	return Workload{Name: "backsolve", Src: fmt.Sprintf(`
float x[%d], y[%d], z[%d];

void backsolve(float *xv, float *yv, float *zv, int n)
{
	float *p, *q;
	int i;
	p = &xv[1];
	q = &xv[0];
	for (i = 0; i < n-2; i++)
		p[i] = zv[i] * (yv[i] - q[i]);
}

int main(void)
{
	int i;
	for (i = 0; i < %d; i++) {
		x[i] = 1.0f;
		y[i] = i;
		z[i] = 0.5f;
	}
	backsolve(x, y, z, %d); %s
	return 0;
}
`, n, n, n, n, n, KernelMarker)}
}

// Daxpy is E2: the §9 program.
func Daxpy(n int) Workload {
	return Workload{Name: "daxpy", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}

int main(void)
{
	int i;
	for (i = 0; i < %d; i++) {
		b[i] = i;
		c[i] = 1;
	}
	daxpy(a, b, c, 1.0, %d); %s
	return 0;
}
`, n, n, n, n, n, KernelMarker)}
}

// CopyLoop is E3: §5.3's pointer copy.
func CopyLoop(n int) Workload {
	return Workload{Name: "copyloop", Src: fmt.Sprintf(`
float dst[%d], src[%d];

void copyloop(float *a, float *b, int n)
{
	while (n) {
		*a++ = *b++;
		n--;
	}
}

int main(void)
{
	int i;
	for (i = 0; i < %d; i++) src[i] = i;
	copyloop(dst, src, %d); %s
	return 0;
}
`, n, n, n, n, KernelMarker)}
}

// ReverseAxpy is E4: §5.3's Fortran-style auxiliary induction variable.
func ReverseAxpy(n int) Workload {
	return Workload{Name: "reverseaxpy", Src: fmt.Sprintf(`
float a[%d], b[%d];

void raxpy(int n)
{
	int i, iv;
	iv = n - 1;
	for (i = 0; i < n; i++) {
		a[iv] = a[iv] + b[i];
		iv = iv - 1;
	}
}

int main(void)
{
	int i;
	for (i = 0; i < %d; i++) {
		a[i] = 1;
		b[i] = i;
	}
	raxpy(%d); %s
	return 0;
}
`, n, n, n, n, KernelMarker)}
}

// VectorAdd is E7's scaling workload.
func VectorAdd(n int) Workload {
	return Workload{Name: "vectoradd", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void vadd(int n)
{
	int i;
	for (i = 0; i < n; i++)
		a[i] = b[i] * 2.0f + c[i];
}

int main(void)
{
	int i;
	for (i = 0; i < %d; i++) {
		b[i] = i;
		c[i] = 1;
	}
	vadd(%d); %s
	return 0;
}
`, n, n, n, n, n, KernelMarker)}
}

// Transform4x4 is E10: arrays embedded in structures (§10 / graphics).
func Transform4x4(verts int) Workload {
	return Workload{Name: "transform4x4", Src: fmt.Sprintf(`
struct xform { float m[4][4]; };
struct vertex { float p[4]; };

struct xform world;
struct vertex verts[%d];

void transform(struct xform *t, struct vertex *v, int n)
{
	int k, i, j;
	float out[4];
	for (k = 0; k < n; k++) {
		for (i = 0; i < 4; i++) {
			float s;
			s = 0;
			for (j = 0; j < 4; j++)
				s = s + t->m[i][j] * v[k].p[j];
			out[i] = s;
		}
		for (i = 0; i < 4; i++)
			v[k].p[i] = out[i];
	}
}

int main(void)
{
	int i, k;
	for (i = 0; i < 4; i++) {
		int j;
		for (j = 0; j < 4; j++)
			world.m[i][j] = 0;
		world.m[i][i] = 2.0f;
	}
	for (k = 0; k < %d; k++)
		for (i = 0; i < 4; i++)
			verts[k].p[i] = k + i;
	transform(&world, verts, %d); %s
	return 0;
}
`, verts, verts, verts, KernelMarker)}
}

// LagRecurrence is the DOACROSS benchmark's first kernel: a lag-3
// autoregressive filter. The dependence cycle runs through the whole
// (single) statement, so the loop neither vectorizes nor distributes,
// but at distance 3 three chains pipeline concurrently: the critical
// path advances three iterations per synchronized handoff. The checksum
// loop makes the exit code data-dependent, so a miscompiled sync shows
// up as an output difference, not just a cycle difference.
func LagRecurrence(n int) Workload {
	return Workload{Name: "lagrec3", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void lagrec(int n)
{
	int i;
	for (i = 3; i < n; i++)
		a[i] = a[i-3] * 0.5f + b[i] * c[i] + b[i];
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		a[i] = i * 0.001f;
		b[i] = 0.5f;
		c[i] = 1.25f;
	}
	lagrec(%d); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (a[i] > c[i])
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, n, KernelMarker, n)}
}

// SmoothDamp is the DOACROSS benchmark's second kernel: an order-8
// damped smoothing recurrence. The distance covers the machine width,
// so under round-robin spreading every processor consumes a value it
// produced itself and codegen's wait elides to program order — DOACROSS
// becomes sync-free parallelism on a loop a DOALL check must reject.
func SmoothDamp(n int) Workload {
	return Workload{Name: "smooth8", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void smooth(int n)
{
	int i;
	for (i = 8; i < n; i++)
		a[i] = (a[i-8] + b[i] * c[i]) * 0.5f;
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		a[i] = i * 0.01f;
		b[i] = 1.5f;
		c[i] = 0.75f;
	}
	smooth(%d); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (a[i] > b[i])
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, n, KernelMarker, n)}
}

// Wavefront is the DOACROSS benchmark's third kernel: a diagonal
// recurrence flattened to one dimension, carried at distance 32 — far
// enough that several processors run whole iterations between waits and
// the tuner can legally coalesce posting (distance >= stride * width).
func Wavefront(n int) Workload {
	return Workload{Name: "wavefront", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void wave(int n)
{
	int i;
	for (i = 32; i < n; i++)
		a[i] = a[i-32] * 0.9f + b[i] * c[i] + c[i] * 0.5f;
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		a[i] = i * 0.01f;
		b[i] = 0.5f;
		c[i] = 1.25f;
	}
	wave(%d); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (a[i] > b[i])
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, n, KernelMarker, n)}
}

// Clip is the masked-execution benchmark's first kernel: the classic
// saturation loop. The guarded store is the only statement, so
// if-conversion turns the whole body into one predicated assignment and
// the vectorizer emits a single masked strip. With inputs ramping past
// the limit, roughly half the lanes are active — the mask utilization
// the stats layer reports should sit near 0.5.
func Clip(n int) Workload {
	return Workload{Name: "clip", Src: fmt.Sprintf(`
float in[%d], out[%d];

void clip(int n, float limit)
{
	int i;
	for (i = 0; i < n; i++)
		if (in[i] > limit)
			out[i] = limit;
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		in[i] = i * 0.25f;
		out[i] = in[i];
	}
	clip(%d, %d.0f); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (out[i] < in[i])
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, n/8, KernelMarker, n)}
}

// ThresholdAccum is the masked benchmark's second kernel: a guarded
// read-modify-write. Both the load and the store on acc[] must be
// governed by the mask (an inactive lane must neither fault nor write),
// so it exercises masked loads, masked adds, and the masked store in one
// statement.
func ThresholdAccum(n int) Workload {
	return Workload{Name: "threshacc", Src: fmt.Sprintf(`
float in[%d], acc[%d];

void thresh(int n, float t)
{
	int i;
	for (i = 0; i < n; i++)
		if (in[i] > t)
			acc[i] = acc[i] + in[i];
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		in[i] = (i %% 7) * 0.5f;
		acc[i] = 1.0f;
	}
	thresh(%d, 1.5f); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (acc[i] > 2.0f)
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, KernelMarker, n)}
}

// SparseSaxpy is the masked benchmark's third kernel: axpy guarded by a
// nonzero test on a separate mask array — the sparse-update pattern
// masked execution exists for. The guard reads m[], the body reads and
// writes different arrays, so the mask register carries across three
// distinct memory streams.
func SparseSaxpy(n int) Workload {
	return Workload{Name: "sparsesaxpy", Src: fmt.Sprintf(`
float x[%d], y[%d], m[%d];

void ssaxpy(int n, float a)
{
	int i;
	for (i = 0; i < n; i++)
		if (m[i] != 0.0f)
			y[i] = y[i] + a * x[i];
}

int main(void)
{
	int i, chk;
	for (i = 0; i < %d; i++) {
		x[i] = i * 0.125f;
		y[i] = 1.0f;
		m[i] = (i %% 3 == 0) ? 1.0f : 0.0f;
	}
	ssaxpy(%d, 2.0f); %s
	chk = 0;
	for (i = 0; i < %d; i++)
		if (y[i] > 1.0f)
			chk = chk + 1;
	return chk %% 251;
}
`, n, n, n, n, n, KernelMarker, n)}
}

// SyntheticDoall is the execution-engine benchmark's parallel workload:
// reps serial passes over an n-element dependence-free update, each pass
// a doall loop the compiler spreads across the processors (and
// vectorizes within each chunk). n is sized far above the strip length
// so every processor runs many strips per region.
func SyntheticDoall(n, reps int) Workload {
	return Workload{Name: "syntheticdoall", Src: fmt.Sprintf(`
float a[%d], b[%d], c[%d];

void doall(int n)
{
	int i;
	for (i = 0; i < n; i++)
		a[i] = b[i] * 2.0f + c[i] + a[i] * 0.5f;
}

int main(void)
{
	int i, r;
	for (i = 0; i < %d; i++) {
		a[i] = 0;
		b[i] = i;
		c[i] = 1;
	}
	for (r = 0; r < %d; r++) doall(%d); %s
	return 0;
}
`, n, n, n, n, reps, n, KernelMarker)}
}
