package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

func postBatch(t *testing.T, ts *httptest.Server, breq BatchRequest, clientID string) (BatchResponse, int) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/compile/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /compile/batch: %v", err)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return out, resp.StatusCode
}

// TestBatchCompile compiles a translation set in one round-trip: two
// distinct units plus a duplicate. The duplicate must be served from
// cache (memory or by joining the in-flight compile), never compiled
// twice.
func TestBatchCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	srcA := "int main(void) { return 0; }"
	srcB := daxpySrc
	out, code := postBatch(t, ts, BatchRequest{
		Sources: []string{srcA, srcB, srcA},
		Options: fullOpts(),
	}, "")
	if code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if out.Units != 3 || out.OK != 3 || out.Failed != 0 {
		t.Fatalf("tallies: %+v", out)
	}
	if out.Compiled != 2 || out.CacheHits != 1 {
		t.Errorf("compiled=%d cache_hits=%d, want 2 fresh + 1 dedup", out.Compiled, out.CacheHits)
	}
	// Results come back in input order, units 0 and 2 with equal keys.
	for i, res := range out.Results {
		if res.Index != i || res.Status != http.StatusOK || res.Artifact == nil {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
	if out.Results[0].Artifact.Key != out.Results[2].Artifact.Key {
		t.Error("identical units got different keys")
	}
	if out.Results[0].Artifact.Key == out.Results[1].Artifact.Key {
		t.Error("distinct units share a key")
	}

	m := getMetrics(t, ts)
	if m.Batch.Batches != 1 || m.Batch.Units != 3 {
		t.Errorf("batch counters: %+v", m.Batch)
	}
	// Each unit also lands in the compile counters.
	if m.Compiles.Total != 3 || m.Compiles.CacheMisses != 2 || m.Compiles.CacheHits != 1 {
		t.Errorf("compile counters: %+v", m.Compiles)
	}
}

// TestBatchUnitErrorIsIsolated: one broken unit fails alone; the rest
// of the set compiles.
func TestBatchUnitErrorIsIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	out, code := postBatch(t, ts, BatchRequest{
		Sources: []string{"int main(void) { return 0; }", "this is not C"},
	}, "")
	if code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if out.OK != 1 || out.Failed != 1 {
		t.Fatalf("tallies: %+v", out)
	}
	if out.Results[1].Status != http.StatusUnprocessableEntity || out.Results[1].Error == "" {
		t.Errorf("broken unit: %+v", out.Results[1])
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchUnits: 2})
	if _, code := postBatch(t, ts, BatchRequest{}, ""); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", code)
	}
	srcs := []string{"int main(void){return 0;}", "int main(void){return 1;}", "int main(void){return 2;}"}
	if _, code := postBatch(t, ts, BatchRequest{Sources: srcs}, ""); code != http.StatusBadRequest {
		t.Errorf("oversize batch: %d", code)
	}
}

// TestRateLimitPerClient: each client gets its own token bucket; a
// client that exhausts its burst gets 429 with Retry-After while other
// clients are unaffected.
func TestRateLimitPerClient(t *testing.T) {
	// Refill is negligible within the test; the burst of 2 is the story.
	_, ts := newTestServer(t, Config{RatePerSec: 0.001, RateBurst: 2})
	compileAs := func(client string, n int) (int, http.Header, map[string]any) {
		body, _ := json.Marshal(CompileRequest{Source: fmt.Sprintf("int main(void) { return %d; }", n)})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/compile", bytes.NewReader(body))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		json.NewDecoder(resp.Body).Decode(&payload)
		return resp.StatusCode, resp.Header, payload
	}

	for i := 0; i < 2; i++ {
		if code, _, _ := compileAs("alice", i); code != http.StatusOK {
			t.Fatalf("request %d within burst: %d", i, code)
		}
	}
	code, hdr, payload := compileAs("alice", 2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over burst: %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if payload["client"] != "alice" || payload["retry_after_ms"] == nil {
		t.Errorf("429 body: %+v", payload)
	}
	// Another client is not punished for alice's flood.
	if code, _, _ := compileAs("bob", 3); code != http.StatusOK {
		t.Errorf("bob after alice's 429: %d", code)
	}

	m := getMetrics(t, ts)
	if m.Compiles.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", m.Compiles.RateLimited)
	}
}

// TestRateLimitChargesBatchPerUnit: a batch of N costs N tokens, so
// fairness cannot be bypassed by wrapping a flood in one request.
func TestRateLimitChargesBatchPerUnit(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.001, RateBurst: 2})
	srcs := []string{"int main(void){return 0;}", "int main(void){return 1;}", "int main(void){return 2;}"}
	if _, code := postBatch(t, ts, BatchRequest{Sources: srcs}, "carol"); code != http.StatusTooManyRequests {
		t.Errorf("3-unit batch against burst 2: %d, want 429", code)
	}
	// A batch that fits the burst is admitted.
	if out, code := postBatch(t, ts, BatchRequest{Sources: srcs[:2]}, "carol"); code != http.StatusOK || out.OK != 2 {
		t.Errorf("2-unit batch: %d %+v", code, out)
	}
}
