package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/inline"
	"repro/internal/pass"
	"repro/internal/schedule"
	"repro/internal/titan"
	"repro/internal/tune"
)

// CompileRequest is the POST /compile body: one C translation unit plus
// the paper's compiler options, optionally followed by a simulation run.
type CompileRequest struct {
	Source  string         `json:"source"`
	Options CompileOptions `json:"options"`
	// Processors > 0 simulates the compiled program on that many Titan
	// processors (1..4, §2) and includes the run result in the response
	// and the cache entry.
	Processors int `json:"processors,omitempty"`
	// Entry names the simulation entry function (default main).
	Entry string `json:"entry,omitempty"`
}

// CompileOptions is the JSON mirror of driver.Options. Pointers mark the
// fields whose zero value is not the server default: omitting opt_level
// means -O1, omitting strength_reduce means on (titancc's defaults).
type CompileOptions struct {
	OptLevel       *int  `json:"opt_level,omitempty"`
	StrengthReduce *bool `json:"strength_reduce,omitempty"`
	Inline         bool  `json:"inline,omitempty"`
	Vectorize      bool  `json:"vectorize,omitempty"`
	Parallelize    bool  `json:"parallelize,omitempty"`
	ListParallel   bool  `json:"list_parallel,omitempty"`
	NoAlias        bool  `json:"noalias,omitempty"`
	VL             int   `json:"vl,omitempty"`
	// Tune autotunes per-loop schedules before compiling: a bounded grid
	// of legal candidates is measured on the fast engine and the
	// cycle-minimal set wins. Tuned schedule sets are cached by the
	// compile's base content fingerprint (source + options, not the run
	// spec), so repeat tuned requests — even at a different processor
	// count, even on a different cluster node — reuse the plan without
	// re-measuring.
	Tune bool `json:"tune,omitempty"`
	// Catalogs lists registry ids (content fingerprints from POST
	// /catalogs) to attach for inline expansion.
	Catalogs []string `json:"catalogs,omitempty"`
}

func (o CompileOptions) driverOptions(cats []*inline.Catalog) driver.Options {
	opts := driver.Options{
		OptLevel:       1,
		StrengthReduce: true,
		Inline:         o.Inline,
		Vectorize:      o.Vectorize,
		Parallelize:    o.Parallelize,
		ListParallel:   o.ListParallel,
		NoAlias:        o.NoAlias,
		VL:             o.VL,
		Catalogs:       cats,
	}
	if o.OptLevel != nil {
		opts.OptLevel = *o.OptLevel
	}
	if o.StrengthReduce != nil {
		opts.StrengthReduce = *o.StrengthReduce
	}
	return opts
}

// RunResult is a simulation outcome in JSON form. HostNanos is the wall
// time the engine took on the serving host — telemetry for sizing the
// simulation budget of a deployment, not part of the simulated model (it
// is stamped into the cached artifact by the request that computed it).
type RunResult struct {
	ExitCode   int64   `json:"exit_code"`
	Cycles     int64   `json:"cycles"`
	Instrs     int64   `json:"instrs"`
	Flops      int64   `json:"flops"`
	MFLOPS     float64 `json:"mflops"`
	Processors int     `json:"processors"`
	HostNanos  int64   `json:"host_nanos"`
	Output     string  `json:"output,omitempty"`
	// SyncStalls counts simulated cycles processors spent blocked in
	// DOACROSS wait instructions; Procs breaks parallel-region time down
	// per processor (omitted when the program never forked).
	SyncStalls int64          `json:"sync_stall_cycles,omitempty"`
	Procs      []ProcStatJSON `json:"procs,omitempty"`
	// MaskOps counts retired masked vector operations; MaskLanesActive /
	// MaskLanesTotal give the run's mask-lane utilization (omitted for
	// programs with no masked code).
	MaskOps         int64 `json:"mask_ops,omitempty"`
	MaskLanesActive int64 `json:"mask_lanes_active,omitempty"`
	MaskLanesTotal  int64 `json:"mask_lanes_total,omitempty"`
}

// ProcStatJSON is one processor's share of the run's parallel regions.
type ProcStatJSON struct {
	Pid       int   `json:"pid"`
	Busy      int64 `json:"busy_cycles"`
	SyncStall int64 `json:"sync_stall_cycles"`
	JoinIdle  int64 `json:"join_idle_cycles"`
}

// procStatsJSON extracts the nonzero per-processor entries.
func procStatsJSON(r titan.Result) []ProcStatJSON {
	var out []ProcStatJSON
	for pid, ps := range r.Procs {
		if ps.Busy == 0 && ps.SyncStall == 0 && ps.JoinIdle == 0 {
			continue
		}
		out = append(out, ProcStatJSON{Pid: pid, Busy: ps.Busy, SyncStall: ps.SyncStall, JoinIdle: ps.JoinIdle})
	}
	return out
}

// CompileResponse is the POST /compile reply. Key, IL, Asm, Report, and
// Run form the cached artifact; Cached, CacheTier, and ElapsedNS are
// stamped per request. CacheTier "remote" marks an artifact served by
// the owning cluster peer rather than recompiled.
type CompileResponse struct {
	Key    string       `json:"key"`
	IL     string       `json:"il"`
	Asm    string       `json:"asm"`
	Report *pass.Report `json:"report"`
	Run    *RunResult   `json:"run,omitempty"`

	Cached    bool   `json:"cached"`
	CacheTier string `json:"cache_tier,omitempty"` // memory, disk, inflight, or remote
	ElapsedNS int64  `json:"elapsed_ns"`
}

// errQueueFull rejects work when every worker is busy and the queue is
// at depth; clients should back off and retry (the 503 carries a
// Retry-After and the queue geometry).
var errQueueFull = errors.New("service: compile queue full")

// unitOutcome is how one translation unit's request ended: either an
// artifact blob (with its cache provenance) or an HTTP status + error.
type unitOutcome struct {
	blob   []byte
	cached bool
	tier   string
	status int
	err    error
}

// validateUnit normalizes and bounds-checks one compile request.
func validateUnit(req *CompileRequest) error {
	if req.Source == "" {
		return errors.New("source must not be empty")
	}
	if req.Processors != 0 {
		// The paper's machine tops out at four processors; reject rather
		// than silently clamp (§2).
		if err := titan.ValidateProcessors(req.Processors); err != nil {
			return err
		}
	}
	if req.Options.VL != 0 {
		// Strip lengths are bounded by the Titan vector register file;
		// reject rather than clamp, like the processor count.
		if err := schedule.ValidateVL(req.Options.VL); err != nil {
			return err
		}
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	return nil
}

// handleCompile serves POST /compile: admission, cache lookup (local
// tiers, then the owning peer), then a deduplicated, queued, timed
// compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	start := time.Now()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := validateUnit(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit(w, r, 1) {
		return
	}
	cats, err := s.resolveCatalogs(req.Options.Catalogs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := s.serveUnit(r.Context(), req, req.Options.driverOptions(cats))
	s.writeUnit(w, out, start)
}

// serveUnit runs the full per-unit path: key, local cache, remote peer
// tier, then the deduplicated queued compile bounded by the server
// timeout. Both POST /compile and each unit of POST /compile/batch land
// here, so the two endpoints share caching, dedup, and admission
// semantics exactly.
func (s *Server) serveUnit(ctx context.Context, req CompileRequest, opts driver.Options) unitOutcome {
	s.metrics.begin()
	defer s.metrics.end()

	key, err := requestKey(req, opts)
	if err != nil {
		return unitOutcome{status: http.StatusBadRequest, err: err}
	}

	if blob, tier := s.cache.Get(key); tier != TierNone {
		s.metrics.hit(tier)
		return unitOutcome{blob: blob, cached: true, tier: tier}
	}
	if blob, ok := s.remoteFetch(key); ok {
		s.metrics.hit(TierRemote)
		// Promote into local memory (not disk: the owner keeps the
		// durable copy) so the node's next request is a memory hit.
		s.cache.PutLocal(key, blob)
		return unitOutcome{blob: blob, cached: true, tier: TierRemote}
	}

	fl, leader := s.flight.do(key, &s.inflight, func() ([]byte, error) {
		return s.compile(key, req, opts)
	})

	timeout := time.NewTimer(s.cfg.Timeout)
	defer timeout.Stop()
	select {
	case <-fl.done:
		if fl.err != nil {
			if errors.Is(fl.err, errQueueFull) {
				s.metrics.rejected()
				return unitOutcome{status: http.StatusServiceUnavailable, err: fl.err}
			}
			s.metrics.failed()
			return unitOutcome{status: http.StatusUnprocessableEntity, err: fl.err}
		}
		if leader {
			// The leader's compile already recorded the miss (with its
			// pass report) in s.compile.
			return unitOutcome{blob: fl.blob}
		}
		s.metrics.hit(TierInflight)
		return unitOutcome{blob: fl.blob, cached: true, tier: TierInflight}
	case <-timeout.C:
		// The compile keeps running (it is tracked for drain and will
		// warm the cache); only this request gives up waiting.
		s.metrics.timeout()
		return unitOutcome{status: http.StatusGatewayTimeout,
			err: fmt.Errorf("compile still running after %s; retry to pick up the cached result", s.cfg.Timeout)}
	case <-ctx.Done():
		s.metrics.timeout()
		return unitOutcome{status: http.StatusServiceUnavailable, err: ctx.Err()}
	}
}

// writeUnit turns a unit outcome into the HTTP response for the single
// /compile endpoint.
func (s *Server) writeUnit(w http.ResponseWriter, out unitOutcome, start time.Time) {
	if out.err != nil {
		if errors.Is(out.err, errQueueFull) {
			s.writeQueueFull(w, out.err)
			return
		}
		if out.status == http.StatusUnprocessableEntity {
			compileError(w, out.status, out.err)
			return
		}
		httpError(w, out.status, out.err)
		return
	}
	s.respondArtifact(w, out.blob, start, out.cached, out.tier)
}

// writeQueueFull is the admission-queue 503: a Retry-After header plus
// a JSON body naming the queue geometry, so clients (titanload included)
// can back off by the server's own estimate instead of guessing.
func (s *Server) writeQueueFull(w http.ResponseWriter, err error) {
	occupied := len(s.queueSem)
	queued := occupied - s.cfg.Workers
	if queued < 0 {
		queued = 0
	}
	wait := s.queueWaitEstimate(queued)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":          err.Error(),
		"queue_depth":    s.cfg.QueueDepth,
		"queued":         queued,
		"workers":        s.cfg.Workers,
		"retry_after_ms": wait.Milliseconds(),
	})
}

// queueWaitEstimate guesses how long the backlog needs to drain: the
// observed mean compile latency times the queue length per worker.
// Crude, but an honest crude number beats a bare 503.
func (s *Server) queueWaitEstimate(queued int) time.Duration {
	mean := s.metrics.meanLatency()
	if mean <= 0 {
		mean = time.Second
	}
	est := mean * time.Duration(queued/s.cfg.Workers+1)
	if est > 30*time.Second {
		est = 30 * time.Second
	}
	return est
}

// remoteFetch consults the cluster for a key this node does not own:
// when the owner is a remote peer, ask it (deduplicating concurrent
// fetches of the same key singleflight-style). Reports false — degrade
// to a local compile — when clustering is off, this node is the owner,
// the owner misses, or the owner is unreachable.
func (s *Server) remoteFetch(key string) ([]byte, bool) {
	if !s.cluster.Enabled() {
		return nil, false
	}
	owner := s.cluster.Owner(key)
	if owner == nil {
		return nil, false // we own it; a local miss means compile
	}
	fl, _ := s.flight.do("remote\x00"+key, &s.inflight, func() ([]byte, error) {
		blob, found, err := owner.Fetch(cluster.CachePath(key))
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, errRemoteMiss
		}
		return blob, nil
	})
	<-fl.done
	return fl.blob, fl.err == nil
}

// errRemoteMiss marks a clean 404 from the owning peer (vs. a failure).
var errRemoteMiss = errors.New("service: owner peer does not have the key")

// pushToOwner write-throughs a freshly compiled artifact to the key's
// owning peer, asynchronously and best-effort: the push rides the drain
// WaitGroup so shutdown doesn't strand it, but a failed push costs only
// future cache efficiency (the peer counters record it).
func (s *Server) pushToOwner(key string, blob []byte) {
	owner := s.cluster.Owner(key)
	if owner == nil {
		return
	}
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		owner.Push(http.MethodPut, cluster.CachePath(key), "application/json", blob)
	}()
}

// requestKey extends the driver's content-addressed compile key with the
// run spec, so "compile" and "compile and simulate on 2 processors" are
// distinct artifacts. The key is a pure function of request content, so
// every cluster node computes the same key — which is what makes ring
// ownership coherent.
func requestKey(req CompileRequest, opts driver.Options) (string, error) {
	base, err := driver.CacheKey(req.Source, opts)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, base)
	if req.Options.Tune {
		// Tuned and untuned compiles of the same unit are distinct
		// artifacts (different schedules, different code).
		fmt.Fprintf(h, "\ntune:entry=%s", req.Entry)
	}
	if req.Processors > 0 {
		fmt.Fprintf(h, "\nrun:procs=%d,entry=%s", req.Processors, req.Entry)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// compile is the leader path: take a queue slot, wait for a worker, run
// the full pipeline (plus optional simulation), cache the artifact and
// write it through to its cluster owner.
func (s *Server) compile(key string, req CompileRequest, opts driver.Options) ([]byte, error) {
	select {
	case s.queueSem <- struct{}{}:
		defer func() { <-s.queueSem }()
	default:
		return nil, errQueueFull
	}
	s.workerSem <- struct{}{}
	defer func() { <-s.workerSem }()
	if s.compileHook != nil {
		s.compileHook(key)
	}

	ctx := pass.NewContext()
	if req.Options.Tune {
		tres, err := s.tunedSchedules(req, opts)
		if err != nil {
			return nil, err
		}
		// Replay the decision log as sched-selected remarks so the
		// artifact (and every cache hit on it) carries the tuner's
		// verdicts, whether this compile tuned or reused a cached plan.
		for _, d := range tres.Remarks() {
			ctx.Diags.Report(d)
		}
		ctx.Schedules = tres.Schedules
	}
	res, err := driver.CompileWith(req.Source, opts, ctx)
	if err != nil {
		return nil, err
	}
	// The artifact is the JSON blob; once it is encoded (and on every
	// error path after this point) the compile's IL arenas are dead
	// weight, so bulk-free them instead of waiting on the GC. /metrics
	// exports the arena_bytes_live gauge this keeps honest.
	defer res.IL.Release()
	art := CompileResponse{
		Key:    key,
		IL:     driver.DumpIL(res),
		Asm:    driver.Disassemble(res),
		Report: res.Report,
	}
	if req.Processors > 0 {
		if _, ok := res.Machine.Funcs[req.Entry]; !ok {
			return nil, fmt.Errorf("entry function %q is not defined", req.Entry)
		}
		m := titan.NewMachine(res.Machine, req.Processors)
		start := time.Now()
		r, err := m.Run(req.Entry)
		hostNanos := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("simulation: %w", err)
		}
		art.Run = &RunResult{
			ExitCode:        r.ExitCode,
			Cycles:          r.Cycles,
			Instrs:          r.Instrs,
			Flops:           r.FlopCount,
			MFLOPS:          r.MFLOPS(),
			Processors:      req.Processors,
			HostNanos:       hostNanos,
			Output:          r.Output,
			SyncStalls:      r.SyncStalls,
			Procs:           procStatsJSON(r),
			MaskOps:         r.MaskOps,
			MaskLanesActive: r.MaskLanesActive,
			MaskLanesTotal:  r.MaskLanesTotal,
		}
		s.metrics.maskRun(r.MaskOps, r.MaskLanesActive, r.MaskLanesTotal)
	}
	blob, err := json.Marshal(art)
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, blob)
	s.pushToOwner(key, blob)
	s.metrics.miss(res.Report)
	return blob, nil
}

// tunedSchedules returns the tuned schedule set for the request's unit:
// from the local schedule cache when a previous request already paid for
// the search, else from the plan's owning cluster peer, else by running
// the autotuner (and publishing the result locally and to the owner).
// The plan key is the base compile fingerprint plus the tuning entry —
// NOT the run spec — so requests that differ only in processor count
// share one tuned plan, cluster-wide.
func (s *Server) tunedSchedules(req CompileRequest, opts driver.Options) (*tune.Result, error) {
	key, err := planKey(req, opts)
	if err != nil {
		return nil, err
	}
	if tres, ok := s.schedules.get(key); ok {
		s.metrics.schedHit()
		return tres, nil
	}
	if tres, ok := s.remotePlanFetch(key); ok {
		s.metrics.schedRemoteHit()
		s.schedules.put(key, tres)
		return tres, nil
	}
	s.metrics.schedMiss()
	procs := req.Processors
	if procs <= 0 {
		procs = 1
	}
	tres, err := tune.Tune(req.Source, opts, tune.Config{Processors: procs, Entry: req.Entry})
	if err != nil {
		return nil, fmt.Errorf("autotune: %w", err)
	}
	s.schedules.put(key, tres)
	s.metrics.tuned()
	s.pushPlanToOwner(key, tres)
	return tres, nil
}

// planKey is the cluster-wide identity of a tuned schedule plan: a hex
// digest over the base compile fingerprint and the tuning entry, hex so
// it can ride the peer tier's /schedules/{key} path like cache keys do.
func planKey(req CompileRequest, opts driver.Options) (string, error) {
	base, err := driver.CacheKey(req.Source, opts)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(base + "\ntune:entry=" + req.Entry))
	return hex.EncodeToString(sum[:]), nil
}

// compileError writes a compile failure, attaching the positioned
// structured form when the error came from the front end (lex, parse,
// sema, lower), so clients get a machine-readable code and source
// location alongside the message.
func compileError(w http.ResponseWriter, status int, err error) {
	if d, ok := driver.ErrorDiagnostic(err); ok {
		writeJSON(w, status, map[string]any{"error": err.Error(), "diag": d})
		return
	}
	httpError(w, status, err)
}

// respondArtifact stamps the per-request fields onto a cached artifact
// blob and writes it.
func (s *Server) respondArtifact(w http.ResponseWriter, blob []byte, start time.Time, cached bool, tier string) {
	var resp CompileResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("corrupt cached artifact: %w", err))
		return
	}
	resp.Cached = cached
	resp.CacheTier = tier
	elapsed := time.Since(start)
	resp.ElapsedNS = elapsed.Nanoseconds()
	s.metrics.observe(elapsed)
	writeJSON(w, http.StatusOK, resp)
}
