package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed artifact store: an in-memory LRU held
// under a byte budget, with an optional disk tier underneath so a
// restarted daemon serves its old artifacts warm. Keys are hex digests
// (driver.CacheKey plus the request's run spec), so equal keys imply
// equal artifacts and Put is idempotent.
//
// Disk entries are written with a SHA-256 content header and verified
// on every read: a flipped bit (disk rot, torn write, an operator's
// stray edit) makes the entry fail verification, and the cache silently
// deletes it and reports a miss rather than serving a corrupt artifact.
type Cache struct {
	mu        sync.Mutex
	budget    int64 // in-memory byte budget; <= 0 means unbounded
	bytes     int64
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	dir       string // disk tier root; "" disables it
	evictions int64
	diskErrs  int64
	corrupt   int64
}

type cacheItem struct {
	key  string
	blob []byte
}

// CacheStats is the /metrics view of the cache.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Evictions   int64 `json:"evictions"`
	DiskErrors  int64 `json:"disk_errors"`
	// CorruptDrops counts disk entries that failed SHA-256 verification
	// on read and were deleted instead of served.
	CorruptDrops int64 `json:"corrupt_drops"`
}

// Cache tiers reported by Get (plus the two pseudo-tiers the compile
// handler stamps on responses it served without a local cache read).
const (
	TierNone   = ""
	TierMemory = "memory"
	TierDisk   = "disk"
	// TierInflight is not a Cache tier: the compile handler reports it
	// when a request was served by joining an identical in-flight
	// compile rather than by the cache.
	TierInflight = "inflight"
	// TierRemote is not a Cache tier either: it marks an artifact
	// fetched from the owning cluster peer instead of recompiled.
	TierRemote = "remote"
)

// diskMagic heads every disk-tier file, followed by the hex SHA-256 of
// the artifact bytes and a newline. Files without the header (or whose
// body does not hash to the recorded digest) are corrupt and deleted.
const diskMagic = "titanart1 "

// NewCache returns a cache with the given in-memory budget and optional
// disk directory (created if missing).
func NewCache(budgetBytes int64, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		budget: budgetBytes,
		order:  list.New(),
		items:  map[string]*list.Element{},
		dir:    dir,
	}, nil
}

// Get returns the artifact for key and the tier that served it
// (TierMemory, TierDisk, or TierNone when absent). A disk hit is
// verified against its content digest, then promoted into memory.
func (c *Cache) Get(key string) ([]byte, string) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		blob := el.Value.(*cacheItem).blob
		c.mu.Unlock()
		return blob, TierMemory
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, TierNone
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, TierNone
	}
	blob, ok := decodeDiskEntry(raw)
	if !ok {
		// Corrupt on disk: drop it so it is recompiled, never served.
		os.Remove(c.path(key))
		c.mu.Lock()
		c.corrupt++
		c.mu.Unlock()
		return nil, TierNone
	}
	c.put(key, blob, false)
	return blob, TierDisk
}

// decodeDiskEntry strips and verifies the content header.
func decodeDiskEntry(raw []byte) ([]byte, bool) {
	rest, ok := bytes.CutPrefix(raw, []byte(diskMagic))
	if !ok {
		return nil, false
	}
	digest, blob, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok || len(digest) != sha256.Size*2 {
		return nil, false
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != string(digest) {
		return nil, false
	}
	return blob, true
}

// encodeDiskEntry prepends the content header.
func encodeDiskEntry(blob []byte) []byte {
	sum := sha256.Sum256(blob)
	out := make([]byte, 0, len(diskMagic)+sha256.Size*2+1+len(blob))
	out = append(out, diskMagic...)
	out = hex.AppendEncode(out, sum[:])
	out = append(out, '\n')
	return append(out, blob...)
}

// Put stores an artifact in memory (budget permitting) and, when a disk
// tier is configured, durably on disk. Disk failures are counted, not
// fatal: the cache is an accelerator, never a correctness dependency.
func (c *Cache) Put(key string, blob []byte) { c.put(key, blob, true) }

// PutLocal stores an artifact in memory only. The remote tier uses it
// to promote peer-fetched artifacts: the owning peer is the durable
// copy, so replicating it onto every reader's disk would just multiply
// the fleet's storage by the node count.
func (c *Cache) PutLocal(key string, blob []byte) { c.put(key, blob, false) }

func (c *Cache) put(key string, blob []byte, writeDisk bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// Content-addressed: same key means same artifact; just refresh.
		c.order.MoveToFront(el)
	} else if c.budget <= 0 || int64(len(blob)) <= c.budget {
		c.items[key] = c.order.PushFront(&cacheItem{key: key, blob: blob})
		c.bytes += int64(len(blob))
		for c.budget > 0 && c.bytes > c.budget && c.order.Len() > 1 {
			back := c.order.Back()
			it := back.Value.(*cacheItem)
			c.order.Remove(back)
			delete(c.items, it.key)
			c.bytes -= int64(len(it.blob))
			c.evictions++
		}
	}
	// else: a single blob over the whole budget never enters memory —
	// it would evict everything and still not help the next request.
	c.mu.Unlock()

	if writeDisk && c.dir != "" {
		// Atomic publish so a concurrent Get never reads a half-written
		// artifact and a crash never leaves one behind.
		tmp := c.path(key) + ".tmp"
		err := os.WriteFile(tmp, encodeDiskEntry(blob), 0o644)
		if err == nil {
			err = os.Rename(tmp, c.path(key))
		}
		if err != nil {
			os.Remove(tmp)
			c.mu.Lock()
			c.diskErrs++
			c.mu.Unlock()
		}
	}
}

// Stats snapshots the counters for /metrics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:      c.order.Len(),
		Bytes:        c.bytes,
		BudgetBytes:  c.budget,
		Evictions:    c.evictions,
		DiskErrors:   c.diskErrs,
		CorruptDrops: c.corrupt,
	}
}

func (c *Cache) path(key string) string {
	// Keys are hex digests — safe as file names as-is.
	return filepath.Join(c.dir, key+".json")
}
