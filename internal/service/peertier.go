package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/inline"
	"repro/internal/tune"
)

// The peer tier is the owner side of cluster mode: plain content-
// addressed storage endpoints that cluster members call on each other.
//
//	GET /cache/{key}      — serve a locally cached artifact (never
//	                        recursing to the remote tier, never compiling)
//	PUT /cache/{key}      — accept a write-through from the node that
//	                        compiled an artifact this node owns
//	GET /schedules/{key}  — serve a tuned schedule plan
//	PUT /schedules/{key}  — accept a tuned plan write-through
//	GET /catalogs/{id}    — serve a registered §7 catalog's raw bytes
//
// Everything stored here is content-addressed, so the handlers are
// idempotent and need no coordination: re-PUTting an artifact is a
// no-op, and a GET either has the exact bytes or answers 404 (the
// requester then compiles locally — a peer miss is never an error).

// validKey gates peer-tier keys: artifact and plan keys are SHA-256 hex
// digests; anything else is rejected before it can touch the disk tier.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleCacheGet serves GET /cache/{key}: the local memory and disk
// tiers only. Deliberately no remote recursion — the requester already
// determined this node is the owner, and owners that re-forward would
// turn one lookup into a storm.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key %q", key))
		return
	}
	blob, tier := s.cache.Get(key)
	if tier == TierNone {
		httpError(w, http.StatusNotFound, fmt.Errorf("no artifact for key %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache-Tier", tier)
	w.Write(blob)
}

// handleCachePut accepts a write-through artifact from a peer. The blob
// must decode as an artifact whose embedded key matches the path — a
// peer (or a confused client) cannot poison key K with artifact B.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key %q", key))
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading artifact body: %w", err))
		return
	}
	var art CompileResponse
	if err := json.Unmarshal(blob, &art); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("artifact does not decode: %w", err))
		return
	}
	if art.Key != key {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("artifact key %s does not match path key %s", art.Key, key))
		return
	}
	s.cache.Put(key, blob)
	w.WriteHeader(http.StatusNoContent)
}

// handleScheduleGet serves GET /schedules/{key}: a tuned plan this node
// holds, as tune.Result JSON.
func (s *Server) handleScheduleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed plan key %q", key))
		return
	}
	tres, ok := s.schedules.get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no tuned plan for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, tres)
}

// handleSchedulePut accepts a tuned-plan write-through.
func (s *Server) handleSchedulePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed plan key %q", key))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading plan body: %w", err))
		return
	}
	var tres tune.Result
	if err := json.Unmarshal(body, &tres); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("plan does not decode: %w", err))
		return
	}
	// A plan from a peer still has to obey the machine-range invariants
	// (VL bounds, unroll bounds, known mask strategies): a corrupt or
	// newer-versioned plan must not enter the cache and poison compiles.
	if err := tres.Schedules.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("plan rejected: %w", err))
		return
	}
	s.schedules.put(key, &tres)
	w.WriteHeader(http.StatusNoContent)
}

// handleCatalogGet serves GET /catalogs/{id}: the raw serialized bytes
// of a registered catalog, for peers resolving a catalog id they don't
// hold. Catalog ids are content fingerprints, so the caller verifies
// what it gets.
func (s *Server) handleCatalogGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, ok := s.registry.raw(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no catalog %q registered here", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

// remotePlanFetch asks the plan's owning peer for a tuned schedule set
// some other node already paid to search.
func (s *Server) remotePlanFetch(key string) (*tune.Result, bool) {
	if !s.cluster.Enabled() {
		return nil, false
	}
	owner := s.cluster.Owner(key)
	if owner == nil {
		return nil, false
	}
	blob, found, err := owner.Fetch(cluster.SchedulePath(key))
	if err != nil || !found {
		return nil, false
	}
	var tres tune.Result
	if err := json.Unmarshal(blob, &tres); err != nil {
		return nil, false
	}
	return &tres, true
}

// pushPlanToOwner write-throughs a freshly tuned plan to its owner,
// asynchronously: tuning costs dozens of measured compiles, so sharing
// the result is the single highest-value byte stream in the cluster.
func (s *Server) pushPlanToOwner(key string, tres *tune.Result) {
	owner := s.cluster.Owner(key)
	if owner == nil {
		return
	}
	blob, err := json.Marshal(tres)
	if err != nil {
		return
	}
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		owner.Push(http.MethodPut, cluster.SchedulePath(key), "application/json", blob)
	}()
}

// resolveCatalogs maps catalog ids to decoded catalogs: from the local
// registry first, then — in cluster mode — from peers in ring order
// (owner first). A catalog fetched from a peer is verified against its
// content fingerprint and registered locally, so the fleet converges on
// every node holding what its clients use.
func (s *Server) resolveCatalogs(ids []string) ([]*inline.Catalog, error) {
	cats, missing := s.registry.resolveKnown(ids)
	if len(missing) == 0 {
		return cats, nil
	}
	if !s.cluster.Enabled() {
		return nil, fmt.Errorf("unknown catalog %q: upload it via POST /catalogs first", missing[0])
	}
	for _, id := range missing {
		if err := s.fetchCatalogFromPeers(id); err != nil {
			return nil, err
		}
	}
	cats, missing = s.registry.resolveKnown(ids)
	if len(missing) > 0 {
		return nil, fmt.Errorf("unknown catalog %q: upload it via POST /catalogs first", missing[0])
	}
	return cats, nil
}

// fetchCatalogFromPeers walks the id's ring preference order asking
// each peer for the raw catalog. Content is verified: bytes that do not
// decode, or decode to a different fingerprint, are discarded and the
// walk continues.
func (s *Server) fetchCatalogFromPeers(id string) error {
	for _, p := range s.cluster.OwnerOrder(id) {
		raw, found, err := p.Fetch(cluster.CatalogPath(id))
		if err != nil || !found {
			continue
		}
		cat, err := inline.ReadCatalog(bytes.NewReader(raw))
		if err != nil {
			continue
		}
		fp, err := cat.Fingerprint()
		if err != nil || fp != id {
			continue
		}
		s.registry.add(cat, "", raw)
		return nil
	}
	return fmt.Errorf("unknown catalog %q: not registered here or on any reachable peer; upload it via POST /catalogs first", id)
}

// pushCatalogToOwner write-throughs an uploaded catalog to its owning
// peer so cluster-wide resolution is one hop from anywhere.
func (s *Server) pushCatalogToOwner(id string, raw []byte) {
	if !s.cluster.Enabled() {
		return
	}
	owner := s.cluster.Owner(id)
	if owner == nil {
		return
	}
	buf := make([]byte, len(raw))
	copy(buf, raw)
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		owner.Push(http.MethodPost, "/catalogs", "application/octet-stream", buf)
	}()
}
