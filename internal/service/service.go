// Package service is titand's compile service: the paper's §7 view of
// compilation as a database problem, grown into a long-lived daemon. A
// cold CLI pays the whole pipeline on every invocation; workloads that
// fire thousands of near-identical compile requests (autotuners,
// NeuroVectorizer-style search loops) want a server that compiles each
// distinct unit once and serves the rest from a content-addressed cache.
//
// The daemon exposes:
//
//	POST /compile  — C source + options → IL, Titan assembly, the pass
//	                 report, and optionally a simulation result
//	POST /catalogs — upload a §7 procedure catalog; registered by
//	                 content fingerprint
//	GET  /catalogs — list the catalog registry
//	GET  /metrics  — aggregated pass.Report, cache and queue counters,
//	                 latency summary
//	GET  /healthz  — liveness and drain state
//
// Compiles run on a bounded worker pool behind a bounded queue (overload
// answers 503, not collapse), identical in-flight requests are
// deduplicated singleflight-style, and results land in an in-memory LRU
// under a byte budget with an optional disk tier so restarts stay warm.
// Shutdown drains: in-flight compiles finish and publish to the cache
// before the daemon exits.
package service

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers bounds concurrent compiles (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds compiles admitted beyond the running ones;
	// past Workers+QueueDepth, /compile answers 503 (default 64).
	QueueDepth int
	// Timeout bounds how long one request waits for its compile
	// (default 60s). The compile itself keeps running to warm the cache.
	Timeout time.Duration
	// CacheBytes is the in-memory artifact budget (default 64 MiB,
	// negative = unbounded).
	CacheBytes int64
	// CacheDir, when set, adds a disk tier under this directory so a
	// restarted daemon stays warm.
	CacheDir string
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the compile service. Create with New, mount Handler on an
// http.Server, and call Drain during shutdown.
type Server struct {
	cfg       Config
	cache     *Cache
	schedules *scheduleCache
	registry  *catalogRegistry
	metrics   *metrics
	flight    flightGroup

	queueSem  chan struct{} // admission: Workers+QueueDepth slots
	workerSem chan struct{} // execution: Workers slots
	inflight  sync.WaitGroup
	draining  atomic.Bool

	// compileHook, when set (tests), runs on the worker goroutine with
	// a worker slot held, before the pipeline starts.
	compileHook func(key string)
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:       cfg,
		cache:     cache,
		schedules: newScheduleCache(),
		registry:  newCatalogRegistry(),
		metrics:   newMetrics(),
		queueSem:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workerSem: make(chan struct{}, cfg.Workers),
	}, nil
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/catalogs", s.handleCatalogs)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.Stats(), s.registry.count(), s.schedules.len()))
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string `json:"status"` // ok | draining
	InFlight int64  `json:"in_flight"`
	UptimeNS int64  `json:"uptime_ns"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(CacheStats{}, 0, 0)
	h := HealthResponse{Status: "ok", InFlight: snap.Compiles.InFlight, UptimeNS: snap.UptimeNS}
	status := http.StatusOK
	if s.draining.Load() {
		// Load balancers should stop routing here; existing work drains.
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Drain marks the server draining and waits for every tracked compile —
// including compiles whose requester already timed out — to finish and
// publish to the cache, or for ctx to expire. The caller shuts the
// http.Server down first (which waits for in-flight handlers), then
// drains the compile pool.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
