// Package service is titand's compile service: the paper's §7 view of
// compilation as a database problem, grown into a long-lived daemon. A
// cold CLI pays the whole pipeline on every invocation; workloads that
// fire thousands of near-identical compile requests (autotuners,
// NeuroVectorizer-style search loops) want a server that compiles each
// distinct unit once and serves the rest from a content-addressed cache.
//
// The daemon exposes:
//
//	POST /compile        — C source + options → IL, Titan assembly, the
//	                       pass report, and optionally a simulation result
//	POST /compile/batch  — a whole translation set in one round-trip,
//	                       sharing decoded catalogs across the units
//	POST /catalogs       — upload a §7 procedure catalog; registered by
//	                       content fingerprint
//	GET  /catalogs       — list the catalog registry
//	GET  /metrics        — aggregated pass.Report, cache/queue/cluster
//	                       counters, latency summary
//	GET  /healthz        — liveness (is the process up)
//	GET  /readyz         — readiness (false while draining or while the
//	                       peer ring is bootstrapping)
//
// Compiles run on a bounded worker pool behind a bounded queue (overload
// answers 503 with a Retry-After, not collapse), identical in-flight
// requests are deduplicated singleflight-style, and results land in an
// in-memory LRU under a byte budget with an optional disk tier so
// restarts stay warm. An optional per-client token bucket keeps one
// greedy client from starving the admission queue for everyone else.
//
// In cluster mode (see internal/cluster) N daemons share one cache
// namespace: artifact keys, tuned-schedule plans, and catalogs each have
// an owner node on a consistent-hash ring, a local miss consults the
// owner before recompiling (GET /cache/{key} on the peer tier), and
// completed work is written through to its owner — so a unit compiled or
// tuned anywhere is a one-hop hit everywhere. Peer failures degrade to
// local compilation; they never fail a request.
//
// Shutdown drains: in-flight compiles finish and publish to the cache
// before the daemon exits.
package service

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production default.
type Config struct {
	// Workers bounds concurrent compiles (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds compiles admitted beyond the running ones;
	// past Workers+QueueDepth, /compile answers 503 (default 64).
	QueueDepth int
	// Timeout bounds how long one request waits for its compile
	// (default 60s). The compile itself keeps running to warm the cache.
	Timeout time.Duration
	// CacheBytes is the in-memory artifact budget (default 64 MiB,
	// negative = unbounded).
	CacheBytes int64
	// CacheDir, when set, adds a disk tier under this directory so a
	// restarted daemon stays warm.
	CacheDir string
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchUnits bounds the translation units in one POST
	// /compile/batch (default 256).
	MaxBatchUnits int
	// Cluster, when non-nil, joins this node to a peer ring: cache
	// keys, tuned plans, and catalogs gain cluster-wide owners, and a
	// local miss consults the owner before recompiling. The caller
	// retains ownership (titand closes it at shutdown).
	Cluster *cluster.Cluster
	// RatePerSec > 0 enables per-client admission rate limiting: each
	// client ID (X-Client-ID header, else the peer host) gets a token
	// bucket refilled at this rate. A batch of N units costs N tokens.
	RatePerSec float64
	// RateBurst is the bucket capacity (default 2×RatePerSec, min 1).
	RateBurst int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchUnits <= 0 {
		c.MaxBatchUnits = 256
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RatePerSec)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	return c
}

// Server is the compile service. Create with New, mount Handler on an
// http.Server, and call Drain during shutdown.
type Server struct {
	cfg       Config
	cache     *Cache
	schedules *scheduleCache
	registry  *catalogRegistry
	metrics   *metrics
	flight    flightGroup
	cluster   *cluster.Cluster // nil in single-node mode
	limiter   *rateLimiter     // nil when rate limiting is off

	queueSem  chan struct{} // admission: Workers+QueueDepth slots
	workerSem chan struct{} // execution: Workers slots
	inflight  sync.WaitGroup
	draining  atomic.Bool

	// compileHook, when set (tests), runs on the worker goroutine with
	// a worker slot held, before the pipeline starts.
	compileHook func(key string)
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		schedules: newScheduleCache(),
		registry:  newCatalogRegistry(),
		metrics:   newMetrics(),
		cluster:   cfg.Cluster,
		queueSem:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workerSem: make(chan struct{}, cfg.Workers),
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, float64(cfg.RateBurst))
	}
	return s, nil
}

// Handler returns the daemon's route table: the client API plus the
// peer tier cluster members use among themselves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/compile/batch", s.handleBatch)
	mux.HandleFunc("/catalogs", s.handleCatalogs)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Peer tier: owner-side storage for the cluster's remote cache,
	// tuned-plan, and catalog lookups.
	mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /cache/{key}", s.handleCachePut)
	mux.HandleFunc("GET /schedules/{key}", s.handleScheduleGet)
	mux.HandleFunc("PUT /schedules/{key}", s.handleSchedulePut)
	mux.HandleFunc("GET /catalogs/{id}", s.handleCatalogGet)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK,
		s.metrics.snapshot(s.cache.Stats(), s.registry.count(), s.schedules.len(), s.cluster.Snapshot()))
}

// HealthResponse is the GET /healthz and /readyz body.
type HealthResponse struct {
	Status   string `json:"status"` // ok | ready | draining | bootstrapping
	InFlight int64  `json:"in_flight"`
	UptimeNS int64  `json:"uptime_ns"`
}

// handleHealthz is pure liveness: if the process can answer, it is
// alive — even while draining. Orchestrators use this to decide whether
// to restart the process, so reporting unhealthy during a graceful
// drain would turn every deploy into a kill.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(CacheStats{}, 0, 0, nil)
	writeJSON(w, http.StatusOK,
		HealthResponse{Status: "ok", InFlight: snap.Compiles.InFlight, UptimeNS: snap.UptimeNS})
}

// handleReadyz is routability: 503 while draining (stop sending new
// work; existing work finishes) and while the peer ring is still
// bootstrapping (the node would compile everything locally and miss the
// remote tier). Load balancers and cluster peers route around nodes
// that answer not-ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(CacheStats{}, 0, 0, nil)
	h := HealthResponse{Status: "ready", InFlight: snap.Compiles.InFlight, UptimeNS: snap.UptimeNS}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case !s.cluster.Bootstrapped():
		h.Status = "bootstrapping"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Drain marks the server draining (readiness goes false so the cluster
// routes around it) and waits for every tracked compile — including
// compiles whose requester already timed out, and write-through pushes
// to peer owners — to finish, or for ctx to expire. The caller shuts
// the http.Server down first (which waits for in-flight handlers), then
// drains the compile pool.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
