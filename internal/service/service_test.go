package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
)

const daxpySrc = `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	int i;
	for (i = 0; i < n; i++)
		x[i] = y[i] + alpha * z[i];
}

int main(void)
{
	float a[64], b[64], c[64];
	int i;
	for (i = 0; i < 64; i++) {
		b[i] = i;
		c[i] = 1;
	}
	daxpy(a, b, c, 2.0, 64);
	return 0;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, ts *httptest.Server, req CompileRequest) (CompileResponse, int) {
	t.Helper()
	out, code, err := tryCompile(ts, req)
	if err != nil {
		t.Fatal(err)
	}
	return out, code
}

// tryCompile is postCompile without the test plumbing, safe to call from
// helper goroutines.
func tryCompile(ts *httptest.Server, req CompileRequest) (CompileResponse, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return CompileResponse{}, 0, fmt.Errorf("marshal: %w", err)
	}
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return CompileResponse{}, 0, fmt.Errorf("POST /compile: %w", err)
	}
	defer resp.Body.Close()
	var out CompileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return CompileResponse{}, resp.StatusCode, fmt.Errorf("decode: %w", err)
		}
	}
	return out, resp.StatusCode, nil
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return m
}

func fullOpts() CompileOptions {
	return CompileOptions{Inline: true, Vectorize: true, Parallelize: true}
}

func TestCompileBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	out, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: fullOpts()})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Cached {
		t.Error("first compile reported cached")
	}
	if out.Key == "" || out.IL == "" || out.Asm == "" || out.Report == nil {
		t.Errorf("incomplete artifact: key=%q il=%d asm=%d report=%v",
			out.Key, len(out.IL), len(out.Asm), out.Report != nil)
	}
	if out.Report.Vector.VectorStmts == 0 {
		t.Error("daxpy did not vectorize")
	}
}

// TestCompileCacheHit is the tentpole's acceptance check: the second
// identical request is served from cache — the hit counter increments
// and, per the aggregated pass totals in /metrics, no pipeline pass ran.
func TestCompileCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := CompileRequest{Source: daxpySrc, Options: fullOpts()}

	first, code := postCompile(t, ts, req)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first: status %d cached %v", code, first.Cached)
	}
	m1 := getMetrics(t, ts)
	if m1.Compiles.CacheMisses != 1 || m1.Compiles.CacheHits != 0 {
		t.Fatalf("after first: %+v", m1.Compiles)
	}
	if len(m1.Passes) == 0 || m1.Passes["vectorize"].Runs != 1 {
		t.Fatalf("pass totals missing after first compile: %+v", m1.Passes)
	}

	second, code := postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	if !second.Cached || second.CacheTier != TierMemory {
		t.Fatalf("second not served from memory cache: cached=%v tier=%q", second.Cached, second.CacheTier)
	}
	if second.Key != first.Key || second.IL != first.IL || second.Asm != first.Asm {
		t.Error("cached artifact differs from the original")
	}

	m2 := getMetrics(t, ts)
	if m2.Compiles.CacheHits != 1 || m2.Compiles.MemoryHits != 1 || m2.Compiles.CacheMisses != 1 {
		t.Fatalf("after second: %+v", m2.Compiles)
	}
	// No pass ran for the hit: cumulative per-pass time and run counts
	// are unchanged.
	for name, tot := range m2.Passes {
		if prev := m1.Passes[name]; tot != prev {
			t.Errorf("pass %s totals moved on a cache hit: %+v -> %+v", name, prev, tot)
		}
	}
}

func TestCompileOptionsAffectKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a, _ := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: CompileOptions{Vectorize: true}})
	b, _ := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: CompileOptions{}})
	if a.Key == b.Key {
		t.Error("vectorize flag did not change the cache key")
	}
	if b.Cached {
		t.Error("different options served from cache")
	}
}

func TestCompileRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	out, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: fullOpts(), Processors: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Run == nil || out.Run.Processors != 2 || out.Run.ExitCode != 0 || out.Run.Cycles == 0 {
		t.Fatalf("run result: %+v", out.Run)
	}
	if out.Run.HostNanos <= 0 {
		t.Errorf("HostNanos = %d, want > 0", out.Run.HostNanos)
	}
	// Same source, no run: distinct artifact.
	plain, _ := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: fullOpts()})
	if plain.Key == out.Key {
		t.Error("run spec did not change the cache key")
	}
}

func TestCompileRejectsBadProcessors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, p := range []int{-1, 5, 99} {
		_, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Processors: p})
		if code != http.StatusBadRequest {
			t.Errorf("processors=%d: status %d, want 400", p, code)
		}
	}
	m := getMetrics(t, ts)
	if m.Compiles.CacheMisses != 0 {
		t.Error("invalid requests reached the pipeline")
	}
}

func TestCompileErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, code := postCompile(t, ts, CompileRequest{Source: ""}); code != http.StatusBadRequest {
		t.Errorf("empty source: status %d", code)
	}
	if _, code := postCompile(t, ts, CompileRequest{Source: "int main( {"}); code != http.StatusUnprocessableEntity {
		t.Errorf("syntax error: status %d", code)
	}
	if _, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Processors: 1, Entry: "nosuch"}); code != http.StatusUnprocessableEntity {
		t.Errorf("missing entry: status %d", code)
	}
	m := getMetrics(t, ts)
	if m.Compiles.Errors != 2 {
		t.Errorf("errors counter: %+v", m.Compiles)
	}
}

func TestCatalogUploadListCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	if err := driver.WriteCatalogFromSource(&buf, "float scale(float x, float a) { return x * a; }"); err != nil {
		t.Fatalf("build catalog: %v", err)
	}
	raw := buf.Bytes()

	resp, err := http.Post(ts.URL+"/catalogs?name=libscale", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /catalogs: %v", err)
	}
	var up CatalogUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !up.Created || up.Catalog.ID == "" {
		t.Fatalf("upload: status %d %+v", resp.StatusCode, up)
	}
	if len(up.Catalog.Procs) != 1 || up.Catalog.Procs[0] != "scale" {
		t.Fatalf("catalog procs: %+v", up.Catalog.Procs)
	}

	// Idempotent re-upload.
	resp2, err := http.Post(ts.URL+"/catalogs", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("re-POST: %v", err)
	}
	var up2 CatalogUploadResponse
	json.NewDecoder(resp2.Body).Decode(&up2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || up2.Created || up2.Catalog.ID != up.Catalog.ID {
		t.Fatalf("re-upload: status %d %+v", resp2.StatusCode, up2)
	}

	// List.
	lresp, err := http.Get(ts.URL + "/catalogs")
	if err != nil {
		t.Fatalf("GET /catalogs: %v", err)
	}
	var list CatalogListResponse
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if list.Count != 1 || list.Catalogs[0].ID != up.Catalog.ID || list.Catalogs[0].Name != "libscale" {
		t.Fatalf("list: %+v", list)
	}

	// Compile against the registered catalog: the call inlines.
	src := `
float scale(float x, float a);
int main(void) {
	float r;
	r = scale(3.0f, 2.0f);
	if (r == 6.0f) return 0;
	return 1;
}
`
	out, code := postCompile(t, ts, CompileRequest{
		Source:     src,
		Options:    CompileOptions{Inline: true, Catalogs: []string{up.Catalog.ID}},
		Processors: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("compile with catalog: status %d", code)
	}
	if out.Report.Inline.CallsExpanded == 0 {
		t.Error("catalog procedure was not inlined")
	}
	if out.Run == nil || out.Run.ExitCode != 0 {
		t.Errorf("run: %+v", out.Run)
	}

	// Unknown catalog id is a client error that names the id.
	_, code = postCompile(t, ts, CompileRequest{
		Source:  src,
		Options: CompileOptions{Inline: true, Catalogs: []string{"deadbeef"}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown catalog: status %d", code)
	}
}

func TestCatalogUploadRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/catalogs", "application/octet-stream", strings.NewReader("not a catalog"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e["error"], "catalog") {
		t.Errorf("error not descriptive: %q", e["error"])
	}
}

// TestConcurrentMixedRequests is the tentpole's concurrency acceptance
// check: ≥16 goroutines firing overlapping identical and distinct
// requests, run under -race in CI. Every request must succeed and the
// counters must reconcile: each distinct unit compiled at most... exactly
// once per distinct key, everything else served as a hit or an in-flight
// join.
func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	const goroutines = 24
	// 6 distinct translation units; goroutine i hammers unit i%6, so
	// each unit sees 4 overlapping identical requests.
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`
int work%d(int n) { int i; int s; s = %d; for (i = 0; i < n; i++) s = s + i * %d; return s; }
int main(void) { return work%d(16) & 1; }
`, i, i, i+1, i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// g%6 picks the unit, g/6 picks the processor count, so every
			// unit is requested on both 1 and 2 processors.
			req := CompileRequest{Source: srcs[g%len(srcs)], Options: fullOpts(), Processors: 1 + (g/6)%2}
			for rep := 0; rep < 2; rep++ {
				out, code, err := tryCompile(ts, req)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d rep %d: %w", g, rep, err)
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d rep %d: status %d", g, rep, code)
					return
				}
				if out.Run == nil || out.IL == "" {
					errs <- fmt.Errorf("goroutine %d rep %d: incomplete artifact", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := getMetrics(t, ts)
	total := m.Compiles.CacheHits + m.Compiles.CacheMisses
	if m.Compiles.Total != total || total != goroutines*2 {
		t.Errorf("counters do not reconcile: %+v", m.Compiles)
	}
	// 6 units × 2 processor counts = 12 distinct keys; dedupe and the
	// cache must keep real compiles at exactly that.
	if m.Compiles.CacheMisses != 12 {
		t.Errorf("expected exactly 12 real compiles, got %d (%+v)", m.Compiles.CacheMisses, m.Compiles)
	}
	if m.Compiles.InFlight != 0 {
		t.Errorf("in-flight gauge did not return to zero: %+v", m.Compiles)
	}
	if m.Latency.Count != goroutines*2 || m.Latency.MaxNS < m.Latency.MinNS {
		t.Errorf("latency summary: %+v", m.Latency)
	}
}

// TestDrainWaitsForInflightCompiles: a compile admitted before shutdown
// finishes and lands in the cache before Drain returns, even if its
// requester already timed out (the 504 path).
func TestDrainWaitsForInflightCompiles(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: 50 * time.Millisecond})
	release := make(chan struct{})
	started := make(chan string, 1)
	s.compileHook = func(key string) {
		started <- key
		<-release
	}

	go tryCompile(ts, CompileRequest{Source: daxpySrc, Options: fullOpts()})
	var key string
	select {
	case key = <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("compile never started")
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned while a compile was in flight: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the compile finished")
	}
	if _, tier := s.cache.Get(key); tier == TierNone {
		t.Error("drained compile did not publish to the cache")
	}

	// The drain shows on readiness (route new work elsewhere) but not
	// on liveness (do not restart a draining process).
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("readyz during drain: %d %+v", resp.StatusCode, h)
	}
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200 (liveness is not readiness)", live.StatusCode)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Timeout: 5 * time.Second})
	release := make(chan struct{})
	started := make(chan string, 4)
	s.compileHook = func(key string) {
		started <- key
		<-release
	}
	defer close(release)

	// Occupy the worker, then the one queue slot, with distinct keys.
	statuses := make(chan int, 3)
	for i := 0; i < 2; i++ {
		go func(i int) {
			src := fmt.Sprintf("int main(void) { return %d; }", i)
			_, code, _ := tryCompile(ts, CompileRequest{Source: src})
			statuses <- code
		}(i)
	}
	<-started // worker busy; the second request holds the queue slot
	// Admission is the leader goroutine taking the queue slot, so give
	// the second request a moment to get there.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queueSem) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.queueSem) != 2 {
		t.Fatalf("queue not saturated: %d", len(s.queueSem))
	}

	body, _ := json.Marshal(CompileRequest{Source: "int main(void) { return 2; }"})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /compile: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status %d, want 503", resp.StatusCode)
	}
	// The 503 tells the client when and why: a Retry-After estimate and
	// a body naming the queue state it hit.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("queue-full 503 missing Retry-After header")
	}
	var payload struct {
		Error        string `json:"error"`
		QueueDepth   int    `json:"queue_depth"`
		Queued       int    `json:"queued"`
		Workers      int    `json:"workers"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decode 503 body: %v", err)
	}
	if payload.QueueDepth != 1 || payload.Workers != 1 || payload.RetryAfterMS < 1 {
		t.Errorf("503 body: %+v", payload)
	}
	m := getMetrics(t, ts)
	if m.Compiles.Rejected != 1 {
		t.Errorf("rejected counter: %+v", m.Compiles)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz: %d %+v", resp.StatusCode, h)
	}
	// A single-node server (nil cluster) is born ready.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer rresp.Body.Close()
	var rh HealthResponse
	if err := json.NewDecoder(rresp.Body).Decode(&rh); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rresp.StatusCode != http.StatusOK || rh.Status != "ready" {
		t.Errorf("readyz: %d %+v", rresp.StatusCode, rh)
	}
}

func TestMethodDiscipline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for path, method := range map[string]string{"/compile": "GET", "/metrics": "POST", "/catalogs": "DELETE"} {
		req, _ := http.NewRequest(method, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
		}
	}
}
