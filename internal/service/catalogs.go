package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/inline"
)

// catalogRegistry is §7 as a network service: procedure catalogs are
// uploaded once, keyed by content fingerprint, and attached to compiles
// by that id. Catalogs are immutable after upload — the inliner clones
// callee bodies out of them — so one registry entry serves any number of
// concurrent compiles.
type catalogRegistry struct {
	mu   sync.RWMutex
	cats map[string]*inline.Catalog
	raws map[string][]byte // serialized form, re-served to cluster peers
	meta map[string]CatalogRecord
}

// CatalogRecord is the registry's metadata for one catalog.
type CatalogRecord struct {
	ID       string    `json:"id"` // content fingerprint (SHA-256 hex)
	Name     string    `json:"name,omitempty"`
	Procs    []string  `json:"procs"`
	Globals  int       `json:"globals"`
	Bytes    int       `json:"bytes"`
	Uploaded time.Time `json:"uploaded"`
}

func newCatalogRegistry() *catalogRegistry {
	return &catalogRegistry{
		cats: map[string]*inline.Catalog{},
		raws: map[string][]byte{},
		meta: map[string]CatalogRecord{},
	}
}

// add registers a catalog under its fingerprint, keeping the serialized
// bytes so the registry can re-serve them to cluster peers; re-adding
// identical content is idempotent and keeps the original record.
func (r *catalogRegistry) add(cat *inline.Catalog, name string, raw []byte) (CatalogRecord, bool, error) {
	id, err := cat.Fingerprint()
	if err != nil {
		return CatalogRecord{}, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := r.meta[id]; ok {
		return rec, false, nil
	}
	procs := make([]string, 0, len(cat.Procs))
	for _, p := range cat.Procs {
		procs = append(procs, p.Name)
	}
	sort.Strings(procs)
	rec := CatalogRecord{ID: id, Name: name, Procs: procs, Globals: len(cat.Globals), Bytes: len(raw), Uploaded: time.Now().UTC()}
	r.cats[id] = cat
	r.raws[id] = append([]byte(nil), raw...)
	r.meta[id] = rec
	return rec, true, nil
}

// resolveKnown maps catalog ids to the decoded catalogs this registry
// holds, returning the ids it does not. The caller decides what a miss
// means (an error single-node, a peer fetch in cluster mode). The
// decoded catalogs are shared by pointer — they are immutable after
// upload — so a batch of compiles resolves once and every unit reuses
// the same decoded tables.
func (r *catalogRegistry) resolveKnown(ids []string) (cats []*inline.Catalog, missing []string) {
	if len(ids) == 0 {
		return nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	cats = make([]*inline.Catalog, 0, len(ids))
	for _, id := range ids {
		if c, ok := r.cats[id]; ok {
			cats = append(cats, c)
		} else {
			missing = append(missing, id)
		}
	}
	return cats, missing
}

// raw returns the serialized bytes of a registered catalog.
func (r *catalogRegistry) raw(id string) ([]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.raws[id]
	return b, ok
}

func (r *catalogRegistry) list() []CatalogRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CatalogRecord, 0, len(r.meta))
	for _, rec := range r.meta {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *catalogRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.cats)
}

// CatalogUploadResponse is the POST /catalogs body.
type CatalogUploadResponse struct {
	Catalog CatalogRecord `json:"catalog"`
	Created bool          `json:"created"`
}

// CatalogListResponse is the GET /catalogs body.
type CatalogListResponse struct {
	Catalogs []CatalogRecord `json:"catalogs"`
	Count    int             `json:"count"`
}

// handleCatalogs serves POST (upload one serialized catalog, body as
// produced by titancc -emit-catalog) and GET (list the registry).
func (s *Server) handleCatalogs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading catalog body: %w", err))
			return
		}
		cat, err := inline.ReadCatalog(bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		rec, created, err := s.registry.add(cat, r.URL.Query().Get("name"), body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
			// Hand the catalog to its ring owner so any node can resolve
			// it in one hop, wherever the client happened to upload it.
			s.pushCatalogToOwner(rec.ID, body)
		}
		writeJSON(w, status, CatalogUploadResponse{Catalog: rec, Created: created})
	case http.MethodGet:
		recs := s.registry.list()
		writeJSON(w, http.StatusOK, CatalogListResponse{Catalogs: recs, Count: len(recs)})
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
