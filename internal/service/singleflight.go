package service

import "sync"

// flightGroup deduplicates concurrent identical compiles: the first
// request for a key becomes the leader and runs the work; every request
// for the same key that arrives while it runs joins the same flight and
// shares the result. NeuroVectorizer-style workloads fire bursts of
// byte-identical requests, so without this every burst would compile the
// same unit once per connection.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation. blob/err are written once,
// before done is closed; waiters read them only after <-done.
type flight struct {
	done chan struct{}
	blob []byte
	err  error
}

// do joins or starts the flight for key. The caller that starts it (the
// returned leader flag) has fn run in a dedicated goroutine registered
// on wg — the daemon's drain path waits on wg, so an in-flight compile
// whose requester timed out still completes and lands in the cache
// before shutdown.
func (g *flightGroup) do(key string, wg *sync.WaitGroup, fn func() ([]byte, error)) (*flight, bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = map[string]*flight{}
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	wg.Add(1)
	go func() {
		defer wg.Done()
		f.blob, f.err = fn()
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
	}()
	return f, true
}
