package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func blobOf(n int, fill byte) []byte { return bytes.Repeat([]byte{fill}, n) }

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), blobOf(30, byte(i)))
	}
	// 4×30 > 100: k0 (least recently used) must be gone, the rest present.
	if _, tier := c.Get("k0"); tier != TierNone {
		t.Error("k0 survived past the budget")
	}
	for i := 1; i < 4; i++ {
		if _, tier := c.Get(fmt.Sprintf("k%d", i)); tier != TierMemory {
			t.Errorf("k%d not in memory", i)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 90 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}

	// Touching k1 makes k2 the eviction victim for the next insert.
	c.Get("k1")
	c.Put("k4", blobOf(30, 4))
	if _, tier := c.Get("k2"); tier != TierNone {
		t.Error("k2 survived: LRU order not maintained by Get")
	}
	if _, tier := c.Get("k1"); tier != TierMemory {
		t.Error("recently used k1 was evicted")
	}
}

func TestCacheOversizedBlobSkipsMemory(t *testing.T) {
	c, err := NewCache(10, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("small", blobOf(8, 1))
	c.Put("huge", blobOf(1000, 2))
	if _, tier := c.Get("huge"); tier != TierNone {
		t.Error("over-budget blob entered memory")
	}
	if _, tier := c.Get("small"); tier != TierMemory {
		t.Error("over-budget blob evicted a fitting one")
	}
}

func TestCacheUnboundedBudget(t *testing.T) {
	c, err := NewCache(-1, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), blobOf(1000, byte(i)))
	}
	if st := c.Stats(); st.Entries != 50 || st.Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", st)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("abc123", []byte(`{"key":"abc123"}`))
	if _, err := os.Stat(filepath.Join(dir, "abc123.json")); err != nil {
		t.Fatalf("artifact not on disk: %v", err)
	}

	// A fresh cache over the same directory — the restart case — serves
	// the artifact from disk and promotes it to memory.
	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, tier := c2.Get("abc123")
	if tier != TierDisk || string(blob) != `{"key":"abc123"}` {
		t.Fatalf("warm restart: tier=%q blob=%q", tier, blob)
	}
	if _, tier := c2.Get("abc123"); tier != TierMemory {
		t.Error("disk hit was not promoted to memory")
	}
}

// TestServerWarmRestartFromDisk drives the restart path end to end: a
// second server over the same cache directory serves the first server's
// compile as a disk hit without running any pass.
func TestServerWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	req := CompileRequest{Source: daxpySrc, Options: fullOpts()}
	first, code := postCompile(t, ts1, req)
	if code != 200 || first.Cached {
		t.Fatalf("first: %d cached=%v", code, first.Cached)
	}

	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	out, code := postCompile(t, ts2, req)
	if code != 200 {
		t.Fatalf("restart compile: %d", code)
	}
	if !out.Cached || out.CacheTier != TierDisk {
		t.Fatalf("restart not served from disk: cached=%v tier=%q", out.Cached, out.CacheTier)
	}
	if out.IL != first.IL || out.Asm != first.Asm {
		t.Error("disk artifact differs from the original")
	}
	m := getMetrics(t, ts2)
	if m.Compiles.DiskHits != 1 || len(m.Passes) != 0 {
		t.Errorf("restart server ran a pass for a disk hit: %+v passes=%v", m.Compiles, m.Passes)
	}
}
