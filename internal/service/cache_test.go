package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func blobOf(n int, fill byte) []byte { return bytes.Repeat([]byte{fill}, n) }

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), blobOf(30, byte(i)))
	}
	// 4×30 > 100: k0 (least recently used) must be gone, the rest present.
	if _, tier := c.Get("k0"); tier != TierNone {
		t.Error("k0 survived past the budget")
	}
	for i := 1; i < 4; i++ {
		if _, tier := c.Get(fmt.Sprintf("k%d", i)); tier != TierMemory {
			t.Errorf("k%d not in memory", i)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 90 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}

	// Touching k1 makes k2 the eviction victim for the next insert.
	c.Get("k1")
	c.Put("k4", blobOf(30, 4))
	if _, tier := c.Get("k2"); tier != TierNone {
		t.Error("k2 survived: LRU order not maintained by Get")
	}
	if _, tier := c.Get("k1"); tier != TierMemory {
		t.Error("recently used k1 was evicted")
	}
}

func TestCacheOversizedBlobSkipsMemory(t *testing.T) {
	c, err := NewCache(10, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("small", blobOf(8, 1))
	c.Put("huge", blobOf(1000, 2))
	if _, tier := c.Get("huge"); tier != TierNone {
		t.Error("over-budget blob entered memory")
	}
	if _, tier := c.Get("small"); tier != TierMemory {
		t.Error("over-budget blob evicted a fitting one")
	}
}

func TestCacheUnboundedBudget(t *testing.T) {
	c, err := NewCache(-1, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), blobOf(1000, byte(i)))
	}
	if st := c.Stats(); st.Entries != 50 || st.Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", st)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("abc123", []byte(`{"key":"abc123"}`))
	if _, err := os.Stat(filepath.Join(dir, "abc123.json")); err != nil {
		t.Fatalf("artifact not on disk: %v", err)
	}

	// A fresh cache over the same directory — the restart case — serves
	// the artifact from disk and promotes it to memory.
	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, tier := c2.Get("abc123")
	if tier != TierDisk || string(blob) != `{"key":"abc123"}` {
		t.Fatalf("warm restart: tier=%q blob=%q", tier, blob)
	}
	if _, tier := c2.Get("abc123"); tier != TierMemory {
		t.Error("disk hit was not promoted to memory")
	}
}

// TestServerWarmRestartFromDisk drives the restart path end to end: a
// second server over the same cache directory serves the first server's
// compile as a disk hit without running any pass.
func TestServerWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	req := CompileRequest{Source: daxpySrc, Options: fullOpts()}
	first, code := postCompile(t, ts1, req)
	if code != 200 || first.Cached {
		t.Fatalf("first: %d cached=%v", code, first.Cached)
	}

	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	out, code := postCompile(t, ts2, req)
	if code != 200 {
		t.Fatalf("restart compile: %d", code)
	}
	if !out.Cached || out.CacheTier != TierDisk {
		t.Fatalf("restart not served from disk: cached=%v tier=%q", out.Cached, out.CacheTier)
	}
	if out.IL != first.IL || out.Asm != first.Asm {
		t.Error("disk artifact differs from the original")
	}
	m := getMetrics(t, ts2)
	if m.Compiles.DiskHits != 1 || len(m.Passes) != 0 {
		t.Errorf("restart server ran a pass for a disk hit: %+v passes=%v", m.Compiles, m.Passes)
	}
}

// TestCacheDiskCorruptionDropped flips one byte of an on-disk artifact
// and asserts the cache refuses to serve it: content verification
// fails, the entry is deleted, and the corruption is counted — the
// caller sees a plain miss and recompiles.
func TestCacheDiskCorruptionDropped(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"key":"k1","asm":"ret"}`)
	c.Put("k1", blob)

	path := filepath.Join(dir, "k1.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read disk entry: %v", err)
	}
	// Flip a byte inside the artifact body (past the digest header).
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the directory (so memory cannot answer) must
	// report a miss, not the corrupt bytes.
	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, tier := c2.Get("k1"); tier != TierNone {
		t.Fatalf("corrupt entry served: tier=%q blob=%q", tier, got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not deleted from disk")
	}
	if st := c2.Stats(); st.CorruptDrops != 1 {
		t.Errorf("corrupt_drops = %d, want 1", st.CorruptDrops)
	}
	// The miss is permanent (file gone), so a re-Put repairs the entry.
	c2.Put("k1", blob)
	if got, tier := c2.Get("k1"); tier != TierMemory || !bytes.Equal(got, blob) {
		t.Errorf("after repair: tier=%q", tier)
	}
}

// TestCacheMissingHeaderDropped: a pre-header-format file (or a stray
// file an operator dropped in the cache dir) is treated as corrupt.
func TestCacheMissingHeaderDropped(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k2.json"), []byte(`{"key":"k2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, tier := c.Get("k2"); tier != TierNone {
		t.Fatalf("headerless entry served: tier=%q", tier)
	}
	if st := c.Stats(); st.CorruptDrops != 1 {
		t.Errorf("corrupt_drops = %d, want 1", st.CorruptDrops)
	}
}

// TestCacheConcurrentEvictionIntegrity hammers a tiny cache from many
// goroutines — puts, gets, disk promotions, and evictions interleaving
// freely — and asserts the core artifact-integrity invariant: a Get
// either misses or returns the complete, correct blob for its key.
// Run under -race this also proves the tier bookkeeping is data-race
// free while entries are being evicted mid-read.
func TestCacheConcurrentEvictionIntegrity(t *testing.T) {
	dir := t.TempDir()
	// Budget fits ~3 of the 10 working-set entries, so eviction churns
	// constantly while disk keeps every entry recoverable.
	c, err := NewCache(3*512, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := func(i int) []byte {
		b := bytes.Repeat([]byte{byte('a' + i)}, 512)
		b[0] = byte('0' + i) // make truncation at either end detectable
		b[len(b)-1] = byte('0' + i)
		return b
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 300; iter++ {
				i := (g + iter) % 10
				key := fmt.Sprintf("k%d", i)
				if iter%3 == 0 {
					c.Put(key, want(i))
					continue
				}
				blob, tier := c.Get(key)
				if tier == TierNone {
					continue // not written yet or evicted: a miss is fine
				}
				if !bytes.Equal(blob, want(i)) {
					select {
					case errs <- fmt.Sprintf("%s via %s: got %d bytes, first=%q last=%q",
						key, tier, len(blob), blob[:1], blob[len(blob)-1:]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("partial or wrong artifact served: %s", e)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("test never evicted; shrink the budget")
	}
}
