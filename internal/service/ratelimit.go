package service

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// rateLimiter is per-client admission fairness: one token bucket per
// client ID, refilled at rate tokens/sec up to burst. A single compile
// costs one token; a batch of N units costs N — so a client cannot
// launder a flood through the batch endpoint. Without this, admission
// is first-come-first-served and one greedy load generator can hold the
// whole queue while everyone else eats 503s; with it, the greedy client
// gets 429s naming exactly how long to back off and the queue stays
// available for the rest.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table; when it fills, buckets idle long
// enough to have fully refilled are dropped (they are indistinguishable
// from fresh ones, so dropping them is free).
const maxBuckets = 8192

func newRateLimiter(rate, burst float64) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, buckets: map[string]*bucket{}, now: time.Now}
}

// take spends n tokens from client's bucket. When the bucket is short,
// it reports how long the client should wait before the n tokens will
// have accumulated — the Retry-After value.
func (l *rateLimiter) take(client string, n float64) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.sweep(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	if n > l.burst {
		// The request can never succeed at this burst size; tell the
		// client the time to fill the whole bucket so it splits or slows.
		need = l.burst
	}
	return false, time.Duration(need / l.rate * float64(time.Second))
}

// sweep drops buckets that have been idle long enough to refill
// completely. Called with the lock held.
func (l *rateLimiter) sweep(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for id, b := range l.buckets {
		if now.Sub(b.last) > full {
			delete(l.buckets, id)
		}
	}
}

// clientID identifies the caller for fairness accounting: an explicit
// X-Client-ID header when the client sets one, else the peer host (not
// host:port — every connection from one machine shares a bucket).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit charges cost tokens to the request's client. On refusal it
// writes the full 429 — Retry-After header plus a JSON body naming the
// client and the wait — and reports false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cost int) bool {
	if s.limiter == nil {
		return true
	}
	client := clientID(r)
	ok, wait := s.limiter.take(client, float64(cost))
	if ok {
		return true
	}
	s.metrics.rateLimited()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":          fmt.Sprintf("client %q is over its admission rate; retry after %dms", client, wait.Milliseconds()),
		"client":         client,
		"retry_after_ms": wait.Milliseconds(),
	})
	return false
}

// retryAfterSeconds rounds a wait up to whole seconds, minimum 1 (a
// Retry-After of 0 reads as "retry immediately", which defeats it).
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
