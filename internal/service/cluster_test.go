package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
)

// testCluster is an in-process N-node cluster: each node is a full
// Server behind its own httptest listener, with a cluster view of every
// listener URL. Handlers are swapped in after construction because the
// peer URLs must exist before service.New can build the ring.
type testCluster struct {
	nodes   []*Server
	servers []*httptest.Server
	clus    []*cluster.Cluster
}

func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		nodes:   make([]*Server, n),
		servers: make([]*httptest.Server, n),
		clus:    make([]*cluster.Cluster, n),
	}
	handlers := make([]atomic.Value, n)
	urls := make([]string, n)
	for i := range tc.servers {
		i := i
		tc.servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(tc.servers[i].Close)
		urls[i] = tc.servers[i].URL
	}
	for i := range tc.nodes {
		clu, err := cluster.New(cluster.Config{
			Self:          urls[i],
			Peers:         urls,
			FetchTimeout:  2 * time.Second,
			ProbeInterval: -1, // tests drive ProbeOnce by hand
		})
		if err != nil {
			t.Fatalf("cluster.New node %d: %v", i, err)
		}
		t.Cleanup(clu.Close)
		cfg := Config{Cluster: clu}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New node %d: %v", i, err)
		}
		handlers[i].Store(s.Handler())
		tc.nodes[i] = s
		tc.clus[i] = clu
	}
	for _, clu := range tc.clus {
		clu.ProbeOnce()
	}
	return tc
}

// ownerIndex returns which node the ring says owns key. Every node
// computes the same answer; we ask node 0.
func (tc *testCluster) ownerIndex(t *testing.T, key string) int {
	t.Helper()
	owner := tc.clus[0].Owner(key)
	if owner == nil {
		return 0
	}
	for i, ts := range tc.servers {
		if ts.URL == owner.URL() {
			return i
		}
	}
	t.Fatalf("owner of %s is not a cluster member", key)
	return -1
}

// waitForArtifact polls a node's local cache until the write-through
// push for key lands.
func waitForArtifact(t *testing.T, s *Server, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, tier := s.cache.Get(key); tier != TierNone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("artifact %s never reached the node", key)
}

// keyFor computes the cache key a request will get, exactly as the
// serving path does.
func keyFor(t *testing.T, req CompileRequest) string {
	t.Helper()
	if err := validateUnit(&req); err != nil {
		t.Fatalf("validate: %v", err)
	}
	key, err := requestKey(req, req.Options.driverOptions(nil))
	if err != nil {
		t.Fatalf("requestKey: %v", err)
	}
	return key
}

// TestClusterRemoteCacheHit is the tentpole's core promise: a source
// compiled anywhere in the cluster is a remote cache hit everywhere
// else, served by the ring owner without recompiling.
func TestClusterRemoteCacheHit(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	req := CompileRequest{Source: daxpySrc, Options: fullOpts()}

	first, code := postCompile(t, tc.servers[0], req)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first compile: %d cached=%v", code, first.Cached)
	}

	// The compiling node pushes the artifact to its ring owner
	// asynchronously; wait for it to land before querying elsewhere.
	ownerIdx := tc.ownerIndex(t, first.Key)
	waitForArtifact(t, tc.nodes[ownerIdx], first.Key)

	// Query a node that neither compiled nor owns the artifact: its
	// only way to answer without compiling is the remote tier.
	querier := 1
	if ownerIdx != 0 {
		querier = 3 - ownerIdx // the node that is neither 0 nor the owner
	}
	second, code := postCompile(t, tc.servers[querier], req)
	if code != http.StatusOK {
		t.Fatalf("second compile: %d", code)
	}
	if !second.Cached || second.CacheTier != TierRemote {
		t.Fatalf("cross-node request: cached=%v tier=%q, want remote hit", second.Cached, second.CacheTier)
	}
	if second.Key != first.Key {
		t.Errorf("keys differ across nodes: %s vs %s", first.Key, second.Key)
	}

	m := getMetrics(t, tc.servers[querier])
	if m.Compiles.RemoteHits != 1 {
		t.Errorf("remote_hits = %d, want 1", m.Compiles.RemoteHits)
	}
	if m.Cluster == nil || len(m.Cluster.Nodes) != 3 || !m.Cluster.Bootstrapped {
		t.Errorf("cluster snapshot: %+v", m.Cluster)
	}

	// The remote hit was promoted into local memory: the node answers
	// the next identical request itself.
	third, code := postCompile(t, tc.servers[querier], req)
	if code != http.StatusOK || third.CacheTier != TierMemory {
		t.Errorf("after promotion: %d tier=%q, want memory hit", code, third.CacheTier)
	}
}

// TestClusterPeerDeathDegradesToLocal kills the node that owns a key
// and asserts the rest of the cluster still answers: the remote lookup
// fails, the requester compiles locally, no request errors.
func TestClusterPeerDeathDegradesToLocal(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	// Find a source whose artifact is owned by a node other than 0, so
	// node 0's request must cross the wire.
	var req CompileRequest
	var ownerIdx int
	for i := 0; ; i++ {
		req = CompileRequest{Source: fmt.Sprintf("int main(void) { return %d; }", i)}
		if ownerIdx = tc.ownerIndex(t, keyFor(t, req)); ownerIdx != 0 {
			break
		}
	}

	tc.servers[ownerIdx].Close()

	out, code := postCompile(t, tc.servers[0], req)
	if code != http.StatusOK {
		t.Fatalf("compile with dead owner: %d", code)
	}
	if out.Cached {
		t.Errorf("artifact claims cached with the owner dead: tier=%q", out.CacheTier)
	}

	// The failure is visible in the peer counters, not in the response.
	m := getMetrics(t, tc.servers[0])
	var dead *cluster.PeerStatus
	for i := range m.Cluster.Peers {
		if m.Cluster.Peers[i].URL == tc.servers[ownerIdx].URL {
			dead = &m.Cluster.Peers[i]
		}
	}
	if dead == nil {
		t.Fatal("dead peer missing from snapshot")
	}
	if dead.FetchErrors == 0 && dead.FetchTimeouts == 0 && dead.BreakerDrops == 0 {
		t.Errorf("dead peer shows no failures: %+v", *dead)
	}

	// Repeat requests keep working (served from node 0's own cache now).
	again, code := postCompile(t, tc.servers[0], req)
	if code != http.StatusOK || !again.Cached {
		t.Errorf("repeat with dead owner: %d cached=%v", code, again.Cached)
	}
}

// TestClusterCatalogResolution uploads a §7 catalog to one node and
// compiles against its id on another: the second node fetches the
// catalog from its peers, verifies the fingerprint, and inlines.
func TestClusterCatalogResolution(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	var buf bytes.Buffer
	if err := driver.WriteCatalogFromSource(&buf, "float scale(float x, float a) { return x * a; }"); err != nil {
		t.Fatalf("build catalog: %v", err)
	}

	resp, err := http.Post(tc.servers[0].URL+"/catalogs?name=libscale", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("POST /catalogs: %v", err)
	}
	var up CatalogUploadResponse
	json.NewDecoder(resp.Body).Decode(&up)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %+v", resp.StatusCode, up)
	}

	src := `
float scale(float x, float a);
int main(void) {
	float r;
	r = scale(3.0f, 2.0f);
	if (r == 6.0f) return 0;
	return 1;
}
`
	// Node 2 has never seen this catalog; it resolves the id through
	// the cluster (from the owner, or node 0 which has the original).
	out, code := postCompile(t, tc.servers[2], CompileRequest{
		Source:     src,
		Options:    CompileOptions{Inline: true, Catalogs: []string{up.Catalog.ID}},
		Processors: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("compile with peer catalog: %d", code)
	}
	if out.Report.Inline.CallsExpanded == 0 {
		t.Error("peer-fetched catalog was not inlined")
	}
	if out.Run == nil || out.Run.ExitCode != 0 {
		t.Errorf("run: %+v", out.Run)
	}
}

// TestReadyzGatesOnBootstrap: a cluster node is not ready until its
// first probe round completes, and /healthz stays 200 throughout.
func TestReadyzGatesOnBootstrap(t *testing.T) {
	peer := httptest.NewServer(http.NotFoundHandler())
	defer peer.Close()
	clu, err := cluster.New(cluster.Config{
		Self:          "http://self.invalid:1",
		Peers:         []string{peer.URL},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	_, ts := newTestServer(t, Config{Cluster: clu})

	check := func(path string, want int, wantStatus string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		json.NewDecoder(resp.Body).Decode(&h)
		if resp.StatusCode != want || h.Status != wantStatus {
			t.Errorf("%s: %d %q, want %d %q", path, resp.StatusCode, h.Status, want, wantStatus)
		}
	}
	check("/readyz", http.StatusServiceUnavailable, "bootstrapping")
	check("/healthz", http.StatusOK, "ok")
	clu.ProbeOnce()
	check("/readyz", http.StatusOK, "ready")
}

// TestPeerTierEndpoints drives the owner-side storage API directly.
func TestPeerTierEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := ts.Client()
	key := keyFor(t, CompileRequest{Source: "int main(void) { return 7; }"})

	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Malformed keys never reach storage.
	if resp := do("GET", "/cache/not-a-key", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: %d", resp.StatusCode)
	}
	// A miss is 404, not an error.
	if resp := do("GET", "/cache/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("miss: %d", resp.StatusCode)
	}
	// A write-through must carry the artifact it claims: key mismatch
	// and undecodable blobs are rejected.
	other, _ := json.Marshal(CompileResponse{Key: "0000000000000000000000000000000000000000000000000000000000000000"})
	if resp := do("PUT", "/cache/"+key, other); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched PUT: %d", resp.StatusCode)
	}
	if resp := do("PUT", "/cache/"+key, []byte("not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage PUT: %d", resp.StatusCode)
	}
	// A valid write-through round-trips.
	blob, _ := json.Marshal(CompileResponse{Key: key, Asm: "ret"})
	if resp := do("PUT", "/cache/"+key, blob); resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid PUT: %d", resp.StatusCode)
	}
	resp := do("GET", "/cache/"+key, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache-Tier") != TierMemory {
		t.Errorf("GET after PUT: %d tier=%q", resp.StatusCode, resp.Header.Get("X-Cache-Tier"))
	}
	var got CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil || got.Key != key {
		t.Errorf("round-trip: %v %+v", err, got)
	}
	// Schedule plans: miss is 404, catalogs likewise.
	if resp := do("GET", "/schedules/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("plan miss: %d", resp.StatusCode)
	}
	// A plan write-through is validated before it can enter the cache: a
	// set whose schedule carries an unknown mask strategy (a corrupt or
	// newer-versioned peer) is rejected with 400, and the bad plan is not
	// served back.
	badPlan := []byte(`{"schedules":[{"loop":{"proc":"clip","line":7,"col":2},` +
		`"schedule":{"vl":32,"unroll":1,"mask_strategy":"diagonal"}}],"decisions":null,` +
		`"default_cycles":0,"tuned_cycles":0,"measured":0}`)
	if resp := do("PUT", "/schedules/"+key, badPlan); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mask strategy PUT: %d, want 400", resp.StatusCode)
	}
	if resp := do("GET", "/schedules/"+key, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("rejected plan was cached: GET %d", resp.StatusCode)
	}
	// The same plan with a known strategy is accepted and round-trips.
	goodPlan := bytes.Replace(badPlan, []byte("diagonal"), []byte("branchy-serial"), 1)
	if resp := do("PUT", "/schedules/"+key, goodPlan); resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid plan PUT: %d", resp.StatusCode)
	}
	if resp := do("GET", "/schedules/"+key, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("plan after PUT: %d", resp.StatusCode)
	}
	if resp := do("GET", "/catalogs/deadbeef", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("catalog miss: %d", resp.StatusCode)
	}
}
