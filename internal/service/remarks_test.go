package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/diag"
)

// TestCompileCarriesRemarks: the /compile artifact includes the pipeline's
// structured diagnostics, cache hits replay them, and /metrics counts each
// remark code once per real compile (not per hit).
func TestCompileCarriesRemarks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := CompileRequest{Source: daxpySrc, Options: fullOpts()}

	first, code := postCompile(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Report == nil || len(first.Report.Diags) == 0 {
		t.Fatal("compile artifact carries no diagnostics")
	}
	var sawVect bool
	for _, d := range first.Report.Diags {
		if d.Pos.Line == 0 {
			t.Errorf("diagnostic %s has zero position: %s", d.Code, d)
		}
		if d.Code == diag.VectVectorized {
			sawVect = true
		}
	}
	if !sawVect {
		t.Error("daxpy artifact lacks a vect-vectorized remark")
	}

	m1 := getMetrics(t, ts)
	if len(m1.Remarks) == 0 || m1.Remarks[string(diag.VectVectorized)] == 0 {
		t.Fatalf("metrics remarks after miss: %v", m1.Remarks)
	}

	second, code := postCompile(t, ts, req)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second: status %d cached %v", code, second.Cached)
	}
	if len(second.Report.Diags) != len(first.Report.Diags) {
		t.Errorf("cache hit replayed %d diags, want %d",
			len(second.Report.Diags), len(first.Report.Diags))
	}
	m2 := getMetrics(t, ts)
	for code, n := range m2.Remarks {
		if n != m1.Remarks[code] {
			t.Errorf("remark %s counted on a cache hit: %d -> %d", code, m1.Remarks[code], n)
		}
	}
}

// TestCompileErrorCarriesDiag: a front-end failure comes back 422 with the
// positioned structured form alongside the message.
func TestCompileErrorCarriesDiag(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(CompileRequest{Source: "int main(void) { return ; }"})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var out struct {
		Error string          `json:"error"`
		Diag  diag.Diagnostic `json:"diag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" {
		t.Error("422 body lacks error message")
	}
	if out.Diag.Severity != diag.SevError || out.Diag.Pos.Line == 0 {
		t.Errorf("422 body lacks positioned diag: %+v", out.Diag)
	}
	if out.Diag.Code == "" {
		t.Error("422 diag lacks a stable code")
	}
}
