package service

import (
	"net/http"
	"testing"

	"repro/internal/il"
)

// TestCompileReleasesArenas: the compile path must free the compile's IL
// arenas once the artifact blob is encoded, and /metrics must export the
// process-wide gauge. After the request completes, arena_bytes_live is
// back at the pre-request baseline — a compile's arenas do not outlive
// its artifact.
func TestCompileReleasesArenas(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := il.ArenaBytesLive()

	out, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: fullOpts(), Processors: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.IL == "" || out.Asm == "" || out.Run == nil {
		t.Fatalf("incomplete artifact: il=%d asm=%d run=%v", len(out.IL), len(out.Asm), out.Run != nil)
	}

	m := getMetrics(t, ts)
	if m.ArenaBytesLive != before {
		t.Errorf("arena_bytes_live = %d after compile, want baseline %d (leaked %d bytes)",
			m.ArenaBytesLive, before, m.ArenaBytesLive-before)
	}

	// A failing compile (front-end error) allocates no procedures and must
	// not move the gauge either.
	if _, code := postCompile(t, ts, CompileRequest{Source: "int main(void) { return ; }", Options: fullOpts()}); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad source: status %d", code)
	}
	if got := il.ArenaBytesLive(); got != before {
		t.Errorf("arena_bytes_live = %d after failed compile, want %d", got, before)
	}
}
