package service

import (
	"sync"

	"repro/internal/tune"
)

// scheduleCache holds autotuned schedule sets keyed by the compile's base
// content fingerprint (driver.CacheKey over source + canonical options,
// deliberately excluding the run spec). Tuning is by far the most
// expensive thing the daemon does — dozens of candidate compiles, each
// simulated — so its result is cached one level above the artifact
// cache: a second tuned request for the same unit at a *different*
// processor count misses the artifact cache but reuses the tuned plan
// without re-measuring.
//
// Entries are small (a decision log plus a handful of schedules), so the
// cache is unbounded; it lives and dies with the process.
type scheduleCache struct {
	mu sync.Mutex
	m  map[string]*tune.Result
}

func newScheduleCache() *scheduleCache {
	return &scheduleCache{m: map[string]*tune.Result{}}
}

func (c *scheduleCache) get(key string) (*tune.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *scheduleCache) put(key string, r *tune.Result) {
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
}

func (c *scheduleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
