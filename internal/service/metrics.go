package service

import (
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/il"
	"repro/internal/pass"
)

// metrics aggregates what the daemon has done since start: request
// counters, per-pass cumulative wall time folded from every compiled
// request's pass.Report, and a latency summary. The /metrics handler
// serves a consistent snapshot.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	compiles CompileCounters
	tuneCtrs TuneCounters
	batches  BatchCounters
	maskCtrs MaskCounters
	passes   map[string]*PassTotals
	analysis analysis.Stats
	remarks  map[string]int64
	latency  LatencySummary
}

// CompileCounters counts request outcomes. CacheHits is the sum of the
// per-tier hit counters (memory, disk, inflight, remote); Total =
// CacheHits + CacheMisses + Errors + Rejected + RateLimited (timeouts
// are not an outcome — the compile a timed-out request started still
// completes and lands in Misses).
type CompileCounters struct {
	Total        int64 `json:"total"`
	CacheHits    int64 `json:"cache_hits"`
	MemoryHits   int64 `json:"memory_hits"`
	DiskHits     int64 `json:"disk_hits"`
	InflightHits int64 `json:"inflight_hits"` // joined an identical running compile
	RemoteHits   int64 `json:"remote_hits"`   // artifact fetched from the owning peer
	CacheMisses  int64 `json:"cache_misses"`
	Errors       int64 `json:"errors"`
	Rejected     int64 `json:"rejected"`     // queue full
	RateLimited  int64 `json:"rate_limited"` // per-client token bucket said no
	Timeouts     int64 `json:"timeouts"`
	InFlight     int64 `json:"in_flight"` // gauge: units inside the compile path now
}

// BatchCounters tracks POST /compile/batch: how many batch requests
// arrived and how many translation units they carried (each unit also
// lands in CompileCounters like a single request would).
type BatchCounters struct {
	Batches int64 `json:"batches"`
	Units   int64 `json:"units"`
}

// TuneCounters tracks the autotuner's schedule cache. A tuned request
// either reuses a cached plan (ScheduleCacheHits), pulls one the owning
// peer already paid for (PlanRemoteHits), or pays for a fresh search
// (each completed search becomes one Tunes). Entries is the live cache
// size.
type TuneCounters struct {
	Tunes               int64 `json:"tunes"`
	ScheduleCacheHits   int64 `json:"schedule_cache_hits"`
	ScheduleCacheMisses int64 `json:"schedule_cache_misses"`
	PlanRemoteHits      int64 `json:"plan_remote_hits"`
	Entries             int   `json:"entries"`
}

// MaskCounters aggregates masked vector execution across every simulated
// run the daemon performed: Runs counts runs that retired at least one
// masked op, and LanesActive/LanesTotal give the fleet-wide mask-lane
// utilization (active/total; masked ops charge dense-timing cycles, so
// a low ratio flags workloads the branchy-serial strategy might serve
// better).
type MaskCounters struct {
	Runs        int64 `json:"runs"`
	Ops         int64 `json:"ops"`
	LanesActive int64 `json:"lanes_active"`
	LanesTotal  int64 `json:"lanes_total"`
}

// PassTotals is one pass's cumulative cost across every compile served.
type PassTotals struct {
	Runs    int64 `json:"runs"`
	TotalNS int64 `json:"total_ns"`
}

// LatencySummary summarizes end-to-end /compile latency (all outcomes
// that produced a response body, hits and misses alike).
type LatencySummary struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	MeanNS  int64 `json:"mean_ns"`
}

// MetricsResponse is the GET /metrics body.
type MetricsResponse struct {
	UptimeNS int64                 `json:"uptime_ns"`
	Compiles CompileCounters       `json:"compiles"`
	Cache    CacheStats            `json:"cache"`
	Catalogs int                   `json:"catalogs"`
	Passes   map[string]PassTotals `json:"passes"`
	// Analysis is the cumulative in-compile analysis-cache tally (use-def,
	// liveness, dependence graphs) summed over every real compile's report.
	Analysis analysis.Stats `json:"analysis"`
	// Remarks counts diagnostics by code across every real compile served
	// (cache hits replay the remarks stored with the artifact but do not
	// re-count them, mirroring the per-pass totals). The fleet-level view
	// of what the optimizer is deciding: how many loops vectorized, which
	// codes dominate the rejections.
	Remarks map[string]int64 `json:"remarks,omitempty"`
	// Tune is the autotuner's schedule-cache tally: a repeat tuned
	// request shows up as a schedule_cache_hit with tunes flat.
	Tune TuneCounters `json:"tune"`
	// Mask is the masked-execution tally over every simulated run.
	Mask MaskCounters `json:"mask"`
	// Batch tracks POST /compile/batch traffic.
	Batch   BatchCounters  `json:"batch"`
	Latency LatencySummary `json:"latency"`
	// Cluster is the node's ring and per-peer health/counter view,
	// omitted when the daemon runs single-node.
	Cluster *cluster.Snapshot `json:"cluster,omitempty"`
	// ArenaBytesLive is the process-wide gauge of IL arena bytes not yet
	// released. The compile path frees each compile's arenas as soon as
	// its artifact blob is encoded, so a value that tracks the number of
	// in-flight compiles is healthy and a monotonic climb is a leak.
	ArenaBytesLive int64 `json:"arena_bytes_live"`
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), passes: map[string]*PassTotals{}, remarks: map[string]int64{}}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.compiles.InFlight++
	m.mu.Unlock()
}

func (m *metrics) end() {
	m.mu.Lock()
	m.compiles.InFlight--
	m.mu.Unlock()
}

// hit records a request served without compiling, by tier (TierMemory,
// TierDisk, TierInflight, or TierRemote).
func (m *metrics) hit(tier string) {
	m.mu.Lock()
	m.compiles.Total++
	m.compiles.CacheHits++
	switch tier {
	case TierMemory:
		m.compiles.MemoryHits++
	case TierDisk:
		m.compiles.DiskHits++
	case TierInflight:
		m.compiles.InflightHits++
	case TierRemote:
		m.compiles.RemoteHits++
	}
	m.mu.Unlock()
}

// miss records one real compile, folding its pass report into the
// cumulative per-pass table. This is the only place pass time enters
// /metrics, which is what lets tests assert "a cache hit ran no pass":
// the per-pass totals are flat across a hit.
func (m *metrics) miss(rep *pass.Report) {
	m.mu.Lock()
	m.compiles.Total++
	m.compiles.CacheMisses++
	if rep != nil {
		for _, p := range rep.Passes {
			t := m.passes[p.Name]
			if t == nil {
				t = &PassTotals{}
				m.passes[p.Name] = t
			}
			t.Runs++
			t.TotalNS += p.Duration.Nanoseconds()
		}
		m.analysis.Add(rep.Analysis)
		for _, d := range rep.Diags {
			m.remarks[string(d.Code)]++
		}
	}
	m.mu.Unlock()
}

func (m *metrics) schedHit() {
	m.mu.Lock()
	m.tuneCtrs.ScheduleCacheHits++
	m.mu.Unlock()
}

func (m *metrics) schedMiss() {
	m.mu.Lock()
	m.tuneCtrs.ScheduleCacheMisses++
	m.mu.Unlock()
}

func (m *metrics) schedRemoteHit() {
	m.mu.Lock()
	m.tuneCtrs.PlanRemoteHits++
	m.mu.Unlock()
}

func (m *metrics) tuned() {
	m.mu.Lock()
	m.tuneCtrs.Tunes++
	m.mu.Unlock()
}

// maskRun folds one simulated run's masked-op tally into the fleet view
// (no-op for runs that retired no masked ops).
func (m *metrics) maskRun(ops, lanesActive, lanesTotal int64) {
	if ops == 0 {
		return
	}
	m.mu.Lock()
	m.maskCtrs.Runs++
	m.maskCtrs.Ops += ops
	m.maskCtrs.LanesActive += lanesActive
	m.maskCtrs.LanesTotal += lanesTotal
	m.mu.Unlock()
}

func (m *metrics) batch(units int) {
	m.mu.Lock()
	m.batches.Batches++
	m.batches.Units += int64(units)
	m.mu.Unlock()
}

func (m *metrics) rateLimited() {
	m.mu.Lock()
	m.compiles.Total++
	m.compiles.RateLimited++
	m.mu.Unlock()
}

func (m *metrics) failed() {
	m.mu.Lock()
	m.compiles.Total++
	m.compiles.Errors++
	m.mu.Unlock()
}

func (m *metrics) rejected() {
	m.mu.Lock()
	m.compiles.Total++
	m.compiles.Rejected++
	m.mu.Unlock()
}

func (m *metrics) timeout() {
	m.mu.Lock()
	m.compiles.Timeouts++
	m.mu.Unlock()
}

// meanLatency is the observed mean end-to-end latency (0 before any
// response); the queue-full 503 uses it to estimate Retry-After.
func (m *metrics) meanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latency.Count == 0 {
		return 0
	}
	return time.Duration(m.latency.TotalNS / m.latency.Count)
}

func (m *metrics) observe(d time.Duration) {
	ns := d.Nanoseconds()
	m.mu.Lock()
	l := &m.latency
	l.Count++
	l.TotalNS += ns
	if l.MinNS == 0 || ns < l.MinNS {
		l.MinNS = ns
	}
	if ns > l.MaxNS {
		l.MaxNS = ns
	}
	m.mu.Unlock()
}

func (m *metrics) snapshot(cache CacheStats, catalogs, schedEntries int, clu *cluster.Snapshot) MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	passes := make(map[string]PassTotals, len(m.passes))
	for name, t := range m.passes {
		passes[name] = *t
	}
	var remarks map[string]int64
	if len(m.remarks) > 0 {
		remarks = make(map[string]int64, len(m.remarks))
		for code, n := range m.remarks {
			remarks[code] = n
		}
	}
	lat := m.latency
	if lat.Count > 0 {
		lat.MeanNS = lat.TotalNS / lat.Count
	}
	tc := m.tuneCtrs
	tc.Entries = schedEntries
	return MetricsResponse{
		UptimeNS:       time.Since(m.start).Nanoseconds(),
		Compiles:       m.compiles,
		Cache:          cache,
		Catalogs:       catalogs,
		Passes:         passes,
		Analysis:       m.analysis,
		Remarks:        remarks,
		Tune:           tc,
		Mask:           m.maskCtrs,
		Batch:          m.batches,
		Latency:        lat,
		Cluster:        clu,
		ArenaBytesLive: il.ArenaBytesLive(),
	}
}
