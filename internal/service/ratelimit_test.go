package service

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterRefill drives the token bucket with a fake clock:
// burst is spendable immediately, then tokens return at the configured
// rate, and the reported wait is exactly the time until enough
// accumulate.
func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(2, 4) // 2 tokens/sec, burst 4
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.take("c", 4); !ok {
		t.Fatal("full burst refused")
	}
	ok, wait := l.take("c", 1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait != 500*time.Millisecond {
		t.Errorf("wait = %v, want 500ms for 1 token at 2/sec", wait)
	}
	now = now.Add(time.Second) // +2 tokens
	if ok, _ := l.take("c", 2); !ok {
		t.Error("refilled tokens refused")
	}
	// A request larger than the burst can never succeed; the wait is the
	// full-bucket time so the client knows to split.
	_, wait = l.take("c", 10)
	if wait != 2*time.Second {
		t.Errorf("oversized wait = %v, want full-bucket 2s", wait)
	}
}

// TestRateLimiterSweep: when the client table fills, buckets idle long
// enough to have refilled completely are dropped.
func TestRateLimiterSweep(t *testing.T) {
	l := newRateLimiter(1, 1)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxBuckets; i++ {
		l.take(fmt.Sprintf("old%d", i), 1)
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("table size %d", len(l.buckets))
	}
	now = now.Add(time.Hour) // everyone is long refilled
	l.take("fresh", 1)
	if len(l.buckets) != 1 {
		t.Errorf("sweep left %d buckets, want 1", len(l.buckets))
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{{0, 1}, {10 * time.Millisecond, 1}, {time.Second, 1}, {1100 * time.Millisecond, 2}} {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
