package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/inline"
)

// BatchRequest is the POST /compile/batch body: a whole translation set
// — the paper's §7 unit of inline expansion — compiled in one
// round-trip. Catalogs, options, and the run spec apply to every unit;
// the catalog ids are resolved once and the decoded catalogs shared
// across all units, so a 50-file set pays one registry resolution (and
// at most one peer fetch per catalog) instead of 50.
type BatchRequest struct {
	Sources []string       `json:"sources"`
	Options CompileOptions `json:"options"`
	// Processors > 0 simulates every unit on that many processors.
	Processors int `json:"processors,omitempty"`
	// Entry names the simulation entry function (default main).
	Entry string `json:"entry,omitempty"`
}

// BatchUnitResult is one unit's outcome inside a batch. Status is the
// HTTP status the unit would have received standalone; Artifact is set
// on 200.
type BatchUnitResult struct {
	Index    int              `json:"index"`
	Status   int              `json:"status"`
	Error    string           `json:"error,omitempty"`
	Artifact *CompileResponse `json:"artifact,omitempty"`
}

// BatchResponse is the POST /compile/batch reply: per-unit results in
// input order plus the set-level tallies titanload aggregates.
type BatchResponse struct {
	Results    []BatchUnitResult `json:"results"`
	Units      int               `json:"units"`
	OK         int               `json:"ok"`
	Compiled   int               `json:"compiled"`    // fresh compiles (local misses)
	CacheHits  int               `json:"cache_hits"`  // memory/disk/inflight hits
	RemoteHits int               `json:"remote_hits"` // served by the owning peer
	Failed     int               `json:"failed"`
	ElapsedNS  int64             `json:"elapsed_ns"`
}

// handleBatch serves POST /compile/batch. Each unit takes the exact
// single-request path (cache tiers, remote peer, singleflight, queue)
// via serveUnit; the batch adds shared catalog decoding, one admission
// charge of len(sources) tokens, and a fan-out bounded by the worker
// count so one batch cannot occupy the whole admission queue.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading request body: %w", err))
		return
	}
	var breq BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(breq.Sources) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("sources must not be empty"))
		return
	}
	if len(breq.Sources) > s.cfg.MaxBatchUnits {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d units; the limit is %d", len(breq.Sources), s.cfg.MaxBatchUnits))
		return
	}
	// A batch is N compiles and is charged as N: fairness cannot be
	// bypassed by wrapping a flood in one request.
	if !s.admit(w, r, len(breq.Sources)) {
		return
	}
	// Resolve once, share everywhere: every unit compiles against the
	// same decoded catalog pointers.
	cats, err := s.resolveCatalogs(breq.Options.Catalogs)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.batch(len(breq.Sources))

	units := make([]CompileRequest, len(breq.Sources))
	for i, src := range breq.Sources {
		units[i] = CompileRequest{
			Source:     src,
			Options:    breq.Options,
			Processors: breq.Processors,
			Entry:      breq.Entry,
		}
		if err := validateUnit(&units[i]); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unit %d: %w", i, err))
			return
		}
	}

	resp := BatchResponse{Results: make([]BatchUnitResult, len(units)), Units: len(units)}
	var wg sync.WaitGroup
	// Bound in-batch concurrency at the worker count: enough to keep
	// every worker busy, few enough that the admission queue stays
	// available to other clients while the batch drains.
	sem := make(chan struct{}, s.cfg.Workers)
	for i := range units {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp.Results[i] = s.batchUnit(r, units[i], cats, i)
		}(i)
	}
	wg.Wait()

	for _, res := range resp.Results {
		switch {
		case res.Status != http.StatusOK:
			resp.Failed++
		case res.Artifact.CacheTier == TierRemote:
			resp.OK++
			resp.RemoteHits++
		case res.Artifact.Cached:
			resp.OK++
			resp.CacheHits++
		default:
			resp.OK++
			resp.Compiled++
		}
	}
	resp.ElapsedNS = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}

// batchUnit serves one unit of a batch and shapes the outcome.
func (s *Server) batchUnit(r *http.Request, req CompileRequest, cats []*inline.Catalog, index int) BatchUnitResult {
	unitStart := time.Now()
	out := s.serveUnit(r.Context(), req, req.Options.driverOptions(cats))
	res := BatchUnitResult{Index: index, Status: out.status}
	if out.err != nil {
		if res.Status == 0 {
			res.Status = http.StatusInternalServerError
		}
		res.Error = out.err.Error()
		return res
	}
	res.Status = http.StatusOK
	var art CompileResponse
	if err := json.Unmarshal(out.blob, &art); err != nil {
		res.Status = http.StatusInternalServerError
		res.Error = fmt.Sprintf("corrupt cached artifact: %v", err)
		return res
	}
	art.Cached = out.cached
	art.CacheTier = out.tier
	elapsed := time.Since(unitStart)
	art.ElapsedNS = elapsed.Nanoseconds()
	s.metrics.observe(elapsed)
	res.Artifact = &art
	return res
}
