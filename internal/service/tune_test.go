package service

import (
	"net/http"
	"testing"

	"repro/internal/diag"
)

func tuneOpts() CompileOptions {
	o := fullOpts()
	o.Tune = true
	return o
}

func schedSelected(out CompileResponse) []diag.Diagnostic {
	var ds []diag.Diagnostic
	for _, d := range out.Report.Diags {
		if d.Code == diag.SchedSelected {
			ds = append(ds, d)
		}
	}
	return ds
}

// TestCompileTuneScheduleCache is the tentpole's service-side acceptance
// check: the first tuned request pays for the schedule search; a second
// tuned request at a *different* processor count misses the artifact
// cache (distinct run spec) but reuses the tuned plan — the tune counter
// stays flat while the schedule-cache hit counter increments — and its
// artifact replays the same sched-selected remarks.
func TestCompileTuneScheduleCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	first, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: tuneOpts(), Processors: 1})
	if code != http.StatusOK {
		t.Fatalf("first tuned compile: status %d", code)
	}
	if first.Cached {
		t.Error("first tuned compile reported cached")
	}
	firstSched := schedSelected(first)
	if len(firstSched) == 0 {
		t.Fatal("tuned artifact carries no sched-selected remarks")
	}

	m := getMetrics(t, ts)
	if m.Tune.Tunes != 1 || m.Tune.ScheduleCacheMisses != 1 || m.Tune.ScheduleCacheHits != 0 {
		t.Fatalf("after first tuned compile: tune counters %+v", m.Tune)
	}
	if m.Tune.Entries != 1 {
		t.Fatalf("schedule cache entries = %d, want 1", m.Tune.Entries)
	}

	second, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: tuneOpts(), Processors: 2})
	if code != http.StatusOK {
		t.Fatalf("second tuned compile: status %d", code)
	}
	if second.Cached {
		t.Error("different processor count must miss the artifact cache")
	}
	if second.Key == first.Key {
		t.Error("different run specs produced the same artifact key")
	}

	m = getMetrics(t, ts)
	if m.Tune.Tunes != 1 {
		t.Errorf("second tuned request re-ran the tuner: tunes = %d, want 1", m.Tune.Tunes)
	}
	if m.Tune.ScheduleCacheHits != 1 {
		t.Errorf("schedule cache hits = %d, want 1", m.Tune.ScheduleCacheHits)
	}
	if m.Tune.Entries != 1 {
		t.Errorf("schedule cache entries = %d, want 1", m.Tune.Entries)
	}

	secondSched := schedSelected(second)
	if len(secondSched) != len(firstSched) {
		t.Fatalf("replayed remarks differ: %d vs %d sched-selected", len(secondSched), len(firstSched))
	}
	for i := range firstSched {
		if firstSched[i].Message != secondSched[i].Message {
			t.Errorf("remark %d drifted across the schedule cache:\n first %s\nsecond %s",
				i, firstSched[i].Message, secondSched[i].Message)
		}
	}
}

// A tuned and an untuned compile of the same unit are distinct artifacts.
func TestCompileTuneDistinctArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain, _ := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: fullOpts(), Processors: 1})
	tuned, _ := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: tuneOpts(), Processors: 1})
	if plain.Key == tuned.Key {
		t.Fatal("tune=true and tune=false share an artifact key")
	}
	if tuned.Run == nil || plain.Run == nil {
		t.Fatal("missing run results")
	}
	if tuned.Run.Cycles > plain.Run.Cycles {
		t.Errorf("tuned compile is slower: %d cycles vs %d default", tuned.Run.Cycles, plain.Run.Cycles)
	}
}

// Strip lengths outside the Titan register file are rejected up front.
func TestCompileVLValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, vl := range []int{-1, 4096} {
		opts := fullOpts()
		opts.VL = vl
		_, code, err := tryCompile(ts, CompileRequest{Source: daxpySrc, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusBadRequest {
			t.Errorf("vl=%d: status %d, want 400", vl, code)
		}
	}
	opts := fullOpts()
	opts.VL = 64
	if _, code := postCompile(t, ts, CompileRequest{Source: daxpySrc, Options: opts}); code != http.StatusOK {
		t.Errorf("vl=64: status %d, want 200", code)
	}
}
