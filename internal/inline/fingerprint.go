package inline

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns the SHA-256 hex digest of the catalog's serialized
// form. It is the catalog's content identity: the compile service keys
// its registry by it, and the driver folds it into compile cache keys so
// two compiles attaching byte-identical catalogs share a cache entry.
//
// The digest is computed over the canonical serialization (WriteCatalog),
// not over whatever bytes the catalog was read from, so a catalog
// round-tripped through ReadCatalog keeps its identity.
func (c *Catalog) Fingerprint() (string, error) {
	h := sha256.New()
	if err := WriteCatalog(h, c); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
