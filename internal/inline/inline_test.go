package inline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/vector"
)

func compile(t *testing.T, src string) *il.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestInlineSimpleCall(t *testing.T) {
	src := `
int twice(int x) { return x + x; }
int f(int a) { return twice(a) + 1; }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	if n := in.ExpandProc(fp); n != 1 {
		t.Fatalf("expanded %d\n%s", n, fp)
	}
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Call); ok {
			t.Errorf("call survived:\n%s", fp)
		}
		return true
	})
	// After the scalar pipeline, f(a) should reduce to return a+a+1.
	opt.Optimize(fp, opt.DefaultOptions())
	if len(fp.Body) != 1 {
		t.Errorf("not fully simplified:\n%s", fp)
	}
}

func TestInlineVoidFunction(t *testing.T) {
	src := `
int g;
void bump(void) { g = g + 1; }
void f(void) { bump(); bump(); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	if n := in.ExpandProc(fp); n != 2 {
		t.Fatalf("expanded %d\n%s", n, fp)
	}
	// Two increments of the global remain.
	writes := 0
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if dv := il.DefinedVar(s); dv != il.NoVar && fp.Vars[dv].Name == "g" {
			writes++
		}
		return true
	})
	if writes != 2 {
		t.Errorf("g writes: %d\n%s", writes, fp)
	}
}

func TestRecursionGuard(t *testing.T) {
	src := `
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int f(void) { return fact(5); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	in.ExpandProc(fp)
	// fact is expanded once into f, but the recursive call inside must
	// survive (no infinite expansion).
	calls := 0
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if c, ok := s.(*il.Call); ok && c.Callee == "fact" {
			calls++
		}
		return true
	})
	if calls == 0 {
		t.Errorf("recursive call disappeared:\n%s", fp)
	}
}

func TestMutualRecursionGuard(t *testing.T) {
	src := `
int odd(int);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int f(int x) { return even(x); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	in.ExpandProc(fp) // must terminate
	if il.CountStmts(fp.Body) > 2000 {
		t.Errorf("expansion blew up: %d stmts", il.CountStmts(fp.Body))
	}
}

func TestNestedInlining(t *testing.T) {
	// §7: inlined functions may inline other functions.
	src := `
int sq(int x) { return x * x; }
int quad(int x) { return sq(sq(x)); }
int f(int a) { return quad(a); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	in.ExpandProc(fp)
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Call); ok {
			t.Errorf("call survived nested expansion:\n%s", fp)
		}
		return true
	})
	opt.Optimize(fp, opt.DefaultOptions())
	out := fp.String()
	if !strings.Contains(out, "*") {
		t.Errorf("multiplications missing:\n%s", out)
	}
}

func TestPaperDaxpyGuardElimination(t *testing.T) {
	// §8: daxpy(x, y, 0.0, z) — after inlining and constant propagation
	// the guarded body is unreachable and the statement count shrinks.
	src := `
void daxpy(float *x, float y, float a, float z)
{
	if (a == 0.0)
		return;
	*x = y + a * z;
}
void caller(float *x, float y, float z)
{
	daxpy(x, y, 0.0, z);
}
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	cp := prog.Proc("caller")
	if n := in.ExpandProc(cp); n != 1 {
		t.Fatalf("expanded %d", n)
	}
	opt.Optimize(cp, opt.DefaultOptions())
	// The store must be gone and the body empty.
	il.WalkStmts(cp.Body, func(s il.Stmt) bool {
		if il.IsStore(s) {
			t.Errorf("guarded store survived:\n%s", cp)
		}
		return true
	})
	if il.CountStmts(cp.Body) > 1 {
		t.Errorf("dead code left: %d stmts\n%s", il.CountStmts(cp.Body), cp)
	}
}

func TestPaperSection9EndToEnd(t *testing.T) {
	// The paper's §9 program: inlining daxpy removes the aliasing problem;
	// the loop then vectorizes and parallelizes.
	src := `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
int main()
{
	float a[100], b[100], c[100];
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	mp := prog.Proc("main")
	if n := in.ExpandProc(mp); n != 1 {
		t.Fatalf("expanded %d", n)
	}
	opt.Optimize(mp, opt.DefaultOptions())
	st := vector.VectorizeProc(mp, vector.Config{Parallel: true})
	if st.ParallelLoops != 1 || st.VectorStmts != 1 {
		t.Fatalf("§9 shape not reached: %+v\n%s", st, mp)
	}
	// The paper's final form: do parallel vi = 0, 99, 32.
	var par *il.DoParallel
	il.WalkStmts(mp.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoParallel); ok {
			par = d
		}
		return true
	})
	if v, ok := il.IsIntConst(par.Limit); !ok || v != 99 {
		t.Errorf("limit %s", mp.ExprString(par.Limit))
	}
	if v, ok := il.IsIntConst(par.Step); !ok || v != 32 {
		t.Errorf("step %s", mp.ExprString(par.Step))
	}
}

func TestWithoutInliningStaysSerial(t *testing.T) {
	// The §9 counterfactual: without inlining, the call blocks everything.
	src := `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
int main()
{
	float a[100], b[100], c[100];
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
`
	prog := compile(t, src)
	mp := prog.Proc("main")
	opt.Optimize(mp, opt.DefaultOptions())
	st := vector.VectorizeProc(mp, vector.Config{Parallel: true})
	if st.VectorStmts != 0 {
		t.Fatalf("vectorized without inlining: %+v", st)
	}
	// And daxpy itself cannot vectorize due to aliasing.
	dp := prog.Proc("daxpy")
	opt.Optimize(dp, opt.DefaultOptions())
	st2 := vector.VectorizeProc(dp, vector.Config{})
	if st2.VectorStmts != 0 {
		t.Fatalf("aliased daxpy vectorized: %+v\n%s", st2, dp)
	}
	// Unless pointer parameters get Fortran semantics (§9's other route).
	dp2 := compile(t, src).Proc("daxpy")
	opt.Optimize(dp2, opt.DefaultOptions())
	st3 := vector.VectorizeProc(dp2, vector.Config{Depend: depend.Options{NoAlias: true}})
	if st3.VectorStmts != 1 {
		t.Fatalf("noalias daxpy not vectorized: %+v\n%s", st3, dp2)
	}
}

func TestStaticLocalSharedBetweenInlineAndCall(t *testing.T) {
	// §7: statics must be externally known so values are maintained
	// whether the procedure is called or inlined.
	src := `
int counter(void) { static int n; n = n + 1; return n; }
int f(void) { return counter(); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	in.ExpandProc(fp)
	// The inlined body must reference the exported static, not a fresh
	// local.
	found := false
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if dv := il.DefinedVar(s); dv != il.NoVar {
			if fp.Vars[dv].Name == "counter.n" && fp.Vars[dv].Class == il.ClassStatic {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("static not shared:\n%s", fp)
	}
}

func TestVariadicNotInlined(t *testing.T) {
	src := `
int printf(char *fmt, ...);
void f(void) { printf("hi"); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	if n := in.ExpandProc(fp); n != 0 {
		t.Fatalf("inlined a variadic: %d", n)
	}
}

func TestSizeLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int big(int x) {\n")
	for i := 0; i < 60; i++ {
		sb.WriteString("x = x + 1;\n")
	}
	sb.WriteString("return x; }\nint f(int a) { return big(a); }\n")
	prog := compile(t, sb.String())
	in := New(prog, Config{MaxStmts: 10, MaxDepth: 4})
	fp := prog.Proc("f")
	if n := in.ExpandProc(fp); n != 0 {
		t.Fatalf("inlined oversized callee: %d", n)
	}
}

func TestOnlyFilter(t *testing.T) {
	src := `
int a1(int x) { return x + 1; }
int a2(int x) { return x + 2; }
int f(int v) { return a1(v) + a2(v); }
`
	prog := compile(t, src)
	cfg := DefaultConfig()
	cfg.Only = map[string]bool{"a1": true}
	in := New(prog, cfg)
	fp := prog.Proc("f")
	if n := in.ExpandProc(fp); n != 1 {
		t.Fatalf("expanded %d", n)
	}
	remaining := 0
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if c, ok := s.(*il.Call); ok {
			remaining++
			if c.Callee != "a2" {
				t.Errorf("wrong call remains: %s", c.Callee)
			}
		}
		return true
	})
	if remaining != 1 {
		t.Errorf("remaining calls: %d", remaining)
	}
}

func TestMultipleReturnsBecomeGotos(t *testing.T) {
	src := `
int sign(int x) {
	if (x > 0) return 1;
	if (x < 0) return -1;
	return 0;
}
int f(int a) { return sign(a); }
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	fp := prog.Proc("f")
	in.ExpandProc(fp)
	// No Return nodes from the callee (only f's own return).
	returns := 0
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Return); ok {
			returns++
		}
		return true
	})
	if returns != 1 {
		t.Errorf("returns: %d\n%s", returns, fp)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	src := `
struct node { int v; struct node *next; };
static int hidden = 3;
float scale(float x, float s) { return x * s; }
int walk(struct node *n) {
	int total;
	total = 0;
	while (n) {
		total = total + n->v;
		n = n->next;
	}
	return total;
}
`
	prog := compile(t, src)
	cat := BuildCatalog(prog)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Procs) != 2 {
		t.Fatalf("procs: %d", len(got.Procs))
	}
	// Full textual round trip: the decoded procedures print identically.
	for i, p := range cat.Procs {
		if got.Procs[i].String() != p.String() {
			t.Errorf("proc %s differs:\n--- want\n%s\n--- got\n%s", p.Name, p, got.Procs[i])
		}
	}
	if len(got.Globals) != len(cat.Globals) {
		t.Errorf("globals: %d vs %d", len(got.Globals), len(cat.Globals))
	}
	// Self-referential struct type survived.
	wp := got.Procs[1]
	nParam := wp.Vars[wp.Params[0]]
	if nParam.Type.Elem.Field("next") == nil {
		t.Error("recursive struct type broken")
	}
}

func TestCatalogInliningMatchesSameFile(t *testing.T) {
	// E9: inlining from a catalog produces the same code as same-file
	// inlining.
	lib := `
float axpy1(float a, float x, float y) { return a * x + y; }
`
	app := `
float axpy1(float a, float x, float y);
float f(float p, float q) { return axpy1(2.0f, p, q); }
`
	combined := lib + "\nfloat f(float p, float q) { return axpy1(2.0f, p, q); }\n"

	// Route 1: same file.
	prog1 := compile(t, combined)
	in1 := New(prog1, DefaultConfig())
	f1 := prog1.Proc("f")
	in1.ExpandProc(f1)
	opt.Optimize(f1, opt.DefaultOptions())

	// Route 2: catalog.
	libProg := compile(t, lib)
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, BuildCatalog(libProg)); err != nil {
		t.Fatal(err)
	}
	cat, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := compile(t, app)
	in2 := New(prog2, DefaultConfig())
	in2.AddCatalog(cat)
	f2 := prog2.Proc("f")
	if n := in2.ExpandProc(f2); n != 1 {
		t.Fatalf("catalog expansion: %d", n)
	}
	opt.Optimize(f2, opt.DefaultOptions())

	if f1.String() != f2.String() {
		t.Errorf("catalog and same-file inlining differ:\n--- same file\n%s\n--- catalog\n%s", f1, f2)
	}
}

func TestCatalogBadInput(t *testing.T) {
	if _, err := ReadCatalog(bytes.NewReader([]byte("NOTACATALOG"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadCatalog(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid header.
	var buf bytes.Buffer
	prog := compile(t, "int f(void) { return 1; }")
	if err := WriteCatalog(&buf, BuildCatalog(prog)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCatalog(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated catalog accepted")
	}
}

func TestArrayRowPromotion(t *testing.T) {
	// §7: "Array rows passed by reference into a procedure lead to
	// subscripted references whose base arrays are also subscripted."
	// After inlining clearrow(m[i], n), the row base m[i] must normalize
	// into an affine address so the inner loop vectorizes.
	src := `
float m[8][128];
void clearrow(float *row, int n)
{
	int j;
	for (j = 0; j < n; j++)
		row[j] = 0.0f;
}
void clearall(int n)
{
	int i;
	for (i = 0; i < 8; i++)
		clearrow(m[i], n);
}
`
	prog := compile(t, src)
	in := New(prog, DefaultConfig())
	cp := prog.Proc("clearall")
	if n := in.ExpandProc(cp); n != 1 {
		t.Fatalf("expanded %d", n)
	}
	opt.Optimize(cp, opt.DefaultOptions())
	st := vector.VectorizeProc(cp, vector.Config{})
	if st.VectorStmts < 1 {
		t.Fatalf("row reference did not vectorize after inlining: %+v\n%s", st, cp)
	}
}

func TestCatalogRoundTripVectorForms(t *testing.T) {
	// Optimized IL (vector statements, parallel loops) must survive the
	// catalog encoding too.
	src := `
float a[256], b[256];
void kernel(void) {
	int i;
	for (i = 0; i < 256; i++)
		a[i] = b[i] * 2.0f;
}
`
	prog := compile(t, src)
	for _, p := range prog.Procs {
		opt.Optimize(p, opt.DefaultOptions())
		vector.VectorizeProc(p, vector.Config{Parallel: true})
	}
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, BuildCatalog(prog)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs[0].String() != prog.Procs[0].String() {
		t.Errorf("vector IL round trip differs:\n--- want\n%s\n--- got\n%s",
			prog.Procs[0], got.Procs[0])
	}
	// The decoded form must contain the vector statement.
	found := false
	il.WalkStmts(got.Procs[0].Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.VectorAssign); ok {
			found = true
		}
		return true
	})
	if !found {
		t.Error("vector statement lost in catalog")
	}
}

func TestInlineDepthLimit(t *testing.T) {
	// a → b → c → d chain with MaxDepth 2: expansion stops early but
	// remains correct (inner calls survive as calls).
	src := `
int d(int x) { return x + 1; }
int c(int x) { return d(x) + 1; }
int b(int x) { return c(x) + 1; }
int f(int x) { return b(x) + 1; }
`
	prog := compile(t, src)
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	in := New(prog, cfg)
	fp := prog.Proc("f")
	in.ExpandProc(fp)
	// With depth 1 the nested expansion loop runs once; deep calls remain.
	calls := 0
	il.WalkStmts(fp.Body, func(s il.Stmt) bool {
		if _, ok := s.(*il.Call); ok {
			calls++
		}
		return true
	})
	if calls == 0 {
		t.Log("note: single pass expanded the whole chain (nested expansion within one pass)")
	}
}
