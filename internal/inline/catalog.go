package inline

// This file implements procedure catalogs: the paper's databases of parsed
// procedures (§7). "In order to inline functions from other files, the
// intermediate representation for functions must be saved in an easily
// accessible form. To permit this, we eliminated all hard pointers from
// the IL." Our IL references variables by index and globals/callees by
// name, so serialization needs only a type table (types form graphs —
// self-referential structs — and are flattened to indices here).
//
// The format is a simple tagged binary encoding (varints via
// encoding/binary) with a magic header and version byte.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/token"
)

// Catalog is a set of procedures plus the globals they reference
// (including exported function statics).
type Catalog struct {
	Procs   []*il.Proc
	Globals []il.GlobalVar
}

const (
	catalogMagic = "TITANCAT"
	// catalogVersion 2 added per-statement source positions (line, col)
	// ahead of each statement tag, so diagnostics on inlined bodies can
	// point at the callee's source. Version-1 catalogs still read; their
	// statements decode with zero positions and inherit the call site at
	// expansion time.
	catalogVersion    = 2
	catalogMinVersion = 1
)

// BuildCatalog packages a program's procedures and globals for archiving.
func BuildCatalog(prog *il.Program) *Catalog {
	return &Catalog{Procs: prog.Procs, Globals: prog.Globals}
}

// WriteCatalog serializes a catalog.
func WriteCatalog(w io.Writer, c *Catalog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(catalogMagic); err != nil {
		return err
	}
	enc := &encoder{w: bw, typeIdx: map[*ctype.Type]int{}}
	enc.u64(catalogVersion)

	// Pass 1: collect every type reachable from procs and globals so the
	// table is complete before any body encodes.
	for _, g := range c.Globals {
		enc.typeID(g.Type)
	}
	for _, p := range c.Procs {
		enc.typeID(p.Ret)
		for i := range p.Vars {
			enc.typeID(p.Vars[i].Type)
		}
		il.WalkStmts(p.Body, func(s il.Stmt) bool {
			il.StmtExprs(s, func(e il.Expr) {
				il.WalkExpr(e, func(x il.Expr) bool {
					if t := x.Type(); t != nil {
						enc.typeID(t)
					}
					return true
				})
			})
			return true
		})
	}
	enc.writeTypeTable()

	enc.u64(uint64(len(c.Globals)))
	for _, g := range c.Globals {
		enc.str(g.Name)
		enc.u64(uint64(enc.typeID(g.Type)))
		enc.i64(g.InitInt)
		enc.f64(g.InitFloat)
		enc.boolean(g.HasInit)
		enc.bytes(g.Data)
	}
	enc.u64(uint64(len(c.Procs)))
	for _, p := range c.Procs {
		enc.proc(p)
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// ReadCatalog deserializes a catalog. Malformed input — wrong magic,
// a version this build does not understand, or a stream truncated or
// corrupted anywhere after the header — is reported as a descriptive
// error, never a panic: the daemon feeds this decoder bytes uploaded
// over HTTP.
func ReadCatalog(r io.Reader) (c *Catalog, err error) {
	// Backstop: the decoder validates counts and indices as it goes, but
	// corrupt input that slips through a missed check must still surface
	// as an error, not take down the process.
	defer func() {
		if p := recover(); p != nil {
			c, err = nil, fmt.Errorf("catalog: malformed input: %v", p)
		}
	}()
	br := bufio.NewReader(r)
	magic := make([]byte, len(catalogMagic))
	if n, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("catalog: truncated input: got %d of %d magic bytes (want %q)", n, len(catalogMagic), catalogMagic)
	}
	if string(magic) != catalogMagic {
		return nil, fmt.Errorf("catalog: bad magic %q (want %q): not a Titan procedure catalog", magic, catalogMagic)
	}
	dec := &decoder{r: br}
	v := dec.u64()
	if dec.err != nil {
		return nil, fmt.Errorf("catalog: truncated input: missing version: %w", dec.err)
	}
	if v < catalogMinVersion || v > catalogVersion {
		return nil, fmt.Errorf("catalog: unsupported version %d (this build reads versions %d through %d)", v, catalogMinVersion, catalogVersion)
	}
	dec.version = int(v)
	dec.readTypeTable()

	c = &Catalog{}
	ng := dec.u64()
	for i := uint64(0); i < ng && dec.err == nil; i++ {
		g := il.GlobalVar{}
		g.Name = dec.str()
		g.Type = dec.typeByID(int(dec.u64()))
		g.InitInt = dec.i64()
		g.InitFloat = dec.f64()
		g.HasInit = dec.boolean()
		g.Data = dec.bytes()
		c.Globals = append(c.Globals, g)
	}
	np := dec.u64()
	for i := uint64(0); i < np && dec.err == nil; i++ {
		c.Procs = append(c.Procs, dec.proc())
	}
	if dec.err != nil {
		if errors.Is(dec.err, io.EOF) || errors.Is(dec.err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("catalog: truncated input: %w", dec.err)
		}
		return nil, dec.err
	}
	return c, nil
}

// ---------------------------------------------------------------- encoder

type encoder struct {
	w       *bufio.Writer
	err     error
	typeIdx map[*ctype.Type]int
	types   []*ctype.Type
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, e.err = e.w.Write(buf[:n])
}

func (e *encoder) i64(v int64) {
	if e.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, e.err = e.w.Write(buf[:n])
}

func (e *encoder) f64(v float64) {
	if e.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], mathFloat64bits(v))
	_, e.err = e.w.Write(buf[:])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) boolean(b bool) {
	if b {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

// typeID interns a type, assigning indices before recursion so cyclic
// types (struct node { struct node *next; }) terminate.
func (e *encoder) typeID(t *ctype.Type) int {
	if t == nil {
		return -1
	}
	if id, ok := e.typeIdx[t]; ok {
		return id
	}
	id := len(e.types)
	e.typeIdx[t] = id
	e.types = append(e.types, t)
	if t.Elem != nil {
		e.typeID(t.Elem)
	}
	if t.Ret != nil {
		e.typeID(t.Ret)
	}
	for i := range t.Params {
		e.typeID(t.Params[i].Type)
	}
	for i := range t.Fields {
		e.typeID(t.Fields[i].Type)
	}
	return id
}

func (e *encoder) writeTypeTable() {
	e.u64(uint64(len(e.types)))
	for _, t := range e.types {
		e.u64(uint64(t.Kind))
		e.boolean(t.Unsigned)
		e.boolean(t.Volatile)
		e.boolean(t.Const)
		e.i64(int64(t.Len))
		e.i64(int64(e.refID(t.Elem)))
		e.i64(int64(e.refID(t.Ret)))
		e.boolean(t.Variadic)
		e.boolean(t.OldStyle)
		e.str(t.Tag)
		e.u64(uint64(len(t.Params)))
		for _, p := range t.Params {
			e.str(p.Name)
			e.i64(int64(e.refID(p.Type)))
		}
		e.u64(uint64(len(t.Fields)))
		for _, f := range t.Fields {
			e.str(f.Name)
			e.i64(int64(e.refID(f.Type)))
			e.i64(int64(f.Offset))
		}
		// Aggregate size is recomputed via StructOf layout rules on read?
		// No: offsets are stored; store the total size too.
		e.i64(int64(t.Size()))
	}
}

func (e *encoder) refID(t *ctype.Type) int {
	if t == nil {
		return -1
	}
	return e.typeIdx[t]
}

func (e *encoder) proc(p *il.Proc) {
	e.str(p.Name)
	e.i64(int64(e.refID(p.Ret)))
	e.boolean(p.Variadic)
	e.u64(uint64(len(p.Params)))
	for _, id := range p.Params {
		e.u64(uint64(id))
	}
	e.u64(uint64(len(p.Vars)))
	for i := range p.Vars {
		v := &p.Vars[i]
		e.str(v.Name)
		e.i64(int64(e.refID(v.Type)))
		e.u64(uint64(v.Class))
		e.boolean(v.AddrTaken)
	}
	e.stmts(p.Body)
}

// Statement tags.
const (
	tAssign = iota
	tCall
	tIf
	tWhile
	tDoLoop
	tDoParallel
	tVectorAssign
	tGoto
	tLabel
	tReturn
)

// Expression tags.
const (
	xNil = iota
	xConstInt
	xConstFloat
	xVarRef
	xAddrOf
	xLoad
	xBin
	xUn
	xCast
	xVecRef
)

func (e *encoder) stmts(list []il.Stmt) {
	e.u64(uint64(len(list)))
	for _, s := range list {
		e.stmt(s)
	}
}

func (e *encoder) stmt(s il.Stmt) {
	pos := il.StmtPos(s)
	e.u64(uint64(pos.Line))
	e.u64(uint64(pos.Col))
	switch n := s.(type) {
	case *il.Assign:
		e.u64(tAssign)
		e.expr(n.Dst)
		e.expr(n.Src)
	case *il.Call:
		e.u64(tCall)
		e.i64(int64(n.Dst))
		e.str(n.Callee)
		e.expr(n.FunPtr)
		e.i64(int64(e.refID(n.T)))
		e.u64(uint64(len(n.Args)))
		for _, a := range n.Args {
			e.expr(a)
		}
	case *il.If:
		e.u64(tIf)
		e.expr(n.Cond)
		e.stmts(n.Then)
		e.stmts(n.Else)
	case *il.While:
		e.u64(tWhile)
		e.expr(n.Cond)
		e.boolean(n.Safe)
		e.stmts(n.Body)
	case *il.DoLoop:
		e.u64(tDoLoop)
		e.u64(uint64(n.IV))
		e.expr(n.Init)
		e.expr(n.Limit)
		e.expr(n.Step)
		e.boolean(n.Safe)
		e.stmts(n.Body)
	case *il.DoParallel:
		e.u64(tDoParallel)
		e.u64(uint64(n.IV))
		e.expr(n.Init)
		e.expr(n.Limit)
		e.expr(n.Step)
		e.stmts(n.Body)
	case *il.VectorAssign:
		e.u64(tVectorAssign)
		e.expr(n.DstBase)
		e.expr(n.DstStride)
		e.expr(n.Len)
		e.i64(int64(e.refID(n.Elem)))
		e.expr(n.RHS)
	case *il.Goto:
		e.u64(tGoto)
		e.str(n.Target)
	case *il.Label:
		e.u64(tLabel)
		e.str(n.Name)
	case *il.Return:
		e.u64(tReturn)
		e.expr(n.Val)
	default:
		e.err = fmt.Errorf("catalog: cannot encode %T", s)
	}
}

func (e *encoder) expr(x il.Expr) {
	if x == nil {
		e.u64(xNil)
		return
	}
	switch n := x.(type) {
	case *il.ConstInt:
		e.u64(xConstInt)
		e.i64(n.Val)
		e.i64(int64(e.refID(n.T)))
	case *il.ConstFloat:
		e.u64(xConstFloat)
		e.f64(n.Val)
		e.i64(int64(e.refID(n.T)))
	case *il.VarRef:
		e.u64(xVarRef)
		e.u64(uint64(n.ID))
		e.i64(int64(e.refID(n.T)))
	case *il.AddrOf:
		e.u64(xAddrOf)
		e.u64(uint64(n.ID))
		e.i64(int64(e.refID(n.T)))
	case *il.Load:
		e.u64(xLoad)
		e.expr(n.Addr)
		e.i64(int64(e.refID(n.T)))
		e.boolean(n.Volatile)
	case *il.Bin:
		e.u64(xBin)
		e.u64(uint64(n.Op))
		e.expr(n.L)
		e.expr(n.R)
		e.i64(int64(e.refID(n.T)))
	case *il.Un:
		e.u64(xUn)
		e.u64(uint64(n.Op))
		e.expr(n.X)
		e.i64(int64(e.refID(n.T)))
	case *il.Cast:
		e.u64(xCast)
		e.expr(n.X)
		e.i64(int64(e.refID(n.T)))
	case *il.VecRef:
		e.u64(xVecRef)
		e.expr(n.Base)
		e.expr(n.Stride)
		e.i64(int64(e.refID(n.T)))
	default:
		e.err = fmt.Errorf("catalog: cannot encode expr %T", x)
	}
}

// ---------------------------------------------------------------- decoder

type decoder struct {
	r       *bufio.Reader
	err     error
	version int
	types   []*ctype.Type
	depth   int // statement/expression recursion depth (bounded)
}

// maxDecodeDepth bounds statement/expression nesting so a crafted input
// cannot overflow the stack via deeply nested tags (every level of real
// nesting consumes input bytes, so legitimate catalogs stay far below).
const maxDecodeDepth = 1 << 14

// enter tracks recursion depth; it reports false (and sets the error)
// once the nesting bound is exceeded.
func (d *decoder) enter() bool {
	d.depth++
	if d.depth > maxDecodeDepth {
		if d.err == nil {
			d.err = fmt.Errorf("catalog: statement/expression nesting exceeds %d levels", maxDecodeDepth)
		}
		return false
	}
	return true
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = err
		return 0
	}
	return mathFloat64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil || n == 0 {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("catalog: string too long (%d)", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *decoder) bytes() []byte {
	n := d.u64()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > 1<<24 {
		d.err = fmt.Errorf("catalog: data too long (%d)", n)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return nil
	}
	return buf
}

func (d *decoder) boolean() bool { return d.u64() != 0 }

func (d *decoder) typeByID(id int) *ctype.Type {
	if id < 0 || id >= len(d.types) {
		return nil
	}
	return d.types[id]
}

func (d *decoder) readTypeTable() {
	// 64k types is far beyond any real translation unit; the bound also
	// caps finishTypes' value-edge recursion depth on crafted input.
	n := int(d.u64())
	if d.err != nil || n < 0 || n > 1<<16 {
		if d.err == nil {
			d.err = fmt.Errorf("catalog: bad type count %d", n)
		}
		return
	}
	// Allocate shells first so cyclic references resolve.
	d.types = make([]*ctype.Type, n)
	for i := range d.types {
		d.types[i] = &ctype.Type{}
	}
	for i := 0; i < n && d.err == nil; i++ {
		t := d.types[i]
		t.Kind = ctype.Kind(d.u64())
		if t.Kind < ctype.Void || t.Kind > ctype.Enum {
			if d.err == nil {
				d.err = fmt.Errorf("catalog: type %d has unknown kind %d", i, t.Kind)
			}
			return
		}
		t.Unsigned = d.boolean()
		t.Volatile = d.boolean()
		t.Const = d.boolean()
		t.Len = int(d.i64())
		t.Elem = d.typeByID(int(d.i64()))
		t.Ret = d.typeByID(int(d.i64()))
		t.Variadic = d.boolean()
		t.OldStyle = d.boolean()
		t.Tag = d.str()
		np := int(d.u64())
		for j := 0; j < np && d.err == nil; j++ {
			name := d.str()
			pt := d.typeByID(int(d.i64()))
			t.Params = append(t.Params, ctype.Param{Name: name, Type: pt})
		}
		nf := int(d.u64())
		var fields []ctype.Field
		for j := 0; j < nf && d.err == nil; j++ {
			name := d.str()
			ft := d.typeByID(int(d.i64()))
			off := int(d.i64())
			fields = append(fields, ctype.Field{Name: name, Type: ft, Offset: off})
		}
		t.Fields = fields
		d.i64() // stored aggregate size; recomputed by finishTypes
	}
	if d.err == nil {
		d.finishTypes()
	}
}

// finishTypes validates the decoded type graph and rebuilds aggregate
// layout. Two jobs, both deferred until the whole table is read:
//
//  1. Validation. The layout helpers dereference element and field types
//     and recurse through value containment, so a corrupt table with a
//     dangling reference or a type that contains itself by value (legal
//     in no C program — only pointers may close a cycle) must be
//     rejected here, not crash there.
//  2. Bottom-up rebuild. StructOf/UnionOf recompute offsets from field
//     sizes, so a struct's field types must have final layout before the
//     struct does. typeID interns parents before children at encode
//     time, so table order is top-down — the rebuild follows value edges
//     depth-first instead.
func (d *decoder) finishTypes() {
	const (
		unseen = iota
		visiting
		finished
	)
	state := make([]byte, len(d.types))
	index := make(map[*ctype.Type]int, len(d.types))
	for i, t := range d.types {
		index[t] = i
	}
	var visit func(i int)
	visit = func(i int) {
		if d.err != nil || state[i] == finished {
			return
		}
		if state[i] == visiting {
			d.err = fmt.Errorf("catalog: type %d contains itself by value", i)
			return
		}
		state[i] = visiting
		t := d.types[i]
		switch t.Kind {
		case ctype.Array:
			if t.Elem == nil {
				d.err = fmt.Errorf("catalog: array type %d has a dangling element type", i)
				return
			}
			visit(index[t.Elem])
		case ctype.Struct, ctype.Union:
			for _, f := range t.Fields {
				if f.Type == nil {
					d.err = fmt.Errorf("catalog: aggregate type %d field %q has a dangling type reference", i, f.Name)
					return
				}
				visit(index[f.Type])
				if d.err != nil {
					return
				}
			}
			*t = *rebuildAggregate(t)
		}
		state[i] = finished
	}
	for i := range d.types {
		visit(i)
		if d.err != nil {
			return
		}
	}
}

// rebuildAggregate restores a struct/union through the layout helper.
// StructOf recomputes offsets with the same algorithm used at parse
// time, so the stored offsets match; qualifiers are kept.
func rebuildAggregate(t *ctype.Type) *ctype.Type {
	var nt *ctype.Type
	if t.Kind == ctype.Struct {
		nt = ctype.StructOf(t.Tag, t.Fields)
	} else {
		nt = ctype.UnionOf(t.Tag, t.Fields)
	}
	nt.Volatile = t.Volatile
	nt.Const = t.Const
	return nt
}

func (d *decoder) proc() *il.Proc {
	p := &il.Proc{}
	p.Name = d.str()
	p.Ret = d.typeByID(int(d.i64()))
	p.Variadic = d.boolean()
	np := int(d.u64())
	for i := 0; i < np && d.err == nil; i++ {
		p.Params = append(p.Params, il.VarID(d.u64()))
	}
	nv := int(d.u64())
	for i := 0; i < nv && d.err == nil; i++ {
		var v il.Var
		v.Name = d.str()
		v.Type = d.typeByID(int(d.i64()))
		v.Class = il.VarClass(d.u64())
		v.AddrTaken = d.boolean()
		p.Vars = append(p.Vars, v)
	}
	p.Body = d.stmts()
	return p
}

func (d *decoder) stmts() []il.Stmt {
	n := int(d.u64())
	if d.err != nil || n < 0 || n > 1<<22 {
		if d.err == nil {
			d.err = fmt.Errorf("catalog: bad statement count %d", n)
		}
		return nil
	}
	var out []il.Stmt
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.stmt())
	}
	return out
}

func (d *decoder) stmt() il.Stmt {
	if !d.enter() {
		return &il.Label{Name: ".bad"}
	}
	defer func() { d.depth-- }()
	var pos token.Pos
	if d.version >= 2 {
		pos.Line = int(d.u64())
		pos.Col = int(d.u64())
	}
	s := d.stmtBody()
	if pos.Line > 0 {
		il.SetStmtPos(s, pos)
	}
	return s
}

func (d *decoder) stmtBody() il.Stmt {
	switch tag := d.u64(); tag {
	case tAssign:
		dst := d.expr()
		src := d.expr()
		return &il.Assign{Dst: dst, Src: src}
	case tCall:
		c := &il.Call{}
		c.Dst = il.VarID(d.i64())
		c.Callee = d.str()
		c.FunPtr = d.expr()
		c.T = d.typeByID(int(d.i64()))
		na := int(d.u64())
		for i := 0; i < na && d.err == nil; i++ {
			c.Args = append(c.Args, d.expr())
		}
		return c
	case tIf:
		cond := d.expr()
		then := d.stmts()
		els := d.stmts()
		return &il.If{Cond: cond, Then: then, Else: els}
	case tWhile:
		cond := d.expr()
		safe := d.boolean()
		body := d.stmts()
		return &il.While{Cond: cond, Safe: safe, Body: body}
	case tDoLoop:
		iv := il.VarID(d.u64())
		init := d.expr()
		limit := d.expr()
		step := d.expr()
		safe := d.boolean()
		body := d.stmts()
		return &il.DoLoop{IV: iv, Init: init, Limit: limit, Step: step, Safe: safe, Body: body}
	case tDoParallel:
		iv := il.VarID(d.u64())
		init := d.expr()
		limit := d.expr()
		step := d.expr()
		body := d.stmts()
		return &il.DoParallel{IV: iv, Init: init, Limit: limit, Step: step, Body: body}
	case tVectorAssign:
		base := d.expr()
		stride := d.expr()
		length := d.expr()
		elem := d.typeByID(int(d.i64()))
		rhs := d.expr()
		return &il.VectorAssign{DstBase: base, DstStride: stride, Len: length, Elem: elem, RHS: rhs}
	case tGoto:
		return &il.Goto{Target: d.str()}
	case tLabel:
		return &il.Label{Name: d.str()}
	case tReturn:
		return &il.Return{Val: d.expr()}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("catalog: unknown statement tag %d", tag)
		}
		return &il.Label{Name: ".bad"}
	}
}

func (d *decoder) expr() il.Expr {
	if !d.enter() {
		return il.Int(0)
	}
	defer func() { d.depth-- }()
	switch tag := d.u64(); tag {
	case xNil:
		return nil
	case xConstInt:
		v := d.i64()
		t := d.typeByID(int(d.i64()))
		return &il.ConstInt{Val: v, T: t}
	case xConstFloat:
		v := d.f64()
		t := d.typeByID(int(d.i64()))
		return &il.ConstFloat{Val: v, T: t}
	case xVarRef:
		id := il.VarID(d.u64())
		t := d.typeByID(int(d.i64()))
		return &il.VarRef{ID: id, T: t}
	case xAddrOf:
		id := il.VarID(d.u64())
		t := d.typeByID(int(d.i64()))
		return &il.AddrOf{ID: id, T: t}
	case xLoad:
		addr := d.expr()
		t := d.typeByID(int(d.i64()))
		vol := d.boolean()
		return &il.Load{Addr: addr, T: t, Volatile: vol}
	case xBin:
		op := il.Op(d.u64())
		l := d.expr()
		r := d.expr()
		t := d.typeByID(int(d.i64()))
		return &il.Bin{Op: op, L: l, R: r, T: t}
	case xUn:
		op := il.Op(d.u64())
		x := d.expr()
		t := d.typeByID(int(d.i64()))
		return &il.Un{Op: op, X: x, T: t}
	case xCast:
		x := d.expr()
		t := d.typeByID(int(d.i64()))
		return &il.Cast{X: x, T: t}
	case xVecRef:
		base := d.expr()
		stride := d.expr()
		t := d.typeByID(int(d.i64()))
		return &il.VecRef{Base: base, Stride: stride, T: t}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("catalog: unknown expr tag %d", tag)
		}
		return il.Int(0)
	}
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
