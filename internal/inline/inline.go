// Package inline implements §7's inline expansion. Procedures are expanded
// at call sites from the current translation unit or from catalogs —
// serialized libraries of parsed procedures (see catalog.go) — with
// parameter binding through temporaries, label and variable renaming, a
// recursion guard, and static-variable export. The optimizations that make
// inlined code fast (constant propagation into the guards, unreachable and
// dead code elimination — §8) live in package opt.
package inline

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/token"
)

// Config controls expansion policy.
type Config struct {
	// MaxStmts bounds the callee size considered inlinable.
	MaxStmts int
	// MaxDepth bounds nested expansion (recursion guard backstop).
	MaxDepth int
	// Only, when non-empty, restricts inlining to the named procedures.
	Only map[string]bool
}

// DefaultConfig matches the compiler's defaults: small static functions
// and library kernels expand; anything over 200 statements does not.
func DefaultConfig() Config { return Config{MaxStmts: 200, MaxDepth: 8} }

// Stats reports what expansion did, in the shape the pass pipeline's
// report expects.
type Stats struct {
	// CallsExpanded counts call sites replaced by callee bodies.
	CallsExpanded int `json:"calls_expanded"`
}

// Add folds another unit's stats into s.
func (s *Stats) Add(o Stats) { s.CallsExpanded += o.CallsExpanded }

// Inliner expands calls within one program, drawing callee bodies from the
// program itself and from attached catalogs.
type Inliner struct {
	Prog    *il.Program
	Catalog map[string]*il.Proc
	Cfg     Config

	// Diags receives §7's expansion decisions: inline-expanded,
	// inline-recursive, inline-refused, and inline-static-export. Nil
	// drops them. ExpandProc revisits surviving calls once per depth
	// round, so refusals are deduplicated per (code, site, message).
	Diags *diag.Reporter

	// Expanded counts call sites expanded (for tests and reports).
	Expanded int
	seq      int
	seen     map[string]bool
}

// New returns an inliner over prog.
func New(prog *il.Program, cfg Config) *Inliner {
	return &Inliner{Prog: prog, Catalog: map[string]*il.Proc{}, Cfg: cfg, seen: map[string]bool{}}
}

// report forwards d to Diags, dropping exact repeats (the depth loop
// re-examines refused calls every round).
func (in *Inliner) report(d diag.Diagnostic) {
	if in.Diags == nil {
		return
	}
	if in.seen == nil {
		in.seen = map[string]bool{}
	}
	key := fmt.Sprintf("%s|%s|%d:%d|%s", d.Code, d.Proc, d.Pos.Line, d.Pos.Col, d.Message)
	if in.seen[key] {
		return
	}
	in.seen[key] = true
	in.Diags.Report(d)
}

// refuseReason names why Inlinable rejected a known callee.
func (in *Inliner) refuseReason(callee *il.Proc) string {
	switch {
	case callee.Variadic:
		return "variadic callee"
	case in.Cfg.MaxStmts > 0 && il.CountStmts(callee.Body) > in.Cfg.MaxStmts:
		return fmt.Sprintf("callee has %d statements (limit %d)", il.CountStmts(callee.Body), in.Cfg.MaxStmts)
	case len(in.Cfg.Only) > 0 && !in.Cfg.Only[callee.Name]:
		return "not in the inline-only list"
	default:
		return "policy"
	}
}

// AddCatalog attaches a library catalog; its procedures become candidates,
// and its globals (including exported statics, §7) are merged into the
// program.
func (in *Inliner) AddCatalog(c *Catalog) {
	for _, p := range c.Procs {
		in.Catalog[p.Name] = p
	}
	for _, g := range c.Globals {
		in.Prog.AddGlobal(g)
	}
}

// lookup finds a callee body: unit procedures shadow catalog entries.
func (in *Inliner) lookup(name string) *il.Proc {
	if p := in.Prog.Proc(name); p != nil && len(p.Body) > 0 {
		return p
	}
	return in.Catalog[name]
}

// ExpandProgram expands calls in every procedure.
func (in *Inliner) ExpandProgram() int {
	n := 0
	for _, p := range in.Prog.Procs {
		n += in.ExpandProc(p)
	}
	return n
}

// ExpandProc expands eligible calls in p until none remain or the depth
// bound hits. Calls introduced by expansion are themselves candidates
// (inlined functions may inline other functions, §7); the stack of names
// being expanded guards against recursion.
func (in *Inliner) ExpandProc(p *il.Proc) int {
	count := 0
	for depth := 0; depth < in.Cfg.MaxDepth; depth++ {
		n := 0
		p.Body = in.expandList(p, p.Body, map[string]bool{p.Name: true}, &n)
		count += n
		if n == 0 {
			break
		}
	}
	in.Expanded += count
	return count
}

func (in *Inliner) expandList(p *il.Proc, list []il.Stmt, stack map[string]bool, n *int) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *il.Call:
			if repl, ok := in.expandCall(p, st, stack); ok {
				*n++
				out = append(out, repl...)
				continue
			}
		case *il.If:
			st.Then = in.expandList(p, st.Then, stack, n)
			st.Else = in.expandList(p, st.Else, stack, n)
		case *il.While:
			st.Body = in.expandList(p, st.Body, stack, n)
		case *il.DoLoop:
			st.Body = in.expandList(p, st.Body, stack, n)
		case *il.DoParallel:
			st.Body = in.expandList(p, st.Body, stack, n)
		}
		out = append(out, s)
	}
	return out
}

// Inlinable reports whether the named procedure could be expanded (used by
// diagnostics and tests).
func (in *Inliner) Inlinable(name string) bool {
	callee := in.lookup(name)
	if callee == nil || callee.Variadic {
		return false
	}
	if in.Cfg.MaxStmts > 0 && il.CountStmts(callee.Body) > in.Cfg.MaxStmts {
		return false
	}
	if len(in.Cfg.Only) > 0 && !in.Cfg.Only[name] {
		return false
	}
	return true
}

// expandCall replaces one call with the callee's renamed body.
func (in *Inliner) expandCall(p *il.Proc, call *il.Call, stack map[string]bool) ([]il.Stmt, bool) {
	if call.FunPtr != nil || call.Callee == "" {
		return nil, false // indirect calls hide the callee
	}
	if stack[call.Callee] {
		in.report(diag.Diagnostic{
			Severity: diag.SevRemark, Code: diag.InlineRecursive,
			Pos: call.Pos, Proc: p.Name, Pass: "inline",
			Args:    map[string]string{"callee": call.Callee},
			Message: fmt.Sprintf("call to %s not inlined: recursion detected (§7)", call.Callee),
		})
		return nil, false
	}
	if !in.Inlinable(call.Callee) {
		// Unknown callees (externs with no catalog body) are an absence,
		// not a decision; only known-but-refused callees get a remark.
		if known := in.lookup(call.Callee); known != nil {
			in.report(diag.Diagnostic{
				Severity: diag.SevRemark, Code: diag.InlineRefused,
				Pos: call.Pos, Proc: p.Name, Pass: "inline",
				Args:    map[string]string{"callee": call.Callee, "reason": in.refuseReason(known)},
				Message: fmt.Sprintf("call to %s not inlined: %s", call.Callee, in.refuseReason(known)),
			})
		}
		return nil, false
	}
	callee := in.lookup(call.Callee)
	if len(call.Args) != len(callee.Params) {
		in.report(diag.Diagnostic{
			Severity: diag.SevRemark, Code: diag.InlineRefused,
			Pos: call.Pos, Proc: p.Name, Pass: "inline",
			Args:    map[string]string{"callee": call.Callee, "reason": "argument count mismatch"},
			Message: fmt.Sprintf("call to %s not inlined: argument count mismatch", call.Callee),
		})
		return nil, false // old-style mismatch; leave the call alone
	}

	in.seq++
	prefix := fmt.Sprintf("in%d", in.seq)

	// Map callee variables into the caller.
	varMap := make([]il.VarID, len(callee.Vars))
	for i := range callee.Vars {
		cv := callee.Vars[i]
		switch cv.Class {
		case il.ClassGlobal, il.ClassStatic:
			// Same program-level storage; reuse or add a caller entry.
			// Statics were exported to globals when the callee was built
			// (§7), so the caller references them by name.
			if id := p.LookupVar(cv.Name); id != il.NoVar && p.Vars[id].Class == cv.Class {
				varMap[i] = id
			} else {
				varMap[i] = p.AddVar(il.Var{Name: cv.Name, Type: cv.Type, Class: cv.Class, AddrTaken: cv.AddrTaken})
			}
			if cv.Class == il.ClassStatic {
				in.report(diag.Diagnostic{
					Severity: diag.SevRemark, Code: diag.InlineStaticExport,
					Pos: call.Pos, Proc: p.Name, Pass: "inline",
					Args:    map[string]string{"callee": call.Callee, "var": cv.Name},
					Message: fmt.Sprintf("static %s of inlined %s kept as program-level storage (§7 static export)", cv.Name, call.Callee),
				})
			}
		default:
			varMap[i] = p.AddVar(il.Var{
				Name:      prefix + "_" + cv.Name,
				Type:      cv.Type,
				Class:     il.ClassLocal,
				AddrTaken: cv.AddrTaken,
			})
		}
	}

	endLabel := p.NewLabel(prefix + "end")

	// Bind arguments to parameter temporaries (the profusion of
	// temporaries §9 shows; copy propagation cleans them up).
	var out []il.Stmt
	for i, arg := range call.Args {
		pid := varMap[callee.Params[i]]
		out = append(out, &il.Assign{Dst: il.Ref(pid, p.Vars[pid].Type), Src: il.CloneExpr(arg)})
	}

	// Clone and rewrite the body.
	body := il.CloneStmts(callee.Body)
	body = rewriteInlined(body, varMap, prefix, call.Dst, endLabel, p)
	out = append(out, body...)
	out = append(out, &il.Label{Name: endLabel})

	// Report the expansion. When the cloned body carries its own source
	// position (unit-local callees, version-2 catalogs), the remark points
	// there and names the call site via InlinedFrom; otherwise it sits on
	// the call itself.
	ed := diag.Diagnostic{
		Severity: diag.SevRemark, Code: diag.InlineExpanded,
		Pos: call.Pos, Proc: p.Name, Pass: "inline",
		Args:    map[string]string{"callee": call.Callee},
		Message: fmt.Sprintf("call to %s expanded inline (§7)", call.Callee),
	}
	if bp := firstStmtPos(body); bp.Line != 0 && bp != call.Pos {
		site := call.Pos
		ed.Pos = bp
		ed.InlinedFrom = &site
	}
	in.report(ed)

	// Compiler-manufactured and position-less cloned statements inherit
	// the call site, so no later diagnostic prints a zero position.
	il.StampStmts(out, call.Pos)

	// Mark the callee in the stack while expanding nested calls inside
	// the clone (mutual recursion guard).
	stack[call.Callee] = true
	nested := 0
	out = in.expandList(p, out, stack, &nested)
	delete(stack, call.Callee)
	return out, true
}

// rewriteInlined renames variables and labels and turns returns into
// result assignment + goto end.
func rewriteInlined(body []il.Stmt, varMap []il.VarID, prefix string, dst il.VarID, endLabel string, p *il.Proc) []il.Stmt {
	mapExpr := func(e il.Expr) il.Expr {
		return il.RewriteExpr(e, func(x il.Expr) il.Expr {
			switch n := x.(type) {
			case *il.VarRef:
				return il.Ref(varMap[n.ID], n.T)
			case *il.AddrOf:
				return &il.AddrOf{ID: varMap[n.ID], T: n.T}
			}
			return x
		})
	}
	var rewrite func(list []il.Stmt) []il.Stmt
	rewrite = func(list []il.Stmt) []il.Stmt {
		out := make([]il.Stmt, 0, len(list))
		for _, s := range list {
			switch n := s.(type) {
			case *il.Assign:
				if ld, ok := n.Dst.(*il.Load); ok {
					n.Dst = &il.Load{Addr: mapExpr(ld.Addr), T: ld.T, Volatile: ld.Volatile}
				} else if v, ok := n.Dst.(*il.VarRef); ok {
					n.Dst = il.Ref(varMap[v.ID], v.T)
				}
				n.Src = mapExpr(n.Src)
				out = append(out, n)
			case *il.Call:
				if n.Dst != il.NoVar {
					n.Dst = varMap[n.Dst]
				}
				if n.FunPtr != nil {
					n.FunPtr = mapExpr(n.FunPtr)
				}
				for i := range n.Args {
					n.Args[i] = mapExpr(n.Args[i])
				}
				out = append(out, n)
			case *il.If:
				n.Cond = mapExpr(n.Cond)
				n.Then = rewrite(n.Then)
				n.Else = rewrite(n.Else)
				out = append(out, n)
			case *il.While:
				n.Cond = mapExpr(n.Cond)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.DoLoop:
				n.IV = varMap[n.IV]
				n.Init = mapExpr(n.Init)
				n.Limit = mapExpr(n.Limit)
				n.Step = mapExpr(n.Step)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.DoParallel:
				n.IV = varMap[n.IV]
				n.Init = mapExpr(n.Init)
				n.Limit = mapExpr(n.Limit)
				n.Step = mapExpr(n.Step)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.VectorAssign:
				n.DstBase = mapExpr(n.DstBase)
				n.DstStride = mapExpr(n.DstStride)
				n.Len = mapExpr(n.Len)
				n.RHS = mapExpr(n.RHS)
				out = append(out, n)
			case *il.Goto:
				out = append(out, &il.Goto{Target: prefix + n.Target})
			case *il.Label:
				out = append(out, &il.Label{Name: prefix + n.Name})
			case *il.Return:
				if n.Val != nil && dst != il.NoVar {
					out = append(out, &il.Assign{Dst: il.Ref(dst, p.Vars[dst].Type), Src: mapExpr(n.Val)})
				} else if n.Val != nil {
					// Result discarded: still evaluate side-effect-free
					// value? Values are pure in this IL; drop it.
					_ = n
				}
				out = append(out, &il.Goto{Target: endLabel})
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return rewrite(body)
}

// firstStmtPos returns the first nonzero statement position in list.
func firstStmtPos(list []il.Stmt) (pos token.Pos) {
	il.WalkStmts(list, func(s il.Stmt) bool {
		if q := il.StmtPos(s); q.Line != 0 {
			pos = q
			return false
		}
		return true
	})
	return pos
}
