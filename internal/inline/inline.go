// Package inline implements §7's inline expansion. Procedures are expanded
// at call sites from the current translation unit or from catalogs —
// serialized libraries of parsed procedures (see catalog.go) — with
// parameter binding through temporaries, label and variable renaming, a
// recursion guard, and static-variable export. The optimizations that make
// inlined code fast (constant propagation into the guards, unreachable and
// dead code elimination — §8) live in package opt.
package inline

import (
	"fmt"

	"repro/internal/il"
)

// Config controls expansion policy.
type Config struct {
	// MaxStmts bounds the callee size considered inlinable.
	MaxStmts int
	// MaxDepth bounds nested expansion (recursion guard backstop).
	MaxDepth int
	// Only, when non-empty, restricts inlining to the named procedures.
	Only map[string]bool
}

// DefaultConfig matches the compiler's defaults: small static functions
// and library kernels expand; anything over 200 statements does not.
func DefaultConfig() Config { return Config{MaxStmts: 200, MaxDepth: 8} }

// Stats reports what expansion did, in the shape the pass pipeline's
// report expects.
type Stats struct {
	// CallsExpanded counts call sites replaced by callee bodies.
	CallsExpanded int `json:"calls_expanded"`
}

// Add folds another unit's stats into s.
func (s *Stats) Add(o Stats) { s.CallsExpanded += o.CallsExpanded }

// Inliner expands calls within one program, drawing callee bodies from the
// program itself and from attached catalogs.
type Inliner struct {
	Prog    *il.Program
	Catalog map[string]*il.Proc
	Cfg     Config

	// Expanded counts call sites expanded (for tests and reports).
	Expanded int
	seq      int
}

// New returns an inliner over prog.
func New(prog *il.Program, cfg Config) *Inliner {
	return &Inliner{Prog: prog, Catalog: map[string]*il.Proc{}, Cfg: cfg}
}

// AddCatalog attaches a library catalog; its procedures become candidates,
// and its globals (including exported statics, §7) are merged into the
// program.
func (in *Inliner) AddCatalog(c *Catalog) {
	for _, p := range c.Procs {
		in.Catalog[p.Name] = p
	}
	for _, g := range c.Globals {
		in.Prog.AddGlobal(g)
	}
}

// lookup finds a callee body: unit procedures shadow catalog entries.
func (in *Inliner) lookup(name string) *il.Proc {
	if p := in.Prog.Proc(name); p != nil && len(p.Body) > 0 {
		return p
	}
	return in.Catalog[name]
}

// ExpandProgram expands calls in every procedure.
func (in *Inliner) ExpandProgram() int {
	n := 0
	for _, p := range in.Prog.Procs {
		n += in.ExpandProc(p)
	}
	return n
}

// ExpandProc expands eligible calls in p until none remain or the depth
// bound hits. Calls introduced by expansion are themselves candidates
// (inlined functions may inline other functions, §7); the stack of names
// being expanded guards against recursion.
func (in *Inliner) ExpandProc(p *il.Proc) int {
	count := 0
	for depth := 0; depth < in.Cfg.MaxDepth; depth++ {
		n := 0
		p.Body = in.expandList(p, p.Body, map[string]bool{p.Name: true}, &n)
		count += n
		if n == 0 {
			break
		}
	}
	in.Expanded += count
	return count
}

func (in *Inliner) expandList(p *il.Proc, list []il.Stmt, stack map[string]bool, n *int) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch st := s.(type) {
		case *il.Call:
			if repl, ok := in.expandCall(p, st, stack); ok {
				*n++
				out = append(out, repl...)
				continue
			}
		case *il.If:
			st.Then = in.expandList(p, st.Then, stack, n)
			st.Else = in.expandList(p, st.Else, stack, n)
		case *il.While:
			st.Body = in.expandList(p, st.Body, stack, n)
		case *il.DoLoop:
			st.Body = in.expandList(p, st.Body, stack, n)
		case *il.DoParallel:
			st.Body = in.expandList(p, st.Body, stack, n)
		}
		out = append(out, s)
	}
	return out
}

// Inlinable reports whether the named procedure could be expanded (used by
// diagnostics and tests).
func (in *Inliner) Inlinable(name string) bool {
	callee := in.lookup(name)
	if callee == nil || callee.Variadic {
		return false
	}
	if in.Cfg.MaxStmts > 0 && il.CountStmts(callee.Body) > in.Cfg.MaxStmts {
		return false
	}
	if len(in.Cfg.Only) > 0 && !in.Cfg.Only[name] {
		return false
	}
	return true
}

// expandCall replaces one call with the callee's renamed body.
func (in *Inliner) expandCall(p *il.Proc, call *il.Call, stack map[string]bool) ([]il.Stmt, bool) {
	if call.FunPtr != nil || call.Callee == "" {
		return nil, false // indirect calls hide the callee
	}
	if stack[call.Callee] || !in.Inlinable(call.Callee) {
		return nil, false
	}
	callee := in.lookup(call.Callee)
	if len(call.Args) != len(callee.Params) {
		return nil, false // old-style mismatch; leave the call alone
	}

	in.seq++
	prefix := fmt.Sprintf("in%d", in.seq)

	// Map callee variables into the caller.
	varMap := make([]il.VarID, len(callee.Vars))
	for i := range callee.Vars {
		cv := callee.Vars[i]
		switch cv.Class {
		case il.ClassGlobal, il.ClassStatic:
			// Same program-level storage; reuse or add a caller entry.
			// Statics were exported to globals when the callee was built
			// (§7), so the caller references them by name.
			if id := p.LookupVar(cv.Name); id != il.NoVar && p.Vars[id].Class == cv.Class {
				varMap[i] = id
			} else {
				varMap[i] = p.AddVar(il.Var{Name: cv.Name, Type: cv.Type, Class: cv.Class, AddrTaken: cv.AddrTaken})
			}
		default:
			varMap[i] = p.AddVar(il.Var{
				Name:      prefix + "_" + cv.Name,
				Type:      cv.Type,
				Class:     il.ClassLocal,
				AddrTaken: cv.AddrTaken,
			})
		}
	}

	endLabel := p.NewLabel(prefix + "end")

	// Bind arguments to parameter temporaries (the profusion of
	// temporaries §9 shows; copy propagation cleans them up).
	var out []il.Stmt
	for i, arg := range call.Args {
		pid := varMap[callee.Params[i]]
		out = append(out, &il.Assign{Dst: il.Ref(pid, p.Vars[pid].Type), Src: il.CloneExpr(arg)})
	}

	// Clone and rewrite the body.
	body := il.CloneStmts(callee.Body)
	body = rewriteInlined(body, varMap, prefix, call.Dst, endLabel, p)
	out = append(out, body...)
	out = append(out, &il.Label{Name: endLabel})

	// Mark the callee in the stack while expanding nested calls inside
	// the clone (mutual recursion guard).
	stack[call.Callee] = true
	nested := 0
	out = in.expandList(p, out, stack, &nested)
	delete(stack, call.Callee)
	return out, true
}

// rewriteInlined renames variables and labels and turns returns into
// result assignment + goto end.
func rewriteInlined(body []il.Stmt, varMap []il.VarID, prefix string, dst il.VarID, endLabel string, p *il.Proc) []il.Stmt {
	mapExpr := func(e il.Expr) il.Expr {
		return il.RewriteExpr(e, func(x il.Expr) il.Expr {
			switch n := x.(type) {
			case *il.VarRef:
				return il.Ref(varMap[n.ID], n.T)
			case *il.AddrOf:
				return &il.AddrOf{ID: varMap[n.ID], T: n.T}
			}
			return x
		})
	}
	var rewrite func(list []il.Stmt) []il.Stmt
	rewrite = func(list []il.Stmt) []il.Stmt {
		out := make([]il.Stmt, 0, len(list))
		for _, s := range list {
			switch n := s.(type) {
			case *il.Assign:
				if ld, ok := n.Dst.(*il.Load); ok {
					n.Dst = &il.Load{Addr: mapExpr(ld.Addr), T: ld.T, Volatile: ld.Volatile}
				} else if v, ok := n.Dst.(*il.VarRef); ok {
					n.Dst = il.Ref(varMap[v.ID], v.T)
				}
				n.Src = mapExpr(n.Src)
				out = append(out, n)
			case *il.Call:
				if n.Dst != il.NoVar {
					n.Dst = varMap[n.Dst]
				}
				if n.FunPtr != nil {
					n.FunPtr = mapExpr(n.FunPtr)
				}
				for i := range n.Args {
					n.Args[i] = mapExpr(n.Args[i])
				}
				out = append(out, n)
			case *il.If:
				n.Cond = mapExpr(n.Cond)
				n.Then = rewrite(n.Then)
				n.Else = rewrite(n.Else)
				out = append(out, n)
			case *il.While:
				n.Cond = mapExpr(n.Cond)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.DoLoop:
				n.IV = varMap[n.IV]
				n.Init = mapExpr(n.Init)
				n.Limit = mapExpr(n.Limit)
				n.Step = mapExpr(n.Step)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.DoParallel:
				n.IV = varMap[n.IV]
				n.Init = mapExpr(n.Init)
				n.Limit = mapExpr(n.Limit)
				n.Step = mapExpr(n.Step)
				n.Body = rewrite(n.Body)
				out = append(out, n)
			case *il.VectorAssign:
				n.DstBase = mapExpr(n.DstBase)
				n.DstStride = mapExpr(n.DstStride)
				n.Len = mapExpr(n.Len)
				n.RHS = mapExpr(n.RHS)
				out = append(out, n)
			case *il.Goto:
				out = append(out, &il.Goto{Target: prefix + n.Target})
			case *il.Label:
				out = append(out, &il.Label{Name: prefix + n.Name})
			case *il.Return:
				if n.Val != nil && dst != il.NoVar {
					out = append(out, &il.Assign{Dst: il.Ref(dst, p.Vars[dst].Type), Src: mapExpr(n.Val)})
				} else if n.Val != nil {
					// Result discarded: still evaluate side-effect-free
					// value? Values are pure in this IL; drop it.
					_ = n
				}
				out = append(out, &il.Goto{Target: endLabel})
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return rewrite(body)
}
