package inline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sema"
)

// frontEnd lowers C source to IL for catalog construction; testing.TB so
// both tests and the fuzz seed builder can use it.
func frontEnd(t testing.TB, src string) *il.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// catalogBytes compiles a small library and serializes its catalog — the
// well-formed seed the robustness tests corrupt.
func catalogBytes(t testing.TB) []byte {
	t.Helper()
	src := `
struct pt { int x; int y; };
int gsum;
int norm2(struct pt *p) { return p->x * p->x + p->y * p->y; }
float axpy(float a, float x, float y) { return a * x + y; }
void accum(int *v, int n) { int i; for (i = 0; i < n; i++) gsum = gsum + v[i]; }
`
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, BuildCatalog(frontEnd(t, src))); err != nil {
		t.Fatalf("write catalog: %v", err)
	}
	return buf.Bytes()
}

func TestReadCatalogRoundTrip(t *testing.T) {
	raw := catalogBytes(t)
	c, err := ReadCatalog(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(c.Procs) != 3 || len(c.Globals) != 1 {
		t.Fatalf("got %d procs, %d globals", len(c.Procs), len(c.Globals))
	}
	fp1, err := c.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	// Round-tripping must preserve the content identity.
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, c); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	c2, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	fp2, err := c2.Fingerprint()
	if err != nil {
		t.Fatalf("refingerprint: %v", err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable across round trip: %s vs %s", fp1, fp2)
	}
}

// TestReadCatalogAggregateLayout pins a decode-ordering fix: typeID
// interns a struct before its field types, so the decoder must not
// recompute the struct's layout until the whole table is read — doing it
// mid-table laid structs out with zero-sized shell fields.
func TestReadCatalogAggregateLayout(t *testing.T) {
	src := `
struct q { char c; double d; int a[3]; };
int use(struct q *p) { return p->a[2]; }
`
	prog := frontEnd(t, src)
	var want *ctype.Type
	for i := range prog.Procs[0].Vars {
		ty := prog.Procs[0].Vars[i].Type
		if ty != nil && ty.Kind == ctype.Pointer && ty.Elem.Kind == ctype.Struct {
			want = ty.Elem
		}
	}
	if want == nil {
		t.Fatal("no pointer-to-struct parameter found")
	}
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, BuildCatalog(prog)); err != nil {
		t.Fatalf("write: %v", err)
	}
	c, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var got *ctype.Type
	for i := range c.Procs[0].Vars {
		ty := c.Procs[0].Vars[i].Type
		if ty != nil && ty.Kind == ctype.Pointer && ty.Elem.Kind == ctype.Struct {
			got = ty.Elem
		}
	}
	if got == nil {
		t.Fatal("decoded proc lost its pointer-to-struct parameter")
	}
	if got.Size() != want.Size() {
		t.Errorf("struct size %d, want %d", got.Size(), want.Size())
	}
	for i := range want.Fields {
		if got.Fields[i].Offset != want.Fields[i].Offset {
			t.Errorf("field %s offset %d, want %d",
				want.Fields[i].Name, got.Fields[i].Offset, want.Fields[i].Offset)
		}
	}
}

func TestReadCatalogBadMagic(t *testing.T) {
	_, err := ReadCatalog(strings.NewReader("NOTACATALOGDATA"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
	// Too short for even the magic: reported as truncation, with counts.
	_, err = ReadCatalog(strings.NewReader("TIT"))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated error, got %v", err)
	}
}

func TestReadCatalogUnsupportedVersion(t *testing.T) {
	raw := append([]byte(catalogMagic), 99) // varint(99) is one byte
	_, err := ReadCatalog(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("want error for version 99")
	}
	msg := err.Error()
	if !strings.Contains(msg, "99") || !strings.Contains(msg, "versions 1 through 2") {
		t.Fatalf("version error should name found and supported versions, got %q", msg)
	}
}

func TestReadCatalogTruncated(t *testing.T) {
	raw := catalogBytes(t)
	// Cut the stream at several depths: inside the type table, inside the
	// globals, inside a procedure body. Every prefix must produce a
	// descriptive error, never a panic or a silent success.
	for _, n := range []int{len(catalogMagic), len(catalogMagic) + 1, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		_, err := ReadCatalog(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Errorf("prefix of %d bytes: want error, got nil", n)
			continue
		}
		if !strings.Contains(err.Error(), "catalog:") {
			t.Errorf("prefix of %d bytes: error %q lacks catalog: prefix", n, err)
		}
	}
}

// FuzzReadCatalog asserts the decoder never panics: catalogs arrive over
// HTTP in the compile service, so arbitrary bytes must fail cleanly.
func FuzzReadCatalog(f *testing.F) {
	raw := catalogBytes(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])        // truncated mid-stream
	f.Add(raw[:len(catalogMagic)]) // header only
	f.Add([]byte("TITANCAT"))
	f.Add([]byte("NOTACATA"))
	f.Add(append([]byte(catalogMagic), 99)) // future version
	corrupt := bytes.Clone(raw)
	for i := len(catalogMagic) + 1; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0x5a
	}
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCatalog(bytes.NewReader(data))
		if err == nil && c == nil {
			t.Fatal("nil catalog with nil error")
		}
		if err == nil {
			// Whatever decoded must re-serialize (fingerprinting relies
			// on it) — and must not panic doing so.
			if _, ferr := c.Fingerprint(); ferr != nil {
				t.Skipf("decoded catalog does not re-serialize: %v", ferr)
			}
		}
	})
}
