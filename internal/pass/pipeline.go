package pass

import (
	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/inline"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/strength"
	"repro/internal/vector"
)

// BuildPipeline returns the mid-end pipeline for opts as an explicit
// ordered slice. This function is the single place the paper-mandated
// phase order is written down:
//
//	inline expansion (§7)
//	→ scalar optimization (§5.2: while→DO right after use-def chains,
//	  then constprop, ivsub, copyprop, DCE to a fixpoint)
//	→ loop-nest parallelization (outer level first, §2's
//	  outer-parallel/inner-vector pattern)
//	→ vectorization (§5)
//	→ do-parallel conversion (§2)
//	→ linked-list parallelization (§10 extension)
//	→ strength reduction on the serial residue (§6: after vectorization,
//	  off the dependence graph) → one scalar cleanup round for the
//	  preheader temporaries it introduces.
func BuildPipeline(opts Options) []Pass {
	dopts := depend.Options{NoAlias: opts.NoAlias}
	var ps []Pass
	if opts.Inline {
		ps = append(ps, &inlinePass{opts: opts})
	}
	if opts.OptLevel >= 1 {
		ps = append(ps, &scalarPass{name: PassScalar, opts: scalarOptions(opts)})
	}
	if opts.Parallelize {
		// Loop nests parallelize at the outer level before the vectorizer
		// rewrites the inner loops (§2's outer-parallel/inner-vector
		// pattern).
		ps = append(ps, &nestPass{})
	}
	if opts.Vectorize {
		// If-conversion flattens guarded stores to predicated statements so
		// the vectorizer can judge them off the dependence graph and emit
		// masked strips when legal.
		ps = append(ps, &ifconvertPass{})
		ps = append(ps, &vectorPass{cfg: vector.Config{
			VL:       opts.VL,
			Parallel: opts.Parallelize,
			Depend:   dopts,
		}})
	}
	if opts.Parallelize {
		ps = append(ps, &parallelPass{dopts: dopts})
	}
	if opts.ListParallel {
		ps = append(ps, &listPass{})
	}
	if opts.StrengthReduce && opts.OptLevel >= 1 {
		ps = append(ps,
			&strengthPass{cfg: strength.Config{
				Depend:      dopts,
				NoPromotion: opts.NoStrengthPromotion,
				NoReduction: opts.NoStrengthReduction,
			}},
			// Strength reduction introduces preheader temporaries; one
			// more scalar round tidies them.
			&scalarPass{name: PassCleanup, opts: opt.Options{IVSub: false}},
		)
	}
	return ps
}

// scalarOptions derives the scalar optimizer's configuration from the
// compile options (the §6 rule: induction-variable substitution only pays
// off when vectorization or strength reduction consumes it).
func scalarOptions(opts Options) opt.Options {
	return opt.Options{
		IVSub:       !opts.DisableIVSub && (opts.Vectorize || opts.StrengthReduce || opts.ForceIVSub),
		SimpleIVSub: opts.SimpleIVSub,
		NoCopyProp:  opts.NoCopyProp,
	}
}

// ------------------------------------------------------------- adapters

// inlinePass expands calls, whole-program (the inliner rewrites callers
// from shared callee bodies and merges catalog globals, so it stays
// serial).
type inlinePass struct{ opts Options }

func (*inlinePass) Name() string { return PassInline }

func (ip *inlinePass) Run(prog *il.Program, ctx *Context) error {
	cfg := inline.DefaultConfig()
	if ip.opts.InlineConfig != nil {
		cfg = *ip.opts.InlineConfig
	}
	in := inline.New(prog, cfg)
	in.Diags = ctx.Diags
	for _, c := range ip.opts.Catalogs {
		in.AddCatalog(c)
	}
	ctx.Report.Inline.Add(inline.Stats{CallsExpanded: in.ExpandProgram()})
	return nil
}

// scalarPass runs the §5.2 scalar fixpoint per procedure; it appears
// twice in a full pipeline (scalarize, then cleanup after strength
// reduction).
type scalarPass struct {
	name string
	opts opt.Options
}

func (sp *scalarPass) Name() string { return sp.name }

func (sp *scalarPass) Run(prog *il.Program, ctx *Context) error {
	if ctx.Report.Scalar == nil {
		ctx.Report.Scalar = opt.Counts{}
	}
	for _, c := range forEachProc(prog, ctx.workers(), func(p *il.Proc) opt.Counts {
		return opt.OptimizeDiag(p, sp.opts, ctx.Analysis, ctx.Diags)
	}) {
		ctx.Report.Scalar.Add(c)
	}
	return nil
}

// nestPass parallelizes the outer loops of independent 2-level nests.
type nestPass struct{}

func (*nestPass) Name() string { return PassNest }

func (*nestPass) Run(prog *il.Program, ctx *Context) error {
	for _, st := range forEachProc(prog, ctx.workers(), func(p *il.Proc) parallel.NestStats {
		return parallel.ParallelizeNestsDiag(p, ctx.Diags)
	}) {
		ctx.Report.Nest.Add(st)
	}
	return nil
}

// ifconvertPass flattens single-level conditionals in countable DO bodies
// into predicated stores, ahead of the vectorizer.
type ifconvertPass struct{}

func (*ifconvertPass) Name() string { return PassIfConvert }

func (*ifconvertPass) Run(prog *il.Program, ctx *Context) error {
	for _, st := range forEachProc(prog, ctx.workers(), func(p *il.Proc) vector.IfConvStats {
		return vector.IfConvertProc(p, ctx.Schedules, ctx.Diags)
	}) {
		ctx.Report.IfConv.Add(st)
	}
	return nil
}

// vectorPass strip-mines and vectorizes innermost DO loops.
type vectorPass struct{ cfg vector.Config }

func (*vectorPass) Name() string { return PassVectorize }

func (vp *vectorPass) Run(prog *il.Program, ctx *Context) error {
	cfg := vp.cfg
	cfg.Analysis = ctx.Analysis
	cfg.Diags = ctx.Diags
	cfg.Schedules = ctx.Schedules
	for _, st := range forEachProc(prog, ctx.workers(), func(p *il.Proc) vector.Stats {
		return vector.VectorizeProc(p, cfg)
	}) {
		ctx.Report.Vector.Add(st)
	}
	return nil
}

// parallelPass converts dependence-free serial DO loops to do-parallel.
type parallelPass struct{ dopts depend.Options }

func (*parallelPass) Name() string { return PassParallelize }

func (pp *parallelPass) Run(prog *il.Program, ctx *Context) error {
	for _, st := range forEachProc(prog, ctx.workers(), func(p *il.Proc) parallel.Stats {
		return parallel.ParallelizeProcSched(p, pp.dopts, ctx.Analysis, ctx.Diags, ctx.Schedules)
	}) {
		ctx.Report.Parallel.Add(st)
	}
	return nil
}

// listPass spreads linked-list while loops across processors. It
// allocates shared pointer-buffer globals on the program, so it runs the
// procedures serially (workers=1) to keep prog.Globals race-free and its
// layout deterministic.
type listPass struct{}

func (*listPass) Name() string { return PassListParallel }

func (*listPass) Run(prog *il.Program, ctx *Context) error {
	for _, st := range forEachProc(prog, 1, func(p *il.Proc) parallel.ListStats {
		return parallel.ParallelizeListLoopsDiag(prog, p, ctx.Diags)
	}) {
		ctx.Report.List.Add(st)
	}
	return nil
}

// strengthPass runs §6's dependence-driven loop optimization on the
// serial residue.
type strengthPass struct{ cfg strength.Config }

func (*strengthPass) Name() string { return PassStrength }

func (sp *strengthPass) Run(prog *il.Program, ctx *Context) error {
	cfg := sp.cfg
	cfg.Analysis = ctx.Analysis
	cfg.Diags = ctx.Diags
	cfg.Schedules = ctx.Schedules
	for _, st := range forEachProc(prog, ctx.workers(), func(p *il.Proc) strength.Stats {
		return strength.OptimizeLoops(p, cfg)
	}) {
		ctx.Report.Strength.Add(st)
	}
	return nil
}
