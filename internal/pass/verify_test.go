package pass

import (
	"strings"
	"testing"

	"repro/internal/ctype"
	"repro/internal/il"
)

// newProc returns a proc with nvars int temporaries.
func newProc(name string, nvars int) *il.Proc {
	p := il.NewProc(name, ctype.VoidType)
	for i := 0; i < nvars; i++ {
		p.NewTemp(ctype.IntType)
	}
	return p
}

func progOf(procs ...*il.Proc) *il.Program {
	return &il.Program{Procs: procs}
}

func ci(v int64) *il.ConstInt { return &il.ConstInt{Val: v, T: ctype.IntType} }

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("verifier accepted corrupt IL, want error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	p := newProc("f", 2)
	p.Body = []il.Stmt{
		&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: ci(1)},
		&il.DoLoop{IV: 1, Init: ci(0), Limit: ci(9), Step: ci(1), Body: []il.Stmt{
			&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: &il.VarRef{ID: 1, T: ctype.IntType}},
		}},
		&il.Return{},
	}
	if err := Verify(progOf(p), false); err != nil {
		t.Fatalf("well-formed IL rejected: %v", err)
	}
}

// The seeded-corruption case the issue calls out: a reference to a temp ID
// that no variable-table entry defines.
func TestVerifyRejectsUndefinedTemp(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{
		&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: &il.VarRef{ID: 99, T: ctype.IntType}},
	}
	wantErr(t, Verify(progOf(p), false), "undefined variable id v99")
}

func TestVerifyRejectsUndefinedLoopIV(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{
		&il.DoLoop{IV: 42, Init: ci(0), Limit: ci(9), Step: ci(1)},
	}
	wantErr(t, Verify(progOf(p), false), "iv v42 out of range")
}

// The other seeded-corruption case: a VectorAssign before the vectorizer
// slot has run.
func TestVerifyRejectsMisplacedVectorAssign(t *testing.T) {
	p := newProc("f", 1)
	va := &il.VectorAssign{
		DstBase:   ci(0),
		DstStride: ci(4),
		Len:       ci(8),
		Elem:      ctype.FloatType,
		RHS:       &il.VecRef{Base: ci(0), Stride: ci(4), T: ctype.FloatType},
	}
	p.Body = []il.Stmt{va}
	wantErr(t, Verify(progOf(p), false), "vector statement")
	if err := Verify(progOf(p), true); err != nil {
		t.Fatalf("VectorAssign after the vectorizer slot rejected: %v", err)
	}
}

func TestVerifyRejectsVecRefOperandBeforeVectorizer(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{
		&il.Assign{
			Dst: &il.VarRef{ID: 0, T: ctype.IntType},
			Src: &il.VecRef{Base: ci(0), Stride: ci(4), T: ctype.IntType},
		},
	}
	wantErr(t, Verify(progOf(p), false), "vector operand")
}

func TestVerifyRejectsGotoUndefinedLabel(t *testing.T) {
	p := newProc("f", 0)
	p.Body = []il.Stmt{&il.Goto{Target: ".nowhere"}}
	wantErr(t, Verify(progOf(p), false), "undefined label")
}

func TestVerifyRejectsDuplicateLabel(t *testing.T) {
	p := newProc("f", 0)
	p.Body = []il.Stmt{&il.Label{Name: ".L1"}, &il.Label{Name: ".L1"}}
	wantErr(t, Verify(progOf(p), false), "defined twice")
}

func TestVerifyRejectsIVAssignedInBody(t *testing.T) {
	p := newProc("f", 2)
	p.Body = []il.Stmt{
		&il.DoLoop{IV: 0, Init: ci(0), Limit: ci(9), Step: ci(1), Body: []il.Stmt{
			&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: ci(5)},
		}},
	}
	wantErr(t, Verify(progOf(p), false), "assigns the induction variable")
}

func TestVerifyRejectsVolatileLoopBound(t *testing.T) {
	p := newProc("f", 2)
	p.Body = []il.Stmt{
		&il.DoLoop{IV: 0, Init: ci(0),
			Limit: &il.Load{Addr: &il.VarRef{ID: 1, T: ctype.PointerTo(ctype.IntType)}, T: ctype.IntType, Volatile: true},
			Step:  ci(1)},
	}
	wantErr(t, Verify(progOf(p), false), "impure")
}

func TestVerifyRejectsBadCall(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{&il.Call{Dst: 7, Callee: "g", T: ctype.IntType}}
	wantErr(t, Verify(progOf(p), false), "out of range")

	p2 := newProc("f", 1)
	p2.Body = []il.Stmt{&il.Call{Dst: il.NoVar, T: ctype.VoidType}}
	wantErr(t, Verify(progOf(p2), false), "neither callee name nor function pointer")
}

func TestVerifyRejectsBadParamID(t *testing.T) {
	p := newProc("f", 1)
	p.Params = []il.VarID{5}
	wantErr(t, Verify(progOf(p), false), "parameter id v5 out of range")
}

func TestVerifyNamesProc(t *testing.T) {
	p := newProc("offender", 0)
	p.Body = []il.Stmt{&il.Goto{Target: ".x"}}
	wantErr(t, Verify(progOf(newProc("fine", 0), p), false), "proc offender")
}
