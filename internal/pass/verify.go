package pass

import (
	"fmt"

	"repro/internal/il"
)

// Verify checks the structural invariants the mid-end phases rely on and
// returns the first violation found, or nil. allowVector says whether the
// vectorizer slot has run: before it, VectorAssign statements and VecRef
// operands are IL corruption (the §5.2/§6 order puts all vector forms
// after vectorization).
//
// Invariants checked, per procedure:
//   - every referenced variable ID (VarRef, AddrOf, call result, loop IV,
//     parameter) indexes the procedure's variable table;
//   - assignment destinations are a scalar VarRef or a Load (store);
//   - calls name a callee or carry a function-pointer expression;
//   - labels are unique and every goto targets a defined label;
//   - DoLoop/DoParallel bounds are pure: no volatile loads (which may not
//     be re-evaluated or reordered) and no vector operands; the body never
//     assigns the induction variable (the while→DO conversion guarantees
//     this and later phases depend on it);
//   - vector forms only appear when allowVector is true.
func Verify(prog *il.Program, allowVector bool) error {
	for _, p := range prog.Procs {
		if err := verifyProc(p, allowVector); err != nil {
			return fmt.Errorf("proc %s: %w", p.Name, err)
		}
	}
	return nil
}

func verifyProc(p *il.Proc, allowVector bool) error {
	for _, id := range p.Params {
		if int(id) < 0 || int(id) >= len(p.Vars) {
			return fmt.Errorf("parameter id v%d out of range (have %d vars)", id, len(p.Vars))
		}
		if p.Vars[id].Class != il.ClassParam {
			return fmt.Errorf("parameter id v%d has class %s", id, p.Vars[id].Class)
		}
	}

	// Pass 1: collect labels (goto may jump forward).
	labels := map[string]bool{}
	var err error
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if l, ok := s.(*il.Label); ok {
			if labels[l.Name] {
				err = firstErr(err, fmt.Errorf("label %s defined twice", l.Name))
			}
			labels[l.Name] = true
		}
		return true
	})
	if err != nil {
		return err
	}

	// Sync markers are only meaningful directly inside a DoParallel that
	// carries a Sync annotation: codegen needs the region's cell registers
	// and induction variable in scope to lower them to post/wait.
	okSync := map[il.Stmt]bool{}
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if dp, ok := s.(*il.DoParallel); ok && dp.Sync != nil {
			for _, b := range dp.Body {
				switch b.(type) {
				case *il.SyncPost, *il.SyncWait:
					okSync[b] = true
				}
			}
		}
		return true
	})

	// Pass 2: statement and expression invariants.
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if err != nil {
			return false
		}
		switch n := s.(type) {
		case *il.Assign:
			switch n.Dst.(type) {
			case *il.VarRef, *il.Load:
			default:
				err = fmt.Errorf("assignment destination %s is neither variable nor store", n.Dst)
				return false
			}
		case *il.PredAssign:
			// Predicated stores are restricted to memory destinations so
			// scalar dataflow never depends on a predicate.
			if _, ok := n.Dst.(*il.Load); !ok {
				err = fmt.Errorf("predicated assignment destination %s is not a store", n.Dst)
				return false
			}
		case *il.Call:
			if n.Dst != il.NoVar && (int(n.Dst) < 0 || int(n.Dst) >= len(p.Vars)) {
				err = fmt.Errorf("call result id v%d out of range in %q", n.Dst, s)
				return false
			}
			if n.Callee == "" && n.FunPtr == nil {
				err = fmt.Errorf("call with neither callee name nor function pointer")
				return false
			}
		case *il.Goto:
			if !labels[n.Target] {
				err = fmt.Errorf("goto %s targets an undefined label", n.Target)
				return false
			}
		case *il.DoLoop:
			err = verifyCountedLoop(p, n.IV, n.Init, n.Limit, n.Step, n.Body, s)
		case *il.DoParallel:
			err = verifyCountedLoop(p, n.IV, n.Init, n.Limit, n.Step, n.Body, s)
			if err == nil && n.Sync != nil {
				if n.Sync.Distance < 1 {
					err = fmt.Errorf("DOACROSS loop %q has non-positive sync distance %d", s, n.Sync.Distance)
				} else if n.Sync.Stride < 1 {
					err = fmt.Errorf("DOACROSS loop %q has non-positive sync stride %d", s, n.Sync.Stride)
				}
				for _, b := range n.Body {
					if w, ok := b.(*il.SyncWait); ok && err == nil && w.Distance != n.Sync.Distance {
						err = fmt.Errorf("sync.wait distance %d disagrees with loop sync distance %d in %q",
							w.Distance, n.Sync.Distance, s)
					}
				}
			}
		case *il.SyncPost:
			if !okSync[s] {
				err = fmt.Errorf("sync.post at offset %d outside a DOACROSS parallel region", n.Pos)
				return false
			}
		case *il.SyncWait:
			if !okSync[s] {
				err = fmt.Errorf("sync.wait(%d) at offset %d outside a DOACROSS parallel region", n.Distance, n.Pos)
				return false
			}
		case *il.VectorAssign:
			if !allowVector {
				err = fmt.Errorf("vector statement %q before the vectorizer slot", s)
				return false
			}
		}
		if err != nil {
			return false
		}
		il.StmtExprs(s, func(e il.Expr) {
			err = firstErr(err, verifyExpr(p, e, allowVector, s))
		})
		return err == nil
	})
	return err
}

// verifyCountedLoop checks the invariants shared by DoLoop and DoParallel.
func verifyCountedLoop(p *il.Proc, iv il.VarID, init, limit, step il.Expr, body []il.Stmt, s il.Stmt) error {
	if int(iv) < 0 || int(iv) >= len(p.Vars) {
		return fmt.Errorf("loop iv v%d out of range in %q", iv, s)
	}
	for _, bound := range []il.Expr{init, limit, step} {
		var err error
		il.WalkExpr(bound, func(e il.Expr) bool {
			switch n := e.(type) {
			case *il.Load:
				if n.Volatile {
					err = firstErr(err, fmt.Errorf("loop bound %s is impure (volatile load) in %q", bound, s))
				}
			case *il.VecRef:
				err = firstErr(err, fmt.Errorf("loop bound %s contains a vector operand in %q", bound, s))
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	var err error
	il.WalkStmts(body, func(b il.Stmt) bool {
		if il.DefinedVar(b) == iv {
			err = firstErr(err, fmt.Errorf("loop body assigns the induction variable v%d in %q", iv, b))
		}
		return err == nil
	})
	return err
}

// verifyExpr checks variable references and vector-form placement inside
// one expression tree.
func verifyExpr(p *il.Proc, root il.Expr, allowVector bool, s il.Stmt) error {
	var err error
	il.WalkExpr(root, func(e il.Expr) bool {
		switch n := e.(type) {
		case *il.VarRef:
			if int(n.ID) < 0 || int(n.ID) >= len(p.Vars) {
				err = firstErr(err, fmt.Errorf("undefined variable id v%d in %q", n.ID, s))
			}
		case *il.AddrOf:
			if int(n.ID) < 0 || int(n.ID) >= len(p.Vars) {
				err = firstErr(err, fmt.Errorf("undefined variable id v%d in %q", n.ID, s))
			}
		case *il.VecRef:
			if !allowVector {
				err = firstErr(err, fmt.Errorf("vector operand %s before the vectorizer slot in %q", e, s))
			}
		}
		return err == nil
	})
	return err
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
