package pass

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/inline"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/strength"
	"repro/internal/vector"
)

// PassStat is one pipeline row: what a pass cost and what it did to the
// program's size. The JSON form (consumed by the compile service's
// /metrics and /compile endpoints) encodes Duration as integer
// nanoseconds under duration_ns.
type PassStat struct {
	Name        string        `json:"name"`
	Duration    time.Duration `json:"duration_ns"`
	StmtsBefore int           `json:"stmts_before"`
	StmtsAfter  int           `json:"stmts_after"`
}

// Delta is the signed IL statement change the pass made.
func (s PassStat) Delta() int { return s.StmtsAfter - s.StmtsBefore }

// Report is the unified instrumentation record of one pipeline run: the
// per-pass timing table plus every phase's domain stats folded together.
// All counters merge by addition, so per-procedure results collected from
// the worker pool in Procs order produce the same Report regardless of
// which worker finished first.
type Report struct {
	Passes []PassStat `json:"passes,omitempty"`

	Inline   inline.Stats       `json:"inline"`
	Scalar   opt.Counts         `json:"scalar,omitempty"` // per scalar sub-pass change counts (scalarize + cleanup)
	Nest     parallel.NestStats `json:"nest"`
	IfConv   vector.IfConvStats `json:"ifconvert"`
	Vector   vector.Stats       `json:"vector"`
	Parallel parallel.Stats     `json:"parallel"`
	List     parallel.ListStats `json:"list"`
	Strength strength.Stats     `json:"strength"`
	// Analysis is the analysis cache's hit/miss tally for the run (all
	// zero when the cache was disabled).
	Analysis analysis.Stats `json:"analysis"`
	// Diags is the run's structured diagnostic stream (warnings and
	// optimization remarks), sorted by procedure then source position.
	// It rides the /compile artifact JSON, so cached responses replay the
	// same remarks the leader compile produced.
	Diags []diag.Diagnostic `json:"diags,omitempty"`
}

// Pass returns the stat row for the named pass, or nil. If a pass ran
// more than once the first occurrence wins.
func (r *Report) Pass(name string) *PassStat {
	for i := range r.Passes {
		if r.Passes[i].Name == name {
			return &r.Passes[i]
		}
	}
	return nil
}

// String renders the -time-passes view: one row per executed pass with
// wall time and the IL statement delta, then the non-zero domain stats.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("pass              time        stmts (delta)\n")
	var total time.Duration
	for _, p := range r.Passes {
		fmt.Fprintf(&sb, "%-16s  %10s  %5d -> %-5d (%+d)\n",
			p.Name, fmtDuration(p.Duration), p.StmtsBefore, p.StmtsAfter, p.Delta())
		total += p.Duration
	}
	fmt.Fprintf(&sb, "%-16s  %10s\n", "total", fmtDuration(total))
	if n := r.Inline.CallsExpanded; n > 0 {
		fmt.Fprintf(&sb, "inline: %d calls expanded\n", n)
	}
	if len(r.Scalar) > 0 {
		keys := make([]string, 0, len(r.Scalar))
		for k := range r.Scalar {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			if r.Scalar[k] != 0 {
				parts = append(parts, fmt.Sprintf("%s %d", k, r.Scalar[k]))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&sb, "scalarize: %s\n", strings.Join(parts, ", "))
		}
	}
	if r.Nest != (parallel.NestStats{}) {
		fmt.Fprintf(&sb, "nest-parallelize: %d nests\n", r.Nest.NestsParallelized)
	}
	if r.IfConv != (vector.IfConvStats{}) {
		fmt.Fprintf(&sb, "ifconvert: %d conditionals flattened to %d predicated stores in %d loops\n",
			r.IfConv.IfsConverted, r.IfConv.StmtsPredicated, r.IfConv.LoopsExamined)
	}
	if r.Vector != (vector.Stats{}) {
		fmt.Fprintf(&sb, "vectorize: %d/%d loops, %d vector stmts (%d masked), %d parallel strips, %d serial residue\n",
			r.Vector.LoopsVectorized, r.Vector.LoopsExamined, r.Vector.VectorStmts,
			r.Vector.MaskedStmts, r.Vector.ParallelLoops, r.Vector.SerialResidue)
	}
	if r.Parallel != (parallel.Stats{}) {
		fmt.Fprintf(&sb, "parallelize: %d/%d loops\n",
			r.Parallel.LoopsParallelized, r.Parallel.LoopsExamined)
	}
	if r.List != (parallel.ListStats{}) {
		fmt.Fprintf(&sb, "list-parallelize: %d loops\n", r.List.LoopsConverted)
	}
	if r.Strength != (strength.Stats{}) {
		fmt.Fprintf(&sb, "strength: %d loops, %d promoted loads, %d reduced refs, %d pointers, %d hoisted\n",
			r.Strength.LoopsTransformed, r.Strength.PromotedLoads, r.Strength.ReducedRefs,
			r.Strength.Pointers, r.Strength.HoistedExprs)
	}
	if r.Analysis != (analysis.Stats{}) {
		fmt.Fprintf(&sb, "analysis cache: dataflow %d/%d, liveness %d/%d, depend %d/%d hits\n",
			r.Analysis.DataflowHits, r.Analysis.DataflowHits+r.Analysis.DataflowMisses,
			r.Analysis.LivenessHits, r.Analysis.LivenessHits+r.Analysis.LivenessMisses,
			r.Analysis.DependHits, r.Analysis.DependHits+r.Analysis.DependMisses)
	}
	if n := r.Scalar[opt.FixpointCapped]; n > 0 {
		fmt.Fprintf(&sb, "WARNING: scalar fixpoint capped without converging in %d procedure(s)\n", n)
	}
	return sb.String()
}

// fmtDuration keeps rows aligned: microsecond precision is plenty for a
// per-pass wall clock.
func fmtDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
