package pass

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/inline"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/strength"
	"repro/internal/vector"
)

func fullReport() *Report {
	return &Report{
		Passes: []PassStat{
			{Name: PassInline, Duration: 1500 * time.Nanosecond, StmtsBefore: 10, StmtsAfter: 18},
			{Name: PassScalar, Duration: 2 * time.Microsecond, StmtsBefore: 18, StmtsAfter: 12},
		},
		Inline:   inline.Stats{CallsExpanded: 3},
		Scalar:   opt.Counts{"constprop": 4, "dce": 2},
		Nest:     parallel.NestStats{NestsParallelized: 1},
		Vector:   vector.Stats{LoopsExamined: 5, LoopsVectorized: 2, VectorStmts: 7, ParallelLoops: 1, SerialResidue: 3},
		Parallel: parallel.Stats{LoopsExamined: 4, LoopsParallelized: 2},
		List:     parallel.ListStats{LoopsConverted: 1},
		Strength: strength.Stats{PromotedLoads: 2, ReducedRefs: 3, Pointers: 1, HoistedExprs: 4, LoopsTransformed: 2},
		Analysis: analysis.Stats{DataflowHits: 9, DataflowMisses: 4, LivenessHits: 3, LivenessMisses: 2, DependHits: 6, DependMisses: 5},
	}
}

// TestReportJSONRoundTrip: the /metrics and /compile endpoints ship
// Reports as JSON; marshal → unmarshal must reproduce the value exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	want := fullReport()
	blob, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := &Report{}
	if err := json.Unmarshal(blob, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReportJSONStable pins the wire shape: machine consumers key on
// these field names, so renames are breaking changes.
func TestReportJSONStable(t *testing.T) {
	blob, err := json.Marshal(fullReport())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	const want = `{"passes":[` +
		`{"name":"inline","duration_ns":1500,"stmts_before":10,"stmts_after":18},` +
		`{"name":"scalarize","duration_ns":2000,"stmts_before":18,"stmts_after":12}],` +
		`"inline":{"calls_expanded":3},` +
		`"scalar":{"constprop":4,"dce":2},` +
		`"nest":{"nests_parallelized":1},` +
		`"ifconvert":{"loops_examined":0,"ifs_converted":0,"stmts_predicated":0},` +
		`"vector":{"loops_examined":5,"loops_vectorized":2,"vector_stmts":7,"masked_stmts":0,"parallel_loops":1,"serial_residue":3},` +
		`"parallel":{"loops_examined":4,"loops_parallelized":2},` +
		`"list":{"loops_converted":1},` +
		`"strength":{"promoted_loads":2,"reduced_refs":3,"pointers":1,"hoisted_exprs":4,"loops_transformed":2,"unrolled_loops":0},` +
		`"analysis":{"dataflow_hits":9,"dataflow_misses":4,"liveness_hits":3,"liveness_misses":2,"depend_hits":6,"depend_misses":5}}`
	if string(blob) != want {
		t.Fatalf("wire shape drifted:\n got %s\nwant %s", blob, want)
	}
}

// An empty report must still be valid, small JSON (omitempty on the
// variable-size parts).
func TestReportJSONEmpty(t *testing.T) {
	blob, err := json.Marshal(&Report{})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := &Report{}
	if err := json.Unmarshal(blob, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, &Report{}) {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}
