// Package pass is the compiler mid-end's pass framework. The paper's
// pipeline order is load-bearing — §5.2 mandates while→DO conversion right
// after use-def chains, §6 mandates strength reduction after vectorization
// on the serial residue — and BuildPipeline is the single place that order
// is written down. A Manager runs the pipeline over an il.Program with
// unified per-pass instrumentation (wall time, statement counts, the loop
// phases' stats folded into one Report), an optional IL-snapshot hook (the
// ildump tool is a thin consumer), a between-pass IL verifier, and a
// bounded worker pool that runs the per-procedure phases concurrently.
package pass

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
)

// Canonical pass names, in pipeline order. Tools address passes by these
// strings (-dump-after=vectorize, snapshot hooks, report rows).
const (
	// SnapshotInput names the pre-pipeline snapshot: the front end's raw
	// lowered IL, before any pass has run.
	SnapshotInput = "lower"

	PassInline       = "inline"
	PassScalar       = "scalarize"
	PassNest         = "nest-parallelize"
	PassIfConvert    = "ifconvert"
	PassVectorize    = "vectorize"
	PassParallelize  = "parallelize"
	PassListParallel = "list-parallelize"
	PassStrength     = "strength"
	PassCleanup      = "cleanup"
)

// Pass is one mid-end phase. Run mutates prog in place and records its
// stats on ctx.Report.
type Pass interface {
	Name() string
	Run(prog *il.Program, ctx *Context) error
}

// Context carries the cross-cutting machinery a pipeline run threads
// through every pass: the instrumentation report, optional hooks, and the
// worker-pool width. The zero value is usable; NewContext returns the
// defaults the driver uses.
type Context struct {
	// Report accumulates per-pass instrumentation. Manager.Run fills it.
	Report *Report
	// Snapshot, when non-nil, is called with the lowered IL before the
	// first pass (name SnapshotInput) and again after every pass, letting
	// tools observe between-phase IL without re-running the pipeline.
	// The program is live; callers must render or copy what they need
	// before returning.
	Snapshot func(name string, prog *il.Program)
	// Verify runs the IL verifier before the first pass and after every
	// pass, failing the compile at the pass boundary that corrupted the
	// IL instead of letting it surface as a codegen panic or wrong
	// simulation output. On by default (NewContext): the whole test
	// corpus compiles under it and the check is a linear walk.
	Verify bool
	// Workers bounds the per-procedure worker pool for passes that
	// process procedures independently. 0 means GOMAXPROCS; 1 runs
	// serially.
	Workers int
	// Analysis memoizes per-procedure CFG/use-def/liveness solutions and
	// per-loop dependence graphs across passes, invalidated by each
	// procedure's generation counter. Nil disables caching: every
	// sub-pass re-solves from scratch (the pre-cache behavior, kept as
	// the differential-testing baseline).
	Analysis *analysis.Cache
	// Diags collects the structured diagnostics and optimization remarks
	// every pass emits (per-loop vectorize/parallelize verdicts, §5.3
	// iv-substitution outcomes, §7 inline decisions, §8 unreachable
	// deletions, ...). Manager.Run folds the sorted stream into
	// Report.Diags. Nil drops diagnostics (the Reporter is nil-safe).
	Diags *diag.Reporter
	// Schedules carries explicit per-loop plans (the autotuner's output)
	// into the loop phases. Nil means every loop follows
	// schedule.Default() — the paper's hardwired strategy.
	Schedules *schedule.Set
}

// NewContext returns the default context: verifier on, worker pool as
// wide as GOMAXPROCS, analysis cache on.
func NewContext() *Context {
	return &Context{Report: &Report{}, Verify: true, Workers: runtime.GOMAXPROCS(0),
		Analysis: analysis.NewCache(), Diags: &diag.Reporter{}}
}

func (ctx *Context) workers() int {
	if ctx.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return ctx.Workers
}

// Manager owns an ordered pass pipeline built from Options.
type Manager struct {
	passes []Pass
}

// NewManager builds the paper-mandated pipeline for opts.
func NewManager(opts Options) *Manager {
	return &Manager{passes: BuildPipeline(opts)}
}

// Passes returns the pipeline's pass names in execution order.
func (m *Manager) Passes() []string {
	names := make([]string, len(m.passes))
	for i, p := range m.passes {
		names[i] = p.Name()
	}
	return names
}

// Run executes the pipeline over prog, filling ctx.Report. A nil ctx gets
// NewContext defaults. The returned Report is ctx.Report.
func (m *Manager) Run(prog *il.Program, ctx *Context) (*Report, error) {
	if ctx == nil {
		ctx = NewContext()
	}
	if ctx.Report == nil {
		ctx.Report = &Report{}
	}
	rep := ctx.Report

	// VectorAssign is only legal once the vectorizer slot has run; the
	// front end never emits it and no earlier pass may.
	vectorSeen := false
	if ctx.Verify {
		if err := Verify(prog, vectorSeen); err != nil {
			return rep, fmt.Errorf("pass: IL invalid before pipeline: %w", err)
		}
	}
	if ctx.Snapshot != nil {
		ctx.Snapshot(SnapshotInput, prog)
	}
	for _, p := range m.passes {
		before := countStmts(prog)
		start := time.Now()
		if err := p.Run(prog, ctx); err != nil {
			return rep, fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		rep.Passes = append(rep.Passes, PassStat{
			Name:        p.Name(),
			Duration:    time.Since(start),
			StmtsBefore: before,
			StmtsAfter:  countStmts(prog),
		})
		if p.Name() == PassVectorize {
			vectorSeen = true
		}
		if ctx.Snapshot != nil {
			ctx.Snapshot(p.Name(), prog)
		}
		if ctx.Verify {
			if err := Verify(prog, vectorSeen); err != nil {
				return rep, fmt.Errorf("pass %s: IL invalid after pass: %w", p.Name(), err)
			}
		}
	}
	rep.Analysis = ctx.Analysis.Stats()
	rep.Diags = ctx.Diags.All()
	return rep, nil
}

// countStmts is the whole-program statement count the report's deltas use.
func countStmts(prog *il.Program) int {
	n := 0
	for _, p := range prog.Procs {
		n += il.CountStmts(p.Body)
	}
	return n
}
