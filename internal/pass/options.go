package pass

import "repro/internal/inline"

// Options selects compiler behavior; the zero value is plain scalar
// compilation with scalar optimization. The type lives here — rather than
// in package driver, which re-exports it as driver.Options — because the
// pass manager builds the paper-mandated pipeline from it (BuildPipeline)
// and driver imports pass, not the other way around.
type Options struct {
	// OptLevel 0 disables all optimization; 1 enables the scalar pipeline
	// (default for the driver's named constructors).
	OptLevel int
	// Inline enables inline expansion.
	Inline bool
	// InlineConfig overrides the default expansion policy.
	InlineConfig *inline.Config
	// Catalogs provides library procedure databases for inlining (§7).
	Catalogs []*inline.Catalog
	// Vectorize enables the vectorizer.
	Vectorize bool
	// Parallelize enables do-parallel generation (implies nothing about
	// processor count; that is a machine property).
	Parallelize bool
	// ListParallel enables the §10 extension: linked-list while loops are
	// spread across processors by serializing the pointer chase. Turning
	// it on asserts the paper's "each motion down a pointer goes to
	// independent storage" assumption for the whole unit.
	ListParallel bool
	// VL overrides the strip length (vector.DefaultVL when 0).
	VL int
	// NoAlias asserts pointer parameters follow Fortran aliasing rules
	// (§9's compiler option).
	NoAlias bool
	// StrengthReduce runs §6's dependence-driven scalar loop optimization.
	StrengthReduce bool
	// SimpleIVSub selects the A2 ablation inside the scalar optimizer.
	SimpleIVSub bool
	// NoCopyProp disables copy/forward propagation (combined with
	// SimpleIVSub this models the full "straightforward" pipeline of
	// §5.3).
	NoCopyProp bool
	// DisableIVSub turns induction-variable substitution off entirely.
	DisableIVSub bool
	// ForceIVSub runs induction-variable substitution even when neither
	// vectorization nor strength reduction is enabled (ildump's phase
	// view; normally ivsub only pays off when a later phase consumes it —
	// §6).
	ForceIVSub bool
	// NoStrengthPromotion / NoStrengthReduction toggle §6 sub-passes.
	NoStrengthPromotion bool
	NoStrengthReduction bool
	// NoSchedule disables the §6 dependence-informed instruction
	// scheduler (ablation A5). Scheduling otherwise runs whenever the
	// dependence-driven phases do ("Information from the dependence graph
	// is passed back to the code generation to allow better overlap").
	// The scheduler runs in codegen, after the IL pipeline; the flag
	// rides along here so one Options value describes a whole compile.
	NoSchedule bool
}
