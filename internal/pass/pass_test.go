package pass

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ctype"
	"repro/internal/il"
)

// TestPipelineOrderFull pins the §5.2/§6 pipeline order for the full
// configuration: BuildPipeline is the single place the order is written
// down, and this is its spec.
func TestPipelineOrderFull(t *testing.T) {
	m := NewManager(Options{
		OptLevel: 1, Inline: true, Vectorize: true, Parallelize: true,
		ListParallel: true, StrengthReduce: true,
	})
	want := []string{
		PassInline, PassScalar, PassNest, PassIfConvert, PassVectorize,
		PassParallelize, PassListParallel, PassStrength, PassCleanup,
	}
	if got := m.Passes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pipeline order:\n got %v\nwant %v", got, want)
	}
}

func TestPipelineEmptyAtO0(t *testing.T) {
	if got := NewManager(Options{OptLevel: 0}).Passes(); len(got) != 0 {
		t.Fatalf("plain -O0 pipeline should be empty, got %v", got)
	}
}

// TestManagerCatchesSeededCorruption proves the debug-mode verifier fails
// the compile at the pass boundary rather than letting corrupt IL reach
// codegen.
func TestManagerCatchesSeededCorruption(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{
		&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: &il.VarRef{ID: 99, T: ctype.IntType}},
	}
	_, err := NewManager(Options{OptLevel: 0}).Run(progOf(p), nil)
	wantErr(t, err, "IL invalid before pipeline")
	wantErr(t, err, "undefined variable id v99")
}

// TestManagerInstrumentation checks the report rows a pipeline run leaves
// behind: one row per pass, times measured, statement counts consistent.
func TestManagerInstrumentation(t *testing.T) {
	p := newProc("f", 2)
	p.Body = []il.Stmt{
		// A dead temp assignment the scalar pipeline removes.
		&il.Assign{Dst: &il.VarRef{ID: 0, T: ctype.IntType}, Src: ci(1)},
		&il.Return{},
	}
	m := NewManager(Options{OptLevel: 1})
	rep, err := m.Run(progOf(p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 1 || rep.Passes[0].Name != PassScalar {
		t.Fatalf("want one %s row, got %+v", PassScalar, rep.Passes)
	}
	row := rep.Passes[0]
	if row.StmtsBefore != 2 || row.StmtsAfter != 1 || row.Delta() != -1 {
		t.Errorf("stmt accounting: %d -> %d (%+d), want 2 -> 1 (-1)",
			row.StmtsBefore, row.StmtsAfter, row.Delta())
	}
	changes := 0
	for _, n := range rep.Scalar {
		changes += n
	}
	if changes == 0 {
		t.Errorf("scalar sub-pass counts not recorded: %v", rep.Scalar)
	}
	out := rep.String()
	for _, frag := range []string{"scalarize", "2 -> 1", "total"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report %q missing %q", out, frag)
		}
	}
}

// TestSnapshotHook checks hook firing order: the lowered IL first, then
// one snapshot per pass.
func TestSnapshotHook(t *testing.T) {
	p := newProc("f", 1)
	p.Body = []il.Stmt{&il.Return{}}
	var names []string
	ctx := NewContext()
	ctx.Snapshot = func(name string, prog *il.Program) { names = append(names, name) }
	if _, err := NewManager(Options{OptLevel: 1}).Run(progOf(p), ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{SnapshotInput, PassScalar}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order: got %v, want %v", names, want)
	}
}

// TestForEachProcOrderAndBounds checks the worker pool returns results in
// Procs order whatever the concurrency, including workers > len(procs).
func TestForEachProcOrderAndBounds(t *testing.T) {
	var procs []*il.Proc
	for i := 0; i < 23; i++ {
		procs = append(procs, newProc(strings.Repeat("p", i+1), 0))
	}
	prog := &il.Program{Procs: procs}
	for _, workers := range []int{1, 2, 4, 64} {
		got := forEachProc(prog, workers, func(p *il.Proc) int { return len(p.Name) })
		for i, n := range got {
			if n != i+1 {
				t.Fatalf("workers=%d: slot %d got %d, want %d", workers, i, n, i+1)
			}
		}
	}
}
