package pass

import (
	"repro/internal/il"
	"repro/internal/workpool"
)

// forEachProc applies fn to every procedure of prog on the bounded
// workpool and returns the per-procedure results indexed by position in
// prog.Procs. Callers merge the slice in order, so the aggregate is
// identical whatever order the workers finish in.
//
// fn must touch only its own procedure: the per-proc phases (nest
// parallelization, vectorization, do-parallel conversion, strength
// reduction) allocate temporaries and labels through *il.Proc alone, which
// is what makes this pool safe. Passes that mutate program-level state
// (the inliner, list parallelization's shared buffer globals) must not go
// through it — or must pass workers=1.
func forEachProc[S any](prog *il.Program, workers int, fn func(*il.Proc) S) []S {
	out := make([]S, len(prog.Procs))
	workpool.ForEachN(len(prog.Procs), workers, func(i int) {
		out[i] = fn(prog.Procs[i])
	})
	return out
}
