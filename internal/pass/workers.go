package pass

import (
	"sync"

	"repro/internal/il"
)

// forEachProc applies fn to every procedure of prog, running up to
// `workers` procedures concurrently, and returns the per-procedure results
// indexed by position in prog.Procs. Callers merge the slice in order, so
// the aggregate is identical whatever order the workers finish in.
//
// fn must touch only its own procedure: the per-proc phases (nest
// parallelization, vectorization, do-parallel conversion, strength
// reduction) allocate temporaries and labels through *il.Proc alone, which
// is what makes this pool safe. Passes that mutate program-level state
// (the inliner, list parallelization's shared buffer globals) must not go
// through it — or must pass workers=1.
func forEachProc[S any](prog *il.Program, workers int, fn func(*il.Proc) S) []S {
	out := make([]S, len(prog.Procs))
	if workers <= 1 || len(prog.Procs) <= 1 {
		for i, p := range prog.Procs {
			out[i] = fn(p)
		}
		return out
	}
	if workers > len(prog.Procs) {
		workers = len(prog.Procs)
	}
	// Feed indexes through a channel so `workers` goroutines bound the
	// concurrency however many procedures the unit has.
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(prog.Procs[i])
			}
		}()
	}
	for i := range prog.Procs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
