package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported through /metrics so an operator can see at a
// glance which peers the node has written off.
const (
	BreakerClosed   = "closed"    // peer healthy: requests flow
	BreakerOpen     = "open"      // peer written off: requests fail fast
	BreakerHalfOpen = "half-open" // cooldown elapsed: one probe in flight
)

// breaker is a per-peer circuit breaker. Fetching from a live peer is
// cheap; fetching from a dead one costs a connect timeout per attempt,
// which under load multiplies into the exact latency collapse the
// remote tier exists to avoid. After threshold consecutive failures the
// breaker opens and every fetch fails fast (the caller degrades to a
// local compile); after cooldown one trial request is let through, and
// its outcome decides between closing the breaker and re-opening it.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	failures int
	openedAt time.Time
	open     bool
	probing  bool // a half-open trial is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. In the half-open state
// exactly one caller wins the probe slot; everyone else keeps failing
// fast until the probe's outcome is known.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.now().Sub(b.openedAt) < b.cooldown || b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a completed request and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.open = false
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed request; threshold consecutive failures (or
// a failed half-open probe) open the breaker.
func (b *breaker) failure() {
	b.mu.Lock()
	b.failures++
	if b.probing || b.failures >= b.threshold {
		b.open = true
		b.openedAt = b.now()
		b.probing = false
	}
	b.mu.Unlock()
}

// state names the breaker's current state for /metrics.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return BreakerClosed
	case b.probing || b.now().Sub(b.openedAt) >= b.cooldown:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}
