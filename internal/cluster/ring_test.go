package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func keyN(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := keyN(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner differs by input order: %s vs %s", i, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r, err := NewRing(nodes, 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(keyN(i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		got := counts[n]
		// Virtual nodes keep imbalance modest; 35% slack is generous
		// enough to never flake while still catching a broken hash.
		if got < want*65/100 || got > want*135/100 {
			t.Errorf("node %s owns %d of %d keys (want ~%d)", n, got, keys, want)
		}
	}
}

// TestRingStabilityUnderMembership: removing one node must only move
// the keys that node owned — every other key keeps its owner. This is
// the property that makes consistent hashing worth the trouble.
func TestRingStabilityUnderMembership(t *testing.T) {
	full, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"http://n1", "http://n2"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		k := keyN(i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "http://n3" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node changed owner", moved)
	}
}

func TestRingOwnerOrder(t *testing.T) {
	r, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := keyN(i)
		order := r.OwnerOrder(k)
		if len(order) != 3 {
			t.Fatalf("key %d: order has %d nodes", i, len(order))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("key %d: order[0]=%s but Owner=%s", i, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("key %d: duplicate node %s in owner order", i, n)
			}
			seen[n] = true
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty node id accepted")
	}
}
