package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("breaker open after %d failures", i)
		}
		b.failure()
	}
	if b.state() != BreakerClosed {
		t.Fatalf("state after 2 failures: %s", b.state())
	}
	b.failure() // third consecutive failure
	if b.state() != BreakerOpen {
		t.Fatalf("state after threshold: %s", b.state())
	}
	if b.allow() {
		t.Error("open breaker allowed a request inside the cooldown")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Minute)
	now := time.Now()
	b.now = func() time.Time { return now }
	b.failure()
	if b.allow() {
		t.Fatal("open breaker allowed a request")
	}

	// Cooldown elapses: exactly one caller wins the probe slot.
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.state() != BreakerHalfOpen {
		t.Fatalf("state during probe: %s", b.state())
	}
	if b.allow() {
		t.Error("second caller admitted while the probe is in flight")
	}

	// Failed probe re-opens with a fresh cooldown.
	b.failure()
	if b.allow() {
		t.Error("breaker admitted a request right after a failed probe")
	}

	// A successful probe closes it fully.
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.success()
	if b.state() != BreakerClosed {
		t.Fatalf("state after successful probe: %s", b.state())
	}
	if !b.allow() || !b.allow() {
		t.Error("closed breaker throttled requests")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := newBreaker(3, time.Minute)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.state() != BreakerClosed {
		t.Errorf("non-consecutive failures opened the breaker: %s", b.state())
	}
}
