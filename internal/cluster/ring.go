// Package cluster turns N titand processes into one compile service.
// Artifact keys, tuned-schedule plans, and §7 catalogs are already
// content-addressed (SHA-256 hex), so sharding them is a pure function
// of the key: a ketama-style consistent-hash ring with virtual nodes
// maps every key to an *owner* node, and the rest of the package is the
// machinery for talking to owners safely — a per-peer HTTP client with
// bounded retries and jittered backoff, a circuit breaker that stops
// hammering a dead peer, and background readiness probes that feed
// per-peer health into /metrics.
//
// The membership model is deliberately static: the peer list comes from
// -peers (or a peers file) at startup and never changes. A static ring
// keeps ownership a pure function — every node computes the same owner
// for every key with no gossip, no coordinator, and no rebalancing
// races — and failures are handled by *degradation*, not membership
// change: when an owner is unreachable the requesting node simply
// compiles locally, so a dead peer costs cache efficiency, never
// availability.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node virtual point count. 128 points
// per node keeps the expected load imbalance across a handful of nodes
// within a few percent without making owner lookup slow.
const DefaultVirtualNodes = 128

// Ring is an immutable ketama-style consistent-hash ring: each node
// contributes VirtualNodes points placed by hashing "node#i", and a key
// is owned by the node of the first point at or clockwise after the
// key's hash. Immutability is what makes the ring safe to share across
// every request goroutine with no locking.
type Ring struct {
	vnodes int
	nodes  []string // sorted, deduplicated node IDs
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds the ring over the given node IDs (advertised URLs).
// Duplicates are collapsed; order does not matter — every process that
// is given the same set builds the identical ring.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id in ring")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node so the ring stays
		// deterministic across processes regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 is the ring's point/key hash: the first 8 bytes of SHA-256.
// Keys are themselves SHA-256 hex digests, but re-hashing keeps the
// ring correct for arbitrary strings (catalog ids, schedule keys).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node that owns key.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].node
}

// OwnerOrder returns every distinct node in preference order for key:
// the owner first, then successors clockwise around the ring. Fallback
// lookups (catalog fetches when the owner is down) walk this order.
func (r *Ring) OwnerOrder(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := map[string]bool{}
	i := r.search(key)
	for n := 0; n < len(r.points) && len(out) < len(r.nodes); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return i
}

// Nodes returns the ring's member IDs in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// VirtualNodes reports the per-node point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }
