package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL (e.g. http://10.0.0.1:8344).
	// It identifies the node on the ring; peers reach it at this URL.
	Self string
	// Peers lists every cluster member's base URL. Self may or may not be
	// included — it is added to the ring either way and never dialed.
	Peers []string
	// VirtualNodes is the per-node ring point count (default 128).
	VirtualNodes int
	// FetchTimeout bounds each attempt against a peer (default 1s).
	FetchTimeout time.Duration
	// Retries is how many extra attempts follow a failed one, with
	// jittered exponential backoff between them (default 1).
	Retries int
	// BreakerThreshold consecutive failures open a peer's circuit
	// breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// letting a half-open probe through (default 3s).
	BreakerCooldown time.Duration
	// ProbeInterval paces background peer readiness probes (default 2s;
	// negative disables the background loop — tests probe by hand).
	ProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	return c
}

// Cluster is one node's membership: the shared ring plus a client for
// every remote peer. A nil *Cluster is valid and means "single node":
// every ownership query answers self and the remote tier is skipped.
type Cluster struct {
	self  string
	ring  *Ring
	peers map[string]*Peer // keyed by advertised URL; excludes self

	bootstrapped atomic.Bool
	stop         chan struct{}
	stopped      chan struct{}
}

// New builds the node's cluster view and, when cfg.ProbeInterval >= 0,
// starts the background probe loop. The ring counts as bootstrapped
// once the first full probe round has completed (immediately when there
// are no remote peers), which is what /readyz gates on.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self URL is required")
	}
	nodes := append([]string{cfg.Self}, cfg.Peers...)
	for i, n := range nodes {
		nodes[i] = strings.TrimRight(n, "/")
	}
	ring, err := NewRing(nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		self:  strings.TrimRight(cfg.Self, "/"),
		ring:  ring,
		peers: map[string]*Peer{},
		stop:  make(chan struct{}),
	}
	transport := &http.Transport{MaxIdleConnsPerHost: 32, IdleConnTimeout: 30 * time.Second}
	for _, n := range ring.Nodes() {
		if n == c.self {
			continue
		}
		c.peers[n] = &Peer{
			url:     n,
			client:  &http.Client{Transport: transport},
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			timeout: cfg.FetchTimeout,
			retries: cfg.Retries,
		}
	}
	if len(c.peers) == 0 {
		c.bootstrapped.Store(true)
	}
	if cfg.ProbeInterval >= 0 && len(c.peers) > 0 {
		c.stopped = make(chan struct{})
		go c.probeLoop(cfg.ProbeInterval)
	}
	// With the loop disabled (negative interval) the caller drives
	// ProbeOnce by hand and bootstrap completes on the first call.
	return c, nil
}

// probeLoop runs readiness probes forever: one immediate round (which
// completes the bootstrap), then one per interval until Close.
func (c *Cluster) probeLoop(interval time.Duration) {
	defer close(c.stopped)
	c.ProbeOnce()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ProbeOnce()
		}
	}
}

// ProbeOnce probes every peer's /readyz concurrently, waits for the
// round to finish, and marks the ring bootstrapped. Exported for tests
// and for callers that disabled the background loop.
func (c *Cluster) ProbeOnce() {
	if c == nil {
		return
	}
	done := make(chan struct{}, len(c.peers))
	for _, p := range c.peers {
		go func(p *Peer) {
			p.probe()
			done <- struct{}{}
		}(p)
	}
	for range c.peers {
		<-done
	}
	c.bootstrapped.Store(true)
}

// Close stops the background probe loop. Safe on nil.
func (c *Cluster) Close() {
	if c == nil || c.stopped == nil {
		return
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.stopped
}

// Enabled reports whether there is at least one remote peer. A nil
// cluster and a self-only cluster both answer false — the service takes
// the pure single-node path.
func (c *Cluster) Enabled() bool { return c != nil && len(c.peers) > 0 }

// Bootstrapped reports whether the first probe round has completed.
// Readiness gates on this so load balancers don't route to a node whose
// view of peer health is still empty. Nil and self-only clusters are
// born bootstrapped.
func (c *Cluster) Bootstrapped() bool { return c == nil || c.bootstrapped.Load() }

// Owner returns the peer that owns key, or nil when this node does
// (or when clustering is off).
func (c *Cluster) Owner(key string) *Peer {
	if !c.Enabled() {
		return nil
	}
	return c.peers[c.ring.Owner(key)] // nil when the owner is self
}

// OwnerOrder returns the remote peers to try for key in ring preference
// order, excluding self. First entry is the owner when it is remote.
func (c *Cluster) OwnerOrder(key string) []*Peer {
	if !c.Enabled() {
		return nil
	}
	nodes := c.ring.OwnerOrder(key)
	out := make([]*Peer, 0, len(nodes))
	for _, n := range nodes {
		if p := c.peers[n]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Self returns this node's advertised URL ("" when clustering is off).
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	return c.self
}

// Snapshot is the /metrics cluster section.
type Snapshot struct {
	Self         string       `json:"self"`
	Nodes        []string     `json:"nodes"`
	VirtualNodes int          `json:"virtual_nodes"`
	Bootstrapped bool         `json:"bootstrapped"`
	Peers        []PeerStatus `json:"peers"`
}

// Snapshot captures ring state and per-peer health/counters. Returns
// nil on a nil or single-node cluster so /metrics omits the section
// when clustering is off.
func (c *Cluster) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	s := &Snapshot{
		Self:         c.self,
		Nodes:        c.ring.Nodes(),
		VirtualNodes: c.ring.VirtualNodes(),
		Bootstrapped: c.Bootstrapped(),
	}
	for _, p := range c.peers {
		s.Peers = append(s.Peers, p.Status())
	}
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].URL < s.Peers[j].URL })
	return s
}
