package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Peer is one remote cluster member: a thin HTTP client over the peer
// tier (GET/PUT /cache/{key}, GET/PUT /schedules/{key}, GET+POST
// /catalogs) with a per-attempt timeout, bounded retries with jittered
// exponential backoff, and a circuit breaker. Every outcome is counted;
// Status folds the counters into /metrics.
type Peer struct {
	url     string
	client  *http.Client
	breaker *breaker
	timeout time.Duration // per attempt
	retries int           // extra attempts after the first

	hits      atomic.Int64 // fetches answered 200
	misses    atomic.Int64 // fetches answered 404
	timeouts  atomic.Int64 // attempts that hit the per-peer timeout
	errs      atomic.Int64 // attempts that failed any other way
	fastFails atomic.Int64 // requests refused by the open breaker
	pushes    atomic.Int64 // successful write-throughs to this peer
	pushErrs  atomic.Int64

	mu          sync.Mutex
	ready       bool
	lastProbe   time.Time
	lastProbeNS int64
	probeErr    string
}

// errBreakerOpen fails a request fast while the peer's breaker is open.
var errBreakerOpen = errors.New("cluster: peer circuit breaker open")

// PeerStatus is one peer's row in the /metrics cluster section.
type PeerStatus struct {
	URL     string `json:"url"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
	// LastProbeNS is how long the last readiness probe took; LastProbeAge
	// is how long ago it ran (0 before the first round).
	LastProbeNS    int64  `json:"last_probe_ns"`
	LastProbeAgeNS int64  `json:"last_probe_age_ns"`
	ProbeError     string `json:"probe_error,omitempty"`

	FetchHits     int64 `json:"fetch_hits"`
	FetchMisses   int64 `json:"fetch_misses"`
	FetchTimeouts int64 `json:"fetch_timeouts"`
	FetchErrors   int64 `json:"fetch_errors"`
	BreakerDrops  int64 `json:"breaker_drops"`
	Pushes        int64 `json:"pushes"`
	PushErrors    int64 `json:"push_errors"`
}

// URL returns the peer's advertised base URL (its ring node ID).
func (p *Peer) URL() string { return p.url }

// Status snapshots the peer for /metrics.
func (p *Peer) Status() PeerStatus {
	p.mu.Lock()
	ready, lastProbe, probeNS, probeErr := p.ready, p.lastProbe, p.lastProbeNS, p.probeErr
	p.mu.Unlock()
	st := PeerStatus{
		URL:           p.url,
		Ready:         ready,
		Breaker:       p.breaker.state(),
		LastProbeNS:   probeNS,
		ProbeError:    probeErr,
		FetchHits:     p.hits.Load(),
		FetchMisses:   p.misses.Load(),
		FetchTimeouts: p.timeouts.Load(),
		FetchErrors:   p.errs.Load(),
		BreakerDrops:  p.fastFails.Load(),
		Pushes:        p.pushes.Load(),
		PushErrors:    p.pushErrs.Load(),
	}
	if !lastProbe.IsZero() {
		st.LastProbeAgeNS = time.Since(lastProbe).Nanoseconds()
	}
	return st
}

// Fetch GETs path (e.g. "/cache/<key>") from the peer. The bool result
// distinguishes a definitive miss (404 — the owner does not have the
// key, do not retry) from a hit; any other failure is an error after
// the retry budget is spent.
func (p *Peer) Fetch(path string) ([]byte, bool, error) {
	if !p.breaker.allow() {
		p.fastFails.Add(1)
		return nil, false, errBreakerOpen
	}
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff(attempt))
		}
		blob, found, err := p.fetchOnce(path)
		if err == nil {
			p.breaker.success()
			if found {
				p.hits.Add(1)
			} else {
				p.misses.Add(1)
			}
			return blob, found, nil
		}
		p.countFailure(err)
		lastErr = err
	}
	p.breaker.failure()
	return nil, false, lastErr
}

func (p *Peer) fetchOnce(path string) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+path, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return blob, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		// Drain so the connection is reusable, then report the status.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("cluster: peer %s: %s returned %d", p.url, path, resp.StatusCode)
	}
}

// Push writes blob to path on the peer (PUT for the cache and schedule
// tiers, POST for catalog uploads). Push is the write-through half of
// ownership: the node that did the work hands the result to the key's
// owner so every future cluster-wide lookup finds it in one hop.
func (p *Peer) Push(method, path, contentType string, blob []byte) error {
	if !p.breaker.allow() {
		p.fastFails.Add(1)
		p.pushErrs.Add(1)
		return errBreakerOpen
	}
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff(attempt))
		}
		err := p.pushOnce(method, path, contentType, blob)
		if err == nil {
			p.breaker.success()
			p.pushes.Add(1)
			return nil
		}
		p.countFailure(err)
		lastErr = err
	}
	p.breaker.failure()
	p.pushErrs.Add(1)
	return lastErr
}

func (p *Peer) pushOnce(method, path, contentType string, blob []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("cluster: peer %s: %s %s returned %d", p.url, method, path, resp.StatusCode)
	}
	return nil
}

// probe GETs /readyz and records the outcome for Status. Probes bypass
// the breaker on purpose: they are the mechanism by which a recovered
// peer is noticed, and they run at a fixed low rate.
func (p *Peer) probe() {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	start := time.Now()
	ready := false
	probeErr := ""
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err == nil {
		var resp *http.Response
		resp, err = p.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
			if !ready {
				probeErr = fmt.Sprintf("readyz returned %d", resp.StatusCode)
			}
		}
	}
	if err != nil {
		probeErr = err.Error()
	}
	p.mu.Lock()
	p.ready = ready
	p.lastProbe = start
	p.lastProbeNS = time.Since(start).Nanoseconds()
	p.probeErr = probeErr
	p.mu.Unlock()
}

// countFailure classifies one failed attempt for the counters.
func (p *Peer) countFailure(err error) {
	if isTimeout(err) {
		p.timeouts.Add(1)
	} else {
		p.errs.Add(1)
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// url.Error wraps the context error in a string on some paths.
	var ue *url.Error
	return errors.As(err, &ue) && ue.Timeout()
}

// backoff returns the sleep before retry attempt n (1-based): 10ms
// doubling per attempt, with up to 50% random jitter so a burst of
// requests that failed together does not retry together.
func backoff(attempt int) time.Duration {
	base := 10 * time.Millisecond << (attempt - 1)
	if base > time.Second {
		base = time.Second
	}
	return base + time.Duration(rand.Int64N(int64(base)/2+1))
}

// CachePath/SchedulePath/CatalogPath build the peer-tier URLs for a
// key. Keys are hex digests (enforced by the serving side), so they are
// path-safe as-is; escaping is belt and suspenders.
func CachePath(key string) string    { return "/cache/" + url.PathEscape(key) }
func SchedulePath(key string) string { return "/schedules/" + url.PathEscape(key) }
func CatalogPath(id string) string   { return "/catalogs/" + url.PathEscape(id) }
