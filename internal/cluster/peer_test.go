package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testPeer(t *testing.T, h http.Handler, retries int, timeout time.Duration) (*Peer, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &Peer{
		url:     ts.URL,
		client:  ts.Client(),
		breaker: newBreaker(3, time.Minute),
		timeout: timeout,
		retries: retries,
	}, ts
}

func TestPeerFetchHitMiss(t *testing.T) {
	p, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/cache/haskey" {
			w.Write([]byte("artifact"))
			return
		}
		http.NotFound(w, r)
	}), 0, time.Second)

	blob, found, err := p.Fetch("/cache/haskey")
	if err != nil || !found || string(blob) != "artifact" {
		t.Fatalf("hit: blob=%q found=%v err=%v", blob, found, err)
	}
	_, found, err = p.Fetch("/cache/nokey")
	if err != nil || found {
		t.Fatalf("miss: found=%v err=%v", found, err)
	}
	st := p.Status()
	if st.FetchHits != 1 || st.FetchMisses != 1 || st.FetchErrors != 0 {
		t.Errorf("counters: %+v", st)
	}
}

// TestPeerFetchRetries: a transient 500 is retried (with backoff) and
// the second attempt's success closes the matter — one logical fetch,
// one error counted, one hit.
func TestPeerFetchRetries(t *testing.T) {
	var calls atomic.Int64
	p, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}), 2, time.Second)

	blob, found, err := p.Fetch("/cache/k")
	if err != nil || !found || string(blob) != "ok" {
		t.Fatalf("fetch: %q %v %v", blob, found, err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	st := p.Status()
	if st.FetchHits != 1 || st.FetchErrors != 1 {
		t.Errorf("counters: %+v", st)
	}
}

// TestPeerTimeoutCounted: an attempt that exceeds the per-peer timeout
// lands in the timeout counter, and the retry budget bounds total wait.
func TestPeerTimeoutCounted(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}), 0, 30*time.Millisecond)

	start := time.Now()
	_, _, err := p.Fetch("/cache/slow")
	if err == nil {
		t.Fatal("fetch against a hung peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("fetch took %v; timeout not enforced", elapsed)
	}
	if st := p.Status(); st.FetchTimeouts != 1 {
		t.Errorf("timeout not counted: %+v", st)
	}
}

// TestPeerBreakerFailsFast: after threshold consecutive fetch failures
// the breaker opens and further fetches are refused without touching
// the network.
func TestPeerBreakerFailsFast(t *testing.T) {
	var calls atomic.Int64
	p, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}), 0, time.Second)

	for i := 0; i < 3; i++ {
		if _, _, err := p.Fetch("/cache/k"); err == nil {
			t.Fatal("fetch against erroring peer succeeded")
		}
	}
	before := calls.Load()
	if _, _, err := p.Fetch("/cache/k"); err != errBreakerOpen {
		t.Fatalf("breaker did not fail fast: %v", err)
	}
	if calls.Load() != before {
		t.Error("fast-failed fetch still hit the network")
	}
	if st := p.Status(); st.Breaker != BreakerOpen || st.BreakerDrops != 1 {
		t.Errorf("status: %+v", st)
	}
}

func TestPeerPush(t *testing.T) {
	var got atomic.Value
	p, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && r.URL.Path == "/cache/k" {
			b := make([]byte, r.ContentLength)
			r.Body.Read(b)
			got.Store(string(b))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r)
	}), 0, time.Second)

	if err := p.Push(http.MethodPut, "/cache/k", "application/json", []byte("blob")); err != nil {
		t.Fatalf("push: %v", err)
	}
	if got.Load() != "blob" {
		t.Errorf("pushed body = %v", got.Load())
	}
	if st := p.Status(); st.Pushes != 1 || st.PushErrors != 0 {
		t.Errorf("counters: %+v", st)
	}
}

func TestClusterOwnershipAndSnapshot(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.NotFound(w, r)
	}))
	defer ready.Close()

	c, err := New(Config{
		Self:          "http://self:1",
		Peers:         []string{ready.URL, "http://self:1"}, // self in the list is fine
		ProbeInterval: -1,                                   // probe by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Enabled() {
		t.Fatal("cluster with one remote peer not enabled")
	}
	if c.Bootstrapped() {
		t.Error("bootstrapped before the first probe round")
	}
	c.ProbeOnce()
	if !c.Bootstrapped() {
		t.Error("not bootstrapped after a probe round")
	}

	// Ownership is total: every key is owned by self or the one peer,
	// and both sides occur over enough keys.
	selfOwned, peerOwned := 0, 0
	for i := 0; i < 200; i++ {
		if p := c.Owner(keyN(i)); p == nil {
			selfOwned++
		} else if p.URL() != ready.URL {
			t.Fatalf("owner is neither self nor the peer: %s", p.URL())
		} else {
			peerOwned++
		}
	}
	if selfOwned == 0 || peerOwned == 0 {
		t.Errorf("degenerate ownership split: self=%d peer=%d", selfOwned, peerOwned)
	}

	snap := c.Snapshot()
	if snap == nil || len(snap.Nodes) != 2 || len(snap.Peers) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if !snap.Peers[0].Ready || snap.Peers[0].LastProbeNS <= 0 {
		t.Errorf("peer status after probe: %+v", snap.Peers[0])
	}
}

func TestNilAndSingleNodeCluster(t *testing.T) {
	var nilC *Cluster
	if nilC.Enabled() || !nilC.Bootstrapped() || nilC.Snapshot() != nil || nilC.Self() != "" {
		t.Error("nil cluster semantics broken")
	}
	nilC.Close() // must not panic
	nilC.ProbeOnce()

	solo, err := New(Config{Self: "http://only"})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if solo.Enabled() || !solo.Bootstrapped() {
		t.Error("self-only cluster should be disabled and bootstrapped")
	}
	if p := solo.Owner(keyN(1)); p != nil {
		t.Errorf("self-only cluster has a remote owner: %s", p.URL())
	}
}
