package codegen

// This file implements §6's instruction scheduling: within each basic
// block, instructions are list-scheduled by critical-path priority so that
// independent integer and floating-point instructions interleave and loads
// issue as early as their operands allow. The Titan dispatches in order,
// one instruction per cycle at best, so emission order is the schedule —
// hoisting loads above a dependent FP chain hides the memory latency, and
// mixing pointer bumps between FP operations fills the integer unit's
// otherwise idle slots ("changing the instruction order so that integer
// and floating point instructions overlap and so that memory access and
// computation overlap can provide a significant speedup in many
// programs", §2).
//
// Memory ordering is conservative: stores order against all other memory
// operations; loads reorder freely with loads. The dependence information
// that justified more aggressive reordering at the IL level has already
// been spent (register promotion removed the conflicting references), so
// the conservative rule loses nothing on the §6 workloads.

import "repro/internal/titan"

// Schedule reorders every function's basic blocks in place.
func Schedule(tp *titan.Program) {
	for _, f := range tp.Funcs {
		scheduleFunc(f)
	}
}

func scheduleFunc(f *titan.Func) {
	// Block boundaries: label targets and control transfers.
	isTarget := make([]bool, len(f.Instrs)+1)
	for _, idx := range f.Labels {
		isTarget[idx] = true
	}
	var out []titan.Instr
	// oldToNew maps old block-start indices to new positions; labels only
	// ever point at block starts (label targets force boundaries).
	oldToNew := map[int]int{}

	flush := func(block []titan.Instr, oldStart int) {
		oldToNew[oldStart] = len(out)
		if len(block) <= 2 {
			// Nothing to reorder; skip the scheduler's bookkeeping.
			out = append(out, block...)
			return
		}
		order := scheduleBlock(block)
		for _, oi := range order {
			out = append(out, block[oi])
		}
	}

	start := 0
	for i := 0; i <= len(f.Instrs); i++ {
		atEnd := i == len(f.Instrs)
		if !atEnd && isTarget[i] {
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			start = i
		}
		if atEnd {
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			break
		}
		if isControl(f.Instrs[i].Op) {
			// Schedule the straight-line prefix, keep the control
			// instruction as the block terminator.
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			out = append(out, f.Instrs[i])
			start = i + 1
		}
	}

	// Remap labels. Every label target was recorded as a block start or a
	// control-instruction position.
	newLabels := make(map[string]int, len(f.Labels))
	for l, idx := range f.Labels {
		n, ok := oldToNew[idx]
		if !ok {
			// Defensive: leave the function unscheduled rather than emit
			// a wrong branch target.
			return
		}
		newLabels[l] = n
	}
	f.Labels = newLabels
	f.Instrs = out
}

func isControl(op titan.Op) bool {
	switch op {
	case titan.OpJmp, titan.OpBeqz, titan.OpBnez, titan.OpCall, titan.OpRet,
		titan.OpHalt, titan.OpParBegin, titan.OpParEnd, titan.OpArg, titan.OpFarg:
		return true
	}
	return false
}

// regClass distinguishes the register files for dependence tracking.
type regClass int

const (
	rcInt regClass = iota
	rcFlt
	rcVec
	rcMask // vector-mask registers
	rcVL   // the vector length register
)

type regRef struct {
	class regClass
	num   int
}

// regRefs holds an instruction's register operands in fixed-size storage
// (no instruction writes more than one register or reads more than five —
// vst.m reads a vector, base, stride, mask, and VL), so dependence
// construction never allocates per instruction.
type regRefs struct {
	defs [1]regRef
	nDef int
	uses [5]regRef
	nUse int
}

func (r *regRefs) def(x regRef) {
	r.defs[r.nDef] = x
	r.nDef++
}

func (r *regRefs) use(xs ...regRef) {
	r.nUse += copy(r.uses[r.nUse:], xs)
}

// instrRefs returns the registers an instruction writes and reads.
func instrRefs(in titan.Instr) (r regRefs) {
	ir := func(n int) regRef { return regRef{rcInt, n} }
	fr := func(n int) regRef { return regRef{rcFlt, n} }
	vr := func(n int) regRef { return regRef{rcVec, n} }
	mk := func(n int) regRef { return regRef{rcMask, n} }
	switch in.Op {
	case titan.OpLdi:
		r.def(ir(in.Rd))
	case titan.OpFldi:
		r.def(fr(in.Rd))
	case titan.OpMov, titan.OpNeg, titan.OpNot, titan.OpBnot, titan.OpAddi, titan.OpMuli:
		r.def(ir(in.Rd))
		r.use(ir(in.Rs1))
	case titan.OpAdd, titan.OpSub, titan.OpMul, titan.OpDiv, titan.OpRem,
		titan.OpAnd, titan.OpOr, titan.OpXor, titan.OpShl, titan.OpShr,
		titan.OpCmpEq, titan.OpCmpNe, titan.OpCmpLt, titan.OpCmpLe,
		titan.OpCmpGt, titan.OpCmpGe:
		r.def(ir(in.Rd))
		r.use(ir(in.Rs1), ir(in.Rs2))
	case titan.OpPid, titan.OpNproc:
		r.def(ir(in.Rd))
	case titan.OpLd1, titan.OpLd2, titan.OpLd4:
		r.def(ir(in.Rd))
		r.use(ir(in.Rs1))
	case titan.OpSt1, titan.OpSt2, titan.OpSt4:
		r.use(ir(in.Rs1), ir(in.Rs2))
	case titan.OpFld4, titan.OpFld8:
		r.def(fr(in.Rd))
		r.use(ir(in.Rs1))
	case titan.OpFst4, titan.OpFst8:
		r.use(ir(in.Rs1), fr(in.Rs2))
	case titan.OpFmov, titan.OpFneg:
		r.def(fr(in.Rd))
		r.use(fr(in.Rs1))
	case titan.OpFadd, titan.OpFsub, titan.OpFmul, titan.OpFdiv:
		r.def(fr(in.Rd))
		r.use(fr(in.Rs1), fr(in.Rs2))
	case titan.OpFcmpEq, titan.OpFcmpNe, titan.OpFcmpLt, titan.OpFcmpLe,
		titan.OpFcmpGt, titan.OpFcmpGe:
		r.def(ir(in.Rd))
		r.use(fr(in.Rs1), fr(in.Rs2))
	case titan.OpCvtIF:
		r.def(fr(in.Rd))
		r.use(ir(in.Rs1))
	case titan.OpCvtFI:
		r.def(ir(in.Rd))
		r.use(fr(in.Rs1))
	case titan.OpVsetl:
		r.def(regRef{rcVL, 0})
		r.use(ir(in.Rs1))
	case titan.OpVld:
		r.def(vr(in.Rd))
		r.use(ir(in.Rs1), ir(in.Rs2), regRef{rcVL, 0})
	case titan.OpVst:
		r.use(vr(in.Rd), ir(in.Rs1), ir(in.Rs2), regRef{rcVL, 0})
	case titan.OpVadd, titan.OpVsub, titan.OpVmul, titan.OpVdiv:
		r.def(vr(in.Rd))
		r.use(vr(in.Rs1), vr(in.Rs2), regRef{rcVL, 0})
	case titan.OpVadds, titan.OpVsubs, titan.OpVsubsr, titan.OpVmuls,
		titan.OpVdivs, titan.OpVdivsr:
		r.def(vr(in.Rd))
		r.use(vr(in.Rs1), fr(in.Rs2), regRef{rcVL, 0})
	case titan.OpVmov:
		r.def(vr(in.Rd))
		r.use(vr(in.Rs1), regRef{rcVL, 0})
	case titan.OpVbcast:
		r.def(vr(in.Rd))
		r.use(fr(in.Rs1), regRef{rcVL, 0})
	case titan.OpVcmpLt, titan.OpVcmpLe, titan.OpVcmpEq, titan.OpVcmpNe:
		r.def(mk(in.Rd))
		r.use(vr(in.Rs1), vr(in.Rs2), regRef{rcVL, 0})
	case titan.OpVcmpLts, titan.OpVcmpLes, titan.OpVcmpEqs, titan.OpVcmpNes:
		r.def(mk(in.Rd))
		r.use(vr(in.Rs1), fr(in.Rs2), regRef{rcVL, 0})
	case titan.OpMand, titan.OpMor:
		r.def(mk(in.Rd))
		r.use(mk(in.Rs1), mk(in.Rs2), regRef{rcVL, 0})
	case titan.OpMnot:
		r.def(mk(in.Rd))
		r.use(mk(in.Rs1), regRef{rcVL, 0})
	case titan.OpVldm:
		r.def(vr(in.Rd))
		r.use(ir(in.Rs1), ir(in.Rs2), mk(int(in.Imm>>8)), regRef{rcVL, 0})
	case titan.OpVstm:
		r.use(vr(in.Rd), ir(in.Rs1), ir(in.Rs2), mk(int(in.Imm>>8)), regRef{rcVL, 0})
	case titan.OpVaddm, titan.OpVsubm, titan.OpVmulm, titan.OpVdivm:
		r.def(vr(in.Rd))
		r.use(vr(in.Rs1), vr(in.Rs2), mk(int(in.Imm>>8)), regRef{rcVL, 0})
	case titan.OpArg, titan.OpBeqz, titan.OpBnez:
		r.use(ir(in.Rs1))
	case titan.OpFarg:
		r.use(fr(in.Rs1))
	}
	return r
}

// defsUses returns the registers an instruction writes and reads as
// slices; the scheduler's hot path uses instrRefs directly.
func defsUses(in titan.Instr) (defs, uses []regRef) {
	r := instrRefs(in)
	return r.defs[:r.nDef], r.uses[:r.nUse]
}

func isLoad(op titan.Op) bool {
	switch op {
	case titan.OpLd1, titan.OpLd2, titan.OpLd4, titan.OpFld4, titan.OpFld8,
		titan.OpVld, titan.OpVldm:
		return true
	}
	return false
}

func isStore(op titan.Op) bool {
	switch op {
	case titan.OpSt1, titan.OpSt2, titan.OpSt4, titan.OpFst4, titan.OpFst8,
		titan.OpVst, titan.OpVstm:
		return true
	}
	return false
}

// latencyOf estimates result latency for priority computation.
func latencyOf(op titan.Op) int {
	switch op {
	case titan.OpMul, titan.OpMuli:
		return 4
	case titan.OpDiv, titan.OpRem:
		return 12
	case titan.OpLd1, titan.OpLd2, titan.OpLd4, titan.OpFld4, titan.OpFld8:
		return 6
	case titan.OpFadd, titan.OpFsub, titan.OpFmul, titan.OpFneg,
		titan.OpCvtIF, titan.OpCvtFI, titan.OpFmov, titan.OpFldi:
		return 6
	case titan.OpFdiv:
		return 18
	case titan.OpVld, titan.OpVst, titan.OpVadd, titan.OpVsub, titan.OpVmul,
		titan.OpVadds, titan.OpVsubs, titan.OpVsubsr, titan.OpVmuls, titan.OpVbcast,
		titan.OpVldm, titan.OpVstm, titan.OpVaddm, titan.OpVsubm, titan.OpVmulm,
		titan.OpVcmpLt, titan.OpVcmpLe, titan.OpVcmpEq, titan.OpVcmpNe,
		titan.OpVcmpLts, titan.OpVcmpLes, titan.OpVcmpEqs, titan.OpVcmpNes:
		return 16
	case titan.OpVdiv, titan.OpVdivs, titan.OpVdivsr, titan.OpVdivm:
		return 32
	default:
		return 1
	}
}

// scheduleBlock returns a legal execution order (indices into block) that
// greedily minimizes the in-order dispatch makespan: list scheduling with
// critical-path priority.
func scheduleBlock(block []titan.Instr) []int {
	n := len(block)
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}

	// Build dependences. Edges are collected into one pooled list and the
	// per-node successor slices carved from a single backing array
	// afterwards (insertion order preserved), instead of growing n small
	// slices.
	type depEdge struct{ from, to int }
	var edges []depEdge
	npred := make([]int, n)
	addEdge := func(a, b int) {
		edges = append(edges, depEdge{a, b})
		npred[b]++
	}
	lastDef := map[regRef]int{}
	lastUses := map[regRef][]int{}
	lastStore := -1
	var loadsSinceStore []int
	for i := 0; i < n; i++ {
		refs := instrRefs(block[i])
		for _, u := range refs.uses[:refs.nUse] {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i) // RAW
			}
			lastUses[u] = append(lastUses[u], i)
		}
		for _, d := range refs.defs[:refs.nDef] {
			if pd, ok := lastDef[d]; ok {
				addEdge(pd, i) // WAW
			}
			for _, u := range lastUses[d] {
				if u != i {
					addEdge(u, i) // WAR
				}
			}
			lastDef[d] = i
			lastUses[d] = nil
		}
		// Memory ordering.
		op := block[i].Op
		if isStore(op) {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i)
			}
			lastStore = i
			loadsSinceStore = nil
		} else if isLoad(op) {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
	}
	succ := make([][]int, n)
	succBacking := make([]int, len(edges))
	cnt := make([]int, n)
	for _, e := range edges {
		cnt[e.from]++
	}
	off := 0
	for i := 0; i < n; i++ {
		succ[i] = succBacking[off : off : off+cnt[i]]
		off += cnt[i]
	}
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}

	// Critical-path priority: longest latency-weighted path to any sink.
	// Loads get a small bonus — a load whose consumer lives in a later
	// block has no in-block successors, yet issuing it early still hides
	// its latency downstream.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, s := range succ[i] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[i] = best + latencyOf(block[i].Op)
		if isLoad(block[i].Op) {
			prio[i] += 2
		}
	}

	// List schedule: among ready instructions pick highest priority,
	// breaking ties by original order (stability).
	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if scheduled[i] || npred[i] > 0 {
				continue
			}
			if best == -1 || prio[i] > prio[best] {
				best = i
			}
		}
		if best == -1 {
			// Cycle (cannot happen with a well-formed DAG); bail out to
			// original order for safety.
			order = order[:0]
			for i := 0; i < n; i++ {
				order = append(order, i)
			}
			return order
		}
		scheduled[best] = true
		order = append(order, best)
		for _, s := range succ[best] {
			npred[s]--
		}
	}
	return order
}
