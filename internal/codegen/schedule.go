package codegen

// This file implements §6's instruction scheduling: within each basic
// block, instructions are list-scheduled by critical-path priority so that
// independent integer and floating-point instructions interleave and loads
// issue as early as their operands allow. The Titan dispatches in order,
// one instruction per cycle at best, so emission order is the schedule —
// hoisting loads above a dependent FP chain hides the memory latency, and
// mixing pointer bumps between FP operations fills the integer unit's
// otherwise idle slots ("changing the instruction order so that integer
// and floating point instructions overlap and so that memory access and
// computation overlap can provide a significant speedup in many
// programs", §2).
//
// Memory ordering is conservative: stores order against all other memory
// operations; loads reorder freely with loads. The dependence information
// that justified more aggressive reordering at the IL level has already
// been spent (register promotion removed the conflicting references), so
// the conservative rule loses nothing on the §6 workloads.

import "repro/internal/titan"

// Schedule reorders every function's basic blocks in place.
func Schedule(tp *titan.Program) {
	for _, f := range tp.Funcs {
		scheduleFunc(f)
	}
}

func scheduleFunc(f *titan.Func) {
	// Block boundaries: label targets and control transfers.
	isTarget := make([]bool, len(f.Instrs)+1)
	for _, idx := range f.Labels {
		isTarget[idx] = true
	}
	var out []titan.Instr
	// oldToNew maps old block-start indices to new positions; labels only
	// ever point at block starts (label targets force boundaries).
	oldToNew := map[int]int{}

	flush := func(block []titan.Instr, oldStart int) {
		oldToNew[oldStart] = len(out)
		order := scheduleBlock(block)
		for _, oi := range order {
			out = append(out, block[oi])
		}
	}

	start := 0
	for i := 0; i <= len(f.Instrs); i++ {
		atEnd := i == len(f.Instrs)
		if !atEnd && isTarget[i] {
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			start = i
		}
		if atEnd {
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			break
		}
		if isControl(f.Instrs[i].Op) {
			// Schedule the straight-line prefix, keep the control
			// instruction as the block terminator.
			if i > start {
				flush(f.Instrs[start:i], start)
			}
			oldToNew[i] = len(out)
			out = append(out, f.Instrs[i])
			start = i + 1
		}
	}

	// Remap labels. Every label target was recorded as a block start or a
	// control-instruction position.
	newLabels := make(map[string]int, len(f.Labels))
	for l, idx := range f.Labels {
		n, ok := oldToNew[idx]
		if !ok {
			// Defensive: leave the function unscheduled rather than emit
			// a wrong branch target.
			return
		}
		newLabels[l] = n
	}
	f.Labels = newLabels
	f.Instrs = out
}

func isControl(op titan.Op) bool {
	switch op {
	case titan.OpJmp, titan.OpBeqz, titan.OpBnez, titan.OpCall, titan.OpRet,
		titan.OpHalt, titan.OpParBegin, titan.OpParEnd, titan.OpArg, titan.OpFarg:
		return true
	}
	return false
}

// regClass distinguishes the register files for dependence tracking.
type regClass int

const (
	rcInt regClass = iota
	rcFlt
	rcVec
	rcVL // the vector length register
)

type regRef struct {
	class regClass
	num   int
}

// defsUses returns the registers an instruction writes and reads.
func defsUses(in titan.Instr) (defs, uses []regRef) {
	ir := func(n int) regRef { return regRef{rcInt, n} }
	fr := func(n int) regRef { return regRef{rcFlt, n} }
	vr := func(n int) regRef { return regRef{rcVec, n} }
	switch in.Op {
	case titan.OpLdi:
		defs = append(defs, ir(in.Rd))
	case titan.OpFldi:
		defs = append(defs, fr(in.Rd))
	case titan.OpMov, titan.OpNeg, titan.OpNot, titan.OpBnot, titan.OpAddi, titan.OpMuli:
		defs = append(defs, ir(in.Rd))
		uses = append(uses, ir(in.Rs1))
	case titan.OpAdd, titan.OpSub, titan.OpMul, titan.OpDiv, titan.OpRem,
		titan.OpAnd, titan.OpOr, titan.OpXor, titan.OpShl, titan.OpShr,
		titan.OpCmpEq, titan.OpCmpNe, titan.OpCmpLt, titan.OpCmpLe,
		titan.OpCmpGt, titan.OpCmpGe:
		defs = append(defs, ir(in.Rd))
		uses = append(uses, ir(in.Rs1), ir(in.Rs2))
	case titan.OpPid, titan.OpNproc:
		defs = append(defs, ir(in.Rd))
	case titan.OpLd1, titan.OpLd2, titan.OpLd4:
		defs = append(defs, ir(in.Rd))
		uses = append(uses, ir(in.Rs1))
	case titan.OpSt1, titan.OpSt2, titan.OpSt4:
		uses = append(uses, ir(in.Rs1), ir(in.Rs2))
	case titan.OpFld4, titan.OpFld8:
		defs = append(defs, fr(in.Rd))
		uses = append(uses, ir(in.Rs1))
	case titan.OpFst4, titan.OpFst8:
		uses = append(uses, ir(in.Rs1), fr(in.Rs2))
	case titan.OpFmov, titan.OpFneg:
		defs = append(defs, fr(in.Rd))
		uses = append(uses, fr(in.Rs1))
	case titan.OpFadd, titan.OpFsub, titan.OpFmul, titan.OpFdiv:
		defs = append(defs, fr(in.Rd))
		uses = append(uses, fr(in.Rs1), fr(in.Rs2))
	case titan.OpFcmpEq, titan.OpFcmpNe, titan.OpFcmpLt, titan.OpFcmpLe,
		titan.OpFcmpGt, titan.OpFcmpGe:
		defs = append(defs, ir(in.Rd))
		uses = append(uses, fr(in.Rs1), fr(in.Rs2))
	case titan.OpCvtIF:
		defs = append(defs, fr(in.Rd))
		uses = append(uses, ir(in.Rs1))
	case titan.OpCvtFI:
		defs = append(defs, ir(in.Rd))
		uses = append(uses, fr(in.Rs1))
	case titan.OpVsetl:
		defs = append(defs, regRef{rcVL, 0})
		uses = append(uses, ir(in.Rs1))
	case titan.OpVld:
		defs = append(defs, vr(in.Rd))
		uses = append(uses, ir(in.Rs1), ir(in.Rs2), regRef{rcVL, 0})
	case titan.OpVst:
		uses = append(uses, vr(in.Rd), ir(in.Rs1), ir(in.Rs2), regRef{rcVL, 0})
	case titan.OpVadd, titan.OpVsub, titan.OpVmul, titan.OpVdiv:
		defs = append(defs, vr(in.Rd))
		uses = append(uses, vr(in.Rs1), vr(in.Rs2), regRef{rcVL, 0})
	case titan.OpVadds, titan.OpVsubs, titan.OpVsubsr, titan.OpVmuls,
		titan.OpVdivs, titan.OpVdivsr:
		defs = append(defs, vr(in.Rd))
		uses = append(uses, vr(in.Rs1), fr(in.Rs2), regRef{rcVL, 0})
	case titan.OpVmov:
		defs = append(defs, vr(in.Rd))
		uses = append(uses, vr(in.Rs1), regRef{rcVL, 0})
	case titan.OpVbcast:
		defs = append(defs, vr(in.Rd))
		uses = append(uses, fr(in.Rs1), regRef{rcVL, 0})
	case titan.OpArg, titan.OpBeqz, titan.OpBnez:
		uses = append(uses, ir(in.Rs1))
	case titan.OpFarg:
		uses = append(uses, fr(in.Rs1))
	}
	return defs, uses
}

func isLoad(op titan.Op) bool {
	switch op {
	case titan.OpLd1, titan.OpLd2, titan.OpLd4, titan.OpFld4, titan.OpFld8, titan.OpVld:
		return true
	}
	return false
}

func isStore(op titan.Op) bool {
	switch op {
	case titan.OpSt1, titan.OpSt2, titan.OpSt4, titan.OpFst4, titan.OpFst8, titan.OpVst:
		return true
	}
	return false
}

// latencyOf estimates result latency for priority computation.
func latencyOf(op titan.Op) int {
	switch op {
	case titan.OpMul, titan.OpMuli:
		return 4
	case titan.OpDiv, titan.OpRem:
		return 12
	case titan.OpLd1, titan.OpLd2, titan.OpLd4, titan.OpFld4, titan.OpFld8:
		return 6
	case titan.OpFadd, titan.OpFsub, titan.OpFmul, titan.OpFneg,
		titan.OpCvtIF, titan.OpCvtFI, titan.OpFmov, titan.OpFldi:
		return 6
	case titan.OpFdiv:
		return 18
	case titan.OpVld, titan.OpVst, titan.OpVadd, titan.OpVsub, titan.OpVmul,
		titan.OpVadds, titan.OpVsubs, titan.OpVsubsr, titan.OpVmuls, titan.OpVbcast:
		return 16
	case titan.OpVdiv, titan.OpVdivs, titan.OpVdivsr:
		return 32
	default:
		return 1
	}
}

// scheduleBlock returns a legal execution order (indices into block) that
// greedily minimizes the in-order dispatch makespan: list scheduling with
// critical-path priority.
func scheduleBlock(block []titan.Instr) []int {
	n := len(block)
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}

	// Build dependences.
	succ := make([][]int, n)
	npred := make([]int, n)
	addEdge := func(a, b int) {
		succ[a] = append(succ[a], b)
		npred[b]++
	}
	lastDef := map[regRef]int{}
	lastUses := map[regRef][]int{}
	lastStore := -1
	var loadsSinceStore []int
	for i := 0; i < n; i++ {
		defs, uses := defsUses(block[i])
		for _, u := range uses {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i) // RAW
			}
			lastUses[u] = append(lastUses[u], i)
		}
		for _, d := range defs {
			if pd, ok := lastDef[d]; ok {
				addEdge(pd, i) // WAW
			}
			for _, u := range lastUses[d] {
				if u != i {
					addEdge(u, i) // WAR
				}
			}
			lastDef[d] = i
			lastUses[d] = nil
		}
		// Memory ordering.
		op := block[i].Op
		if isStore(op) {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i)
			}
			lastStore = i
			loadsSinceStore = nil
		} else if isLoad(op) {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
	}

	// Critical-path priority: longest latency-weighted path to any sink.
	// Loads get a small bonus — a load whose consumer lives in a later
	// block has no in-block successors, yet issuing it early still hides
	// its latency downstream.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, s := range succ[i] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[i] = best + latencyOf(block[i].Op)
		if isLoad(block[i].Op) {
			prio[i] += 2
		}
	}

	// List schedule: among ready instructions pick highest priority,
	// breaking ties by original order (stability).
	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if scheduled[i] || npred[i] > 0 {
				continue
			}
			if best == -1 || prio[i] > prio[best] {
				best = i
			}
		}
		if best == -1 {
			// Cycle (cannot happen with a well-formed DAG); bail out to
			// original order for safety.
			order = order[:0]
			for i := 0; i < n; i++ {
				order = append(order, i)
			}
			return order
		}
		scheduled[best] = true
		order = append(order, best)
		for _, s := range succ[best] {
			npred[s]--
		}
	}
	return order
}
