package codegen

import (
	"encoding/binary"
	"math"

	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/titan"
)

// This file generates scalar expressions. Evaluation is tree-walking into
// scratch registers with Sethi–Ullman-style ordering (the deeper operand
// first) to bound scratch pressure.

// evalInt evaluates e into a fresh integer register. The caller releases
// it with putInt.
func (g *gen) evalInt(e il.Expr) (int, error) {
	switch n := e.(type) {
	case *il.ConstInt:
		r, err := g.getInt()
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: r, Imm: n.Val})
		return r, nil
	case *il.VarRef:
		v := &g.p.Vars[n.ID]
		if isFloatType(v.Type) {
			// Implicit float→int use (rare: pointer/int context).
			fr, err := g.evalFlt(e)
			if err != nil {
				return 0, err
			}
			r, err := g.getInt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtFI, Rd: r, Rs1: fr})
			g.putFlt(fr)
			return r, nil
		}
		loc := g.locs[n.ID]
		if loc.kind == locIntReg {
			// Copy into a scratch so callers can overwrite freely? No:
			// treat variable registers as read-only sources; operations
			// write to fresh destinations, so returning the var register
			// directly is safe and avoids a move.
			return loc.reg, nil
		}
		r, err := g.getInt()
		if err != nil {
			return 0, err
		}
		g.loadFromLoc(loc, r, v.Type)
		return r, nil
	case *il.AddrOf:
		loc := g.locs[n.ID]
		r, err := g.getInt()
		if err != nil {
			return 0, err
		}
		switch loc.kind {
		case locStack:
			g.emit(titan.Instr{Op: titan.OpAddi, Rd: r, Rs1: regSP, Imm: loc.off})
		case locGlobal:
			g.emit(titan.Instr{Op: titan.OpLdi, Rd: r, Imm: loc.off})
		default:
			return 0, errf("address of register variable %s", g.p.Vars[n.ID].Name)
		}
		return r, nil
	case *il.Load:
		addr, err := g.evalInt(n.Addr)
		if err != nil {
			return 0, err
		}
		if isFloatType(n.T) {
			// Loading a float in integer context: convert.
			fr, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			op := titan.OpFld4
			if n.T.Kind == ctype.Double {
				op = titan.OpFld8
			}
			g.emit(titan.Instr{Op: op, Rd: fr, Rs1: addr})
			g.putInt(addr)
			r, err := g.getInt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtFI, Rd: r, Rs1: fr})
			g.putFlt(fr)
			return r, nil
		}
		r, err := g.getInt()
		if err != nil {
			return 0, err
		}
		var op titan.Op
		switch n.T.Size() {
		case 1:
			op = titan.OpLd1
		case 2:
			op = titan.OpLd2
		default:
			op = titan.OpLd4
		}
		g.emit(titan.Instr{Op: op, Rd: r, Rs1: addr})
		g.putInt(addr)
		// Narrow unsigned loads zero-extend (the memory ops sign-extend).
		if n.T.Unsigned && n.T.Size() < 4 {
			mask := int64(0xff)
			if n.T.Size() == 2 {
				mask = 0xffff
			}
			m, err := g.getInt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpLdi, Rd: m, Imm: mask})
			z, err := g.getInt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpAnd, Rd: z, Rs1: r, Rs2: m})
			g.putInt(m)
			g.putInt(r)
			return z, nil
		}
		return r, nil
	case *il.Bin:
		return g.binInt(n)
	case *il.Un:
		return g.unInt(n)
	case *il.Cast:
		if isFloatType(n.X.Type()) && n.T.IsInteger() {
			fr, err := g.evalFlt(n.X)
			if err != nil {
				return 0, err
			}
			r, err := g.getInt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtFI, Rd: r, Rs1: fr})
			g.putFlt(fr)
			return r, nil
		}
		return g.evalInt(n.X)
	case *il.ConstFloat:
		r, err := g.getInt()
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: r, Imm: int64(n.Val)})
		return r, nil
	}
	return 0, errf("cannot evaluate %T in integer context", e)
}

// isUnsigned reports whether an expression's C type is unsigned.
func isUnsigned(e il.Expr) bool {
	t := e.Type()
	return t != nil && t.Unsigned
}

// zext32 truncates a register to its unsigned-32-bit value in a fresh
// scratch register. Registers are 64-bit; C's unsigned comparisons,
// divisions, and right shifts need the canonical zero-extended value.
func (g *gen) zext32(r int) (int, error) {
	m, err := g.getInt()
	if err != nil {
		return 0, err
	}
	g.emit(titan.Instr{Op: titan.OpLdi, Rd: m, Imm: 0xffffffff})
	d, err := g.getInt()
	if err != nil {
		return 0, err
	}
	g.emit(titan.Instr{Op: titan.OpAnd, Rd: d, Rs1: r, Rs2: m})
	g.putInt(m)
	return d, nil
}

// float comparison produces an int; binInt dispatches.
func (g *gen) binInt(n *il.Bin) (int, error) {
	// Comparisons over float operands run in the FP unit.
	if n.Op.IsComparison() && (isFloatType(n.L.Type()) || isFloatType(n.R.Type())) {
		l, err := g.evalFlt(n.L)
		if err != nil {
			return 0, err
		}
		r, err := g.evalFlt(n.R)
		if err != nil {
			return 0, err
		}
		d, err := g.getInt()
		if err != nil {
			return 0, err
		}
		var op titan.Op
		switch n.Op {
		case il.OpEq:
			op = titan.OpFcmpEq
		case il.OpNe:
			op = titan.OpFcmpNe
		case il.OpLt:
			op = titan.OpFcmpLt
		case il.OpLe:
			op = titan.OpFcmpLe
		case il.OpGt:
			op = titan.OpFcmpGt
		case il.OpGe:
			op = titan.OpFcmpGe
		}
		g.emit(titan.Instr{Op: op, Rd: d, Rs1: l, Rs2: r})
		g.putFlt(l)
		g.putFlt(r)
		return d, nil
	}

	// x + const and x * const use immediate forms.
	if c, ok := il.IsIntConst(n.R); ok && (n.Op == il.OpAdd || n.Op == il.OpSub || n.Op == il.OpMul) {
		l, err := g.evalInt(n.L)
		if err != nil {
			return 0, err
		}
		d, err := g.getInt()
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case il.OpAdd:
			g.emit(titan.Instr{Op: titan.OpAddi, Rd: d, Rs1: l, Imm: c})
		case il.OpSub:
			g.emit(titan.Instr{Op: titan.OpAddi, Rd: d, Rs1: l, Imm: -c})
		case il.OpMul:
			g.emit(titan.Instr{Op: titan.OpMuli, Rd: d, Rs1: l, Imm: c})
		}
		g.putInt(l)
		return d, nil
	}

	// Deeper operand first (Sethi–Ullman).
	first, second := n.L, n.R
	swapped := false
	if depth(n.R) > depth(n.L) {
		first, second = n.R, n.L
		swapped = true
	}
	a, err := g.evalInt(first)
	if err != nil {
		return 0, err
	}
	b, err := g.evalInt(second)
	if err != nil {
		return 0, err
	}
	l, r := a, b
	if swapped {
		l, r = b, a
	}
	// Unsigned semantics: relational comparisons, division, remainder and
	// right shift need the canonical 32-bit zero-extended operands.
	needsUnsigned := false
	switch n.Op {
	case il.OpDiv, il.OpRem, il.OpShr:
		needsUnsigned = n.T != nil && n.T.Unsigned
	case il.OpLt, il.OpLe, il.OpGt, il.OpGe:
		needsUnsigned = isUnsigned(n.L) || isUnsigned(n.R)
	}
	if needsUnsigned {
		zl, err := g.zext32(l)
		if err != nil {
			return 0, err
		}
		zr, err := g.zext32(r)
		if err != nil {
			return 0, err
		}
		g.putInt(a)
		g.putInt(b)
		l, r = zl, zr
		a, b = zl, zr
	}
	d, err := g.getInt()
	if err != nil {
		return 0, err
	}
	var op titan.Op
	switch n.Op {
	case il.OpAdd:
		op = titan.OpAdd
	case il.OpSub:
		op = titan.OpSub
	case il.OpMul:
		op = titan.OpMul
	case il.OpDiv:
		op = titan.OpDiv
	case il.OpRem:
		op = titan.OpRem
	case il.OpAnd:
		op = titan.OpAnd
	case il.OpOr:
		op = titan.OpOr
	case il.OpXor:
		op = titan.OpXor
	case il.OpShl:
		op = titan.OpShl
	case il.OpShr:
		op = titan.OpShr
	case il.OpEq:
		op = titan.OpCmpEq
	case il.OpNe:
		op = titan.OpCmpNe
	case il.OpLt:
		op = titan.OpCmpLt
	case il.OpLe:
		op = titan.OpCmpLe
	case il.OpGt:
		op = titan.OpCmpGt
	case il.OpGe:
		op = titan.OpCmpGe
	default:
		return 0, errf("integer operator %v unsupported", n.Op)
	}
	g.emit(titan.Instr{Op: op, Rd: d, Rs1: l, Rs2: r})
	g.putInt(a)
	g.putInt(b)
	return d, nil
}

func (g *gen) unInt(n *il.Un) (int, error) {
	x, err := g.evalInt(n.X)
	if err != nil {
		return 0, err
	}
	d, err := g.getInt()
	if err != nil {
		return 0, err
	}
	var op titan.Op
	switch n.Op {
	case il.OpNeg:
		op = titan.OpNeg
	case il.OpNot:
		op = titan.OpNot
	case il.OpBitNot:
		op = titan.OpBnot
	default:
		return 0, errf("integer unary %v unsupported", n.Op)
	}
	g.emit(titan.Instr{Op: op, Rd: d, Rs1: x})
	g.putInt(x)
	return d, nil
}

// evalFlt evaluates e into a fresh float register.
func (g *gen) evalFlt(e il.Expr) (int, error) {
	switch n := e.(type) {
	case *il.ConstFloat:
		r, err := g.getFlt()
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: titan.OpFldi, Rd: r, FImm: n.Val})
		return r, nil
	case *il.ConstInt:
		r, err := g.getFlt()
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: titan.OpFldi, Rd: r, FImm: float64(n.Val)})
		return r, nil
	case *il.VarRef:
		v := &g.p.Vars[n.ID]
		if !isFloatType(v.Type) {
			ir, err := g.evalInt(e)
			if err != nil {
				return 0, err
			}
			r, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtIF, Rd: r, Rs1: ir})
			g.putInt(ir)
			return r, nil
		}
		loc := g.locs[n.ID]
		if loc.kind == locFltReg {
			return loc.reg, nil
		}
		r, err := g.getFlt()
		if err != nil {
			return 0, err
		}
		g.loadFromLoc(loc, r, v.Type)
		return r, nil
	case *il.Load:
		if !isFloatType(n.T) {
			ir, err := g.evalInt(e)
			if err != nil {
				return 0, err
			}
			r, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtIF, Rd: r, Rs1: ir})
			g.putInt(ir)
			return r, nil
		}
		addr, err := g.evalInt(n.Addr)
		if err != nil {
			return 0, err
		}
		r, err := g.getFlt()
		if err != nil {
			return 0, err
		}
		op := titan.OpFld4
		if n.T.Kind == ctype.Double {
			op = titan.OpFld8
		}
		g.emit(titan.Instr{Op: op, Rd: r, Rs1: addr})
		g.putInt(addr)
		return r, nil
	case *il.Bin:
		first, second := n.L, n.R
		swapped := false
		if depth(n.R) > depth(n.L) {
			first, second = n.R, n.L
			swapped = true
		}
		a, err := g.evalFlt(first)
		if err != nil {
			return 0, err
		}
		b, err := g.evalFlt(second)
		if err != nil {
			return 0, err
		}
		l, r := a, b
		if swapped {
			l, r = b, a
		}
		d, err := g.getFlt()
		if err != nil {
			return 0, err
		}
		var op titan.Op
		switch n.Op {
		case il.OpAdd:
			op = titan.OpFadd
		case il.OpSub:
			op = titan.OpFsub
		case il.OpMul:
			op = titan.OpFmul
		case il.OpDiv:
			op = titan.OpFdiv
		default:
			return 0, errf("float operator %v unsupported", n.Op)
		}
		g.emit(titan.Instr{Op: op, Rd: d, Rs1: l, Rs2: r})
		g.putFlt(a)
		g.putFlt(b)
		return d, nil
	case *il.Un:
		if n.Op == il.OpNeg {
			x, err := g.evalFlt(n.X)
			if err != nil {
				return 0, err
			}
			d, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpFneg, Rd: d, Rs1: x})
			g.putFlt(x)
			return d, nil
		}
		return 0, errf("float unary %v unsupported", n.Op)
	case *il.Cast:
		if n.T.IsFloat() && !isFloatType(n.X.Type()) {
			ir, err := g.evalInt(n.X)
			if err != nil {
				return 0, err
			}
			r, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpCvtIF, Rd: r, Rs1: ir})
			g.putInt(ir)
			return r, nil
		}
		return g.evalFlt(n.X)
	}
	return 0, errf("cannot evaluate %T in float context", e)
}

// depth estimates register pressure for Sethi–Ullman ordering.
func depth(e il.Expr) int {
	switch n := e.(type) {
	case *il.Bin:
		l, r := depth(n.L), depth(n.R)
		if l == r {
			return l + 1
		}
		if l > r {
			return l
		}
		return r
	case *il.Un:
		return depth(n.X)
	case *il.Cast:
		return depth(n.X)
	case *il.Load:
		return depth(n.Addr) + 1
	default:
		return 1
	}
}

// ------------------------------------------------------------ data helpers

func f32bits(v float32) uint32 { return math.Float32bits(v) }
func f64bits(v float64) uint64 { return math.Float64bits(v) }

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
