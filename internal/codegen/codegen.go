// Package codegen lowers optimized IL to Titan instructions.
//
// Register allocation follows the paper's plan (§3): the compiler leans on
// a large register file and "generates temporary variables with a fair
// amount of impunity", expecting them to live in registers. Scalars that
// never have their address taken get dedicated registers; address-taken
// variables, arrays and aggregates live in the stack frame; globals and
// exported statics live in the data segment. Register-windowed calls keep
// the convention simple (arguments in r8../f8.., results in r2/f2).
//
// Vector statements lower to VSETL/VLD/arith/VST sequences over vector
// register file sections; do-parallel loops bracket their body in
// PAR.BEGIN/PAR.END markers and stride by processor count, matching the
// runtime's iteration-spreading contract (§2).
package codegen

import (
	"fmt"

	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/titan"
)

// Register map (64 int + 64 float registers; the Titan's register file is
// large, §2).
const (
	regSP     = titan.RegSP
	regRet    = titan.RegRetInt
	regArg0   = titan.RegArg0
	scratchLo = 16
	scratchHi = 31 // inclusive
	varLo     = 32
	varHi     = 63
)

// vecSlotStride spaces vector register file sections; VL must not exceed
// it.
const vecSlotStride = 128

// Error is a code generation failure.
type Error struct{ Msg string }

func (e *Error) Error() string { return "codegen: " + e.Msg }

func errf(format string, args ...interface{}) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Generate lowers a whole program.
func Generate(prog *il.Program) (*titan.Program, error) {
	tp := &titan.Program{
		Funcs:      map[string]*titan.Func{},
		DataBase:   4096,
		GlobalAddr: map[string]int64{},
		MemSize:    1 << 24,
	}
	// Lay out globals.
	addr := tp.DataBase
	align := func(a int64, n int64) int64 { return (a + n - 1) / n * n }
	for _, g := range prog.Globals {
		size := int64(g.Type.Size())
		if size == 0 {
			size = 4
		}
		addr = align(addr, 8)
		tp.GlobalAddr[g.Name] = addr
		addr += size
	}
	data := make([]byte, addr-tp.DataBase)
	for _, g := range prog.Globals {
		off := tp.GlobalAddr[g.Name] - tp.DataBase
		if g.Data != nil {
			copy(data[off:], g.Data)
			continue
		}
		if g.HasInit {
			writeScalar(data[off:], g.Type, g.InitInt, g.InitFloat)
		}
	}
	tp.Data = data

	for _, p := range prog.Procs {
		f, err := genProc(p, tp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		tp.Funcs[p.Name] = f
	}
	Peephole(tp)
	return tp, nil
}

func writeScalar(b []byte, t *ctype.Type, iv int64, fv float64) {
	switch {
	case t.Kind == ctype.Float:
		bits := f32bits(float32(pickF(t, iv, fv)))
		putU32(b, bits)
	case t.Kind == ctype.Double:
		putU64(b, f64bits(pickF(t, iv, fv)))
	case t.Size() == 1:
		b[0] = byte(iv)
	case t.Size() == 2:
		b[0], b[1] = byte(iv), byte(iv>>8)
	default:
		putU32(b, uint32(iv))
	}
}

func pickF(t *ctype.Type, iv int64, fv float64) float64 {
	if fv != 0 {
		return fv
	}
	return float64(iv)
}

// location describes where a variable lives.
type locKind int

const (
	locIntReg locKind = iota
	locFltReg
	locStack  // frame offset from SP
	locGlobal // absolute address
)

type location struct {
	kind locKind
	reg  int
	off  int64 // stack offset or global address
}

type gen struct {
	p     *il.Proc
	tp    *titan.Program
	f     *titan.Func
	locs  []location
	frame int64
	// scratch pools
	intFree  []int
	fltFree  []int
	labelSeq int
	// spillBase is the frame area for expression spills.
	vecSlotNext int
	// maskNext allocates vector-mask registers within one masked vector
	// statement (reset per statement; the compare/combine tree is short).
	maskNext int
	// sync is the active DOACROSS register context; non-nil only while
	// lowering the body of a DoParallel with a Sync annotation.
	sync *syncGen
}

// syncGen holds the registers doParallel sets up for a DOACROSS region so
// SyncPost/SyncWait markers in the body can lower to post/wait. Cells are
// indexed by processor id: each processor posts its own cell and waits on
// the cell of the processor running iteration iv - dist·step.
type syncGen struct {
	postCell int // r: this processor's cell (= pid)
	waitCell int // r: producer's cell ((pid - dist mod np) mod np)
	selfDiff int // r: waitCell - pid; 0 → dependence stays on-processor
	initR    int // r: loop init value, for the startup guard
	iv       int // r: induction variable
	stepC    int64
	dist     int64 // dependence distance, iterations
	stride   int64 // SyncStride: post every stride-th local iteration
	// stride > 1 extras: producers post only on their lattice
	// {local index ≡ 0 mod stride}, so consumers round thresholds up to
	// the producer's lattice (legal only when dist ≥ stride·np, checked
	// by schedule.Check, which keeps the awaited iteration strictly
	// earlier than the waiter and the pipeline deadlock-free).
	baseQ  int // r: init + waitCell·step (producer lattice origin)
	period int // r: stride·np·step (producer lattice period, iv units)
	zero   int // r: 0
	cd     int // r: post countdown
}

func genProc(p *il.Proc, tp *titan.Program) (*titan.Func, error) {
	g := &gen{
		p:  p,
		tp: tp,
		f:  &titan.Func{Name: p.Name, Labels: map[string]int{}},
	}
	for r := scratchLo; r <= scratchHi; r++ {
		g.intFree = append(g.intFree, r)
		g.fltFree = append(g.fltFree, r)
	}
	if err := g.allocate(); err != nil {
		return nil, err
	}
	// Prologue: reserve the frame and bind parameters.
	if g.frame > 0 {
		g.emit(titan.Instr{Op: titan.OpAddi, Rd: regSP, Rs1: regSP, Imm: -g.frame})
	}
	intArg, fltArg := 0, 0
	for _, id := range p.Params {
		v := &p.Vars[id]
		isFlt := v.Type.IsFloat()
		var argReg int
		if isFlt {
			argReg = titan.FRegArg0 + fltArg
			fltArg++
		} else {
			argReg = regArg0 + intArg
			intArg++
		}
		if argReg > 15 {
			return nil, errf("too many parameters (max 8 of a kind)")
		}
		loc := g.locs[id]
		switch loc.kind {
		case locIntReg:
			g.emit(titan.Instr{Op: titan.OpMov, Rd: loc.reg, Rs1: argReg})
		case locFltReg:
			g.emit(titan.Instr{Op: titan.OpFmov, Rd: loc.reg, Rs1: argReg})
		case locStack:
			g.storeToLoc(loc, argReg, v.Type)
		}
	}
	if err := g.stmts(p.Body); err != nil {
		return nil, err
	}
	g.emit(titan.Instr{Op: titan.OpRet})
	return g.f, nil
}

// allocate assigns every variable a location.
func (g *gen) allocate() error {
	intReg := varLo
	fltReg := varLo
	g.locs = make([]location, len(g.p.Vars))
	for i := range g.p.Vars {
		v := &g.p.Vars[i]
		switch v.Class {
		case il.ClassGlobal, il.ClassStatic:
			a, ok := g.tp.GlobalAddr[v.Name]
			if !ok {
				// An extern never defined in this unit: allocate it now at
				// the end of memory-mapped data? Give it a fresh address.
				a = g.tp.DataBase + int64(len(g.tp.Data))
				g.tp.GlobalAddr[v.Name] = a
				grow := make([]byte, int64(v.Type.Size()))
				g.tp.Data = append(g.tp.Data, grow...)
			}
			g.locs[i] = location{kind: locGlobal, off: a}
			continue
		}
		needsMemory := v.AddrTaken || v.Type.Kind == ctype.Array || v.Type.IsAggregate()
		if needsMemory {
			size := int64(v.Type.Size())
			if size == 0 {
				size = 4
			}
			g.frame = (g.frame + 7) / 8 * 8
			g.locs[i] = location{kind: locStack, off: g.frame}
			g.frame += size
			continue
		}
		if v.Type.IsFloat() {
			if fltReg <= varHi {
				g.locs[i] = location{kind: locFltReg, reg: fltReg}
				fltReg++
				continue
			}
		} else {
			if intReg <= varHi {
				g.locs[i] = location{kind: locIntReg, reg: intReg}
				intReg++
				continue
			}
		}
		// Register file exhausted: stack slot.
		g.frame = (g.frame + 7) / 8 * 8
		g.locs[i] = location{kind: locStack, off: g.frame}
		g.frame += 8
	}
	return nil
}

func (g *gen) emit(in titan.Instr) { g.f.Instrs = append(g.f.Instrs, in) }

func (g *gen) label(name string) { g.f.Labels[name] = len(g.f.Instrs) }

func (g *gen) newLabel(hint string) string {
	g.labelSeq++
	return fmt.Sprintf(".%s.%s%d", g.p.Name, hint, g.labelSeq)
}

// scratch register management.
func (g *gen) getInt() (int, error) {
	if len(g.intFree) == 0 {
		return 0, errf("integer expression too complex (scratch exhausted)")
	}
	r := g.intFree[len(g.intFree)-1]
	g.intFree = g.intFree[:len(g.intFree)-1]
	return r, nil
}

func (g *gen) getFlt() (int, error) {
	if len(g.fltFree) == 0 {
		return 0, errf("float expression too complex (scratch exhausted)")
	}
	r := g.fltFree[len(g.fltFree)-1]
	g.fltFree = g.fltFree[:len(g.fltFree)-1]
	return r, nil
}

func (g *gen) putInt(r int) {
	if r >= scratchLo && r <= scratchHi {
		g.intFree = append(g.intFree, r)
	}
}

func (g *gen) putFlt(r int) {
	if r >= scratchLo && r <= scratchHi {
		g.fltFree = append(g.fltFree, r)
	}
}

// isFloatType reports whether e computes in the FP unit.
func isFloatType(t *ctype.Type) bool { return t != nil && t.IsFloat() }

// ---------------------------------------------------------------- statements

func (g *gen) stmts(list []il.Stmt) error {
	for _, s := range list {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s il.Stmt) error {
	switch n := s.(type) {
	case *il.Assign:
		return g.assign(n)
	case *il.PredAssign:
		return g.predAssign(n)
	case *il.Call:
		return g.call(n)
	case *il.If:
		return g.ifStmt(n)
	case *il.While:
		return g.whileStmt(n)
	case *il.DoLoop:
		return g.doLoop(n)
	case *il.DoParallel:
		return g.doParallel(n)
	case *il.SyncPost:
		return g.syncPost(n)
	case *il.SyncWait:
		return g.syncWait(n)
	case *il.VectorAssign:
		return g.vectorAssign(n)
	case *il.Goto:
		g.emit(titan.Instr{Op: titan.OpJmp, Sym: ".L" + n.Target})
		return nil
	case *il.Label:
		g.label(".L" + n.Name)
		return nil
	case *il.Return:
		if n.Val != nil {
			if isFloatType(n.Val.Type()) {
				r, err := g.evalFlt(n.Val)
				if err != nil {
					return err
				}
				g.emit(titan.Instr{Op: titan.OpFmov, Rd: titan.RegRetFlt, Rs1: r})
				g.putFlt(r)
			} else {
				r, err := g.evalInt(n.Val)
				if err != nil {
					return err
				}
				g.emit(titan.Instr{Op: titan.OpMov, Rd: regRet, Rs1: r})
				g.putInt(r)
			}
		}
		g.emit(titan.Instr{Op: titan.OpRet})
		return nil
	}
	return errf("unhandled statement %T", s)
}

func (g *gen) assign(n *il.Assign) error {
	switch dst := n.Dst.(type) {
	case *il.VarRef:
		v := &g.p.Vars[dst.ID]
		loc := g.locs[dst.ID]
		if isFloatType(v.Type) {
			r, err := g.evalFlt(n.Src)
			if err != nil {
				return err
			}
			switch loc.kind {
			case locFltReg:
				g.emit(titan.Instr{Op: titan.OpFmov, Rd: loc.reg, Rs1: r})
			default:
				g.storeToLoc(loc, r, v.Type)
			}
			g.putFlt(r)
			return nil
		}
		r, err := g.evalInt(n.Src)
		if err != nil {
			return err
		}
		switch loc.kind {
		case locIntReg:
			g.emit(titan.Instr{Op: titan.OpMov, Rd: loc.reg, Rs1: r})
		default:
			g.storeToLoc(loc, r, v.Type)
		}
		g.putInt(r)
		return nil
	case *il.Load:
		addr, err := g.evalInt(dst.Addr)
		if err != nil {
			return err
		}
		t := dst.T
		if isFloatType(t) {
			val, err := g.evalFlt(n.Src)
			if err != nil {
				return err
			}
			op := titan.OpFst4
			if t.Kind == ctype.Double {
				op = titan.OpFst8
			}
			g.emit(titan.Instr{Op: op, Rs1: addr, Rs2: val})
			g.putFlt(val)
		} else {
			val, err := g.evalInt(n.Src)
			if err != nil {
				return err
			}
			var op titan.Op
			switch t.Size() {
			case 1:
				op = titan.OpSt1
			case 2:
				op = titan.OpSt2
			default:
				op = titan.OpSt4
			}
			g.emit(titan.Instr{Op: op, Rs1: addr, Rs2: val})
			g.putInt(val)
		}
		g.putInt(addr)
		return nil
	}
	return errf("bad assignment destination %T", n.Dst)
}

// predAssign lowers a predicated store in its serial (branchy) form: the
// guard is evaluated and a branch skips the store on false lanes. Masked
// vector execution of predicated statements happens in vectorAssign; this
// path covers serial residue loops and branchy-serial schedules.
func (g *gen) predAssign(n *il.PredAssign) error {
	cond, err := g.evalInt(n.Cond)
	if err != nil {
		return err
	}
	skipL := g.newLabel("pskip")
	g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: cond, Sym: skipL})
	g.putInt(cond)
	if err := g.assign(&il.Assign{Dst: n.Dst, Src: n.Src, Pos: n.Pos}); err != nil {
		return err
	}
	g.label(skipL)
	return nil
}

// storeToLoc stores register r (of var type t) to a stack or global
// location.
func (g *gen) storeToLoc(loc location, r int, t *ctype.Type) {
	var base, off = regSP, loc.off
	if loc.kind == locGlobal {
		// Absolute addressing via scratch-free immediate base: use r0?
		// Titan has no zero register; materialize in a scratch... store
		// ops take (rs1 + imm); use rs1 = SP trick is wrong. Emit LDI into
		// the reserved assembler temp r15? r15 may hold an argument.
		// Reserve r7 as the assembler temporary (never otherwise used).
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: asmTemp, Imm: loc.off})
		base, off = asmTemp, 0
	}
	if isFloatType(t) {
		op := titan.OpFst4
		if t.Kind == ctype.Double {
			op = titan.OpFst8
		}
		g.emit(titan.Instr{Op: op, Rs1: base, Rs2: r, Imm: off})
		return
	}
	var op titan.Op
	switch t.Size() {
	case 1:
		op = titan.OpSt1
	case 2:
		op = titan.OpSt2
	default:
		op = titan.OpSt4
	}
	g.emit(titan.Instr{Op: op, Rs1: base, Rs2: r, Imm: off})
}

// asmTemp is a register reserved for assembler-level address
// materialization.
const asmTemp = 7

func (g *gen) loadFromLoc(loc location, rd int, t *ctype.Type) {
	base, off := regSP, loc.off
	if loc.kind == locGlobal {
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: asmTemp, Imm: loc.off})
		base, off = asmTemp, 0
	}
	if isFloatType(t) {
		op := titan.OpFld4
		if t.Kind == ctype.Double {
			op = titan.OpFld8
		}
		g.emit(titan.Instr{Op: op, Rd: rd, Rs1: base, Imm: off})
		return
	}
	var op titan.Op
	switch t.Size() {
	case 1:
		op = titan.OpLd1
	case 2:
		op = titan.OpLd2
	default:
		op = titan.OpLd4
	}
	g.emit(titan.Instr{Op: op, Rd: rd, Rs1: base, Imm: off})
}

func (g *gen) call(n *il.Call) error {
	if n.FunPtr != nil {
		return errf("indirect calls are not supported by the code generator")
	}
	intArg, fltArg := 0, 0
	for _, a := range n.Args {
		if isFloatType(a.Type()) {
			r, err := g.evalFlt(a)
			if err != nil {
				return err
			}
			g.emit(titan.Instr{Op: titan.OpFmov, Rd: titan.FRegArg0 + fltArg, Rs1: r})
			g.emit(titan.Instr{Op: titan.OpFarg, Rs1: r})
			g.putFlt(r)
			fltArg++
		} else {
			r, err := g.evalInt(a)
			if err != nil {
				return err
			}
			g.emit(titan.Instr{Op: titan.OpMov, Rd: regArg0 + intArg, Rs1: r})
			g.emit(titan.Instr{Op: titan.OpArg, Rs1: r})
			g.putInt(r)
			intArg++
		}
		if intArg > 7 || fltArg > 7 {
			return errf("too many call arguments")
		}
	}
	g.emit(titan.Instr{Op: titan.OpCall, Sym: n.Callee})
	if n.Dst != il.NoVar {
		v := &g.p.Vars[n.Dst]
		loc := g.locs[n.Dst]
		if isFloatType(v.Type) {
			switch loc.kind {
			case locFltReg:
				g.emit(titan.Instr{Op: titan.OpFmov, Rd: loc.reg, Rs1: titan.RegRetFlt})
			default:
				g.storeToLoc(loc, titan.RegRetFlt, v.Type)
			}
		} else {
			switch loc.kind {
			case locIntReg:
				g.emit(titan.Instr{Op: titan.OpMov, Rd: loc.reg, Rs1: regRet})
			default:
				g.storeToLoc(loc, regRet, v.Type)
			}
		}
	}
	return nil
}

func (g *gen) ifStmt(n *il.If) error {
	cond, err := g.evalInt(n.Cond)
	if err != nil {
		return err
	}
	elseL := g.newLabel("else")
	endL := g.newLabel("endif")
	g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: cond, Sym: elseL})
	g.putInt(cond)
	if err := g.stmts(n.Then); err != nil {
		return err
	}
	if len(n.Else) > 0 {
		g.emit(titan.Instr{Op: titan.OpJmp, Sym: endL})
		g.label(elseL)
		if err := g.stmts(n.Else); err != nil {
			return err
		}
		g.label(endL)
	} else {
		g.label(elseL)
	}
	return nil
}

func (g *gen) whileStmt(n *il.While) error {
	topL := g.newLabel("wtop")
	endL := g.newLabel("wend")
	g.label(topL)
	cond, err := g.evalInt(n.Cond)
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: cond, Sym: endL})
	g.putInt(cond)
	if err := g.stmts(n.Body); err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpJmp, Sym: topL})
	g.label(endL)
	return nil
}

// loopRegs evaluates a DO loop's header into dedicated registers. The IV
// gets its allocated variable register; limit lives in a scratch register
// held for the loop's duration.
func (g *gen) doLoop(n *il.DoLoop) error {
	stepC, ok := il.IsIntConst(n.Step)
	if !ok {
		return errf("DO loop step must be a constant after optimization")
	}
	ivLoc := g.locs[n.IV]
	if ivLoc.kind != locIntReg {
		return errf("loop variable not in a register")
	}
	iv := ivLoc.reg
	initR, err := g.evalInt(n.Init)
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpMov, Rd: iv, Rs1: initR})
	g.putInt(initR)
	limR, err := g.evalInt(n.Limit)
	if err != nil {
		return err
	}
	topL := g.newLabel("dtop")
	endL := g.newLabel("dend")
	g.label(topL)
	t, err := g.getInt()
	if err != nil {
		return err
	}
	if stepC > 0 {
		g.emit(titan.Instr{Op: titan.OpCmpGt, Rd: t, Rs1: iv, Rs2: limR})
	} else {
		g.emit(titan.Instr{Op: titan.OpCmpLt, Rd: t, Rs1: iv, Rs2: limR})
	}
	g.emit(titan.Instr{Op: titan.OpBnez, Rs1: t, Sym: endL})
	g.putInt(t)
	if err := g.stmts(n.Body); err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpAddi, Rd: iv, Rs1: iv, Imm: stepC})
	g.emit(titan.Instr{Op: titan.OpJmp, Sym: topL})
	g.label(endL)
	g.putInt(limR)
	return nil
}

// doParallel emits the §2 iteration-spreading shape: each processor starts
// at init + pid·step and strides by nproc·step.
func (g *gen) doParallel(n *il.DoParallel) error {
	stepC, ok := il.IsIntConst(n.Step)
	if !ok {
		return errf("parallel loop step must be constant")
	}
	ivLoc := g.locs[n.IV]
	if ivLoc.kind != locIntReg {
		return errf("parallel loop variable not in a register")
	}
	iv := ivLoc.reg
	initR, err := g.evalInt(n.Init)
	if err != nil {
		return err
	}
	limR, err := g.evalInt(n.Limit)
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpParBegin})
	pid, err := g.getInt()
	if err != nil {
		return err
	}
	np, err := g.getInt()
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpPid, Rd: pid})
	g.emit(titan.Instr{Op: titan.OpNproc, Rd: np})
	prevSync := g.sync
	g.sync = nil
	var sy *syncGen
	if n.Sync != nil {
		if stepC <= 0 {
			return errf("DOACROSS loop requires a positive constant step")
		}
		sy = &syncGen{stepC: stepC, dist: n.Sync.Distance, stride: int64(n.Sync.Stride), iv: iv, initR: initR}
		if sy.stride < 1 {
			sy.stride = 1
		}
		if sy.postCell, err = g.getInt(); err != nil {
			return err
		}
		// The post cell is this processor's id. Computed before the
		// width cap so sitting-out processors still reach the sentinel
		// post at the join with a valid cell.
		g.emit(titan.Instr{Op: titan.OpMov, Rd: sy.postCell, Rs1: pid})
	}
	topL := g.newLabel("ptop")
	endL := g.newLabel("pend")
	if n.Width > 0 {
		// The schedule capped the spread: np = min(np, width), and
		// processors with pid ≥ np sit the loop out (they still reach the
		// ParEnd join). The engines are untouched — width is purely a
		// different program.
		w, err := g.getInt()
		if err != nil {
			return err
		}
		t, err := g.getInt()
		if err != nil {
			return err
		}
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: w, Imm: int64(n.Width)})
		g.emit(titan.Instr{Op: titan.OpCmpLt, Rd: t, Rs1: w, Rs2: np})
		skipL := g.newLabel("pcap")
		g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: t, Sym: skipL})
		g.emit(titan.Instr{Op: titan.OpMov, Rd: np, Rs1: w})
		g.label(skipL)
		g.emit(titan.Instr{Op: titan.OpCmpLt, Rd: t, Rs1: pid, Rs2: np})
		g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: t, Sym: endL})
		g.putInt(w)
		g.putInt(t)
	}
	if sy != nil {
		// waitCell = (pid - dist mod np + np) mod np: the processor that
		// runs iteration iv - dist·step under the cyclic spread. pid and
		// np are still the raw values here (the width cap only shrinks
		// np, which is exactly what the cyclic map uses).
		if sy.waitCell, err = g.getInt(); err != nil {
			return err
		}
		if sy.selfDiff, err = g.getInt(); err != nil {
			return err
		}
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: sy.waitCell, Imm: sy.dist})
		g.emit(titan.Instr{Op: titan.OpRem, Rd: sy.waitCell, Rs1: sy.waitCell, Rs2: np})
		g.emit(titan.Instr{Op: titan.OpSub, Rd: sy.waitCell, Rs1: pid, Rs2: sy.waitCell})
		g.emit(titan.Instr{Op: titan.OpAdd, Rd: sy.waitCell, Rs1: sy.waitCell, Rs2: np})
		g.emit(titan.Instr{Op: titan.OpRem, Rd: sy.waitCell, Rs1: sy.waitCell, Rs2: np})
		g.emit(titan.Instr{Op: titan.OpSub, Rd: sy.selfDiff, Rs1: sy.waitCell, Rs2: pid})
	}
	// iv = init + pid*step
	g.emit(titan.Instr{Op: titan.OpMuli, Rd: pid, Rs1: pid, Imm: stepC})
	g.emit(titan.Instr{Op: titan.OpAdd, Rd: iv, Rs1: initR, Rs2: pid})
	// stride = nproc * step (reuse np)
	g.emit(titan.Instr{Op: titan.OpMuli, Rd: np, Rs1: np, Imm: stepC})
	if sy == nil {
		g.putInt(initR)
	} else if sy.stride > 1 {
		// Producer lattice for threshold rounding: origin init +
		// waitCell·step, period stride·np·step (np already holds
		// np·step here).
		if sy.baseQ, err = g.getInt(); err != nil {
			return err
		}
		if sy.period, err = g.getInt(); err != nil {
			return err
		}
		if sy.zero, err = g.getInt(); err != nil {
			return err
		}
		if sy.cd, err = g.getInt(); err != nil {
			return err
		}
		g.emit(titan.Instr{Op: titan.OpMuli, Rd: sy.baseQ, Rs1: sy.waitCell, Imm: stepC})
		g.emit(titan.Instr{Op: titan.OpAdd, Rd: sy.baseQ, Rs1: initR, Rs2: sy.baseQ})
		g.emit(titan.Instr{Op: titan.OpMuli, Rd: sy.period, Rs1: np, Imm: sy.stride})
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: sy.zero, Imm: 0})
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: sy.cd, Imm: 1})
	}
	g.putInt(pid)
	g.sync = sy

	g.label(topL)
	t, err := g.getInt()
	if err != nil {
		return err
	}
	if stepC > 0 {
		g.emit(titan.Instr{Op: titan.OpCmpGt, Rd: t, Rs1: iv, Rs2: limR})
	} else {
		g.emit(titan.Instr{Op: titan.OpCmpLt, Rd: t, Rs1: iv, Rs2: limR})
	}
	g.emit(titan.Instr{Op: titan.OpBnez, Rs1: t, Sym: endL})
	g.putInt(t)
	if err := g.stmts(n.Body); err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpAdd, Rd: iv, Rs1: iv, Rs2: np})
	g.emit(titan.Instr{Op: titan.OpJmp, Sym: topL})
	g.label(endL)
	if sy != nil {
		// Sentinel: releases every outstanding wait on this processor's
		// cell — consumers of its coalesced or never-started iterations
		// (width-capped sit-outs jump straight here).
		t, err := g.getInt()
		if err != nil {
			return err
		}
		g.emit(titan.Instr{Op: titan.OpLdi, Rd: t, Imm: 1 << 62})
		g.emit(titan.Instr{Op: titan.OpPost, Rs1: sy.postCell, Rs2: t})
		g.putInt(t)
	}
	g.emit(titan.Instr{Op: titan.OpParEnd})
	g.sync = prevSync
	if sy != nil {
		g.putInt(initR)
		g.putInt(sy.postCell)
		g.putInt(sy.waitCell)
		g.putInt(sy.selfDiff)
		if sy.stride > 1 {
			g.putInt(sy.baseQ)
			g.putInt(sy.period)
			g.putInt(sy.zero)
			g.putInt(sy.cd)
		}
	}
	g.putInt(np)
	g.putInt(limR)
	return nil
}

// syncPost lowers a SyncPost marker: publish the current iteration to
// this processor's cell. With SyncStride > 1 only every stride-th local
// iteration posts (countdown in a register), the rest are covered by a
// later lattice post or the region-exit sentinel.
func (g *gen) syncPost(n *il.SyncPost) error {
	sy := g.sync
	if sy == nil {
		return errf("sync.post outside a DOACROSS parallel region")
	}
	if sy.stride <= 1 {
		g.emit(titan.Instr{Op: titan.OpPost, Rs1: sy.postCell, Rs2: sy.iv})
		return nil
	}
	skipL := g.newLabel("spost")
	g.emit(titan.Instr{Op: titan.OpAddi, Rd: sy.cd, Rs1: sy.cd, Imm: -1})
	g.emit(titan.Instr{Op: titan.OpBnez, Rs1: sy.cd, Sym: skipL})
	g.emit(titan.Instr{Op: titan.OpPost, Rs1: sy.postCell, Rs2: sy.iv})
	g.emit(titan.Instr{Op: titan.OpLdi, Rd: sy.cd, Imm: sy.stride})
	g.label(skipL)
	return nil
}

// syncWait lowers a SyncWait marker: block until the producer of
// iteration iv - dist·step has passed its SyncPost. Skipped when the
// dependence stays on this processor (program order already orders the
// iterations) and during pipeline startup (no producer iteration
// exists). With SyncStride > 1 the threshold rounds up to the producer's
// posting lattice.
func (g *gen) syncWait(n *il.SyncWait) error {
	sy := g.sync
	if sy == nil {
		return errf("sync.wait outside a DOACROSS parallel region")
	}
	skipL := g.newLabel("swskip")
	g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: sy.selfDiff, Sym: skipL})
	th, err := g.getInt()
	if err != nil {
		return err
	}
	t, err := g.getInt()
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpAddi, Rd: th, Rs1: sy.iv, Imm: -sy.dist * sy.stepC})
	g.emit(titan.Instr{Op: titan.OpCmpLt, Rd: t, Rs1: th, Rs2: sy.initR})
	g.emit(titan.Instr{Op: titan.OpBnez, Rs1: t, Sym: skipL})
	if sy.stride > 1 {
		// th = baseQ + ceil(max(th-baseQ, 0)/period)·period
		waitL := g.newLabel("swlat")
		g.emit(titan.Instr{Op: titan.OpSub, Rd: t, Rs1: th, Rs2: sy.baseQ})
		g.emit(titan.Instr{Op: titan.OpMov, Rd: th, Rs1: sy.baseQ})
		tb, err := g.getInt()
		if err != nil {
			return err
		}
		g.emit(titan.Instr{Op: titan.OpCmpGt, Rd: tb, Rs1: t, Rs2: sy.zero})
		g.emit(titan.Instr{Op: titan.OpBeqz, Rs1: tb, Sym: waitL})
		g.emit(titan.Instr{Op: titan.OpAdd, Rd: t, Rs1: t, Rs2: sy.period})
		g.emit(titan.Instr{Op: titan.OpAddi, Rd: t, Rs1: t, Imm: -1})
		g.emit(titan.Instr{Op: titan.OpDiv, Rd: t, Rs1: t, Rs2: sy.period})
		g.emit(titan.Instr{Op: titan.OpMul, Rd: t, Rs1: t, Rs2: sy.period})
		g.emit(titan.Instr{Op: titan.OpAdd, Rd: th, Rs1: sy.baseQ, Rs2: t})
		g.label(waitL)
		g.putInt(tb)
	}
	g.emit(titan.Instr{Op: titan.OpWait, Rs1: sy.waitCell, Rs2: th})
	g.label(skipL)
	g.putInt(th)
	g.putInt(t)
	return nil
}

// vectorAssign lowers one vector statement. A masked statement computes
// its guard into a mask register (vcmp/mand/mor/mnot over dense operands —
// the guard itself executes on every lane, exactly as the source program
// evaluated the condition every iteration), then rides masked loads, arith
// and the masked store so inactive lanes have no memory effects.
func (g *gen) vectorAssign(n *il.VectorAssign) error {
	lenR, err := g.evalInt(n.Len)
	if err != nil {
		return err
	}
	g.emit(titan.Instr{Op: titan.OpVsetl, Rs1: lenR})
	g.putInt(lenR)
	g.vecSlotNext = 0
	g.maskNext = 0
	mr := -1
	if n.Mask != nil {
		if mr, err = g.genMask(n.Mask); err != nil {
			return err
		}
	}
	var slot int
	if containsVec(n.RHS) {
		slot, err = g.vecExpr(n.RHS, mr)
		if err != nil {
			return err
		}
	} else {
		// Pure scalar right-hand side: broadcast it across the lanes
		// (register-only, so no lane suppression is needed).
		sc, err := g.evalFltAny(n.RHS)
		if err != nil {
			return err
		}
		slot = g.nextSlot()
		g.emit(titan.Instr{Op: titan.OpVbcast, Rd: slot, Rs1: sc})
		g.putFlt(sc)
	}
	base, err := g.evalInt(n.DstBase)
	if err != nil {
		return err
	}
	stride, err := g.evalInt(n.DstStride)
	if err != nil {
		return err
	}
	if mr >= 0 {
		g.emit(titan.Instr{Op: titan.OpVstm, Rd: slot, Rs1: base, Rs2: stride,
			Imm: elemKind(n.Elem) | int64(mr)<<8})
	} else {
		g.emit(titan.Instr{Op: titan.OpVst, Rd: slot, Rs1: base, Rs2: stride, Imm: elemKind(n.Elem)})
	}
	g.putInt(base)
	g.putInt(stride)
	return nil
}

// nextMask allocates a mask register within the current vector statement.
func (g *gen) nextMask() (int, error) {
	if g.maskNext >= titan.NumMaskRegs {
		return 0, errf("mask expression too complex (%d mask registers)", titan.NumMaskRegs)
	}
	m := g.maskNext
	g.maskNext++
	return m, nil
}

// genMask lowers a guard expression to a mask register: comparisons become
// vcmp.{lt,le,eq,ne} (vector-vector or vector-scalar), ! becomes mnot, and
// &/| become mand/mor. Compare operands are evaluated densely — the guard
// runs on every lane.
func (g *gen) genMask(e il.Expr) (int, error) {
	switch n := e.(type) {
	case *il.Bin:
		if n.Op.IsComparison() {
			return g.genCompare(n)
		}
		switch n.Op {
		case il.OpAnd, il.OpOr:
			lm, err := g.genMask(n.L)
			if err != nil {
				return 0, err
			}
			rm, err := g.genMask(n.R)
			if err != nil {
				return 0, err
			}
			op := titan.OpMand
			if n.Op == il.OpOr {
				op = titan.OpMor
			}
			m, err := g.nextMask()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: op, Rd: m, Rs1: lm, Rs2: rm})
			return m, nil
		}
	case *il.Un:
		if n.Op == il.OpNot {
			xm, err := g.genMask(n.X)
			if err != nil {
				return 0, err
			}
			m, err := g.nextMask()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpMnot, Rd: m, Rs1: xm})
			return m, nil
		}
	case *il.Cast:
		return g.genMask(n.X)
	}
	return 0, errf("expression %s is not a mask expression", e)
}

// genCompare lowers one comparison to a vcmp. Gt/Ge normalize to Lt/Le by
// operand swap; a scalar right operand uses the vector-scalar compare
// forms, a scalar left operand flips via negation identities
// (s < v ⇔ !(v ≤ s)); two scalar operands broadcast the left one.
func (g *gen) genCompare(n *il.Bin) (int, error) {
	op, l, r := n.Op, n.L, n.R
	switch op {
	case il.OpGt:
		op, l, r = il.OpLt, r, l
	case il.OpGe:
		op, l, r = il.OpLe, r, l
	}
	lVec, rVec := containsVec(l), containsVec(r)
	// Symmetric compares canonicalize the vector operand left.
	if !lVec && rVec && (op == il.OpEq || op == il.OpNe) {
		l, r = r, l
		lVec, rVec = rVec, lVec
	}
	emitCmp := func(vvOp, vsOp titan.Op, ls int, l2 il.Expr, vec bool) (int, error) {
		m, err := g.nextMask()
		if err != nil {
			return 0, err
		}
		if vec {
			rs, err := g.vecExpr(l2, -1)
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: vvOp, Rd: m, Rs1: ls, Rs2: rs})
			return m, nil
		}
		sc, err := g.evalFltAny(l2)
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: vsOp, Rd: m, Rs1: ls, Rs2: sc})
		g.putFlt(sc)
		return m, nil
	}
	negate := func(m int, err error) (int, error) {
		if err != nil {
			return 0, err
		}
		nm, err := g.nextMask()
		if err != nil {
			return 0, err
		}
		g.emit(titan.Instr{Op: titan.OpMnot, Rd: nm, Rs1: m})
		return nm, nil
	}

	if !lVec {
		if rVec {
			// Scalar-left ordered compare: s < v ⇔ !(v ≤ s), s ≤ v ⇔ !(v < s).
			rs, err := g.vecExpr(r, -1)
			if err != nil {
				return 0, err
			}
			switch op {
			case il.OpLt:
				return negate(emitCmp(titan.OpVcmpLe, titan.OpVcmpLes, rs, l, false))
			case il.OpLe:
				return negate(emitCmp(titan.OpVcmpLt, titan.OpVcmpLts, rs, l, false))
			}
			return 0, errf("comparison operator %v unsupported in mask", op)
		}
		// Loop-invariant guard: broadcast the left operand and compare
		// vector-scalar (the mask is uniform across lanes).
		sc, err := g.evalFltAny(l)
		if err != nil {
			return 0, err
		}
		slot := g.nextSlot()
		g.emit(titan.Instr{Op: titan.OpVbcast, Rd: slot, Rs1: sc})
		g.putFlt(sc)
		switch op {
		case il.OpLt:
			return emitCmp(titan.OpVcmpLt, titan.OpVcmpLts, slot, r, false)
		case il.OpLe:
			return emitCmp(titan.OpVcmpLe, titan.OpVcmpLes, slot, r, false)
		case il.OpEq:
			return emitCmp(titan.OpVcmpEq, titan.OpVcmpEqs, slot, r, false)
		case il.OpNe:
			return emitCmp(titan.OpVcmpNe, titan.OpVcmpNes, slot, r, false)
		}
		return 0, errf("comparison operator %v unsupported in mask", op)
	}
	ls, err := g.vecExpr(l, -1)
	if err != nil {
		return 0, err
	}
	var vvOp, vsOp titan.Op
	switch op {
	case il.OpLt:
		vvOp, vsOp = titan.OpVcmpLt, titan.OpVcmpLts
	case il.OpLe:
		vvOp, vsOp = titan.OpVcmpLe, titan.OpVcmpLes
	case il.OpEq:
		vvOp, vsOp = titan.OpVcmpEq, titan.OpVcmpEqs
	case il.OpNe:
		vvOp, vsOp = titan.OpVcmpNe, titan.OpVcmpNes
	default:
		return 0, errf("comparison operator %v unsupported in mask", op)
	}
	return emitCmp(vvOp, vsOp, ls, r, rVec)
}

func elemKind(t *ctype.Type) int64 {
	switch {
	case t == nil:
		return titan.ElemF32
	case t.Kind == ctype.Double:
		return titan.ElemF64
	case t.IsInteger():
		return titan.ElemI32
	default:
		return titan.ElemF32
	}
}

// vecExpr generates a vector expression into a VRF slot. Scalar operands
// broadcast through vector-scalar instructions. A governing mask register
// mr ≥ 0 makes memory-touching ops masked (loads suppress inactive lanes)
// and vector-vector arithmetic ride the masked forms; register-only ops
// (broadcasts, vector-scalar arith) stay dense — inactive lanes may
// compute garbage, which the masked store then never writes back.
func (g *gen) vecExpr(e il.Expr, mr int) (int, error) {
	switch n := e.(type) {
	case *il.VecRef:
		base, err := g.evalInt(n.Base)
		if err != nil {
			return 0, err
		}
		stride, err := g.evalInt(n.Stride)
		if err != nil {
			return 0, err
		}
		slot := g.nextSlot()
		if mr >= 0 {
			g.emit(titan.Instr{Op: titan.OpVldm, Rd: slot, Rs1: base, Rs2: stride,
				Imm: elemKind(n.T) | int64(mr)<<8})
		} else {
			g.emit(titan.Instr{Op: titan.OpVld, Rd: slot, Rs1: base, Rs2: stride, Imm: elemKind(n.T)})
		}
		g.putInt(base)
		g.putInt(stride)
		return slot, nil
	case *il.Cast:
		// The VRF holds float64 internally; conversions are free.
		return g.vecExpr(n.X, mr)
	case *il.Bin:
		lVec := containsVec(n.L)
		rVec := containsVec(n.R)
		switch {
		case lVec && rVec:
			ls, err := g.vecExpr(n.L, mr)
			if err != nil {
				return 0, err
			}
			rs, err := g.vecExpr(n.R, mr)
			if err != nil {
				return 0, err
			}
			var op titan.Op
			var imm int64
			switch n.Op {
			case il.OpAdd:
				op = titan.OpVadd
			case il.OpSub:
				op = titan.OpVsub
			case il.OpMul:
				op = titan.OpVmul
			case il.OpDiv:
				op = titan.OpVdiv
			default:
				return 0, errf("vector operator %v unsupported", n.Op)
			}
			if mr >= 0 {
				switch n.Op {
				case il.OpAdd:
					op = titan.OpVaddm
				case il.OpSub:
					op = titan.OpVsubm
				case il.OpMul:
					op = titan.OpVmulm
				case il.OpDiv:
					op = titan.OpVdivm
				}
				imm = int64(mr) << 8
			}
			slot := g.nextSlot()
			g.emit(titan.Instr{Op: op, Rd: slot, Rs1: ls, Rs2: rs, Imm: imm})
			return slot, nil
		case lVec:
			ls, err := g.vecExpr(n.L, mr)
			if err != nil {
				return 0, err
			}
			sc, err := g.evalFltAny(n.R)
			if err != nil {
				return 0, err
			}
			var op titan.Op
			switch n.Op {
			case il.OpAdd:
				op = titan.OpVadds
			case il.OpSub:
				op = titan.OpVsubs
			case il.OpMul:
				op = titan.OpVmuls
			case il.OpDiv:
				op = titan.OpVdivs
			default:
				return 0, errf("vector operator %v unsupported", n.Op)
			}
			slot := g.nextSlot()
			g.emit(titan.Instr{Op: op, Rd: slot, Rs1: ls, Rs2: sc})
			g.putFlt(sc)
			return slot, nil
		case rVec:
			rs, err := g.vecExpr(n.R, mr)
			if err != nil {
				return 0, err
			}
			sc, err := g.evalFltAny(n.L)
			if err != nil {
				return 0, err
			}
			var op titan.Op
			switch n.Op {
			case il.OpAdd:
				op = titan.OpVadds
			case il.OpMul:
				op = titan.OpVmuls
			case il.OpSub:
				op = titan.OpVsubsr
			case il.OpDiv:
				op = titan.OpVdivsr
			default:
				return 0, errf("vector operator %v unsupported", n.Op)
			}
			slot := g.nextSlot()
			g.emit(titan.Instr{Op: op, Rd: slot, Rs1: rs, Rs2: sc})
			g.putFlt(sc)
			return slot, nil
		}
	case *il.Un:
		if n.Op == il.OpNeg && containsVec(n.X) {
			xs, err := g.vecExpr(n.X, mr)
			if err != nil {
				return 0, err
			}
			// 0 - v via reversed subtract.
			sc, err := g.getFlt()
			if err != nil {
				return 0, err
			}
			g.emit(titan.Instr{Op: titan.OpFldi, Rd: sc, FImm: 0})
			slot := g.nextSlot()
			g.emit(titan.Instr{Op: titan.OpVsubsr, Rd: slot, Rs1: xs, Rs2: sc})
			g.putFlt(sc)
			return slot, nil
		}
	}
	return 0, errf("expression %s is not a vector expression", e)
}

// evalFltAny evaluates a scalar operand (of any arithmetic type) into a
// float register for broadcasting.
func (g *gen) evalFltAny(e il.Expr) (int, error) {
	if isFloatType(e.Type()) {
		return g.evalFlt(e)
	}
	r, err := g.evalInt(e)
	if err != nil {
		return 0, err
	}
	fr, err := g.getFlt()
	if err != nil {
		return 0, err
	}
	g.emit(titan.Instr{Op: titan.OpCvtIF, Rd: fr, Rs1: r})
	g.putInt(r)
	return fr, nil
}

func containsVec(e il.Expr) bool {
	found := false
	il.WalkExpr(e, func(x il.Expr) bool {
		if _, ok := x.(*il.VecRef); ok {
			found = true
		}
		return !found
	})
	return found
}

func (g *gen) nextSlot() int {
	s := g.vecSlotNext
	g.vecSlotNext += vecSlotStride
	if g.vecSlotNext >= titan.VRFWords {
		g.vecSlotNext = 0
	}
	return s
}
