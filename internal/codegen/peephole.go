package codegen

// Copy coalescing: the expression generator evaluates into scratch
// registers and then moves results into variable registers, producing
//
//	addi r16, r43, 4        fadd f16, f40, f41
//	mov  r43, r16           fmov f40, f16
//
// pairs. The peephole rewrites the defining instruction to target the
// variable register directly and deletes the move, provided the scratch
// value has no later use. Beyond code size, this matters for timing: a
// trailing fmov adds a full FP-unit latency to every loop-carried
// recurrence (the §6 f_reg chain).

import "repro/internal/titan"

// Peephole runs local cleanups over every function.
func Peephole(tp *titan.Program) {
	for _, f := range tp.Funcs {
		coalesceCopies(f)
	}
}

func coalesceCopies(f *titan.Func) {
	// Branch targets invalidate adjacency assumptions.
	isTarget := make([]bool, len(f.Instrs)+1)
	for _, idx := range f.Labels {
		isTarget[idx] = true
	}

	removed := map[int]bool{}
	for i := 0; i+1 < len(f.Instrs); i++ {
		if removed[i] || isTarget[i+1] {
			continue
		}
		mv := f.Instrs[i+1]
		var isFlt bool
		switch mv.Op {
		case titan.OpMov:
			isFlt = false
		case titan.OpFmov:
			isFlt = true
		default:
			continue
		}
		s := mv.Rs1
		if s < scratchLo || s > scratchHi {
			continue
		}
		def := &f.Instrs[i]
		if !writesReg(*def, s, isFlt) {
			continue
		}
		// The scratch value must not be read again before its next write
		// (or a control transfer, which conservatively blocks).
		if scratchLiveAfter(f, i+2, s, isFlt, isTarget) {
			continue
		}
		def.Rd = mv.Rd
		removed[i+1] = true
	}
	if len(removed) == 0 {
		return
	}
	var out []titan.Instr
	oldToNew := make([]int, len(f.Instrs)+1)
	for i, in := range f.Instrs {
		oldToNew[i] = len(out)
		if removed[i] {
			continue
		}
		out = append(out, in)
	}
	oldToNew[len(f.Instrs)] = len(out)
	for l, idx := range f.Labels {
		f.Labels[l] = oldToNew[idx]
	}
	f.Instrs = out
}

// writesReg reports whether the instruction's destination is register r of
// the given file.
func writesReg(in titan.Instr, r int, flt bool) bool {
	defs, _ := defsUses(in)
	want := rcInt
	if flt {
		want = rcFlt
	}
	for _, d := range defs {
		if d.class == want && d.num == r {
			return true
		}
	}
	return false
}

// scratchLiveAfter reports whether register s may be read at or after
// position i before being rewritten.
//
// The scan exploits a code-generator invariant: scratch registers from the
// free pool never carry values across statement boundaries, and registers
// held across a region (a DO loop's limit register, a parallel loop's
// stride) are removed from the pool for the region's duration, so they can
// never be the destination of a coalescing candidate. A control transfer
// or label therefore ends the scratch's live range.
func scratchLiveAfter(f *titan.Func, i int, s int, flt bool, isTarget []bool) bool {
	want := rcInt
	if flt {
		want = rcFlt
	}
	for ; i < len(f.Instrs); i++ {
		if isTarget[i] {
			return false // statement boundary: pool scratches are dead
		}
		in := f.Instrs[i]
		defs, uses := defsUses(in)
		for _, u := range uses {
			if u.class == want && u.num == s {
				return true
			}
		}
		for _, d := range defs {
			if d.class == want && d.num == s {
				return false // rewritten before any read
			}
		}
		switch in.Op {
		case titan.OpJmp, titan.OpBeqz, titan.OpBnez, titan.OpRet, titan.OpHalt,
			titan.OpCall, titan.OpParBegin, titan.OpParEnd:
			return false // statement boundary
		}
	}
	return false
}
