package codegen

import (
	"strings"
	"testing"

	"repro/internal/ctype"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/titan"
)

// gen compiles source to a Titan program without the IL optimizer, so the
// tests see codegen's own output.
func genProgram(t *testing.T, src string) *titan.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tp, err := Generate(prog)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return tp
}

func runMain(t *testing.T, tp *titan.Program) titan.Result {
	t.Helper()
	m := titan.NewMachine(tp, 1)
	r, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGlobalLayout(t *testing.T) {
	tp := genProgram(t, `
char c1;
double d;
int i;
float arr[10];
int main(void) { return 0; }
`)
	// All globals 8-aligned, non-overlapping.
	type g struct {
		name string
		size int64
	}
	sizes := map[string]int64{"c1": 1, "d": 8, "i": 4, "arr": 40}
	for name, addr := range tp.GlobalAddr {
		if addr%8 != 0 {
			t.Errorf("%s at unaligned %d", name, addr)
		}
		for other, oaddr := range tp.GlobalAddr {
			if other == name {
				continue
			}
			if addr < oaddr+sizes[other] && oaddr < addr+sizes[name] {
				t.Errorf("%s and %s overlap", name, other)
			}
		}
	}
	_ = g{}
}

func TestGlobalInitializersMaterialize(t *testing.T) {
	tp := genProgram(t, `
int answer = 42;
float pi = 3.5;
double tau = 7.0;
int main(void) { return answer; }
`)
	if r := runMain(t, tp); r.ExitCode != 42 {
		t.Errorf("exit %d", r.ExitCode)
	}
	tp2 := genProgram(t, `
float pi = 3.5;
int main(void) { if (pi == 3.5f) return 1; return 0; }
`)
	if r := runMain(t, tp2); r.ExitCode != 1 {
		t.Errorf("float init wrong")
	}
}

func TestStringData(t *testing.T) {
	tp := genProgram(t, `
char *msg(void) { return "xyz"; }
int main(void) { char *p; p = msg(); return *p; }
`)
	if r := runMain(t, tp); r.ExitCode != 'x' {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestParamPassing(t *testing.T) {
	tp := genProgram(t, `
int combine(int a, int b, int c, float x, float y) {
	return a * 100 + b * 10 + c + (int)(x + y);
}
int main(void) { return combine(1, 2, 3, 1.5f, 2.5f); }
`)
	if r := runMain(t, tp); r.ExitCode != 127 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestAddrTakenLocalOnStack(t *testing.T) {
	tp := genProgram(t, `
void bump(int *p) { *p = *p + 1; }
int main(void) {
	int x;
	x = 41;
	bump(&x);
	return x;
}
`)
	if r := runMain(t, tp); r.ExitCode != 42 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestManyLocalsSpill(t *testing.T) {
	// More scalar locals than variable registers: the excess lives on the
	// stack and everything still computes.
	var sb strings.Builder
	sb.WriteString("int main(void) {\n")
	for i := 0; i < 40; i++ {
		sb.WriteString("int v")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(";\n")
	}
	total := 0
	for i := 0; i < 40; i++ {
		sb.WriteString("v")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(" = ")
		sb.WriteString(itoa(i))
		sb.WriteString(";\n")
		total += i
	}
	sb.WriteString("return ")
	for i := 0; i < 40; i++ {
		if i > 0 {
			sb.WriteString(" + ")
		}
		sb.WriteString("v")
		sb.WriteByte(byte('0' + i/10))
		sb.WriteByte(byte('0' + i%10))
	}
	sb.WriteString(";\n}\n")
	tp := genProgram(t, sb.String())
	if r := runMain(t, tp); r.ExitCode != int64(total) {
		t.Errorf("exit %d want %d", r.ExitCode, total)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestDeepExpression(t *testing.T) {
	// Sethi–Ullman ordering keeps scratch pressure bounded for
	// right-leaning trees.
	tp := genProgram(t, `
int main(void) {
	int a;
	a = 1;
	return a + (a + (a + (a + (a + (a + (a + (a + a)))))));
}
`)
	if r := runMain(t, tp); r.ExitCode != 9 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestVectorAssignCodegen(t *testing.T) {
	// Hand-build a proc with a VectorAssign and check the emitted ops.
	p := il.NewProc("main", ctype.IntType)
	prog := &il.Program{Procs: []*il.Proc{p}}
	prog.AddGlobal(il.GlobalVar{Name: "a", Type: ctype.ArrayOf(ctype.FloatType, 64)})
	prog.AddGlobal(il.GlobalVar{Name: "b", Type: ctype.ArrayOf(ctype.FloatType, 64)})
	av := p.AddVar(il.Var{Name: "a", Type: ctype.ArrayOf(ctype.FloatType, 64), Class: il.ClassGlobal})
	bv := p.AddVar(il.Var{Name: "b", Type: ctype.ArrayOf(ctype.FloatType, 64), Class: il.ClassGlobal})
	pt := ctype.PointerTo(ctype.FloatType)
	p.Body = []il.Stmt{
		&il.VectorAssign{
			DstBase:   &il.AddrOf{ID: av, T: pt},
			DstStride: il.Int(4),
			Len:       il.Int(64),
			Elem:      ctype.FloatType,
			RHS: &il.Bin{Op: il.OpMul,
				L: &il.VecRef{Base: &il.AddrOf{ID: bv, T: pt}, Stride: il.Int(4), T: ctype.FloatType},
				R: &il.ConstFloat{Val: 2, T: ctype.FloatType},
				T: ctype.FloatType},
		},
		&il.Return{Val: il.Int(0)},
	}
	tp, err := Generate(prog)
	if err != nil {
		t.Fatal(err)
	}
	asm := tp.Funcs["main"].Disassemble()
	for _, want := range []string{"vsetl", "vld", "vmuls", "vst"} {
		if !strings.Contains(asm, want) {
			t.Errorf("missing %s:\n%s", want, asm)
		}
	}
	if r := runMain(t, tp); r.FlopCount != 64 {
		t.Errorf("flops %d", r.FlopCount)
	}
}

func TestIndirectCallRejected(t *testing.T) {
	src := `
int deref(int (*f)(int)) { return f(1); }
int main(void) { return 0; }
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(prog); err == nil {
		t.Error("indirect call should be a codegen error (documented limitation)")
	}
}

// ------------------------------------------------------------- scheduler

func TestScheduleHoistsLoads(t *testing.T) {
	// Block: load; long FP chain using it; an independent load at the end.
	// The scheduler should move the second load before the chain.
	f := &titan.Func{Name: "f", Labels: map[string]int{}, Instrs: []titan.Instr{
		{Op: titan.OpFld4, Rd: 20, Rs1: 32},          // load A
		{Op: titan.OpFadd, Rd: 21, Rs1: 20, Rs2: 20}, // chain
		{Op: titan.OpFadd, Rd: 22, Rs1: 21, Rs2: 21}, // chain
		{Op: titan.OpFld4, Rd: 23, Rs1: 33},          // independent load B
		{Op: titan.OpRet},
	}}
	tp := &titan.Program{Funcs: map[string]*titan.Func{"f": f}}
	Schedule(tp)
	// Load B must now appear before the second fadd.
	posB, posAdd2 := -1, -1
	for i, in := range f.Instrs {
		if in.Op == titan.OpFld4 && in.Rd == 23 {
			posB = i
		}
		if in.Op == titan.OpFadd && in.Rd == 22 {
			posAdd2 = i
		}
	}
	if posB > posAdd2 {
		t.Errorf("load not hoisted: %v", f.Instrs)
	}
}

func TestSchedulePreservesStoreOrder(t *testing.T) {
	f := &titan.Func{Name: "f", Labels: map[string]int{}, Instrs: []titan.Instr{
		{Op: titan.OpSt4, Rs1: 32, Rs2: 33},         // store 1
		{Op: titan.OpLd4, Rd: 20, Rs1: 32},          // load after store
		{Op: titan.OpSt4, Rs1: 32, Rs2: 20, Imm: 4}, // store 2 (uses load)
		{Op: titan.OpRet},
	}}
	tp := &titan.Program{Funcs: map[string]*titan.Func{"f": f}}
	Schedule(tp)
	var ops []titan.Op
	for _, in := range f.Instrs {
		ops = append(ops, in.Op)
	}
	want := []titan.Op{titan.OpSt4, titan.OpLd4, titan.OpSt4, titan.OpRet}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("memory order changed: %v", ops)
		}
	}
}

func TestScheduleKeepsLabelsCorrect(t *testing.T) {
	// A loop whose label must keep pointing at the loop top after
	// reordering.
	f := &titan.Func{Name: "f", Labels: map[string]int{"top": 2}, Instrs: []titan.Instr{
		{Op: titan.OpLdi, Rd: 32, Imm: 3},
		{Op: titan.OpLdi, Rd: 33, Imm: 0},
		// top:
		{Op: titan.OpAdd, Rd: 33, Rs1: 33, Rs2: 32},
		{Op: titan.OpAddi, Rd: 32, Rs1: 32, Imm: -1},
		{Op: titan.OpBnez, Rs1: 32, Sym: "top"},
		{Op: titan.OpMov, Rd: titan.RegRetInt, Rs1: 33},
		{Op: titan.OpRet},
	}}
	tp := &titan.Program{Funcs: map[string]*titan.Func{"main": f}}
	Schedule(tp)
	m := titan.NewMachine(&titan.Program{Funcs: map[string]*titan.Func{"main": f}, MemSize: 1 << 16}, 1)
	r, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 6 { // 3+2+1
		t.Errorf("exit %d (labels broken?)", r.ExitCode)
	}
}

// ------------------------------------------------------------- peephole

func TestPeepholeCoalescesMoves(t *testing.T) {
	tp := genProgram(t, `
int main(void) {
	int a, b;
	a = 1;
	b = a + 2;
	return b;
}
`)
	asm := tp.Funcs["main"].Disassemble()
	// The addi result should target the variable register directly; no
	// mov between scratch and variable remains for this pattern.
	if strings.Count(asm, "mov") > 1 { // only the return mov may remain
		t.Errorf("moves not coalesced:\n%s", asm)
	}
	if r := runMain(t, tp); r.ExitCode != 3 {
		t.Errorf("exit %d", r.ExitCode)
	}
}

func TestPeepholeKeepsArgMoves(t *testing.T) {
	// The scratch feeding ARG must not be clobbered by coalescing.
	tp := genProgram(t, `
int printf(char *fmt, ...);
int main(void) { printf("%d", 7); return 0; }
`)
	if r := runMain(t, tp); r.Output != "7" {
		t.Errorf("output %q", r.Output)
	}
}

func TestFrameRestoredAcrossCalls(t *testing.T) {
	tp := genProgram(t, `
int helper(int x) {
	int arr[4];
	arr[0] = x;
	arr[1] = x + 1;
	return arr[0] + arr[1];
}
int main(void) {
	int a[4];
	a[0] = 10;
	a[1] = helper(5);
	return a[0] + a[1];
}
`)
	if r := runMain(t, tp); r.ExitCode != 21 {
		t.Errorf("exit %d", r.ExitCode)
	}
}
