package depend

import "repro/internal/il"

// MaxDoacrossDistance bounds the dependence distances DOACROSS
// synchronization will enforce. Distances beyond it leave so much slack
// between producer and consumer at 4 processors that the loop behaves as
// independent in practice, and huge thresholds stress nothing useful.
const MaxDoacrossDistance = 64

// DoacrossPlan says how a loop whose carried dependences all have known
// constant distances can be pipelined across processors with one
// post/wait pair per iteration (the combined/hoisted synchronization of
// arXiv:1211.4101: one post per dependence class per iteration).
type DoacrossPlan struct {
	// Distance is the combined synchronization distance: the gcd of all
	// carried memory-dependence distances. Waiting on iteration
	// iv - Distance·step forms a chain that transitively covers every
	// multiple of Distance, hence every original dependence.
	Distance int64
	// WaitIdx is the body statement index the wait is placed before. It
	// is min(earliest sink, latest source) so the wait also precedes the
	// post — required for the chain coverage above to be transitive.
	WaitIdx int
	// PostIdx is the body statement index the post is placed after: the
	// latest source statement of any carried dependence, so a post
	// certifies every dependence source of the iteration has executed.
	PostIdx int
	// Dep names the tightest (minimum-distance) carried dependence, for
	// remarks.
	Dep string
}

// Doacross decides whether the analyzed loop can be scheduled DOACROSS
// and returns the synchronization plan, or nil when it cannot:
//
//   - barrier statements (calls, volatile accesses, irregular control)
//     cannot be ordered by post/wait;
//   - every carried memory dependence must have a known constant
//     distance in [1, MaxDoacrossDistance];
//   - a carried scalar flow dependence is a genuine scalar recurrence —
//     privatization cannot break it;
//   - carried scalar anti/output dependences on processor-private
//     temporaries vanish under the cyclic spread (each processor keeps
//     its own register copy); on observable variables they are fatal.
func Doacross(p *il.Proc, ld *LoopDeps) *DoacrossPlan {
	for _, b := range ld.Barrier {
		if b {
			return nil
		}
	}
	var (
		g        int64
		minDist  int64
		minDep   string
		waitIdx  = len(ld.Loop.Body)
		postIdx  = -1
		memCount int
	)
	for i := range ld.Deps {
		d := &ld.Deps[i]
		if !d.Carried {
			continue
		}
		if d.Scalar {
			if d.Kind == Flow {
				return nil
			}
			v := &p.Vars[d.Var]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				return nil
			}
			continue
		}
		if !d.Known || d.Distance < 1 || d.Distance > MaxDoacrossDistance {
			return nil
		}
		memCount++
		g = gcd64(g, d.Distance)
		if minDep == "" || d.Distance < minDist {
			minDist = d.Distance
			minDep = d.String()
		}
		if d.To < waitIdx {
			waitIdx = d.To
		}
		if d.From > postIdx {
			postIdx = d.From
		}
	}
	if memCount == 0 {
		return nil // independent: DOALL territory, not DOACROSS
	}
	if waitIdx > postIdx {
		waitIdx = postIdx // waiting earlier is always sound; see WaitIdx
	}
	return &DoacrossPlan{Distance: g, WaitIdx: waitIdx, PostIdx: postIdx, Dep: minDep}
}
