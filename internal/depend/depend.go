// Package depend implements the array dependence analysis that drives
// vectorization (§5), parallelization, and the dependence-driven scalar
// optimizations of §6.
//
// Analysis is per-DO-loop. Every memory reference in the loop body is
// normalized to the linear form  base + coef·IV + offset  (in bytes);
// references that resist normalization are treated conservatively. Pairs
// of references are disambiguated by their base objects (distinct named
// arrays cannot overlap; distinct pointer parameters may, unless the loop
// is marked safe or the compiler is told pointer parameters follow Fortran
// aliasing rules — §9), then subjected to an exact single-subscript test
// (the GCD test specialized to equal strides gives exact distances).
//
// The resulting graph has statement-level edges labelled flow/anti/output
// and carried/independent, plus the scalar dependences among the body's
// top-level statements. Vectorization legality is then a question of
// strongly connected components (Allen–Kennedy codegen, in package
// vector).
package depend

import (
	"fmt"

	"repro/internal/ctype"
	"repro/internal/il"
)

// Options controls aliasing assumptions.
type Options struct {
	// NoAlias asserts pointer parameters never alias each other or named
	// arrays (the compiler option of §9: "pointer parameters have Fortran
	// semantics").
	NoAlias bool
}

// DepKind classifies dependences.
type DepKind int

// Dependence kinds.
const (
	Flow   DepKind = iota // write then read (true dependence)
	Anti                  // read then write
	Output                // write then write
)

var depNames = [...]string{"flow", "anti", "output"}

// String names the kind.
func (k DepKind) String() string { return depNames[k] }

// Dep is one statement-level dependence edge: To depends on From.
type Dep struct {
	From, To int // indices into the loop's top-level statement list
	Kind     DepKind
	// Carried marks loop-carried dependences (distance ≥ 1).
	Carried bool
	// Distance is the dependence distance in iterations when Known.
	Distance int64
	Known    bool
	// Scalar marks dependences through scalar variables rather than
	// memory.
	Scalar bool
	// Var is the scalar variable for Scalar deps.
	Var il.VarID
}

// String renders the edge.
func (d *Dep) String() string {
	tag := ""
	if d.Carried {
		if d.Known {
			tag = fmt.Sprintf(" carried(%d)", d.Distance)
		} else {
			tag = " carried(?)"
		}
	}
	kind := d.Kind.String()
	if d.Scalar {
		kind += "/scalar"
	}
	return fmt.Sprintf("S%d -%s%s-> S%d", d.From, kind, tag, d.To)
}

// BaseKind classifies reference bases.
type BaseKind int

// Base kinds.
const (
	BaseVar     BaseKind = iota // a named object (&array)
	BasePointer                 // a loop-invariant pointer variable
	BaseUnknown
)

// Base identifies the object a reference roots at.
type Base struct {
	Kind BaseKind
	Var  il.VarID // BaseVar: the object; BasePointer: the pointer variable
	// Extra is a loop-invariant byte offset expression added to the root
	// (e.g. a row offset in a struct or outer-loop subscript). Compared
	// structurally.
	Extra il.Expr
}

// Ref is one memory reference in linear form.
type Ref struct {
	StmtIdx  int
	IsWrite  bool
	Base     Base
	Coef     int64 // bytes advanced per iteration of the analyzed loop
	Offset   int64 // constant byte offset
	Size     int   // access size in bytes
	Linear   bool  // Coef/Offset valid
	Volatile bool
	Expr     il.Expr // the original address expression
}

// LoopDeps is the dependence analysis result for one loop.
type LoopDeps struct {
	Loop  *il.DoLoop
	Refs  []Ref
	Deps  []Dep
	Trips int64 // compile-time trip count, or -1 when unknown
	// Barrier[i] marks statements (calls, volatile accesses, irregular
	// control) that must not be reordered or vectorized.
	Barrier []bool
}

// HasCycleThrough reports whether stmt i has any carried self-dependence
// (the quick "is this statement vectorizable alone" check).
func (ld *LoopDeps) HasCycleThrough(i int) bool {
	for _, d := range ld.Deps {
		if d.From == i && d.To == i && d.Carried {
			return true
		}
	}
	return false
}

// AnalyzeLoop computes the dependence graph for the top-level statements
// of a DO loop.
func AnalyzeLoop(p *il.Proc, loop *il.DoLoop, opts Options) *LoopDeps {
	ld := &LoopDeps{Loop: loop, Trips: tripCount(loop)}
	ld.Barrier = make([]bool, len(loop.Body))

	// Gather memory references and barriers.
	for i, s := range loop.Body {
		switch n := s.(type) {
		case *il.Assign:
			if ld.collectStmtRefs(p, loop, i, n) {
				ld.Barrier[i] = true
			}
		case *il.PredAssign:
			// Predicated stores are ordinary graph nodes, not barriers:
			// the guard's loads, the store, and the source loads all
			// participate, and the SCC machinery decides whether a carried
			// dependence crosses the guard (if it does, the vectorizer
			// rejects the statement's component like any other cycle).
			if ld.collectPredRefs(p, loop, i, n) {
				ld.Barrier[i] = true
			}
		case *il.Call:
			ld.Barrier[i] = true
		case *il.If, *il.While, *il.DoLoop, *il.DoParallel, *il.Goto, *il.Label, *il.Return:
			// Nested control flow: conservative barrier (inner loops are
			// analyzed on their own; the outer loop treats them whole).
			ld.Barrier[i] = true
		case *il.VectorAssign:
			ld.Barrier[i] = true
			_ = n
		}
	}

	ld.memoryDeps(p, opts)
	ld.scalarDeps(p, loop)
	ld.barrierDeps()
	return ld
}

// tripCount returns the constant trip count, or -1.
func tripCount(loop *il.DoLoop) int64 {
	i, ok1 := il.IsIntConst(loop.Init)
	l, ok2 := il.IsIntConst(loop.Limit)
	s, ok3 := il.IsIntConst(loop.Step)
	if !ok1 || !ok2 || !ok3 || s == 0 {
		return -1
	}
	var t int64
	if s > 0 {
		t = (l-i)/s + 1
	} else {
		t = (i-l)/(-s) + 1
	}
	if t < 0 {
		return 0
	}
	return t
}

// collectStmtRefs extracts the refs of one assignment; reports whether the
// statement contains something that must act as a barrier (volatile).
func (ld *LoopDeps) collectStmtRefs(p *il.Proc, loop *il.DoLoop, idx int, as *il.Assign) bool {
	barrier := false
	add := func(addr il.Expr, size int, write, volatile bool) {
		r := normalizeRef(p, loop, addr)
		r.StmtIdx = idx
		r.IsWrite = write
		r.Size = size
		r.Volatile = volatile
		r.Expr = addr
		if volatile {
			barrier = true
		}
		ld.Refs = append(ld.Refs, r)
	}
	if ld, ok := as.Dst.(*il.Load); ok {
		add(ld.Addr, ld.T.Size(), true, ld.Volatile)
	}
	collectLoads := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			if l, ok := x.(*il.Load); ok {
				add(l.Addr, l.T.Size(), false, l.Volatile)
			}
			return true
		})
	}
	if ldst, ok := as.Dst.(*il.Load); ok {
		collectLoads(ldst.Addr)
	}
	collectLoads(as.Src)
	// Direct reads/writes of volatile scalars are barriers too.
	if p.HasVolatile(as.Src) {
		barrier = true
	}
	if v, ok := as.Dst.(*il.VarRef); ok && p.Vars[v.ID].IsVolatile() {
		barrier = true
	}
	return barrier
}

// collectPredRefs extracts the refs of one predicated store: the guarded
// destination and source via the assignment collector, plus the guard's
// own loads — if-conversion evaluates the predicate every iteration, so
// its reads participate in the dependence graph like any other use.
func (ld *LoopDeps) collectPredRefs(p *il.Proc, loop *il.DoLoop, idx int, ps *il.PredAssign) bool {
	barrier := ld.collectStmtRefs(p, loop, idx, &il.Assign{Dst: ps.Dst, Src: ps.Src, Pos: ps.Pos})
	il.WalkExpr(ps.Cond, func(x il.Expr) bool {
		if l, ok := x.(*il.Load); ok {
			r := normalizeRef(p, loop, l.Addr)
			r.StmtIdx = idx
			r.IsWrite = false
			r.Size = l.T.Size()
			r.Volatile = l.Volatile
			r.Expr = l.Addr
			if l.Volatile {
				barrier = true
			}
			ld.Refs = append(ld.Refs, r)
		}
		return true
	})
	if p.HasVolatile(ps.Cond) {
		barrier = true
	}
	return barrier
}

// normalizeRef reduces an address expression to base + coef·IV + offset.
func normalizeRef(p *il.Proc, loop *il.DoLoop, addr il.Expr) Ref {
	lin := linearize(p, loop, addr)
	if lin == nil {
		return Ref{Base: Base{Kind: BaseUnknown}, Linear: false}
	}
	base := classifyBase(p, lin.rest)
	return Ref{Base: base, Coef: lin.coef, Offset: lin.offset, Linear: true}
}

// linForm is addr = rest + coef*iv + offset with rest iv-free.
type linForm struct {
	coef   int64
	offset int64
	rest   []il.Expr // summed invariant terms
}

// linearize decomposes addr into linear form over the loop IV. Returns nil
// when the expression is not affine in the IV.
func linearize(p *il.Proc, loop *il.DoLoop, e il.Expr) *linForm {
	switch n := e.(type) {
	case *il.ConstInt:
		return &linForm{offset: n.Val}
	case *il.VarRef:
		if n.ID == loop.IV {
			return &linForm{coef: 1}
		}
		return &linForm{rest: []il.Expr{n}}
	case *il.AddrOf:
		return &linForm{rest: []il.Expr{n}}
	case *il.Cast:
		return linearize(p, loop, n.X)
	case *il.Bin:
		switch n.Op {
		case il.OpAdd:
			l := linearize(p, loop, n.L)
			r := linearize(p, loop, n.R)
			if l == nil || r == nil {
				return nil
			}
			return &linForm{coef: l.coef + r.coef, offset: l.offset + r.offset,
				rest: append(append([]il.Expr{}, l.rest...), r.rest...)}
		case il.OpSub:
			l := linearize(p, loop, n.L)
			r := linearize(p, loop, n.R)
			if l == nil || r == nil {
				return nil
			}
			// Negated invariant terms remain invariant; wrap them.
			rest := append([]il.Expr{}, l.rest...)
			for _, t := range r.rest {
				rest = append(rest, il.NewUn(il.OpNeg, il.CloneExpr(t), t.Type()))
			}
			return &linForm{coef: l.coef - r.coef, offset: l.offset - r.offset, rest: rest}
		case il.OpMul:
			if c, ok := il.IsIntConst(n.L); ok {
				r := linearize(p, loop, n.R)
				if r == nil {
					return nil
				}
				return scaleLin(r, c)
			}
			if c, ok := il.IsIntConst(n.R); ok {
				l := linearize(p, loop, n.L)
				if l == nil {
					return nil
				}
				return scaleLin(l, c)
			}
			// Products of invariants are invariant.
			if !il.UsesVar(n.L, loop.IV) && !il.UsesVar(n.R, loop.IV) && pure(n) {
				return &linForm{rest: []il.Expr{n}}
			}
			return nil
		}
		if !il.UsesVar(e, loop.IV) && pure(e) {
			return &linForm{rest: []il.Expr{e}}
		}
		return nil
	case *il.Un:
		if n.Op == il.OpNeg {
			x := linearize(p, loop, n.X)
			if x == nil {
				return nil
			}
			return scaleLin(x, -1)
		}
	}
	if !il.UsesVar(e, loop.IV) && pure(e) {
		return &linForm{rest: []il.Expr{e}}
	}
	return nil
}

func scaleLin(l *linForm, c int64) *linForm {
	out := &linForm{coef: l.coef * c, offset: l.offset * c}
	for _, t := range l.rest {
		out.rest = append(out.rest, il.Mul(il.Int(c), il.CloneExpr(t), ctype.IntType))
	}
	return out
}

// pure reports whether e is load-free.
func pure(e il.Expr) bool {
	ok := true
	il.WalkExpr(e, func(x il.Expr) bool {
		if _, isLoad := x.(*il.Load); isLoad {
			ok = false
		}
		return ok
	})
	return ok
}

// classifyBase finds the root object among the invariant terms.
func classifyBase(p *il.Proc, rest []il.Expr) Base {
	var rootVar il.VarID = il.NoVar
	var rootPtr il.VarID = il.NoVar
	var extras []il.Expr
	roots := 0
	for _, t := range rest {
		switch n := t.(type) {
		case *il.AddrOf:
			rootVar = n.ID
			roots++
		case *il.VarRef:
			if n.T != nil && n.T.Kind == ctype.Pointer {
				rootPtr = n.ID
				roots++
			} else {
				extras = append(extras, t)
			}
		default:
			extras = append(extras, t)
		}
	}
	if roots != 1 {
		return Base{Kind: BaseUnknown}
	}
	extra := sumExprs(extras)
	if rootVar != il.NoVar {
		return Base{Kind: BaseVar, Var: rootVar, Extra: extra}
	}
	return Base{Kind: BasePointer, Var: rootPtr, Extra: extra}
}

func sumExprs(list []il.Expr) il.Expr {
	var out il.Expr
	for _, e := range list {
		if out == nil {
			out = e
		} else {
			out = il.Add(out, e, ctype.IntType)
		}
	}
	return out
}

// sameBase reports whether two bases denote the same object with the same
// invariant offset (so the subscript test applies).
func sameBase(a, b Base) bool {
	if a.Kind == BaseUnknown || b.Kind == BaseUnknown {
		return false
	}
	if a.Kind != b.Kind || a.Var != b.Var {
		return false
	}
	return il.ExprEqual(a.Extra, b.Extra)
}

// mayAlias reports whether two references with different bases could still
// touch the same memory.
func mayAlias(p *il.Proc, a, b Base, safe bool, opts Options) bool {
	if a.Kind == BaseUnknown || b.Kind == BaseUnknown {
		return true
	}
	if safe || opts.NoAlias {
		// Fortran rules: distinct bases are distinct objects.
		if a.Kind == b.Kind && a.Var == b.Var && !il.ExprEqual(a.Extra, b.Extra) {
			// Same root, different invariant offsets: could still overlap
			// unless both offsets are constants handled by the subscript
			// test; stay conservative.
			return true
		}
		return a.Kind == b.Kind && a.Var == b.Var
	}
	// Two distinct named objects never overlap.
	if a.Kind == BaseVar && b.Kind == BaseVar {
		if a.Var != b.Var {
			return false
		}
		return true
	}
	// A pointer may point anywhere (C imposes no aliasing rules — §1).
	return true
}

// BasesMayAlias reports whether two reference bases might denote
// overlapping storage, under the loop-safe flag and aliasing options.
// Identical bases trivially alias.
func BasesMayAlias(p *il.Proc, a, b Base, safe bool, opts Options) bool {
	if sameBase(a, b) {
		return true
	}
	return mayAlias(p, a, b, safe, opts)
}

// memoryDeps tests every pair of references.
func (ld *LoopDeps) memoryDeps(p *il.Proc, opts Options) {
	safe := ld.Loop.Safe
	for i := range ld.Refs {
		for j := range ld.Refs {
			if j <= i {
				continue
			}
			a, b := &ld.Refs[i], &ld.Refs[j]
			if !a.IsWrite && !b.IsWrite {
				continue
			}
			ld.testPair(p, a, b, safe, opts)
		}
	}
}

// testPair adds dependence edges between two references.
func (ld *LoopDeps) testPair(p *il.Proc, a, b *Ref, safe bool, opts Options) {
	if !a.Linear || !b.Linear {
		if a.Base.Kind != BaseUnknown && b.Base.Kind != BaseUnknown &&
			!sameBase(a.Base, b.Base) && !mayAlias(p, a.Base, b.Base, safe, opts) {
			return
		}
		ld.addUnknownDep(a, b)
		return
	}
	if !sameBase(a.Base, b.Base) {
		if !mayAlias(p, a.Base, b.Base, safe, opts) {
			return
		}
		ld.addUnknownDep(a, b)
		return
	}
	// Same object: exact test on  coefA·i1 + offA  =  coefB·i2 + offB.
	// Equal coefficients give exact distances; unequal ones fall back to
	// the GCD test.
	if a.Coef == b.Coef {
		c := a.Coef
		if c == 0 {
			// Invariant addresses: same location iff offsets overlap.
			if overlaps(a.Offset, a.Size, b.Offset, b.Size) {
				ld.addDep(a, b, 0)
			}
			return
		}
		// Same location: c·ia + offA = c·ib + offB ⟹ ib = ia + (offA-offB)/c,
		// so positive diff means b touches the location diff iterations
		// after a.
		diff := a.Offset - b.Offset
		if diff%c != 0 {
			// Strided accesses interleave without touching (assumes
			// aligned same-size elements, which the front end guarantees
			// for scalar element types).
			if !overlapsStride(a, b) {
				return
			}
			ld.addUnknownDep(a, b)
			return
		}
		dist := diff / c
		if dist < 0 {
			dist = -dist
		}
		if ld.Trips >= 0 && dist >= ld.Trips {
			return // too far apart to meet within the loop
		}
		// Signed distance: positive means a's iteration precedes b's.
		ld.addDep(a, b, diff/c)
		return
	}
	// GCD test.
	g := gcd64(abs64(a.Coef), abs64(b.Coef))
	if g != 0 && (b.Offset-a.Offset)%g != 0 {
		return // independent
	}
	ld.addUnknownDep(a, b)
}

// overlaps reports byte-interval overlap.
func overlaps(o1 int64, s1 int, o2 int64, s2 int) bool {
	return o1 < o2+int64(s2) && o2 < o1+int64(s1)
}

// overlapsStride conservatively checks whether unaligned strided accesses
// can overlap given element sizes (they can when sizes exceed the offset
// residue).
func overlapsStride(a, b *Ref) bool {
	c := abs64(a.Coef)
	r := (b.Offset - a.Offset) % c
	if r < 0 {
		r += c
	}
	return r < int64(a.Size) || c-r < int64(b.Size)
}

// addDep records a dependence with signed iteration distance d between the
// iterations of a (source) and b (sink); d>0 means b's access happens d
// iterations after a's.
func (ld *LoopDeps) addDep(a, b *Ref, d int64) {
	// Order the endpoints so the edge runs source→sink in execution
	// order: for d>0 the earlier-iteration access is a; for d<0 it is b;
	// for d==0 statement order decides.
	src, dst := a, b
	dist := d
	if d < 0 {
		src, dst = b, a
		dist = -d
	} else if d == 0 && b.StmtIdx < a.StmtIdx {
		src, dst = b, a
	}
	kind := depKindFor(src.IsWrite, dst.IsWrite)
	ld.Deps = append(ld.Deps, Dep{
		From: src.StmtIdx, To: dst.StmtIdx,
		Kind:    kind,
		Carried: dist != 0,
		Distance: func() int64 {
			return dist
		}(),
		Known: true,
	})
}

// addUnknownDep records a conservative both-direction dependence.
func (ld *LoopDeps) addUnknownDep(a, b *Ref) {
	k1 := depKindFor(a.IsWrite, b.IsWrite)
	k2 := depKindFor(b.IsWrite, a.IsWrite)
	ld.Deps = append(ld.Deps,
		Dep{From: a.StmtIdx, To: b.StmtIdx, Kind: k1, Carried: true},
		Dep{From: b.StmtIdx, To: a.StmtIdx, Kind: k2, Carried: true},
	)
}

func depKindFor(srcWrite, dstWrite bool) DepKind {
	switch {
	case srcWrite && dstWrite:
		return Output
	case srcWrite:
		return Flow
	default:
		return Anti
	}
}

// scalarDeps adds dependences through scalar variables among top-level
// statements: flow (def→use), anti (use→def), output (def→def), both
// within an iteration and carried around the back edge.
func (ld *LoopDeps) scalarDeps(p *il.Proc, loop *il.DoLoop) {
	n := len(loop.Body)
	defs := make([]map[il.VarID]bool, n)
	uses := make([]map[il.VarID]bool, n)
	for i, s := range loop.Body {
		defs[i] = map[il.VarID]bool{}
		uses[i] = map[il.VarID]bool{}
		il.WalkStmts([]il.Stmt{s}, func(sub il.Stmt) bool {
			if dv := il.DefinedVar(sub); dv != il.NoVar {
				defs[i][dv] = true
			}
			for _, u := range usedScalars(sub) {
				uses[i][u] = true
			}
			return true
		})
		// The loop IV is defined by the loop header, not body statements.
		delete(defs[i], loop.IV)
	}
	add := func(from, to int, kind DepKind, carried bool, v il.VarID) {
		ld.Deps = append(ld.Deps, Dep{From: from, To: to, Kind: kind,
			Carried: carried, Distance: 1, Known: carried, Scalar: true, Var: v})
	}
	for i := 0; i < n; i++ {
		for v := range defs[i] {
			// Forward within the iteration until the next def kills it.
			for j := i + 1; j < n; j++ {
				if uses[j][v] {
					add(i, j, Flow, false, v)
				}
				if defs[j][v] {
					add(i, j, Output, false, v)
					break
				}
			}
			// Carried to earlier-or-same statements around the back edge,
			// unless an intervening def kills it first.
			killed := false
			for j := i + 1; j < n && !killed; j++ {
				killed = defs[j][v]
			}
			if !killed {
				for j := 0; j <= i; j++ {
					if uses[j][v] {
						add(i, j, Flow, true, v)
					}
					if defs[j][v] {
						add(i, j, Output, true, v)
						break
					}
				}
			}
		}
		for v := range uses[i] {
			// Anti: use then later def (same iteration).
			for j := i + 1; j < n; j++ {
				if defs[j][v] {
					add(i, j, Anti, false, v)
					break
				}
			}
		}
	}
}

// usedScalars returns scalar variables read by a statement.
func usedScalars(s il.Stmt) []il.VarID {
	var out []il.VarID
	add := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			if v, ok := x.(*il.VarRef); ok {
				out = append(out, v.ID)
			}
			return true
		})
	}
	if as, ok := s.(*il.Assign); ok {
		if ld, isStore := as.Dst.(*il.Load); isStore {
			add(ld.Addr)
		}
		add(as.Src)
		return out
	}
	il.StmtExprs(s, add)
	return out
}

// barrierDeps serializes barrier statements against everything.
func (ld *LoopDeps) barrierDeps() {
	n := len(ld.Barrier)
	for i := 0; i < n; i++ {
		if !ld.Barrier[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i {
				// A barrier depends on itself across iterations.
				ld.Deps = append(ld.Deps, Dep{From: i, To: i, Kind: Output, Carried: true})
				continue
			}
			ld.Deps = append(ld.Deps, Dep{From: i, To: j, Kind: Output, Carried: true})
			ld.Deps = append(ld.Deps, Dep{From: j, To: i, Kind: Output, Carried: true})
		}
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
