// The test package is external (with a dot-import of depend) so it can
// drive the scalar optimizer: opt now depends on the analysis cache,
// which depends on depend — an in-package test would be an import cycle.
package depend_test

import (
	"testing"

	. "repro/internal/depend"

	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

// loopOf compiles src through the scalar pipeline and returns the named
// proc and its first DO loop.
func loopOf(t *testing.T, src, name string) (*il.Proc, *il.DoLoop) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	opt.Optimize(p, opt.DefaultOptions())
	var loop *il.DoLoop
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoLoop); ok && loop == nil {
			loop = d
		}
		return loop == nil
	})
	if loop == nil {
		t.Fatalf("no DO loop:\n%s", p)
	}
	return p, loop
}

func carriedDeps(ld *LoopDeps) []Dep {
	var out []Dep
	for _, d := range ld.Deps {
		if d.Carried {
			out = append(out, d)
		}
	}
	return out
}

func TestIndependentArrays(t *testing.T) {
	// a[i] = b[i]: distinct named arrays never overlap.
	src := `
float a[100], b[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = b[i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if len(ld.Refs) != 2 {
		t.Fatalf("refs: %d", len(ld.Refs))
	}
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("carried deps between distinct arrays: %v\n%s", got, p)
	}
}

func TestRefNormalization(t *testing.T) {
	src := `
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i+2] = 0;
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if len(ld.Refs) != 1 {
		t.Fatalf("refs: %d", len(ld.Refs))
	}
	r := ld.Refs[0]
	if !r.Linear || !r.IsWrite {
		t.Fatalf("ref: %+v", r)
	}
	if r.Coef != 4 || r.Offset != 8 {
		t.Errorf("coef=%d offset=%d (want 4, 8)", r.Coef, r.Offset)
	}
	if r.Base.Kind != BaseVar || p.Vars[r.Base.Var].Name != "a" {
		t.Errorf("base: %+v", r.Base)
	}
}

func TestPaperBacksolveCarriedFlow(t *testing.T) {
	// §6: p[i] = z[i]*(y[i] - q[i]) with p=&x[1], q=&x[0] has a carried
	// flow dependence of distance 1 — not vectorizable, but register-
	// promotable.
	src := `
void backsolve(float *x, float *y, float *z, int n)
{
	float *p, *q;
	int i;
	p = &x[1];
	q = &x[0];
	for (i = 0; i < n-2; i++)
		p[i] = z[i] * (y[i] - q[i]);
}
`
	p, loop := loopOf(t, src, "backsolve")
	ld := AnalyzeLoop(p, loop, Options{NoAlias: true})
	var flow []Dep
	for _, d := range ld.Deps {
		if d.Kind == Flow && d.Carried && !d.Scalar {
			flow = append(flow, d)
		}
	}
	if len(flow) != 1 {
		t.Fatalf("carried flow deps: %v\nrefs: %+v\n%s", flow, ld.Refs, p)
	}
	if !flow[0].Known || flow[0].Distance != 1 {
		t.Errorf("distance: %+v", flow[0])
	}
	if !ld.HasCycleThrough(flow[0].From) {
		t.Error("self-cycle not detected")
	}
}

func TestDistanceTwoNotOne(t *testing.T) {
	src := `
float a[200];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i+2] = a[i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	found := false
	for _, d := range ld.Deps {
		if d.Carried && d.Known && !d.Scalar {
			found = true
			if d.Distance != 2 {
				t.Errorf("distance %d, want 2", d.Distance)
			}
		}
	}
	if !found {
		t.Errorf("no carried dep found: %+v", ld.Deps)
	}
	_ = p
}

func TestGCDIndependent(t *testing.T) {
	// a[2i] and a[2i+1] never collide (odd difference, even strides).
	src := `
float a[400];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[2*i] = a[2*i+1];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("deps: %v\nrefs %+v\n%s", got, ld.Refs, p)
	}
}

func TestTripCountBoundsDistance(t *testing.T) {
	// a[i] and a[i+50] in a 10-trip loop never meet.
	src := `
float a[200];
void f(void) {
	int i;
	for (i = 0; i < 10; i++) a[i+50] = a[i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if ld.Trips != 10 {
		t.Fatalf("trips: %d", ld.Trips)
	}
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("deps: %v", got)
	}
	_ = p
}

func TestPointerParamsMayAlias(t *testing.T) {
	// §9: x and y could point into the same array — C imposes no
	// restrictions on argument aliasing.
	src := `
void f(float *x, float *y, int n) {
	int i;
	for (i = 0; i < n; i++) x[i] = y[i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if got := carriedDeps(ld); len(got) == 0 {
		t.Errorf("pointer params must conservatively alias\nrefs: %+v", ld.Refs)
	}
	_ = p
}

func TestNoAliasOptionClears(t *testing.T) {
	src := `
void f(float *x, float *y, int n) {
	int i;
	for (i = 0; i < n; i++) x[i] = y[i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{NoAlias: true})
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("NoAlias should clear pointer deps: %v", got)
	}
	_ = p
}

func TestPragmaSafeClears(t *testing.T) {
	src := "void f(float *x, float *y, int n) {\n\tint i;\n#pragma safe\n\tfor (i = 0; i < n; i++) x[i] = y[i];\n}"
	p, loop := loopOf(t, src, "f")
	if !loop.Safe {
		t.Fatal("loop not marked safe")
	}
	ld := AnalyzeLoop(p, loop, Options{})
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("safe loop still has deps: %v", got)
	}
	_ = p
}

func TestScalarReductionCycle(t *testing.T) {
	// s = s + a[i] carries a scalar flow dependence — the reduction is a
	// cycle and must not vectorize.
	src := `
float a[100];
float f(int n) {
	int i;
	float s;
	s = 0;
	for (i = 0; i < n; i++) s = s + a[i];
	return s;
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	found := false
	for _, d := range ld.Deps {
		if d.Scalar && d.Carried && d.From == d.To {
			found = true
		}
	}
	if !found {
		t.Errorf("reduction cycle missed: %+v\n%s", ld.Deps, p)
	}
}

func TestScalarFlowWithinIteration(t *testing.T) {
	src := `
float a[100], b[100];
void f(int n) {
	int i;
	float t;
	for (i = 0; i < n; i++) {
		t = a[i] * 2.0f;
		b[i] = t;
	}
}
`
	p, loop := loopOf(t, src, "f")
	if len(loop.Body) < 2 {
		t.Skipf("forward substitution fused the body:\n%s", p)
	}
	ld := AnalyzeLoop(p, loop, Options{})
	found := false
	for _, d := range ld.Deps {
		if d.Scalar && !d.Carried && d.Kind == Flow && d.From < d.To {
			found = true
		}
	}
	if !found {
		t.Errorf("scalar flow t missing: %+v", ld.Deps)
	}
}

func TestCallIsBarrier(t *testing.T) {
	src := `
float g(float);
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = g(a[i]);
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	hasBarrier := false
	for _, b := range ld.Barrier {
		if b {
			hasBarrier = true
		}
	}
	if !hasBarrier {
		t.Errorf("call not flagged as barrier:\n%s", p)
	}
	// Every barrier has a carried self-dep.
	selfDep := false
	for _, d := range ld.Deps {
		if d.From == d.To && d.Carried {
			selfDep = true
		}
	}
	if !selfDep {
		t.Error("barrier missing self dependence")
	}
}

func TestVolatileIsBarrier(t *testing.T) {
	src := `
volatile int port;
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		a[i] = 0;
		port = i;
	}
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	hasBarrier := false
	for _, b := range ld.Barrier {
		if b {
			hasBarrier = true
		}
	}
	if !hasBarrier {
		t.Errorf("volatile store not a barrier:\n%s", p)
	}
}

func TestStructArrayBases(t *testing.T) {
	// §10: arrays embedded within structures. Refs to t->m root at the
	// pointer with distinct invariant row offsets.
	src := `
struct xform { float m[4][4]; };
void f(struct xform *t, int j) {
	int i;
	for (i = 0; i < 4; i++) t->m[0][i] = t->m[1][i];
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	if len(ld.Refs) != 2 {
		t.Fatalf("refs: %d (%+v)", len(ld.Refs), ld.Refs)
	}
	for _, r := range ld.Refs {
		if !r.Linear || r.Base.Kind != BasePointer {
			t.Errorf("ref not normalized: %+v", r)
		}
	}
	// Row 0 spans bytes [0,16), row 1 [16,32): same base var, offsets
	// differ by 16 with coef 4 — the subscript test sees distance 4, but
	// the 4-trip count must kill it.
	if got := carriedDeps(ld); len(got) != 0 {
		t.Errorf("rows should be independent within 4 trips: %v", got)
	}
}

func TestOutputDepSameLocation(t *testing.T) {
	// a[0] written every iteration: carried output dependence.
	src := `
float a[10];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[0] = i;
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	// Invariant address store: coef 0. Same ref pair is (store, store)
	// only if there are two refs; with one ref there is no pair, so check
	// the single-ref invariant-store case is at least not misanalyzed as
	// vectorizable via HasCycleThrough... a single store to a[0] conflicts
	// with itself across iterations; normalization gives coef 0.
	if len(ld.Refs) != 1 || ld.Refs[0].Coef != 0 {
		t.Fatalf("refs: %+v", ld.Refs)
	}
	_ = p
}

func TestUnknownAddressConservative(t *testing.T) {
	// Indirection through a loaded pointer is not affine: unknown base.
	src := `
float *tab[10];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) *tab[i] = 0;
}
`
	p, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(p, loop, Options{})
	foundUnknown := false
	for _, r := range ld.Refs {
		if !r.Linear || r.Base.Kind == BaseUnknown {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Errorf("refs: %+v", ld.Refs)
	}
	_ = p
}

func TestDepStringForms(t *testing.T) {
	d := Dep{From: 0, To: 1, Kind: Flow, Carried: true, Distance: 2, Known: true}
	if got := d.String(); got != "S0 -flow carried(2)-> S1" {
		t.Errorf("got %q", got)
	}
	d2 := Dep{From: 1, To: 0, Kind: Anti, Carried: true}
	if got := d2.String(); got != "S1 -anti carried(?)-> S0" {
		t.Errorf("got %q", got)
	}
	d3 := Dep{From: 0, To: 0, Kind: Output, Scalar: true, Var: 3}
	if got := d3.String(); got != "S0 -output/scalar-> S0" {
		t.Errorf("got %q", got)
	}
}

func TestBasesMayAliasRules(t *testing.T) {
	src := `
float a[10], b[10];
void f(float *p, float *q, int n) {
	int i;
	for (i = 0; i < n; i++) {
		a[i] = p[i];
		b[i] = q[i];
	}
}
`
	proc, loop := loopOf(t, src, "f")
	ld := AnalyzeLoop(proc, loop, Options{})
	var aBase, bBase, pBase, qBase *Base
	for i := range ld.Refs {
		r := &ld.Refs[i]
		switch {
		case r.Base.Kind == BaseVar && proc.Vars[r.Base.Var].Name == "a":
			aBase = &r.Base
		case r.Base.Kind == BaseVar && proc.Vars[r.Base.Var].Name == "b":
			bBase = &r.Base
		case r.Base.Kind == BasePointer && proc.Vars[r.Base.Var].Name == "p":
			pBase = &r.Base
		case r.Base.Kind == BasePointer && proc.Vars[r.Base.Var].Name == "q":
			qBase = &r.Base
		}
	}
	if aBase == nil || bBase == nil || pBase == nil || qBase == nil {
		t.Fatalf("bases not classified: %+v", ld.Refs)
	}
	// Distinct named arrays never alias.
	if BasesMayAlias(proc, *aBase, *bBase, false, Options{}) {
		t.Error("a and b alias")
	}
	// Identical bases trivially alias.
	if !BasesMayAlias(proc, *aBase, *aBase, false, Options{}) {
		t.Error("a does not alias itself")
	}
	// Distinct pointers alias under C rules, not under Fortran rules.
	if !BasesMayAlias(proc, *pBase, *qBase, false, Options{}) {
		t.Error("p and q should alias under C rules")
	}
	if BasesMayAlias(proc, *pBase, *qBase, false, Options{NoAlias: true}) {
		t.Error("p and q alias under -noalias")
	}
	if BasesMayAlias(proc, *pBase, *qBase, true, Options{}) {
		t.Error("p and q alias under #pragma safe")
	}
}

func TestDepKindString(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Error("kind names")
	}
}
