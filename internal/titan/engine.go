package titan

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"unsafe"
)

// The fast engine. Run executes the same programs as RunReference with a
// bit-identical Result, but restructured for host throughput:
//
//   - every Func is pre-decoded once per Program into a dense []dinstr
//     with the timing table (unit, latency, occupancy, vl scaling),
//     operand/destination scoreboard kinds, and branch targets folded
//     into each instruction, so the hot loop runs one data-driven charge
//     plus one semantic switch instead of the reference's two full
//     switches per retired instruction;
//   - Trace and per-instruction budget checks are hoisted out of the
//     straight-line path (budget is re-checked at every control
//     transfer, which every loop must make);
//   - common pairs execute as superinstructions: ALU/compare + Beqz/Bnez
//     and Fld4/Fld8 + float arithmetic retire in one loop iteration
//     (both instructions still charge the scoreboard individually, so
//     simulated timing is unchanged);
//   - vector memory and arithmetic run as bulk kernels over the memory
//     slab and register file with the element-kind switch, bounds
//     checks, and slot wrap-around hoisted out of the per-element loop
//     (stride-1 loads/stores of float64 reinterpret the slab directly);
//   - parallel regions fan out one goroutine per simulated processor
//     over the shared slab, joined with the reference's max-delta +
//     fork-overhead cycle model.

// regKind says which scoreboard array an operand or result lives in.
type regKind uint8

const (
	rkNone regKind = iota
	rkInt
	rkFlt
	rkVec
	rkMask
)

// unitKind selects the functional unit that executes an op.
type unitKind uint8

const (
	uInt unitKind = iota
	uFlt
	uMem
)

// flopKind is the op's contribution to the FLOP count.
type flopKind uint8

const (
	fNone flopKind = iota
	fOne
	fVL
)

// fuseKind marks a superinstruction: this op and its successor retire
// together in one loop iteration.
type fuseKind uint8

const (
	fuseNone   fuseKind = iota
	fuseBranch          // ALU/compare + Beqz/Bnez
	fuseFltBin          // Fld4/Fld8 + Fadd/Fsub/Fmul/Fdiv
)

// dinstr is one pre-decoded instruction: the Instr operands plus
// everything dispatch used to recompute per retirement — scoreboard
// kinds, unit, base latency/occupancy and vl scaling, FLOP class — and
// resolved control-flow targets. Vector register indices are pre-wrapped
// into [0, VRFWords).
type dinstr struct {
	// Hot fields first: the dispatch loop and the inlined charge touch
	// only these, keeping the per-instruction working set to about one
	// cache line of the decoded stream.
	op  Op
	rd  int32
	rs1 int32
	rs2 int32
	tgt int32 // branch target pc, or par.end index; -1 if unresolved
	// Byte offsets into the cpu struct of the operand ready-times,
	// the destination ready-time, and the issuing unit, so charge runs
	// branch-free: absent operands point at cpu.sbZero (always zero)
	// and absent destinations at cpu.sbSink (never read). s3off is the
	// governing mask register of masked vector ops (sbZero otherwise).
	s1off   int32
	s2off   int32
	s3off   int32
	doff    int32
	unitOff int32
	lat     int32
	occ     int32
	vsc     int32 // latency/occupancy grow by vsc·vl (0, 1, or 2)
	flc     int32 // constant FLOP contribution per retirement
	flv     int32 // per-vector-lane FLOP contribution (× clamped vl)
	imm     int64
	fimm    float64

	fuse   fuseKind
	s1k    regKind
	s2k    regKind
	dk     regKind
	unit   unitKind
	vscale uint8 // latency/occupancy grow by vscale·vl
	fl     flopKind
	sym    string
	errMsg string // decode-time diagnosis, raised only if executed
}

// dfunc is a pre-decoded function.
type dfunc struct {
	name string
	code []dinstr
}

// Byte offsets of the scoreboard arrays and unit clocks within cpu,
// the basis of the decoded charge offsets.
var (
	offIntReady  = int32(unsafe.Offsetof(cpu{}.intReady))
	offFltReady  = int32(unsafe.Offsetof(cpu{}.fltReady))
	offVecReady  = int32(unsafe.Offsetof(cpu{}.vecReady))
	offMaskReady = int32(unsafe.Offsetof(cpu{}.maskReady))
	offIntUnit   = int32(unsafe.Offsetof(cpu{}.intUnit))
	offFltUnit   = int32(unsafe.Offsetof(cpu{}.fltUnit))
	offMemUnit   = int32(unsafe.Offsetof(cpu{}.memUnit))
	offSbZero    = int32(unsafe.Offsetof(cpu{}.sbZero))
	offSbSink    = int32(unsafe.Offsetof(cpu{}.sbSink))
)

// sbOff resolves an operand's ready-time slot to its byte offset in cpu.
// Register indexes are validated here so the unchecked pointer
// arithmetic in charge can never stray: the reference would panic on
// the same malformed instruction at execution time, the decoder simply
// reports it up front.
func sbOff(k regKind, r int32, write bool) int32 {
	switch k {
	case rkInt:
		if r < 0 || r >= NumIntRegs {
			panic(fmt.Sprintf("titan: decode: integer register r%d out of range", r))
		}
		return offIntReady + 8*r
	case rkFlt:
		if r < 0 || r >= NumFltRegs {
			panic(fmt.Sprintf("titan: decode: float register f%d out of range", r))
		}
		return offFltReady + 8*r
	case rkVec:
		// Pre-wrapped by the decoder into [0, VRFWords).
		return offVecReady + 8*r
	case rkMask:
		// Pre-wrapped by the decoder into [0, NumMaskRegs).
		return offMaskReady + 8*r
	}
	if write {
		return offSbSink
	}
	return offSbZero
}

// decode builds the decoded form of every function, once. Concurrent
// Machines sharing a Program race here only through the sync.Once.
func (p *Program) decode() {
	p.decOnce.Do(func() {
		p.decoded = make(map[string]*dfunc, len(p.Funcs))
		for name, f := range p.Funcs {
			p.decoded[name] = decodeFunc(f)
		}
	})
}

// timeOf is the reference dispatch timing table, factored: latency and
// occupancy are lat + vscale·vl / occ + vscale·vl.
func timeOf(op Op) (unit unitKind, vscale uint8, lat, occ int64) {
	switch op {
	case OpMul, OpMuli:
		return uInt, 0, 4, 1
	case OpDiv, OpRem:
		return uInt, 0, 12, 8
	case OpLd1, OpLd2, OpLd4, OpFld4, OpFld8:
		return uMem, 0, 6, 1
	case OpSt1, OpSt2, OpSt4, OpFst4, OpFst8, OpPost:
		return uMem, 0, 1, 1
	case OpWait:
		return uMem, 0, waitLatency, 1
	case OpFadd, OpFsub, OpFmul, OpFneg,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe,
		OpCvtIF, OpCvtFI, OpFmov, OpFldi:
		return uFlt, 0, 6, 1
	case OpFdiv:
		return uFlt, 0, 18, 12
	case OpVld, OpVst, OpVldm, OpVstm:
		return uMem, 1, 6, 2
	case OpVadd, OpVsub, OpVmul, OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVmov, OpVbcast,
		OpVaddm, OpVsubm, OpVmulm,
		OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe,
		OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes:
		return uFlt, 1, 8, 4
	case OpVdiv, OpVdivs, OpVdivsr, OpVdivm:
		return uFlt, 2, 12, 8
	case OpMand, OpMor, OpMnot:
		return uInt, 0, 2, 1
	case OpJmp, OpBeqz, OpBnez:
		return uInt, 0, 2, 1
	case OpCall:
		return uInt, 0, 10, 10
	case OpRet:
		return uInt, 0, 8, 8
	default:
		return uInt, 0, 1, 1
	}
}

// srcKinds is the reference dispatch operand-readiness table.
func srcKinds(op Op) (s1k, s2k regKind) {
	switch op {
	case OpMov, OpNeg, OpNot, OpBnot, OpAddi, OpMuli, OpBeqz, OpBnez, OpArg,
		OpVsetl, OpCvtIF, OpPid, OpNproc,
		OpLd1, OpLd2, OpLd4, OpFld4, OpFld8,
		OpSt1, OpSt2, OpSt4, OpFst4, OpFst8:
		return rkInt, rkNone
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpVld, OpVst, OpPost, OpWait:
		return rkInt, rkInt
	case OpFmov, OpFneg, OpCvtFI, OpFarg, OpVbcast:
		return rkFlt, rkNone
	case OpFadd, OpFsub, OpFmul, OpFdiv,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		return rkFlt, rkFlt
	case OpVadd, OpVsub, OpVmul, OpVdiv, OpVmov,
		OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe,
		OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		return rkVec, rkVec
	case OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr,
		OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes:
		return rkVec, rkFlt
	case OpMand, OpMor:
		return rkMask, rkMask
	case OpMnot:
		return rkMask, rkNone
	case OpVldm, OpVstm:
		return rkInt, rkInt
	}
	return rkNone, rkNone
}

// dstKind is the reference dispatch result-readiness table.
func dstKind(op Op) regKind {
	switch op {
	case OpLdi, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpAddi, OpMuli, OpNeg, OpNot, OpBnot,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpLd1, OpLd2, OpLd4, OpCvtFI, OpPid, OpNproc,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		return rkInt
	case OpFldi, OpFmov, OpFadd, OpFsub, OpFmul, OpFdiv, OpFneg, OpCvtIF,
		OpFld4, OpFld8:
		return rkFlt
	case OpVld, OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr, OpVmov, OpVbcast,
		OpVldm, OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		return rkVec
	case OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe,
		OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes,
		OpMand, OpMor, OpMnot:
		return rkMask
	}
	return rkNone
}

func flopOf(op Op) flopKind {
	switch op {
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return fOne
	case OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr,
		OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		return fVL
	}
	return fNone
}

// maskedVecOp reports whether op reads a governing mask register out of
// Imm bits 8.. (the third scoreboard operand).
func maskedVecOp(op Op) bool {
	switch op {
	case OpVldm, OpVstm, OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		return true
	}
	return false
}

// fusableALU ops may lead a fuseBranch pair: register-only, no faults,
// no control flow.
func fusableALU(op Op) bool {
	switch op {
	case OpLdi, OpMov, OpAdd, OpSub, OpAddi, OpAnd, OpOr, OpXor, OpNeg, OpNot,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		return true
	}
	return false
}

func isFltBin(op Op) bool {
	switch op {
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return true
	}
	return false
}

func decodeFunc(f *Func) *dfunc {
	n := len(f.Instrs)
	df := &dfunc{name: f.Name, code: make([]dinstr, n)}
	isTarget := make([]bool, n+1)
	for _, t := range f.Labels {
		if t >= 0 && t <= n {
			isTarget[t] = true
		}
	}
	for pc, in := range f.Instrs {
		d := &df.code[pc]
		d.op = in.Op
		d.rd, d.rs1, d.rs2 = int32(in.Rd), int32(in.Rs1), int32(in.Rs2)
		d.imm, d.fimm, d.sym = in.Imm, in.FImm, in.Sym
		d.s1k, d.s2k = srcKinds(in.Op)
		d.dk = dstKind(in.Op)
		var lat, occ int64
		d.unit, d.vscale, lat, occ = timeOf(in.Op)
		d.lat, d.occ = int32(lat), int32(occ)
		d.vsc = int32(d.vscale)
		d.fl = flopOf(in.Op)
		// Pre-wrap vector and mask register file indices, so the hot path
		// indexes the ready arrays and kernel fast paths directly.
		if d.s1k == rkVec {
			d.rs1 = int32(vslot(in.Rs1))
		} else if d.s1k == rkMask {
			d.rs1 = int32(mslot(in.Rs1))
		}
		if d.s2k == rkVec {
			d.rs2 = int32(vslot(in.Rs2))
		} else if d.s2k == rkMask {
			d.rs2 = int32(mslot(in.Rs2))
		}
		if d.dk == rkVec {
			d.rd = int32(vslot(in.Rd))
		} else if d.dk == rkMask {
			d.rd = int32(mslot(in.Rd))
		}
		d.s1off = sbOff(d.s1k, d.rs1, false)
		d.s2off = sbOff(d.s2k, d.rs2, false)
		d.s3off = offSbZero
		if maskedVecOp(in.Op) {
			d.s3off = sbOff(rkMask, int32(maskReg(in)), false)
		}
		d.doff = sbOff(d.dk, d.rd, true)
		switch d.unit {
		case uInt:
			d.unitOff = offIntUnit
		case uFlt:
			d.unitOff = offFltUnit
		default:
			d.unitOff = offMemUnit
		}
		switch d.fl {
		case fOne:
			d.flc = 1
		case fVL:
			d.flv = 1
		}
		switch in.Op {
		case OpJmp, OpBeqz, OpBnez:
			if t, ok := f.Labels[in.Sym]; ok {
				d.tgt = int32(t)
			} else {
				// The reference faults only when the branch is actually
				// taken; keep a lazy error so dead code stays dead.
				d.tgt = -1
				d.errMsg = fmt.Sprintf("titan: unknown label %q in %s", in.Sym, f.Name)
			}
		case OpParBegin:
			d.tgt = -1
			depth := 0
			for i := pc + 1; i < n; i++ {
				switch f.Instrs[i].Op {
				case OpParBegin:
					depth++
				case OpParEnd:
					if depth == 0 {
						d.tgt = int32(i)
						// Flag regions containing post/wait (imm is unused
						// by par.begin): they need the synchronization
						// fabric and the truly concurrent execution path.
						if hasSyncOps(f.Instrs, pc+1, i) {
							d.imm = 1
						}
						i = n
					} else {
						depth--
					}
				}
			}
		}
	}
	// Fusion pass: pair an eligible op with its successor unless the
	// successor is a jump target (it must stay independently reachable).
	// Par markers can never appear in a pair, so pairs never straddle a
	// region boundary or its stop point.
	for pc := 0; pc+1 < n; pc++ {
		d := &df.code[pc]
		if isTarget[pc+1] {
			continue
		}
		d2 := &df.code[pc+1]
		switch {
		case fusableALU(d.op) && (d2.op == OpBeqz || d2.op == OpBnez):
			d.fuse = fuseBranch
			pc++
		case (d.op == OpFld4 || d.op == OpFld8) && isFltBin(d2.op):
			d.fuse = fuseFltBin
			pc++
		}
	}
	return df
}

// charge advances the scoreboard for one decoded instruction: the
// reference dispatch with its three switches replaced by decoded byte
// offsets into the cpu struct, so the hot path is branch-free — operand
// and destination slots, the issuing unit, the vl scaling, and the FLOP
// contribution are all straight loads through pre-validated offsets.
func (c *cpu) charge(d *dinstr) {
	base := unsafe.Pointer(c)
	ready := c.clock
	if t := *(*int64)(unsafe.Add(base, uintptr(d.s1off))); t > ready {
		ready = t
	}
	if t := *(*int64)(unsafe.Add(base, uintptr(d.s2off))); t > ready {
		ready = t
	}
	if t := *(*int64)(unsafe.Add(base, uintptr(d.s3off))); t > ready {
		ready = t
	}

	vl := c.vlc
	scale := int64(d.vsc) * vl

	unit := (*int64)(unsafe.Add(base, uintptr(d.unitOff)))
	issue := ready
	if *unit > issue {
		issue = *unit
	}
	*unit = issue + int64(d.occ) + scale
	done := issue + int64(d.lat) + scale
	c.clock = issue + 1
	if done > c.cycles {
		c.cycles = done
	}
	*(*int64)(unsafe.Add(base, uintptr(d.doff))) = done
	c.flops += int64(d.flc) + int64(d.flv)*vl
}

// runFastEntry is Run's engine path.
func (m *Machine) runFastEntry(entry string) (Result, error) {
	m.prog.decode()
	df, ok := m.prog.decoded[entry]
	if !ok {
		return Result{}, fmt.Errorf("titan: no function %q", entry)
	}
	c := &m.root
	if m.rootUsed {
		c = &cpu{}
	}
	m.rootUsed = true
	c.m = m
	c.out = &m.out
	c.vlc = 1
	c.r[RegSP] = int64(len(m.mem)) - 8
	max := m.MaxInstrs
	if max == 0 {
		max = 2_000_000_000
	}
	if err := c.runFast(df, 0, -1, max); err != nil {
		return Result{}, err
	}
	procs, stalls := m.runStats()
	return Result{
		Cycles:          c.cycles,
		FlopCount:       c.flops,
		Instrs:          c.icount,
		ExitCode:        c.r[RegRetInt],
		Output:          m.out.String(),
		SyncStalls:      stalls,
		MaskOps:         c.maskOps,
		MaskLanesActive: c.maskActive,
		MaskLanesTotal:  c.maskTotal,
		Procs:           procs,
	}, nil
}

func (c *cpu) budgetErr(df *dfunc) error {
	return fmt.Errorf("titan: instruction budget exhausted in %s (possible infinite loop)", df.name)
}

// runFast executes decoded instructions from pc until RET/HALT
// (stop == -1) or instruction index stop (parallel regions). The
// instruction budget is enforced at control transfers only — every loop
// must make one — so straight-line code pays no per-instruction check.
func (c *cpu) runFast(df *dfunc, pc, stop int, maxInstrs int64) error {
	code := df.code
	mem := c.m.mem
	memLen := int64(len(mem))
	for pc < len(code) {
		if pc == stop {
			return nil
		}
		d := &code[pc]
		c.icount++
		// charge(d), inlined by hand: the compiler judges the method
		// too large to inline and this is the single hottest call in
		// the engine (see charge for the commented version).
		{
			cb := unsafe.Pointer(c)
			ready := c.clock
			if t := *(*int64)(unsafe.Add(cb, uintptr(d.s1off))); t > ready {
				ready = t
			}
			if t := *(*int64)(unsafe.Add(cb, uintptr(d.s2off))); t > ready {
				ready = t
			}
			if t := *(*int64)(unsafe.Add(cb, uintptr(d.s3off))); t > ready {
				ready = t
			}
			vl := c.vlc
			scale := int64(d.vsc) * vl
			unit := (*int64)(unsafe.Add(cb, uintptr(d.unitOff)))
			issue := ready
			if *unit > issue {
				issue = *unit
			}
			*unit = issue + int64(d.occ) + scale
			done := issue + int64(d.lat) + scale
			c.clock = issue + 1
			if done > c.cycles {
				c.cycles = done
			}
			*(*int64)(unsafe.Add(cb, uintptr(d.doff))) = done
			c.flops += int64(d.flc) + int64(d.flv)*vl
		}
		switch d.op {
		case OpNop:
		case OpLdi:
			c.r[d.rd] = d.imm
		case OpMov:
			c.r[d.rd] = c.r[d.rs1]
		case OpAdd:
			c.r[d.rd] = c.r[d.rs1] + c.r[d.rs2]
		case OpSub:
			c.r[d.rd] = c.r[d.rs1] - c.r[d.rs2]
		case OpMul:
			c.r[d.rd] = c.r[d.rs1] * c.r[d.rs2]
		case OpDiv:
			if c.r[d.rs2] == 0 {
				return fmt.Errorf("titan: integer division by zero in %s", df.name)
			}
			c.r[d.rd] = c.r[d.rs1] / c.r[d.rs2]
		case OpRem:
			if c.r[d.rs2] == 0 {
				return fmt.Errorf("titan: integer remainder by zero in %s", df.name)
			}
			c.r[d.rd] = c.r[d.rs1] % c.r[d.rs2]
		case OpAnd:
			c.r[d.rd] = c.r[d.rs1] & c.r[d.rs2]
		case OpOr:
			c.r[d.rd] = c.r[d.rs1] | c.r[d.rs2]
		case OpXor:
			c.r[d.rd] = c.r[d.rs1] ^ c.r[d.rs2]
		case OpShl:
			c.r[d.rd] = c.r[d.rs1] << uint(c.r[d.rs2]&63)
		case OpShr:
			c.r[d.rd] = c.r[d.rs1] >> uint(c.r[d.rs2]&63)
		case OpAddi:
			c.r[d.rd] = c.r[d.rs1] + d.imm
		case OpMuli:
			c.r[d.rd] = c.r[d.rs1] * d.imm
		case OpNeg:
			c.r[d.rd] = -c.r[d.rs1]
		case OpNot:
			c.r[d.rd] = b2i(c.r[d.rs1] == 0)
		case OpBnot:
			c.r[d.rd] = ^c.r[d.rs1]
		case OpCmpEq:
			c.r[d.rd] = b2i(c.r[d.rs1] == c.r[d.rs2])
		case OpCmpNe:
			c.r[d.rd] = b2i(c.r[d.rs1] != c.r[d.rs2])
		case OpCmpLt:
			c.r[d.rd] = b2i(c.r[d.rs1] < c.r[d.rs2])
		case OpCmpLe:
			c.r[d.rd] = b2i(c.r[d.rs1] <= c.r[d.rs2])
		case OpCmpGt:
			c.r[d.rd] = b2i(c.r[d.rs1] > c.r[d.rs2])
		case OpCmpGe:
			c.r[d.rd] = b2i(c.r[d.rs1] >= c.r[d.rs2])
		case OpPid:
			c.r[d.rd] = c.pid
		case OpNproc:
			c.r[d.rd] = int64(c.m.Processors)

		case OpLd1:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-1) {
				return &Fault{Addr: a, Size: 1, Kind: "load", Func: df.name, PC: pc}
			}
			c.r[d.rd] = int64(int8(mem[a]))
		case OpLd2:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-2) {
				return &Fault{Addr: a, Size: 2, Kind: "load", Func: df.name, PC: pc}
			}
			c.r[d.rd] = int64(int16(binary.LittleEndian.Uint16(mem[a:])))
		case OpLd4:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-4) {
				return &Fault{Addr: a, Size: 4, Kind: "load", Func: df.name, PC: pc}
			}
			c.r[d.rd] = int64(int32(binary.LittleEndian.Uint32(mem[a:])))
		case OpSt1:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-1) {
				return &Fault{Addr: a, Size: 1, Kind: "store", Func: df.name, PC: pc}
			}
			mem[a] = byte(c.r[d.rs2])
		case OpSt2:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-2) {
				return &Fault{Addr: a, Size: 2, Kind: "store", Func: df.name, PC: pc}
			}
			binary.LittleEndian.PutUint16(mem[a:], uint16(c.r[d.rs2]))
		case OpSt4:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-4) {
				return &Fault{Addr: a, Size: 4, Kind: "store", Func: df.name, PC: pc}
			}
			binary.LittleEndian.PutUint32(mem[a:], uint32(c.r[d.rs2]))
		case OpFld4:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-4) {
				return &Fault{Addr: a, Size: 4, Kind: "load", Func: df.name, PC: pc}
			}
			c.f[d.rd] = float64(math.Float32frombits(binary.LittleEndian.Uint32(mem[a:])))
		case OpFld8:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-8) {
				return &Fault{Addr: a, Size: 8, Kind: "load", Func: df.name, PC: pc}
			}
			c.f[d.rd] = math.Float64frombits(binary.LittleEndian.Uint64(mem[a:]))
		case OpFst4:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-4) {
				return &Fault{Addr: a, Size: 4, Kind: "store", Func: df.name, PC: pc}
			}
			binary.LittleEndian.PutUint32(mem[a:], math.Float32bits(float32(c.f[d.rs2])))
		case OpFst8:
			a := c.r[d.rs1] + d.imm
			if uint64(a) > uint64(memLen-8) {
				return &Fault{Addr: a, Size: 8, Kind: "store", Func: df.name, PC: pc}
			}
			binary.LittleEndian.PutUint64(mem[a:], math.Float64bits(c.f[d.rs2]))

		case OpFldi:
			c.f[d.rd] = d.fimm
		case OpFmov:
			c.f[d.rd] = c.f[d.rs1]
		case OpFadd:
			c.f[d.rd] = c.f[d.rs1] + c.f[d.rs2]
		case OpFsub:
			c.f[d.rd] = c.f[d.rs1] - c.f[d.rs2]
		case OpFmul:
			c.f[d.rd] = c.f[d.rs1] * c.f[d.rs2]
		case OpFdiv:
			c.f[d.rd] = c.f[d.rs1] / c.f[d.rs2]
		case OpFneg:
			c.f[d.rd] = -c.f[d.rs1]
		case OpFcmpEq:
			c.r[d.rd] = b2i(c.f[d.rs1] == c.f[d.rs2])
		case OpFcmpNe:
			c.r[d.rd] = b2i(c.f[d.rs1] != c.f[d.rs2])
		case OpFcmpLt:
			c.r[d.rd] = b2i(c.f[d.rs1] < c.f[d.rs2])
		case OpFcmpLe:
			c.r[d.rd] = b2i(c.f[d.rs1] <= c.f[d.rs2])
		case OpFcmpGt:
			c.r[d.rd] = b2i(c.f[d.rs1] > c.f[d.rs2])
		case OpFcmpGe:
			c.r[d.rd] = b2i(c.f[d.rs1] >= c.f[d.rs2])
		case OpCvtIF:
			c.f[d.rd] = float64(c.r[d.rs1])
		case OpCvtFI:
			c.r[d.rd] = int64(c.f[d.rs1])

		case OpVsetl:
			vl := c.r[d.rs1]
			if vl < 0 {
				vl = 0
			}
			if vl > MaxVL {
				vl = MaxVL
			}
			c.vl = vl
			c.vlc = vl
			if vl == 0 {
				c.vlc = 1
			}
		case OpVld:
			if err := c.vldFast(d, df.name, pc); err != nil {
				return err
			}
		case OpVst:
			if err := c.vstFast(d, df.name, pc); err != nil {
				return err
			}
		case OpVadd, OpVsub, OpVmul, OpVdiv:
			c.vbinFast(d)
		case OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr:
			c.vscalarFast(d)
		case OpVmov:
			c.vmovFast(d)
		case OpVbcast:
			c.vbcastFast(d)

		case OpVcmpLt:
			c.vcmpVVFast(d, func(a, b float64) bool { return a < b })
		case OpVcmpLe:
			c.vcmpVVFast(d, func(a, b float64) bool { return a <= b })
		case OpVcmpEq:
			c.vcmpVVFast(d, func(a, b float64) bool { return a == b })
		case OpVcmpNe:
			c.vcmpVVFast(d, func(a, b float64) bool { return a != b })
		case OpVcmpLts:
			c.vcmpVSFast(d, func(a, s float64) bool { return a < s })
		case OpVcmpLes:
			c.vcmpVSFast(d, func(a, s float64) bool { return a <= s })
		case OpVcmpEqs:
			c.vcmpVSFast(d, func(a, s float64) bool { return a == s })
		case OpVcmpNes:
			c.vcmpVSFast(d, func(a, s float64) bool { return a != s })
		case OpMand:
			c.maskCombine(Instr{Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2)},
				func(a, b uint64) uint64 { return a & b })
		case OpMor:
			c.maskCombine(Instr{Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2)},
				func(a, b uint64) uint64 { return a | b })
		case OpMnot:
			c.maskCombine(Instr{Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2)},
				func(a, _ uint64) uint64 { return ^a })
		case OpVldm:
			if err := c.vldmFast(d, df.name, pc); err != nil {
				return err
			}
		case OpVstm:
			if err := c.vstmFast(d, df.name, pc); err != nil {
				return err
			}
		case OpVaddm:
			c.vbinmFast(d, OpVadd, func(a, b float64) float64 { return a + b })
		case OpVsubm:
			c.vbinmFast(d, OpVsub, func(a, b float64) float64 { return a - b })
		case OpVmulm:
			c.vbinmFast(d, OpVmul, func(a, b float64) float64 { return a * b })
		case OpVdivm:
			c.vbinmFast(d, OpVdiv, func(a, b float64) float64 { return a / b })

		case OpJmp:
			if c.icount >= maxInstrs {
				return c.budgetErr(df)
			}
			if d.tgt < 0 {
				return fmt.Errorf("%s", d.errMsg)
			}
			pc = int(d.tgt)
			continue
		case OpBeqz:
			if c.icount >= maxInstrs {
				return c.budgetErr(df)
			}
			if c.r[d.rs1] == 0 {
				if d.tgt < 0 {
					return fmt.Errorf("%s", d.errMsg)
				}
				pc = int(d.tgt)
				continue
			}
		case OpBnez:
			if c.icount >= maxInstrs {
				return c.budgetErr(df)
			}
			if c.r[d.rs1] != 0 {
				if d.tgt < 0 {
					return fmt.Errorf("%s", d.errMsg)
				}
				pc = int(d.tgt)
				continue
			}
		case OpArg:
			c.args = append(c.args, argval{i: c.r[d.rs1]})
		case OpFarg:
			c.args = append(c.args, argval{f: c.f[d.rs1], isFlt: true})
		case OpCall:
			if c.icount >= maxInstrs {
				return c.budgetErr(df)
			}
			if err := c.callFast(d, df, pc, maxInstrs); err != nil {
				return err
			}
		case OpRet, OpHalt:
			return nil

		case OpParBegin:
			if c.icount >= maxInstrs {
				return c.budgetErr(df)
			}
			if d.tgt < 0 {
				return fmt.Errorf("titan: unmatched par.begin in %s", df.name)
			}
			end := int(d.tgt)
			if err := c.parallelRegionFast(df, pc+1, end, maxInstrs, d.imm == 1); err != nil {
				return err
			}
			pc = end + 1
			continue
		case OpParEnd:
			return fmt.Errorf("titan: stray par.end in %s", df.name)

		case OpPost:
			if c.sync == nil || !c.inRegionFrame {
				return fmt.Errorf("titan: post outside parallel region in %s", df.name)
			}
			cell := c.r[d.rs1]
			if cell < 0 || cell >= NumSyncCells {
				return &Fault{Addr: cell, Size: 8, Kind: "sync post", Func: df.name, PC: pc}
			}
			// The inlined charge left clock = issue+1; the post's value
			// becomes visible at issue+lat, the store-like completion.
			c.sync.post(int(cell), c.r[d.rs2], c.clock-1+int64(d.lat))
		case OpWait:
			if c.sync == nil || !c.inRegionFrame {
				return fmt.Errorf("titan: wait outside parallel region in %s", df.name)
			}
			cell := c.r[d.rs1]
			if cell < 0 || cell >= NumSyncCells {
				return &Fault{Addr: cell, Size: 8, Kind: "sync wait", Func: df.name, PC: pc}
			}
			t, err := c.sync.waitFast(int(cell), c.r[d.rs2], df.name)
			if err != nil {
				return err
			}
			done := c.clock - 1 + int64(d.lat)
			if eff := t + waitLatency; eff > done {
				c.syncStall += eff - done
				c.clock = eff
				if eff > c.cycles {
					c.cycles = eff
				}
			}

		default:
			return fmt.Errorf("titan: unimplemented op %v", d.op)
		}

		if d.fuse != fuseNone {
			d2 := &code[pc+1]
			c.icount++
			// charge(d2), inlined by hand like the dispatch site above.
			{
				cb := unsafe.Pointer(c)
				ready := c.clock
				if t := *(*int64)(unsafe.Add(cb, uintptr(d2.s1off))); t > ready {
					ready = t
				}
				if t := *(*int64)(unsafe.Add(cb, uintptr(d2.s2off))); t > ready {
					ready = t
				}
				if t := *(*int64)(unsafe.Add(cb, uintptr(d2.s3off))); t > ready {
					ready = t
				}
				vl := c.vlc
				scale := int64(d2.vsc) * vl
				unit := (*int64)(unsafe.Add(cb, uintptr(d2.unitOff)))
				issue := ready
				if *unit > issue {
					issue = *unit
				}
				*unit = issue + int64(d2.occ) + scale
				done := issue + int64(d2.lat) + scale
				c.clock = issue + 1
				if done > c.cycles {
					c.cycles = done
				}
				*(*int64)(unsafe.Add(cb, uintptr(d2.doff))) = done
				c.flops += int64(d2.flc) + int64(d2.flv)*vl
			}
			if d.fuse == fuseBranch {
				if c.icount >= maxInstrs {
					return c.budgetErr(df)
				}
				if (d2.op == OpBeqz) == (c.r[d2.rs1] == 0) {
					if d2.tgt < 0 {
						return fmt.Errorf("%s", d2.errMsg)
					}
					pc = int(d2.tgt)
					continue
				}
			} else { // fuseFltBin
				switch d2.op {
				case OpFadd:
					c.f[d2.rd] = c.f[d2.rs1] + c.f[d2.rs2]
				case OpFsub:
					c.f[d2.rd] = c.f[d2.rs1] - c.f[d2.rs2]
				case OpFmul:
					c.f[d2.rd] = c.f[d2.rs1] * c.f[d2.rs2]
				case OpFdiv:
					c.f[d2.rd] = c.f[d2.rs1] / c.f[d2.rs2]
				}
			}
			pc += 2
			continue
		}
		pc++
	}
	return nil
}

// callFast mirrors call over decoded functions.
func (c *cpu) callFast(d *dinstr, df *dfunc, pc int, maxInstrs int64) error {
	if handled, err := c.intrinsic(d.sym); handled {
		c.args = nil
		return locateFault(err, df.name, pc)
	}
	callee, ok := c.m.prog.decoded[d.sym]
	if !ok {
		return fmt.Errorf("titan: call to undefined function %q", d.sym)
	}
	savedR := c.r
	savedF := c.f
	savedFrame := c.inRegionFrame
	c.inRegionFrame = false
	c.args = nil
	if err := c.runFast(callee, 0, -1, maxInstrs); err != nil {
		return err
	}
	c.inRegionFrame = savedFrame
	retI := c.r[RegRetInt]
	retF := c.f[RegRetFlt]
	c.r = savedR
	c.f = savedF
	c.r[RegRetInt] = retI
	c.f[RegRetFlt] = retF
	return nil
}

// parallelRegionFast runs [start, end) once per processor, one goroutine
// each, over the shared memory slab. Registers, the VRF, and the
// scoreboard are private per processor (cpu is copied by value); output
// goes to a private builder per processor and is concatenated in pid
// order at the join, which makes it byte-identical to the reference's
// serialized pid-order execution. Memory is genuinely shared and
// unsynchronized — safe because the compiler only builds parallel
// regions from loops its dependence analysis proved iteration-disjoint
// (see DESIGN.md, "Execution engine").
//
// Cycle accounting is the reference join: every processor's cycle delta
// is measured from the common fork point, the maximum wins, and fork
// overhead is charged per extra processor.
func (c *cpu) parallelRegionFast(df *dfunc, start, end int, maxInstrs int64, hasSync bool) error {
	procs := c.m.Processors
	if procs == 1 {
		// Single processor: the reference copies state in, runs, and
		// adopts everything back, so the join degenerates to forcing
		// pid 0 and synchronizing clock and units to the completion
		// horizon — run directly on c with no copy at all. A sync
		// region still gets its fabric: posts must land somewhere, and
		// a wait that nothing could satisfy must deadlock (procs == 1
		// trips the all-blocked detection immediately).
		baseCycles, baseStall := c.cycles, c.syncStall
		savedSync, savedFrame := c.sync, c.inRegionFrame
		if hasSync {
			c.sync = newSyncState(1)
			c.inRegionFrame = true
		}
		c.pid = 0
		if err := c.runFast(df, start, end, maxInstrs); err != nil {
			return err
		}
		c.sync, c.inRegionFrame = savedSync, savedFrame
		stall := c.syncStall - baseStall
		c.m.recordProcStat(0, c.cycles-baseCycles-stall, stall, 0)
		c.pid = 0
		c.clock = c.cycles
		c.intUnit, c.fltUnit, c.memUnit = c.cycles, c.cycles, c.cycles
		return nil
	}
	// Pids 1.. fork copies of the full cpu (registers, VRF, scoreboard)
	// from the Machine's reusable scratch block; pid 0 runs directly on
	// c and is adopted in place, so a P-processor region costs P-1
	// struct copies and no allocation. Every processor writes output to
	// its own builder and the join concatenates them in pid order,
	// byte-identical to the reference's serialized pid-order run.
	scr := c.m.claimScratch()
	defer c.m.releaseScratch(scr)
	baseCycles, baseFlops, baseIcount, baseStall := c.cycles, c.flops, c.icount, c.syncStall
	baseMaskOps, baseMaskActive, baseMaskTotal := c.maskOps, c.maskActive, c.maskTotal
	parentOut := c.out
	savedSync, savedFrame := c.sync, c.inRegionFrame
	var ss *syncState
	if hasSync {
		ss = newSyncState(procs)
	}
	// Sync regions must fan out for real even on a single-core host:
	// their processors block on each other mid-region, which the
	// serialized fallback cannot express (goroutines still interleave
	// at the blocking points under GOMAXPROCS=1).
	concurrent := engineHostParallelism > 1 || hasSync
	var wg sync.WaitGroup
	var maxDelta, flops, icount int64
	var maskOps, maskActive, maskTotal int64
	var deltas, stallDeltas [MaxProcessors]int64
	var firstSubErr error
	if concurrent {
		for pid := 1; pid < procs; pid++ {
			sub := &scr.subs[pid-1]
			*sub = *c
			sub.pid = int64(pid)
			sub.sync = ss
			sub.inRegionFrame = hasSync
			scr.outs[pid].Reset()
			sub.out = &scr.outs[pid]
			// The struct copy shares the args backing array; clone it
			// so concurrent appends cannot race (values seen are
			// identical to the reference's serialized run).
			sub.args = append([]argval(nil), c.args...)
			scr.errs[pid] = nil
			wg.Add(1)
			go func(sub *cpu, err *error) {
				defer wg.Done()
				*err = sub.runFast(df, start, end, maxInstrs)
				if ss != nil {
					ss.finish()
				}
			}(sub, &scr.errs[pid])
		}
	} else {
		// Single host core: goroutines cannot overlap, so fan-out is
		// pure overhead — run the extra processors serialized instead,
		// one reused scratch context. The join math is
		// order-independent and a region's memory writes are
		// iteration-disjoint by construction, so executing pids 1..
		// before pid 0 changes nothing observable.
		sub := &scr.subs[0]
		for pid := 1; pid < procs; pid++ {
			*sub = *c
			sub.pid = int64(pid)
			scr.outs[pid].Reset()
			sub.out = &scr.outs[pid]
			if err := sub.runFast(df, start, end, maxInstrs); err != nil {
				if firstSubErr == nil {
					firstSubErr = err
				}
				continue
			}
			deltas[pid] = sub.cycles - baseCycles
			if d := deltas[pid]; d > maxDelta {
				maxDelta = d
			}
			flops += sub.flops - baseFlops
			icount += sub.icount - baseIcount
			maskOps += sub.maskOps - baseMaskOps
			maskActive += sub.maskActive - baseMaskActive
			maskTotal += sub.maskTotal - baseMaskTotal
		}
	}
	// Pid 0 executes on c itself — its state is the one the join adopts
	// anyway — with output buffered so the pid-order concatenation
	// below stays byte-identical to the reference.
	scr.outs[0].Reset()
	c.pid = 0
	c.out = &scr.outs[0]
	c.sync = ss
	c.inRegionFrame = hasSync
	err0 := c.runFast(df, start, end, maxInstrs)
	if ss != nil {
		ss.finish()
	}
	c.out = parentOut
	if concurrent {
		wg.Wait()
		for pid := 1; pid < procs; pid++ {
			if e := scr.errs[pid]; e != nil {
				if firstSubErr == nil {
					firstSubErr = e
				}
				continue
			}
			sub := &scr.subs[pid-1]
			deltas[pid] = sub.cycles - baseCycles
			stallDeltas[pid] = sub.syncStall - baseStall
			if d := deltas[pid]; d > maxDelta {
				maxDelta = d
			}
			flops += sub.flops - baseFlops
			icount += sub.icount - baseIcount
			maskOps += sub.maskOps - baseMaskOps
			maskActive += sub.maskActive - baseMaskActive
			maskTotal += sub.maskTotal - baseMaskTotal
		}
	}
	c.sync, c.inRegionFrame = savedSync, savedFrame
	// Pid 0's error wins, then the lowest erroring pid — the order the
	// reference, which runs pids serially from 0, reports them in.
	if err0 != nil {
		return err0
	}
	if firstSubErr != nil {
		return firstSubErr
	}
	for pid := 0; pid < procs; pid++ {
		parentOut.WriteString(scr.outs[pid].String())
	}
	c.pid = 0
	deltas[0] = c.cycles - baseCycles
	stallDeltas[0] = c.syncStall - baseStall
	if d0 := deltas[0]; d0 > maxDelta {
		maxDelta = d0
	}
	for pid := 0; pid < procs; pid++ {
		c.m.recordProcStat(pid, deltas[pid]-stallDeltas[pid], stallDeltas[pid], maxDelta-deltas[pid])
	}
	c.flops += flops
	c.icount += icount
	c.maskOps += maskOps
	c.maskActive += maskActive
	c.maskTotal += maskTotal
	c.cycles = baseCycles + maxDelta + forkOverhead*int64(procs-1)
	c.clock = c.cycles
	c.intUnit, c.fltUnit, c.memUnit = c.cycles, c.cycles, c.cycles
	return nil
}

// hostLE reports whether the host is little-endian, gating the slab
// reinterpretation fast paths (the simulated machine is little-endian).
var hostLE = func() bool {
	var x uint32 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// engineHostParallelism gates the goroutine fan-out for parallel
// regions. On a single-core host goroutines cannot overlap and fork
// cost is pure loss, so regions run serialized instead (same join math,
// bit-identical Result either way). Tests override this to force the
// concurrent path.
var engineHostParallelism = runtime.GOMAXPROCS(0)

// elemWidth returns the byte width of a vector element kind, or 0 if the
// kind is invalid.
func elemWidth(kind int64) int64 {
	switch kind {
	case ElemF32, ElemI32:
		return 4
	case ElemF64:
		return 8
	}
	return 0
}

// vecRangeOK reports whether every element address base+k·stride,
// k ∈ [0, vl), lies in [0, memLen-width]. It is conservative: for
// magnitudes where the arithmetic could overflow it reports false and
// the caller takes the per-element reference path, which reproduces the
// reference's exact fault behavior.
func vecRangeOK(base, stride, vl, width, memLen int64) bool {
	const lim = int64(1) << 40
	if base < -lim || base > lim || stride < -lim || stride > lim {
		return false
	}
	lo, hi := base, base+(vl-1)*stride
	if stride < 0 {
		lo, hi = hi, lo
	}
	return lo >= 0 && hi+width <= memLen
}

// vldFast is the engine's OpVld: one element-kind switch and one bounds
// check per instruction instead of per element, a contiguous float64
// fast path that reinterprets the slab, and a strided fallback with the
// switch hoisted. Out-of-range or overflow-prone operands fall back to
// the reference per-element walk so faults are identical.
func (c *cpu) vldFast(d *dinstr, fn string, pc int) error {
	vl := c.vl
	if vl == 0 {
		return nil
	}
	width := elemWidth(d.imm)
	if width == 0 {
		return fmt.Errorf("titan: bad vector element kind %d", d.imm)
	}
	base := c.r[d.rs1]
	stride := c.r[d.rs2]
	slot := int(d.rd)
	if int64(slot)+vl > VRFWords || !vecRangeOK(base, stride, vl, width, int64(len(c.m.mem))) {
		return c.vecLoad(Instr{Op: OpVld, Rd: slot, Rs1: int(d.rs1), Rs2: int(d.rs2), Imm: d.imm}, fn, pc)
	}
	dst := c.vrf[slot : slot+int(vl)]
	mem := c.m.mem
	switch d.imm {
	case ElemF64:
		if stride == 8 && hostLE && base%8 == 0 {
			copy(dst, unsafe.Slice((*float64)(unsafe.Pointer(&mem[base])), vl))
			return nil
		}
		for k := range dst {
			dst[k] = math.Float64frombits(binary.LittleEndian.Uint64(mem[base:]))
			base += stride
		}
	case ElemF32:
		if stride == 4 && hostLE && base%4 == 0 {
			src := unsafe.Slice((*float32)(unsafe.Pointer(&mem[base])), vl)
			for k := range dst {
				dst[k] = float64(src[k])
			}
			return nil
		}
		for k := range dst {
			dst[k] = float64(math.Float32frombits(binary.LittleEndian.Uint32(mem[base:])))
			base += stride
		}
	case ElemI32:
		for k := range dst {
			dst[k] = float64(int32(binary.LittleEndian.Uint32(mem[base:])))
			base += stride
		}
	}
	return nil
}

// vstFast is the engine's OpVst, mirroring vldFast.
func (c *cpu) vstFast(d *dinstr, fn string, pc int) error {
	vl := c.vl
	if vl == 0 {
		return nil
	}
	width := elemWidth(d.imm)
	if width == 0 {
		return fmt.Errorf("titan: bad vector element kind %d", d.imm)
	}
	base := c.r[d.rs1]
	stride := c.r[d.rs2]
	slot := int(d.rd)
	if int64(slot)+vl > VRFWords || !vecRangeOK(base, stride, vl, width, int64(len(c.m.mem))) {
		return c.vecStore(Instr{Op: OpVst, Rd: slot, Rs1: int(d.rs1), Rs2: int(d.rs2), Imm: d.imm}, fn, pc)
	}
	src := c.vrf[slot : slot+int(vl)]
	mem := c.m.mem
	switch d.imm {
	case ElemF64:
		if stride == 8 && hostLE && base%8 == 0 {
			copy(unsafe.Slice((*float64)(unsafe.Pointer(&mem[base])), vl), src)
			return nil
		}
		for k := range src {
			binary.LittleEndian.PutUint64(mem[base:], math.Float64bits(src[k]))
			base += stride
		}
	case ElemF32:
		if stride == 4 && hostLE && base%4 == 0 {
			dst := unsafe.Slice((*float32)(unsafe.Pointer(&mem[base])), vl)
			for k := range src {
				dst[k] = float32(src[k])
			}
			return nil
		}
		for k := range src {
			binary.LittleEndian.PutUint32(mem[base:], math.Float32bits(float32(src[k])))
			base += stride
		}
	case ElemI32:
		for k := range src {
			binary.LittleEndian.PutUint32(mem[base:], uint32(int32(src[k])))
			base += stride
		}
	}
	return nil
}

// vbinFast is the engine's vector-vector arithmetic: per-op forward
// loops over register-file slices (forward order preserves the
// reference's semantics when slots overlap), with a vslot fallback when
// a window wraps the file.
func (c *cpu) vbinFast(d *dinstr) {
	vl := int(c.vl)
	rd, r1, r2 := int(d.rd), int(d.rs1), int(d.rs2)
	if rd+vl > VRFWords || r1+vl > VRFWords || r2+vl > VRFWords {
		for k := 0; k < vl; k++ {
			a, b := c.vrf[vslot(r1+k)], c.vrf[vslot(r2+k)]
			switch d.op {
			case OpVadd:
				c.vrf[vslot(rd+k)] = a + b
			case OpVsub:
				c.vrf[vslot(rd+k)] = a - b
			case OpVmul:
				c.vrf[vslot(rd+k)] = a * b
			case OpVdiv:
				c.vrf[vslot(rd+k)] = a / b
			}
		}
		return
	}
	dst := c.vrf[rd : rd+vl]
	a := c.vrf[r1 : r1+vl]
	b := c.vrf[r2 : r2+vl]
	switch d.op {
	case OpVadd:
		for k := range dst {
			dst[k] = a[k] + b[k]
		}
	case OpVsub:
		for k := range dst {
			dst[k] = a[k] - b[k]
		}
	case OpVmul:
		for k := range dst {
			dst[k] = a[k] * b[k]
		}
	case OpVdiv:
		for k := range dst {
			dst[k] = a[k] / b[k]
		}
	}
}

// vscalarFast is the engine's vector-scalar arithmetic.
func (c *cpu) vscalarFast(d *dinstr) {
	vl := int(c.vl)
	rd, r1 := int(d.rd), int(d.rs1)
	s := c.f[d.rs2]
	if rd+vl > VRFWords || r1+vl > VRFWords {
		for k := 0; k < vl; k++ {
			a := c.vrf[vslot(r1+k)]
			switch d.op {
			case OpVadds:
				c.vrf[vslot(rd+k)] = a + s
			case OpVsubs:
				c.vrf[vslot(rd+k)] = a - s
			case OpVsubsr:
				c.vrf[vslot(rd+k)] = s - a
			case OpVmuls:
				c.vrf[vslot(rd+k)] = a * s
			case OpVdivs:
				c.vrf[vslot(rd+k)] = a / s
			case OpVdivsr:
				c.vrf[vslot(rd+k)] = s / a
			}
		}
		return
	}
	dst := c.vrf[rd : rd+vl]
	a := c.vrf[r1 : r1+vl]
	switch d.op {
	case OpVadds:
		for k := range dst {
			dst[k] = a[k] + s
		}
	case OpVsubs:
		for k := range dst {
			dst[k] = a[k] - s
		}
	case OpVsubsr:
		for k := range dst {
			dst[k] = s - a[k]
		}
	case OpVmuls:
		for k := range dst {
			dst[k] = a[k] * s
		}
	case OpVdivs:
		for k := range dst {
			dst[k] = a[k] / s
		}
	case OpVdivsr:
		for k := range dst {
			dst[k] = s / a[k]
		}
	}
}

func (c *cpu) vmovFast(d *dinstr) {
	vl := int(c.vl)
	rd, r1 := int(d.rd), int(d.rs1)
	if rd+vl > VRFWords || r1+vl > VRFWords {
		for k := 0; k < vl; k++ {
			c.vrf[vslot(rd+k)] = c.vrf[vslot(r1+k)]
		}
		return
	}
	// Forward element order, not copy(): overlapping windows must behave
	// like the reference's element loop.
	dst := c.vrf[rd : rd+vl]
	src := c.vrf[r1 : r1+vl]
	for k := range dst {
		dst[k] = src[k]
	}
}

func (c *cpu) vbcastFast(d *dinstr) {
	vl := int(c.vl)
	rd := int(d.rd)
	v := c.f[d.rs1]
	if rd+vl > VRFWords {
		for k := 0; k < vl; k++ {
			c.vrf[vslot(rd+k)] = v
		}
		return
	}
	dst := c.vrf[rd : rd+vl]
	for k := range dst {
		dst[k] = v
	}
}

// vcmpVVFast computes a vector-vector compare mask over register-file
// slices, falling back to the reference walk when a window wraps the
// file. d.rd is the pre-wrapped destination mask slot.
func (c *cpu) vcmpVVFast(d *dinstr, f func(a, b float64) bool) {
	vl := int(c.vl)
	r1, r2 := int(d.rs1), int(d.rs2)
	if r1+vl > VRFWords || r2+vl > VRFWords {
		c.vecCmpVV(Instr{Rd: int(d.rd), Rs1: r1, Rs2: r2}, f)
		return
	}
	var out [maskWords]uint64
	a := c.vrf[r1 : r1+vl]
	b := c.vrf[r2 : r2+vl]
	for k := range a {
		if f(a[k], b[k]) {
			out[k>>6] |= 1 << uint(k&63)
		}
	}
	c.mk[d.rd] = out
}

// vcmpVSFast is vcmpVVFast's scalar-broadcast form.
func (c *cpu) vcmpVSFast(d *dinstr, f func(a, s float64) bool) {
	vl := int(c.vl)
	r1 := int(d.rs1)
	if r1+vl > VRFWords {
		c.vecCmpVS(Instr{Rd: int(d.rd), Rs1: r1, Rs2: int(d.rs2)}, f)
		return
	}
	var out [maskWords]uint64
	s := c.f[d.rs2]
	a := c.vrf[r1 : r1+vl]
	for k := range a {
		if f(a[k], s) {
			out[k>>6] |= 1 << uint(k&63)
		}
	}
	c.mk[d.rd] = out
}

// vldmFast is the engine's vld.m: a dense (all-true mask) strip takes
// the vldFast slab kernel after the bounds pre-check proves no lane can
// fault; everything else — partial masks, wrap-around, potential faults
// — runs the reference per-lane walk, so lane suppression and masked
// fault naming are identical by construction.
func (c *cpu) vldmFast(d *dinstr, fn string, pc int) error {
	vl := c.vl
	mr := mslot(int(d.imm >> 8))
	kind := d.imm & 0xff
	width := elemWidth(kind)
	if vl > 0 && width != 0 && int64(d.rd)+vl <= VRFWords &&
		vecRangeOK(c.r[d.rs1], c.r[d.rs2], vl, width, int64(len(c.m.mem))) &&
		c.maskAllTrue(mr) {
		c.countMask(mr)
		dd := *d
		dd.op = OpVld
		dd.imm = kind
		return c.vldFast(&dd, fn, pc)
	}
	return c.vecLoadMasked(Instr{Op: OpVldm, Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2), Imm: d.imm}, fn, pc)
}

// vstmFast is the engine's vst.m, mirroring vldmFast.
func (c *cpu) vstmFast(d *dinstr, fn string, pc int) error {
	vl := c.vl
	mr := mslot(int(d.imm >> 8))
	kind := d.imm & 0xff
	width := elemWidth(kind)
	if vl > 0 && width != 0 && int64(d.rd)+vl <= VRFWords &&
		vecRangeOK(c.r[d.rs1], c.r[d.rs2], vl, width, int64(len(c.m.mem))) &&
		c.maskAllTrue(mr) {
		c.countMask(mr)
		dd := *d
		dd.op = OpVst
		dd.imm = kind
		return c.vstFast(&dd, fn, pc)
	}
	return c.vecStoreMasked(Instr{Op: OpVstm, Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2), Imm: d.imm}, fn, pc)
}

// vbinmFast is the engine's masked vector arithmetic: all-true masks
// take the dense vbinFast kernels (denseOp is the op's dense twin),
// partial masks run the reference per-lane walk.
func (c *cpu) vbinmFast(d *dinstr, denseOp Op, f func(a, b float64) float64) {
	vl := int(c.vl)
	mr := mslot(int(d.imm >> 8))
	if int(d.rd)+vl <= VRFWords && int(d.rs1)+vl <= VRFWords && int(d.rs2)+vl <= VRFWords &&
		c.maskAllTrue(mr) {
		c.countMask(mr)
		dd := *d
		dd.op = denseOp
		c.vbinFast(&dd)
		return
	}
	c.vecBinMasked(Instr{Op: d.op, Rd: int(d.rd), Rs1: int(d.rs1), Rs2: int(d.rs2), Imm: d.imm}, f)
}
