package titan

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// ClockMHz is the nominal clock used to convert simulated cycles to
// simulated seconds for MFLOPS reporting. The Titan's units ran at 16 MHz.
const ClockMHz = 16.0

// Result summarizes a simulation run.
type Result struct {
	Cycles    int64
	FlopCount int64
	Instrs    int64
	ExitCode  int64
	Output    string
}

// MFLOPS returns millions of floating-point operations per simulated
// second.
func (r Result) MFLOPS() float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (ClockMHz * 1e6)
	return float64(r.FlopCount) / seconds / 1e6
}

// MaxProcessors is the Titan's processor-count ceiling: the machine
// shipped with up to four compute boards sharing memory (§2).
const MaxProcessors = 4

// ValidateProcessors rejects processor counts outside 1..MaxProcessors
// with a descriptive error. Entry points (CLIs, the compile service)
// call this so a bad -p fails loudly instead of being silently clamped
// by NewMachine.
func ValidateProcessors(n int) error {
	if n < 1 || n > MaxProcessors {
		return fmt.Errorf("titan: processor count %d out of range (the Titan supports 1..%d processors)", n, MaxProcessors)
	}
	return nil
}

// Machine simulates one Titan.
type Machine struct {
	prog *Program
	mem  []byte
	// Processors sets the processor count for parallel regions (1–4).
	Processors int
	// Trace, when non-nil, receives a line per retired instruction.
	Trace func(string)
	// MaxInstrs guards against runaway programs (0: default bound).
	MaxInstrs int64

	out strings.Builder
}

// NewMachine loads a program.
func NewMachine(prog *Program, processors int) *Machine {
	if processors < 1 {
		processors = 1
	}
	if processors > MaxProcessors {
		processors = MaxProcessors
	}
	size := prog.MemSize
	if size < prog.DataBase+int64(len(prog.Data))+1<<16 {
		size = prog.DataBase + int64(len(prog.Data)) + 1<<16
	}
	m := &Machine{prog: prog, mem: make([]byte, size), Processors: processors}
	copy(m.mem[prog.DataBase:], prog.Data)
	return m
}

// cpu is one processor context.
type cpu struct {
	m    *Machine
	r    [NumIntRegs]int64
	f    [NumFltRegs]float64
	vrf  [VRFWords]float64
	vl   int64
	pid  int64
	args []argval

	// Scoreboard state.
	clock    int64 // dispatch clock
	intReady [NumIntRegs]int64
	fltReady [NumFltRegs]int64
	vecReady map[int]int64 // per-slot base
	intUnit  int64         // next cycle the unit can accept work
	fltUnit  int64
	memUnit  int64

	cycles int64 // completion horizon
	flops  int64
	icount int64
}

type argval struct {
	i     int64
	f     float64
	isFlt bool
}

// Run executes main (or the named entry) to completion.
func (m *Machine) Run(entry string) (Result, error) {
	f, ok := m.prog.Funcs[entry]
	if !ok {
		return Result{}, fmt.Errorf("titan: no function %q", entry)
	}
	c := &cpu{m: m, vecReady: map[int]int64{}}
	c.r[RegSP] = int64(len(m.mem)) - 8
	max := m.MaxInstrs
	if max == 0 {
		max = 2_000_000_000
	}
	if err := c.exec(f, 0, -1, max); err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:    c.cycles,
		FlopCount: c.flops,
		Instrs:    c.icount,
		ExitCode:  c.r[RegRetInt],
		Output:    m.out.String(),
	}, nil
}

// dispatch charges the scoreboard for one instruction and returns the
// cycle at which its result is ready.
func (c *cpu) dispatch(in Instr) int64 {
	// Operand availability.
	ready := c.clock
	maxr := func(t int64) {
		if t > ready {
			ready = t
		}
	}
	switch in.Op {
	case OpMov, OpNeg, OpNot, OpBnot, OpAddi, OpMuli, OpBeqz, OpBnez, OpArg,
		OpVsetl, OpCvtIF, OpPid, OpNproc:
		maxr(c.intReady[in.Rs1])
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe:
		maxr(c.intReady[in.Rs1])
		maxr(c.intReady[in.Rs2])
	case OpLd1, OpLd2, OpLd4, OpFld4, OpFld8:
		maxr(c.intReady[in.Rs1])
	case OpSt1, OpSt2, OpSt4:
		// Stores drain through a store buffer: dispatch waits only for
		// the address; the data follows when ready.
		maxr(c.intReady[in.Rs1])
	case OpFst4, OpFst8:
		maxr(c.intReady[in.Rs1])
	case OpFmov, OpFneg, OpCvtFI, OpFarg, OpVbcast:
		maxr(c.fltReady[in.Rs1])
	case OpFadd, OpFsub, OpFmul, OpFdiv,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		maxr(c.fltReady[in.Rs1])
		maxr(c.fltReady[in.Rs2])
	case OpVld, OpVst:
		// Vector stores drain through the store buffer like scalar
		// stores: dispatch needs only the address and stride.
		maxr(c.intReady[in.Rs1])
		maxr(c.intReady[in.Rs2])
	case OpVadd, OpVsub, OpVmul, OpVdiv, OpVmov:
		maxr(c.vecReady[in.Rs1])
		maxr(c.vecReady[in.Rs2])
	case OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr:
		maxr(c.vecReady[in.Rs1])
		maxr(c.fltReady[in.Rs2])
	}

	// Unit, latency, occupancy.
	var unit *int64
	var lat, occ int64
	vl := c.vl
	if vl <= 0 {
		vl = 1
	}
	switch in.Op {
	case OpMul, OpMuli:
		unit, lat, occ = &c.intUnit, 4, 1
	case OpDiv, OpRem:
		unit, lat, occ = &c.intUnit, 12, 8
	case OpLd1, OpLd2, OpLd4, OpFld4, OpFld8:
		unit, lat, occ = &c.memUnit, 6, 1
	case OpSt1, OpSt2, OpSt4, OpFst4, OpFst8:
		unit, lat, occ = &c.memUnit, 1, 1
	case OpFadd, OpFsub, OpFmul, OpFneg,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe,
		OpCvtIF, OpCvtFI, OpFmov, OpFldi:
		unit, lat, occ = &c.fltUnit, 6, 1
	case OpFdiv:
		unit, lat, occ = &c.fltUnit, 18, 12
	case OpVld, OpVst:
		// The per-processor memory path is highly pipelined (§2): one
		// element per cycle after a short setup.
		unit, lat, occ = &c.memUnit, 6+vl, 2+vl
	case OpVadd, OpVsub, OpVmul, OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVmov, OpVbcast:
		unit, lat, occ = &c.fltUnit, 8+vl, 4+vl
	case OpVdiv, OpVdivs, OpVdivsr:
		unit, lat, occ = &c.fltUnit, 12+2*vl, 8+2*vl
	case OpJmp, OpBeqz, OpBnez:
		unit, lat, occ = &c.intUnit, 2, 1
	case OpCall:
		unit, lat, occ = &c.intUnit, 10, 10
	case OpRet:
		unit, lat, occ = &c.intUnit, 8, 8
	default:
		unit, lat, occ = &c.intUnit, 1, 1
	}

	issue := ready
	if *unit > issue {
		issue = *unit
	}
	*unit = issue + occ
	done := issue + lat
	// In-order dispatch: the next instruction cannot dispatch before this
	// one did.
	c.clock = issue + 1
	if done > c.cycles {
		c.cycles = done
	}

	// Record result readiness.
	switch in.Op {
	case OpLdi, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpAddi, OpMuli, OpNeg, OpNot, OpBnot,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpLd1, OpLd2, OpLd4, OpCvtFI, OpPid, OpNproc,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		c.intReady[in.Rd] = done
	case OpFldi, OpFmov, OpFadd, OpFsub, OpFmul, OpFdiv, OpFneg, OpCvtIF,
		OpFld4, OpFld8:
		c.fltReady[in.Rd] = done
	case OpVld, OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr, OpVmov, OpVbcast:
		c.vecReady[in.Rd] = done
	}

	// FLOP accounting.
	switch in.Op {
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		c.flops++
	case OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr:
		c.flops += vl
	}
	return done
}

// exec runs instructions of f starting at pc until RET/HALT (stop == -1)
// or until reaching instruction index stop (used by parallel regions).
func (c *cpu) exec(f *Func, pc int, stop int, maxInstrs int64) error {
	for pc < len(f.Instrs) {
		if pc == stop {
			return nil
		}
		if c.icount >= maxInstrs {
			return fmt.Errorf("titan: instruction budget exhausted in %s (possible infinite loop)", f.Name)
		}
		in := f.Instrs[pc]
		c.icount++
		c.dispatch(in)
		if c.m.Trace != nil {
			c.m.Trace(fmt.Sprintf("%s+%d: %s", f.Name, pc, in))
		}
		switch in.Op {
		case OpNop:
		case OpLdi:
			c.r[in.Rd] = in.Imm
		case OpMov:
			c.r[in.Rd] = c.r[in.Rs1]
		case OpAdd:
			c.r[in.Rd] = c.r[in.Rs1] + c.r[in.Rs2]
		case OpSub:
			c.r[in.Rd] = c.r[in.Rs1] - c.r[in.Rs2]
		case OpMul:
			c.r[in.Rd] = c.r[in.Rs1] * c.r[in.Rs2]
		case OpDiv:
			if c.r[in.Rs2] == 0 {
				return fmt.Errorf("titan: integer division by zero in %s", f.Name)
			}
			c.r[in.Rd] = c.r[in.Rs1] / c.r[in.Rs2]
		case OpRem:
			if c.r[in.Rs2] == 0 {
				return fmt.Errorf("titan: integer remainder by zero in %s", f.Name)
			}
			c.r[in.Rd] = c.r[in.Rs1] % c.r[in.Rs2]
		case OpAnd:
			c.r[in.Rd] = c.r[in.Rs1] & c.r[in.Rs2]
		case OpOr:
			c.r[in.Rd] = c.r[in.Rs1] | c.r[in.Rs2]
		case OpXor:
			c.r[in.Rd] = c.r[in.Rs1] ^ c.r[in.Rs2]
		case OpShl:
			c.r[in.Rd] = c.r[in.Rs1] << uint(c.r[in.Rs2]&63)
		case OpShr:
			c.r[in.Rd] = c.r[in.Rs1] >> uint(c.r[in.Rs2]&63)
		case OpAddi:
			c.r[in.Rd] = c.r[in.Rs1] + in.Imm
		case OpMuli:
			c.r[in.Rd] = c.r[in.Rs1] * in.Imm
		case OpNeg:
			c.r[in.Rd] = -c.r[in.Rs1]
		case OpNot:
			c.r[in.Rd] = b2i(c.r[in.Rs1] == 0)
		case OpBnot:
			c.r[in.Rd] = ^c.r[in.Rs1]
		case OpCmpEq:
			c.r[in.Rd] = b2i(c.r[in.Rs1] == c.r[in.Rs2])
		case OpCmpNe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] != c.r[in.Rs2])
		case OpCmpLt:
			c.r[in.Rd] = b2i(c.r[in.Rs1] < c.r[in.Rs2])
		case OpCmpLe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] <= c.r[in.Rs2])
		case OpCmpGt:
			c.r[in.Rd] = b2i(c.r[in.Rs1] > c.r[in.Rs2])
		case OpCmpGe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] >= c.r[in.Rs2])
		case OpPid:
			c.r[in.Rd] = c.pid
		case OpNproc:
			c.r[in.Rd] = int64(c.m.Processors)

		case OpLd1:
			a, err := c.addr(in, 1)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int8(c.m.mem[a]))
		case OpLd2:
			a, err := c.addr(in, 2)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int16(binary.LittleEndian.Uint16(c.m.mem[a:])))
		case OpLd4:
			a, err := c.addr(in, 4)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int32(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case OpSt1:
			a, err := c.addr(in, 1)
			if err != nil {
				return err
			}
			c.m.mem[a] = byte(c.r[in.Rs2])
		case OpSt2:
			a, err := c.addr(in, 2)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint16(c.m.mem[a:], uint16(c.r[in.Rs2]))
		case OpSt4:
			a, err := c.addr(in, 4)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], uint32(c.r[in.Rs2]))
		case OpFld4:
			a, err := c.addr(in, 4)
			if err != nil {
				return err
			}
			c.f[in.Rd] = float64(math.Float32frombits(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case OpFld8:
			a, err := c.addr(in, 8)
			if err != nil {
				return err
			}
			c.f[in.Rd] = math.Float64frombits(binary.LittleEndian.Uint64(c.m.mem[a:]))
		case OpFst4:
			a, err := c.addr(in, 4)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], math.Float32bits(float32(c.f[in.Rs2])))
		case OpFst8:
			a, err := c.addr(in, 8)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(c.m.mem[a:], math.Float64bits(c.f[in.Rs2]))

		case OpFldi:
			c.f[in.Rd] = in.FImm
		case OpFmov:
			c.f[in.Rd] = c.f[in.Rs1]
		case OpFadd:
			c.f[in.Rd] = c.f[in.Rs1] + c.f[in.Rs2]
		case OpFsub:
			c.f[in.Rd] = c.f[in.Rs1] - c.f[in.Rs2]
		case OpFmul:
			c.f[in.Rd] = c.f[in.Rs1] * c.f[in.Rs2]
		case OpFdiv:
			c.f[in.Rd] = c.f[in.Rs1] / c.f[in.Rs2]
		case OpFneg:
			c.f[in.Rd] = -c.f[in.Rs1]
		case OpFcmpEq:
			c.r[in.Rd] = b2i(c.f[in.Rs1] == c.f[in.Rs2])
		case OpFcmpNe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] != c.f[in.Rs2])
		case OpFcmpLt:
			c.r[in.Rd] = b2i(c.f[in.Rs1] < c.f[in.Rs2])
		case OpFcmpLe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] <= c.f[in.Rs2])
		case OpFcmpGt:
			c.r[in.Rd] = b2i(c.f[in.Rs1] > c.f[in.Rs2])
		case OpFcmpGe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] >= c.f[in.Rs2])
		case OpCvtIF:
			c.f[in.Rd] = float64(c.r[in.Rs1])
		case OpCvtFI:
			c.r[in.Rd] = int64(c.f[in.Rs1])

		case OpVsetl:
			vl := c.r[in.Rs1]
			if vl < 0 {
				vl = 0
			}
			if vl > MaxVL {
				vl = MaxVL
			}
			c.vl = vl
		case OpVld:
			if err := c.vecLoad(in); err != nil {
				return err
			}
		case OpVst:
			if err := c.vecStore(in); err != nil {
				return err
			}
		case OpVadd:
			c.vecBin(in, func(a, b float64) float64 { return a + b })
		case OpVsub:
			c.vecBin(in, func(a, b float64) float64 { return a - b })
		case OpVmul:
			c.vecBin(in, func(a, b float64) float64 { return a * b })
		case OpVdiv:
			c.vecBin(in, func(a, b float64) float64 { return a / b })
		case OpVadds:
			c.vecScalar(in, func(a, s float64) float64 { return a + s })
		case OpVsubs:
			c.vecScalar(in, func(a, s float64) float64 { return a - s })
		case OpVsubsr:
			c.vecScalar(in, func(a, s float64) float64 { return s - a })
		case OpVmuls:
			c.vecScalar(in, func(a, s float64) float64 { return a * s })
		case OpVdivs:
			c.vecScalar(in, func(a, s float64) float64 { return a / s })
		case OpVdivsr:
			c.vecScalar(in, func(a, s float64) float64 { return s / a })
		case OpVmov:
			for k := int64(0); k < c.vl; k++ {
				c.vrf[(int64(in.Rd)+k)%VRFWords] = c.vrf[(int64(in.Rs1)+k)%VRFWords]
			}
		case OpVbcast:
			for k := int64(0); k < c.vl; k++ {
				c.vrf[(int64(in.Rd)+k)%VRFWords] = c.f[in.Rs1]
			}

		case OpJmp:
			t, ok := f.Labels[in.Sym]
			if !ok {
				return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
			}
			pc = t
			continue
		case OpBeqz:
			if c.r[in.Rs1] == 0 {
				t, ok := f.Labels[in.Sym]
				if !ok {
					return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
				}
				pc = t
				continue
			}
		case OpBnez:
			if c.r[in.Rs1] != 0 {
				t, ok := f.Labels[in.Sym]
				if !ok {
					return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
				}
				pc = t
				continue
			}
		case OpArg:
			c.args = append(c.args, argval{i: c.r[in.Rs1]})
		case OpFarg:
			c.args = append(c.args, argval{f: c.f[in.Rs1], isFlt: true})
		case OpCall:
			if err := c.call(in.Sym, maxInstrs); err != nil {
				return err
			}
		case OpRet, OpHalt:
			return nil

		case OpParBegin:
			end := c.findParEnd(f, pc)
			if end < 0 {
				return fmt.Errorf("titan: unmatched par.begin in %s", f.Name)
			}
			if err := c.parallelRegion(f, pc+1, end, maxInstrs); err != nil {
				return err
			}
			pc = end + 1
			continue
		case OpParEnd:
			// Reached only inside parallelRegion via stop; at top level it
			// is a stray marker.
			return fmt.Errorf("titan: stray par.end in %s", f.Name)

		default:
			return fmt.Errorf("titan: unimplemented op %v", in.Op)
		}
		pc++
	}
	return nil
}

func (c *cpu) addr(in Instr, size int64) (int64, error) {
	a := c.r[in.Rs1] + in.Imm
	if a < 0 || a+size > int64(len(c.m.mem)) {
		return 0, fmt.Errorf("titan: memory fault at address %d (size %d)", a, size)
	}
	return a, nil
}

func (c *cpu) vecLoad(in Instr) error {
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		a := base + k*stride
		switch in.Imm {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector load fault at %d", a)
			}
			c.vrf[(int64(in.Rd)+k)%VRFWords] = float64(math.Float32frombits(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector load fault at %d", a)
			}
			c.vrf[(int64(in.Rd)+k)%VRFWords] = math.Float64frombits(binary.LittleEndian.Uint64(c.m.mem[a:]))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector load fault at %d", a)
			}
			c.vrf[(int64(in.Rd)+k)%VRFWords] = float64(int32(binary.LittleEndian.Uint32(c.m.mem[a:])))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", in.Imm)
		}
	}
	return nil
}

func (c *cpu) vecStore(in Instr) error {
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		a := base + k*stride
		v := c.vrf[(int64(in.Rd)+k)%VRFWords]
		switch in.Imm {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector store fault at %d", a)
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], math.Float32bits(float32(v)))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector store fault at %d", a)
			}
			binary.LittleEndian.PutUint64(c.m.mem[a:], math.Float64bits(v))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return fmt.Errorf("titan: vector store fault at %d", a)
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], uint32(int32(v)))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", in.Imm)
		}
	}
	return nil
}

func (c *cpu) vecBin(in Instr, f func(a, b float64) float64) {
	for k := int64(0); k < c.vl; k++ {
		c.vrf[(int64(in.Rd)+k)%VRFWords] = f(
			c.vrf[(int64(in.Rs1)+k)%VRFWords],
			c.vrf[(int64(in.Rs2)+k)%VRFWords])
	}
}

func (c *cpu) vecScalar(in Instr, f func(a, s float64) float64) {
	s := c.f[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		c.vrf[(int64(in.Rd)+k)%VRFWords] = f(c.vrf[(int64(in.Rs1)+k)%VRFWords], s)
	}
}

// call implements register-windowed calls plus runtime intrinsics.
func (c *cpu) call(name string, maxInstrs int64) error {
	if c.intrinsic(name) {
		c.args = nil
		return nil
	}
	callee, ok := c.m.prog.Funcs[name]
	if !ok {
		return fmt.Errorf("titan: call to undefined function %q", name)
	}
	// Register window: snapshot, run, restore all but results.
	savedR := c.r
	savedF := c.f
	savedArgs := c.args
	c.args = nil
	if err := c.exec(callee, 0, -1, maxInstrs); err != nil {
		return err
	}
	retI := c.r[RegRetInt]
	retF := c.f[RegRetFlt]
	c.r = savedR
	c.f = savedF
	c.r[RegRetInt] = retI
	c.f[RegRetFlt] = retF
	_ = savedArgs
	return nil
}

// parallelRegion runs [start, end) once per processor, charging the
// maximum chunk time plus fork/join overhead.
func (c *cpu) parallelRegion(f *Func, start, end int, maxInstrs int64) error {
	const forkOverhead = 20 // cycles per processor spawn via shared memory
	base := *c
	var maxDelta int64
	var flops, icount int64
	var finalState *cpu
	for pid := 0; pid < c.m.Processors; pid++ {
		sub := base
		sub.pid = int64(pid)
		sub.vecReady = cloneReady(base.vecReady)
		start0 := sub.cycles
		if err := sub.exec(f, start, end, maxInstrs); err != nil {
			return err
		}
		delta := sub.cycles - start0
		if delta > maxDelta {
			maxDelta = delta
		}
		flops += sub.flops - base.flops
		icount += sub.icount - base.icount
		if pid == 0 {
			s := sub
			finalState = &s
		}
	}
	// Adopt processor 0's register state (scalar results inside parallel
	// regions are chunk-local by construction), with pooled costs.
	*c = *finalState
	c.pid = 0
	c.flops = base.flops + flops
	c.icount = base.icount + icount
	c.cycles = base.cycles + maxDelta + forkOverhead*int64(c.m.Processors-1)
	c.clock = c.cycles
	c.intUnit, c.fltUnit, c.memUnit = c.cycles, c.cycles, c.cycles
	return nil
}

func cloneReady(m map[int]int64) map[int]int64 {
	out := make(map[int]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (c *cpu) findParEnd(f *Func, pc int) int {
	depth := 0
	for i := pc + 1; i < len(f.Instrs); i++ {
		switch f.Instrs[i].Op {
		case OpParBegin:
			depth++
		case OpParEnd:
			if depth == 0 {
				return i
			}
			depth--
		}
	}
	return -1
}

// intrinsic implements the tiny runtime: printf (with %d/%g/%f/%s/%c and
// %%), putchar, puts, and exit-less abort stubs used by examples.
func (c *cpu) intrinsic(name string) bool {
	switch name {
	case "printf":
		c.doPrintf()
		return true
	case "putchar":
		if len(c.args) > 0 {
			c.m.out.WriteByte(byte(c.args[0].i))
		}
		c.r[RegRetInt] = 0
		return true
	case "puts":
		if len(c.args) > 0 {
			c.m.out.WriteString(c.cstring(c.args[0].i))
			c.m.out.WriteByte('\n')
		}
		c.r[RegRetInt] = 0
		return true
	}
	return false
}

func (c *cpu) cstring(addr int64) string {
	var sb strings.Builder
	for addr >= 0 && addr < int64(len(c.m.mem)) && c.m.mem[addr] != 0 {
		sb.WriteByte(c.m.mem[addr])
		addr++
	}
	return sb.String()
}

func (c *cpu) doPrintf() {
	if len(c.args) == 0 {
		return
	}
	format := c.cstring(c.args[0].i)
	rest := c.args[1:]
	next := func() argval {
		if len(rest) == 0 {
			return argval{}
		}
		v := rest[0]
		rest = rest[1:]
		return v
	}
	i := 0
	for i < len(format) {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			c.m.out.WriteByte(ch)
			i++
			continue
		}
		i++
		// Skip width/precision modifiers.
		spec := "%"
		for i < len(format) && strings.ContainsRune("0123456789.-+l", rune(format[i])) {
			spec += string(format[i])
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		switch verb {
		case 'd', 'i':
			fmt.Fprintf(&c.m.out, strings.ReplaceAll(spec, "l", "")+"d", next().i)
		case 'u':
			fmt.Fprintf(&c.m.out, strings.ReplaceAll(spec, "l", "")+"d", next().i)
		case 'x':
			fmt.Fprintf(&c.m.out, strings.ReplaceAll(spec, "l", "")+"x", next().i)
		case 'c':
			c.m.out.WriteByte(byte(next().i))
		case 'f', 'e', 'g':
			a := next()
			v := a.f
			if !a.isFlt {
				v = float64(a.i)
			}
			fmt.Fprintf(&c.m.out, spec+string(verb), v)
		case 's':
			c.m.out.WriteString(c.cstring(next().i))
		case '%':
			c.m.out.WriteByte('%')
		default:
			c.m.out.WriteByte('%')
			c.m.out.WriteByte(verb)
		}
	}
	c.r[RegRetInt] = int64(len(format))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
