package titan

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// ClockMHz is the nominal clock used to convert simulated cycles to
// simulated seconds for MFLOPS reporting. The Titan's units ran at 16 MHz.
const ClockMHz = 16.0

// Result summarizes a simulation run.
type Result struct {
	Cycles    int64
	FlopCount int64
	Instrs    int64
	ExitCode  int64
	Output    string
	// SyncStalls is the total cycles processors spent blocked in wait
	// instructions across all parallel regions (DOACROSS pipelining).
	SyncStalls int64
	// MaskOps counts retired masked vector operations (vld.m, vst.m,
	// masked arithmetic); MaskLanesActive / MaskLanesTotal break those
	// down by lane so MaskLanesActive/MaskLanesTotal is the run's mask
	// utilization (1.0 = every masked lane did useful work). Masked ops
	// charge full dense-timing cycles regardless of density, so low
	// utilization is the cost signal the autotuner weighs.
	MaskOps         int64
	MaskLanesActive int64
	MaskLanesTotal  int64
	// Procs is the per-processor busy/stall breakdown over parallel
	// regions: entries beyond the machine's processor count stay zero.
	// A fixed-size array keeps Result comparable with == (the
	// differential engine tests rely on that).
	Procs [MaxProcessors]ProcStat
}

// ProcStat is one processor's cycle breakdown over the parallel regions
// of a run: Busy is cycles spent executing, SyncStall is cycles blocked
// in wait instructions, and JoinIdle is cycles idle at region joins
// waiting for the slowest processor.
type ProcStat struct {
	Busy      int64 `json:"busy"`
	SyncStall int64 `json:"sync_stall"`
	JoinIdle  int64 `json:"join_idle"`
}

// MFLOPS returns millions of floating-point operations per simulated
// second.
func (r Result) MFLOPS() float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / (ClockMHz * 1e6)
	return float64(r.FlopCount) / seconds / 1e6
}

// MaxProcessors is the Titan's processor-count ceiling: the machine
// shipped with up to four compute boards sharing memory (§2).
const MaxProcessors = 4

// ValidateProcessors rejects processor counts outside 1..MaxProcessors
// with a descriptive error. Entry points (CLIs, the compile service)
// call this so a bad -p fails loudly instead of being silently clamped
// by NewMachine.
func ValidateProcessors(n int) error {
	if n < 1 || n > MaxProcessors {
		return fmt.Errorf("titan: processor count %d out of range (the Titan supports 1..%d processors)", n, MaxProcessors)
	}
	return nil
}

// Fault is a simulated memory-access error: an out-of-range scalar load
// or store, a strided vector element outside memory, or a C-string read
// (printf/puts format or %s argument) from a bad pointer. It carries the
// faulting address and the function+pc of the instruction that issued
// the access.
type Fault struct {
	Addr int64
	Size int64
	Kind string // "load", "store", "vector load", "vector store", "cstring"
	Func string
	PC   int
}

func (e *Fault) Error() string {
	return fmt.Sprintf("titan: fault at addr=%d (%s, size %d) in %s+%d", e.Addr, e.Kind, e.Size, e.Func, e.PC)
}

// Machine simulates one Titan. A Machine is single-use state for one
// Run at a time: concurrent simulations each take their own Machine
// (NewMachine is cheap; the Program may be shared freely).
type Machine struct {
	prog *Program
	mem  []byte
	// Processors sets the processor count for parallel regions (1–4).
	Processors int
	// Trace, when non-nil, receives a line per retired instruction.
	// Tracing runs on the reference interpreter, whose per-instruction
	// loop carries the hook; Run falls back to it automatically.
	Trace func(string)
	// MaxInstrs guards against runaway programs (0: default bound).
	MaxInstrs int64

	out strings.Builder

	// Scratch block for the fast engine's parallel-region forks
	// (engine.go): allocated with the machine and reused by every
	// region, so a run with many regions pays the ~140 KB
	// per-processor allocation once. scratchBusy arbitrates the rare
	// nested or concurrent claim, which falls back to a fresh block.
	scratch     *regionScratch
	scratchBusy atomic.Bool

	// root is the fast engine's top-level cpu, carved out of the
	// Machine allocation so Run allocates nothing. A second Run on the
	// same machine (the slab is already consumed, but callers may) gets
	// a fresh cpu instead.
	root     cpu
	rootUsed bool

	// procStats accumulates the per-processor busy/stall/idle breakdown
	// at every parallel-region join. Updated with atomics: joins of
	// nested regions can run on sibling goroutines in the fast engine.
	procStats [MaxProcessors]ProcStat
}

// recordProcStat folds one processor's region deltas into the machine
// totals at a region join.
func (m *Machine) recordProcStat(pid int, busy, stall, joinIdle int64) {
	atomic.AddInt64(&m.procStats[pid].Busy, busy)
	atomic.AddInt64(&m.procStats[pid].SyncStall, stall)
	atomic.AddInt64(&m.procStats[pid].JoinIdle, joinIdle)
}

// runStats snapshots the accumulated per-processor breakdown for a
// Result.
func (m *Machine) runStats() (procs [MaxProcessors]ProcStat, syncStalls int64) {
	procs = m.procStats
	for i := range procs {
		syncStalls += procs[i].SyncStall
	}
	return procs, syncStalls
}

// regionScratch is the reusable per-region fork state: processor
// contexts for pids 1.. (pid 0 runs on the parent cpu), plus per-pid
// output sinks and error slots.
type regionScratch struct {
	subs [MaxProcessors - 1]cpu
	outs [MaxProcessors]strings.Builder
	errs [MaxProcessors]error
}

// claimScratch hands out the machine's region scratch block, or a fresh
// one if it is already claimed (nested parallel regions).
func (m *Machine) claimScratch() *regionScratch {
	if m.scratchBusy.CompareAndSwap(false, true) {
		if m.scratch == nil {
			m.scratch = new(regionScratch)
		}
		return m.scratch
	}
	return new(regionScratch)
}

func (m *Machine) releaseScratch(s *regionScratch) {
	if s == m.scratch {
		m.scratchBusy.Store(false)
	}
}

// NewMachine loads a program.
func NewMachine(prog *Program, processors int) *Machine {
	if processors < 1 {
		processors = 1
	}
	if processors > MaxProcessors {
		processors = MaxProcessors
	}
	size := prog.MemSize
	if size < prog.DataBase+int64(len(prog.Data))+1<<16 {
		size = prog.DataBase + int64(len(prog.Data)) + 1<<16
	}
	m := &Machine{prog: prog, mem: make([]byte, size), Processors: processors}
	copy(m.mem[prog.DataBase:], prog.Data)
	if processors > 1 {
		// Pre-allocate the fast engine's region scratch so parallel
		// regions never allocate at run time.
		m.scratch = new(regionScratch)
	}
	return m
}

// cpu is one processor context. It is copied by value at parallel-region
// forks, so every field (including the vector register file and the
// scoreboard arrays) must be value state; shared state reaches it through
// m (the memory slab) and out (the output sink).
type cpu struct {
	m   *Machine
	out *strings.Builder
	r   [NumIntRegs]int64
	f   [NumFltRegs]float64
	vrf [VRFWords]float64
	// mk is the vector-mask register file: one bit per lane, packed into
	// uint64 words. A fixed array like vrf so parallel-region forks stay
	// plain struct copies. Compares write bits for lanes [0, vl) and
	// clear the rest, so every mask register is always canonical (no
	// stale bits beyond the last vsetl length that produced it).
	mk [NumMaskRegs][maskWords]uint64
	vl int64
	// vlc is vl clamped to at least 1, the value the timing model and
	// FLOP accounting use. The fast engine keeps it alongside vl
	// (updated at Vsetl, 1 at entry) so the per-instruction charge
	// needs no clamp branch; the reference interpreter clamps inline
	// and ignores this field.
	vlc  int64
	pid  int64
	args []argval

	// DOACROSS synchronization: sync is the enclosing parallel region's
	// fabric (nil outside regions), inRegionFrame says whether this
	// frame is the region's own (post/wait inside a called function are
	// rejected — the region scheduler could not resume mid-call), and
	// syncStall accumulates cycles blocked in waits.
	sync          *syncState
	inRegionFrame bool
	syncStall     int64

	// Scoreboard state. vecReady is indexed by VRF slot (mod VRFWords,
	// like the register file itself): a fixed array instead of a map so
	// parallel-region forks are plain struct copies with no per-region
	// allocation.
	clock     int64 // dispatch clock
	intReady  [NumIntRegs]int64
	fltReady  [NumFltRegs]int64
	vecReady  [VRFWords]int64
	maskReady [NumMaskRegs]int64
	intUnit   int64 // next cycle the unit can accept work
	fltUnit   int64
	memUnit   int64

	cycles int64 // completion horizon
	flops  int64
	icount int64

	// Mask-lane utilization counters (Result.MaskOps etc.): pooled at
	// parallel-region joins exactly like flops.
	maskOps    int64
	maskActive int64
	maskTotal  int64

	// Scratch scoreboard slots for the fast engine's branchless charge
	// (engine.go): decoded instructions carry byte offsets into this
	// struct for their operand ready-times and destination; ops without
	// an operand read sbZero (never written, so never a constraint) and
	// ops without a destination write sbSink (never read).
	sbZero int64
	sbSink int64
}

type argval struct {
	i     int64
	f     float64
	isFlt bool
}

// vslot maps an arbitrary slot index into the vector register file,
// wrapping the way the per-element accesses always have and tolerating
// negative indices instead of panicking.
func vslot(i int) int {
	i %= VRFWords
	if i < 0 {
		i += VRFWords
	}
	return i
}

// mslot maps an arbitrary mask-register index into the mask file, with
// the same wrap-don't-panic policy as vslot.
func mslot(i int) int {
	i %= NumMaskRegs
	if i < 0 {
		i += NumMaskRegs
	}
	return i
}

// maskReg extracts the governing mask-register index a masked
// instruction carries in Imm bits 8 and up.
func maskReg(in Instr) int { return mslot(int(in.Imm >> 8)) }

// maskBit reports whether lane k is active in mask register mr.
func (c *cpu) maskBit(mr int, k int64) bool {
	return c.mk[mr][k>>6]&(1<<uint(k&63)) != 0
}

// countMask charges the lane-utilization counters for one retired masked
// operation over the current vector length.
func (c *cpu) countMask(mr int) {
	active := int64(0)
	for k := int64(0); k < c.vl; k += 64 {
		w := c.mk[mr][k>>6]
		if rem := c.vl - k; rem < 64 {
			w &= 1<<uint(rem) - 1
		}
		active += int64(bits.OnesCount64(w))
	}
	c.maskOps++
	c.maskActive += active
	c.maskTotal += c.vl
}

// maskAllTrue reports whether every lane in [0, vl) is active in mask
// register mr — the gate for the fast engine's dense slab kernels.
func (c *cpu) maskAllTrue(mr int) bool {
	for k := int64(0); k < c.vl; k += 64 {
		w := c.mk[mr][k>>6]
		if rem := c.vl - k; rem < 64 {
			w |= ^(1<<uint(rem) - 1)
		}
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// Run executes main (or the named entry) to completion on the fast
// engine (engine.go): pre-decoded dispatch, slab vector kernels, and
// goroutine-backed parallel regions. Result is bit-identical to
// RunReference by construction; the differential tests enforce it.
// A non-nil Trace falls back to the reference interpreter, whose
// per-instruction loop carries the hook.
func (m *Machine) Run(entry string) (Result, error) {
	if m.Trace != nil {
		return m.RunReference(entry)
	}
	return m.runFastEntry(entry)
}

// RunReference executes on the reference interpreter: one instruction
// at a time through the original dispatch/exec pair, parallel regions
// serialized processor by processor. It defines the simulator's
// semantics; the fast engine is validated against it.
func (m *Machine) RunReference(entry string) (Result, error) {
	f, ok := m.prog.Funcs[entry]
	if !ok {
		return Result{}, fmt.Errorf("titan: no function %q", entry)
	}
	c := &cpu{m: m, out: &m.out}
	c.r[RegSP] = int64(len(m.mem)) - 8
	max := m.MaxInstrs
	if max == 0 {
		max = 2_000_000_000
	}
	if err := c.exec(f, 0, -1, max); err != nil {
		return Result{}, err
	}
	procs, stalls := m.runStats()
	return Result{
		Cycles:          c.cycles,
		FlopCount:       c.flops,
		Instrs:          c.icount,
		ExitCode:        c.r[RegRetInt],
		Output:          m.out.String(),
		SyncStalls:      stalls,
		MaskOps:         c.maskOps,
		MaskLanesActive: c.maskActive,
		MaskLanesTotal:  c.maskTotal,
		Procs:           procs,
	}, nil
}

// dispatch charges the scoreboard for one instruction and returns the
// cycle at which its result is ready.
func (c *cpu) dispatch(in Instr) int64 {
	// Operand availability.
	ready := c.clock
	maxr := func(t int64) {
		if t > ready {
			ready = t
		}
	}
	switch in.Op {
	case OpMov, OpNeg, OpNot, OpBnot, OpAddi, OpMuli, OpBeqz, OpBnez, OpArg,
		OpVsetl, OpCvtIF, OpPid, OpNproc:
		maxr(c.intReady[in.Rs1])
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpPost, OpWait:
		maxr(c.intReady[in.Rs1])
		maxr(c.intReady[in.Rs2])
	case OpLd1, OpLd2, OpLd4, OpFld4, OpFld8:
		maxr(c.intReady[in.Rs1])
	case OpSt1, OpSt2, OpSt4:
		// Stores drain through a store buffer: dispatch waits only for
		// the address; the data follows when ready.
		maxr(c.intReady[in.Rs1])
	case OpFst4, OpFst8:
		maxr(c.intReady[in.Rs1])
	case OpFmov, OpFneg, OpCvtFI, OpFarg, OpVbcast:
		maxr(c.fltReady[in.Rs1])
	case OpFadd, OpFsub, OpFmul, OpFdiv,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		maxr(c.fltReady[in.Rs1])
		maxr(c.fltReady[in.Rs2])
	case OpVld, OpVst:
		// Vector stores drain through the store buffer like scalar
		// stores: dispatch needs only the address and stride.
		maxr(c.intReady[in.Rs1])
		maxr(c.intReady[in.Rs2])
	case OpVadd, OpVsub, OpVmul, OpVdiv, OpVmov:
		maxr(c.vecReady[vslot(in.Rs1)])
		maxr(c.vecReady[vslot(in.Rs2)])
	case OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr:
		maxr(c.vecReady[vslot(in.Rs1)])
		maxr(c.fltReady[in.Rs2])
	case OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe:
		maxr(c.vecReady[vslot(in.Rs1)])
		maxr(c.vecReady[vslot(in.Rs2)])
	case OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes:
		maxr(c.vecReady[vslot(in.Rs1)])
		maxr(c.fltReady[in.Rs2])
	case OpMand, OpMor:
		maxr(c.maskReady[mslot(in.Rs1)])
		maxr(c.maskReady[mslot(in.Rs2)])
	case OpMnot:
		maxr(c.maskReady[mslot(in.Rs1)])
	case OpVldm, OpVstm:
		// Like the dense forms, masked memory ops dispatch on address and
		// stride; the mask gate is a third operand on its own small file.
		maxr(c.intReady[in.Rs1])
		maxr(c.intReady[in.Rs2])
		maxr(c.maskReady[maskReg(in)])
	case OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		maxr(c.vecReady[vslot(in.Rs1)])
		maxr(c.vecReady[vslot(in.Rs2)])
		maxr(c.maskReady[maskReg(in)])
	}

	// Unit, latency, occupancy.
	var unit *int64
	var lat, occ int64
	vl := c.vl
	if vl <= 0 {
		vl = 1
	}
	switch in.Op {
	case OpMul, OpMuli:
		unit, lat, occ = &c.intUnit, 4, 1
	case OpDiv, OpRem:
		unit, lat, occ = &c.intUnit, 12, 8
	case OpLd1, OpLd2, OpLd4, OpFld4, OpFld8:
		unit, lat, occ = &c.memUnit, 6, 1
	case OpSt1, OpSt2, OpSt4, OpFst4, OpFst8, OpPost:
		unit, lat, occ = &c.memUnit, 1, 1
	case OpWait:
		unit, lat, occ = &c.memUnit, waitLatency, 1
	case OpFadd, OpFsub, OpFmul, OpFneg,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe,
		OpCvtIF, OpCvtFI, OpFmov, OpFldi:
		unit, lat, occ = &c.fltUnit, 6, 1
	case OpFdiv:
		unit, lat, occ = &c.fltUnit, 18, 12
	case OpVld, OpVst, OpVldm, OpVstm:
		// The per-processor memory path is highly pipelined (§2): one
		// element per cycle after a short setup. Masked forms stream every
		// lane through the pipe and drop inactive ones at the end, so
		// they charge the dense timing regardless of mask density.
		unit, lat, occ = &c.memUnit, 6+vl, 2+vl
	case OpVadd, OpVsub, OpVmul, OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVmov, OpVbcast,
		OpVaddm, OpVsubm, OpVmulm,
		OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe,
		OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes:
		unit, lat, occ = &c.fltUnit, 8+vl, 4+vl
	case OpVdiv, OpVdivs, OpVdivsr, OpVdivm:
		unit, lat, occ = &c.fltUnit, 12+2*vl, 8+2*vl
	case OpMand, OpMor, OpMnot:
		unit, lat, occ = &c.intUnit, 2, 1
	case OpJmp, OpBeqz, OpBnez:
		unit, lat, occ = &c.intUnit, 2, 1
	case OpCall:
		unit, lat, occ = &c.intUnit, 10, 10
	case OpRet:
		unit, lat, occ = &c.intUnit, 8, 8
	default:
		unit, lat, occ = &c.intUnit, 1, 1
	}

	issue := ready
	if *unit > issue {
		issue = *unit
	}
	*unit = issue + occ
	done := issue + lat
	// In-order dispatch: the next instruction cannot dispatch before this
	// one did.
	c.clock = issue + 1
	if done > c.cycles {
		c.cycles = done
	}

	// Record result readiness.
	switch in.Op {
	case OpLdi, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpAddi, OpMuli, OpNeg, OpNot, OpBnot,
		OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe,
		OpLd1, OpLd2, OpLd4, OpCvtFI, OpPid, OpNproc,
		OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		c.intReady[in.Rd] = done
	case OpFldi, OpFmov, OpFadd, OpFsub, OpFmul, OpFdiv, OpFneg, OpCvtIF,
		OpFld4, OpFld8:
		c.fltReady[in.Rd] = done
	case OpVld, OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr, OpVmov, OpVbcast,
		OpVldm, OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		c.vecReady[vslot(in.Rd)] = done
	case OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe,
		OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes,
		OpMand, OpMor, OpMnot:
		c.maskReady[mslot(in.Rd)] = done
	}

	// FLOP accounting. Masked arithmetic charges every lane like its
	// dense form: inactive lanes still flow through the pipeline.
	switch in.Op {
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		c.flops++
	case OpVadd, OpVsub, OpVmul, OpVdiv,
		OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr,
		OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		c.flops += vl
	}
	return done
}

// exec runs instructions of f starting at pc until RET/HALT (stop == -1)
// or until reaching instruction index stop (used by parallel regions).
func (c *cpu) exec(f *Func, pc int, stop int, maxInstrs int64) error {
	for pc < len(f.Instrs) {
		if pc == stop {
			return nil
		}
		if c.icount >= maxInstrs {
			return fmt.Errorf("titan: instruction budget exhausted in %s (possible infinite loop)", f.Name)
		}
		in := f.Instrs[pc]
		if in.Op == OpWait && c.sync != nil && c.inRegionFrame {
			// An unsatisfied wait charges nothing and retires nothing:
			// the region scheduler parks this processor here and retries
			// after other processors have run (see parallelRegionSync).
			cell := c.r[in.Rs1]
			if cell >= 0 && cell < NumSyncCells {
				if _, ok := c.sync.peek(int(cell), c.r[in.Rs2]); !ok {
					return &waitBlocked{pc: pc}
				}
			}
		}
		c.icount++
		done := c.dispatch(in)
		if c.m.Trace != nil {
			c.m.Trace(fmt.Sprintf("%s+%d: %s", f.Name, pc, in))
		}
		switch in.Op {
		case OpNop:
		case OpLdi:
			c.r[in.Rd] = in.Imm
		case OpMov:
			c.r[in.Rd] = c.r[in.Rs1]
		case OpAdd:
			c.r[in.Rd] = c.r[in.Rs1] + c.r[in.Rs2]
		case OpSub:
			c.r[in.Rd] = c.r[in.Rs1] - c.r[in.Rs2]
		case OpMul:
			c.r[in.Rd] = c.r[in.Rs1] * c.r[in.Rs2]
		case OpDiv:
			if c.r[in.Rs2] == 0 {
				return fmt.Errorf("titan: integer division by zero in %s", f.Name)
			}
			c.r[in.Rd] = c.r[in.Rs1] / c.r[in.Rs2]
		case OpRem:
			if c.r[in.Rs2] == 0 {
				return fmt.Errorf("titan: integer remainder by zero in %s", f.Name)
			}
			c.r[in.Rd] = c.r[in.Rs1] % c.r[in.Rs2]
		case OpAnd:
			c.r[in.Rd] = c.r[in.Rs1] & c.r[in.Rs2]
		case OpOr:
			c.r[in.Rd] = c.r[in.Rs1] | c.r[in.Rs2]
		case OpXor:
			c.r[in.Rd] = c.r[in.Rs1] ^ c.r[in.Rs2]
		case OpShl:
			c.r[in.Rd] = c.r[in.Rs1] << uint(c.r[in.Rs2]&63)
		case OpShr:
			c.r[in.Rd] = c.r[in.Rs1] >> uint(c.r[in.Rs2]&63)
		case OpAddi:
			c.r[in.Rd] = c.r[in.Rs1] + in.Imm
		case OpMuli:
			c.r[in.Rd] = c.r[in.Rs1] * in.Imm
		case OpNeg:
			c.r[in.Rd] = -c.r[in.Rs1]
		case OpNot:
			c.r[in.Rd] = b2i(c.r[in.Rs1] == 0)
		case OpBnot:
			c.r[in.Rd] = ^c.r[in.Rs1]
		case OpCmpEq:
			c.r[in.Rd] = b2i(c.r[in.Rs1] == c.r[in.Rs2])
		case OpCmpNe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] != c.r[in.Rs2])
		case OpCmpLt:
			c.r[in.Rd] = b2i(c.r[in.Rs1] < c.r[in.Rs2])
		case OpCmpLe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] <= c.r[in.Rs2])
		case OpCmpGt:
			c.r[in.Rd] = b2i(c.r[in.Rs1] > c.r[in.Rs2])
		case OpCmpGe:
			c.r[in.Rd] = b2i(c.r[in.Rs1] >= c.r[in.Rs2])
		case OpPid:
			c.r[in.Rd] = c.pid
		case OpNproc:
			c.r[in.Rd] = int64(c.m.Processors)

		case OpLd1:
			a, err := c.addr(in, 1, "load", f.Name, pc)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int8(c.m.mem[a]))
		case OpLd2:
			a, err := c.addr(in, 2, "load", f.Name, pc)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int16(binary.LittleEndian.Uint16(c.m.mem[a:])))
		case OpLd4:
			a, err := c.addr(in, 4, "load", f.Name, pc)
			if err != nil {
				return err
			}
			c.r[in.Rd] = int64(int32(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case OpSt1:
			a, err := c.addr(in, 1, "store", f.Name, pc)
			if err != nil {
				return err
			}
			c.m.mem[a] = byte(c.r[in.Rs2])
		case OpSt2:
			a, err := c.addr(in, 2, "store", f.Name, pc)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint16(c.m.mem[a:], uint16(c.r[in.Rs2]))
		case OpSt4:
			a, err := c.addr(in, 4, "store", f.Name, pc)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], uint32(c.r[in.Rs2]))
		case OpFld4:
			a, err := c.addr(in, 4, "load", f.Name, pc)
			if err != nil {
				return err
			}
			c.f[in.Rd] = float64(math.Float32frombits(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case OpFld8:
			a, err := c.addr(in, 8, "load", f.Name, pc)
			if err != nil {
				return err
			}
			c.f[in.Rd] = math.Float64frombits(binary.LittleEndian.Uint64(c.m.mem[a:]))
		case OpFst4:
			a, err := c.addr(in, 4, "store", f.Name, pc)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], math.Float32bits(float32(c.f[in.Rs2])))
		case OpFst8:
			a, err := c.addr(in, 8, "store", f.Name, pc)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(c.m.mem[a:], math.Float64bits(c.f[in.Rs2]))

		case OpFldi:
			c.f[in.Rd] = in.FImm
		case OpFmov:
			c.f[in.Rd] = c.f[in.Rs1]
		case OpFadd:
			c.f[in.Rd] = c.f[in.Rs1] + c.f[in.Rs2]
		case OpFsub:
			c.f[in.Rd] = c.f[in.Rs1] - c.f[in.Rs2]
		case OpFmul:
			c.f[in.Rd] = c.f[in.Rs1] * c.f[in.Rs2]
		case OpFdiv:
			c.f[in.Rd] = c.f[in.Rs1] / c.f[in.Rs2]
		case OpFneg:
			c.f[in.Rd] = -c.f[in.Rs1]
		case OpFcmpEq:
			c.r[in.Rd] = b2i(c.f[in.Rs1] == c.f[in.Rs2])
		case OpFcmpNe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] != c.f[in.Rs2])
		case OpFcmpLt:
			c.r[in.Rd] = b2i(c.f[in.Rs1] < c.f[in.Rs2])
		case OpFcmpLe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] <= c.f[in.Rs2])
		case OpFcmpGt:
			c.r[in.Rd] = b2i(c.f[in.Rs1] > c.f[in.Rs2])
		case OpFcmpGe:
			c.r[in.Rd] = b2i(c.f[in.Rs1] >= c.f[in.Rs2])
		case OpCvtIF:
			c.f[in.Rd] = float64(c.r[in.Rs1])
		case OpCvtFI:
			c.r[in.Rd] = int64(c.f[in.Rs1])

		case OpVsetl:
			vl := c.r[in.Rs1]
			if vl < 0 {
				vl = 0
			}
			if vl > MaxVL {
				vl = MaxVL
			}
			c.vl = vl
		case OpVld:
			if err := c.vecLoad(in, f.Name, pc); err != nil {
				return err
			}
		case OpVst:
			if err := c.vecStore(in, f.Name, pc); err != nil {
				return err
			}
		case OpVadd:
			c.vecBin(in, func(a, b float64) float64 { return a + b })
		case OpVsub:
			c.vecBin(in, func(a, b float64) float64 { return a - b })
		case OpVmul:
			c.vecBin(in, func(a, b float64) float64 { return a * b })
		case OpVdiv:
			c.vecBin(in, func(a, b float64) float64 { return a / b })
		case OpVadds:
			c.vecScalar(in, func(a, s float64) float64 { return a + s })
		case OpVsubs:
			c.vecScalar(in, func(a, s float64) float64 { return a - s })
		case OpVsubsr:
			c.vecScalar(in, func(a, s float64) float64 { return s - a })
		case OpVmuls:
			c.vecScalar(in, func(a, s float64) float64 { return a * s })
		case OpVdivs:
			c.vecScalar(in, func(a, s float64) float64 { return a / s })
		case OpVdivsr:
			c.vecScalar(in, func(a, s float64) float64 { return s / a })
		case OpVmov:
			for k := int64(0); k < c.vl; k++ {
				c.vrf[vslot(in.Rd+int(k))] = c.vrf[vslot(in.Rs1+int(k))]
			}
		case OpVbcast:
			for k := int64(0); k < c.vl; k++ {
				c.vrf[vslot(in.Rd+int(k))] = c.f[in.Rs1]
			}

		case OpVcmpLt:
			c.vecCmpVV(in, func(a, b float64) bool { return a < b })
		case OpVcmpLe:
			c.vecCmpVV(in, func(a, b float64) bool { return a <= b })
		case OpVcmpEq:
			c.vecCmpVV(in, func(a, b float64) bool { return a == b })
		case OpVcmpNe:
			c.vecCmpVV(in, func(a, b float64) bool { return a != b })
		case OpVcmpLts:
			c.vecCmpVS(in, func(a, s float64) bool { return a < s })
		case OpVcmpLes:
			c.vecCmpVS(in, func(a, s float64) bool { return a <= s })
		case OpVcmpEqs:
			c.vecCmpVS(in, func(a, s float64) bool { return a == s })
		case OpVcmpNes:
			c.vecCmpVS(in, func(a, s float64) bool { return a != s })
		case OpMand:
			c.maskCombine(in, func(a, b uint64) uint64 { return a & b })
		case OpMor:
			c.maskCombine(in, func(a, b uint64) uint64 { return a | b })
		case OpMnot:
			c.maskCombine(in, func(a, _ uint64) uint64 { return ^a })
		case OpVldm:
			if err := c.vecLoadMasked(in, f.Name, pc); err != nil {
				return err
			}
		case OpVstm:
			if err := c.vecStoreMasked(in, f.Name, pc); err != nil {
				return err
			}
		case OpVaddm:
			c.vecBinMasked(in, func(a, b float64) float64 { return a + b })
		case OpVsubm:
			c.vecBinMasked(in, func(a, b float64) float64 { return a - b })
		case OpVmulm:
			c.vecBinMasked(in, func(a, b float64) float64 { return a * b })
		case OpVdivm:
			c.vecBinMasked(in, func(a, b float64) float64 { return a / b })

		case OpJmp:
			t, ok := f.Labels[in.Sym]
			if !ok {
				return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
			}
			pc = t
			continue
		case OpBeqz:
			if c.r[in.Rs1] == 0 {
				t, ok := f.Labels[in.Sym]
				if !ok {
					return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
				}
				pc = t
				continue
			}
		case OpBnez:
			if c.r[in.Rs1] != 0 {
				t, ok := f.Labels[in.Sym]
				if !ok {
					return fmt.Errorf("titan: unknown label %q in %s", in.Sym, f.Name)
				}
				pc = t
				continue
			}
		case OpArg:
			c.args = append(c.args, argval{i: c.r[in.Rs1]})
		case OpFarg:
			c.args = append(c.args, argval{f: c.f[in.Rs1], isFlt: true})
		case OpCall:
			if err := c.call(in.Sym, f.Name, pc, maxInstrs); err != nil {
				return err
			}
		case OpRet, OpHalt:
			return nil

		case OpParBegin:
			end := c.findParEnd(f, pc)
			if end < 0 {
				return fmt.Errorf("titan: unmatched par.begin in %s", f.Name)
			}
			if err := c.parallelRegion(f, pc+1, end, maxInstrs); err != nil {
				return err
			}
			pc = end + 1
			continue
		case OpParEnd:
			// Reached only inside parallelRegion via stop; at top level it
			// is a stray marker.
			return fmt.Errorf("titan: stray par.end in %s", f.Name)

		case OpPost:
			if c.sync == nil || !c.inRegionFrame {
				return fmt.Errorf("titan: post outside parallel region in %s", f.Name)
			}
			cell := c.r[in.Rs1]
			if cell < 0 || cell >= NumSyncCells {
				return &Fault{Addr: cell, Size: 8, Kind: "sync post", Func: f.Name, PC: pc}
			}
			c.sync.post(int(cell), c.r[in.Rs2], done)
		case OpWait:
			if c.sync == nil || !c.inRegionFrame {
				return fmt.Errorf("titan: wait outside parallel region in %s", f.Name)
			}
			cell := c.r[in.Rs1]
			if cell < 0 || cell >= NumSyncCells {
				return &Fault{Addr: cell, Size: 8, Kind: "sync wait", Func: f.Name, PC: pc}
			}
			// Satisfied (the pre-dispatch peek passed): the wait's data
			// arrives waitLatency after the releasing post completed, or
			// at the wait's own latency if the post was already old.
			t, _ := c.sync.peek(int(cell), c.r[in.Rs2])
			if eff := t + waitLatency; eff > done {
				c.syncStall += eff - done
				c.clock = eff
				if eff > c.cycles {
					c.cycles = eff
				}
			}

		default:
			return fmt.Errorf("titan: unimplemented op %v", in.Op)
		}
		pc++
	}
	return nil
}

func (c *cpu) addr(in Instr, size int64, kind, fn string, pc int) (int64, error) {
	a := c.r[in.Rs1] + in.Imm
	if a < 0 || a+size > int64(len(c.m.mem)) || a+size < a {
		return 0, &Fault{Addr: a, Size: size, Kind: kind, Func: fn, PC: pc}
	}
	return a, nil
}

func (c *cpu) vecLoad(in Instr, fn string, pc int) error {
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		a := base + k*stride
		switch in.Imm {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = float64(math.Float32frombits(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 8, Kind: "vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = math.Float64frombits(binary.LittleEndian.Uint64(c.m.mem[a:]))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = float64(int32(binary.LittleEndian.Uint32(c.m.mem[a:])))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", in.Imm)
		}
	}
	return nil
}

func (c *cpu) vecStore(in Instr, fn string, pc int) error {
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		a := base + k*stride
		v := c.vrf[vslot(in.Rd+int(k))]
		switch in.Imm {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], math.Float32bits(float32(v)))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 8, Kind: "vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint64(c.m.mem[a:], math.Float64bits(v))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], uint32(int32(v)))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", in.Imm)
		}
	}
	return nil
}

func (c *cpu) vecBin(in Instr, f func(a, b float64) float64) {
	for k := int64(0); k < c.vl; k++ {
		c.vrf[vslot(in.Rd+int(k))] = f(
			c.vrf[vslot(in.Rs1+int(k))],
			c.vrf[vslot(in.Rs2+int(k))])
	}
}

func (c *cpu) vecScalar(in Instr, f func(a, s float64) float64) {
	s := c.f[in.Rs2]
	for k := int64(0); k < c.vl; k++ {
		c.vrf[vslot(in.Rd+int(k))] = f(c.vrf[vslot(in.Rs1+int(k))], s)
	}
}

// setMask writes a freshly computed mask: bits [0, vl) from set, all
// higher bits cleared, so mask registers never carry stale lanes.
func (c *cpu) setMask(mr int, set func(k int64) bool) {
	var out [maskWords]uint64
	for k := int64(0); k < c.vl; k++ {
		if set(k) {
			out[k>>6] |= 1 << uint(k&63)
		}
	}
	c.mk[mr] = out
}

func (c *cpu) vecCmpVV(in Instr, f func(a, b float64) bool) {
	c.setMask(mslot(in.Rd), func(k int64) bool {
		return f(c.vrf[vslot(in.Rs1+int(k))], c.vrf[vslot(in.Rs2+int(k))])
	})
}

func (c *cpu) vecCmpVS(in Instr, f func(a, s float64) bool) {
	s := c.f[in.Rs2]
	c.setMask(mslot(in.Rd), func(k int64) bool {
		return f(c.vrf[vslot(in.Rs1+int(k))], s)
	})
}

// maskCombine applies a word-wise combinator over the active VL lanes
// (mnot passes the same function with the second operand ignored) and
// clears everything beyond them, preserving the canonical-mask
// invariant compares establish.
func (c *cpu) maskCombine(in Instr, f func(a, b uint64) uint64) {
	a := &c.mk[mslot(in.Rs1)]
	b := &c.mk[mslot(in.Rs2)]
	var out [maskWords]uint64
	for w := 0; w*64 < int(c.vl); w++ {
		v := f(a[w], b[w])
		if rem := c.vl - int64(w*64); rem < 64 {
			v &= 1<<uint(rem) - 1
		}
		out[w] = v
	}
	c.mk[mslot(in.Rd)] = out
}

// vecLoadMasked is vld.m: active lanes load like vld, inactive lanes
// touch no memory (no bounds check — lane suppression extends to
// faults) and keep the destination slot's prior contents. Faults name
// the faulting lane's own address.
func (c *cpu) vecLoadMasked(in Instr, fn string, pc int) error {
	mr := maskReg(in)
	c.countMask(mr)
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	kind := in.Imm & 0xff
	for k := int64(0); k < c.vl; k++ {
		if !c.maskBit(mr, k) {
			continue
		}
		a := base + k*stride
		switch kind {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "masked vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = float64(math.Float32frombits(binary.LittleEndian.Uint32(c.m.mem[a:])))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 8, Kind: "masked vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = math.Float64frombits(binary.LittleEndian.Uint64(c.m.mem[a:]))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "masked vector load", Func: fn, PC: pc}
			}
			c.vrf[vslot(in.Rd+int(k))] = float64(int32(binary.LittleEndian.Uint32(c.m.mem[a:])))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", kind)
		}
	}
	return nil
}

// vecStoreMasked is vst.m: active lanes store like vst, inactive lanes
// leave memory untouched.
func (c *cpu) vecStoreMasked(in Instr, fn string, pc int) error {
	mr := maskReg(in)
	c.countMask(mr)
	base := c.r[in.Rs1]
	stride := c.r[in.Rs2]
	kind := in.Imm & 0xff
	for k := int64(0); k < c.vl; k++ {
		if !c.maskBit(mr, k) {
			continue
		}
		a := base + k*stride
		v := c.vrf[vslot(in.Rd+int(k))]
		switch kind {
		case ElemF32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "masked vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], math.Float32bits(float32(v)))
		case ElemF64:
			if a < 0 || a+8 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 8, Kind: "masked vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint64(c.m.mem[a:], math.Float64bits(v))
		case ElemI32:
			if a < 0 || a+4 > int64(len(c.m.mem)) {
				return &Fault{Addr: a, Size: 4, Kind: "masked vector store", Func: fn, PC: pc}
			}
			binary.LittleEndian.PutUint32(c.m.mem[a:], uint32(int32(v)))
		default:
			return fmt.Errorf("titan: bad vector element kind %d", kind)
		}
	}
	return nil
}

// vecBinMasked applies f on active lanes; inactive destination lanes
// keep their prior contents.
func (c *cpu) vecBinMasked(in Instr, f func(a, b float64) float64) {
	mr := maskReg(in)
	c.countMask(mr)
	for k := int64(0); k < c.vl; k++ {
		if !c.maskBit(mr, k) {
			continue
		}
		c.vrf[vslot(in.Rd+int(k))] = f(
			c.vrf[vslot(in.Rs1+int(k))],
			c.vrf[vslot(in.Rs2+int(k))])
	}
}

// call implements register-windowed calls plus runtime intrinsics. fn
// and pc locate the call site for fault attribution.
func (c *cpu) call(name, fn string, pc int, maxInstrs int64) error {
	if handled, err := c.intrinsic(name); handled {
		c.args = nil
		return locateFault(err, fn, pc)
	}
	callee, ok := c.m.prog.Funcs[name]
	if !ok {
		return fmt.Errorf("titan: call to undefined function %q", name)
	}
	// Register window: snapshot, run, restore all but results. The
	// callee is not the parallel region's own frame: post/wait inside it
	// are rejected (the region scheduler cannot park mid-call).
	savedR := c.r
	savedF := c.f
	savedFrame := c.inRegionFrame
	c.inRegionFrame = false
	c.args = nil
	if err := c.exec(callee, 0, -1, maxInstrs); err != nil {
		return err
	}
	c.inRegionFrame = savedFrame
	retI := c.r[RegRetInt]
	retF := c.f[RegRetFlt]
	c.r = savedR
	c.f = savedF
	c.r[RegRetInt] = retI
	c.f[RegRetFlt] = retF
	return nil
}

// locateFault stamps the call site onto an intrinsic's Fault (cstring
// reads have no pc of their own).
func locateFault(err error, fn string, pc int) error {
	if f, ok := err.(*Fault); ok && f.Func == "" {
		f.Func = fn
		f.PC = pc
	}
	return err
}

// parallelRegion runs [start, end) once per processor, charging the
// maximum chunk time plus fork/join overhead. This is the reference
// model: processors run serialized, in pid order, on the host thread.
const forkOverhead = 20 // cycles per processor spawn via shared memory

func (c *cpu) parallelRegion(f *Func, start, end int, maxInstrs int64) error {
	if hasSyncOps(f.Instrs, start, end) {
		return c.parallelRegionSync(f, start, end, maxInstrs)
	}
	base := *c
	var maxDelta int64
	var flops, icount int64
	var maskOps, maskActive, maskTotal int64
	var deltas [MaxProcessors]int64
	var finalState *cpu
	for pid := 0; pid < c.m.Processors; pid++ {
		sub := base
		sub.pid = int64(pid)
		start0 := sub.cycles
		if err := sub.exec(f, start, end, maxInstrs); err != nil {
			return err
		}
		delta := sub.cycles - start0
		deltas[pid] = delta
		if delta > maxDelta {
			maxDelta = delta
		}
		flops += sub.flops - base.flops
		icount += sub.icount - base.icount
		maskOps += sub.maskOps - base.maskOps
		maskActive += sub.maskActive - base.maskActive
		maskTotal += sub.maskTotal - base.maskTotal
		if pid == 0 {
			s := sub
			finalState = &s
		}
	}
	for pid := 0; pid < c.m.Processors; pid++ {
		c.m.recordProcStat(pid, deltas[pid], 0, maxDelta-deltas[pid])
	}
	// Adopt processor 0's register state (scalar results inside parallel
	// regions are chunk-local by construction), with pooled costs.
	*c = *finalState
	c.pid = 0
	c.flops = base.flops + flops
	c.icount = base.icount + icount
	c.maskOps = base.maskOps + maskOps
	c.maskActive = base.maskActive + maskActive
	c.maskTotal = base.maskTotal + maskTotal
	c.cycles = base.cycles + maxDelta + forkOverhead*int64(c.m.Processors-1)
	c.clock = c.cycles
	c.intUnit, c.fltUnit, c.memUnit = c.cycles, c.cycles, c.cycles
	return nil
}

// waitBlocked is the sentinel exec returns when a wait's threshold has
// not been posted yet: the region scheduler parks the processor at pc
// and retries after others have run. Nothing was charged or retired.
type waitBlocked struct{ pc int }

func (w *waitBlocked) Error() string { return "titan: wait blocked" }

// parallelRegionSync is the reference execution of a region containing
// post/wait: a deterministic round-robin over the processors, each run
// until it finishes the region or blocks on an unsatisfied wait. A full
// round with no processor retiring anything means no post can ever
// arrive — deadlock. The join math matches parallelRegion exactly;
// per-processor output is buffered and concatenated in pid order, which
// is what the serialized pid-by-pid execution produced naturally.
func (c *cpu) parallelRegionSync(f *Func, start, end int, maxInstrs int64) error {
	procs := c.m.Processors
	base := *c
	ss := newSyncState(procs)
	subs := make([]*cpu, procs)
	outs := make([]strings.Builder, procs)
	pcs := make([]int, procs)
	running := make([]bool, procs)
	for pid := 0; pid < procs; pid++ {
		sub := base
		sub.pid = int64(pid)
		sub.sync = ss
		sub.inRegionFrame = true
		sub.out = &outs[pid]
		sub.args = append([]argval(nil), base.args...)
		s := sub
		subs[pid] = &s
		pcs[pid] = start
		running[pid] = true
	}
	live := procs
	for live > 0 {
		progress := false
		for pid := 0; pid < procs; pid++ {
			if !running[pid] {
				continue
			}
			sub := subs[pid]
			ic0 := sub.icount
			err := sub.exec(f, pcs[pid], end, maxInstrs)
			if wb, ok := err.(*waitBlocked); ok {
				pcs[pid] = wb.pc
				if sub.icount > ic0 {
					progress = true
				}
				continue
			}
			if err != nil {
				return err
			}
			running[pid] = false
			live--
			progress = true
		}
		if live > 0 && !progress {
			return fmt.Errorf("titan: sync deadlock in parallel region in %s", f.Name)
		}
	}
	var maxDelta, flops, icount, stalls int64
	var maskOps, maskActive, maskTotal int64
	var deltas, stallDeltas [MaxProcessors]int64
	for pid := 0; pid < procs; pid++ {
		sub := subs[pid]
		deltas[pid] = sub.cycles - base.cycles
		stallDeltas[pid] = sub.syncStall - base.syncStall
		if deltas[pid] > maxDelta {
			maxDelta = deltas[pid]
		}
		flops += sub.flops - base.flops
		icount += sub.icount - base.icount
		maskOps += sub.maskOps - base.maskOps
		maskActive += sub.maskActive - base.maskActive
		maskTotal += sub.maskTotal - base.maskTotal
		stalls += stallDeltas[pid]
	}
	for pid := 0; pid < procs; pid++ {
		c.m.recordProcStat(pid, deltas[pid]-stallDeltas[pid], stallDeltas[pid], maxDelta-deltas[pid])
	}
	for pid := 0; pid < procs; pid++ {
		base.out.WriteString(outs[pid].String())
	}
	*c = *subs[0]
	c.pid = 0
	c.sync = base.sync
	c.inRegionFrame = base.inRegionFrame
	c.out = base.out
	c.args = base.args
	c.flops = base.flops + flops
	c.icount = base.icount + icount
	c.maskOps = base.maskOps + maskOps
	c.maskActive = base.maskActive + maskActive
	c.maskTotal = base.maskTotal + maskTotal
	c.cycles = base.cycles + maxDelta + forkOverhead*int64(procs-1)
	c.clock = c.cycles
	c.intUnit, c.fltUnit, c.memUnit = c.cycles, c.cycles, c.cycles
	return nil
}

func (c *cpu) findParEnd(f *Func, pc int) int {
	depth := 0
	for i := pc + 1; i < len(f.Instrs); i++ {
		switch f.Instrs[i].Op {
		case OpParBegin:
			depth++
		case OpParEnd:
			if depth == 0 {
				return i
			}
			depth--
		}
	}
	return -1
}

// intrinsic implements the tiny runtime: printf (with %d/%g/%f/%s/%c and
// %%), putchar, puts, and exit-less abort stubs used by examples. It
// reports whether the name was an intrinsic, plus any fault raised while
// reading string arguments from simulated memory.
func (c *cpu) intrinsic(name string) (bool, error) {
	switch name {
	case "printf":
		return true, c.doPrintf()
	case "putchar":
		if len(c.args) > 0 {
			c.out.WriteByte(byte(c.args[0].i))
		}
		c.r[RegRetInt] = 0
		return true, nil
	case "puts":
		if len(c.args) > 0 {
			s, err := c.cstring(c.args[0].i)
			if err != nil {
				return true, err
			}
			c.out.WriteString(s)
			c.out.WriteByte('\n')
		}
		c.r[RegRetInt] = 0
		return true, nil
	}
	return false, nil
}

// cstring reads a NUL-terminated string from simulated memory. A start
// address outside memory is a fault; a string running to the end of
// memory without a NUL is truncated there, as before.
func (c *cpu) cstring(addr int64) (string, error) {
	if addr < 0 || addr >= int64(len(c.m.mem)) {
		return "", &Fault{Addr: addr, Size: 1, Kind: "cstring"}
	}
	var sb strings.Builder
	for addr < int64(len(c.m.mem)) && c.m.mem[addr] != 0 {
		sb.WriteByte(c.m.mem[addr])
		addr++
	}
	return sb.String(), nil
}

func (c *cpu) doPrintf() error {
	if len(c.args) == 0 {
		return nil
	}
	format, err := c.cstring(c.args[0].i)
	if err != nil {
		return err
	}
	rest := c.args[1:]
	next := func() argval {
		if len(rest) == 0 {
			return argval{}
		}
		v := rest[0]
		rest = rest[1:]
		return v
	}
	i := 0
	for i < len(format) {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			c.out.WriteByte(ch)
			i++
			continue
		}
		i++
		// Skip width/precision modifiers.
		spec := "%"
		for i < len(format) && strings.ContainsRune("0123456789.-+l", rune(format[i])) {
			spec += string(format[i])
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		switch verb {
		case 'd', 'i':
			fmt.Fprintf(c.out, strings.ReplaceAll(spec, "l", "")+"d", next().i)
		case 'u':
			fmt.Fprintf(c.out, strings.ReplaceAll(spec, "l", "")+"d", next().i)
		case 'x':
			fmt.Fprintf(c.out, strings.ReplaceAll(spec, "l", "")+"x", next().i)
		case 'c':
			c.out.WriteByte(byte(next().i))
		case 'f', 'e', 'g':
			a := next()
			v := a.f
			if !a.isFlt {
				v = float64(a.i)
			}
			fmt.Fprintf(c.out, spec+string(verb), v)
		case 's':
			s, err := c.cstring(next().i)
			if err != nil {
				return err
			}
			c.out.WriteString(s)
		case '%':
			c.out.WriteByte('%')
		default:
			c.out.WriteByte('%')
			c.out.WriteByte(verb)
		}
	}
	c.r[RegRetInt] = int64(len(format))
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
