package titan

import (
	"math"
	"strings"
	"testing"
)

// mkProg wraps instructions into a one-function program.
func mkProg(instrs []Instr, labels map[string]int) *Program {
	if labels == nil {
		labels = map[string]int{}
	}
	return &Program{
		Funcs:    map[string]*Func{"main": {Name: "main", Instrs: instrs, Labels: labels}},
		DataBase: 4096,
		MemSize:  1 << 20,
	}
}

func run(t *testing.T, prog *Program, procs int) Result {
	t.Helper()
	m := NewMachine(prog, procs)
	res, err := m.Run("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestIntegerALU(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 6},
		{Op: OpLdi, Rd: 11, Imm: 7},
		{Op: OpMul, Rd: RegRetInt, Rs1: 10, Rs2: 11},
		{Op: OpRet},
	}, nil)
	res := run(t, prog, 1)
	if res.ExitCode != 42 {
		t.Errorf("exit: %d", res.ExitCode)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096},
		{Op: OpLdi, Rd: 11, Imm: -123},
		{Op: OpSt4, Rs1: 10, Rs2: 11, Imm: 8},
		{Op: OpLd4, Rd: RegRetInt, Rs1: 10, Imm: 8},
		{Op: OpRet},
	}, nil)
	if res := run(t, prog, 1); res.ExitCode != -123 {
		t.Errorf("exit: %d", res.ExitCode)
	}
}

func TestByteAndHalfMemory(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096},
		{Op: OpLdi, Rd: 11, Imm: 0x1ff},
		{Op: OpSt1, Rs1: 10, Rs2: 11},
		{Op: OpLd1, Rd: 12, Rs1: 10},
		{Op: OpLdi, Rd: 13, Imm: -2},
		{Op: OpSt2, Rs1: 10, Rs2: 13, Imm: 4},
		{Op: OpLd2, Rd: 14, Rs1: 10, Imm: 4},
		{Op: OpAdd, Rd: RegRetInt, Rs1: 12, Rs2: 14},
		{Op: OpRet},
	}, nil)
	// st1 truncates 0x1ff → 0xff → sext → -1; -1 + -2 = -3.
	if res := run(t, prog, 1); res.ExitCode != -3 {
		t.Errorf("exit: %d", res.ExitCode)
	}
}

func TestFloatOps(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpFldi, Rd: 10, FImm: 1.5},
		{Op: OpFldi, Rd: 11, FImm: 2.5},
		{Op: OpFmul, Rd: 12, Rs1: 10, Rs2: 11},
		{Op: OpFldi, Rd: 13, FImm: 3.75},
		{Op: OpFcmpEq, Rd: RegRetInt, Rs1: 12, Rs2: 13},
		{Op: OpRet},
	}, nil)
	res := run(t, prog, 1)
	if res.ExitCode != 1 {
		t.Errorf("1.5*2.5 != 3.75?")
	}
	if res.FlopCount != 1 {
		t.Errorf("flops: %d", res.FlopCount)
	}
}

func TestFloat32MemoryPrecision(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096},
		{Op: OpFldi, Rd: 11, FImm: 0.1}, // not representable in f32
		{Op: OpFst4, Rs1: 10, Rs2: 11},
		{Op: OpFld4, Rd: 12, Rs1: 10},
		{Op: OpFcmpEq, Rd: RegRetInt, Rs1: 11, Rs2: 12},
		{Op: OpRet},
	}, nil)
	// After the f32 round trip the value differs from the f64 original.
	if res := run(t, prog, 1); res.ExitCode != 0 {
		t.Errorf("f32 store kept f64 precision")
	}
	prog2 := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096},
		{Op: OpFldi, Rd: 11, FImm: 0.1},
		{Op: OpFst8, Rs1: 10, Rs2: 11},
		{Op: OpFld8, Rd: 12, Rs1: 10},
		{Op: OpFcmpEq, Rd: RegRetInt, Rs1: 11, Rs2: 12},
		{Op: OpRet},
	}, nil)
	if res := run(t, prog2, 1); res.ExitCode != 1 {
		t.Errorf("f64 store lost precision")
	}
}

func TestBranchLoop(t *testing.T) {
	// sum 1..10 = 55
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 10}, // i
		{Op: OpLdi, Rd: 11, Imm: 0},  // s
		// L: s += i; i--; bnez i, L
		{Op: OpAdd, Rd: 11, Rs1: 11, Rs2: 10},
		{Op: OpAddi, Rd: 10, Rs1: 10, Imm: -1},
		{Op: OpBnez, Rs1: 10, Sym: "L"},
		{Op: OpMov, Rd: RegRetInt, Rs1: 11},
		{Op: OpRet},
	}, map[string]int{"L": 2})
	if res := run(t, prog, 1); res.ExitCode != 55 {
		t.Errorf("exit: %d", res.ExitCode)
	}
}

func TestCallRegisterWindow(t *testing.T) {
	prog := &Program{
		Funcs: map[string]*Func{
			"main": {Name: "main", Instrs: []Instr{
				{Op: OpLdi, Rd: 20, Imm: 111}, // caller-live value
				{Op: OpLdi, Rd: RegArg0, Imm: 5},
				{Op: OpCall, Sym: "double"},
				// r20 must survive; result in r2.
				{Op: OpAdd, Rd: RegRetInt, Rs1: RegRetInt, Rs2: 20},
				{Op: OpRet},
			}, Labels: map[string]int{}},
			"double": {Name: "double", Instrs: []Instr{
				{Op: OpLdi, Rd: 20, Imm: 999}, // clobber a window register
				{Op: OpAdd, Rd: RegRetInt, Rs1: RegArg0, Rs2: RegArg0},
				{Op: OpRet},
			}, Labels: map[string]int{}},
		},
		MemSize: 1 << 20,
	}
	if res := run(t, prog, 1); res.ExitCode != 121 {
		t.Errorf("exit: %d (window restore broken?)", res.ExitCode)
	}
}

func TestVectorAddAndTiming(t *testing.T) {
	n := int64(32)
	instrs := []Instr{
		{Op: OpLdi, Rd: 10, Imm: n},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: 4096}, // a
		{Op: OpLdi, Rd: 12, Imm: 8192}, // b
		{Op: OpLdi, Rd: 13, Imm: 4},    // stride
		{Op: OpVld, Rd: 0, Rs1: 11, Rs2: 13, Imm: ElemF32},
		{Op: OpVld, Rd: 64, Rs1: 12, Rs2: 13, Imm: ElemF32},
		{Op: OpVadd, Rd: 128, Rs1: 0, Rs2: 64},
		{Op: OpVst, Rd: 128, Rs1: 11, Rs2: 13, Imm: ElemF32},
		{Op: OpRet},
	}
	prog := mkProg(instrs, nil)
	m := NewMachine(prog, 1)
	// Seed memory: a[i] = i, b[i] = 10.
	for i := int64(0); i < n; i++ {
		putF32(m.mem, 4096+4*i, float32(i))
		putF32(m.mem, 8192+4*i, 10)
	}
	res, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if got := getF32(m.mem, 4096+4*i); got != float32(i)+10 {
			t.Fatalf("a[%d] = %g", i, got)
		}
	}
	if res.FlopCount != n {
		t.Errorf("flops: %d, want %d", res.FlopCount, n)
	}
}

func TestVectorFasterThanScalarLoop(t *testing.T) {
	// The core §2 claim: vector instructions keep the pipeline full.
	n := int64(128)
	// Scalar: load, add, store per element.
	var scalar []Instr
	scalar = append(scalar,
		Instr{Op: OpLdi, Rd: 10, Imm: 4096},
		Instr{Op: OpLdi, Rd: 11, Imm: n},
		Instr{Op: OpFldi, Rd: 10, FImm: 1.0},
	)
	scalar = append(scalar,
		Instr{Op: OpFld4, Rd: 11, Rs1: 10},
		Instr{Op: OpFadd, Rd: 12, Rs1: 11, Rs2: 10},
		Instr{Op: OpFst4, Rs1: 10, Rs2: 12},
		Instr{Op: OpAddi, Rd: 10, Rs1: 10, Imm: 4},
		Instr{Op: OpAddi, Rd: 11, Rs1: 11, Imm: -1},
		Instr{Op: OpBnez, Rs1: 11, Sym: "L"},
		Instr{Op: OpRet},
	)
	labels := map[string]int{"L": 3}
	sp := mkProg(scalar, labels)
	// Fix register conflicts: rebuild carefully.
	sp.Funcs["main"].Instrs = []Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096}, // addr
		{Op: OpLdi, Rd: 11, Imm: n},    // count
		{Op: OpFldi, Rd: 20, FImm: 1.0},
		{Op: OpFld4, Rd: 21, Rs1: 10},
		{Op: OpFadd, Rd: 22, Rs1: 21, Rs2: 20},
		{Op: OpFst4, Rs1: 10, Rs2: 22},
		{Op: OpAddi, Rd: 10, Rs1: 10, Imm: 4},
		{Op: OpAddi, Rd: 11, Rs1: 11, Imm: -1},
		{Op: OpBnez, Rs1: 11, Sym: "L"},
		{Op: OpRet},
	}
	sp.Funcs["main"].Labels = map[string]int{"L": 3}
	resScalar := run(t, sp, 1)

	// Vector: 4 strips of 32.
	var vec []Instr
	vec = append(vec,
		Instr{Op: OpLdi, Rd: 9, Imm: 32},
		Instr{Op: OpVsetl, Rs1: 9},
		Instr{Op: OpLdi, Rd: 13, Imm: 4},
		Instr{Op: OpFldi, Rd: 20, FImm: 1.0},
	)
	for s := int64(0); s < n; s += 32 {
		vec = append(vec,
			Instr{Op: OpLdi, Rd: 10, Imm: 4096 + 4*s},
			Instr{Op: OpVld, Rd: 0, Rs1: 10, Rs2: 13, Imm: ElemF32},
			Instr{Op: OpVadds, Rd: 64, Rs1: 0, Rs2: 20},
			Instr{Op: OpVst, Rd: 64, Rs1: 10, Rs2: 13, Imm: ElemF32},
		)
	}
	vec = append(vec, Instr{Op: OpRet})
	vp := mkProg(vec, nil)
	resVec := run(t, vp, 1)

	if resVec.Cycles >= resScalar.Cycles {
		t.Errorf("vector (%d cycles) not faster than scalar (%d cycles)", resVec.Cycles, resScalar.Cycles)
	}
	speedup := float64(resScalar.Cycles) / float64(resVec.Cycles)
	if speedup < 2 {
		t.Errorf("vector speedup only %.2fx", speedup)
	}
}

func TestIntFPOverlap(t *testing.T) {
	// §6: independent integer and floating point instructions overlap.
	// Dependent chain: each FADD feeds the next → serialized.
	depChain := []Instr{
		{Op: OpFldi, Rd: 10, FImm: 1},
		{Op: OpFadd, Rd: 10, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 10, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 10, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 10, Rs1: 10, Rs2: 10},
		{Op: OpRet},
	}
	dep := run(t, mkProg(depChain, nil), 1)

	// Independent FP ops pipeline at one per cycle.
	indep := []Instr{
		{Op: OpFldi, Rd: 10, FImm: 1},
		{Op: OpFadd, Rd: 11, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 12, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 13, Rs1: 10, Rs2: 10},
		{Op: OpFadd, Rd: 14, Rs1: 10, Rs2: 10},
		{Op: OpRet},
	}
	ind := run(t, mkProg(indep, nil), 1)
	if ind.Cycles >= dep.Cycles {
		t.Errorf("independent FP (%d) not faster than dependent chain (%d)", ind.Cycles, dep.Cycles)
	}
}

func TestParallelRegionScaling(t *testing.T) {
	// Store 0..255 into an array, cyclically distributed by PID; 2 procs
	// should take roughly half the cycles of 1.
	body := func() []Instr {
		return []Instr{
			// r10 = pid, r11 = nproc
			{Op: OpParBegin},
			{Op: OpPid, Rd: 10},
			{Op: OpNproc, Rd: 11},
			// i = pid
			{Op: OpMov, Rd: 12, Rs1: 10},
			// L: if i >= 256 goto E
			{Op: OpLdi, Rd: 13, Imm: 256},
			{Op: OpCmpGe, Rd: 14, Rs1: 12, Rs2: 13},
			{Op: OpBnez, Rs1: 14, Sym: "E"},
			// mem[4096 + 4*i] = i
			{Op: OpMuli, Rd: 15, Rs1: 12, Imm: 4},
			{Op: OpAddi, Rd: 15, Rs1: 15, Imm: 4096},
			{Op: OpSt4, Rs1: 15, Rs2: 12},
			// i += nproc
			{Op: OpAdd, Rd: 12, Rs1: 12, Rs2: 11},
			{Op: OpJmp, Sym: "L"},
			{Op: OpParEnd}, // label E points here
			{Op: OpRet},
		}
	}
	labels := map[string]int{"L": 4, "E": 12}

	p1 := mkProg(body(), labels)
	r1 := run(t, p1, 1)
	p2 := mkProg(body(), labels)
	m2 := NewMachine(p2, 2)
	r2, err := m2.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	// Functional: every slot written.
	for i := int64(0); i < 256; i++ {
		got := int64(int32(uint32(m2.mem[4096+4*i]) | uint32(m2.mem[4096+4*i+1])<<8 |
			uint32(m2.mem[4096+4*i+2])<<16 | uint32(m2.mem[4096+4*i+3])<<24))
		if got != i {
			t.Fatalf("mem[%d] = %d", i, got)
		}
	}
	sp := float64(r1.Cycles) / float64(r2.Cycles)
	if sp < 1.5 || sp > 2.5 {
		t.Errorf("2-processor speedup %.2f (p1=%d p2=%d)", sp, r1.Cycles, r2.Cycles)
	}
}

func TestPrintfIntrinsic(t *testing.T) {
	// Build "n=%d x=%g s=%s\n" in memory at 4096, "hi" at 4200.
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4096},
		{Op: OpArg, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: 42},
		{Op: OpArg, Rs1: 11},
		{Op: OpFldi, Rd: 12, FImm: 2.5},
		{Op: OpFarg, Rs1: 12},
		{Op: OpLdi, Rd: 13, Imm: 4200},
		{Op: OpArg, Rs1: 13},
		{Op: OpCall, Sym: "printf"},
		{Op: OpRet},
	}, nil)
	m := NewMachine(prog, 1)
	copy(m.mem[4096:], "n=%d x=%g s=%s!\x00")
	copy(m.mem[4200:], "hi\x00")
	res, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "n=42 x=2.5 s=hi!" {
		t.Errorf("output %q", res.Output)
	}
}

func TestMemoryFault(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: -4},
		{Op: OpLd4, Rd: 11, Rs1: 10},
		{Op: OpRet},
	}, nil)
	m := NewMachine(prog, 1)
	if _, err := m.Run("main"); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("expected memory fault, got %v", err)
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpJmp, Sym: "L"},
	}, map[string]int{"L": 0})
	m := NewMachine(prog, 1)
	m.MaxInstrs = 10000
	if _, err := m.Run("main"); err == nil {
		t.Error("expected budget error")
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 1},
		{Op: OpLdi, Rd: 11, Imm: 0},
		{Op: OpDiv, Rd: 12, Rs1: 10, Rs2: 11},
		{Op: OpRet},
	}, nil)
	m := NewMachine(prog, 1)
	if _, err := m.Run("main"); err == nil {
		t.Error("expected division trap")
	}
}

func TestMFLOPSComputation(t *testing.T) {
	r := Result{Cycles: 16_000_000, FlopCount: 8_000_000}
	// 16M cycles at 16 MHz = 1 second; 8M flops → 8 MFLOPS.
	if got := r.MFLOPS(); math.Abs(got-8) > 1e-9 {
		t.Errorf("MFLOPS = %g", got)
	}
}

func putF32(mem []byte, addr int64, v float32) {
	bits := math.Float32bits(v)
	mem[addr] = byte(bits)
	mem[addr+1] = byte(bits >> 8)
	mem[addr+2] = byte(bits >> 16)
	mem[addr+3] = byte(bits >> 24)
}

func getF32(mem []byte, addr int64) float32 {
	bits := uint32(mem[addr]) | uint32(mem[addr+1])<<8 | uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24
	return math.Float32frombits(bits)
}
