package titan

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DOACROSS synchronization state (arXiv:1211.4101). Each parallel region
// that contains post/wait instructions gets one syncState shared by its
// processors. Cells are monotone-max registers: post publishes a value
// that can only grow the cell, and wait blocks until the cell reaches a
// threshold. That monotonicity is what keeps the fast engine's
// goroutine-per-processor execution bit-identical to the reference
// interpreter's deterministic round-robin: which post first satisfies a
// given threshold is a property of the producer's program order, not of
// the host schedule, so the simulated wait-release time below is
// schedule-independent for the single-producer/single-consumer cell
// shapes the compiler generates (the same stance DESIGN.md takes for
// DOALL regions' disjoint stores).
//
// Timing model: a post behaves like a store (latency 1) and records the
// cycle its value became visible. A wait behaves like a load (latency 6)
// whose data is the awaited cell: it completes at
//
//	max(own done, T + waitLatency)
//
// where T is the completion cycle of the first post that raised the cell
// to the threshold. The difference beyond the wait's own latency is
// accounted as sync-stall cycles on the waiting processor.

// waitLatency is the load-like latency of a wait once its post has
// arrived (the cell read crosses the shared-memory path like any load).
const waitLatency = 6

// syncEntry is one recorded post: the value published and the simulated
// cycle it completed on the posting processor.
type syncEntry struct {
	val int64
	t   int64
}

// syncCell is one synchronization cell.
type syncCell struct {
	val  int64 // high-water mark; math.MinInt64 when never posted
	hist []syncEntry
}

// syncState is the per-region synchronization fabric.
type syncState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cells [NumSyncCells]syncCell
	// procs/waiting/done/waiters drive distributed deadlock detection in
	// the fast engine: when every processor still in the region is
	// blocked and no blocked processor's condition is already met, no
	// post can ever arrive.
	procs   int
	waiting int
	done    int
	dead    bool
	waiters map[*syncWaiter]struct{}
}

// syncWaiter records what a processor currently inside waitFast is
// blocked on, so deadlock detection can tell "blocked forever" apart
// from "released but not yet rescheduled by the host".
type syncWaiter struct {
	cell int
	th   int64
}

func newSyncState(procs int) *syncState {
	ss := &syncState{procs: procs, waiters: make(map[*syncWaiter]struct{})}
	ss.cond = sync.NewCond(&ss.mu)
	for i := range ss.cells {
		ss.cells[i].val = math.MinInt64
	}
	return ss
}

// post publishes val into cell at completion cycle t. Values that do not
// raise the cell's high-water mark change nothing (they could not release
// any wait the earlier posts would not). The mutex acquire/release also
// gives the release/acquire ordering that makes the posting processor's
// slab stores visible to a processor its post releases.
func (ss *syncState) post(cell int, val, t int64) {
	ss.mu.Lock()
	cl := &ss.cells[cell]
	if val > cl.val {
		cl.val = val
		cl.hist = append(cl.hist, syncEntry{val: val, t: t})
	}
	ss.mu.Unlock()
	ss.cond.Broadcast()
}

// releaseTime returns the completion cycle of the first post that raised
// cell to at least th. The history is sorted by value (posts only append
// when they raise the mark), so the first satisfying entry is found by
// binary search. Must be called with the cell known satisfied.
func (cl *syncCell) releaseTime(th int64) int64 {
	i := sort.Search(len(cl.hist), func(i int) bool { return cl.hist[i].val >= th })
	return cl.hist[i].t
}

// peek reports whether cell has reached th, and the satisfying post's
// completion cycle when it has. The reference interpreter polls with
// this before charging the instruction.
func (ss *syncState) peek(cell int, th int64) (int64, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cl := &ss.cells[cell]
	if cl.val < th {
		return 0, false
	}
	return cl.releaseTime(th), true
}

// waitFast blocks until cell reaches th and returns the satisfying
// post's completion cycle. If every processor still in the region is
// blocked (or finished), no post can arrive and the region is declared
// deadlocked.
func (ss *syncState) waitFast(cell int, th int64, fname string) (int64, error) {
	ss.mu.Lock()
	w := &syncWaiter{cell: cell, th: th}
	ss.waiters[w] = struct{}{}
	for ss.cells[cell].val < th && !ss.dead {
		if ss.waiting+ss.done+1 >= ss.procs && !ss.anySatisfiedLocked() {
			ss.dead = true
			ss.cond.Broadcast()
			break
		}
		ss.waiting++
		ss.cond.Wait()
		ss.waiting--
	}
	delete(ss.waiters, w)
	if ss.cells[cell].val < th {
		ss.mu.Unlock()
		return 0, fmt.Errorf("titan: sync deadlock in parallel region in %s", fname)
	}
	t := ss.cells[cell].releaseTime(th)
	ss.mu.Unlock()
	return t, nil
}

// anySatisfiedLocked reports whether some processor currently inside a
// wait already has its condition met — it was released by a post but the
// host has not rescheduled it yet, so the region can still make progress
// and declaring deadlock would be a false positive. Caller holds ss.mu.
func (ss *syncState) anySatisfiedLocked() bool {
	for w := range ss.waiters {
		if ss.cells[w.cell].val >= w.th {
			return true
		}
	}
	return false
}

// finish marks one processor as out of the region (completed or errored)
// for deadlock accounting.
func (ss *syncState) finish() {
	ss.mu.Lock()
	ss.done++
	ss.mu.Unlock()
	ss.cond.Broadcast()
}

// hasSyncOps reports whether the instruction range [start, end) contains
// post/wait, i.e. whether a parallel region needs a synchronization
// fabric and the blocking execution paths.
func hasSyncOps(instrs []Instr, start, end int) bool {
	for i := start; i < end && i < len(instrs); i++ {
		switch instrs[i].Op {
		case OpPost, OpWait:
			return true
		}
	}
	return false
}
