// Package titan models the Ardent Titan: a multiprocessor whose every
// processor couples a RISC integer unit, a deeply pipelined floating-point
// unit that also executes all vector instructions, a large vector register
// file, and a pipelined path to memory shared by up to four processors
// (§2).
//
// The simulator is functional plus a scoreboard timing model: each
// register carries a ready-time, each unit (integer, floating point,
// memory) an issue-time, and instructions dispatch in order, one per
// cycle at best, stalling on operand or unit availability. Independent
// integer and floating-point instructions therefore overlap — the §6
// effect dependence-informed scheduling exploits — and vector instructions
// cost startup + length on their unit, keeping the pipeline full (§2).
package titan

import (
	"fmt"
	"strings"
	"sync"
)

// Op is an instruction opcode.
type Op int

// Opcodes.
const (
	// Integer unit.
	OpNop Op = iota
	OpLdi    // rd ← imm
	OpMov    // rd ← rs1
	OpAdd    // rd ← rs1 + rs2
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpAddi // rd ← rs1 + imm
	OpMuli // rd ← rs1 * imm
	OpNeg
	OpNot  // logical not (0/1)
	OpBnot // bitwise complement
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe
	OpPid   // rd ← processor id (within a parallel region)
	OpNproc // rd ← processor count

	// Memory.
	OpLd1 // rd ← sext(mem1[rs1+imm])
	OpLd2
	OpLd4
	OpSt1 // mem[rs1+imm] ← rs2
	OpSt2
	OpSt4
	OpFld4 // fd ← mem.f32[rs1+imm]
	OpFld8
	OpFst4 // mem.f32[rs1+imm] ← fs2
	OpFst8

	// Floating point unit (scalar).
	OpFldi // fd ← fimm
	OpFmov
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg
	OpFcmpEq // rd ← fs1 cmp fs2
	OpFcmpNe
	OpFcmpLt
	OpFcmpLe
	OpFcmpGt
	OpFcmpGe
	OpCvtIF // fd ← float(rs1)
	OpCvtFI // rd ← int(fs1)

	// Vector unit (executed by the FP unit, §2). Vd/Vs are vector
	// register file slot indices; the active length comes from the VL
	// register (OpVsetl).
	OpVsetl // VL ← rs1 (clamped to MaxVL)
	OpVld   // vrf[vd..] ← mem[rs1 + k·rs2], element kind in Imm
	OpVst   // mem[rs1 + k·rs2] ← vrf[vd..]
	OpVadd  // vd ← vs1 + vs2
	OpVsub
	OpVmul
	OpVdiv
	OpVadds // vd ← vs1 + fs2 (scalar broadcast)
	OpVsubs
	OpVsubsr // vd ← fs2 - vs1
	OpVmuls
	OpVdivs
	OpVdivsr
	OpVmov
	OpVbcast // vd[k] ← fs1 for all lanes

	// Control.
	OpJmp  // pc ← label
	OpBeqz // if rs1 == 0 branch
	OpBnez
	OpCall // call function (register-windowed)
	OpRet
	OpArg // append rs1/fs1 to the outgoing argument list
	OpFarg
	OpHalt

	// Parallel region markers (§2: spreading loop iterations among
	// processors). The enclosed code reads OpPid/OpNproc to pick its
	// share of iterations.
	OpParBegin
	OpParEnd

	// DOACROSS synchronization (arXiv:1211.4101): post publishes r[rs2]
	// into sync cell r[rs1] (monotone max), wait blocks until cell r[rs1]
	// reaches at least r[rs2]. Valid only inside a parallel region; the
	// cells live per region and reset at par.begin.
	OpPost
	OpWait

	// Vector mask unit: compares produce per-lane predicates into one of
	// NumMaskRegs mask registers; masked memory and arithmetic variants
	// suppress the effects of inactive lanes but charge the same
	// timing-table cycles as their dense forms (the pipeline still streams
	// every lane — masking gates the write-back, not the issue).
	OpVcmpLt  // mk[rd] ← vs1 < vs2, per lane
	OpVcmpLe  // mk[rd] ← vs1 <= vs2
	OpVcmpEq  // mk[rd] ← vs1 == vs2
	OpVcmpNe  // mk[rd] ← vs1 != vs2
	OpVcmpLts // mk[rd] ← vs1 < fs2 (scalar broadcast compare)
	OpVcmpLes // mk[rd] ← vs1 <= fs2
	OpVcmpEqs // mk[rd] ← vs1 == fs2
	OpVcmpNes // mk[rd] ← vs1 != fs2
	OpMand    // mk[rd] ← mk[rs1] & mk[rs2]
	OpMor     // mk[rd] ← mk[rs1] | mk[rs2]
	OpMnot    // mk[rd] ← ~mk[rs1] (over the active VL lanes)
	// Masked memory and arithmetic: the governing mask register index
	// rides in Imm bits 8.. (Imm>>8); Imm's low 8 bits keep whatever the
	// dense form used there (the element kind for vld.m/vst.m, zero for
	// arithmetic). Inactive lanes load nothing, store nothing, and keep
	// the destination slot's prior contents.
	OpVldm  // vrf[vd..] ←(mask) mem[rs1 + k·rs2]
	OpVstm  // mem[rs1 + k·rs2] ←(mask) vrf[vd..]
	OpVaddm // vd ←(mask) vs1 + vs2
	OpVsubm
	OpVmulm
	OpVdivm
)

// NumMaskRegs is the size of the vector-mask register file: each mask
// register holds one predicate bit per vector lane (MaxVL lanes).
const NumMaskRegs = 8

// maskWords is the per-register bitset length (MaxVL lanes / 64).
const maskWords = MaxVL / 64

// NumSyncCells is the number of per-region synchronization cells post and
// wait may address (r[rs1] must be in [0, NumSyncCells)).
const NumSyncCells = 256

// Element kinds for vector memory operations (Instr.Imm).
const (
	ElemF32 = 4
	ElemF64 = 8
	ElemI32 = 1 // int32 elements, width 4
)

// MaxVL is the hardware strip length: the vector register file holds 8192
// words addressable as vectors of any length and stride; the compiler's
// strips use 32-element sections.
const MaxVL = 2048

// VRFWords is the vector register file size in words.
const VRFWords = 8192

// Instr is one instruction.
type Instr struct {
	Op   Op
	Rd   int // destination register / vector slot
	Rs1  int
	Rs2  int
	Imm  int64
	FImm float64
	Sym  string // label or callee
}

var opNames = map[Op]string{
	OpNop: "nop", OpLdi: "ldi", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddi: "addi", OpMuli: "muli",
	OpNeg: "neg", OpNot: "not", OpBnot: "bnot",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpGt: "cmpgt", OpCmpGe: "cmpge", OpPid: "pid", OpNproc: "nproc",
	OpLd1: "ld1", OpLd2: "ld2", OpLd4: "ld4",
	OpSt1: "st1", OpSt2: "st2", OpSt4: "st4",
	OpFld4: "fld4", OpFld8: "fld8", OpFst4: "fst4", OpFst8: "fst8",
	OpFldi: "fldi", OpFmov: "fmov", OpFadd: "fadd", OpFsub: "fsub",
	OpFmul: "fmul", OpFdiv: "fdiv", OpFneg: "fneg",
	OpFcmpEq: "fcmpeq", OpFcmpNe: "fcmpne", OpFcmpLt: "fcmplt",
	OpFcmpLe: "fcmple", OpFcmpGt: "fcmpgt", OpFcmpGe: "fcmpge",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpVsetl: "vsetl", OpVld: "vld", OpVst: "vst",
	OpVadd: "vadd", OpVsub: "vsub", OpVmul: "vmul", OpVdiv: "vdiv",
	OpVadds: "vadds", OpVsubs: "vsubs", OpVsubsr: "vsubsr",
	OpVmuls: "vmuls", OpVdivs: "vdivs", OpVdivsr: "vdivsr", OpVmov: "vmov",
	OpVbcast: "vbcast",
	OpJmp:    "jmp", OpBeqz: "beqz", OpBnez: "bnez", OpCall: "call",
	OpRet: "ret", OpArg: "arg", OpFarg: "farg", OpHalt: "halt",
	OpParBegin: "par.begin", OpParEnd: "par.end",
	OpPost: "post", OpWait: "wait",
	OpVcmpLt: "vcmp.lt", OpVcmpLe: "vcmp.le", OpVcmpEq: "vcmp.eq",
	OpVcmpNe: "vcmp.ne", OpVcmpLts: "vcmp.lts", OpVcmpLes: "vcmp.les",
	OpVcmpEqs: "vcmp.eqs", OpVcmpNes: "vcmp.nes",
	OpMand: "mand", OpMor: "mor", OpMnot: "mnot",
	OpVldm: "vld.m", OpVstm: "vst.m",
	OpVaddm: "vadd.m", OpVsubm: "vsub.m", OpVmulm: "vmul.m", OpVdivm: "vdiv.m",
}

// String disassembles one instruction.
func (in Instr) String() string {
	n := opNames[in.Op]
	switch in.Op {
	case OpNop, OpRet, OpHalt, OpParBegin, OpParEnd:
		return n
	case OpLdi:
		return fmt.Sprintf("%s r%d, %d", n, in.Rd, in.Imm)
	case OpFldi:
		return fmt.Sprintf("%s f%d, %g", n, in.Rd, in.FImm)
	case OpMov, OpNeg, OpNot, OpBnot:
		return fmt.Sprintf("%s r%d, r%d", n, in.Rd, in.Rs1)
	case OpFmov, OpFneg:
		return fmt.Sprintf("%s f%d, f%d", n, in.Rd, in.Rs1)
	case OpAddi, OpMuli:
		return fmt.Sprintf("%s r%d, r%d, %d", n, in.Rd, in.Rs1, in.Imm)
	case OpLd1, OpLd2, OpLd4:
		return fmt.Sprintf("%s r%d, %d(r%d)", n, in.Rd, in.Imm, in.Rs1)
	case OpSt1, OpSt2, OpSt4:
		return fmt.Sprintf("%s r%d, %d(r%d)", n, in.Rs2, in.Imm, in.Rs1)
	case OpFld4, OpFld8:
		return fmt.Sprintf("%s f%d, %d(r%d)", n, in.Rd, in.Imm, in.Rs1)
	case OpFst4, OpFst8:
		return fmt.Sprintf("%s f%d, %d(r%d)", n, in.Rs2, in.Imm, in.Rs1)
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return fmt.Sprintf("%s f%d, f%d, f%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpFcmpEq, OpFcmpNe, OpFcmpLt, OpFcmpLe, OpFcmpGt, OpFcmpGe:
		return fmt.Sprintf("%s r%d, f%d, f%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpCvtIF:
		return fmt.Sprintf("%s f%d, r%d", n, in.Rd, in.Rs1)
	case OpCvtFI:
		return fmt.Sprintf("%s r%d, f%d", n, in.Rd, in.Rs1)
	case OpVsetl:
		return fmt.Sprintf("%s r%d", n, in.Rs1)
	case OpPost, OpWait:
		return fmt.Sprintf("%s r%d, r%d", n, in.Rs1, in.Rs2)
	case OpVld, OpVst:
		return fmt.Sprintf("%s v%d, (r%d), r%d, ek%d", n, in.Rd, in.Rs1, in.Rs2, in.Imm)
	case OpVldm, OpVstm:
		return fmt.Sprintf("%s v%d, (r%d), r%d, ek%d, m%d", n, in.Rd, in.Rs1, in.Rs2, in.Imm&0xff, in.Imm>>8)
	case OpVadd, OpVsub, OpVmul, OpVdiv:
		return fmt.Sprintf("%s v%d, v%d, v%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpVaddm, OpVsubm, OpVmulm, OpVdivm:
		return fmt.Sprintf("%s v%d, v%d, v%d, m%d", n, in.Rd, in.Rs1, in.Rs2, in.Imm>>8)
	case OpVadds, OpVsubs, OpVsubsr, OpVmuls, OpVdivs, OpVdivsr:
		return fmt.Sprintf("%s v%d, v%d, f%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpVcmpLt, OpVcmpLe, OpVcmpEq, OpVcmpNe:
		return fmt.Sprintf("%s m%d, v%d, v%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpVcmpLts, OpVcmpLes, OpVcmpEqs, OpVcmpNes:
		return fmt.Sprintf("%s m%d, v%d, f%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpMand, OpMor:
		return fmt.Sprintf("%s m%d, m%d, m%d", n, in.Rd, in.Rs1, in.Rs2)
	case OpMnot:
		return fmt.Sprintf("%s m%d, m%d", n, in.Rd, in.Rs1)
	case OpVmov:
		return fmt.Sprintf("%s v%d, v%d", n, in.Rd, in.Rs1)
	case OpVbcast:
		return fmt.Sprintf("%s v%d, f%d", n, in.Rd, in.Rs1)
	case OpJmp:
		return fmt.Sprintf("%s %s", n, in.Sym)
	case OpBeqz, OpBnez:
		return fmt.Sprintf("%s r%d, %s", n, in.Rs1, in.Sym)
	case OpCall:
		return fmt.Sprintf("%s %s", n, in.Sym)
	case OpArg:
		return fmt.Sprintf("%s r%d", n, in.Rs1)
	case OpFarg:
		return fmt.Sprintf("%s f%d", n, in.Rs1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", n, in.Rd, in.Rs1, in.Rs2)
	}
}

// Func is one compiled function.
type Func struct {
	Name   string
	Instrs []Instr
	Labels map[string]int // label → instruction index
}

// Program is a linked executable image.
type Program struct {
	Funcs map[string]*Func
	// Data is the initial memory image for globals.
	Data []byte
	// DataBase is the address where Data is loaded.
	DataBase int64
	// GlobalAddr maps global names to addresses (for tests and loaders).
	GlobalAddr map[string]int64
	// MemSize is the total memory to allocate (stack at top).
	MemSize int64

	// Decoded form for the fast engine (engine.go), built once on first
	// Run and then shared read-only by every Machine simulating this
	// program — Programs are always handled by pointer. Mutating Funcs
	// after a Run is not supported.
	decOnce sync.Once
	decoded map[string]*dfunc
}

// Disassemble renders a function listing.
func (f *Func) Disassemble() string {
	var sb strings.Builder
	rev := map[int][]string{}
	for l, i := range f.Labels {
		rev[i] = append(rev[i], l)
	}
	fmt.Fprintf(&sb, "%s:\n", f.Name)
	for i, in := range f.Instrs {
		for _, l := range rev[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "    %s\n", in)
	}
	for _, l := range rev[len(f.Instrs)] {
		fmt.Fprintf(&sb, "%s:\n", l)
	}
	return sb.String()
}

// Calling convention: arguments in r8.. / f8.., results in r2 / f2. The
// hardware provides register windows: CALL snapshots the register file and
// RET restores everything except the result registers.
const (
	RegSP     = 1 // stack pointer
	RegRetInt = 2
	RegRetFlt = 2
	RegArg0   = 8 // first integer argument register
	FRegArg0  = 8 // first float argument register
	// The Titan's register set is unusually large (§2: the vector register
	// file doubles as 8192 scalar registers); the model exposes 64 of
	// each kind to the compiler.
	NumIntRegs = 64
	NumFltRegs = 64
)
