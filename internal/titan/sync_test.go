package titan

import (
	"strings"
	"testing"
)

// doacrossProg hand-assembles the DOACROSS shape codegen emits for a
// first-order recurrence a[i] = a[i-1] + 1 over n iterations, pipelined
// cyclically across the processors with post/wait on a distance-1
// dependence: each processor posts its iteration number to its own cell
// after the store and waits on its predecessor's cell before the load.
func doacrossProg(n int64) *Program {
	const base = 8192
	instrs := []Instr{
		{Op: OpLdi, Rd: 13, Imm: n - 1}, // limit
		{Op: OpParBegin},
		{Op: OpPid, Rd: 10},
		{Op: OpNproc, Rd: 11},
		{Op: OpLdi, Rd: 21, Imm: 0},
		{Op: OpMov, Rd: 17, Rs1: 10}, // post cell = pid
		// wait cell = (pid - 1 + np) mod np
		{Op: OpAddi, Rd: 14, Rs1: 10, Imm: -1},
		{Op: OpAdd, Rd: 14, Rs1: 14, Rs2: 11},
		{Op: OpRem, Rd: 14, Rs1: 14, Rs2: 11},
		{Op: OpSub, Rd: 18, Rs1: 14, Rs2: 10}, // 0 when waiting on self
		{Op: OpMov, Rd: 12, Rs1: 10},          // i = pid
		// Ltop:
		{Op: OpCmpGt, Rd: 16, Rs1: 12, Rs2: 13},
		{Op: OpBnez, Rs1: 16, Sym: "Lend"},
		{Op: OpBeqz, Rs1: 18, Sym: "Lskipw"}, // self: program order suffices
		{Op: OpAddi, Rd: 15, Rs1: 12, Imm: -1},
		{Op: OpCmpLt, Rd: 16, Rs1: 15, Rs2: 21},
		{Op: OpBnez, Rs1: 16, Sym: "Lskipw"}, // first iteration: no producer
		{Op: OpWait, Rs1: 14, Rs2: 15},
		// Lskipw:
		{Op: OpMuli, Rd: 20, Rs1: 12, Imm: 4},
		{Op: OpAddi, Rd: 20, Rs1: 20, Imm: base},
		{Op: OpLd4, Rd: 22, Rs1: 20, Imm: -4},
		{Op: OpAddi, Rd: 23, Rs1: 22, Imm: 1},
		{Op: OpSt4, Rs1: 20, Rs2: 23},
		{Op: OpPost, Rs1: 17, Rs2: 12}, // publish iteration i
		{Op: OpAdd, Rd: 12, Rs1: 12, Rs2: 11},
		{Op: OpJmp, Sym: "Ltop"},
		// Lend: sentinel so coarsened or finished producers release all
		{Op: OpLdi, Rd: 24, Imm: 1 << 62},
		{Op: OpPost, Rs1: 17, Rs2: 24},
		{Op: OpParEnd},
		{Op: OpLdi, Rd: 20, Imm: base + (n-1)*4},
		{Op: OpLd4, Rd: RegRetInt, Rs1: 20},
		{Op: OpRet},
	}
	return mkProg(instrs, map[string]int{"Ltop": 11, "Lskipw": 18, "Lend": 27})
}

// TestSyncDoacrossDifferential pins the fast engine to the reference on
// a post/wait pipelined recurrence at every processor count.
func TestSyncDoacrossDifferential(t *testing.T) {
	const n = 200
	prog := doacrossProg(n)
	for _, procs := range []int{1, 2, 4} {
		fast, err := NewMachine(prog, procs).Run("main")
		if err != nil {
			t.Fatalf("p=%d fast: %v", procs, err)
		}
		ref, err := NewMachine(prog, procs).RunReference("main")
		if err != nil {
			t.Fatalf("p=%d ref: %v", procs, err)
		}
		if fast != ref {
			t.Errorf("p=%d: fast %+v != ref %+v", procs, fast, ref)
		}
		if fast.ExitCode != n {
			t.Errorf("p=%d: recurrence result %d, want %d", procs, fast.ExitCode, n)
		}
	}
}

// TestSyncDoacrossStalls checks the pipelined run actually charges
// sync-stall cycles at p>1 (the recurrence is a full serial chain, so
// processors must block) and surfaces them per processor.
func TestSyncDoacrossStalls(t *testing.T) {
	res, err := NewMachine(doacrossProg(200), 4).Run("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.SyncStalls <= 0 {
		t.Errorf("SyncStalls = %d, want > 0", res.SyncStalls)
	}
	var perProc int64
	for _, p := range res.Procs {
		perProc += p.SyncStall
		if p.Busy < 0 || p.SyncStall < 0 || p.JoinIdle < 0 {
			t.Errorf("negative proc stat: %+v", p)
		}
	}
	if perProc != res.SyncStalls {
		t.Errorf("per-proc stalls %d != total %d", perProc, res.SyncStalls)
	}
}

// TestSyncDeterminism runs the pipelined workload repeatedly on the fast
// engine: the goroutine schedule must never leak into the Result.
func TestSyncDeterminism(t *testing.T) {
	prog := doacrossProg(150)
	first, err := NewMachine(prog, 4).Run("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 10; i++ {
		res, err := NewMachine(prog, 4).Run("main")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res != first {
			t.Fatalf("run %d diverged: %+v != %+v", i, res, first)
		}
	}
}

// TestSyncDeadlock: every processor waits on a cell nothing ever posts.
// Both engines must detect it and name the region, not hang.
func TestSyncDeadlock(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpParBegin},
		{Op: OpLdi, Rd: 10, Imm: 0},
		{Op: OpLdi, Rd: 11, Imm: 1},
		{Op: OpWait, Rs1: 10, Rs2: 11},
		{Op: OpParEnd},
		{Op: OpRet},
	}, nil)
	for _, procs := range []int{1, 2, 4} {
		_, errFast := NewMachine(prog, procs).Run("main")
		_, errRef := NewMachine(prog, procs).RunReference("main")
		for name, err := range map[string]error{"fast": errFast, "ref": errRef} {
			if err == nil || !strings.Contains(err.Error(), "sync deadlock in parallel region") {
				t.Errorf("p=%d %s: err = %v, want sync deadlock", procs, name, err)
			}
		}
	}
}

// TestSyncMalformedOperands: cell indices outside [0, NumSyncCells)
// fault with the named sync access, identically on both engines.
func TestSyncMalformedOperands(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		cell int64
		want string
	}{
		{"post-high", OpPost, NumSyncCells, "(sync post, size 8)"},
		{"post-neg", OpPost, -1, "(sync post, size 8)"},
		{"wait-high", OpWait, NumSyncCells + 7, "(sync wait, size 8)"},
		{"wait-neg", OpWait, -3, "(sync wait, size 8)"},
	}
	for _, tc := range cases {
		prog := mkProg([]Instr{
			{Op: OpParBegin},
			{Op: OpLdi, Rd: 10, Imm: tc.cell},
			{Op: OpLdi, Rd: 11, Imm: 0},
			{Op: tc.op, Rs1: 10, Rs2: 11},
			{Op: OpParEnd},
			{Op: OpRet},
		}, nil)
		_, errFast := NewMachine(prog, 2).Run("main")
		_, errRef := NewMachine(prog, 2).RunReference("main")
		for name, err := range map[string]error{"fast": errFast, "ref": errRef} {
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s %s: err = %v, want fault %q", tc.name, name, err, tc.want)
			}
		}
		if errFast.Error() != errRef.Error() {
			t.Errorf("%s: fault text diverges: fast %q, ref %q", tc.name, errFast, errRef)
		}
	}
}

// TestSyncOutsideRegion: post/wait are region-only instructions.
func TestSyncOutsideRegion(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want string
	}{
		{OpPost, "post outside parallel region"},
		{OpWait, "wait outside parallel region"},
	} {
		prog := mkProg([]Instr{
			{Op: OpLdi, Rd: 10, Imm: 0},
			{Op: OpLdi, Rd: 11, Imm: 0},
			{Op: tc.op, Rs1: 10, Rs2: 11},
			{Op: OpRet},
		}, nil)
		_, errFast := NewMachine(prog, 2).Run("main")
		_, errRef := NewMachine(prog, 2).RunReference("main")
		for name, err := range map[string]error{"fast": errFast, "ref": errRef} {
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%v %s: err = %v, want %q", tc.op, name, err, tc.want)
			}
		}
	}
}

// TestSyncPlainRegionStats: a sync-free parallel region still reports
// the per-processor busy/idle breakdown, with zero stall cycles.
func TestSyncPlainRegionStats(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpParBegin},
		{Op: OpPid, Rd: 10},
		{Op: OpMuli, Rd: 11, Rs1: 10, Imm: 100},
		{Op: OpParEnd},
		{Op: OpRet},
	}, nil)
	for _, procs := range []int{1, 2, 4} {
		fast, err := NewMachine(prog, procs).Run("main")
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		ref, err := NewMachine(prog, procs).RunReference("main")
		if err != nil {
			t.Fatalf("p=%d ref: %v", procs, err)
		}
		if fast != ref {
			t.Errorf("p=%d: fast %+v != ref %+v", procs, fast, ref)
		}
		if fast.SyncStalls != 0 {
			t.Errorf("p=%d: stalls %d in sync-free region", procs, fast.SyncStalls)
		}
		for pid := 0; pid < procs; pid++ {
			if fast.Procs[pid].Busy <= 0 {
				t.Errorf("p=%d: pid %d busy %d, want > 0", procs, pid, fast.Procs[pid].Busy)
			}
		}
	}
}
