package titan

import (
	"math"
	"strings"
	"testing"
)

func TestDisassembleAllOpcodes(t *testing.T) {
	// Every opcode must disassemble to its mnemonic (guards the opNames
	// table against gaps).
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpLdi, Rd: 1, Imm: 5}, "ldi r1, 5"},
		{Instr{Op: OpFldi, Rd: 2, FImm: 1.5}, "fldi f2, 1.5"},
		{Instr{Op: OpMov, Rd: 1, Rs1: 2}, "mov r1, r2"},
		{Instr{Op: OpFmov, Rd: 1, Rs1: 2}, "fmov f1, f2"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Instr{Op: OpMuli, Rd: 1, Rs1: 2, Imm: 8}, "muli r1, r2, 8"},
		{Instr{Op: OpLd4, Rd: 1, Rs1: 2, Imm: 12}, "ld4 r1, 12(r2)"},
		{Instr{Op: OpSt2, Rs1: 2, Rs2: 3, Imm: 6}, "st2 r3, 6(r2)"},
		{Instr{Op: OpFld8, Rd: 4, Rs1: 5}, "fld8 f4, 0(r5)"},
		{Instr{Op: OpFst4, Rs1: 5, Rs2: 6, Imm: 8}, "fst4 f6, 8(r5)"},
		{Instr{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Instr{Op: OpFcmpLt, Rd: 1, Rs1: 2, Rs2: 3}, "fcmplt r1, f2, f3"},
		{Instr{Op: OpCvtIF, Rd: 1, Rs1: 2}, "cvtif f1, r2"},
		{Instr{Op: OpCvtFI, Rd: 1, Rs1: 2}, "cvtfi r1, f2"},
		{Instr{Op: OpVsetl, Rs1: 3}, "vsetl r3"},
		{Instr{Op: OpVld, Rd: 0, Rs1: 1, Rs2: 2, Imm: ElemF32}, "vld v0, (r1), r2, ek4"},
		{Instr{Op: OpVadd, Rd: 0, Rs1: 64, Rs2: 128}, "vadd v0, v64, v128"},
		{Instr{Op: OpVmuls, Rd: 0, Rs1: 64, Rs2: 3}, "vmuls v0, v64, f3"},
		{Instr{Op: OpVmov, Rd: 0, Rs1: 64}, "vmov v0, v64"},
		{Instr{Op: OpVbcast, Rd: 0, Rs1: 3}, "vbcast v0, f3"},
		{Instr{Op: OpJmp, Sym: "L"}, "jmp L"},
		{Instr{Op: OpBeqz, Rs1: 1, Sym: "L"}, "beqz r1, L"},
		{Instr{Op: OpCall, Sym: "f"}, "call f"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpArg, Rs1: 2}, "arg r2"},
		{Instr{Op: OpFarg, Rs1: 2}, "farg f2"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpParBegin}, "par.begin"},
		{Instr{Op: OpParEnd}, "par.end"},
		{Instr{Op: OpNeg, Rd: 1, Rs1: 2}, "neg r1, r2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestFuncDisassembleWithLabels(t *testing.T) {
	f := &Func{Name: "f", Labels: map[string]int{"top": 1, "end": 2},
		Instrs: []Instr{
			{Op: OpLdi, Rd: 1, Imm: 0},
			{Op: OpAddi, Rd: 1, Rs1: 1, Imm: 1},
			{Op: OpRet},
		}}
	out := f.Disassemble()
	for _, want := range []string{"f:", "top:", "end:", "ldi r1, 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRemainingVectorOps(t *testing.T) {
	// Functional checks for the vector ops not covered elsewhere:
	// vsub, vdiv, vsubs, vsubsr, vdivs, vdivsr, vmov, i32/f64 elements.
	n := int64(8)
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: n},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: 4096},
		{Op: OpLdi, Rd: 13, Imm: 8},
		{Op: OpVld, Rd: 0, Rs1: 11, Rs2: 13, Imm: ElemF64},
		{Op: OpFldi, Rd: 20, FImm: 2},
		{Op: OpVsubs, Rd: 128, Rs1: 0, Rs2: 20},  // v - 2
		{Op: OpVsubsr, Rd: 256, Rs1: 0, Rs2: 20}, // 2 - v
		{Op: OpVdivs, Rd: 384, Rs1: 0, Rs2: 20},  // v / 2
		{Op: OpVdivsr, Rd: 512, Rs1: 0, Rs2: 20}, // 2 / v
		{Op: OpVsub, Rd: 640, Rs1: 128, Rs2: 256},
		{Op: OpVdiv, Rd: 768, Rs1: 0, Rs2: 0},
		{Op: OpVmov, Rd: 896, Rs1: 768},
		{Op: OpLdi, Rd: 12, Imm: 8192},
		{Op: OpVst, Rd: 640, Rs1: 12, Rs2: 13, Imm: ElemF64},
		{Op: OpLdi, Rd: 14, Imm: 12288},
		{Op: OpVst, Rd: 896, Rs1: 14, Rs2: 13, Imm: ElemF64},
		{Op: OpRet},
	}, nil)
	m := NewMachine(prog, 1)
	for i := int64(0); i < n; i++ {
		putF64(m.mem, 4096+8*i, float64(i+1))
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		v := float64(i + 1)
		wantSub := (v - 2) - (2 - v)
		if got := getF64(m.mem, 8192+8*i); got != wantSub {
			t.Errorf("vsub[%d] = %g want %g", i, got, wantSub)
		}
		if got := getF64(m.mem, 12288+8*i); got != 1 {
			t.Errorf("vdiv/vmov[%d] = %g want 1", i, got)
		}
	}
}

func TestVectorI32Elements(t *testing.T) {
	n := int64(4)
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: n},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: 4096},
		{Op: OpLdi, Rd: 13, Imm: 4},
		{Op: OpVld, Rd: 0, Rs1: 11, Rs2: 13, Imm: ElemI32},
		{Op: OpFldi, Rd: 20, FImm: 3},
		{Op: OpVmuls, Rd: 128, Rs1: 0, Rs2: 20},
		{Op: OpVst, Rd: 128, Rs1: 11, Rs2: 13, Imm: ElemI32},
		{Op: OpRet},
	}, nil)
	m := NewMachine(prog, 1)
	for i := int64(0); i < n; i++ {
		m.mem[4096+4*i] = byte(i + 1) // small ints, little endian
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		got := int64(int32(uint32(m.mem[4096+4*i]) | uint32(m.mem[4096+4*i+1])<<8 |
			uint32(m.mem[4096+4*i+2])<<16 | uint32(m.mem[4096+4*i+3])<<24))
		if got != 3*(i+1) {
			t.Errorf("i32[%d] = %d want %d", i, got, 3*(i+1))
		}
	}
}

func TestVsetlClamping(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 99999},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: -5},
		{Op: OpVsetl, Rs1: 11},
		{Op: OpRet},
	}, nil)
	if _, err := NewMachine(prog, 1).Run("main"); err != nil {
		t.Fatal(err)
	}
}

func TestVectorLoadFaults(t *testing.T) {
	prog := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 4},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: -64},
		{Op: OpLdi, Rd: 13, Imm: 4},
		{Op: OpVld, Rd: 0, Rs1: 11, Rs2: 13, Imm: ElemF32},
		{Op: OpRet},
	}, nil)
	if _, err := NewMachine(prog, 1).Run("main"); err == nil {
		t.Error("negative vector load address accepted")
	}
}

func TestUnknownLabelErrors(t *testing.T) {
	prog := mkProg([]Instr{{Op: OpJmp, Sym: "nowhere"}}, nil)
	if _, err := NewMachine(prog, 1).Run("main"); err == nil {
		t.Error("unknown label accepted")
	}
	prog2 := mkProg([]Instr{{Op: OpCall, Sym: "missing"}, {Op: OpRet}}, nil)
	if _, err := NewMachine(prog2, 1).Run("main"); err == nil {
		t.Error("undefined function accepted")
	}
}

func TestStrayParEnd(t *testing.T) {
	prog := mkProg([]Instr{{Op: OpParEnd}, {Op: OpRet}}, nil)
	if _, err := NewMachine(prog, 1).Run("main"); err == nil {
		t.Error("stray par.end accepted")
	}
	prog2 := mkProg([]Instr{{Op: OpParBegin}, {Op: OpRet}}, nil)
	if _, err := NewMachine(prog2, 1).Run("main"); err == nil {
		t.Error("unmatched par.begin accepted")
	}
}

func TestProcessorClamp(t *testing.T) {
	prog := mkProg([]Instr{{Op: OpNproc, Rd: RegRetInt}, {Op: OpRet}}, nil)
	m := NewMachine(prog, 99)
	r, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 4 {
		t.Errorf("nproc %d (clamp to 4)", r.ExitCode)
	}
	m0 := NewMachine(prog, 0)
	r0, _ := m0.Run("main")
	if r0.ExitCode != 1 {
		t.Errorf("nproc %d (clamp to 1)", r0.ExitCode)
	}
}

func putF64(mem []byte, addr int64, v float64) {
	bits := mathFloat64bitsT(v)
	for i := 0; i < 8; i++ {
		mem[addr+int64(i)] = byte(bits >> (8 * i))
	}
}

func getF64(mem []byte, addr int64) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(mem[addr+int64(i)]) << (8 * i)
	}
	return mathFloat64frombitsT(bits)
}

func mathFloat64bitsT(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombitsT(b uint64) float64 { return math.Float64frombits(b) }
