package titan

// Differential coverage of the vector-mask ISA: every masked program
// must produce a bit-identical Result on the fast engine and the
// reference interpreter at every supported processor count, masked ops
// must charge dense-timing cycles regardless of mask density, inactive
// lanes must have no memory effects, and a masked access that faults
// must name the faulting lane's own address.

import (
	"errors"
	"testing"
)

// maskImm builds the Imm field of a masked instruction: element kind in
// the low byte, governing mask register in bits 8+.
func maskImm(elem int64, mr int) int64 { return elem | int64(mr)<<8 }

// runBoth runs prog on the fast engine and the reference interpreter at
// procs processors and requires bit-identical Results.
func runBoth(t *testing.T, prog *Program, procs int) Result {
	t.Helper()
	fast, errF := NewMachine(prog, procs).Run("main")
	ref, errR := NewMachine(prog, procs).RunReference("main")
	if errF != nil || errR != nil {
		t.Fatalf("p=%d: engine err %v, reference err %v", procs, errF, errR)
	}
	if fast != ref {
		t.Fatalf("p=%d: engine %+v != reference %+v", procs, fast, ref)
	}
	return fast
}

// iotaProgPrefix sets VL=4, writes B[k]=k at 4096, A[k]=1.0 at 4128,
// and loads the iota into v0. Registers r11=&B, r12=4, r13=&A stay live.
func iotaProgPrefix() []Instr {
	return []Instr{
		{Op: OpLdi, Rd: 10, Imm: 4},
		{Op: OpVsetl, Rs1: 10},
		{Op: OpLdi, Rd: 11, Imm: 4096},
		{Op: OpLdi, Rd: 12, Imm: 4},
		{Op: OpFldi, Rd: 1, FImm: 0},
		{Op: OpFst4, Rs1: 11, Rs2: 1, Imm: 0},
		{Op: OpFldi, Rd: 1, FImm: 1},
		{Op: OpFst4, Rs1: 11, Rs2: 1, Imm: 4},
		{Op: OpFldi, Rd: 1, FImm: 2},
		{Op: OpFst4, Rs1: 11, Rs2: 1, Imm: 8},
		{Op: OpFldi, Rd: 1, FImm: 3},
		{Op: OpFst4, Rs1: 11, Rs2: 1, Imm: 12},
		{Op: OpLdi, Rd: 13, Imm: 4128},
		{Op: OpFldi, Rd: 2, FImm: 1},
		{Op: OpVbcast, Rd: 0, Rs1: 2},
		{Op: OpVst, Rd: 0, Rs1: 13, Rs2: 12, Imm: ElemF32},
		{Op: OpVld, Rd: 0, Rs1: 11, Rs2: 12, Imm: ElemF32},
	}
}

// TestMaskedStoreLaneSuppression: a vst.m under the mask (iota < 2)
// rewrites lanes 0 and 1 only; lanes 2 and 3 keep their prior contents.
func TestMaskedStoreLaneSuppression(t *testing.T) {
	prog := mkProg(append(iotaProgPrefix(),
		Instr{Op: OpFldi, Rd: 3, FImm: 2},
		Instr{Op: OpVcmpLts, Rd: 0, Rs1: 0, Rs2: 3}, // m0 ← iota < 2
		Instr{Op: OpFldi, Rd: 4, FImm: 9},
		Instr{Op: OpVbcast, Rd: 200, Rs1: 4},
		Instr{Op: OpVstm, Rd: 200, Rs1: 13, Rs2: 12, Imm: maskImm(ElemF32, 0)},
		// exit = A[1]*10 + A[2] = 9*10 + 1 = 91
		Instr{Op: OpFld4, Rd: 5, Rs1: 13, Imm: 4},
		Instr{Op: OpCvtFI, Rd: 20, Rs1: 5},
		Instr{Op: OpFld4, Rd: 6, Rs1: 13, Imm: 8},
		Instr{Op: OpCvtFI, Rd: 21, Rs1: 6},
		Instr{Op: OpLdi, Rd: 22, Imm: 10},
		Instr{Op: OpMul, Rd: 20, Rs1: 20, Rs2: 22},
		Instr{Op: OpAdd, Rd: RegRetInt, Rs1: 20, Rs2: 21},
		Instr{Op: OpRet},
	), nil)
	for _, procs := range []int{1, 2, 4} {
		res := runBoth(t, prog, procs)
		if res.ExitCode != 91 {
			t.Errorf("p=%d: exit %d, want 91 (lane suppression broken)", procs, res.ExitCode)
		}
		if res.MaskOps != 1 || res.MaskLanesActive != 2 || res.MaskLanesTotal != 4 {
			t.Errorf("p=%d: mask tally ops=%d active=%d total=%d, want 1/2/4",
				procs, res.MaskOps, res.MaskLanesActive, res.MaskLanesTotal)
		}
	}
}

// maskedRMWProg is a full masked read-modify-write strip — vld.m,
// vadd.m, vst.m governed by (iota < threshold) — ending with exit =
// (int)A[0].
func maskedRMWProg(threshold float64) *Program {
	return mkProg(append(iotaProgPrefix(),
		Instr{Op: OpFldi, Rd: 3, FImm: threshold},
		Instr{Op: OpVcmpLts, Rd: 0, Rs1: 0, Rs2: 3},
		Instr{Op: OpVldm, Rd: 200, Rs1: 13, Rs2: 12, Imm: maskImm(ElemF32, 0)},
		Instr{Op: OpVldm, Rd: 400, Rs1: 11, Rs2: 12, Imm: maskImm(ElemF32, 0)},
		Instr{Op: OpVaddm, Rd: 600, Rs1: 200, Rs2: 400, Imm: maskImm(0, 0)},
		Instr{Op: OpVstm, Rd: 600, Rs1: 13, Rs2: 12, Imm: maskImm(ElemF32, 0)},
		Instr{Op: OpFld4, Rd: 5, Rs1: 13, Imm: 0},
		Instr{Op: OpCvtFI, Rd: RegRetInt, Rs1: 5},
		Instr{Op: OpRet},
	), nil)
}

// TestAllFalseMaskChargesDenseCycles: an all-false masked strip touches
// no memory (A[0] keeps its initial 1.0) yet costs exactly the same
// cycles as the all-true strip — masked ops charge dense timing
// regardless of density.
func TestAllFalseMaskChargesDenseCycles(t *testing.T) {
	allFalse := maskedRMWProg(-1) // iota < -1: no lane active
	allTrue := maskedRMWProg(100) // every lane active
	for _, procs := range []int{1, 2, 4} {
		rf := runBoth(t, allFalse, procs)
		rt := runBoth(t, allTrue, procs)
		if rf.ExitCode != 1 {
			t.Errorf("p=%d: all-false exit %d, want 1 (memory touched by inactive lanes)", procs, rf.ExitCode)
		}
		if rt.ExitCode != 1+0 { // A[0] += B[0] = 1.0 + 0.0
			t.Errorf("p=%d: all-true exit %d, want 1", procs, rt.ExitCode)
		}
		if rf.Cycles != rt.Cycles {
			t.Errorf("p=%d: all-false %d cycles != all-true %d cycles (masked ops must charge dense timing)",
				procs, rf.Cycles, rt.Cycles)
		}
		if rf.MaskLanesActive != 0 || rf.MaskLanesTotal != 16 {
			t.Errorf("p=%d: all-false lanes active=%d total=%d, want 0/16", procs, rf.MaskLanesActive, rf.MaskLanesTotal)
		}
	}
}

// TestMaskCombinators: mand, mor, and mnot compose lane predicates; the
// engines must agree and the final store pattern must reflect
// (iota < 1) OR NOT(iota < 3)  =  lanes {0, 3}.
func TestMaskCombinators(t *testing.T) {
	prog := mkProg(append(iotaProgPrefix(),
		Instr{Op: OpFldi, Rd: 3, FImm: 1},
		Instr{Op: OpVcmpLts, Rd: 0, Rs1: 0, Rs2: 3}, // m0 ← iota < 1
		Instr{Op: OpFldi, Rd: 4, FImm: 3},
		Instr{Op: OpVcmpLts, Rd: 1, Rs1: 0, Rs2: 4}, // m1 ← iota < 3
		Instr{Op: OpMnot, Rd: 2, Rs1: 1},            // m2 ← !(iota < 3)
		Instr{Op: OpMor, Rd: 3, Rs1: 0, Rs2: 2},     // m3 ← lanes {0,3}
		Instr{Op: OpMand, Rd: 4, Rs1: 3, Rs2: 3},    // m4 = m3 (idempotence)
		Instr{Op: OpFldi, Rd: 5, FImm: 7},
		Instr{Op: OpVbcast, Rd: 200, Rs1: 5},
		Instr{Op: OpVstm, Rd: 200, Rs1: 13, Rs2: 12, Imm: maskImm(ElemF32, 4)},
		// exit = A[0]*1000 + A[1]*100 + A[2]*10 + A[3] = 7117
		Instr{Op: OpFld4, Rd: 6, Rs1: 13, Imm: 0},
		Instr{Op: OpCvtFI, Rd: 20, Rs1: 6},
		Instr{Op: OpFld4, Rd: 6, Rs1: 13, Imm: 4},
		Instr{Op: OpCvtFI, Rd: 21, Rs1: 6},
		Instr{Op: OpFld4, Rd: 6, Rs1: 13, Imm: 8},
		Instr{Op: OpCvtFI, Rd: 22, Rs1: 6},
		Instr{Op: OpFld4, Rd: 6, Rs1: 13, Imm: 12},
		Instr{Op: OpCvtFI, Rd: 23, Rs1: 6},
		Instr{Op: OpLdi, Rd: 24, Imm: 1000},
		Instr{Op: OpMul, Rd: 20, Rs1: 20, Rs2: 24},
		Instr{Op: OpLdi, Rd: 24, Imm: 100},
		Instr{Op: OpMul, Rd: 21, Rs1: 21, Rs2: 24},
		Instr{Op: OpLdi, Rd: 24, Imm: 10},
		Instr{Op: OpMul, Rd: 22, Rs1: 22, Rs2: 24},
		Instr{Op: OpAdd, Rd: 20, Rs1: 20, Rs2: 21},
		Instr{Op: OpAdd, Rd: 20, Rs1: 20, Rs2: 22},
		Instr{Op: OpAdd, Rd: RegRetInt, Rs1: 20, Rs2: 23},
		Instr{Op: OpRet},
	), nil)
	for _, procs := range []int{1, 2, 4} {
		if res := runBoth(t, prog, procs); res.ExitCode != 7117 {
			t.Errorf("p=%d: exit %d, want 7117", procs, res.ExitCode)
		}
	}
}

// maskedAccessAtTop builds a program whose masked access (vld.m when
// load is true, else vst.m) runs with base = MemSize-4 and stride 4:
// lane 0 is the last valid word, every higher lane is out of range. The
// mask activates exactly one lane, selected by an iota compare.
func maskedAccessAtTop(load bool, activeLane float64) *Program {
	op := OpVstm
	if load {
		op = OpVldm
	}
	return mkProg(append(iotaProgPrefix(),
		Instr{Op: OpFldi, Rd: 3, FImm: activeLane},
		Instr{Op: OpVcmpEqs, Rd: 0, Rs1: 0, Rs2: 3}, // one active lane
		Instr{Op: OpLdi, Rd: 14, Imm: 1<<20 - 4},    // mkProg's MemSize top
		Instr{Op: op, Rd: 200, Rs1: 14, Rs2: 12, Imm: maskImm(ElemF32, 0)},
		Instr{Op: OpLdi, Rd: RegRetInt, Imm: 0},
		Instr{Op: OpRet},
	), nil)
}

// TestMaskedFaultNamesLaneAddress: an active out-of-range lane faults
// with the lane's own address; the same out-of-range lane inactive is
// suppressed entirely. Both engines must agree on both outcomes.
func TestMaskedFaultNamesLaneAddress(t *testing.T) {
	for _, tc := range []struct {
		name string
		load bool
		kind string
	}{
		{"load", true, "masked vector load"},
		{"store", false, "masked vector store"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Lane 0 active: the access stays in range, no fault.
			for _, procs := range []int{1, 2, 4} {
				runBoth(t, maskedAccessAtTop(tc.load, 0), procs)
			}
			// Lane 3 active: its address (top-4 + 3·4) is out of range.
			prog := maskedAccessAtTop(tc.load, 3)
			wantAddr := int64(1<<20 - 4 + 3*4)
			for _, runner := range []struct {
				name string
				run  func(*Program) (Result, error)
			}{
				{"engine", func(p *Program) (Result, error) { return NewMachine(p, 1).Run("main") }},
				{"reference", func(p *Program) (Result, error) { return NewMachine(p, 1).RunReference("main") }},
			} {
				_, err := runner.run(prog)
				var f *Fault
				if !errors.As(err, &f) {
					t.Fatalf("%s: want a Fault, got %v", runner.name, err)
				}
				if f.Addr != wantAddr || f.Kind != tc.kind {
					t.Errorf("%s: fault addr=%d kind=%q, want addr=%d kind=%q (the faulting lane's address)",
						runner.name, f.Addr, f.Kind, wantAddr, tc.kind)
				}
			}
		})
	}
}
