package titan

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// forceGoroutineRegions makes parallel regions fan out goroutines even
// when the test host has a single core, so the concurrent join path is
// always exercised.
func forceGoroutineRegions(t *testing.T) {
	t.Helper()
	old := engineHostParallelism
	engineHostParallelism = MaxProcessors
	t.Cleanup(func() { engineHostParallelism = old })
}

// diffRun executes the same program on the fast engine and the reference
// interpreter (fresh Machine each, identical seeding) and requires a
// bit-identical Result and final memory image.
func diffRun(t *testing.T, mk func() *Program, seed func(*Machine), procs int) Result {
	t.Helper()
	mf := NewMachine(mk(), procs)
	mr := NewMachine(mk(), procs)
	if seed != nil {
		seed(mf)
		seed(mr)
	}
	rf, errF := mf.runFastEntry("main")
	rr, errR := mr.RunReference("main")
	if (errF == nil) != (errR == nil) {
		t.Fatalf("engine err %v, reference err %v", errF, errR)
	}
	if errF != nil {
		if errF.Error() != errR.Error() {
			t.Fatalf("engine err %q, reference err %q", errF, errR)
		}
		return rf
	}
	if rf != rr {
		t.Fatalf("engine %+v != reference %+v", rf, rr)
	}
	if string(mf.mem) != string(mr.mem) {
		t.Fatal("final memory images differ")
	}
	return rf
}

// TestEngineDifferentialScalar covers the scalar ALU, control flow, and
// calls: a loop computing triangular numbers through a register-windowed
// helper, with compare+branch pairs the decoder fuses.
func TestEngineDifferentialScalar(t *testing.T) {
	mk := func() *Program {
		return &Program{
			Funcs: map[string]*Func{
				"main": {Name: "main", Instrs: []Instr{
					{Op: OpLdi, Rd: 10, Imm: 0},  // i
					{Op: OpLdi, Rd: 11, Imm: 0},  // s
					{Op: OpLdi, Rd: 12, Imm: 50}, // n
					// L: s += add1(i); i++; if i < n goto L
					{Op: OpMov, Rd: RegArg0, Rs1: 10},
					{Op: OpCall, Sym: "add1"},
					{Op: OpAdd, Rd: 11, Rs1: 11, Rs2: RegRetInt},
					{Op: OpAddi, Rd: 10, Rs1: 10, Imm: 1},
					{Op: OpCmpLt, Rd: 13, Rs1: 10, Rs2: 12},
					{Op: OpBnez, Rs1: 13, Sym: "L"},
					{Op: OpMov, Rd: RegRetInt, Rs1: 11},
					{Op: OpRet},
				}, Labels: map[string]int{"L": 3}},
				"add1": {Name: "add1", Instrs: []Instr{
					{Op: OpAddi, Rd: RegRetInt, Rs1: RegArg0, Imm: 1},
					{Op: OpRet},
				}, Labels: map[string]int{}},
			},
			MemSize: 1 << 20,
		}
	}
	res := diffRun(t, mk, nil, 1)
	if res.ExitCode != 50*51/2 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

// TestEngineDifferentialVector covers the bulk kernels against the
// per-element reference: contiguous and strided f32/f64/i32 loads and
// stores, vector-vector and vector-scalar arithmetic, vmov/vbcast, and
// overlapping register windows (the forward-order aliasing case).
func TestEngineDifferentialVector(t *testing.T) {
	mk := func() *Program {
		return mkProg([]Instr{
			{Op: OpLdi, Rd: 9, Imm: 32},
			{Op: OpVsetl, Rs1: 9},
			{Op: OpLdi, Rd: 10, Imm: 4096}, // f32 array
			{Op: OpLdi, Rd: 11, Imm: 8192}, // f64 array
			{Op: OpLdi, Rd: 12, Imm: 4},    // f32 stride
			{Op: OpLdi, Rd: 13, Imm: 8},    // f64 stride
			{Op: OpLdi, Rd: 14, Imm: 16},   // strided
			{Op: OpFldi, Rd: 20, FImm: 1.5},

			{Op: OpVld, Rd: 0, Rs1: 10, Rs2: 12, Imm: ElemF32},
			{Op: OpVld, Rd: 64, Rs1: 11, Rs2: 13, Imm: ElemF64},
			{Op: OpVld, Rd: 128, Rs1: 10, Rs2: 14, Imm: ElemI32},
			{Op: OpVadd, Rd: 192, Rs1: 0, Rs2: 64},
			{Op: OpVmul, Rd: 256, Rs1: 192, Rs2: 128},
			{Op: OpVdiv, Rd: 320, Rs1: 256, Rs2: 64},
			{Op: OpVadds, Rd: 384, Rs1: 320, Rs2: 20},
			{Op: OpVsubsr, Rd: 448, Rs1: 384, Rs2: 20},
			{Op: OpVdivsr, Rd: 512, Rs1: 384, Rs2: 20},
			// Overlapping windows: vmov and vadd where dst overlaps src.
			{Op: OpVmov, Rd: 8, Rs1: 0},
			{Op: OpVadd, Rd: 4, Rs1: 0, Rs2: 8},
			{Op: OpVbcast, Rd: 576, Rs1: 20},
			// Store back, contiguous and strided.
			{Op: OpVst, Rd: 448, Rs1: 10, Rs2: 12, Imm: ElemF32},
			{Op: OpVst, Rd: 512, Rs1: 11, Rs2: 13, Imm: ElemF64},
			{Op: OpVst, Rd: 4, Rs1: 10, Rs2: 14, Imm: ElemI32},
			{Op: OpRet},
		}, nil)
	}
	seed := func(m *Machine) {
		for i := int64(0); i < 130; i++ {
			putF32(m.mem, 4096+4*i, float32(i)*0.5+1)
		}
		for i := int64(0); i < 32; i++ {
			binaryPutF64(m.mem, 8192+8*i, float64(i)*1.25+2)
		}
	}
	res := diffRun(t, mk, seed, 1)
	if res.FlopCount == 0 {
		t.Error("no flops counted")
	}
}

// TestEngineDifferentialVRFWrap drives vector ops whose register windows
// wrap around the end of the register file, exercising the slow paths.
func TestEngineDifferentialVRFWrap(t *testing.T) {
	mk := func() *Program {
		return mkProg([]Instr{
			{Op: OpLdi, Rd: 9, Imm: 32},
			{Op: OpVsetl, Rs1: 9},
			{Op: OpLdi, Rd: 10, Imm: 4096},
			{Op: OpLdi, Rd: 12, Imm: 4},
			{Op: OpFldi, Rd: 20, FImm: 0.25},
			{Op: OpVld, Rd: VRFWords - 5, Rs1: 10, Rs2: 12, Imm: ElemF32},
			{Op: OpVadds, Rd: VRFWords - 17, Rs1: VRFWords - 5, Rs2: 20},
			{Op: OpVmov, Rd: VRFWords - 9, Rs1: VRFWords - 17},
			{Op: OpVbcast, Rd: VRFWords - 3, Rs1: 20},
			{Op: OpVadd, Rd: 100, Rs1: VRFWords - 9, Rs2: VRFWords - 3},
			{Op: OpVst, Rd: 100, Rs1: 10, Rs2: 12, Imm: ElemF32},
			{Op: OpRet},
		}, nil)
	}
	seed := func(m *Machine) {
		for i := int64(0); i < 32; i++ {
			putF32(m.mem, 4096+4*i, float32(i)+1)
		}
	}
	diffRun(t, mk, seed, 1)
}

// parallelCyclicProg writes i into slot i of a 256-element array,
// iterations cyclically distributed over the processors, then each
// processor prints its pid once.
func parallelCyclicProg() *Program {
	instrs := []Instr{
		{Op: OpLdi, Rd: 20, Imm: 4096}, // fmt "%d\n" placed by seed
		{Op: OpParBegin},
		{Op: OpPid, Rd: 10},
		{Op: OpNproc, Rd: 11},
		{Op: OpMov, Rd: 12, Rs1: 10},
		// L: if i >= 256 goto E
		{Op: OpLdi, Rd: 13, Imm: 256},
		{Op: OpCmpGe, Rd: 14, Rs1: 12, Rs2: 13},
		{Op: OpBnez, Rs1: 14, Sym: "E"},
		{Op: OpMuli, Rd: 15, Rs1: 12, Imm: 4},
		{Op: OpAddi, Rd: 15, Rs1: 15, Imm: 8192},
		{Op: OpSt4, Rs1: 15, Rs2: 12},
		{Op: OpAdd, Rd: 12, Rs1: 12, Rs2: 11},
		{Op: OpJmp, Sym: "L"},
		// E: printf("%d\n", pid)
		{Op: OpArg, Rs1: 20},
		{Op: OpArg, Rs1: 10},
		{Op: OpCall, Sym: "printf"},
		{Op: OpParEnd},
		{Op: OpRet},
	}
	return mkProg(instrs, map[string]int{"L": 5, "E": 13})
}

func seedPidFmt(m *Machine) {
	copy(m.mem[4096:], "%d\n\x00")
}

// TestEngineDifferentialParallel checks the goroutine-backed regions
// against the serialized reference at every processor count: identical
// cycles (max-delta + fork overhead join), identical pooled
// instruction/flop counts, identical memory, and identical output — the
// per-pid printf lines must appear in pid order.
func TestEngineDifferentialParallel(t *testing.T) {
	// Both region execution strategies must match the reference: the
	// goroutine fan-out and the single-core serialized fallback.
	for _, mode := range []struct {
		name        string
		parallelism int
	}{{"goroutines", MaxProcessors}, {"serialized", 1}} {
		t.Run(mode.name, func(t *testing.T) {
			old := engineHostParallelism
			engineHostParallelism = mode.parallelism
			t.Cleanup(func() { engineHostParallelism = old })
			for procs := 1; procs <= MaxProcessors; procs++ {
				res := diffRun(t, parallelCyclicProg, seedPidFmt, procs)
				var want strings.Builder
				for pid := 0; pid < procs; pid++ {
					fmt.Fprintf(&want, "%d\n", pid)
				}
				if res.Output != want.String() {
					t.Errorf("procs=%d output %q, want %q", procs, res.Output, want.String())
				}
			}
		})
	}
}

// TestEngineDeterminism runs the 4-processor parallel workload many
// times and requires every Result to be identical: goroutine scheduling
// must not leak into simulated time or output.
func TestEngineDeterminism(t *testing.T) {
	forceGoroutineRegions(t)
	var first Result
	for i := 0; i < 10; i++ {
		m := NewMachine(parallelCyclicProg(), 4)
		seedPidFmt(m)
		res, err := m.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else if res != first {
			t.Fatalf("run %d: %+v != first %+v", i, res, first)
		}
	}
}

// TestEngineConcurrentSimulations runs many independent simulations of
// one shared Program (sharing its decode cache), each with parallel
// regions fanning out goroutines, under the race detector.
func TestEngineConcurrentSimulations(t *testing.T) {
	forceGoroutineRegions(t)
	prog := parallelCyclicProg()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	results := make([]Result, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := NewMachine(prog, 1+i%MaxProcessors)
			seedPidFmt(m)
			results[i], errs[i] = m.Run("main")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sim %d: %v", i, err)
		}
		if i >= MaxProcessors {
			if results[i] != results[i-MaxProcessors] {
				t.Errorf("sim %d result differs from sim %d at same processor count", i, i-MaxProcessors)
			}
		}
	}
}

// TestScalarFault checks the descriptive fault for out-of-range scalar
// accesses on both engines.
func TestScalarFault(t *testing.T) {
	mk := func() *Program {
		return mkProg([]Instr{
			{Op: OpLdi, Rd: 10, Imm: -4},
			{Op: OpLd4, Rd: 11, Rs1: 10},
			{Op: OpRet},
		}, nil)
	}
	for _, run := range []struct {
		name string
		do   func(*Machine) (Result, error)
	}{
		{"engine", func(m *Machine) (Result, error) { return m.Run("main") }},
		{"reference", func(m *Machine) (Result, error) { return m.RunReference("main") }},
	} {
		_, err := run.do(NewMachine(mk(), 1))
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("%s: got %v, want *Fault", run.name, err)
		}
		if f.Addr != -4 || f.Size != 4 || f.Kind != "load" || f.Func != "main" || f.PC != 1 {
			t.Errorf("%s: fault %+v", run.name, f)
		}
		if want := "titan: fault at addr=-4 (load, size 4) in main+1"; err.Error() != want {
			t.Errorf("%s: message %q, want %q", run.name, err, want)
		}
	}
}

// TestStridedVectorFault checks that a strided vector store running off
// the end of memory faults with the failing element's address on both
// engines, identically.
func TestStridedVectorFault(t *testing.T) {
	mk := func() *Program {
		return mkProg([]Instr{
			{Op: OpLdi, Rd: 9, Imm: 32},
			{Op: OpVsetl, Rs1: 9},
			{Op: OpLdi, Rd: 10, Imm: 1<<20 - 64}, // near the top of memory
			{Op: OpLdi, Rd: 12, Imm: 16},
			{Op: OpVst, Rd: 0, Rs1: 10, Rs2: 12, Imm: ElemF32},
			{Op: OpRet},
		}, nil)
	}
	_, errF := NewMachine(mk(), 1).Run("main")
	_, errR := NewMachine(mk(), 1).RunReference("main")
	var f *Fault
	if !errors.As(errF, &f) {
		t.Fatalf("engine: got %v, want *Fault", errF)
	}
	if f.Kind != "vector store" || f.Func != "main" || f.PC != 4 {
		t.Errorf("fault %+v", f)
	}
	// First failing element: base + k*stride with base+4 > len.
	if wantAddr := int64(1<<20 - 64 + 4*16); f.Addr != wantAddr {
		t.Errorf("fault addr %d, want %d", f.Addr, wantAddr)
	}
	if errR == nil || errF.Error() != errR.Error() {
		t.Errorf("engine fault %q != reference fault %q", errF, errR)
	}
}

// TestCstringFault checks that printf with a bad format pointer faults
// instead of silently printing nothing, attributed to the call site.
func TestCstringFault(t *testing.T) {
	mk := func() *Program {
		return mkProg([]Instr{
			{Op: OpLdi, Rd: 10, Imm: -1},
			{Op: OpArg, Rs1: 10},
			{Op: OpCall, Sym: "printf"},
			{Op: OpRet},
		}, nil)
	}
	_, errF := NewMachine(mk(), 1).Run("main")
	_, errR := NewMachine(mk(), 1).RunReference("main")
	var f *Fault
	if !errors.As(errF, &f) {
		t.Fatalf("engine: got %v, want *Fault", errF)
	}
	if f.Kind != "cstring" || f.Addr != -1 || f.Func != "main" || f.PC != 2 {
		t.Errorf("fault %+v", f)
	}
	if errR == nil || errF.Error() != errR.Error() {
		t.Errorf("engine fault %q != reference fault %q", errF, errR)
	}
}

// TestEngineUnknownLabelLazy mirrors the reference: an unknown branch
// label is a runtime error only when the branch is taken, so dead code
// with a bad label never fires.
func TestEngineUnknownLabelLazy(t *testing.T) {
	dead := mkProg([]Instr{
		{Op: OpLdi, Rd: 10, Imm: 1},
		{Op: OpBeqz, Rs1: 10, Sym: "nowhere"}, // never taken
		{Op: OpLdi, Rd: RegRetInt, Imm: 7},
		{Op: OpRet},
	}, nil)
	res, err := NewMachine(dead, 1).Run("main")
	if err != nil || res.ExitCode != 7 {
		t.Fatalf("dead bad label: res %+v err %v", res, err)
	}
	taken := mkProg([]Instr{
		{Op: OpJmp, Sym: "nowhere"},
		{Op: OpRet},
	}, nil)
	if _, err := NewMachine(taken, 1).Run("main"); err == nil || !strings.Contains(err.Error(), `unknown label "nowhere"`) {
		t.Fatalf("taken bad label: err %v", err)
	}
}

// TestEngineParallelRegionAllocs guards the vecReady-map removal: a
// region fork is a struct copy plus one slab per join, not a per-slot
// map clone. The bound is loose but would catch a reintroduced
// per-element or per-slot allocation.
func TestEngineParallelRegionAllocs(t *testing.T) {
	forceGoroutineRegions(t)
	prog := parallelCyclicProg()
	m := NewMachine(prog, 1) // warm the decode cache
	seedPidFmt(m)
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		m := NewMachine(prog, 4)
		seedPidFmt(m)
		if _, err := m.Run("main"); err != nil {
			t.Fatal(err)
		}
	})
	// NewMachine's slab + the region's subs/outs/errs slices + printf
	// formatting; the old map-based scoreboard cost thousands.
	if allocs > 200 {
		t.Errorf("parallel run allocates %v objects", allocs)
	}
}

// binaryPutF64 stores a float64 little-endian (test helper).
func binaryPutF64(mem []byte, addr int64, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		mem[addr+int64(i)] = byte(bits >> (8 * i))
	}
}
