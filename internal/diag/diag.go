// Package diag is the compiler's structured diagnostic and
// optimization-remark layer.
//
// The paper's passes constantly make user-visible judgment calls — §5.3
// blocks and backtracks induction-variable substitution, §7 refuses to
// inline recursive procedures, §8 deletes unreachable code, and the
// vectorizer/parallelizer accept or reject each loop off the dependence
// graph. Every such decision is reported here as a Diagnostic: a severity,
// a stable machine-readable code, a source position, the owning procedure,
// a human message, and structured key/value arguments (the blocking
// dependence edge, the chosen strip length, the refused callee, ...).
//
// A Reporter collects diagnostics from concurrently-running per-procedure
// passes (pass.Manager fans procedures out over a worker pool), so it is
// safe for concurrent use. All methods are nil-receiver safe: a pass
// handed no reporter simply reports into the void, which keeps every
// Config plumbable without conditionals at each emission site.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, ordered most to least severe.
const (
	SevError   Severity = iota // the compile failed
	SevWarning                 // suspicious but compilable
	SevRemark                  // an optimization decision, §5–§8
)

var sevNames = [...]string{"error", "warning", "remark"}

// String names the severity.
func (s Severity) String() string {
	if s < 0 || int(s) >= len(sevNames) {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return sevNames[s]
}

// MarshalText renders the severity for JSON ("error", "warning", "remark").
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity name.
func (s *Severity) UnmarshalText(b []byte) error {
	for i, n := range sevNames {
		if n == string(b) {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("diag: unknown severity %q", b)
}

// Code is a stable, machine-readable diagnostic code. Codes are part of
// the wire format (titand /compile, /metrics, -remarks=json): renaming one
// is a breaking change.
type Code string

// Front-end errors (positioned conversions of lexer/parser/sema/lower
// failures).
const (
	LexError   Code = "lex-error"
	ParseError Code = "parse-error"
	SemaError  Code = "sema-error"
	LowerError Code = "lower-error"
)

// Scalar optimization remarks (§5.2, §5.3, §8).
const (
	// WhileConverted: a While loop was proven countable and became a DO
	// loop (§5.2).
	WhileConverted Code = "whiledo-converted"
	// IVSubstituted: induction-variable substitution replaced auxiliary
	// induction variables with closed forms in a loop (§5.3).
	IVSubstituted Code = "iv-substituted"
	// IVBlocked: §5.3's forward-substitution walk hit a redefinition of an
	// operand and had to stop (the "blocking/backtracking" outcome).
	IVBlocked Code = "iv-blocked"
	// ConstUnreachableDelete: constant propagation proved a branch or loop
	// untaken and deleted the dead code (§8).
	ConstUnreachableDelete Code = "const-unreachable-delete"
	// FixpointCapped: the scalar optimizer was still finding changes when
	// the round cap hit; results are valid but possibly not fully
	// propagated.
	FixpointCapped Code = "fixpoint-capped"
)

// Inline expansion remarks (§7).
const (
	InlineExpanded  Code = "inline-expanded"
	InlineRecursive Code = "inline-recursive"
	InlineRefused   Code = "inline-refused"
	// InlineStaticExport: an inlined callee's function-static variable was
	// imported as a hidden global (§7's static-export rule).
	InlineStaticExport Code = "inline-static-export"
)

// Vectorizer verdicts (§5): exactly one per examined innermost DO loop.
const (
	VectVectorized    Code = "vect-vectorized"
	VectDepCycle      Code = "vect-dep-cycle"
	VectNotNormalized Code = "vect-not-normalized"
	VectEmptyBody     Code = "vect-empty-body"
	VectScalarFlow    Code = "vect-scalar-flow"
	// VectBarrier: every candidate statement sits behind a dependence
	// barrier (a call or irregular statement the tester cannot move).
	VectBarrier Code = "vect-barrier"
	// VectNotAffine: no statement is a store with addresses affine in the
	// loop IV.
	VectNotAffine Code = "vect-not-affine"
	// VectMasked: the loop vectorized and at least one strip executes under
	// a mask (if-converted guarded stores). This replaces vect-vectorized
	// as the loop's one verdict.
	VectMasked Code = "vect-masked"
	// VectIfRejected: the loop contained if-converted statements but a
	// dependence crossing the guard kept it serial; args name the blocking
	// dependence ("dep"). This is the loop's one verdict.
	VectIfRejected Code = "vect-if-rejected"
)

// If-conversion remarks (emitted by the ifconvert pass, not vectorizer
// verdicts — the examined loop still gets exactly one verdict later).
const (
	// VectIfConverted: a single-level conditional in a countable DO body
	// was flattened to predicated stores ahead of vectorization.
	VectIfConverted Code = "vect-if-converted"
)

// Parallelizer verdicts (§2, §5.1): exactly one per examined DO loop.
const (
	ParParallelized  Code = "par-parallelized"
	ParCarriedDep    Code = "par-carried-dep"
	ParBarrier       Code = "par-barrier"
	ParIrregular     Code = "par-irregular-body"
	ParLiveOut       Code = "par-liveout-scalar"
	NestParallelized Code = "nest-parallelized"
	ListParallelized Code = "list-parallelized"
	// ParSchedSerial: spreading was legal, but the loop's schedule pinned
	// it serial (serial_strips) — still this loop's one verdict.
	ParSchedSerial Code = "par-sched-serial"
	// ParDoacross: iterations carry a constant-distance dependence, so
	// the loop was pipelined DOACROSS with post/wait instead of being
	// rejected; args name the dependence, its combined distance, and the
	// sync stride.
	ParDoacross Code = "par-doacross"
)

// Strength reduction remarks (§6).
const (
	StrengthReduced Code = "strength-reduced"
)

// Schedule-layer remarks: interchange applied by the vectorizer's
// schedule, and the autotuner's per-loop selection.
const (
	// VectInterchanged: a perfect two-level nest had its headers swapped
	// before vectorization, as directed by the loop's schedule.
	VectInterchanged Code = "vect-interchanged"
	// SchedSelected: the autotuner picked a schedule for a loop, with the
	// measured cycle delta against the default schedule in the args.
	SchedSelected Code = "sched-selected"
)

// Diagnostic is one structured compiler message.
type Diagnostic struct {
	Severity Severity  `json:"severity"`
	Code     Code      `json:"code"`
	Pos      token.Pos `json:"pos"` // source position, 1-based line:col
	Proc     string    `json:"proc,omitempty"`
	Pass     string    `json:"pass,omitempty"` // pipeline pass that emitted it
	Message  string    `json:"message"`
	// Args carries the machine-readable detail: the blocking dependence
	// edge ("dep"), strip length ("vl"), callee name ("callee"), ...
	Args map[string]string `json:"args,omitempty"`
	// InlinedFrom is the call-site position when the diagnostic's Pos is
	// inside a body that inline expansion cloned into Proc.
	InlinedFrom *token.Pos `json:"inlined_from,omitempty"`
}

// String renders the diagnostic in the classic one-line form:
//
//	3:9: remark[vect-vectorized]: loop vectorized with VL=32 (proc daxpy, pass vectorize) {vl=32}
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Message)
	var scope []string
	if d.Proc != "" {
		scope = append(scope, "proc "+d.Proc)
	}
	if d.Pass != "" {
		scope = append(scope, "pass "+d.Pass)
	}
	if len(scope) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(scope, ", "))
	}
	if d.InlinedFrom != nil {
		fmt.Fprintf(&sb, " [inlined from %s]", *d.InlinedFrom)
	}
	if len(d.Args) > 0 {
		keys := make([]string, 0, len(d.Args))
		for k := range d.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + d.Args[k]
		}
		fmt.Fprintf(&sb, " {%s}", strings.Join(parts, " "))
	}
	return sb.String()
}

// Reporter accumulates diagnostics. The zero value is ready to use; a nil
// *Reporter silently drops everything, so passes report unconditionally.
type Reporter struct {
	mu    sync.Mutex
	diags []Diagnostic
}

// Report appends d.
func (r *Reporter) Report(d Diagnostic) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.diags = append(r.diags, d)
	r.mu.Unlock()
}

// Remark reports an optimization remark.
func (r *Reporter) Remark(code Code, pos token.Pos, proc, format string, a ...any) {
	if r == nil {
		return
	}
	r.Report(Diagnostic{Severity: SevRemark, Code: code, Pos: pos, Proc: proc,
		Message: fmt.Sprintf(format, a...)})
}

// Warning reports a warning.
func (r *Reporter) Warning(code Code, pos token.Pos, proc, format string, a ...any) {
	if r == nil {
		return
	}
	r.Report(Diagnostic{Severity: SevWarning, Code: code, Pos: pos, Proc: proc,
		Message: fmt.Sprintf(format, a...)})
}

// Error reports an error.
func (r *Reporter) Error(code Code, pos token.Pos, format string, a ...any) {
	if r == nil {
		return
	}
	r.Report(Diagnostic{Severity: SevError, Code: code, Pos: pos,
		Message: fmt.Sprintf(format, a...)})
}

// All returns the collected diagnostics sorted deterministically: by
// procedure, then source position, then code. Pass output order is
// nondeterministic (procedures run on a worker pool), so consumers — the
// report JSON, golden tests, /metrics — always see the sorted view.
func (r *Reporter) All() []Diagnostic {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Diagnostic, len(r.diags))
	copy(out, r.diags)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Code < b.Code
	})
	return out
}

// Len returns the number of diagnostics reported so far.
func (r *Reporter) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.diags)
}

// CountByCode tallies diagnostics per code — the /metrics aggregation
// shape.
func CountByCode(diags []Diagnostic) map[Code]int {
	if len(diags) == 0 {
		return nil
	}
	m := make(map[Code]int)
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}
