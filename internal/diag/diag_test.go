package diag

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/token"
)

func TestNilReporterIsSafe(t *testing.T) {
	var r *Reporter
	r.Report(Diagnostic{Code: VectVectorized})
	r.Remark(VectVectorized, token.Pos{Line: 1, Col: 1}, "p", "msg")
	r.Warning(FixpointCapped, token.Pos{Line: 1, Col: 1}, "p", "msg")
	r.Error(ParseError, token.Pos{Line: 1, Col: 1}, "msg")
	if got := r.All(); got != nil {
		t.Errorf("nil reporter returned diagnostics: %v", got)
	}
	if r.Len() != 0 {
		t.Errorf("nil reporter Len = %d", r.Len())
	}
}

func TestReporterSortsDeterministically(t *testing.T) {
	var r Reporter
	// Report out of order across procs, lines, and severities.
	r.Remark(VectVectorized, token.Pos{Line: 9, Col: 2}, "zeta", "later proc")
	r.Remark(ParParallelized, token.Pos{Line: 5, Col: 1}, "alpha", "line 5")
	r.Error(SemaError, token.Pos{Line: 5, Col: 1}, "error first at same pos")
	r.Remark(IVSubstituted, token.Pos{Line: 2, Col: 4}, "alpha", "line 2")
	all := r.All()
	if len(all) != 4 {
		t.Fatalf("got %d diagnostics, want 4", len(all))
	}
	// Errors carry no proc, so "" sorts before alpha and zeta.
	wantCodes := []Code{SemaError, IVSubstituted, ParParallelized, VectVectorized}
	for i, d := range all {
		if d.Code != wantCodes[i] {
			t.Errorf("position %d: got %s, want %s", i, d.Code, wantCodes[i])
		}
	}
}

func TestReporterConcurrentUse(t *testing.T) {
	var r Reporter
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Remark(VectVectorized, token.Pos{Line: i + 1, Col: p + 1}, "proc", "m")
			}
		}(p)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestDiagnosticString(t *testing.T) {
	site := token.Pos{Line: 22, Col: 2}
	d := Diagnostic{
		Severity:    SevRemark,
		Code:        VectDepCycle,
		Pos:         token.Pos{Line: 10, Col: 2},
		Proc:        "main",
		Pass:        "vectorize",
		Message:     "loop not vectorized",
		Args:        map[string]string{"dep": "S0 -flow-> S1", "b": "2", "a": "1"},
		InlinedFrom: &site,
	}
	got := d.String()
	want := "10:2: remark[vect-dep-cycle]: loop not vectorized (proc main, pass vectorize) [inlined from 22:2] {a=1 b=2 dep=S0 -flow-> S1}"
	if got != want {
		t.Errorf("String:\n got %q\nwant %q", got, want)
	}
}

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	site := token.Pos{Line: 3, Col: 7}
	in := Diagnostic{
		Severity:    SevWarning,
		Code:        FixpointCapped,
		Pos:         token.Pos{Line: 1, Col: 5},
		Proc:        "f",
		Pass:        "scalar-opt",
		Message:     "capped",
		Args:        map[string]string{"rounds": "8"},
		InlinedFrom: &site,
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Severity and position use the stable lowercase wire names.
	for _, frag := range []string{`"severity":"warning"`, `"line":1`, `"col":5`, `"inlined_from"`} {
		if !strings.Contains(string(blob), frag) {
			t.Errorf("wire form %s lacks %s", blob, frag)
		}
	}
	var out Diagnostic
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out.Severity != in.Severity || out.Code != in.Code || out.Pos != in.Pos ||
		out.Message != in.Message || out.Args["rounds"] != "8" ||
		out.InlinedFrom == nil || *out.InlinedFrom != site {
		t.Errorf("round trip changed the diagnostic: %+v vs %+v", out, in)
	}
}

func TestSeverityUnmarshalRejectsUnknown(t *testing.T) {
	var s Severity
	if err := s.UnmarshalText([]byte("fatal")); err == nil {
		t.Error("want error for unknown severity name")
	}
}

func TestCountByCode(t *testing.T) {
	if m := CountByCode(nil); m != nil {
		t.Errorf("CountByCode(nil) = %v, want nil", m)
	}
	m := CountByCode([]Diagnostic{
		{Code: VectVectorized}, {Code: VectVectorized}, {Code: ParCarriedDep},
	})
	if m[VectVectorized] != 2 || m[ParCarriedDep] != 1 {
		t.Errorf("counts = %v", m)
	}
}
