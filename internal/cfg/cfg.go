// Package cfg builds a control-flow graph over the structured IL.
//
// Nodes are primitive statements (assignments, calls, returns, gotos,
// labels, vector statements) plus one condition node per structured
// statement (If/While/DoLoop/DoParallel). Edges follow the structured
// control flow, with goto edges resolved to their label nodes, so the graph
// is exact even for the irregular control flow C allows (§5.2: "branches
// can legally enter loops").
package cfg

import (
	"fmt"

	"repro/internal/il"
)

// Node is one CFG node.
type Node struct {
	ID    int
	Stmt  il.Stmt // the statement (for structured stmts, the owner)
	Succs []int
	Preds []int
	// IVDef is the induction variable this node defines, for DO-loop head
	// (initial value) and latch (per-iteration increment) nodes.
	IVDef il.VarID
	// Latch marks the per-iteration re-entry node of a DO loop.
	Latch bool
	// Inline storage for the first few edges; most nodes have at most two
	// successors and two predecessors, so edge wiring rarely allocates.
	succBuf [2]int
	predBuf [2]int
}

// Graph is the CFG of one procedure.
type Graph struct {
	Nodes []*Node
	Entry int
	Exit  int
	// NodeOf maps each IL statement to its node. Structured statements map
	// to their condition node.
	NodeOf map[il.Stmt]*Node
	// Labels maps label names to their nodes.
	Labels map[string]int
}

type builder struct {
	g           *Graph
	gotoFixups  []fixup
	returnNodes []int
	// nodeSlab is the chunk nodes are carved from; full chunks are
	// abandoned (still referenced via g.Nodes), keeping pointers stable.
	nodeSlab []Node
}

type fixup struct {
	from   int
	target string
}

// Build constructs the CFG for a procedure body.
func Build(body []il.Stmt) (*Graph, error) {
	g := &Graph{
		NodeOf: map[il.Stmt]*Node{},
		Labels: map[string]int{},
	}
	b := &builder{g: g}
	entry := b.newNode(nil)
	exit := b.newNode(nil)
	g.Entry, g.Exit = entry.ID, exit.ID

	exits := b.list(body, []int{entry.ID})
	for _, e := range exits {
		b.edge(e, exit.ID)
	}
	for _, r := range b.returnNodes {
		b.edge(r, exit.ID)
	}
	for _, f := range b.gotoFixups {
		target, ok := g.Labels[f.target]
		if !ok {
			return nil, fmt.Errorf("cfg: goto undefined label %q", f.target)
		}
		b.edge(f.from, target)
	}
	return g, nil
}

func (b *builder) newNode(s il.Stmt) *Node {
	if len(b.nodeSlab) == cap(b.nodeSlab) {
		c := 2 * cap(b.nodeSlab)
		if c < 64 {
			c = 64
		}
		if c > 1024 {
			c = 1024
		}
		b.nodeSlab = make([]Node, 0, c)
	}
	b.nodeSlab = append(b.nodeSlab, Node{ID: len(b.g.Nodes), Stmt: s, IVDef: il.NoVar})
	n := &b.nodeSlab[len(b.nodeSlab)-1]
	n.Succs = n.succBuf[:0]
	n.Preds = n.predBuf[:0]
	b.g.Nodes = append(b.g.Nodes, n)
	if s != nil {
		b.g.NodeOf[s] = n
	}
	return n
}

func (b *builder) edge(from, to int) {
	b.g.Nodes[from].Succs = append(b.g.Nodes[from].Succs, to)
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, from)
}

// list wires a statement list; froms are the nodes that fall into it.
// It returns the nodes that fall out of its end.
func (b *builder) list(stmts []il.Stmt, froms []int) []int {
	for _, s := range stmts {
		froms = b.stmt(s, froms)
	}
	return froms
}

func (b *builder) stmt(s il.Stmt, froms []int) []int {
	connect := func(n *Node) {
		for _, f := range froms {
			b.edge(f, n.ID)
		}
	}
	switch n := s.(type) {
	case *il.Assign, *il.PredAssign, *il.Call, *il.VectorAssign, *il.SyncPost, *il.SyncWait:
		nd := b.newNode(s)
		connect(nd)
		return []int{nd.ID}
	case *il.Return:
		nd := b.newNode(s)
		connect(nd)
		// Edge to exit is added by Build via returned empty fallthrough:
		// wire directly here since Build only connects final exits.
		b.returnNodes = append(b.returnNodes, nd.ID)
		return nil
	case *il.Goto:
		nd := b.newNode(s)
		connect(nd)
		b.gotoFixups = append(b.gotoFixups, fixup{nd.ID, n.Target})
		return nil
	case *il.Label:
		nd := b.newNode(s)
		connect(nd)
		b.g.Labels[n.Name] = nd.ID
		return []int{nd.ID}
	case *il.If:
		cond := b.newNode(s)
		connect(cond)
		thenExits := b.list(n.Then, []int{cond.ID})
		if len(n.Else) == 0 {
			return append(thenExits, cond.ID)
		}
		elseExits := b.list(n.Else, []int{cond.ID})
		return append(thenExits, elseExits...)
	case *il.While:
		cond := b.newNode(s)
		connect(cond)
		bodyExits := b.list(n.Body, []int{cond.ID})
		for _, e := range bodyExits {
			b.edge(e, cond.ID)
		}
		return []int{cond.ID}
	case *il.DoLoop:
		return b.doLoop(s, n.IV, n.Body, froms, connect)
	case *il.DoParallel:
		return b.doLoop(s, n.IV, n.Body, froms, connect)
	}
	panic(fmt.Sprintf("cfg: unhandled statement %T", s))
}

// doLoop wires a DO loop as two nodes. The head evaluates Init/Limit/Step
// once and gives the IV its initial value; the latch is the per-iteration
// control point that advances the IV. Modeling the bounds evaluation
// outside the cycle is what lets reaching definitions treat Init as
// evaluated once (a DoLoop's own IV update must not reach its Init).
func (b *builder) doLoop(s il.Stmt, iv il.VarID, body []il.Stmt, froms []int, connect func(*Node)) []int {
	head := b.newNode(s)
	head.IVDef = iv
	connect(head)
	latch := b.newNode(nil)
	latch.IVDef = iv
	latch.Latch = true
	b.edge(head.ID, latch.ID)
	bodyExits := b.list(body, []int{latch.ID})
	for _, e := range bodyExits {
		b.edge(e, latch.ID)
	}
	return []int{latch.ID}
}

// Reachable returns the set of node IDs reachable from Entry.
func (g *Graph) Reachable() map[int]bool {
	seen := map[int]bool{}
	work := []int{g.Entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		work = append(work, g.Nodes[n].Succs...)
	}
	return seen
}

// RPO returns every node ID in reverse postorder from Entry, followed by
// the unreachable nodes in ID order. Forward dataflow sweeps that visit
// nodes in this order see each node's predecessors first wherever the
// graph is acyclic, so the worklist solver converges in a couple of
// passes instead of one fixpoint round per loop depth. Appending the
// unreachable tail keeps the solved sets defined at every node (queries
// walk all statements, reachable or not).
func (g *Graph) RPO() []int {
	order := make([]int, 0, len(g.Nodes))
	seen := make([]bool, len(g.Nodes))
	// Iterative DFS with an explicit edge cursor per frame: a node is
	// appended once all its successors are done (postorder), then the
	// whole sequence is reversed.
	type frame struct{ id, next int }
	stack := []frame{{g.Entry, 0}}
	seen[g.Entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Nodes[f.id].Succs) {
			s := g.Nodes[f.id].Succs[f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		order = append(order, f.id)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for id := range g.Nodes {
		if !seen[id] {
			order = append(order, id)
		}
	}
	return order
}

// Dominators computes the immediate-dominator-free dominator sets using the
// standard iterative algorithm. dom[n] contains every node that dominates n
// (including n itself). Unreachable nodes get nil.
func (g *Graph) Dominators() []map[int]bool {
	reach := g.Reachable()
	dom := make([]map[int]bool, len(g.Nodes))
	all := map[int]bool{}
	for id := range g.Nodes {
		if reach[id] {
			all[id] = true
		}
	}
	for id := range g.Nodes {
		if !reach[id] {
			continue
		}
		if id == g.Entry {
			dom[id] = map[int]bool{id: true}
		} else {
			dom[id] = copySet(all)
		}
	}
	changed := true
	for changed {
		changed = false
		for id := range g.Nodes {
			if !reach[id] || id == g.Entry {
				continue
			}
			var inter map[int]bool
			for _, p := range g.Nodes[id].Preds {
				if !reach[p] {
					continue
				}
				if inter == nil {
					inter = copySet(dom[p])
				} else {
					inter = intersect(inter, dom[p])
				}
			}
			if inter == nil {
				inter = map[int]bool{}
			}
			inter[id] = true
			if !sameSet(inter, dom[id]) {
				dom[id] = inter
				changed = true
			}
		}
	}
	return dom
}

func copySet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func intersect(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// EntersBody reports whether any edge from outside the given statement set
// targets a node inside it other than through the loop head. bodyStmts is
// the set of statements forming a loop body; head is the loop's condition
// node. This is the §5.2 check that no branch enters the loop.
func (g *Graph) EntersBody(head *Node, bodyStmts map[il.Stmt]bool) bool {
	inside := map[int]bool{}
	for s := range bodyStmts {
		if n, ok := g.NodeOf[s]; ok {
			inside[n.ID] = true
			// A DO loop's latch node belongs to the loop.
			for _, succ := range n.Succs {
				if g.Nodes[succ].Latch {
					inside[succ] = true
				}
			}
		}
	}
	for id := range inside {
		for _, p := range g.Nodes[id].Preds {
			if !inside[p] && p != head.ID {
				return true
			}
		}
	}
	return false
}
