package cfg

import (
	"testing"

	"repro/internal/ctype"
	"repro/internal/il"
)

func assign(id il.VarID) *il.Assign {
	return &il.Assign{Dst: il.Ref(id, ctype.IntType), Src: il.Int(0)}
}

func TestStraightLine(t *testing.T) {
	body := []il.Stmt{assign(0), assign(1), assign(2)}
	g, err := Build(body)
	if err != nil {
		t.Fatal(err)
	}
	// entry → a0 → a1 → a2 → exit
	n0 := g.NodeOf[body[0]]
	n1 := g.NodeOf[body[1]]
	n2 := g.NodeOf[body[2]]
	if len(n0.Succs) != 1 || n0.Succs[0] != n1.ID {
		t.Errorf("a0 succs %v", n0.Succs)
	}
	if len(n2.Succs) != 1 || n2.Succs[0] != g.Exit {
		t.Errorf("a2 succs %v", n2.Succs)
	}
}

func TestIfElseDiamond(t *testing.T) {
	thenS := assign(1)
	elseS := assign(2)
	ifs := &il.If{Cond: il.Ref(0, ctype.IntType), Then: []il.Stmt{thenS}, Else: []il.Stmt{elseS}}
	after := assign(3)
	g, err := Build([]il.Stmt{ifs, after})
	if err != nil {
		t.Fatal(err)
	}
	c := g.NodeOf[ifs]
	if len(c.Succs) != 2 {
		t.Fatalf("cond succs %v", c.Succs)
	}
	a := g.NodeOf[after]
	if len(a.Preds) != 2 {
		t.Errorf("join preds %v", a.Preds)
	}
}

func TestIfNoElseFallthrough(t *testing.T) {
	thenS := assign(1)
	ifs := &il.If{Cond: il.Ref(0, ctype.IntType), Then: []il.Stmt{thenS}}
	after := assign(2)
	g, err := Build([]il.Stmt{ifs, after})
	if err != nil {
		t.Fatal(err)
	}
	a := g.NodeOf[after]
	// Preds: then-stmt and cond itself.
	if len(a.Preds) != 2 {
		t.Errorf("after preds %v", a.Preds)
	}
}

func TestWhileBackEdge(t *testing.T) {
	bodyS := assign(1)
	w := &il.While{Cond: il.Ref(0, ctype.IntType), Body: []il.Stmt{bodyS}}
	g, err := Build([]il.Stmt{w})
	if err != nil {
		t.Fatal(err)
	}
	c := g.NodeOf[w]
	b := g.NodeOf[bodyS]
	// body → cond back edge
	found := false
	for _, s := range b.Succs {
		if s == c.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("no back edge: body succs %v", b.Succs)
	}
	// cond → exit and cond → body
	if len(c.Succs) != 2 {
		t.Errorf("cond succs %v", c.Succs)
	}
}

func TestGotoResolution(t *testing.T) {
	lbl := &il.Label{Name: ".L1"}
	gt := &il.Goto{Target: ".L1"}
	skipped := assign(1)
	g, err := Build([]il.Stmt{gt, skipped, lbl})
	if err != nil {
		t.Fatal(err)
	}
	gn := g.NodeOf[gt]
	ln := g.NodeOf[lbl]
	if len(gn.Succs) != 1 || gn.Succs[0] != ln.ID {
		t.Errorf("goto succs %v, label node %d", gn.Succs, ln.ID)
	}
	if g.Reachable()[g.NodeOf[skipped].ID] {
		t.Error("statement after goto should be unreachable")
	}
}

func TestUndefinedLabel(t *testing.T) {
	if _, err := Build([]il.Stmt{&il.Goto{Target: ".nope"}}); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestReturnEdges(t *testing.T) {
	ret := &il.Return{}
	after := assign(1)
	g, err := Build([]il.Stmt{ret, after})
	if err != nil {
		t.Fatal(err)
	}
	rn := g.NodeOf[ret]
	if len(rn.Succs) != 1 || rn.Succs[0] != g.Exit {
		t.Errorf("return succs %v", rn.Succs)
	}
	if g.Reachable()[g.NodeOf[after].ID] {
		t.Error("code after return should be unreachable")
	}
}

func TestGotoIntoLoopDetected(t *testing.T) {
	// §5.2: a branch entering a loop body disqualifies DO conversion.
	inLbl := &il.Label{Name: ".in"}
	bodyS := assign(1)
	w := &il.While{Cond: il.Ref(0, ctype.IntType), Body: []il.Stmt{inLbl, bodyS}}
	gt := &il.Goto{Target: ".in"}
	g, err := Build([]il.Stmt{gt, w})
	if err != nil {
		t.Fatal(err)
	}
	bodySet := map[il.Stmt]bool{inLbl: true, bodyS: true}
	if !g.EntersBody(g.NodeOf[w], bodySet) {
		t.Error("goto into loop not detected")
	}
}

func TestCleanLoopNotEntered(t *testing.T) {
	bodyS := assign(1)
	w := &il.While{Cond: il.Ref(0, ctype.IntType), Body: []il.Stmt{bodyS}}
	g, err := Build([]il.Stmt{assign(2), w})
	if err != nil {
		t.Fatal(err)
	}
	if g.EntersBody(g.NodeOf[w], map[il.Stmt]bool{bodyS: true}) {
		t.Error("clean loop flagged as entered")
	}
}

func TestDoLoopEdges(t *testing.T) {
	bodyS := assign(1)
	d := &il.DoLoop{IV: 0, Init: il.Int(0), Limit: il.Int(9), Step: il.Int(1), Body: []il.Stmt{bodyS}}
	g, err := Build([]il.Stmt{d})
	if err != nil {
		t.Fatal(err)
	}
	// Head evaluates bounds once, then feeds the latch; the latch controls
	// iteration (body or fallthrough).
	h := g.NodeOf[d]
	if len(h.Succs) != 1 {
		t.Fatalf("head succs %v", h.Succs)
	}
	latch := g.Nodes[h.Succs[0]]
	if !latch.Latch || latch.IVDef != d.IV {
		t.Fatalf("latch: %+v", latch)
	}
	if len(latch.Succs) != 2 {
		t.Errorf("latch succs %v", latch.Succs)
	}
	// Body's successor is the latch, not the head.
	b := g.NodeOf[bodyS]
	if len(b.Succs) != 1 || b.Succs[0] != latch.ID {
		t.Errorf("body succs %v", b.Succs)
	}
	// Init evaluation happens once: the latch's def must not reach the
	// head, which has a single outside predecessor.
	if len(h.Preds) != 1 {
		t.Errorf("head preds %v", h.Preds)
	}
}

func TestDominators(t *testing.T) {
	// entry → c → {t, e} → join
	thenS := assign(1)
	elseS := assign(2)
	ifs := &il.If{Cond: il.Ref(0, ctype.IntType), Then: []il.Stmt{thenS}, Else: []il.Stmt{elseS}}
	join := assign(3)
	g, err := Build([]il.Stmt{ifs, join})
	if err != nil {
		t.Fatal(err)
	}
	dom := g.Dominators()
	c := g.NodeOf[ifs].ID
	j := g.NodeOf[join].ID
	tn := g.NodeOf[thenS].ID
	if !dom[j][c] {
		t.Error("cond should dominate join")
	}
	if dom[j][tn] {
		t.Error("then-branch should not dominate join")
	}
	if !dom[tn][c] {
		t.Error("cond should dominate then")
	}
}

func TestDominatorsLoop(t *testing.T) {
	bodyS := assign(1)
	w := &il.While{Cond: il.Ref(0, ctype.IntType), Body: []il.Stmt{bodyS}}
	after := assign(2)
	g, err := Build([]il.Stmt{w, after})
	if err != nil {
		t.Fatal(err)
	}
	dom := g.Dominators()
	if !dom[g.NodeOf[after].ID][g.NodeOf[w].ID] {
		t.Error("loop head should dominate code after loop")
	}
	if !dom[g.NodeOf[bodyS].ID][g.NodeOf[w].ID] {
		t.Error("loop head should dominate body")
	}
}
