// Package vector implements the vectorizer: Allen–Kennedy codegen over the
// dependence graph. Each innermost DO loop's top-level statements are
// grouped into strongly connected components of the dependence graph;
// acyclic components whose statement is a regular store become vector
// statements (loop distribution), cyclic components stay as serial loops.
// Vector statements longer than the Titan's vector length are strip mined
// (§9); strips with no carried dependences become do-parallel loops so the
// iterations can spread across processors (§2).
package vector

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ctype"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
)

// DefaultVL is the strip length. The Titan's vector register file holds
// 8192 words; the compiler uses 32-element strips so four strips of eight
// vector temporaries fit comfortably (and matching the paper's §9 output).
// The schedule layer owns the constant; this alias keeps old call sites.
const DefaultVL = schedule.DefaultVL

// Config controls vectorization.
type Config struct {
	// VL overrides the default strip length for loops without an explicit
	// schedule (DefaultVL when zero).
	VL int
	// Parallel enables emitting do-parallel strip loops when legal.
	Parallel bool
	// Depend carries aliasing assumptions.
	Depend depend.Options
	// Analysis, when non-nil, memoizes per-loop dependence graphs across
	// this pass and the parallel/strength consumers of the same loops.
	Analysis *analysis.Cache
	// Diags receives one verdict remark per examined innermost loop:
	// vect-vectorized with the chosen strip shape, or a rejection code
	// naming the blocking dependence edge. Nil drops the remarks.
	Diags *diag.Reporter
	// Schedules holds explicit per-loop plans (the tuner's output). Loops
	// without an entry follow schedule.Default() with the VL override.
	Schedules *schedule.Set
}

// schedFor resolves the plan for one loop: an explicit Set entry wins;
// otherwise the default schedule with Config.VL applied.
func (c Config) schedFor(p *il.Proc, loop *il.DoLoop) schedule.Schedule {
	if s, ok := c.Schedules.Lookup(p.Name, loop.Pos); ok {
		if s.VL <= 0 {
			s.VL = schedule.DefaultVL
		}
		return s
	}
	s := schedule.Default()
	if c.VL > 0 {
		s.VL = c.VL
	}
	return s
}

// Stats reports what the vectorizer did to a procedure.
type Stats struct {
	LoopsExamined   int `json:"loops_examined"`
	LoopsVectorized int `json:"loops_vectorized"` // at least one statement went vector
	VectorStmts     int `json:"vector_stmts"`
	MaskedStmts     int `json:"masked_stmts"` // vector statements executing under a mask
	ParallelLoops   int `json:"parallel_loops"`
	SerialResidue   int `json:"serial_residue"` // statements left in serial loops after distribution
}

// Add folds another procedure's stats into s (the pipeline merges per-proc
// results through this).
func (s *Stats) Add(o Stats) {
	s.LoopsExamined += o.LoopsExamined
	s.LoopsVectorized += o.LoopsVectorized
	s.VectorStmts += o.VectorStmts
	s.MaskedStmts += o.MaskedStmts
	s.ParallelLoops += o.ParallelLoops
	s.SerialResidue += o.SerialResidue
}

// VectorizeProc vectorizes every innermost DO loop in the procedure.
func VectorizeProc(p *il.Proc, cfg Config) Stats {
	var st Stats
	p.Body = vectorizeList(p, p.Body, cfg, &st)
	return st
}

func vectorizeList(p *il.Proc, list []il.Stmt, cfg Config, st *Stats) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = vectorizeList(p, n.Then, cfg, st)
			n.Else = vectorizeList(p, n.Else, cfg, st)
		case *il.While:
			n.Body = vectorizeList(p, n.Body, cfg, st)
		case *il.DoLoop:
			maybeInterchange(p, n, cfg)
			n.Body = vectorizeList(p, n.Body, cfg, st)
			if isInnermost(n.Body) {
				st.LoopsExamined++
				if repl, ok := vectorizeLoop(p, n, cfg, st); ok {
					st.LoopsVectorized++
					out = append(out, repl...)
					continue
				}
			}
		case *il.DoParallel:
			n.Body = vectorizeList(p, n.Body, cfg, st)
		}
		out = append(out, s)
	}
	return out
}

// isInnermost reports whether the body contains no loops.
func isInnermost(body []il.Stmt) bool {
	inner := false
	il.WalkStmts(body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.DoLoop, *il.While, *il.DoParallel:
			inner = true
		}
		return !inner
	})
	return !inner
}

// maybeInterchange swaps the headers of a perfect two-level nest when the
// outer loop's explicit schedule asks for it and the swap is provably
// legal (every direction vector is (=,=)). Runs before the walk descends,
// so the vectorizer then sees the interchanged inner dimension.
func maybeInterchange(p *il.Proc, outer *il.DoLoop, cfg Config) {
	s, explicit := cfg.Schedules.Lookup(p.Name, outer.Pos)
	if !explicit || !s.Interchange {
		return
	}
	if err := schedule.CheckInterchange(p, outer, cfg.Depend); err != nil {
		return
	}
	inner := outer.Body[0].(*il.DoLoop)
	outer.IV, inner.IV = inner.IV, outer.IV
	outer.Init, inner.Init = inner.Init, outer.Init
	outer.Limit, inner.Limit = inner.Limit, outer.Limit
	outer.Step, inner.Step = inner.Step, outer.Step
	p.BumpGeneration()
	remark(cfg, p, outer, diag.VectInterchanged, map[string]string{"schedule": s.String()},
		"loop nest interchanged: outer and inner headers swapped by the loop schedule")
}

// remark files one verdict diagnostic for the loop (nil-reporter safe).
func remark(cfg Config, p *il.Proc, loop *il.DoLoop, code diag.Code, args map[string]string, format string, a ...any) {
	cfg.Diags.Report(diag.Diagnostic{
		Severity: diag.SevRemark,
		Code:     code,
		Pos:      loop.Pos,
		Proc:     p.Name,
		Pass:     "vectorize",
		Message:  fmt.Sprintf(format, a...),
		Args:     args,
	})
}

// blockingDep scans the loop's dependence edges for the one that kills
// vectorization of the statements in scc: a carried self-dependence or any
// edge between two members of a multi-statement cycle. Returns false when
// the component fails for a non-dependence reason.
func blockingDep(ld *depend.LoopDeps, scc []int) (depend.Dep, bool) {
	member := make(map[int]bool, len(scc))
	for _, i := range scc {
		member[i] = true
	}
	var fallback depend.Dep
	found := false
	for _, d := range ld.Deps {
		if !member[d.From] || !member[d.To] {
			continue
		}
		if len(scc) == 1 && !(d.From == d.To && d.Carried) {
			continue
		}
		if d.Carried {
			return d, true
		}
		if !found {
			fallback, found = d, true
		}
	}
	return fallback, found
}

// vectorizeLoop attempts Allen–Kennedy codegen on one innermost loop,
// returning the replacement statement sequence. Exactly one verdict remark
// is reported per call (§5's accept-or-reject decision, with the blocking
// dependence named on rejection).
func vectorizeLoop(p *il.Proc, loop *il.DoLoop, cfg Config, st *Stats) ([]il.Stmt, bool) {
	if !normalize(p, loop) {
		remark(cfg, p, loop, diag.VectNotNormalized, nil,
			"loop not vectorized: step is not a known non-zero constant")
		return nil, false
	}
	ld := cfg.Analysis.LoopDeps(p, loop, cfg.Depend)
	n := len(loop.Body)
	if n == 0 {
		remark(cfg, p, loop, diag.VectEmptyBody, nil, "loop not vectorized: empty body")
		return nil, false
	}

	sched := cfg.schedFor(p, loop)
	// Predicated statements vectorize as masked strips only under the
	// default/masked strategy; branchy-serial keeps them in the serial
	// residue (predicated scalar execution).
	allowMasked := sched.MaskStrategy == "" || sched.MaskStrategy == schedule.MaskAuto
	hasPred := false
	for _, s := range loop.Body {
		if _, ok := s.(*il.PredAssign); ok {
			hasPred = true
			break
		}
	}

	// Condense the dependence graph into SCCs.
	adj := make([][]int, n)
	for _, d := range ld.Deps {
		adj[d.From] = append(adj[d.From], d.To)
	}
	sccs := tarjan(n, adj)

	// Decide vectorizability per SCC.
	type piece struct {
		stmts  []int
		vector bool
	}
	var pieces []piece
	anyVector := false
	for _, scc := range sccs {
		vec := false
		if len(scc) == 1 {
			i := scc[0]
			selfCycle := false
			for _, d := range ld.Deps {
				if d.From == i && d.To == i && d.Carried {
					selfCycle = true
				}
			}
			if !selfCycle && !ld.Barrier[i] && vectorizableStmt(p, loop, loop.Body[i], allowMasked) {
				vec = true
			}
		}
		pieces = append(pieces, piece{scc, vec})
		if vec {
			anyVector = true
		}
	}
	if !anyVector {
		// Name what blocked every component: prefer the dependence cycle,
		// then a barrier statement, then the shape of the store.
		var dep depend.Dep
		depFound := false
		barrier := -1
		for _, pc := range pieces {
			if d, ok := blockingDep(ld, pc.stmts); ok && (!depFound || (d.Carried && !dep.Carried)) {
				dep, depFound = d, true
			}
			for _, i := range pc.stmts {
				if ld.Barrier[i] && barrier < 0 {
					barrier = i
				}
			}
		}
		switch {
		case hasPred && !allowMasked:
			remark(cfg, p, loop, diag.VectIfRejected, map[string]string{"schedule": sched.String()},
				"loop kept branchy-serial: predicated statements pinned scalar by the loop's mask strategy")
		case hasPred && depFound:
			remark(cfg, p, loop, diag.VectIfRejected, map[string]string{"dep": dep.String()},
				"if-converted loop not vectorized: dependence %s crosses the guard", dep.String())
		case depFound:
			remark(cfg, p, loop, diag.VectDepCycle, map[string]string{"dep": dep.String()},
				"loop not vectorized: dependence cycle %s", dep.String())
		case barrier >= 0:
			remark(cfg, p, loop, diag.VectBarrier, map[string]string{"stmt": loop.Body[barrier].String()},
				"loop not vectorized: statement S%d is a dependence barrier (call or irregular control)", barrier)
		default:
			remark(cfg, p, loop, diag.VectNotAffine, nil,
				"loop not vectorized: no store with addresses affine in the loop variable")
		}
		return nil, false
	}

	// Distribution is only legal when no scalar flow crosses component
	// boundaries (scalar expansion is not implemented).
	sccOf := make([]int, n)
	for pi, pc := range pieces {
		for _, i := range pc.stmts {
			sccOf[i] = pi
		}
	}
	if len(pieces) > 1 {
		for _, d := range ld.Deps {
			if d.Scalar && sccOf[d.From] != sccOf[d.To] {
				remark(cfg, p, loop, diag.VectScalarFlow, map[string]string{"dep": d.String()},
					"loop not vectorized: scalar dependence %s crosses distribution components", d.String())
				return nil, false
			}
		}
	}

	// No carried dependence anywhere ⇒ strips are independent ⇒ parallel,
	// unless the loop's schedule pins the strips serial.
	carried := false
	for _, d := range ld.Deps {
		if d.Carried {
			carried = true
		}
	}
	parallelOK := cfg.Parallel && !carried && !sched.SerialStrips

	var out []il.Stmt
	vecStmts, maskedStmts, residue := 0, 0, 0
	for _, pc := range pieces {
		if pc.vector {
			for _, i := range pc.stmts {
				var dst *il.Load
				var src, cond il.Expr
				switch as := loop.Body[i].(type) {
				case *il.Assign:
					dst, src = as.Dst.(*il.Load), as.Src
				case *il.PredAssign:
					dst, src, cond = as.Dst.(*il.Load), as.Src, as.Cond
					st.MaskedStmts++
					maskedStmts++
				}
				stmts := emitVector(p, loop, dst, src, cond, sched, parallelOK, st)
				out = append(out, stmts...)
				st.VectorStmts++
				vecStmts++
			}
			continue
		}
		// Serial residue: a copy of the loop holding just this component.
		var body []il.Stmt
		for _, i := range pc.stmts {
			body = append(body, loop.Body[i])
			st.SerialResidue++
			residue++
		}
		out = append(out, &il.DoLoop{IV: loop.IV, Init: il.CloneExpr(loop.Init),
			Limit: il.CloneExpr(loop.Limit), Step: il.CloneExpr(loop.Step),
			Body: body, Safe: loop.Safe, Pos: loop.Pos})
	}
	// Optimizer-manufactured strip statements inherit the loop's position.
	il.StampStmts(out, loop.Pos)
	shape := "serial strips"
	if parallelOK {
		shape = "parallel strips"
	}
	args := map[string]string{
		"vl":           fmt.Sprint(sched.VL),
		"vector_stmts": fmt.Sprint(vecStmts),
		"residue":      fmt.Sprint(residue),
		"shape":        shape,
		"schedule":     sched.String(),
	}
	if maskedStmts > 0 {
		args["masked_stmts"] = fmt.Sprint(maskedStmts)
		remark(cfg, p, loop, diag.VectMasked, args,
			"loop vectorized under a mask: %d vector statement(s) (%d masked), VL=%d, %s (%d serial residue)",
			vecStmts, maskedStmts, sched.VL, shape, residue)
	} else {
		remark(cfg, p, loop, diag.VectVectorized, args,
			"loop vectorized: %d vector statement(s), VL=%d, %s (%d serial residue)",
			vecStmts, sched.VL, shape, residue)
	}
	// The rewrite replaces statements the proc-wide chains and any cached
	// dependence graphs were built over; stale entries must not survive.
	p.BumpGeneration()
	return out, true
}

// normalize rewrites the loop to Init 0, Step 1, replacing body uses of
// the IV by Init + Step·IV. Returns false when the step is not a known
// constant.
func normalize(p *il.Proc, loop *il.DoLoop) bool {
	stepC, ok := il.IsIntConst(loop.Step)
	if !ok || stepC == 0 {
		return false
	}
	initC, initConst := il.IsIntConst(loop.Init)
	if initConst && initC == 0 && stepC == 1 {
		return true
	}
	// trips-1 = (Limit-Init)/Step  (exact for DO semantics).
	t := p.Vars[loop.IV].Type
	diff := il.Sub(il.CloneExpr(loop.Limit), il.CloneExpr(loop.Init), t)
	limit := il.NewBin(il.OpDiv, diff, il.CloneExpr(loop.Step), t)
	oldIV := loop.IV
	init := loop.Init
	step := loop.Step
	newIV := p.AddVar(il.Var{Name: p.Vars[oldIV].Name + ".n", Type: ctype.IntType, Class: il.ClassTemp})
	for _, s := range loop.Body {
		il.RewriteTreeExprs(s, func(e il.Expr) il.Expr {
			if v, ok := e.(*il.VarRef); ok && v.ID == oldIV {
				return il.Add(il.CloneExpr(init),
					il.Mul(il.CloneExpr(step), il.Ref(newIV, ctype.IntType), ctype.IntType), t)
			}
			return e
		})
	}
	loop.IV = newIV
	loop.Init = il.Int(0)
	loop.Limit = limit
	loop.Step = il.Int(1)
	return true
}

// vectorizableStmt reports whether s is a store whose destination and
// every load are affine in the loop IV with non-zero destination stride,
// and whose value expression uses the IV only inside load addresses. A
// predicated store additionally needs a mask-lowerable condition and the
// masked strategy enabled for the loop.
func vectorizableStmt(p *il.Proc, loop *il.DoLoop, s il.Stmt, allowMasked bool) bool {
	var dstE, src il.Expr
	switch as := s.(type) {
	case *il.Assign:
		dstE, src = as.Dst, as.Src
	case *il.PredAssign:
		if !allowMasked || !maskableCond(p, loop, as.Cond) {
			return false
		}
		dstE, src = as.Dst, as.Src
	default:
		return false
	}
	dst, ok := dstE.(*il.Load)
	if !ok || dst.Volatile {
		return false
	}
	if _, _, ok := splitAffine(p, loop, dst.Addr); !ok {
		return false
	}
	if c, _, _ := mustSplit(p, loop, dst.Addr); c == 0 {
		return false
	}
	// Loads must be affine; the residual expression must not use the IV.
	return vecOperandOK(p, loop, src)
}

// vecOperandOK reports whether e can ride a vector strip: every load is
// non-volatile and affine in the loop IV, and the residual (non-address)
// expression never uses the IV.
func vecOperandOK(p *il.Proc, loop *il.DoLoop, e il.Expr) bool {
	ok := true
	resid := il.RewriteExpr(e, func(x il.Expr) il.Expr {
		if ld, isLoad := x.(*il.Load); isLoad {
			if ld.Volatile {
				ok = false
			}
			if _, _, affine := splitAffine(p, loop, ld.Addr); !affine {
				ok = false
			}
			// Stand-in constant so the UsesVar check below only sees
			// residual (non-address) uses of the IV.
			return il.Int(0)
		}
		return x
	})
	return ok && !il.UsesVar(resid, loop.IV)
}

// maskableCond reports whether cond can be lowered to Titan mask ops: a
// comparison over vector-ridable operands, or !, & , | combinations of
// such comparisons. This mirrors exactly what codegen's mask lowering
// handles (vcmp.{lt,le,eq,ne} plus mnot/mand/mor).
func maskableCond(p *il.Proc, loop *il.DoLoop, e il.Expr) bool {
	switch n := e.(type) {
	case *il.Bin:
		if n.Op.IsComparison() {
			return vecOperandOK(p, loop, n.L) && vecOperandOK(p, loop, n.R)
		}
		if n.Op == il.OpAnd || n.Op == il.OpOr {
			return maskableCond(p, loop, n.L) && maskableCond(p, loop, n.R)
		}
	case *il.Un:
		if n.Op == il.OpNot {
			return maskableCond(p, loop, n.X)
		}
	}
	return false
}

// splitAffine decomposes addr into (coef, base) with base IV-free.
func splitAffine(p *il.Proc, loop *il.DoLoop, addr il.Expr) (int64, il.Expr, bool) {
	c, b, ok := affine(p, loop.IV, addr)
	return c, b, ok
}

func mustSplit(p *il.Proc, loop *il.DoLoop, addr il.Expr) (int64, il.Expr, bool) {
	return splitAffine(p, loop, addr)
}

// affine returns (coef, rest) such that e = rest + coef·iv.
func affine(p *il.Proc, iv il.VarID, e il.Expr) (int64, il.Expr, bool) {
	switch n := e.(type) {
	case *il.ConstInt:
		return 0, e, true
	case *il.ConstFloat:
		return 0, e, true
	case *il.VarRef:
		if n.ID == iv {
			return 1, il.Int(0), true
		}
		return 0, e, true
	case *il.AddrOf:
		return 0, e, true
	case *il.Cast:
		c, r, ok := affine(p, iv, n.X)
		if !ok {
			return 0, nil, false
		}
		if c == 0 {
			return 0, e, true
		}
		return c, r, true
	case *il.Bin:
		switch n.Op {
		case il.OpAdd:
			cl, rl, okl := affine(p, iv, n.L)
			cr, rr, okr := affine(p, iv, n.R)
			if !okl || !okr {
				return 0, nil, false
			}
			return cl + cr, il.Add(rl, rr, e.Type()), true
		case il.OpSub:
			cl, rl, okl := affine(p, iv, n.L)
			cr, rr, okr := affine(p, iv, n.R)
			if !okl || !okr {
				return 0, nil, false
			}
			return cl - cr, il.Sub(rl, rr, e.Type()), true
		case il.OpMul:
			if c, ok := il.IsIntConst(n.L); ok {
				ci, ri, oki := affine(p, iv, n.R)
				if !oki {
					return 0, nil, false
				}
				return c * ci, il.Mul(il.Int(c), ri, e.Type()), true
			}
			if c, ok := il.IsIntConst(n.R); ok {
				ci, ri, oki := affine(p, iv, n.L)
				if !oki {
					return 0, nil, false
				}
				return c * ci, il.Mul(ri, il.Int(c), e.Type()), true
			}
		}
	case *il.Un:
		if n.Op == il.OpNeg {
			c, r, ok := affine(p, iv, n.X)
			if !ok {
				return 0, nil, false
			}
			return -c, il.NewUn(il.OpNeg, r, e.Type()), true
		}
	}
	if !il.UsesVar(e, iv) {
		return 0, e, true
	}
	return 0, nil, false
}

// emitVector produces the strip-mined vector code for one (possibly
// predicated) store statement of a normalized loop (IV 0..Limit step 1),
// following the loop's schedule for strip length and parallel shape. A
// non-nil cond becomes the strip's mask expression.
func emitVector(p *il.Proc, loop *il.DoLoop, dst *il.Load, src, cond il.Expr, sched schedule.Schedule, parallelOK bool, st *Stats) []il.Stmt {
	vl := int64(sched.VL)
	dstCoef, dstBase, _ := affine(p, loop.IV, dst.Addr)

	// Total length = Limit + 1 (normalized).
	total := il.Add(il.CloneExpr(loop.Limit), il.Int(1), ctype.IntType)

	// An expression with loads replaced by vector section references of
	// the strip origin; the strip IV is added to bases below.
	makeVec := func(e il.Expr, originIV il.Expr) il.Expr {
		if e == nil {
			return nil
		}
		// Clone per call: the rewrite is copy-on-write, and makeVec runs
		// once per emitted strip form — without the clone the strip and
		// remainder statements would share invariant subtrees.
		return il.RewriteExpr(il.CloneExpr(e), func(x il.Expr) il.Expr {
			ld, ok := x.(*il.Load)
			if !ok {
				return x
			}
			coef, base, _ := affine(p, loop.IV, ld.Addr)
			if coef == 0 {
				return x // invariant scalar load, broadcast
			}
			b := il.Add(base, il.Mul(il.Int(coef), il.CloneExpr(originIV), ctype.IntType), ld.Addr.Type())
			return &il.VecRef{Base: b, Stride: il.Int(coef), T: ld.T}
		})
	}

	// Small constant trip counts skip the strip loop entirely (§5.2: 4×4
	// graphics transforms must not pay strip overhead).
	if tc, ok := il.IsIntConst(total); ok && tc <= vl && tc > 0 {
		va := &il.VectorAssign{
			DstBase:   il.Add(dstBase, il.Mul(il.Int(dstCoef), il.Int(0), ctype.IntType), dst.Addr.Type()),
			DstStride: il.Int(dstCoef),
			Len:       il.Int(tc),
			Elem:      dst.T,
			RHS:       makeVec(src, il.Int(0)),
			Mask:      makeVec(cond, il.Int(0)),
		}
		return []il.Stmt{va}
	}

	// Strip loop:
	//   do vi = 0, total-1, VL {
	//       vlen = total - vi; if (VL < vlen) vlen = VL
	//       [dstBase + c·vi : c](0:vlen) = RHS
	//   }
	vi := p.AddVar(il.Var{Name: "vi", Type: ctype.IntType, Class: il.ClassTemp})
	vlen := p.AddVar(il.Var{Name: "vlen", Type: ctype.IntType, Class: il.ClassTemp})
	viRef := il.Ref(vi, ctype.IntType)
	vlenRef := il.Ref(vlen, ctype.IntType)

	body := []il.Stmt{
		&il.Assign{Dst: vlenRef, Src: il.Sub(total, il.CloneExpr(viRef), ctype.IntType)},
		&il.If{
			Cond: il.NewBin(il.OpLt, il.Int(vl), il.CloneExpr(vlenRef), ctype.IntType),
			Then: []il.Stmt{&il.Assign{Dst: il.CloneExpr(vlenRef).(*il.VarRef), Src: il.Int(vl)}},
		},
		&il.VectorAssign{
			DstBase:   il.Add(dstBase, il.Mul(il.Int(dstCoef), il.CloneExpr(viRef), ctype.IntType), dst.Addr.Type()),
			DstStride: il.Int(dstCoef),
			Len:       il.CloneExpr(vlenRef),
			Elem:      dst.T,
			RHS:       makeVec(src, viRef),
			Mask:      makeVec(cond, viRef),
		},
	}
	limit := il.CloneExpr(loop.Limit)
	if parallelOK {
		st.ParallelLoops++
		return []il.Stmt{&il.DoParallel{IV: vi, Init: il.Int(0), Limit: limit, Step: il.Int(vl),
			Body: body, Width: sched.ParallelWidth}}
	}
	return []il.Stmt{&il.DoLoop{IV: vi, Init: il.Int(0), Limit: limit, Step: il.Int(vl), Body: body}}
}

// tarjan computes strongly connected components in reverse topological
// order; the caller receives them in topological order.
func tarjan(n int, adj [][]int) [][]int {
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	// Tarjan emits reverse topological order; flip it, then order the
	// statements inside each component by source position.
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	for _, scc := range sccs {
		sortInts(scc)
	}
	return sccs
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
