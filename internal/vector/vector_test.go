package vector

import (
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

func compileOpt(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	opt.Optimize(p, opt.DefaultOptions())
	return p
}

func countKind(body []il.Stmt) (vec, par, do, while int) {
	il.WalkStmts(body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.VectorAssign:
			vec++
		case *il.DoParallel:
			par++
		case *il.DoLoop:
			do++
		case *il.While:
			while++
		}
		return true
	})
	return
}

func TestVectorizeSimpleCopy(t *testing.T) {
	src := `
float a[1000], b[1000];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = b[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.LoopsVectorized != 1 || st.VectorStmts != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
	vec, _, do, _ := countKind(p.Body)
	if vec != 1 {
		t.Errorf("vector stmts: %d\n%s", vec, p)
	}
	if do != 1 { // the strip loop
		t.Errorf("strip loops: %d\n%s", do, p)
	}
}

func TestVectorizeParallelStrips(t *testing.T) {
	src := `
float a[1000], b[1000], c[1000];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = b[i] + c[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{Parallel: true})
	if st.ParallelLoops != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
	_, par, _, _ := countKind(p.Body)
	if par != 1 {
		t.Errorf("parallel loops: %d\n%s", par, p)
	}
}

func TestSmallConstantTripNoStripLoop(t *testing.T) {
	// §5.2: 4-element graphics loops must emit a bare vector statement.
	src := `
float m[4], v[4];
void f(void) {
	int i;
	for (i = 0; i < 4; i++) m[i] = v[i] * 2.0f;
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
	vec, par, do, while := countKind(p.Body)
	if vec != 1 || par != 0 || do != 0 || while != 0 {
		t.Errorf("shapes: vec=%d par=%d do=%d while=%d\n%s", vec, par, do, while, p)
	}
	// The vector length must be the constant 4.
	var va *il.VectorAssign
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if v, ok := s.(*il.VectorAssign); ok {
			va = v
		}
		return true
	})
	if l, ok := il.IsIntConst(va.Len); !ok || l != 4 {
		t.Errorf("len: %s", p.ExprString(va.Len))
	}
}

func TestBacksolveStaysSerial(t *testing.T) {
	// §6: the backsolve recurrence must not vectorize.
	src := `
void backsolve(float *x, float *y, float *z, int n)
{
	float *p, *q;
	int i;
	p = &x[1];
	q = &x[0];
	for (i = 0; i < n-2; i++)
		p[i] = z[i] * (y[i] - q[i]);
}
`
	p := compileOpt(t, src, "backsolve")
	st := VectorizeProc(p, Config{Parallel: true, Depend: depend.Options{NoAlias: true}})
	if st.LoopsVectorized != 0 || st.VectorStmts != 0 {
		t.Fatalf("recurrence vectorized: %+v\n%s", st, p)
	}
}

func TestAliasedPointersStaySerial(t *testing.T) {
	// §9: without inlining/pragma/noalias, pointer parameters may alias.
	src := `
void f(float *x, float *y, int n) {
	int i;
	for (i = 0; i < n; i++) x[i] = y[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.LoopsVectorized != 0 {
		t.Fatalf("aliased loop vectorized: %+v\n%s", st, p)
	}
}

func TestNoAliasVectorizes(t *testing.T) {
	src := `
void f(float *x, float *y, int n) {
	int i;
	for (i = 0; i < n; i++) x[i] = y[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{Depend: depend.Options{NoAlias: true}})
	if st.LoopsVectorized != 1 {
		t.Fatalf("noalias loop not vectorized: %+v\n%s", st, p)
	}
}

func TestPragmaSafeVectorizes(t *testing.T) {
	src := "void f(float *x, float *y, int n) {\n\tint i;\n#pragma safe\n\tfor (i = 0; i < n; i++) x[i] = y[i];\n}"
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.LoopsVectorized != 1 {
		t.Fatalf("safe loop not vectorized: %+v\n%s", st, p)
	}
}

func TestReductionStaysSerial(t *testing.T) {
	src := `
float a[100];
float f(int n) {
	float s;
	int i;
	s = 0;
	for (i = 0; i < n; i++) s = s + a[i];
	return s;
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 0 {
		t.Fatalf("reduction vectorized: %+v\n%s", st, p)
	}
}

func TestCallLoopStaysSerial(t *testing.T) {
	src := `
float g(float);
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = g(a[i]);
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 0 {
		t.Fatalf("call loop vectorized: %+v\n%s", st, p)
	}
}

func TestVolatileStaysSerial(t *testing.T) {
	src := `
volatile float port[100];
float a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = port[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 0 {
		t.Fatalf("volatile loop vectorized: %+v\n%s", st, p)
	}
}

func TestLoopDistribution(t *testing.T) {
	// S1 (vectorizable) and S2 (recurrence) split into a vector statement
	// plus a serial loop.
	src := `
float a[500], b[500], c[500];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		a[i] = b[i] * 2.0f;
		c[i+1] = c[i] + a[i];
	}
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 1 {
		t.Fatalf("distribution failed: %+v\n%s", st, p)
	}
	if st.SerialResidue == 0 {
		t.Errorf("recurrence residue missing: %+v\n%s", st, p)
	}
	// Order: the vector statement must precede the serial loop (c uses a).
	out := p.String()
	vecPos := strings.Index(out, "](0:")
	serialPos := strings.LastIndex(out, "do ")
	if vecPos == -1 || serialPos == -1 || vecPos > serialPos {
		t.Errorf("distribution order wrong:\n%s", out)
	}
}

func TestPaperDaxpyShape(t *testing.T) {
	// §9 end-to-end (manually pre-inlined): the daxpy loop over arrays
	// becomes a parallel strip loop of vector statements.
	src := `
float a[100], b[100], c[100];
void f(void) {
	int i;
	for (i = 0; i < 100; i++)
		a[i] = b[i] + 1.0f * c[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{Parallel: true})
	if st.ParallelLoops != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
	var par *il.DoParallel
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoParallel); ok {
			par = d
		}
		return true
	})
	// do parallel vi = 0, 99, 32 — the paper's exact shape.
	if v, ok := il.IsIntConst(par.Limit); !ok || v != 99 {
		t.Errorf("limit: %s", p.ExprString(par.Limit))
	}
	if v, ok := il.IsIntConst(par.Step); !ok || v != 32 {
		t.Errorf("step: %s", p.ExprString(par.Step))
	}
}

func TestStrideTwoVectorizes(t *testing.T) {
	src := `
float a[2000];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[2*i] = 1.0f;
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 1 {
		t.Fatalf("strided store not vectorized: %+v\n%s", st, p)
	}
	var va *il.VectorAssign
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if v, ok := s.(*il.VectorAssign); ok {
			va = v
		}
		return true
	})
	if v, ok := il.IsIntConst(va.DstStride); !ok || v != 8 {
		t.Errorf("stride: %s", p.ExprString(va.DstStride))
	}
}

func TestIVValueStoreStaysSerial(t *testing.T) {
	// a[i] = i stores the IV itself — no iota hardware modeled, must stay
	// serial.
	src := `
int a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = i;
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 0 {
		t.Fatalf("iota store vectorized: %+v\n%s", st, p)
	}
}

func TestDownwardLoopNormalizes(t *testing.T) {
	src := `
float a[300], b[300];
void f(int n) {
	int i;
	for (i = n - 1; i >= 0; i--) a[i] = b[i];
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 1 {
		t.Fatalf("downward loop not vectorized: %+v\n%s", st, p)
	}
}

func TestScalarBroadcast(t *testing.T) {
	src := `
float a[100];
void f(float alpha, int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = alpha;
}
`
	p := compileOpt(t, src, "f")
	st := VectorizeProc(p, Config{})
	if st.VectorStmts != 1 {
		t.Fatalf("broadcast not vectorized: %+v\n%s", st, p)
	}
}

func TestConfigurableStripLength(t *testing.T) {
	src := `
float a[100], b[100];
void f(void) {
	int i;
	for (i = 0; i < 100; i++) a[i] = b[i];
}
`
	p := compileOpt(t, src, "f")
	VectorizeProc(p, Config{VL: 8})
	var d *il.DoLoop
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if l, ok := s.(*il.DoLoop); ok {
			d = l
		}
		return true
	})
	if d == nil {
		t.Fatalf("no strip loop:\n%s", p)
	}
	if v, ok := il.IsIntConst(d.Step); !ok || v != 8 {
		t.Errorf("strip step: %s", p.ExprString(d.Step))
	}
}

func TestTarjanTopoOrder(t *testing.T) {
	// 0 → 1 → 2 with a 1↔2 cycle: SCCs {0}, {1,2} in that order.
	adj := [][]int{{1}, {2}, {1}}
	sccs := tarjan(3, adj)
	if len(sccs) != 2 {
		t.Fatalf("sccs: %v", sccs)
	}
	if len(sccs[0]) != 1 || sccs[0][0] != 0 {
		t.Errorf("first scc: %v", sccs[0])
	}
	if len(sccs[1]) != 2 {
		t.Errorf("second scc: %v", sccs[1])
	}
}

func TestTarjanSelfLoop(t *testing.T) {
	adj := [][]int{{0}}
	sccs := tarjan(1, adj)
	if len(sccs) != 1 || len(sccs[0]) != 1 {
		t.Errorf("sccs: %v", sccs)
	}
}
