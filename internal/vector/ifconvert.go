package vector

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
)

// This file implements if-conversion: flattening single-level conditionals
// in countable DO bodies into predicated stores (il.PredAssign) so the
// vectorizer can treat guarded statements as ordinary dependence-graph
// nodes and, when legal, execute them as masked vector strips. The pass
// runs after loop-nest parallelization and before vectorization; the
// transform is the classic one (guarded branches become predicates on the
// statements they guard), restricted to guards over pure conditions and
// branches made entirely of memory stores, so no scalar ever takes a
// predicated definition.

// IfConvStats reports what if-conversion did to a procedure.
type IfConvStats struct {
	LoopsExamined   int `json:"loops_examined"` // innermost DO loops holding a conditional
	IfsConverted    int `json:"ifs_converted"`
	StmtsPredicated int `json:"stmts_predicated"`
}

// Add folds another procedure's stats into s.
func (s *IfConvStats) Add(o IfConvStats) {
	s.LoopsExamined += o.LoopsExamined
	s.IfsConverted += o.IfsConverted
	s.StmtsPredicated += o.StmtsPredicated
}

// IfConvertProc flattens convertible conditionals in every innermost DO
// loop of the procedure. Loops whose explicit schedule sets MaskStrategy
// "off" are left exactly as written; "branchy-serial" still converts (the
// flattened predicated form is what the serial strips execute) and the
// vectorizer later refuses to mask such loops.
func IfConvertProc(p *il.Proc, scheds *schedule.Set, r *diag.Reporter) IfConvStats {
	var st IfConvStats
	ifConvertList(p, p.Body, scheds, r, &st)
	return st
}

func ifConvertList(p *il.Proc, list []il.Stmt, scheds *schedule.Set, r *diag.Reporter, st *IfConvStats) {
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			ifConvertList(p, n.Then, scheds, r, st)
			ifConvertList(p, n.Else, scheds, r, st)
		case *il.While:
			ifConvertList(p, n.Body, scheds, r, st)
		case *il.DoParallel:
			ifConvertList(p, n.Body, scheds, r, st)
		case *il.DoLoop:
			ifConvertList(p, n.Body, scheds, r, st)
			if isInnermost(n.Body) {
				ifConvertLoop(p, n, scheds, r, st)
			}
		}
	}
}

// ifConvertLoop rewrites the loop body in place, replacing each
// convertible top-level If with the predicated forms of its branch
// statements.
func ifConvertLoop(p *il.Proc, loop *il.DoLoop, scheds *schedule.Set, r *diag.Reporter, st *IfConvStats) {
	hasIf := false
	for _, s := range loop.Body {
		if _, ok := s.(*il.If); ok {
			hasIf = true
			break
		}
	}
	if !hasIf {
		return
	}
	st.LoopsExamined++
	if sched, explicit := scheds.Lookup(p.Name, loop.Pos); explicit && sched.MaskStrategy == schedule.MaskOff {
		return
	}

	ar := p.Arena()
	out := make([]il.Stmt, 0, len(loop.Body))
	converted, predicated := 0, 0
	for _, s := range loop.Body {
		cond, ok := s.(*il.If)
		if !ok || !convertibleIf(p, cond) {
			out = append(out, s)
			continue
		}
		for _, t := range cond.Then {
			as := t.(*il.Assign)
			out = append(out, ar.PredAssign(il.PredAssign{
				Cond: il.CloneExprIn(ar, cond.Cond),
				Dst:  as.Dst, Src: as.Src, Pos: as.Pos,
			}))
			predicated++
		}
		for _, t := range cond.Else {
			as := t.(*il.Assign)
			out = append(out, ar.PredAssign(il.PredAssign{
				Cond: il.NewUnIn(ar, il.OpNot, il.CloneExprIn(ar, cond.Cond), cond.Cond.Type()),
				Dst:  as.Dst, Src: as.Src, Pos: as.Pos,
			}))
			predicated++
		}
		converted++
		r.Report(diag.Diagnostic{
			Severity: diag.SevRemark, Code: diag.VectIfConverted,
			Pos: cond.Pos, Proc: p.Name, Pass: "ifconvert",
			Args:    map[string]string{"stmts": fmt.Sprint(len(cond.Then) + len(cond.Else))},
			Message: "conditional if-converted: guarded stores flattened to predicated statements",
		})
	}
	if converted == 0 {
		return
	}
	loop.Body = out
	il.StampStmts(loop.Body, loop.Pos)
	st.IfsConverted += converted
	st.StmtsPredicated += predicated
	p.BumpGeneration()
}

// convertibleIf reports whether the conditional can be flattened: a pure
// (non-volatile) condition guarding branches made entirely of non-volatile
// memory stores. Anything else — scalar assignments, nested control, calls,
// volatile accesses — must keep its branch, because predicating it would
// either give a scalar a conditional definition or change the program's
// observable behavior.
func convertibleIf(p *il.Proc, n *il.If) bool {
	if len(n.Then) == 0 && len(n.Else) == 0 {
		return false
	}
	if p.HasVolatile(n.Cond) {
		return false
	}
	stores := func(list []il.Stmt) bool {
		for _, s := range list {
			as, ok := s.(*il.Assign)
			if !ok {
				return false
			}
			dst, ok := as.Dst.(*il.Load)
			if !ok || dst.Volatile {
				return false
			}
			if p.HasVolatile(dst.Addr) || p.HasVolatile(as.Src) {
				return false
			}
		}
		return true
	}
	return stores(n.Then) && stores(n.Else)
}
