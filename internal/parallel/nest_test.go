package parallel

import (
	"testing"

	"repro/internal/il"
)

func parNestCount(body []il.Stmt) int {
	n := 0
	il.WalkStmts(body, func(s il.Stmt) bool {
		if _, ok := s.(*il.DoParallel); ok {
			n++
		}
		return true
	})
	return n
}

func TestNestMatrixScaleParallelizes(t *testing.T) {
	// Row-major 64x64: outer stride 256 bytes clears the inner sweep of
	// 4*63+3 bytes.
	src := `
float a[64][64], b[64][64];
void f(void) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			a[i][j] = b[i][j] * 2.0f + 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	st := ParallelizeNests(p)
	if st.NestsParallelized != 1 {
		t.Fatalf("nests: %d\n%s", st.NestsParallelized, p)
	}
	if parNestCount(p.Body) != 1 {
		t.Errorf("no DoParallel:\n%s", p)
	}
	// The inner loop must remain a serial DoLoop inside (vectorizer's
	// job comes later).
	var par *il.DoParallel
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if d, ok := s.(*il.DoParallel); ok {
			par = d
		}
		return true
	})
	inner := 0
	for _, s := range par.Body {
		if _, ok := s.(*il.DoLoop); ok {
			inner++
		}
	}
	if inner != 1 {
		t.Errorf("inner loop missing:\n%s", p)
	}
}

func TestNestRowOverlapStaysSerial(t *testing.T) {
	// Inner sweep of 128 elements over rows of 64: rows overlap, outer
	// iterations conflict.
	src := `
float a[64][64];
void f(void) {
	int i, j;
	for (i = 0; i < 32; i++)
		for (j = 0; j < 128; j++)
			a[0][i * 64 + j] = 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("overlapping nest parallelized:\n%s", p)
	}
}

func TestNestTransposedAccessStaysSerial(t *testing.T) {
	// a[j][i]: outer stride 4 does not clear the inner sweep of 256*(n-1).
	src := `
float a[64][64];
void f(void) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			a[j][i] = 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("column-major store parallelized:\n%s", p)
	}
}

func TestNestReductionStaysSerial(t *testing.T) {
	src := `
float a[64][64];
float total;
void f(void) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			total = total + a[i][j];
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("reduction nest parallelized:\n%s", p)
	}
}

func TestNestRuntimeInnerBoundStaysSerial(t *testing.T) {
	// Runtime inner bound: the sweep is unbounded, could cross rows.
	src := `
float a[64][64];
void f(int n) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < n; j++)
			a[i][j] = 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("runtime-bound nest parallelized:\n%s", p)
	}
}

func TestNestDistinctArraysParallelize(t *testing.T) {
	// Writes go to a, reads from b: distinct objects, any shapes.
	src := `
float a[32][32], b[32][32];
void f(void) {
	int i, j;
	for (i = 0; i < 32; i++)
		for (j = 0; j < 32; j++)
			a[i][j] = b[j][i];
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 1 {
		t.Fatalf("transpose-copy nest not parallelized:\n%s", p)
	}
}

func TestNestSinglePointerBaseParallelizes(t *testing.T) {
	// All references share one pointer base: disjointness across outer
	// iterations is pure geometry, independent of where the pointer
	// points.
	src := `
void f(float *a) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			a[i * 64 + j] = 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 1 {
		t.Fatalf("single-pointer nest not parallelized:\n%s", p)
	}
}

func TestNestTwoPointersStaySerial(t *testing.T) {
	// Distinct pointer parameters may alias (§1): the write through a
	// conflicts with the read through b.
	src := `
void f(float *a, float *b) {
	int i, j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			a[i * 64 + j] = b[i * 64 + j] + 1.0f;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("aliasing pointer nest parallelized:\n%s", p)
	}
}

func TestNestOuterCarriedScalarStaysSerial(t *testing.T) {
	// A local scalar accumulated across outer iterations is a reduction:
	// parallelizing it would race.
	src := `
float a[64][64];
float f(void) {
	int i, j;
	float acc;
	acc = 0;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			acc = acc + a[i][j];
	return acc;
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 0 {
		t.Fatalf("outer-carried scalar reduction parallelized:\n%s", p)
	}
}

func TestNestPerIterationScalarOK(t *testing.T) {
	// A scalar reset at the top of each outer iteration is private.
	src := `
float a[64][64], rowsum[64][1];
void f(void) {
	int i, j;
	float s;
	for (i = 0; i < 64; i++) {
		s = 0;
		for (j = 0; j < 64; j++)
			s = s + a[i][j];
		rowsum[i][0] = s;
	}
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeNests(p); st.NestsParallelized != 1 {
		t.Fatalf("row-sum nest not parallelized:\n%s", p)
	}
}
