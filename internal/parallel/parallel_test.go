package parallel

import (
	"testing"

	"repro/internal/depend"
	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

func compileOpt(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	opt.Optimize(p, opt.DefaultOptions())
	return p
}

func parCount(body []il.Stmt) int {
	n := 0
	il.WalkStmts(body, func(s il.Stmt) bool {
		if _, ok := s.(*il.DoParallel); ok {
			n++
		}
		return true
	})
	return n
}

func TestParallelizeIotaStore(t *testing.T) {
	// a[i] = i does not vectorize (no iota) but parallelizes fine.
	src := `
int a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = i;
}
`
	p := compileOpt(t, src, "f")
	st := ParallelizeProc(p, depend.Options{})
	if st.LoopsParallelized != 1 || parCount(p.Body) != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
}

func TestRecurrenceStaysSerial(t *testing.T) {
	src := `
float c[500];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) c[i+1] = c[i] * 0.5f;
}
`
	p := compileOpt(t, src, "f")
	st := ParallelizeProc(p, depend.Options{})
	if st.LoopsParallelized != 0 {
		t.Fatalf("recurrence parallelized: %+v\n%s", st, p)
	}
}

func TestCallStaysSerial(t *testing.T) {
	src := `
void g(int);
void f(int n) {
	int i;
	for (i = 0; i < n; i++) g(i);
}
`
	p := compileOpt(t, src, "f")
	st := ParallelizeProc(p, depend.Options{})
	if st.LoopsParallelized != 0 {
		t.Fatalf("call loop parallelized: %+v\n%s", st, p)
	}
}

func TestGlobalScalarWriteStaysSerial(t *testing.T) {
	src := `
int last;
int a[100];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		a[i] = i;
		last = i;
	}
}
`
	p := compileOpt(t, src, "f")
	st := ParallelizeProc(p, depend.Options{})
	if st.LoopsParallelized != 0 {
		t.Fatalf("global-writing loop parallelized: %+v\n%s", st, p)
	}
}

func TestAliasedPointersStaySerial(t *testing.T) {
	src := `
void f(int *x, int *y, int n) {
	int i;
	for (i = 0; i < n; i++) x[i] = y[i] + i;
}
`
	p := compileOpt(t, src, "f")
	if st := ParallelizeProc(p, depend.Options{}); st.LoopsParallelized != 0 {
		t.Fatalf("aliased loop parallelized: %+v\n%s", st, p)
	}
	// With Fortran aliasing rules it parallelizes.
	p2 := compileOpt(t, src, "f")
	if st := ParallelizeProc(p2, depend.Options{NoAlias: true}); st.LoopsParallelized != 1 {
		t.Fatalf("noalias loop not parallelized: %+v\n%s", st, p2)
	}
}

func TestOuterLoopOfNestStaysSerial(t *testing.T) {
	// Only loop-free bodies parallelize (nested loops are barriers).
	src := `
float a[32][32];
void f(int n) {
	int i, j;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			a[i][j] = a[i][j] + 1.0f;
}
`
	p := compileOpt(t, src, "f")
	st := ParallelizeProc(p, depend.Options{})
	// The inner loop parallelizes; the outer (containing a loop) does not.
	if st.LoopsParallelized != 1 {
		t.Fatalf("stats: %+v\n%s", st, p)
	}
}

func TestExistingDoParallelUntouched(t *testing.T) {
	src := `
float a[1000];
void f(int n) {
	int i;
	for (i = 0; i < n; i++) a[i] = 1.0f;
}
`
	p := compileOpt(t, src, "f")
	ParallelizeProc(p, depend.Options{})
	before := parCount(p.Body)
	ParallelizeProc(p, depend.Options{})
	if parCount(p.Body) != before {
		t.Error("second pass changed parallel loops")
	}
}
