package parallel

// Loop-nest parallelization: the Titan's natural execution model for dense
// 2-d workloads is the outer loop spread across processors with the inner
// loop vectorized on each (§2; the Doré results of §10 are exactly this
// pattern). This pass converts the *outer* loop of a two-level nest into a
// do-parallel when outer iterations provably touch disjoint memory:
//
//	do i = 0, N-1 {
//	    do j = 0, Tj-1 { ... a[base + c1·i + c2·j + d] ... }
//	}
//
// Outer iterations are independent when, for every conflicting pair of
// references to the same object, the outer stride c1 clears the span the
// inner loop sweeps: |c1| > max cross extent. Rows of a matrix are the
// canonical case (c1 = row size, inner sweep stays inside the row).
//
// The pass runs before vectorization, so the inner loops it leaves behind
// inside the do-parallel body still vectorize.

import (
	"repro/internal/ctype"
	"repro/internal/diag"
	"repro/internal/il"
)

// NestStats reports conversions.
type NestStats struct {
	NestsParallelized int `json:"nests_parallelized"`
}

// Add folds another procedure's stats into s.
func (s *NestStats) Add(o NestStats) { s.NestsParallelized += o.NestsParallelized }

// ParallelizeNests converts eligible outer loops of 2-level nests.
func ParallelizeNests(p *il.Proc) NestStats {
	return ParallelizeNestsDiag(p, nil)
}

// ParallelizeNestsDiag is ParallelizeNests with a diagnostic reporter:
// every converted nest gets a nest-parallelized remark. (Rejections are
// silent here — most loops are simply not two-level nests; the later
// vectorize/parallelize passes give every surviving loop its verdict.)
func ParallelizeNestsDiag(p *il.Proc, r *diag.Reporter) NestStats {
	var st NestStats
	p.Body = walkNests(p, p.Body, r, &st)
	return st
}

func walkNests(p *il.Proc, list []il.Stmt, r *diag.Reporter, st *NestStats) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = walkNests(p, n.Then, r, st)
			n.Else = walkNests(p, n.Else, r, st)
		case *il.While:
			n.Body = walkNests(p, n.Body, r, st)
		case *il.DoParallel:
			// already parallel
		case *il.DoLoop:
			n.Body = walkNests(p, n.Body, r, st)
			if nestIndependent(p, n) {
				st.NestsParallelized++
				r.Report(diag.Diagnostic{Severity: diag.SevRemark, Code: diag.NestParallelized,
					Pos: n.Pos, Proc: p.Name, Pass: "nest-parallelize",
					Message: "outer loop of nest parallelized: outer stride clears the inner sweep"})
				p.BumpGeneration()
				out = append(out, &il.DoParallel{IV: n.IV, Init: n.Init,
					Limit: n.Limit, Step: n.Step, Body: n.Body, Pos: n.Pos})
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// nestRef is one memory access in two-level affine form.
type nestRef struct {
	write   bool
	c1, c2  int64 // outer and inner IV coefficients (bytes)
	d       int64 // constant offset
	base    il.Expr
	baseKey string
	size    int64
	tj      int64 // inner trip count the access sweeps (1 for outer-body refs)
}

// nestIndependent reports whether the outer loop's iterations are provably
// disjoint.
func nestIndependent(p *il.Proc, outer *il.DoLoop) bool {
	if _, ok := il.IsIntConst(outer.Step); !ok {
		return false
	}
	// Gather the nest's statements: plain assigns at the outer level plus
	// at most a few inner serial DoLoops with constant bounds and
	// straight-line assign bodies.
	type innerLoop struct {
		loop  *il.DoLoop
		trips int64
	}
	var inners []innerLoop
	var flat []il.Stmt // (stmt, inner index or -1) pairs flattened below
	innerOf := map[il.Stmt]int{}
	sawInner := false
	for _, s := range outer.Body {
		switch n := s.(type) {
		case *il.Assign:
			flat = append(flat, s)
			innerOf[s] = -1
		case *il.DoLoop:
			trips := tripConst(n)
			if trips < 0 {
				return false
			}
			if _, ok := il.IsIntConst(n.Step); !ok {
				return false
			}
			for _, bs := range n.Body {
				if _, ok := bs.(*il.Assign); !ok {
					return false
				}
				flat = append(flat, bs)
				innerOf[bs] = len(inners)
			}
			inners = append(inners, innerLoop{n, trips})
			sawInner = true
		default:
			return false
		}
	}
	if !sawInner {
		return false // single-level loops belong to ParallelizeProc
	}

	// Scalar safety: no externally visible scalar definitions, no
	// volatiles.
	unsafe := false
	il.WalkStmts(outer.Body, func(sub il.Stmt) bool {
		if as, ok := sub.(*il.Assign); ok {
			if p.HasVolatile(as.Src) || p.HasVolatile(as.Dst) {
				unsafe = true
			}
		}
		if dv := il.DefinedVar(sub); dv != il.NoVar {
			v := &p.Vars[dv]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				unsafe = true
			}
		}
		return !unsafe
	})
	if unsafe {
		return false
	}

	// Scalars written in the nest must be dead on entry to each outer
	// iteration: every scalar defined anywhere in the nest must be defined
	// before it is used (in straight-line order), or it carries a value
	// across outer iterations (a reduction) and the loop must stay serial.
	definedInNest := map[il.VarID]bool{}
	for _, s := range flat {
		if dv := il.DefinedVar(s); dv != il.NoVar {
			definedInNest[dv] = true
		}
	}
	seen := map[il.VarID]bool{}
	for _, il2 := range inners {
		seen[il2.loop.IV] = true // loop headers define their IVs first
	}
	usesBeforeDef := false
	checkUses := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			if v, ok := x.(*il.VarRef); ok {
				if definedInNest[v.ID] && !seen[v.ID] {
					usesBeforeDef = true
				}
			}
			return !usesBeforeDef
		})
	}
	for _, s := range outer.Body {
		switch n := s.(type) {
		case *il.Assign:
			if ld, isStore := n.Dst.(*il.Load); isStore {
				checkUses(ld.Addr)
			}
			checkUses(n.Src)
			if dv := il.DefinedVar(n); dv != il.NoVar {
				seen[dv] = true
			}
		case *il.DoLoop:
			checkUses(n.Init)
			checkUses(n.Limit)
			checkUses(n.Step)
			executes := tripConst(n) >= 1
			for _, bs := range n.Body {
				as := bs.(*il.Assign)
				if ld, isStore := as.Dst.(*il.Load); isStore {
					checkUses(ld.Addr)
				}
				checkUses(as.Src)
				// A zero-trip inner loop's definitions never happen, so
				// they cannot satisfy later uses.
				if dv := il.DefinedVar(as); dv != il.NoVar && executes {
					seen[dv] = true
				}
			}
		}
		if usesBeforeDef {
			return false
		}
	}

	// Collect and linearize every memory reference.
	var refs []nestRef
	for _, s := range flat {
		as := s.(*il.Assign)
		idx := innerOf[s]
		var innerIV il.VarID = il.NoVar
		var tj int64 = 1
		var stepJ int64 = 1
		if idx >= 0 {
			innerIV = inners[idx].loop.IV
			tj = inners[idx].trips
			stepJ, _ = il.IsIntConst(inners[idx].loop.Step)
		}
		collect := func(addr il.Expr, size int64, write bool) bool {
			r, ok := linearize2(p, addr, outer.IV, innerIV)
			if !ok {
				return false
			}
			r.write = write
			r.size = size
			r.tj = tj
			r.c2 *= stepJ // per-trip advance includes the step sign
			refs = append(refs, r)
			return true
		}
		okAll := true
		if ld, isStore := as.Dst.(*il.Load); isStore {
			okAll = okAll && collect(ld.Addr, int64(ld.T.Size()), true)
		}
		il.WalkExpr(as.Src, func(e il.Expr) bool {
			if ld, isLoad := e.(*il.Load); isLoad {
				okAll = okAll && collect(ld.Addr, int64(ld.T.Size()), false)
			}
			return okAll
		})
		if !okAll {
			return false
		}
	}

	// Pairwise disjointness across outer iterations.
	for i := range refs {
		for j := i; j < len(refs); j++ {
			a, b := &refs[i], &refs[j]
			if !a.write && !b.write {
				continue
			}
			if a.baseKey != b.baseKey {
				// Distinct named objects never overlap; anything else is
				// conservative.
				if distinctObjects(p, a.base, b.base) {
					continue
				}
				return false
			}
			// Same object: outer strides must agree, and the stride must
			// clear the inner sweep.
			if a.c1 != b.c1 || a.c1 == 0 {
				return false
			}
			lo1, hi1 := span(a)
			lo2, hi2 := span(b)
			c1 := a.c1
			if c1 < 0 {
				c1 = -c1
			}
			if c1 <= max64(hi1-lo2, hi2-lo1) {
				return false
			}
		}
	}
	return true
}

// span returns the byte interval a reference sweeps within one outer
// iteration, excluding the c1·i term.
func span(r *nestRef) (lo, hi int64) {
	sweep := r.c2 * (r.tj - 1)
	lo, hi = r.d, r.d
	if sweep < 0 {
		lo += sweep
	} else {
		hi += sweep
	}
	hi += r.size - 1
	return
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// tripConst returns the constant trip count of a DO loop, or -1.
func tripConst(loop *il.DoLoop) int64 {
	i, ok1 := il.IsIntConst(loop.Init)
	l, ok2 := il.IsIntConst(loop.Limit)
	s, ok3 := il.IsIntConst(loop.Step)
	if !ok1 || !ok2 || !ok3 || s == 0 {
		return -1
	}
	var t int64
	if s > 0 {
		t = (l-i)/s + 1
	} else {
		t = (i-l)/(-s) + 1
	}
	if t < 0 {
		return 0
	}
	return t
}

// distinctObjects reports whether two base expressions are addresses of
// different named objects.
func distinctObjects(p *il.Proc, a, b il.Expr) bool {
	av, aok := rootObject(a)
	bv, bok := rootObject(b)
	return aok && bok && av != bv
}

// rootObject finds the single AddrOf root of a base expression.
func rootObject(e il.Expr) (il.VarID, bool) {
	var root il.VarID = il.NoVar
	count := 0
	ok := true
	il.WalkExpr(e, func(x il.Expr) bool {
		switch n := x.(type) {
		case *il.AddrOf:
			root = n.ID
			count++
		case *il.VarRef:
			if n.T != nil && n.T.Kind == ctype.Pointer {
				ok = false // pointer roots may alias anything
			}
		case *il.Load:
			ok = false
		}
		return ok
	})
	return root, ok && count == 1
}

// linearize2 decomposes addr = base + c1·ivOuter + c2·ivInner + d.
func linearize2(p *il.Proc, addr il.Expr, ivOuter, ivInner il.VarID) (nestRef, bool) {
	var r nestRef
	var base il.Expr
	okAll := true

	var walk func(e il.Expr, scale int64)
	walk = func(e il.Expr, scale int64) {
		if !okAll {
			return
		}
		switch n := e.(type) {
		case *il.ConstInt:
			r.d += scale * n.Val
		case *il.VarRef:
			switch n.ID {
			case ivOuter:
				r.c1 += scale
			case ivInner:
				r.c2 += scale
			default:
				addBase(&base, e, scale, &okAll)
			}
		case *il.AddrOf:
			addBase(&base, e, scale, &okAll)
		case *il.Cast:
			walk(n.X, scale)
		case *il.Un:
			if n.Op == il.OpNeg {
				walk(n.X, -scale)
				return
			}
			okAll = false
		case *il.Bin:
			switch n.Op {
			case il.OpAdd:
				walk(n.L, scale)
				walk(n.R, scale)
			case il.OpSub:
				walk(n.L, scale)
				walk(n.R, -scale)
			case il.OpMul:
				if v, ok := il.IsIntConst(n.L); ok {
					walk(n.R, scale*v)
					return
				}
				if v, ok := il.IsIntConst(n.R); ok {
					walk(n.L, scale*v)
					return
				}
				okAll = false
			default:
				okAll = false
			}
		default:
			okAll = false
		}
	}
	walk(addr, 1)
	if !okAll || base == nil {
		return nestRef{}, false
	}
	r.base = base
	r.baseKey = base.String()
	return r, true
}

// addBase accumulates invariant terms into the base expression; scaled
// invariant terms are allowed only with coefficient 1 (anything fancier is
// conservative).
func addBase(base *il.Expr, e il.Expr, scale int64, ok *bool) {
	if scale != 1 {
		*ok = false
		return
	}
	if *base == nil {
		*base = e
		return
	}
	*base = &il.Bin{Op: il.OpAdd, L: *base, R: e, T: (*base).Type()}
}
