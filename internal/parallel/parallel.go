// Package parallel converts serial DO loops whose iterations are provably
// independent into do-parallel loops, spreading iterations across the
// Titan's processors (§2: "Spreading loop iterations among multiple
// processors can provide significant speedups").
//
// The vectorizer already emits do-parallel strip loops for vector code;
// this pass picks up the loops that did not vectorize (e.g. loops whose
// statements store the induction variable, or bodies with internal control
// flow but no cross-iteration dependence). Loops with calls, volatile
// accesses, scalar recurrences, or carried memory dependences stay serial.
// The paper's planned extension — spreading linked-list while loops by
// serializing the pointer chase — is future work there and here.
package parallel

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
	"repro/internal/titan"
)

// Stats reports conversions.
type Stats struct {
	LoopsExamined     int `json:"loops_examined"`
	LoopsParallelized int `json:"loops_parallelized"`
	// LoopsDoacross counts loops pipelined with post/wait rather than
	// spread as independent iterations.
	LoopsDoacross int `json:"loops_doacross,omitempty"`
}

// Add folds another procedure's stats into s.
func (s *Stats) Add(o Stats) {
	s.LoopsExamined += o.LoopsExamined
	s.LoopsParallelized += o.LoopsParallelized
	s.LoopsDoacross += o.LoopsDoacross
}

// ParallelizeProc converts eligible serial DO loops in place.
func ParallelizeProc(p *il.Proc, opts depend.Options) Stats {
	return ParallelizeProcWith(p, opts, nil)
}

// ParallelizeProcWith is ParallelizeProc against an analysis cache that
// memoizes the per-loop dependence graphs (nil analyzes directly).
func ParallelizeProcWith(p *il.Proc, opts depend.Options, ac *analysis.Cache) Stats {
	return ParallelizeProcDiag(p, opts, ac, nil)
}

// ParallelizeProcDiag is ParallelizeProcWith with a diagnostic reporter:
// every examined DO loop gets exactly one parallelize-or-not verdict
// remark, with the blocking dependence named on rejection.
func ParallelizeProcDiag(p *il.Proc, opts depend.Options, ac *analysis.Cache, r *diag.Reporter) Stats {
	return ParallelizeProcSched(p, opts, ac, r, nil)
}

// ParallelizeProcSched is ParallelizeProcDiag driven by explicit per-loop
// schedules: a loop whose schedule pins serial_strips stays serial (with
// a par-sched-serial verdict), and a nonzero parallel width caps how many
// processors the converted loop spreads over. A nil set is the default
// plan for every loop.
func ParallelizeProcSched(p *il.Proc, opts depend.Options, ac *analysis.Cache, r *diag.Reporter, scheds *schedule.Set) Stats {
	var st Stats
	w := walker{opts: opts, ac: ac, r: r, scheds: scheds, st: &st}
	p.Body = w.walk(p, p.Body)
	return st
}

// walker carries the per-run configuration through the statement walk.
type walker struct {
	opts   depend.Options
	ac     *analysis.Cache
	r      *diag.Reporter
	scheds *schedule.Set
	st     *Stats
}

// remark files one verdict diagnostic for the loop (nil-reporter safe).
func remark(r *diag.Reporter, p *il.Proc, loop *il.DoLoop, code diag.Code, args map[string]string, format string, a ...any) {
	r.Report(diag.Diagnostic{
		Severity: diag.SevRemark,
		Code:     code,
		Pos:      loop.Pos,
		Proc:     p.Name,
		Pass:     "parallelize",
		Message:  fmt.Sprintf(format, a...),
		Args:     args,
	})
}

func (w *walker) walk(p *il.Proc, list []il.Stmt) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = w.walk(p, n.Then)
			n.Else = w.walk(p, n.Else)
		case *il.While:
			n.Body = w.walk(p, n.Body)
		case *il.DoParallel:
			// Already parallel (vectorizer output); leave its body alone —
			// nested parallelism is not profitable on a 4-processor
			// machine.
		case *il.DoLoop:
			n.Body = w.walk(p, n.Body)
			w.st.LoopsExamined++
			rej := classify(p, n, w.opts, w.ac)
			if rej == nil {
				sched, explicit := w.scheds.Lookup(p.Name, n.Pos)
				if explicit && sched.SerialStrips {
					remark(w.r, p, n, diag.ParSchedSerial, map[string]string{"schedule": sched.String()},
						"loop kept serial: iterations are independent but the loop schedule pins serial strips")
					out = append(out, s)
					continue
				}
				width := 0
				if explicit {
					width = sched.ParallelWidth
				}
				w.st.LoopsParallelized++
				remark(w.r, p, n, diag.ParParallelized, map[string]string{"schedule": sched.String()},
					"loop parallelized: iterations are independent")
				// The loop object changes identity and kind; stale cached
				// analyses of the enclosing procedure must not survive.
				p.BumpGeneration()
				out = append(out, &il.DoParallel{IV: n.IV, Init: n.Init,
					Limit: n.Limit, Step: n.Step, Body: n.Body, Width: width, Pos: n.Pos})
				continue
			}
			// Carried dependences are not necessarily fatal: when every
			// one has a computable constant distance the loop can
			// pipeline DOACROSS (§2's spreading plus post/wait).
			if rej.code == diag.ParCarriedDep {
				if dp := w.doacross(p, n); dp != nil {
					out = append(out, dp)
					continue
				}
			}
			remark(w.r, p, n, rej.code, rej.args, "%s", rej.msg)
		}
		out = append(out, s)
	}
	return out
}

// rejection is one deferred verdict remark: the walker files it unless a
// DOACROSS conversion supersedes it.
type rejection struct {
	code diag.Code
	args map[string]string
	msg  string
}

// classify reports whether the loop's iterations can run concurrently:
// no carried dependence of any kind, no barriers (calls, volatile,
// irregular control), and no scalar live-out computed iteratively. A nil
// result means independent; otherwise the first blocker found comes back
// as the would-be verdict remark.
func classify(p *il.Proc, loop *il.DoLoop, opts depend.Options, ac *analysis.Cache) *rejection {
	// Nested loops inside the body are themselves statements the
	// dependence pass treats as barriers; a loop nest parallelizes at the
	// level whose body is loop-free.
	for i, s := range loop.Body {
		switch s.(type) {
		case *il.DoLoop, *il.While, *il.DoParallel, *il.Goto, *il.Label, *il.Return, *il.Call:
			return &rejection{code: diag.ParIrregular, args: map[string]string{"stmt": s.String()},
				msg: fmt.Sprintf("loop not parallelized: body statement S%d (%T) blocks spreading", i, s)}
		}
	}
	ld := ac.LoopDeps(p, loop, opts)
	for i, b := range ld.Barrier {
		if b {
			return &rejection{code: diag.ParBarrier, args: map[string]string{"stmt": loop.Body[i].String()},
				msg: fmt.Sprintf("loop not parallelized: statement S%d is a dependence barrier", i)}
		}
	}
	for _, d := range ld.Deps {
		if d.Carried {
			args := map[string]string{"dep": d.String()}
			if d.Known {
				args["distance"] = fmt.Sprintf("%d", d.Distance)
			}
			return &rejection{code: diag.ParCarriedDep, args: args,
				msg: fmt.Sprintf("loop not parallelized: carried dependence %s", d.String())}
		}
	}
	if v := unsafeScalar(p, loop.Body); v != "" {
		return &rejection{code: diag.ParLiveOut, args: map[string]string{"var": v},
			msg: fmt.Sprintf("loop not parallelized: scalar %s is observable after the loop", v)}
	}
	return nil
}

// unsafeScalar returns the name of a scalar written in the body that is
// observable after the loop (each processor would race on it), or "".
// Temporaries local to an iteration are freshly assigned before use; we
// accept only variables whose every use within the body follows their
// (single) definition — the dependence pass already rejected carried
// scalar flow, which covers use-before-def. Globals and address-taken
// variables remain unsafe because other code can read them after the
// loop.
func unsafeScalar(p *il.Proc, body []il.Stmt) string {
	name := ""
	il.WalkStmts(body, func(sub il.Stmt) bool {
		if dv := il.DefinedVar(sub); dv != il.NoVar {
			v := &p.Vars[dv]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				name = v.Name
			}
		}
		return name == ""
	})
	return name
}

// doacrossHandoffCost approximates, in bodyCost units (one unit per
// executed node), the per-handoff price of the synchronization codegen
// emits: the post, the wait's latency, and the bookkeeping ALU ops
// around them.
const doacrossHandoffCost = 4

// doacross tries to convert a carried-dependence loop into a pipelined
// DOACROSS region. It returns nil — leaving the loop serial and its
// rejection remark standing — when no constant-distance plan exists,
// when an observable scalar blocks spreading, or when the body is too
// small to pay for the synchronization.
func (w *walker) doacross(p *il.Proc, n *il.DoLoop) *il.DoParallel {
	stepC, ok := il.IsIntConst(n.Step)
	if !ok || stepC <= 0 {
		return nil // codegen's cell math needs a positive constant step
	}
	plan := depend.Doacross(p, w.ac.LoopDeps(p, n, w.opts))
	if plan == nil {
		return nil
	}
	if unsafeScalar(p, n.Body) != "" {
		return nil
	}
	sched, explicit := w.scheds.Lookup(p.Name, n.Pos)
	if explicit && sched.SerialStrips {
		return nil // the schedule pinned it serial; keep the serial verdict
	}
	// Profitability: pipelined, the loop's critical path advances one
	// dependence distance per handoff — the sync plus the statements
	// inside the wait..post window; everything outside the window
	// overlaps freely across processors. Project that chain bound
	// against the serial body and demand a 1.5x win. A distance that
	// covers the machine width needs no waits at all (each processor
	// consumes its own earlier iteration), so it is always worth taking;
	// an explicit schedule that asks for DOACROSS (SyncStride set) also
	// bypasses the estimate — the autotuner measures instead of guessing.
	if !(explicit && sched.SyncStride > 0) && plan.Distance < int64(titan.MaxProcessors) {
		window := bodyCost(n.Body[plan.WaitIdx : plan.PostIdx+1])
		if 3*(doacrossHandoffCost+window) > 2*int(plan.Distance)*bodyCost(n.Body) {
			return nil
		}
	}
	width := 0
	stride := 1
	if explicit {
		width = sched.ParallelWidth
		np := width
		if np == 0 {
			np = titan.MaxProcessors
		}
		// Post coalescing is only deadlock-free when the awaited lattice
		// iteration stays strictly earlier than the waiter; degrade an
		// overreaching stride rather than miscompile.
		if sched.SyncStride > 1 && plan.Distance >= int64(sched.SyncStride)*int64(np) {
			stride = sched.SyncStride
		}
	}
	body := make([]il.Stmt, 0, len(n.Body)+2)
	body = append(body, n.Body[:plan.WaitIdx]...)
	body = append(body, &il.SyncWait{Distance: plan.Distance, Pos: n.Pos})
	body = append(body, n.Body[plan.WaitIdx:plan.PostIdx+1]...)
	body = append(body, &il.SyncPost{Pos: n.Pos})
	body = append(body, n.Body[plan.PostIdx+1:]...)
	w.st.LoopsDoacross++
	remark(w.r, p, n, diag.ParDoacross, map[string]string{
		"dep":         plan.Dep,
		"distance":    fmt.Sprintf("%d", plan.Distance),
		"sync_stride": fmt.Sprintf("%d", stride),
	}, "loop pipelined DOACROSS: carried dependence %s synchronized at distance %d", plan.Dep, plan.Distance)
	p.BumpGeneration()
	return &il.DoParallel{IV: n.IV, Init: n.Init, Limit: n.Limit, Step: n.Step,
		Body: body, Width: width,
		Sync: &il.SyncInfo{Distance: plan.Distance, Stride: stride, Desc: plan.Dep},
		Pos:  n.Pos}
}

// bodyCost is a crude per-iteration cycle estimate: one cycle per
// statement plus one per expression node.
func bodyCost(body []il.Stmt) int {
	cost := 0
	for _, s := range body {
		cost++
		il.StmtExprs(s, func(e il.Expr) {
			il.WalkExpr(e, func(il.Expr) bool { cost++; return true })
		})
	}
	return cost
}
