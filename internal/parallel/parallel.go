// Package parallel converts serial DO loops whose iterations are provably
// independent into do-parallel loops, spreading iterations across the
// Titan's processors (§2: "Spreading loop iterations among multiple
// processors can provide significant speedups").
//
// The vectorizer already emits do-parallel strip loops for vector code;
// this pass picks up the loops that did not vectorize (e.g. loops whose
// statements store the induction variable, or bodies with internal control
// flow but no cross-iteration dependence). Loops with calls, volatile
// accesses, scalar recurrences, or carried memory dependences stay serial.
// The paper's planned extension — spreading linked-list while loops by
// serializing the pointer chase — is future work there and here.
package parallel

import (
	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/il"
)

// Stats reports conversions.
type Stats struct {
	LoopsExamined     int `json:"loops_examined"`
	LoopsParallelized int `json:"loops_parallelized"`
}

// Add folds another procedure's stats into s.
func (s *Stats) Add(o Stats) {
	s.LoopsExamined += o.LoopsExamined
	s.LoopsParallelized += o.LoopsParallelized
}

// ParallelizeProc converts eligible serial DO loops in place.
func ParallelizeProc(p *il.Proc, opts depend.Options) Stats {
	return ParallelizeProcWith(p, opts, nil)
}

// ParallelizeProcWith is ParallelizeProc against an analysis cache that
// memoizes the per-loop dependence graphs (nil analyzes directly).
func ParallelizeProcWith(p *il.Proc, opts depend.Options, ac *analysis.Cache) Stats {
	var st Stats
	p.Body = walk(p, p.Body, opts, ac, &st)
	return st
}

func walk(p *il.Proc, list []il.Stmt, opts depend.Options, ac *analysis.Cache, st *Stats) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = walk(p, n.Then, opts, ac, st)
			n.Else = walk(p, n.Else, opts, ac, st)
		case *il.While:
			n.Body = walk(p, n.Body, opts, ac, st)
		case *il.DoParallel:
			// Already parallel (vectorizer output); leave its body alone —
			// nested parallelism is not profitable on a 4-processor
			// machine.
		case *il.DoLoop:
			n.Body = walk(p, n.Body, opts, ac, st)
			st.LoopsExamined++
			if ok := independent(p, n, opts, ac); ok {
				st.LoopsParallelized++
				// The loop object changes identity and kind; stale cached
				// analyses of the enclosing procedure must not survive.
				p.BumpGeneration()
				out = append(out, &il.DoParallel{IV: n.IV, Init: n.Init,
					Limit: n.Limit, Step: n.Step, Body: n.Body})
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// independent reports whether the loop's iterations can run concurrently:
// no carried dependence of any kind, no barriers (calls, volatile,
// irregular control), and no scalar live-out computed iteratively.
func independent(p *il.Proc, loop *il.DoLoop, opts depend.Options, ac *analysis.Cache) bool {
	// Nested loops inside the body are themselves statements the
	// dependence pass treats as barriers; a loop nest parallelizes at the
	// level whose body is loop-free.
	for _, s := range loop.Body {
		switch s.(type) {
		case *il.DoLoop, *il.While, *il.DoParallel, *il.Goto, *il.Label, *il.Return, *il.Call:
			return false
		}
	}
	ld := ac.LoopDeps(p, loop, opts)
	for _, b := range ld.Barrier {
		if b {
			return false
		}
	}
	for _, d := range ld.Deps {
		if d.Carried {
			return false
		}
	}
	// Scalars written in the body must not be observable after the loop
	// (each processor would race on them). Temporaries local to an
	// iteration are freshly assigned before use; we accept only variables
	// whose every use within the body follows their (single) definition —
	// the dependence pass already rejected carried scalar flow, which
	// covers use-before-def. Globals and address-taken variables remain
	// unsafe because other code can read them after the loop.
	unsafe := false
	il.WalkStmts(loop.Body, func(sub il.Stmt) bool {
		if dv := il.DefinedVar(sub); dv != il.NoVar {
			v := &p.Vars[dv]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				unsafe = true
			}
		}
		return !unsafe
	})
	return !unsafe
}
