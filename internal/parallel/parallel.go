// Package parallel converts serial DO loops whose iterations are provably
// independent into do-parallel loops, spreading iterations across the
// Titan's processors (§2: "Spreading loop iterations among multiple
// processors can provide significant speedups").
//
// The vectorizer already emits do-parallel strip loops for vector code;
// this pass picks up the loops that did not vectorize (e.g. loops whose
// statements store the induction variable, or bodies with internal control
// flow but no cross-iteration dependence). Loops with calls, volatile
// accesses, scalar recurrences, or carried memory dependences stay serial.
// The paper's planned extension — spreading linked-list while loops by
// serializing the pointer chase — is future work there and here.
package parallel

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/diag"
	"repro/internal/il"
	"repro/internal/schedule"
)

// Stats reports conversions.
type Stats struct {
	LoopsExamined     int `json:"loops_examined"`
	LoopsParallelized int `json:"loops_parallelized"`
}

// Add folds another procedure's stats into s.
func (s *Stats) Add(o Stats) {
	s.LoopsExamined += o.LoopsExamined
	s.LoopsParallelized += o.LoopsParallelized
}

// ParallelizeProc converts eligible serial DO loops in place.
func ParallelizeProc(p *il.Proc, opts depend.Options) Stats {
	return ParallelizeProcWith(p, opts, nil)
}

// ParallelizeProcWith is ParallelizeProc against an analysis cache that
// memoizes the per-loop dependence graphs (nil analyzes directly).
func ParallelizeProcWith(p *il.Proc, opts depend.Options, ac *analysis.Cache) Stats {
	return ParallelizeProcDiag(p, opts, ac, nil)
}

// ParallelizeProcDiag is ParallelizeProcWith with a diagnostic reporter:
// every examined DO loop gets exactly one parallelize-or-not verdict
// remark, with the blocking dependence named on rejection.
func ParallelizeProcDiag(p *il.Proc, opts depend.Options, ac *analysis.Cache, r *diag.Reporter) Stats {
	return ParallelizeProcSched(p, opts, ac, r, nil)
}

// ParallelizeProcSched is ParallelizeProcDiag driven by explicit per-loop
// schedules: a loop whose schedule pins serial_strips stays serial (with
// a par-sched-serial verdict), and a nonzero parallel width caps how many
// processors the converted loop spreads over. A nil set is the default
// plan for every loop.
func ParallelizeProcSched(p *il.Proc, opts depend.Options, ac *analysis.Cache, r *diag.Reporter, scheds *schedule.Set) Stats {
	var st Stats
	w := walker{opts: opts, ac: ac, r: r, scheds: scheds, st: &st}
	p.Body = w.walk(p, p.Body)
	return st
}

// walker carries the per-run configuration through the statement walk.
type walker struct {
	opts   depend.Options
	ac     *analysis.Cache
	r      *diag.Reporter
	scheds *schedule.Set
	st     *Stats
}

// remark files one verdict diagnostic for the loop (nil-reporter safe).
func remark(r *diag.Reporter, p *il.Proc, loop *il.DoLoop, code diag.Code, args map[string]string, format string, a ...any) {
	r.Report(diag.Diagnostic{
		Severity: diag.SevRemark,
		Code:     code,
		Pos:      loop.Pos,
		Proc:     p.Name,
		Pass:     "parallelize",
		Message:  fmt.Sprintf(format, a...),
		Args:     args,
	})
}

func (w *walker) walk(p *il.Proc, list []il.Stmt) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = w.walk(p, n.Then)
			n.Else = w.walk(p, n.Else)
		case *il.While:
			n.Body = w.walk(p, n.Body)
		case *il.DoParallel:
			// Already parallel (vectorizer output); leave its body alone —
			// nested parallelism is not profitable on a 4-processor
			// machine.
		case *il.DoLoop:
			n.Body = w.walk(p, n.Body)
			w.st.LoopsExamined++
			if ok := independent(p, n, w.opts, w.ac, w.r); ok {
				sched, explicit := w.scheds.Lookup(p.Name, n.Pos)
				if explicit && sched.SerialStrips {
					remark(w.r, p, n, diag.ParSchedSerial, map[string]string{"schedule": sched.String()},
						"loop kept serial: iterations are independent but the loop schedule pins serial strips")
					out = append(out, s)
					continue
				}
				width := 0
				if explicit {
					width = sched.ParallelWidth
				}
				w.st.LoopsParallelized++
				remark(w.r, p, n, diag.ParParallelized, map[string]string{"schedule": sched.String()},
					"loop parallelized: iterations are independent")
				// The loop object changes identity and kind; stale cached
				// analyses of the enclosing procedure must not survive.
				p.BumpGeneration()
				out = append(out, &il.DoParallel{IV: n.IV, Init: n.Init,
					Limit: n.Limit, Step: n.Step, Body: n.Body, Width: width, Pos: n.Pos})
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// independent reports whether the loop's iterations can run concurrently:
// no carried dependence of any kind, no barriers (calls, volatile,
// irregular control), and no scalar live-out computed iteratively. On
// rejection it files the verdict remark naming the first blocker found.
func independent(p *il.Proc, loop *il.DoLoop, opts depend.Options, ac *analysis.Cache, r *diag.Reporter) bool {
	// Nested loops inside the body are themselves statements the
	// dependence pass treats as barriers; a loop nest parallelizes at the
	// level whose body is loop-free.
	for i, s := range loop.Body {
		switch s.(type) {
		case *il.DoLoop, *il.While, *il.DoParallel, *il.Goto, *il.Label, *il.Return, *il.Call:
			remark(r, p, loop, diag.ParIrregular, map[string]string{"stmt": s.String()},
				"loop not parallelized: body statement S%d (%T) blocks spreading", i, s)
			return false
		}
	}
	ld := ac.LoopDeps(p, loop, opts)
	for i, b := range ld.Barrier {
		if b {
			remark(r, p, loop, diag.ParBarrier, map[string]string{"stmt": loop.Body[i].String()},
				"loop not parallelized: statement S%d is a dependence barrier", i)
			return false
		}
	}
	for _, d := range ld.Deps {
		if d.Carried {
			remark(r, p, loop, diag.ParCarriedDep, map[string]string{"dep": d.String()},
				"loop not parallelized: carried dependence %s", d.String())
			return false
		}
	}
	// Scalars written in the body must not be observable after the loop
	// (each processor would race on them). Temporaries local to an
	// iteration are freshly assigned before use; we accept only variables
	// whose every use within the body follows their (single) definition —
	// the dependence pass already rejected carried scalar flow, which
	// covers use-before-def. Globals and address-taken variables remain
	// unsafe because other code can read them after the loop.
	unsafe := false
	unsafeVar := ""
	il.WalkStmts(loop.Body, func(sub il.Stmt) bool {
		if dv := il.DefinedVar(sub); dv != il.NoVar {
			v := &p.Vars[dv]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				unsafe = true
				unsafeVar = v.Name
			}
		}
		return !unsafe
	})
	if unsafe {
		remark(r, p, loop, diag.ParLiveOut, map[string]string{"var": unsafeVar},
			"loop not parallelized: scalar %s is observable after the loop", unsafeVar)
		return false
	}
	return true
}
