package parallel

import (
	"testing"

	"repro/internal/il"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
)

// compileProg lowers and scalar-optimizes a whole program.
func compileProg(t *testing.T, src string) *il.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, p := range prog.Procs {
		opt.Optimize(p, opt.DefaultOptions())
	}
	return prog
}

const listSrc = `
struct node { float val; struct node *next; };
void scale(struct node *head, float k)
{
	struct node *p;
	p = head;
	while (p) {
		p->val = p->val * k;
		p = p->next;
	}
}
`

func TestListLoopConverts(t *testing.T) {
	prog := compileProg(t, listSrc)
	p := prog.Proc("scale")
	st := ParallelizeListLoops(prog, p)
	if st.LoopsConverted != 1 {
		t.Fatalf("converted %d:\n%s", st.LoopsConverted, p)
	}
	var pars, whiles int
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		switch s.(type) {
		case *il.DoParallel:
			pars++
		case *il.While:
			whiles++
		}
		return true
	})
	if pars != 1 {
		t.Errorf("parallel loops: %d\n%s", pars, p)
	}
	// The collection loop and the tail loop are both serial whiles.
	if whiles != 2 {
		t.Errorf("serial whiles: %d (want collect + tail)\n%s", whiles, p)
	}
	if prog.Global(".listbuf") == nil {
		t.Error("pointer buffer not allocated")
	}
}

func TestListLoopWithCallNotConverted(t *testing.T) {
	src := `
struct node { float val; struct node *next; };
void visit(float);
void walk(struct node *head)
{
	struct node *p;
	p = head;
	while (p) {
		visit(p->val);
		p = p->next;
	}
}
`
	prog := compileProg(t, src)
	p := prog.Proc("walk")
	if st := ParallelizeListLoops(prog, p); st.LoopsConverted != 0 {
		t.Fatalf("call-bearing loop converted:\n%s", p)
	}
}

func TestListLoopGlobalStoreNotConverted(t *testing.T) {
	src := `
struct node { float val; struct node *next; };
float total;
void sum(struct node *head)
{
	struct node *p;
	p = head;
	while (p) {
		total = total + p->val;
		p = p->next;
	}
}
`
	prog := compileProg(t, src)
	p := prog.Proc("sum")
	if st := ParallelizeListLoops(prog, p); st.LoopsConverted != 0 {
		t.Fatalf("reduction loop converted:\n%s", p)
	}
}

func TestListLoopNonChaseNotConverted(t *testing.T) {
	// The control variable advances by arithmetic, not a chase: the DO
	// converter owns that case.
	src := `
void f(int *p, int n)
{
	while (n) {
		*p = 0;
		p = p + 1;
		n = n - 1;
	}
}
`
	prog := compileProg(t, src)
	p := prog.Proc("f")
	if st := ParallelizeListLoops(prog, p); st.LoopsConverted != 0 {
		t.Fatalf("arithmetic loop treated as list chase:\n%s", p)
	}
}
