package parallel

// This file implements the extension §10 sketches as future work:
// "we plan to enhance the parallelization to include list and graph
// structures ... Such a loop cannot be vectorized with any benefit, but it
// can be spread across multiple processors by pulling the code for moving
// to the next element into the serialized portion of the parallel loop.
// ... it does require an assumption that each motion down a pointer goes
// to independent storage."
//
// A while loop of the shape
//
//	while (p) { ...uses of p...; p = *(p + off); }
//
// is rewritten (under the independent-storage assumption, which the driver
// exposes as an explicit option) into
//
//	n = 0;
//	while (p && n < CAP) { buf[n] = p; n = n + 1; p = *(p + off); }
//	do parallel i = 0, n-1, 1 { q = buf[i]; ...body with q... }
//	while (p) { original loop }        // tail beyond the buffer
//
// The pointer chase runs serially; the per-node work spreads across
// processors.

import (
	"fmt"
	"repro/internal/diag"

	"repro/internal/ctype"
	"repro/internal/il"
)

// listBufCap is the compiler-allocated pointer buffer length.
const listBufCap = 8192

// ListStats reports list-loop conversions.
type ListStats struct {
	LoopsConverted int `json:"loops_converted"`
}

// Add folds another procedure's stats into s.
func (s *ListStats) Add(o ListStats) { s.LoopsConverted += o.LoopsConverted }

// ParallelizeListLoops rewrites eligible linked-list while loops in p.
// The prog is needed to allocate the shared pointer buffer. The caller
// asserts the §10 independence assumption by calling at all.
func ParallelizeListLoops(prog *il.Program, p *il.Proc) ListStats {
	return ParallelizeListLoopsDiag(prog, p, nil)
}

// ParallelizeListLoopsDiag is ParallelizeListLoops with a diagnostic
// reporter: each converted chase loop gets a list-parallelized remark.
func ParallelizeListLoopsDiag(prog *il.Program, p *il.Proc, r *diag.Reporter) ListStats {
	var st ListStats
	p.Body = walkList(prog, p, p.Body, r, &st)
	return st
}

func walkList(prog *il.Program, p *il.Proc, list []il.Stmt, r *diag.Reporter, st *ListStats) []il.Stmt {
	out := make([]il.Stmt, 0, len(list))
	for _, s := range list {
		switch n := s.(type) {
		case *il.If:
			n.Then = walkList(prog, p, n.Then, r, st)
			n.Else = walkList(prog, p, n.Else, r, st)
		case *il.DoLoop:
			n.Body = walkList(prog, p, n.Body, r, st)
		case *il.DoParallel:
			// leave
		case *il.While:
			n.Body = walkList(prog, p, n.Body, r, st)
			if repl, ok := convertListLoop(prog, p, n); ok {
				st.LoopsConverted++
				il.StampStmts(repl, n.Pos)
				r.Report(diag.Diagnostic{Severity: diag.SevRemark, Code: diag.ListParallelized,
					Pos: n.Pos, Proc: p.Name, Pass: "list-parallelize",
					Message: "linked-list chase loop parallelized under the independent-storage assumption (§10)"})
				p.BumpGeneration()
				out = append(out, repl...)
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// chaseShape matches the loop against while(ptr){...; ptr = *(ptr+off)}.
func chaseShape(p *il.Proc, w *il.While) (ptr il.VarID, chase *il.Assign, ok bool) {
	cond, isVar := w.Cond.(*il.VarRef)
	if !isVar {
		return il.NoVar, nil, false
	}
	v := &p.Vars[cond.ID]
	if v.Type == nil || v.Type.Kind != ctype.Pointer || v.AddrTaken ||
		v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.IsVolatile() {
		return il.NoVar, nil, false
	}
	if len(w.Body) < 2 {
		return il.NoVar, nil, false
	}
	last, isAssign := w.Body[len(w.Body)-1].(*il.Assign)
	if !isAssign {
		return il.NoVar, nil, false
	}
	dst, isVarDst := last.Dst.(*il.VarRef)
	if !isVarDst || dst.ID != cond.ID {
		return il.NoVar, nil, false
	}
	// The chase: load through ptr (+ constant offset).
	ld, isLoad := last.Src.(*il.Load)
	if !isLoad || ld.Volatile {
		return il.NoVar, nil, false
	}
	base := ld.Addr
	if b, isBin := base.(*il.Bin); isBin && b.Op == il.OpAdd {
		if _, isConst := il.IsIntConst(b.R); isConst {
			base = b.L
		}
	}
	if bv, isVar := base.(*il.VarRef); !isVar || bv.ID != cond.ID {
		return il.NoVar, nil, false
	}
	return cond.ID, last, true
}

// convertListLoop performs the rewrite, or reports false.
func convertListLoop(prog *il.Program, p *il.Proc, w *il.While) ([]il.Stmt, bool) {
	ptr, chase, ok := chaseShape(p, w)
	if !ok {
		return nil, false
	}
	body := w.Body[:len(w.Body)-1] // per-node work, chase removed

	// Eligibility of the per-node work: straight-line assignments whose
	// stores root at the node pointer, no calls, no other defs of ptr, no
	// volatile, no defs of externally visible scalars.
	for _, s := range body {
		as, isAssign := s.(*il.Assign)
		if !isAssign {
			return nil, false
		}
		if p.HasVolatile(as.Src) || p.HasVolatile(as.Dst) {
			return nil, false
		}
		if dv := il.DefinedVar(s); dv != il.NoVar {
			if dv == ptr {
				return nil, false
			}
			v := &p.Vars[dv]
			if v.Class == il.ClassGlobal || v.Class == il.ClassStatic || v.AddrTaken || v.IsVolatile() {
				return nil, false
			}
		}
		if ld, isStore := as.Dst.(*il.Load); isStore {
			// The store must be node-relative: its address uses ptr.
			if !il.UsesVar(ld.Addr, ptr) {
				return nil, false
			}
		}
	}

	// Allocate (or reuse) the shared pointer buffer and per-proc vars.
	bufName := ".listbuf"
	prog.AddGlobal(il.GlobalVar{Name: bufName,
		Type: ctype.ArrayOf(ctype.PointerTo(ctype.VoidType), listBufCap)})
	bufID := p.LookupVar(bufName)
	if bufID == il.NoVar {
		bufID = p.AddVar(il.Var{Name: bufName,
			Type: ctype.ArrayOf(ctype.PointerTo(ctype.VoidType), listBufCap), Class: il.ClassGlobal})
	}
	ptrT := p.Vars[ptr].Type
	count := p.AddVar(il.Var{Name: fmt.Sprintf("lcnt%d", len(p.Vars)), Type: ctype.IntType, Class: il.ClassTemp})
	iv := p.AddVar(il.Var{Name: fmt.Sprintf("li%d", len(p.Vars)), Type: ctype.IntType, Class: il.ClassTemp})
	node := p.AddVar(il.Var{Name: fmt.Sprintf("lnode%d", len(p.Vars)), Type: ptrT, Class: il.ClassTemp})

	intT := ctype.IntType
	bufAddr := func(idx il.Expr) il.Expr {
		return il.Add(&il.AddrOf{ID: bufID, T: ctype.PointerTo(ctype.PointerTo(ctype.VoidType))},
			il.Mul(il.Int(4), idx, intT), ctype.PointerTo(ptrT))
	}

	// Serial collection: n = 0; while (p && n < CAP) { buf[n] = p; n++;
	// chase }. The && is expressed with the IL's pure operators.
	collect := &il.While{
		Cond: il.Ref(ptr, ptrT),
		Body: []il.Stmt{
			&il.If{
				Cond: il.NewBin(il.OpGe, il.Ref(count, intT), il.Int(listBufCap), intT),
				Then: []il.Stmt{&il.Goto{Target: ""}}, // patched below
			},
			&il.Assign{
				Dst: &il.Load{Addr: bufAddr(il.Ref(count, intT)), T: ptrT},
				Src: il.Ref(ptr, ptrT),
			},
			&il.Assign{Dst: il.Ref(count, intT), Src: il.Add(il.Ref(count, intT), il.Int(1), intT)},
			il.CloneStmt(chase),
		},
	}
	exitLbl := p.NewLabel("lful")
	collect.Body[0].(*il.If).Then[0].(*il.Goto).Target = exitLbl

	// Parallel per-node work: body with ptr replaced by the node temp.
	parBody := []il.Stmt{
		&il.Assign{Dst: il.Ref(node, ptrT), Src: &il.Load{Addr: bufAddr(il.Ref(iv, intT)), T: ptrT}},
	}
	for _, s := range body {
		cl := il.CloneStmt(s)
		il.RewriteTreeExprs(cl, func(e il.Expr) il.Expr {
			if v, isVar := e.(*il.VarRef); isVar && v.ID == ptr {
				return il.Ref(node, ptrT)
			}
			return e
		})
		parBody = append(parBody, cl)
	}
	par := &il.DoParallel{IV: iv, Init: il.Int(0),
		Limit: il.Sub(il.Ref(count, intT), il.Int(1), intT), Step: il.Int(1), Body: parBody}

	// Tail: whatever remains past the buffer runs with the original loop.
	tail := &il.While{Cond: il.Ref(ptr, ptrT), Body: il.CloneStmts(w.Body)}

	out := []il.Stmt{
		&il.Assign{Dst: il.Ref(count, intT), Src: il.Int(0)},
		collect,
		&il.Label{Name: exitLbl},
		par,
		tail,
	}
	return out, true
}
