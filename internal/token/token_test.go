package token

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", Ident: "identifier", KwWhile: "while",
		PlusAssign: "+=", Ellipsis: "...", Arrow: "->", Pragma: "#pragma",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind: %q", got)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Text: "foo"}
	if tok.String() != `identifier "foo"` {
		t.Errorf("got %q", tok.String())
	}
	op := Token{Kind: Plus}
	if op.String() != "+" {
		t.Errorf("got %q", op.String())
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Line: 3, Col: 14}
	if p.String() != "3:14" {
		t.Errorf("got %q", p.String())
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{Assign, PlusAssign, ShrAssign, CaretAssign} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be assign op", k)
		}
	}
	for _, k := range []Kind{Plus, Eq, Ident} {
		if k.IsAssignOp() {
			t.Errorf("%v should not be assign op", k)
		}
	}
}

func TestIsTypeStart(t *testing.T) {
	for _, k := range []Kind{KwInt, KwVolatile, KwStruct, KwTypedef, KwUnsigned} {
		if !k.IsTypeStart() {
			t.Errorf("%v should start a type", k)
		}
	}
	for _, k := range []Kind{Ident, KwWhile, LParen} {
		if k.IsTypeStart() {
			t.Errorf("%v should not start a type", k)
		}
	}
}

func TestKeywordTableComplete(t *testing.T) {
	// Every keyword spelling round-trips through its Kind name.
	for spell, kind := range Keywords {
		if kind.String() != spell {
			t.Errorf("keyword %q has kind name %q", spell, kind.String())
		}
	}
	if len(Keywords) != 32 {
		t.Errorf("keyword count %d", len(Keywords))
	}
}
