// Package token defines the lexical tokens of the C subset accepted by the
// Titan C compiler, along with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation kinds are named after their spelling; keyword
// kinds after the keyword.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	CharLit
	StringLit

	// Keywords.
	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Colon    // :
	Question // ?
	Ellipsis // ...

	Assign        // =
	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=
	AmpAssign     // &=
	PipeAssign    // |=
	CaretAssign   // ^=
	ShlAssign     // <<=
	ShrAssign     // >>=

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Inc     // ++
	Dec     // --

	Eq // ==
	Ne // !=
	Lt // <
	Gt // >
	Le // <=
	Ge // >=

	AndAnd // &&
	OrOr   // ||
	Not    // !

	Amp   // &
	Pipe  // |
	Caret // ^
	Tilde // ~
	Shl   // <<
	Shr   // >>

	Arrow // ->
	Dot   // .

	Pragma // #pragma line (whole line captured as Text)
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "char literal", StringLit: "string literal",
	KwAuto: "auto", KwBreak: "break", KwCase: "case", KwChar: "char",
	KwConst: "const", KwContinue: "continue", KwDefault: "default", KwDo: "do",
	KwDouble: "double", KwElse: "else", KwEnum: "enum", KwExtern: "extern",
	KwFloat: "float", KwFor: "for", KwGoto: "goto", KwIf: "if", KwInt: "int",
	KwLong: "long", KwRegister: "register", KwReturn: "return", KwShort: "short",
	KwSigned: "signed", KwSizeof: "sizeof", KwStatic: "static", KwStruct: "struct",
	KwSwitch: "switch", KwTypedef: "typedef", KwUnion: "union",
	KwUnsigned: "unsigned", KwVoid: "void", KwVolatile: "volatile", KwWhile: "while",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Colon: ":",
	Question: "?", Ellipsis: "...",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=", PipeAssign: "|=",
	CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Inc: "++", Dec: "--",
	Eq: "==", Ne: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Arrow: "->", Dot: ".",
	Pragma: "#pragma",
}

// String returns a human-readable name for the kind ("+=", "while", ...).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"auto": KwAuto, "break": KwBreak, "case": KwCase, "char": KwChar,
	"const": KwConst, "continue": KwContinue, "default": KwDefault, "do": KwDo,
	"double": KwDouble, "else": KwElse, "enum": KwEnum, "extern": KwExtern,
	"float": KwFloat, "for": KwFor, "goto": KwGoto, "if": KwIf, "int": KwInt,
	"long": KwLong, "register": KwRegister, "return": KwReturn, "short": KwShort,
	"signed": KwSigned, "sizeof": KwSizeof, "static": KwStatic,
	"struct": KwStruct, "switch": KwSwitch, "typedef": KwTypedef,
	"union": KwUnion, "unsigned": KwUnsigned, "void": KwVoid,
	"volatile": KwVolatile, "while": KwWhile,
}

// Pos is a source position.
type Pos struct {
	Line int `json:"line"` // 1-based
	Col  int `json:"col"`  // 1-based
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw spelling; for Pragma, the directive body
	Pos  Pos

	// Decoded literal values, valid per Kind.
	IntVal   int64   // IntLit, CharLit
	FloatVal float64 // FloatLit
	StrVal   string  // StringLit (unescaped)
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit, StringLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether k is a (possibly compound) assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

// IsTypeStart reports whether k can begin a type specifier in declarations.
func (k Kind) IsTypeStart() bool {
	switch k {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwConst, KwVolatile,
		KwStatic, KwExtern, KwRegister, KwAuto, KwTypedef:
		return true
	}
	return false
}
