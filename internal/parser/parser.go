// Package parser implements a recursive-descent parser for the C subset
// accepted by the Titan C compiler.
//
// Supported surface: all C89 statements (if/while/do/for/switch/goto/
// labels/break/continue/return), full expression grammar with C precedence
// including ?:, && and ||, comma, ++/-- and compound assignment; declarators
// with pointers, arrays, function parameters (prototype and old-style empty
// lists) and parenthesized declarators (function pointers); struct, union
// and enum definitions; typedef; const/volatile qualifiers; #pragma lines.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/ctype"
	"repro/internal/lexer"
	"repro/internal/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int

	// typedef names in scope; stack of scopes for shadowing.
	typedefs []map[string]*ctype.Type
	// struct/union tags in scope (single flat table is enough for our subset).
	tags map[string]*ctype.Type
	// enum constants.
	enums map[string]int64

	// defCount counts every write to the shared typedef/tag/enum tables;
	// the deferred-body skim (parallel.go) snapshots it per function body
	// to prove each body sees the same table state it would see serially.
	defCount int
	// skim, when non-nil, makes parseFile record function bodies for
	// deferred parallel parsing instead of parsing them inline.
	skim *skimState
}

// newParser returns a parser over a pre-lexed token stream.
func newParser(toks []token.Token) *parser {
	return &parser{
		toks:     toks,
		typedefs: []map[string]*ctype.Type{{}},
		tags:     map[string]*ctype.Type{},
		enums:    map[string]int64{},
	}
}

// Parse parses a complete translation unit.
func Parse(src string) (*ast.File, error) { return ParseWorkers(src, 1) }

// ParseExpr parses a single expression (used by tests).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := newParser(toks)
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != token.EOF {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

func (p *parser) peek() token.Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errorf("expected %s, found %s", k, p.peek())
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// --------------------------------------------------------------- scopes

func (p *parser) pushScope() { p.typedefs = append(p.typedefs, map[string]*ctype.Type{}) }
func (p *parser) popScope()  { p.typedefs = p.typedefs[:len(p.typedefs)-1] }

func (p *parser) lookupTypedef(name string) *ctype.Type {
	for i := len(p.typedefs) - 1; i >= 0; i-- {
		if t, ok := p.typedefs[i][name]; ok {
			return t
		}
	}
	return nil
}

func (p *parser) defineTypedef(name string, t *ctype.Type) {
	p.defCount++
	p.typedefs[len(p.typedefs)-1][name] = t
}

// isTypeName reports whether the current token begins a type, considering
// typedef names.
func (p *parser) isTypeName(t token.Token) bool {
	if t.Kind.IsTypeStart() {
		return true
	}
	return t.Kind == token.Ident && p.lookupTypedef(t.Text) != nil
}

// --------------------------------------------------------------- file

func (p *parser) parseFile() (*ast.File, error) {
	f := &ast.File{}
	for !p.at(token.EOF) {
		if p.at(token.Pragma) {
			// File-scope pragmas are ignored (loop pragmas are handled in
			// statement position).
			p.next()
			continue
		}
		if p.accept(token.Semi) {
			continue
		}
		base, storage, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		// Bare "struct s { ... };" defines a tag with no declarator.
		if p.accept(token.Semi) {
			continue
		}
		name, typ, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if storage == ast.SCTypedef {
			p.defineTypedef(name, typ)
			if _, err := p.expect(token.Semi); err != nil {
				return nil, err
			}
			continue
		}
		if typ.Kind == ctype.Func && p.at(token.LBrace) {
			if p.skim != nil {
				// Deferred-body mode: skip the balanced body now, record
				// where it starts, and parse it on the worker pool later.
				start := p.pos
				if err := p.skipBody(); err != nil {
					return nil, err
				}
				fd := &ast.FuncDecl{P: p.peek().Pos, Name: name, Type: typ, Storage: storage}
				p.skim.bodies = append(p.skim.bodies, deferredBody{fd: fd, start: start, snap: p.defCount})
				f.Funcs = append(f.Funcs, fd)
				f.Order = append(f.Order, fd)
				continue
			}
			body, err := p.parseCompound()
			if err != nil {
				return nil, err
			}
			fd := &ast.FuncDecl{P: p.peek().Pos, Name: name, Type: typ, Storage: storage, Body: body}
			f.Funcs = append(f.Funcs, fd)
			f.Order = append(f.Order, fd)
			continue
		}
		// Prototype or global variable(s).
		for {
			if typ.Kind == ctype.Func {
				fd := &ast.FuncDecl{P: p.peek().Pos, Name: name, Type: typ, Storage: storage}
				f.Funcs = append(f.Funcs, fd)
				f.Order = append(f.Order, fd)
			} else {
				vd := &ast.VarDecl{P: p.peek().Pos, Name: name, Type: typ, Storage: storage}
				if p.accept(token.Assign) {
					if err := p.parseInitializer(vd); err != nil {
						return nil, err
					}
				}
				f.Globals = append(f.Globals, vd)
				f.Order = append(f.Order, vd)
			}
			if !p.accept(token.Comma) {
				break
			}
			name, typ, err = p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// --------------------------------------------------------------- decl specs

// parseDeclSpecs parses storage class + type specifiers + qualifiers.
func (p *parser) parseDeclSpecs() (*ctype.Type, ast.StorageClass, error) {
	storage := ast.SCNone
	var (
		base                *ctype.Type
		sawVoid, sawChar    bool
		sawFloat, sawDouble bool
		sawInt              bool
		shorts, longs       int
		unsigned, signed    bool
		volat, cnst         bool
		any                 bool
	)
	for {
		t := p.peek()
		switch t.Kind {
		case token.KwStatic:
			storage = ast.SCStatic
		case token.KwExtern:
			storage = ast.SCExtern
		case token.KwRegister:
			storage = ast.SCRegister
		case token.KwAuto:
			storage = ast.SCAuto
		case token.KwTypedef:
			storage = ast.SCTypedef
		case token.KwVolatile:
			volat = true
		case token.KwConst:
			cnst = true
		case token.KwVoid:
			sawVoid = true
		case token.KwChar:
			sawChar = true
		case token.KwShort:
			shorts++
		case token.KwInt:
			sawInt = true
		case token.KwLong:
			longs++
		case token.KwFloat:
			sawFloat = true
		case token.KwDouble:
			sawDouble = true
		case token.KwUnsigned:
			unsigned = true
		case token.KwSigned:
			signed = true
		case token.KwStruct, token.KwUnion:
			st, err := p.parseStructOrUnion()
			if err != nil {
				return nil, storage, err
			}
			base = st
			any = true
			continue
		case token.KwEnum:
			et, err := p.parseEnum()
			if err != nil {
				return nil, storage, err
			}
			base = et
			any = true
			continue
		case token.Ident:
			if base == nil && !sawVoid && !sawChar && !sawFloat && !sawDouble &&
				!sawInt && shorts == 0 && longs == 0 && !unsigned && !signed {
				if td := p.lookupTypedef(t.Text); td != nil {
					base = td
					p.next()
					any = true
					continue
				}
			}
			goto done
		default:
			goto done
		}
		p.next()
		any = true
	}
done:
	if !any {
		return nil, storage, p.errorf("expected declaration specifiers, found %s", p.peek())
	}
	if base == nil {
		switch {
		case sawVoid:
			base = ctype.VoidType
		case sawChar:
			if unsigned {
				base = ctype.UCharType
			} else {
				base = ctype.CharType
			}
		case sawFloat:
			base = ctype.FloatType
		case sawDouble:
			base = ctype.DoubleType
		case shorts > 0:
			base = ctype.ShortType
		case longs > 0:
			base = ctype.LongType
		default:
			if unsigned {
				base = ctype.UIntType
			} else {
				base = ctype.IntType
			}
		}
		_ = sawInt
		_ = signed
	}
	base = ctype.Qualified(base, volat, cnst)
	return base, storage, nil
}

func (p *parser) parseStructOrUnion() (*ctype.Type, error) {
	isUnion := p.peek().Kind == token.KwUnion
	p.next()
	tag := ""
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	if !p.at(token.LBrace) {
		if tag == "" {
			return nil, p.errorf("anonymous struct/union requires a body")
		}
		if t, ok := p.tags[tag]; ok {
			return t, nil
		}
		// Forward reference: create an incomplete type; fields may be
		// filled in later by a definition with the same tag.
		t := &ctype.Type{Kind: ctype.Struct, Tag: tag}
		if isUnion {
			t.Kind = ctype.Union
		}
		p.defCount++
		p.tags[tag] = t
		return t, nil
	}
	p.next() // {
	var fields []ctype.Field
	for !p.at(token.RBrace) {
		base, _, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		for {
			name, typ, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			fields = append(fields, ctype.Field{Name: name, Type: typ})
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	var t *ctype.Type
	if isUnion {
		t = ctype.UnionOf(tag, fields)
	} else {
		t = ctype.StructOf(tag, fields)
	}
	if tag != "" {
		if prev, ok := p.tags[tag]; ok && len(prev.Fields) == 0 {
			// Complete a forward declaration in place so earlier pointer
			// types see the fields.
			*prev = *t
			t = prev
		}
		p.defCount++
		p.tags[tag] = t
	}
	return t, nil
}

func (p *parser) parseEnum() (*ctype.Type, error) {
	p.next() // enum
	tag := ""
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	t := &ctype.Type{Kind: ctype.Enum, Tag: tag}
	if !p.at(token.LBrace) {
		return t, nil
	}
	p.next()
	val := int64(0)
	for !p.at(token.RBrace) {
		nameTok, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if p.accept(token.Assign) {
			e, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			v, ok := constFold(e)
			if !ok {
				return nil, p.errorf("enum value must be a constant expression")
			}
			val = v
		}
		p.defCount++
		p.enums[nameTok.Text] = val
		val++
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RBrace); err != nil {
		return nil, err
	}
	return t, nil
}

// --------------------------------------------------------------- declarators

// parseDeclarator parses pointer/array/function declarator syntax around a
// base type, returning the declared name (possibly empty for abstract
// declarators) and the full type.
func (p *parser) parseDeclarator(base *ctype.Type) (string, *ctype.Type, error) {
	// Pointers bind first.
	for p.accept(token.Star) {
		base = ctype.PointerTo(base)
		for p.at(token.KwConst) || p.at(token.KwVolatile) {
			q := p.next()
			base = ctype.Qualified(base, q.Kind == token.KwVolatile, q.Kind == token.KwConst)
		}
	}
	// Direct declarator: name, or parenthesized declarator.
	var name string
	var inner func(*ctype.Type) *ctype.Type // applied to the suffix-completed type
	switch {
	case p.at(token.Ident):
		name = p.next().Text
	case p.at(token.LParen) && (p.peekN(1).Kind == token.Star || p.peekN(1).Kind == token.LParen ||
		(p.peekN(1).Kind == token.Ident && p.lookupTypedef(p.peekN(1).Text) == nil)):
		// Parenthesized declarator, e.g. (*fp)(int). We parse it with a
		// placeholder and compose afterwards.
		p.next()
		n, placeholder, err := p.parseDeclarator(markerType)
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return "", nil, err
		}
		name = n
		inner = func(outer *ctype.Type) *ctype.Type { return substMarker(placeholder, outer) }
	}
	// Suffixes: arrays and function parameter lists.
	typ, err := p.parseDeclSuffix(base)
	if err != nil {
		return "", nil, err
	}
	if inner != nil {
		typ = inner(typ)
	}
	return name, typ, nil
}

// markerType is a unique placeholder spliced by parenthesized declarators.
var markerType = &ctype.Type{Kind: ctype.Void, Tag: "\x00marker"}

// substMarker returns a copy of t with markerType replaced by repl.
func substMarker(t, repl *ctype.Type) *ctype.Type {
	if t == markerType {
		return repl
	}
	c := *t
	if t.Elem != nil {
		c.Elem = substMarker(t.Elem, repl)
	}
	if t.Ret != nil {
		c.Ret = substMarker(t.Ret, repl)
	}
	return &c
}

func (p *parser) parseDeclSuffix(base *ctype.Type) (*ctype.Type, error) {
	switch {
	case p.at(token.LBracket):
		p.next()
		n := -1
		if !p.at(token.RBracket) {
			e, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			v, ok := constFold(e)
			if !ok {
				return nil, p.errorf("array size must be a constant expression")
			}
			n = int(v)
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		elem, err := p.parseDeclSuffix(base)
		if err != nil {
			return nil, err
		}
		return ctype.ArrayOf(elem, n), nil
	case p.at(token.LParen):
		p.next()
		var params []ctype.Param
		variadic := false
		oldStyle := false
		if p.at(token.RParen) {
			oldStyle = true
		} else if p.at(token.KwVoid) && p.peekN(1).Kind == token.RParen {
			p.next()
		} else {
			for {
				if p.accept(token.Ellipsis) {
					variadic = true
					break
				}
				pbase, _, err := p.parseDeclSpecs()
				if err != nil {
					return nil, err
				}
				pname, ptyp, err := p.parseDeclarator(pbase)
				if err != nil {
					return nil, err
				}
				// Parameter arrays decay to pointers.
				if ptyp.Kind == ctype.Array {
					ptyp = ctype.PointerTo(ptyp.Elem)
				}
				if ptyp.Kind == ctype.Func {
					ptyp = ctype.PointerTo(ptyp)
				}
				params = append(params, ctype.Param{Name: pname, Type: ptyp})
				if !p.accept(token.Comma) {
					break
				}
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		ft := ctype.FuncOf(base, params, variadic)
		ft.OldStyle = oldStyle
		return ft, nil
	}
	return base, nil
}

// parseInitializer parses "= expr" or "= { ... }" into the declaration.
// Brace lists are flattened in layout order; nested braces contribute
// their elements in sequence.
func (p *parser) parseInitializer(vd *ast.VarDecl) error {
	if !p.at(token.LBrace) {
		e, err := p.parseAssignExpr()
		if err != nil {
			return err
		}
		vd.Init = e
		return nil
	}
	var flatten func() error
	flatten = func() error {
		if _, err := p.expect(token.LBrace); err != nil {
			return err
		}
		for !p.at(token.RBrace) {
			if p.at(token.LBrace) {
				if err := flatten(); err != nil {
					return err
				}
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return err
				}
				vd.InitList = append(vd.InitList, e)
			}
			if !p.accept(token.Comma) {
				break
			}
		}
		_, err := p.expect(token.RBrace)
		return err
	}
	return flatten()
}

// parseTypeName parses a type-name (for casts and sizeof).
func (p *parser) parseTypeName() (*ctype.Type, error) {
	base, _, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	_, typ, err := p.parseDeclarator(base)
	return typ, err
}

// --------------------------------------------------------------- statements

func (p *parser) parseCompound() (*ast.CompoundStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	cs := &ast.CompoundStmt{}
	cs.P = lb.Pos
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		cs.List = append(cs.List, s)
	}
	p.next() // }
	return cs, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case token.Pragma:
		p.next()
		s := &ast.PragmaStmt{Text: t.Text}
		s.P = t.Pos
		return s, nil
	case token.LBrace:
		return p.parseCompound()
	case token.Semi:
		p.next()
		s := &ast.EmptyStmt{}
		s.P = t.Pos
		return s, nil
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwCase, token.KwDefault:
		return p.parseCase()
	case token.KwReturn:
		p.next()
		s := &ast.ReturnStmt{}
		s.P = t.Pos
		if !p.at(token.Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return s, nil
	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		s := &ast.BreakStmt{}
		s.P = t.Pos
		return s, nil
	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		s := &ast.ContinueStmt{}
		s.P = t.Pos
		return s, nil
	case token.KwGoto:
		p.next()
		lbl, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		s := &ast.GotoStmt{Label: lbl.Text}
		s.P = t.Pos
		return s, nil
	case token.Ident:
		// Label?
		if p.peekN(1).Kind == token.Colon {
			name := p.next().Text
			p.next() // :
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s := &ast.LabeledStmt{Label: name, Stmt: inner}
			s.P = t.Pos
			return s, nil
		}
	}
	if p.isTypeName(t) {
		return p.parseDeclStmt()
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	s := &ast.ExprStmt{X: e}
	s.P = t.Pos
	return s, nil
}

func (p *parser) parseDeclStmt() (ast.Stmt, error) {
	pos := p.peek().Pos
	base, storage, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	ds := &ast.DeclStmt{}
	ds.P = pos
	if p.accept(token.Semi) {
		return ds, nil // bare struct definition in block scope
	}
	for {
		name, typ, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if storage == ast.SCTypedef {
			p.defineTypedef(name, typ)
		} else {
			vd := &ast.VarDecl{P: pos, Name: name, Type: typ, Storage: storage}
			if p.accept(token.Assign) {
				if err := p.parseInitializer(vd); err != nil {
					return nil, err
				}
			}
			ds.Decls = append(ds.Decls, vd)
		}
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{Cond: cond, Then: then}
	s.P = pos
	if p.accept(token.KwElse) {
		e, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = e
	}
	return s, nil
}

func (p *parser) parseWhile() (ast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &ast.WhileStmt{Cond: cond, Body: body}
	s.P = pos
	return s, nil
}

func (p *parser) parseDoWhile() (ast.Stmt, error) {
	pos := p.next().Pos
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	s := &ast.DoWhileStmt{Body: body, Cond: cond}
	s.P = pos
	return s, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{}
	s.P = pos
	if !p.at(token.Semi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Init = e
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.Semi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.RParen) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = e
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) parseSwitch() (ast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &ast.SwitchStmt{Tag: tag, Body: body}
	s.P = pos
	return s, nil
}

func (p *parser) parseCase() (ast.Stmt, error) {
	t := p.next()
	s := &ast.CaseStmt{}
	s.P = t.Pos
	if t.Kind == token.KwCase {
		e, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		s.Value = e
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	inner, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Stmt = inner
	return s, nil
}

// --------------------------------------------------------------- expressions

func (p *parser) parseExpr() (ast.Expr, error) {
	l, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(token.Comma) {
		pos := p.next().Pos
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		c := &ast.CommaExpr{L: l, R: r}
		setPos(c, pos)
		l = c
	}
	return l, nil
}

var compoundOps = map[token.Kind]ast.BinOp{
	token.PlusAssign: ast.Add, token.MinusAssign: ast.Sub,
	token.StarAssign: ast.Mul, token.SlashAssign: ast.Div,
	token.PercentAssign: ast.Rem, token.AmpAssign: ast.And,
	token.PipeAssign: ast.Or, token.CaretAssign: ast.Xor,
	token.ShlAssign: ast.Shl, token.ShrAssign: ast.Shr,
}

func (p *parser) parseAssignExpr() (ast.Expr, error) {
	l, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	k := p.peek().Kind
	if !k.IsAssignOp() {
		return l, nil
	}
	pos := p.next().Pos
	r, err := p.parseAssignExpr() // right-associative
	if err != nil {
		return nil, err
	}
	a := &ast.AssignExpr{L: l, R: r}
	if k != token.Assign {
		op := compoundOps[k]
		a.Op = &op
	}
	setPos(a, pos)
	return a, nil
}

func (p *parser) parseCondExpr() (ast.Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(token.Question) {
		return cond, nil
	}
	pos := p.next().Pos
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	els, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	c := &ast.CondExpr{Cond: cond, Then: then, Else: els}
	setPos(c, pos)
	return c, nil
}

// binary operator precedence climbing; level 0 is lowest (||).
var binLevels = []map[token.Kind]ast.BinOp{
	{token.OrOr: ast.LogOr},
	{token.AndAnd: ast.LogAnd},
	{token.Pipe: ast.Or},
	{token.Caret: ast.Xor},
	{token.Amp: ast.And},
	{token.Eq: ast.Eq, token.Ne: ast.Ne},
	{token.Lt: ast.Lt, token.Gt: ast.Gt, token.Le: ast.Le, token.Ge: ast.Ge},
	{token.Shl: ast.Shl, token.Shr: ast.Shr},
	{token.Plus: ast.Add, token.Minus: ast.Sub},
	{token.Star: ast.Mul, token.Slash: ast.Div, token.Percent: ast.Rem},
}

func (p *parser) parseBinary(level int) (ast.Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binLevels[level][p.peek().Kind]
		if !ok {
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		b := &ast.BinaryExpr{Op: op, L: l, R: r}
		setPos(b, pos)
		l = b
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case token.Plus:
		p.next()
		return p.parseUnary() // unary plus is identity
	case token.Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.Neg, x), nil
	case token.Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.Not, x), nil
	case token.Tilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.BitNot, x), nil
	case token.Star:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.Deref, x), nil
	case token.Amp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.Addr, x), nil
	case token.Inc:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.PreInc, x), nil
	case token.Dec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return newUnary(t.Pos, ast.PreDec, x), nil
	case token.KwSizeof:
		p.next()
		if p.at(token.LParen) && p.isTypeName(p.peekN(1)) {
			p.next()
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			s := &ast.SizeofExpr{OfType: typ}
			setPos(s, t.Pos)
			return s, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		s := &ast.SizeofExpr{X: x}
		setPos(s, t.Pos)
		return s, nil
	case token.LParen:
		// Cast?
		if p.isTypeName(p.peekN(1)) {
			p.next()
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c := &ast.CastExpr{To: typ, X: x}
			setPos(c, t.Pos)
			return c, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case token.LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			ix := &ast.IndexExpr{X: x, Index: idx}
			setPos(ix, t.Pos)
			x = ix
		case token.LParen:
			p.next()
			var args []ast.Expr
			if !p.at(token.RParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(token.Comma) {
						break
					}
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
			c := &ast.CallExpr{Fun: x, Args: args}
			setPos(c, t.Pos)
			x = c
		case token.Dot, token.Arrow:
			p.next()
			name, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			m := &ast.MemberExpr{X: x, Name: name.Text, Arrow: t.Kind == token.Arrow}
			setPos(m, t.Pos)
			x = m
		case token.Inc:
			p.next()
			x = newUnary(t.Pos, ast.PostInc, x)
		case token.Dec:
			p.next()
			x = newUnary(t.Pos, ast.PostDec, x)
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case token.IntLit, token.CharLit:
		p.next()
		return ast.NewIntConst(t.Pos, t.IntVal), nil
	case token.FloatLit:
		p.next()
		fc := ast.NewFloatConst(t.Pos, t.FloatVal)
		if strings.ContainsAny(t.Text, "fF") {
			fc.SetType(ctype.FloatType)
		}
		return fc, nil
	case token.StringLit:
		p.next()
		s := &ast.StrConst{Value: t.StrVal}
		setPos(s, t.Pos)
		return s, nil
	case token.Ident:
		p.next()
		if v, ok := p.enums[t.Text]; ok {
			return ast.NewIntConst(t.Pos, v), nil
		}
		return ast.NewIdent(t.Pos, t.Text), nil
	case token.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %s", t)
}

func newUnary(pos token.Pos, op ast.UnaryOp, x ast.Expr) *ast.UnaryExpr {
	u := &ast.UnaryExpr{Op: op, X: x}
	setPos(u, pos)
	return u
}

// setPos stores the position via the embedded exprBase, which every
// expression node provides through SetPosition.
func setPos(e ast.Expr, pos token.Pos) {
	if s, ok := e.(interface{ SetPosition(token.Pos) }); ok {
		s.SetPosition(pos)
	}
}

// constFold evaluates integer constant expressions at parse time (array
// sizes and enum values). It handles the arithmetic and bitwise operators
// over IntConst leaves plus sizeof(type).
func constFold(e ast.Expr) (int64, bool) {
	switch n := e.(type) {
	case *ast.IntConst:
		return n.Value, true
	case *ast.SizeofExpr:
		if n.OfType != nil {
			return int64(n.OfType.Size()), true
		}
	case *ast.UnaryExpr:
		v, ok := constFold(n.X)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case ast.Neg:
			return -v, true
		case ast.BitNot:
			return ^v, true
		case ast.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.BinaryExpr:
		l, ok1 := constFold(n.L)
		r, ok2 := constFold(n.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch n.Op {
		case ast.Add:
			return l + r, true
		case ast.Sub:
			return l - r, true
		case ast.Mul:
			return l * r, true
		case ast.Div:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case ast.Rem:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case ast.And:
			return l & r, true
		case ast.Or:
			return l | r, true
		case ast.Xor:
			return l ^ r, true
		case ast.Shl:
			return l << uint(r), true
		case ast.Shr:
			return l >> uint(r), true
		case ast.Eq:
			return b2i(l == r), true
		case ast.Ne:
			return b2i(l != r), true
		case ast.Lt:
			return b2i(l < r), true
		case ast.Gt:
			return b2i(l > r), true
		case ast.Le:
			return b2i(l <= r), true
		case ast.Ge:
			return b2i(l >= r), true
		}
	}
	return 0, false
}
