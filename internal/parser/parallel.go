package parser

import (
	"errors"

	"repro/internal/ast"
	"repro/internal/ctype"
	"repro/internal/lexer"
	"repro/internal/token"
	"repro/internal/workpool"
)

// Deferred-body parallel parsing.
//
// ParseWorkers lexes once (interning identifier and string spellings
// through a per-compile lexer.Interner), then skims the translation unit
// serially: file-scope declarations parse inline, but each function body is
// skipped over its balanced braces and recorded. The recorded bodies then
// parse concurrently on the pass worker pool, each with a fresh parser
// positioned at the body's first token, sharing the file-scope typedef,
// tag, and enum tables read-only.
//
// The scheme is bit-identical to serial parsing because a body parse is a
// pure function of (tokens, start, shared tables), and two guards ensure
// the shared tables match what the serial parser would have at that point:
//
//  1. A body containing typedef/struct/union/enum tokens could write the
//     shared tables (block-scope typedefs, tag definitions or forward
//     references, enum constants — which this parser scopes file-wide);
//     skipBody detects those tokens and bails out to a full serial parse.
//  2. A file-scope typedef/tag/enum defined *after* a body would be
//     visible to a deferred parse but not to a serial one; each deferred
//     body snapshots the table-write counter, and a snapshot that differs
//     from the final count bails out to a full serial parse.
//
// Any parse error — during the skim or in any body — also falls back to
// one serial parse, so error positions and messages are exactly the serial
// parser's, whichever body raced to fail first.
type skimState struct {
	bodies []deferredBody
}

type deferredBody struct {
	fd    *ast.FuncDecl
	start int // token index of the body's LBrace
	snap  int // defCount at the body's source position
}

// errBailout aborts a skim that cannot prove body independence.
var errBailout = errors.New("parser: deferred-body parse bailout")

// skipBody advances over a balanced-brace function body without parsing
// it, failing (errBailout) on constructs that could write the shared
// typedef/tag/enum tables, or on EOF inside the body.
func (p *parser) skipBody() error {
	depth := 0
	for {
		switch p.peek().Kind {
		case token.EOF:
			return errBailout
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
		case token.KwTypedef, token.KwStruct, token.KwUnion, token.KwEnum:
			return errBailout
		}
		p.next()
		if depth == 0 {
			return nil
		}
	}
}

// ParseWorkers parses a translation unit with up to `workers` function
// bodies parsing concurrently (1 parses everything serially). The result —
// AST or error — is bit-identical to Parse for every input.
func ParseWorkers(src string, workers int) (*ast.File, error) {
	toks, err := lexer.TokenizeInterned(src, lexer.NewInterner())
	if err != nil {
		return nil, err
	}
	if workers <= 1 {
		return newParser(toks).parseFile()
	}
	p := newParser(toks)
	p.skim = &skimState{}
	f, err := p.parseFile()
	if err != nil {
		// Skim error or bailout: one serial parse gives the exact serial
		// result (error position/message, or success for bailouts).
		return newParser(toks).parseFile()
	}
	for _, d := range p.skim.bodies {
		if d.snap != p.defCount {
			// A file-scope type definition follows this body; serial
			// parsing would not let the body see it.
			return newParser(toks).parseFile()
		}
	}
	bodies := p.skim.bodies
	errs := make([]error, len(bodies))
	fileScope := p.typedefs[0]
	workpool.ForEachN(len(bodies), workers, func(i int) {
		d := bodies[i]
		bp := &parser{
			toks: toks,
			pos:  d.start,
			// Share the file-scope tables read-only: skipBody proved the
			// body cannot write them, and parseCompound pushes a fresh
			// typedef scope for anything it declares.
			typedefs: []map[string]*ctype.Type{fileScope},
			tags:     p.tags,
			enums:    p.enums,
		}
		body, err := bp.parseCompound()
		if err != nil {
			errs[i] = err
			return
		}
		d.fd.Body = body
	})
	for _, e := range errs {
		if e != nil {
			// Reproduce the serial error: the serial parser reports the
			// first failing construct in source order, which may even be a
			// different body than the one that failed here.
			return newParser(toks).parseFile()
		}
	}
	return f, nil
}
