package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// The front end must reject or accept arbitrary input without panicking.

func TestNoPanicOnMutatedPrograms(t *testing.T) {
	seed := `
struct node { int v; struct node *next; };
typedef float real;
real table[16];
int sum(struct node *p, int k) {
	int s;
	s = 0;
	while (p) {
		s += p->v << (k & 3);
		p = p->next;
	}
	return s ? s : -1;
}
`
	r := rand.New(rand.NewSource(42))
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("parser panicked: %v", p)
		}
	}()
	for i := 0; i < 500; i++ {
		b := []byte(seed)
		// Mutate a few bytes.
		for k := 0; k < 1+r.Intn(6); k++ {
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[pos] = byte(r.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{byte('!' + r.Intn(90))}, b[pos:]...)...)
			}
		}
		_, _ = Parse(string(b)) // errors fine; panics are not
	}
}

func TestNoPanicOnTokenSoup(t *testing.T) {
	toks := []string{"int", "float", "struct", "while", "for", "if", "else",
		"return", "(", ")", "{", "}", "[", "]", ";", ",", "*", "&", "+",
		"-", "/", "%", "=", "==", "<", ">", "?", ":", "x", "y", "42",
		"3.5", "\"s\"", "'c'", "->", ".", "++", "--", "goto", "volatile"}
	r := rand.New(rand.NewSource(7))
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("parser panicked: %v", p)
		}
	}()
	for i := 0; i < 500; i++ {
		n := 3 + r.Intn(40)
		var sb strings.Builder
		for k := 0; k < n; k++ {
			sb.WriteString(toks[r.Intn(len(toks))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String())
	}
}

func TestDeeplyNestedParens(t *testing.T) {
	// Deep recursion should error out or parse, not overflow.
	depth := 200
	src := "int f(void) { return " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + "; }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep parens rejected: %v", err)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	cases := []string{
		"int f(void) {",
		"int f(void) { if (",
		"struct s {",
		"int a[",
		"int f(void) { return \"",
		"/*",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}
