package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/ctype"
)

func parseOne(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestSimpleFunction(t *testing.T) {
	f := parseOne(t, "int add(int a, int b) { return a + b; }")
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "add" || fn.Type.Ret.Kind != ctype.Int || len(fn.Type.Params) != 2 {
		t.Errorf("signature: %s %s", fn.Name, fn.Type)
	}
	if fn.Body == nil || len(fn.Body.List) != 1 {
		t.Fatalf("body: %+v", fn.Body)
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("not a return: %T", fn.Body.List[0])
	}
	if _, ok := ret.X.(*ast.BinaryExpr); !ok {
		t.Errorf("return value: %T", ret.X)
	}
}

func TestPrototype(t *testing.T) {
	f := parseOne(t, "void daxpy(float *x, float *y, float alpha, int n);")
	fn := f.Funcs[0]
	if fn.Body != nil {
		t.Error("prototype has body")
	}
	if fn.Type.Params[0].Type.Kind != ctype.Pointer {
		t.Errorf("param 0 type %s", fn.Type.Params[0].Type)
	}
	if fn.Type.Params[0].Name != "x" {
		t.Errorf("param 0 name %q", fn.Type.Params[0].Name)
	}
}

func TestOldStyleEmptyParams(t *testing.T) {
	f := parseOne(t, "int main() { return 0; }")
	if !f.Funcs[0].Type.OldStyle {
		t.Error("main() should be old-style")
	}
	f2 := parseOne(t, "int g(void) { return 0; }")
	if f2.Funcs[0].Type.OldStyle || len(f2.Funcs[0].Type.Params) != 0 {
		t.Error("g(void) should be new-style, zero params")
	}
}

func TestGlobals(t *testing.T) {
	f := parseOne(t, "float a[100], b[100]; static int counter = 5; extern double eps;")
	if len(f.Globals) != 4 {
		t.Fatalf("globals: %d", len(f.Globals))
	}
	if f.Globals[0].Type.Kind != ctype.Array || f.Globals[0].Type.Len != 100 {
		t.Errorf("a: %s", f.Globals[0].Type)
	}
	if f.Globals[2].Storage != ast.SCStatic {
		t.Error("counter not static")
	}
	if f.Globals[2].Init == nil {
		t.Error("counter has no init")
	}
	if f.Globals[3].Storage != ast.SCExtern {
		t.Error("eps not extern")
	}
}

func TestMultiDimArray(t *testing.T) {
	f := parseOne(t, "float m[4][4];")
	typ := f.Globals[0].Type
	if typ.Kind != ctype.Array || typ.Len != 4 ||
		typ.Elem.Kind != ctype.Array || typ.Elem.Len != 4 ||
		typ.Elem.Elem.Kind != ctype.Float {
		t.Errorf("m: %s", typ)
	}
	if typ.Size() != 64 {
		t.Errorf("size %d", typ.Size())
	}
}

func TestConstArraySizeExpr(t *testing.T) {
	f := parseOne(t, "int a[2*8+1];")
	if f.Globals[0].Type.Len != 17 {
		t.Errorf("len %d", f.Globals[0].Type.Len)
	}
}

func TestPointerDeclarators(t *testing.T) {
	f := parseOne(t, "int **pp; float *v[4]; volatile int *p;")
	pp := f.Globals[0].Type
	if pp.Kind != ctype.Pointer || pp.Elem.Kind != ctype.Pointer {
		t.Errorf("pp: %s", pp)
	}
	// v is array-of-4 pointer-to-float
	v := f.Globals[1].Type
	if v.Kind != ctype.Array || v.Elem.Kind != ctype.Pointer {
		t.Errorf("v: %s", v)
	}
	// p is pointer to volatile int
	p := f.Globals[2].Type
	if p.Kind != ctype.Pointer || !p.Elem.Volatile {
		t.Errorf("p: %s", p)
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	f := parseOne(t, "int (*handler)(int, float);")
	h := f.Globals[0].Type
	if h.Kind != ctype.Pointer || h.Elem.Kind != ctype.Func {
		t.Fatalf("handler: %s", h)
	}
	if h.Elem.Ret.Kind != ctype.Int || len(h.Elem.Params) != 2 {
		t.Errorf("handler fn: %s", h.Elem)
	}
}

func TestVolatileGlobal(t *testing.T) {
	f := parseOne(t, "volatile int keyboard_status;")
	if !f.Globals[0].Type.Volatile {
		t.Error("not volatile")
	}
}

func TestStructDef(t *testing.T) {
	f := parseOne(t, `
struct point { float x; float y; };
struct point origin;
struct xform { float m[4][4]; int flags; } unit;
`)
	if f.Globals[0].Type.Kind != ctype.Struct || f.Globals[0].Type.Tag != "point" {
		t.Errorf("origin: %s", f.Globals[0].Type)
	}
	if f.Globals[0].Type.Field("y") == nil {
		t.Error("point.y missing")
	}
	if f.Globals[1].Name != "unit" || f.Globals[1].Type.Field("m") == nil {
		t.Errorf("unit: %+v", f.Globals[1])
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	f := parseOne(t, "struct node { int v; struct node *next; }; struct node head;")
	n := f.Globals[0].Type
	next := n.Field("next")
	if next == nil || next.Type.Kind != ctype.Pointer {
		t.Fatalf("next: %+v", next)
	}
	if next.Type.Elem.Field("v") == nil {
		t.Error("forward reference not completed: node*->v missing")
	}
}

func TestUnion(t *testing.T) {
	f := parseOne(t, "union u { int i; float f; } x;")
	if f.Globals[0].Type.Kind != ctype.Union || f.Globals[0].Type.Size() != 4 {
		t.Errorf("u: %s size %d", f.Globals[0].Type, f.Globals[0].Type.Size())
	}
}

func TestTypedef(t *testing.T) {
	f := parseOne(t, "typedef float real; typedef real *realp; real x; realp p;")
	if f.Globals[0].Type.Kind != ctype.Float {
		t.Errorf("x: %s", f.Globals[0].Type)
	}
	if f.Globals[1].Type.Kind != ctype.Pointer || f.Globals[1].Type.Elem.Kind != ctype.Float {
		t.Errorf("p: %s", f.Globals[1].Type)
	}
}

func TestEnum(t *testing.T) {
	f := parseOne(t, "enum color { RED, GREEN = 5, BLUE }; int x[BLUE];")
	if f.Globals[0].Type.Len != 6 {
		t.Errorf("BLUE = %d, want 6", f.Globals[0].Type.Len)
	}
}

func TestAllStatements(t *testing.T) {
	src := `
void f(int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++) s += i;
	while (n) n--;
	do { n++; } while (n < 10);
	if (s > 5) s = 5; else s = 0;
	switch (n) {
	case 0: s = 1; break;
	case 1: s = 2; break;
	default: s = 3;
	}
	goto out;
out:
	;
	return;
}
`
	f := parseOne(t, src)
	body := f.Funcs[0].Body.List
	if len(body) != 10 {
		t.Fatalf("statements: %d", len(body))
	}
	if _, ok := body[2].(*ast.ForStmt); !ok {
		t.Errorf("stmt 2: %T", body[2])
	}
	if _, ok := body[3].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 3: %T", body[3])
	}
	if _, ok := body[4].(*ast.DoWhileStmt); !ok {
		t.Errorf("stmt 4: %T", body[4])
	}
	if _, ok := body[5].(*ast.IfStmt); !ok {
		t.Errorf("stmt 5: %T", body[5])
	}
	if _, ok := body[6].(*ast.SwitchStmt); !ok {
		t.Errorf("stmt 6: %T", body[6])
	}
	if _, ok := body[7].(*ast.GotoStmt); !ok {
		t.Errorf("stmt 7: %T", body[7])
	}
	if lbl, ok := body[8].(*ast.LabeledStmt); !ok || lbl.Label != "out" {
		t.Errorf("stmt 8: %T", body[8])
	}
}

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestPrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c)
	e := mustExpr(t, "a + b * c").(*ast.BinaryExpr)
	if e.Op != ast.Add {
		t.Fatalf("top op %v", e.Op)
	}
	r := e.R.(*ast.BinaryExpr)
	if r.Op != ast.Mul {
		t.Errorf("right op %v", r.Op)
	}

	// a << b + c parses as a << (b+c)
	e2 := mustExpr(t, "a << b + c").(*ast.BinaryExpr)
	if e2.Op != ast.Shl {
		t.Errorf("shift precedence: top %v", e2.Op)
	}

	// a == b & c parses as (a==b) & c
	e3 := mustExpr(t, "a == b & c").(*ast.BinaryExpr)
	if e3.Op != ast.And {
		t.Errorf("bitand precedence: top %v", e3.Op)
	}

	// a || b && c parses as a || (b&&c)
	e4 := mustExpr(t, "a || b && c").(*ast.BinaryExpr)
	if e4.Op != ast.LogOr {
		t.Errorf("logical precedence: top %v", e4.Op)
	}
}

func TestAssignRightAssoc(t *testing.T) {
	// a = v = b parses as a = (v = b)
	e := mustExpr(t, "a = v = b").(*ast.AssignExpr)
	if _, ok := e.R.(*ast.AssignExpr); !ok {
		t.Errorf("right: %T", e.R)
	}
}

func TestCompoundAssign(t *testing.T) {
	e := mustExpr(t, "x += 4").(*ast.AssignExpr)
	if e.Op == nil || *e.Op != ast.Add {
		t.Errorf("op: %v", e.Op)
	}
}

func TestCondExpr(t *testing.T) {
	e := mustExpr(t, "a ? b : c ? d : e").(*ast.CondExpr)
	// Right-associative: a ? b : (c ? d : e)
	if _, ok := e.Else.(*ast.CondExpr); !ok {
		t.Errorf("else: %T", e.Else)
	}
}

func TestCommaExpr(t *testing.T) {
	e := mustExpr(t, "a = 1, b = 2, c").(*ast.CommaExpr)
	if _, ok := e.L.(*ast.CommaExpr); !ok {
		t.Errorf("comma left-assoc: %T", e.L)
	}
}

func TestPointerIdioms(t *testing.T) {
	// *a++ = *b++ — the paper's canonical copy loop body.
	e := mustExpr(t, "*a++ = *b++").(*ast.AssignExpr)
	l := e.L.(*ast.UnaryExpr)
	if l.Op != ast.Deref {
		t.Fatalf("lhs: %v", l.Op)
	}
	inner := l.X.(*ast.UnaryExpr)
	if inner.Op != ast.PostInc {
		t.Errorf("lhs inner: %v (deref must bind outside post-inc)", inner.Op)
	}
}

func TestCallAndIndex(t *testing.T) {
	e := mustExpr(t, "f(a[i], b, 3)").(*ast.CallExpr)
	if len(e.Args) != 3 {
		t.Fatalf("args: %d", len(e.Args))
	}
	if _, ok := e.Args[0].(*ast.IndexExpr); !ok {
		t.Errorf("arg0: %T", e.Args[0])
	}
}

func TestMemberAccess(t *testing.T) {
	e := mustExpr(t, "p->next.v").(*ast.MemberExpr)
	if e.Name != "v" || e.Arrow {
		t.Errorf("outer: %s arrow=%v", e.Name, e.Arrow)
	}
	in := e.X.(*ast.MemberExpr)
	if in.Name != "next" || !in.Arrow {
		t.Errorf("inner: %s arrow=%v", in.Name, in.Arrow)
	}
}

func TestCast(t *testing.T) {
	src := "float f(void) { int i; return (float)i; }"
	f := parseOne(t, src)
	ret := f.Funcs[0].Body.List[1].(*ast.ReturnStmt)
	c, ok := ret.X.(*ast.CastExpr)
	if !ok {
		t.Fatalf("return: %T", ret.X)
	}
	if c.To.Kind != ctype.Float {
		t.Errorf("cast to: %s", c.To)
	}
}

func TestCastOfTypedef(t *testing.T) {
	src := "typedef float real; real g(int i) { return (real)i; }"
	f := parseOne(t, src)
	ret := f.Funcs[0].Body.List[0].(*ast.ReturnStmt)
	if _, ok := ret.X.(*ast.CastExpr); !ok {
		t.Fatalf("return: %T (typedef name not recognized in cast)", ret.X)
	}
}

func TestSizeof(t *testing.T) {
	e := mustExpr(t, "sizeof(double)").(*ast.SizeofExpr)
	if e.OfType == nil || e.OfType.Kind != ctype.Double {
		t.Errorf("sizeof type: %v", e.OfType)
	}
	e2 := mustExpr(t, "sizeof x").(*ast.SizeofExpr)
	if e2.X == nil {
		t.Error("sizeof expr missing operand")
	}
}

func TestParenExprNotCast(t *testing.T) {
	// (a)+b where a is not a type: must parse as binary add.
	if _, ok := mustExpr(t, "(a)+b").(*ast.BinaryExpr); !ok {
		t.Error("(a)+b should be a binary expression")
	}
}

func TestPragmaStmt(t *testing.T) {
	src := "void f(float *x, int n) {\n#pragma safe\n\twhile (n) { *x++ = 0; n--; }\n}"
	f := parseOne(t, src)
	p, ok := f.Funcs[0].Body.List[0].(*ast.PragmaStmt)
	if !ok || p.Text != "safe" {
		t.Fatalf("stmt 0: %T", f.Funcs[0].Body.List[0])
	}
}

func TestPaperDaxpy(t *testing.T) {
	// The §9 program verbatim (modulo the paper's OCR glitches).
	src := `
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
	if (n <= 0)
		return;
	if (alpha == 0)
		return;
	for (; n; n--)
		*x++ = *y++ + alpha * *z++;
}
int main()
{
	float a[100], b[100], c[100];
	daxpy(a, b, c, 1.0, 100);
	return 0;
}
`
	f := parseOne(t, src)
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}
	dax := f.Funcs[0]
	if len(dax.Type.Params) != 5 {
		t.Errorf("daxpy params: %d", len(dax.Type.Params))
	}
	fs, ok := dax.Body.List[2].(*ast.ForStmt)
	if !ok {
		t.Fatalf("stmt 2: %T", dax.Body.List[2])
	}
	if fs.Init != nil || fs.Cond == nil || fs.Post == nil {
		t.Errorf("for clauses: init=%v cond=%v post=%v", fs.Init, fs.Cond, fs.Post)
	}
}

func TestPaperBacksolve(t *testing.T) {
	src := `
void backsolve(float *x, float *y, float *z, int n)
{
	float *p, *q;
	int i;
	p = &x[1];
	q = &x[0];
	for (i = 0; i < n-2; i++)
		p[i] = z[i] * (y[i] - q[i]);
}
`
	f := parseOne(t, src)
	if len(f.Funcs[0].Body.List) != 5 {
		t.Fatalf("stmts: %d", len(f.Funcs[0].Body.List))
	}
}

func TestVolatileLoop(t *testing.T) {
	// The §1 keyboard_status example.
	src := `
volatile int keyboard_status;
void wait(void)
{
	keyboard_status = 0;
	while (!keyboard_status);
}
`
	f := parseOne(t, src)
	w := f.Funcs[0].Body.List[1].(*ast.WhileStmt)
	if _, ok := w.Body.(*ast.EmptyStmt); !ok {
		t.Errorf("body: %T", w.Body)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"int f( { }",
		"int x",
		"void f(void) { if }",
		"void f(void) { return 1 }",
		"void f(void) { x = ; }",
		"int a[n];", // non-constant array size
		"void f(void) { (1+2 }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestTrailingInputError(t *testing.T) {
	if _, err := ParseExpr("a b"); err == nil {
		t.Error("expected trailing-input error")
	}
}
