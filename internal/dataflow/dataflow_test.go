package dataflow

import (
	"testing"

	"repro/internal/il"
	"repro/internal/parser"
	"repro/internal/sema"

	"repro/internal/ctype"
	"repro/internal/lower"
)

func compileProc(t *testing.T, src, name string) *il.Proc {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := lower.File(f, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p := prog.Proc(name)
	if p == nil {
		t.Fatalf("no proc %s", name)
	}
	return p
}

func analyze(t *testing.T, p *il.Proc) *Analysis {
	t.Helper()
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStraightLineUniqueDef(t *testing.T) {
	p := compileProc(t, "int f(void) { int a; int b; a = 1; b = a; return b; }", "f")
	a := analyze(t, p)
	// At "b = a", the unique def of a is "a = 1".
	bAssign := p.Body[1].(*il.Assign)
	aID := p.LookupVar("a")
	d := a.UniqueDef(bAssign, aID)
	if d == nil {
		t.Fatalf("no unique def of a:\n%s", p)
	}
	if as, ok := d.Node.Stmt.(*il.Assign); !ok || il.DefinedVar(as) != aID {
		t.Errorf("wrong def: %v", d.Node.Stmt)
	}
}

func TestTwoDefsMerge(t *testing.T) {
	src := `
int f(int c) {
	int a, b;
	if (c) a = 1; else a = 2;
	b = a;
	return b;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	var bAssign *il.Stmt
	il.WalkStmts(p.Body, func(s il.Stmt) bool {
		if as, ok := s.(*il.Assign); ok {
			if v, ok := as.Src.(*il.VarRef); ok && p.Vars[v.ID].Name == "a" {
				bAssign = &s
			}
		}
		return true
	})
	if bAssign == nil {
		t.Fatalf("no b = a found:\n%s", p)
	}
	defs := a.ReachingDefs(*bAssign, p.LookupVar("a"))
	if len(defs) != 2 {
		t.Errorf("defs of a at merge: %d, want 2", len(defs))
	}
	if a.UniqueDef(*bAssign, p.LookupVar("a")) != nil {
		t.Error("UniqueDef should fail at a merge")
	}
}

func TestParamEntryDef(t *testing.T) {
	p := compileProc(t, "int f(int n) { return n; }", "f")
	a := analyze(t, p)
	ret := p.Body[0].(*il.Return)
	d := a.UniqueDef(ret, p.LookupVar("n"))
	if d == nil || !d.Entry {
		t.Errorf("param def: %+v", d)
	}
}

func TestLoopCarriedDefs(t *testing.T) {
	// i is defined before the loop and inside it; both reach the condition.
	src := `
void f(int n) {
	int i;
	i = n;
	while (i) {
		i = i - 1;
	}
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	w := p.Body[1].(*il.While)
	defs := a.ReachingDefs(w, p.LookupVar("i"))
	if len(defs) != 2 {
		t.Fatalf("defs of i at loop head: %d, want 2\n%s", len(defs), p)
	}
	// One def inside the loop, one before.
	inLoop := 0
	set := map[il.Stmt]bool{}
	il.WalkStmts(w.Body, func(s il.Stmt) bool { set[s] = true; return true })
	for _, d := range defs {
		if d.Node.Stmt != nil && set[d.Node.Stmt] {
			inLoop++
		}
	}
	if inLoop != 1 {
		t.Errorf("defs inside loop: %d, want 1", inLoop)
	}
	if got := a.DefsInside(p.LookupVar("i"), set); len(got) != 1 {
		t.Errorf("DefsInside: %d", len(got))
	}
}

func TestCallClobbersGlobals(t *testing.T) {
	src := `
int g;
void ext(void);
int f(void) {
	g = 1;
	ext();
	return g;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	ret := p.Body[2].(*il.Return)
	gID := p.LookupVar("g")
	if a.UniqueDef(ret, gID) != nil {
		t.Error("call should clobber global g")
	}
	defs := a.ReachingDefs(ret, gID)
	foundAmbig := false
	for _, d := range defs {
		if d.Ambiguous && !d.Entry {
			foundAmbig = true
		}
	}
	if !foundAmbig {
		t.Error("no ambiguous def from call")
	}
}

func TestStoreClobbersAddrTaken(t *testing.T) {
	src := `
void f(int *p) {
	int x, y;
	x = 1;
	*p = 5;
	y = x;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	// x is not address-taken, so the store through p does NOT clobber it.
	var yAssign il.Stmt
	for _, s := range p.Body {
		if as, ok := s.(*il.Assign); ok {
			if v, ok := as.Dst.(*il.VarRef); ok && p.Vars[v.ID].Name == "y" {
				yAssign = s
			}
		}
	}
	if a.UniqueDef(yAssign, p.LookupVar("x")) == nil {
		t.Error("store should not clobber non-addr-taken x")
	}
}

func TestStoreClobbersAddressTakenVar(t *testing.T) {
	src := `
void g(int *);
int f(void) {
	int x;
	x = 1;
	g(&x);
	return x;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	ret := p.Body[2].(*il.Return)
	if a.UniqueDef(ret, p.LookupVar("x")) != nil {
		t.Error("call with &x should clobber x")
	}
}

func TestUsedVars(t *testing.T) {
	p := compileProc(t, "void f(int *p, int i, int j) { *(p+i) = j; }", "f")
	st := p.Body[0].(*il.Assign)
	used := UsedVars(st)
	names := map[string]bool{}
	for _, v := range used {
		names[p.Vars[v].Name] = true
	}
	if !names["p"] || !names["i"] || !names["j"] {
		t.Errorf("used: %v", names)
	}
}

func TestUsedVarsExcludesScalarDst(t *testing.T) {
	p := compileProc(t, "void f(int a, int b) { a = b; }", "f")
	st := p.Body[0].(*il.Assign)
	for _, v := range UsedVars(st) {
		if p.Vars[v].Name == "a" {
			t.Error("scalar destination counted as use")
		}
	}
}

func TestLivenessSimple(t *testing.T) {
	src := `
int f(void) {
	int a, b;
	a = 1;
	b = 2;
	return a;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	lv := ComputeLiveness(p, a.Graph)
	aAssign := p.Body[0]
	bAssign := p.Body[1]
	aID, bID := p.LookupVar("a"), p.LookupVar("b")
	if !lv.LiveOut(aAssign, aID) {
		t.Error("a should be live after a = 1")
	}
	if lv.LiveOut(bAssign, bID) {
		t.Error("b should be dead after b = 2 (never used)")
	}
}

func TestLivenessLoop(t *testing.T) {
	src := `
int f(int n) {
	int s, i;
	s = 0;
	i = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
`
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	lv := ComputeLiveness(p, a.Graph)
	w := p.Body[2].(*il.While)
	sInc := w.Body[0]
	if !lv.LiveOut(sInc, p.LookupVar("s")) {
		t.Error("s live around loop")
	}
	if !lv.LiveOut(sInc, p.LookupVar("i")) {
		t.Error("i live inside loop")
	}
}

func TestLivenessGlobalsLiveAtExit(t *testing.T) {
	src := "int g; void f(void) { g = 1; }"
	p := compileProc(t, src, "f")
	a := analyze(t, p)
	lv := ComputeLiveness(p, a.Graph)
	if !lv.LiveOut(p.Body[0], p.LookupVar("g")) {
		t.Error("global must be live at exit")
	}
}

func TestDoLoopDefinesIV(t *testing.T) {
	p := il.NewProc("f", ctype.VoidType)
	iv := p.AddVar(il.Var{Name: "i", Type: ctype.IntType, Class: il.ClassLocal})
	x := p.AddVar(il.Var{Name: "x", Type: ctype.IntType, Class: il.ClassLocal})
	use := &il.Assign{Dst: il.Ref(x, ctype.IntType), Src: il.Ref(iv, ctype.IntType)}
	loop := &il.DoLoop{IV: iv, Init: il.Int(0), Limit: il.Int(9), Step: il.Int(1), Body: []il.Stmt{use}}
	p.Body = []il.Stmt{loop}
	a := analyze(t, p)
	defs := a.ReachingDefs(use, iv)
	foundIV := false
	for _, d := range defs {
		if d.Node.IVDef == iv {
			foundIV = true
		}
	}
	if !foundIV {
		t.Errorf("DoLoop should define its IV; defs: %d", len(defs))
	}
	_ = loop
}
