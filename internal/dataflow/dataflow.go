// Package dataflow computes reaching definitions, use-def chains, and live
// variables over the IL control-flow graph.
//
// The paper's scalar optimizer drives everything off use-def chains (§5.2:
// while→DO conversion "should occur ... immediately after use-def chains
// have been constructed"). The chains here are exact for scalar variables
// and conservative for memory: a call may define every global, static and
// address-taken variable; a store through a pointer may define every
// address-taken or global variable.
package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/il"
)

// Def is one definition point.
type Def struct {
	ID   int
	Node *cfg.Node
	Var  il.VarID
	// Ambiguous marks may-defs (call clobbers, stores through pointers,
	// and the synthetic entry definitions of uninitialized variables).
	Ambiguous bool
	// Entry marks the synthetic definition at procedure entry (parameter
	// values and uninitialized locals).
	Entry bool
}

// Analysis holds the dataflow results for one procedure.
type Analysis struct {
	Proc  *il.Proc
	Graph *cfg.Graph

	Defs   []*Def
	defsOf map[il.VarID][]*Def
	// in[n] is the bitset of defs reaching node n's entry.
	in  []bitset
	out []bitset
	// gen/kill per node.
	gen, kill []bitset
	// defsAt lists the defs performed by each node.
	defsAt [][]*Def
}

// Analyze builds the CFG and reaching-definition chains for p.
func Analyze(p *il.Proc) (*Analysis, error) {
	g, err := cfg.Build(p.Body)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Proc: p, Graph: g, defsOf: map[il.VarID][]*Def{}}
	a.collectDefs()
	a.solve()
	return a, nil
}

// clobberSet returns the variables a memory write or call might define.
func (a *Analysis) clobberSet(call bool) []il.VarID {
	var out []il.VarID
	for i := range a.Proc.Vars {
		v := &a.Proc.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			out = append(out, il.VarID(i))
		}
	}
	_ = call
	return out
}

func (a *Analysis) addDef(node *cfg.Node, v il.VarID, ambiguous, entry bool) *Def {
	d := &Def{ID: len(a.Defs), Node: node, Var: v, Ambiguous: ambiguous, Entry: entry}
	a.Defs = append(a.Defs, d)
	a.defsOf[v] = append(a.defsOf[v], d)
	return d
}

func (a *Analysis) collectDefs() {
	nNodes := len(a.Graph.Nodes)
	a.defsAt = make([][]*Def, nNodes)

	// Entry definitions: every variable has an initial (unknown) value;
	// parameters are unambiguous, everything else ambiguous.
	entryNode := a.Graph.Nodes[a.Graph.Entry]
	for i := range a.Proc.Vars {
		id := il.VarID(i)
		isParam := a.Proc.Vars[i].Class == il.ClassParam
		d := a.addDef(entryNode, id, !isParam, true)
		a.defsAt[entryNode.ID] = append(a.defsAt[entryNode.ID], d)
	}

	for _, n := range a.Graph.Nodes {
		// DO-loop heads define the IV's initial value; latches define its
		// per-iteration advance.
		if n.IVDef != il.NoVar {
			d := a.addDef(n, n.IVDef, false, false)
			a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
		}
		if n.Stmt == nil {
			continue
		}
		switch s := n.Stmt.(type) {
		case *il.Assign:
			if v, ok := s.Dst.(*il.VarRef); ok {
				d := a.addDef(n, v.ID, false, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			} else {
				for _, v := range a.clobberSet(false) {
					d := a.addDef(n, v, true, false)
					a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
				}
			}
		case *il.VectorAssign:
			for _, v := range a.clobberSet(false) {
				d := a.addDef(n, v, true, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
		case *il.Call:
			if s.Dst != il.NoVar {
				d := a.addDef(n, s.Dst, false, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
			for _, v := range a.clobberSet(true) {
				d := a.addDef(n, v, true, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
		}
	}

	// gen/kill.
	nDefs := len(a.Defs)
	a.gen = make([]bitset, nNodes)
	a.kill = make([]bitset, nNodes)
	for id := range a.Graph.Nodes {
		a.gen[id] = newBitset(nDefs)
		a.kill[id] = newBitset(nDefs)
		for _, d := range a.defsAt[id] {
			a.gen[id].set(d.ID)
			if !d.Ambiguous {
				// An unambiguous def kills all other defs of the variable.
				for _, other := range a.defsOf[d.Var] {
					if other.ID != d.ID {
						a.kill[id].set(other.ID)
					}
				}
			}
		}
		// gen wins over kill within a node.
		a.kill[id].andNot(a.gen[id])
	}
}

func (a *Analysis) solve() {
	nNodes := len(a.Graph.Nodes)
	nDefs := len(a.Defs)
	a.in = make([]bitset, nNodes)
	a.out = make([]bitset, nNodes)
	for i := 0; i < nNodes; i++ {
		a.in[i] = newBitset(nDefs)
		a.out[i] = newBitset(nDefs)
	}
	changed := true
	for changed {
		changed = false
		for id, n := range a.Graph.Nodes {
			in := newBitset(nDefs)
			for _, p := range n.Preds {
				in.or(a.out[p])
			}
			out := in.clone()
			out.andNot(a.kill[id])
			out.or(a.gen[id])
			if !in.equal(a.in[id]) || !out.equal(a.out[id]) {
				a.in[id] = in
				a.out[id] = out
				changed = true
			}
		}
	}
}

// ReachingDefs returns the definitions of v reaching the entry of statement
// s. Returns nil if s has no CFG node.
func (a *Analysis) ReachingDefs(s il.Stmt, v il.VarID) []*Def {
	n, ok := a.Graph.NodeOf[s]
	if !ok {
		return nil
	}
	return a.reachingAt(n, v)
}

func (a *Analysis) reachingAt(n *cfg.Node, v il.VarID) []*Def {
	var out []*Def
	for _, d := range a.defsOf[v] {
		if a.in[n.ID].get(d.ID) {
			out = append(out, d)
		}
	}
	return out
}

// UniqueDef returns the single unambiguous definition of v reaching s, or
// nil if there are several, none, or only ambiguous ones.
func (a *Analysis) UniqueDef(s il.Stmt, v il.VarID) *Def {
	defs := a.ReachingDefs(s, v)
	if len(defs) != 1 || defs[0].Ambiguous {
		return nil
	}
	return defs[0]
}

// DefsInside returns the definitions of v whose node's statement is in the
// given set.
func (a *Analysis) DefsInside(v il.VarID, set map[il.Stmt]bool) []*Def {
	var out []*Def
	for _, d := range a.defsOf[v] {
		if d.Node.Stmt != nil && set[d.Node.Stmt] {
			out = append(out, d)
		}
	}
	return out
}

// DefsOf returns all definitions of v.
func (a *Analysis) DefsOf(v il.VarID) []*Def { return a.defsOf[v] }

// UsedVars returns the variables read by statement s (in its expressions;
// a scalar assignment destination is not a use, but a store's address is).
func UsedVars(s il.Stmt) []il.VarID {
	seen := map[il.VarID]bool{}
	var order []il.VarID
	add := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			switch n := x.(type) {
			case *il.VarRef:
				if !seen[n.ID] {
					seen[n.ID] = true
					order = append(order, n.ID)
				}
			case *il.AddrOf:
				if !seen[n.ID] {
					seen[n.ID] = true
					order = append(order, n.ID)
				}
			}
			return true
		})
	}
	if as, ok := s.(*il.Assign); ok {
		if ld, isStore := as.Dst.(*il.Load); isStore {
			add(ld.Addr)
		}
		add(as.Src)
		return order
	}
	il.StmtExprs(s, add)
	return order
}

// ---------------------------------------------------------------- liveness

// Liveness holds live-variable sets per CFG node.
type Liveness struct {
	Graph *cfg.Graph
	// liveOut[n] is the set of variables live at n's exit.
	liveOut []bitset
	nVars   int
}

// LiveOut reports whether v is live after statement s.
func (lv *Liveness) LiveOut(s il.Stmt, v il.VarID) bool {
	n, ok := lv.Graph.NodeOf[s]
	if !ok {
		return true // unknown statements stay conservative
	}
	return lv.liveOut[n.ID].get(int(v))
}

// ComputeLiveness runs backward live-variable analysis. Global, static and
// address-taken variables are treated as live at procedure exit.
func ComputeLiveness(p *il.Proc, g *cfg.Graph) *Liveness {
	nVars := len(p.Vars)
	nNodes := len(g.Nodes)
	use := make([]bitset, nNodes)
	def := make([]bitset, nNodes)
	for id, n := range g.Nodes {
		use[id] = newBitset(nVars)
		def[id] = newBitset(nVars)
		if n.IVDef != il.NoVar {
			def[id].set(int(n.IVDef))
		}
		if n.Stmt == nil {
			continue
		}
		for _, v := range UsedVars(n.Stmt) {
			use[id].set(int(v))
		}
		if dv := il.DefinedVar(n.Stmt); dv != il.NoVar {
			def[id].set(int(dv))
		}
	}
	// Variables observable after return.
	exitLive := newBitset(nVars)
	for i := range p.Vars {
		v := &p.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			exitLive.set(i)
		}
	}

	liveIn := make([]bitset, nNodes)
	liveOut := make([]bitset, nNodes)
	for i := 0; i < nNodes; i++ {
		liveIn[i] = newBitset(nVars)
		liveOut[i] = newBitset(nVars)
	}
	liveOut[g.Exit] = exitLive.clone()
	liveIn[g.Exit] = exitLive.clone()
	changed := true
	for changed {
		changed = false
		for id := len(g.Nodes) - 1; id >= 0; id-- {
			n := g.Nodes[id]
			out := newBitset(nVars)
			if id == g.Exit {
				out = exitLive.clone()
			}
			for _, s := range n.Succs {
				out.or(liveIn[s])
			}
			in := out.clone()
			in.andNot(def[id])
			in.or(use[id])
			if !out.equal(liveOut[id]) || !in.equal(liveIn[id]) {
				liveOut[id] = out
				liveIn[id] = in
				changed = true
			}
		}
	}
	return &Liveness{Graph: g, liveOut: liveOut, nVars: nVars}
}

// ---------------------------------------------------------------- bitsets

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
