// Package dataflow computes reaching definitions, use-def chains, and live
// variables over the IL control-flow graph.
//
// The paper's scalar optimizer drives everything off use-def chains (§5.2:
// while→DO conversion "should occur ... immediately after use-def chains
// have been constructed"). The chains here are exact for scalar variables
// and conservative for memory: a call may define every global, static and
// address-taken variable; a store through a pointer may define every
// address-taken or global variable.
package dataflow

import (
	"math/bits"

	"repro/internal/cfg"
	"repro/internal/il"
)

// Def is one definition point.
type Def struct {
	ID   int
	Node *cfg.Node
	Var  il.VarID
	// Ambiguous marks may-defs (call clobbers, stores through pointers,
	// and the synthetic entry definitions of uninitialized variables).
	Ambiguous bool
	// Entry marks the synthetic definition at procedure entry (parameter
	// values and uninitialized locals).
	Entry bool
}

// Analysis holds the dataflow results for one procedure.
type Analysis struct {
	Proc  *il.Proc
	Graph *cfg.Graph

	Defs []*Def
	// defsOf is indexed by VarID (grown on demand for variables created
	// after the analysis, e.g. while→DO dummy IVs).
	defsOf [][]*Def
	// defSlab is the current chunk Defs are carved from; a full chunk is
	// abandoned (still referenced through Defs) and a fresh one started,
	// so Def pointers stay stable.
	defSlab []Def
	// in[n] is the bitset of defs reaching node n's entry.
	in  []bitset
	out []bitset
	// gen/kill per node.
	gen, kill []bitset
	// defsAt lists the defs performed by each node.
	defsAt [][]*Def
	// clobbers caches the may-define set of a call or store (the
	// address-taken, global and static variables), computed once per
	// analysis instead of once per clobbering statement.
	clobbers []il.VarID
	// defMask lazily caches, per variable, the bitset of its def IDs, so
	// chain queries intersect words instead of probing def-by-def. Masks
	// are bump-allocated from maskBacking.
	defMask     []bitset
	maskBacking []uint64
}

// Analyze builds the CFG and reaching-definition chains for p.
func Analyze(p *il.Proc) (*Analysis, error) {
	g, err := cfg.Build(p.Body)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Proc: p, Graph: g, defsOf: make([][]*Def, len(p.Vars))}
	a.collectClobbers()
	a.collectDefs()
	a.solve()
	return a, nil
}

// collectClobbers precomputes the variables a memory write or call might
// define.
func (a *Analysis) collectClobbers() {
	for i := range a.Proc.Vars {
		v := &a.Proc.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			a.clobbers = append(a.clobbers, il.VarID(i))
		}
	}
}

// clobberSet returns the variables a memory write or call might define.
func (a *Analysis) clobberSet(call bool) []il.VarID {
	_ = call
	return a.clobbers
}

func (a *Analysis) addDef(node *cfg.Node, v il.VarID, ambiguous, entry bool) *Def {
	if len(a.defSlab) == cap(a.defSlab) {
		n := 2 * cap(a.defSlab)
		if n < 256 {
			n = 256
		}
		if n > 4096 {
			n = 4096
		}
		a.defSlab = make([]Def, 0, n)
	}
	a.defSlab = append(a.defSlab, Def{ID: len(a.Defs), Node: node, Var: v, Ambiguous: ambiguous, Entry: entry})
	d := &a.defSlab[len(a.defSlab)-1]
	a.Defs = append(a.Defs, d)
	return d
}

// indexDefs builds defsOf from the collected Defs, carving the per-var
// slices out of one backing array (capped, so a later append — the
// while→DO splice — reallocates instead of clobbering a neighbor).
func (a *Analysis) indexDefs() {
	counts := make([]int, len(a.defsOf))
	for _, d := range a.Defs {
		counts[d.Var]++
	}
	backing := make([]*Def, len(a.Defs))
	off := 0
	for v, c := range counts {
		a.defsOf[v] = backing[off : off : off+c]
		off += c
	}
	for _, d := range a.Defs {
		a.defsOf[d.Var] = append(a.defsOf[d.Var], d)
	}
}

func (a *Analysis) collectDefs() {
	nNodes := len(a.Graph.Nodes)
	a.defsAt = make([][]*Def, nNodes)

	// Defs are appended to a.Defs node-by-node, so each node's def list is
	// a contiguous range of a.Defs — defsAt slices that range (capped, so
	// the while→DO splice's later append reallocates) instead of growing
	// per-node slices. The entry node carries no statement or IV, so the
	// per-node loop below never adds to its range.
	entryNode := a.Graph.Nodes[a.Graph.Entry]
	for i := range a.Proc.Vars {
		// Entry definitions: every variable has an initial (unknown) value;
		// parameters are unambiguous, everything else ambiguous.
		id := il.VarID(i)
		isParam := a.Proc.Vars[i].Class == il.ClassParam
		a.addDef(entryNode, id, !isParam, true)
	}
	a.defsAt[entryNode.ID] = a.Defs[0:len(a.Defs):len(a.Defs)]

	for _, n := range a.Graph.Nodes {
		start := len(a.Defs)
		// DO-loop heads define the IV's initial value; latches define its
		// per-iteration advance.
		if n.IVDef != il.NoVar {
			a.addDef(n, n.IVDef, false, false)
		}
		if n.Stmt != nil {
			switch s := n.Stmt.(type) {
			case *il.Assign:
				if v, ok := s.Dst.(*il.VarRef); ok {
					a.addDef(n, v.ID, false, false)
				} else {
					for _, v := range a.clobberSet(false) {
						a.addDef(n, v, true, false)
					}
				}
			case *il.PredAssign:
				// A predicated store may or may not write memory; either way
				// it only ever clobbers, never defines, a scalar.
				for _, v := range a.clobberSet(false) {
					a.addDef(n, v, true, false)
				}
			case *il.VectorAssign:
				for _, v := range a.clobberSet(false) {
					a.addDef(n, v, true, false)
				}
			case *il.Call:
				if s.Dst != il.NoVar {
					a.addDef(n, s.Dst, false, false)
				}
				for _, v := range a.clobberSet(true) {
					a.addDef(n, v, true, false)
				}
			}
		}
		if end := len(a.Defs); end > start {
			a.defsAt[n.ID] = a.Defs[start:end:end]
		}
	}

	a.indexDefs()

	// gen/kill, carved from one backing slab (capped sub-slices, so a
	// later grow reallocates instead of clobbering its neighbor).
	nDefs := len(a.Defs)
	a.gen = newBitsetSlab(nNodes, nDefs)
	a.kill = newBitsetSlab(nNodes, nDefs)
	for id := range a.Graph.Nodes {
		for _, d := range a.defsAt[id] {
			a.gen[id].set(d.ID)
			if !d.Ambiguous {
				// An unambiguous def kills all other defs of the variable.
				for _, other := range a.defsOf[d.Var] {
					if other.ID != d.ID {
						a.kill[id].set(other.ID)
					}
				}
			}
		}
		// gen wins over kill within a node.
		a.kill[id].andNot(a.gen[id])
	}
}

// solve runs the reaching-definitions fixpoint as a reverse-postorder
// worklist: nodes are visited predecessors-first, each sweep only touches
// nodes whose inputs changed, and the per-node transfer computes into two
// reused scratch bitsets instead of allocating fresh sets every sweep.
// The solution is the unique least fixpoint, identical to what the naive
// Gauss–Seidel iteration produced.
func (a *Analysis) solve() {
	nNodes := len(a.Graph.Nodes)
	nDefs := len(a.Defs)
	a.in = newBitsetSlab(nNodes, nDefs)
	a.out = newBitsetSlab(nNodes, nDefs)

	order := a.Graph.RPO()
	dirty := make([]bool, nNodes)
	for i := range dirty {
		dirty[i] = true
	}
	inScratch := newBitset(nDefs)
	outScratch := newBitset(nDefs)
	anyDirty := true
	for anyDirty {
		anyDirty = false
		for _, id := range order {
			if !dirty[id] {
				continue
			}
			dirty[id] = false
			n := a.Graph.Nodes[id]
			inScratch.clear()
			for _, p := range n.Preds {
				inScratch.or(a.out[p])
			}
			copy(outScratch, inScratch)
			outScratch.andNot(a.kill[id])
			outScratch.or(a.gen[id])
			if !inScratch.equal(a.in[id]) {
				copy(a.in[id], inScratch)
			}
			if !outScratch.equal(a.out[id]) {
				copy(a.out[id], outScratch)
				for _, s := range n.Succs {
					if !dirty[s] {
						dirty[s] = true
						anyDirty = true
					}
				}
			}
		}
	}
}

// ReachingDefs returns the definitions of v reaching the entry of statement
// s. Returns nil if s has no CFG node.
func (a *Analysis) ReachingDefs(s il.Stmt, v il.VarID) []*Def {
	n, ok := a.Graph.NodeOf[s]
	if !ok {
		return nil
	}
	return a.reachingAt(n, v)
}

func (a *Analysis) reachingAt(n *cfg.Node, v il.VarID) []*Def {
	var out []*Def
	a.forEachReachingAt(n, v, func(d *Def) { out = append(out, d) })
	return out
}

// ForEachReachingDef calls fn for every definition of v reaching the entry
// of s, in def-ID order, without materializing a slice.
func (a *Analysis) ForEachReachingDef(s il.Stmt, v il.VarID, fn func(*Def)) {
	if n, ok := a.Graph.NodeOf[s]; ok {
		a.forEachReachingAt(n, v, fn)
	}
}

// forEachReachingAt intersects the node's reaching set with the variable's
// def mask word-by-word instead of probing every def of v bit-by-bit.
func (a *Analysis) forEachReachingAt(n *cfg.Node, v il.VarID, fn func(*Def)) {
	mask := a.maskOf(v)
	in := a.in[n.ID]
	words := len(mask)
	if len(in) < words {
		words = len(in)
	}
	for w := 0; w < words; w++ {
		word := mask[w] & in[w]
		for word != 0 {
			fn(a.Defs[w*64+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
}

// maskOf returns (building lazily) the bitset of v's def IDs.
func (a *Analysis) maskOf(v il.VarID) bitset {
	if int(v) < len(a.defMask) {
		if m := a.defMask[v]; m != nil {
			return m
		}
	}
	for int(v) >= len(a.defMask) {
		a.defMask = append(a.defMask, nil)
	}
	words := (len(a.Defs) + 63) / 64
	if len(a.maskBacking) < words {
		c := 16 * words
		if c < 256 {
			c = 256
		}
		a.maskBacking = make([]uint64, c)
	}
	m := bitset(a.maskBacking[:words:words])
	a.maskBacking = a.maskBacking[words:]
	if int(v) < len(a.defsOf) {
		for _, d := range a.defsOf[v] {
			m.set(d.ID)
		}
	}
	a.defMask[v] = m
	return m
}

// UniqueDef returns the single unambiguous definition of v reaching s, or
// nil if there are several, none, or only ambiguous ones.
func (a *Analysis) UniqueDef(s il.Stmt, v il.VarID) *Def {
	defs := a.ReachingDefs(s, v)
	if len(defs) != 1 || defs[0].Ambiguous {
		return nil
	}
	return defs[0]
}

// DefsInside returns the definitions of v whose node's statement is in the
// given set.
func (a *Analysis) DefsInside(v il.VarID, set map[il.Stmt]bool) []*Def {
	var out []*Def
	for _, d := range a.DefsOf(v) {
		if d.Node.Stmt != nil && set[d.Node.Stmt] {
			out = append(out, d)
		}
	}
	return out
}

// DefsOf returns all definitions of v.
func (a *Analysis) DefsOf(v il.VarID) []*Def {
	if int(v) >= len(a.defsOf) {
		return nil
	}
	return a.defsOf[v]
}

// SpliceWhileConversion patches the analysis in place after while→DO
// conversion replaced w with d (same body statements, fresh dummy IV):
// the §5.2 incremental use-def reconstruction, instead of a full re-solve.
// The while's condition node becomes the DO node (head and latch merged),
// one definition of the dummy IV is appended to the chains, and its
// reaching bit is flowed forward along successor edges — the dummy is
// fresh, so the new def kills nothing and is killed nowhere.
//
// The patched analysis answers the conversion queries (NodeOf, EntersBody,
// DefsInside) exactly as a rebuilt one would; it deliberately omits the
// dummy's synthetic entry definition, so it must not outlive the
// conversion pass (UniqueDef on the dummy would be over-precise).
// Returns false when w has no node; the caller falls back to Analyze.
func (a *Analysis) SpliceWhileConversion(w *il.While, d *il.DoLoop) bool {
	n, ok := a.Graph.NodeOf[w]
	if !ok {
		return false
	}
	delete(a.Graph.NodeOf, w)
	a.Graph.NodeOf[d] = n
	n.Stmt = d
	n.IVDef = d.IV

	def := a.addDef(n, d.IV, false, false)
	for int(d.IV) >= len(a.defsOf) {
		a.defsOf = append(a.defsOf, nil)
	}
	a.defsOf[d.IV] = append(a.defsOf[d.IV], def)
	a.defsAt[n.ID] = append(a.defsAt[n.ID], def)
	if int(d.IV) < len(a.defMask) {
		a.defMask[d.IV] = nil
	}

	nDefs := len(a.Defs)
	a.gen[n.ID] = growTo(a.gen[n.ID], nDefs)
	a.gen[n.ID].set(def.ID)
	a.out[n.ID] = growTo(a.out[n.ID], nDefs)
	a.out[n.ID].set(def.ID)
	work := []int{n.ID}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range a.Graph.Nodes[id].Succs {
			a.in[s] = growTo(a.in[s], nDefs)
			if !a.in[s].get(def.ID) {
				a.in[s].set(def.ID)
				a.out[s] = growTo(a.out[s], nDefs)
				a.out[s].set(def.ID)
				work = append(work, s)
			}
		}
	}
	return true
}

// growTo widens b to hold at least width bits. The slab sub-slices are
// capped, so growing one reallocates it rather than clobbering a neighbor.
func growTo(b bitset, width int) bitset {
	words := (width + 63) / 64
	for len(b) < words {
		b = append(b, 0)
	}
	return b
}

// UsedVars returns the variables read by statement s (in its expressions;
// a scalar assignment destination is not a use, but a store's address is).
func UsedVars(s il.Stmt) []il.VarID {
	var order []il.VarID
	add := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			id := il.NoVar
			switch n := x.(type) {
			case *il.VarRef:
				id = n.ID
			case *il.AddrOf:
				id = n.ID
			}
			if id != il.NoVar {
				// Statements reference few distinct variables; a linear
				// dedup scan beats a per-call map.
				for _, o := range order {
					if o == id {
						return true
					}
				}
				order = append(order, id)
			}
			return true
		})
	}
	if as, ok := s.(*il.Assign); ok {
		if ld, isStore := as.Dst.(*il.Load); isStore {
			add(ld.Addr)
		}
		add(as.Src)
		return order
	}
	il.StmtExprs(s, add)
	return order
}

// ---------------------------------------------------------------- liveness

// Liveness holds live-variable sets per CFG node.
type Liveness struct {
	Graph *cfg.Graph
	// liveOut[n] is the set of variables live at n's exit.
	liveOut []bitset
	nVars   int
}

// LiveOut reports whether v is live after statement s.
func (lv *Liveness) LiveOut(s il.Stmt, v il.VarID) bool {
	n, ok := lv.Graph.NodeOf[s]
	if !ok {
		return true // unknown statements stay conservative
	}
	return lv.liveOut[n.ID].get(int(v))
}

// ComputeLiveness runs backward live-variable analysis. Global, static and
// address-taken variables are treated as live at procedure exit.
func ComputeLiveness(p *il.Proc, g *cfg.Graph) *Liveness {
	nVars := len(p.Vars)
	nNodes := len(g.Nodes)
	use := make([]bitset, nNodes)
	def := make([]bitset, nNodes)
	for id, n := range g.Nodes {
		use[id] = newBitset(nVars)
		def[id] = newBitset(nVars)
		if n.IVDef != il.NoVar {
			def[id].set(int(n.IVDef))
		}
		if n.Stmt == nil {
			continue
		}
		for _, v := range UsedVars(n.Stmt) {
			use[id].set(int(v))
		}
		if dv := il.DefinedVar(n.Stmt); dv != il.NoVar {
			def[id].set(int(dv))
		}
	}
	// Variables observable after return.
	exitLive := newBitset(nVars)
	for i := range p.Vars {
		v := &p.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			exitLive.set(i)
		}
	}

	// Backward worklist over postorder (successors-first), with the same
	// reused-scratch scheme as the forward solver: no per-sweep bitset
	// allocations, and converged regions are skipped.
	liveIn := newBitsetSlab(nNodes, nVars)
	liveOut := newBitsetSlab(nNodes, nVars)
	copy(liveOut[g.Exit], exitLive)
	copy(liveIn[g.Exit], exitLive)

	order := g.RPO()
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	dirty := make([]bool, nNodes)
	for i := range dirty {
		dirty[i] = true
	}
	outScratch := newBitset(nVars)
	inScratch := newBitset(nVars)
	anyDirty := true
	for anyDirty {
		anyDirty = false
		for _, id := range order {
			if !dirty[id] {
				continue
			}
			dirty[id] = false
			n := g.Nodes[id]
			outScratch.clear()
			if id == g.Exit {
				outScratch.or(exitLive)
			}
			for _, s := range n.Succs {
				outScratch.or(liveIn[s])
			}
			copy(inScratch, outScratch)
			inScratch.andNot(def[id])
			inScratch.or(use[id])
			if !outScratch.equal(liveOut[id]) {
				copy(liveOut[id], outScratch)
			}
			if !inScratch.equal(liveIn[id]) {
				copy(liveIn[id], inScratch)
				for _, p := range n.Preds {
					if !dirty[p] {
						dirty[p] = true
						anyDirty = true
					}
				}
			}
		}
	}
	return &Liveness{Graph: g, liveOut: liveOut, nVars: nVars}
}

// ---------------------------------------------------------------- bitsets

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// forEach calls fn for every set bit, in ascending order, skipping zero
// words and using TrailingZeros64 within non-zero ones.
func (b bitset) forEach(fn func(int)) {
	for w, word := range b {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// newBitsetSlab carves n bitsets of the given width out of one backing
// allocation. The sub-slices are capped (three-index), so a later append
// reallocates the grown set instead of clobbering its neighbor.
func newBitsetSlab(n, width int) []bitset {
	words := (width + 63) / 64
	backing := make([]uint64, n*words)
	out := make([]bitset, n)
	for i := range out {
		out[i] = bitset(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return out
}

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
