// Package dataflow computes reaching definitions, use-def chains, and live
// variables over the IL control-flow graph.
//
// The paper's scalar optimizer drives everything off use-def chains (§5.2:
// while→DO conversion "should occur ... immediately after use-def chains
// have been constructed"). The chains here are exact for scalar variables
// and conservative for memory: a call may define every global, static and
// address-taken variable; a store through a pointer may define every
// address-taken or global variable.
package dataflow

import (
	"math/bits"

	"repro/internal/cfg"
	"repro/internal/il"
)

// Def is one definition point.
type Def struct {
	ID   int
	Node *cfg.Node
	Var  il.VarID
	// Ambiguous marks may-defs (call clobbers, stores through pointers,
	// and the synthetic entry definitions of uninitialized variables).
	Ambiguous bool
	// Entry marks the synthetic definition at procedure entry (parameter
	// values and uninitialized locals).
	Entry bool
}

// Analysis holds the dataflow results for one procedure.
type Analysis struct {
	Proc  *il.Proc
	Graph *cfg.Graph

	Defs   []*Def
	defsOf map[il.VarID][]*Def
	// in[n] is the bitset of defs reaching node n's entry.
	in  []bitset
	out []bitset
	// gen/kill per node.
	gen, kill []bitset
	// defsAt lists the defs performed by each node.
	defsAt [][]*Def
	// clobbers caches the may-define set of a call or store (the
	// address-taken, global and static variables), computed once per
	// analysis instead of once per clobbering statement.
	clobbers []il.VarID
	// defMask lazily caches, per variable, the bitset of its def IDs, so
	// chain queries intersect words instead of probing def-by-def.
	defMask map[il.VarID]bitset
}

// Analyze builds the CFG and reaching-definition chains for p.
func Analyze(p *il.Proc) (*Analysis, error) {
	g, err := cfg.Build(p.Body)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Proc: p, Graph: g, defsOf: map[il.VarID][]*Def{}}
	a.collectClobbers()
	a.collectDefs()
	a.solve()
	return a, nil
}

// collectClobbers precomputes the variables a memory write or call might
// define.
func (a *Analysis) collectClobbers() {
	for i := range a.Proc.Vars {
		v := &a.Proc.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			a.clobbers = append(a.clobbers, il.VarID(i))
		}
	}
}

// clobberSet returns the variables a memory write or call might define.
func (a *Analysis) clobberSet(call bool) []il.VarID {
	_ = call
	return a.clobbers
}

func (a *Analysis) addDef(node *cfg.Node, v il.VarID, ambiguous, entry bool) *Def {
	d := &Def{ID: len(a.Defs), Node: node, Var: v, Ambiguous: ambiguous, Entry: entry}
	a.Defs = append(a.Defs, d)
	a.defsOf[v] = append(a.defsOf[v], d)
	return d
}

func (a *Analysis) collectDefs() {
	nNodes := len(a.Graph.Nodes)
	a.defsAt = make([][]*Def, nNodes)

	// Entry definitions: every variable has an initial (unknown) value;
	// parameters are unambiguous, everything else ambiguous.
	entryNode := a.Graph.Nodes[a.Graph.Entry]
	for i := range a.Proc.Vars {
		id := il.VarID(i)
		isParam := a.Proc.Vars[i].Class == il.ClassParam
		d := a.addDef(entryNode, id, !isParam, true)
		a.defsAt[entryNode.ID] = append(a.defsAt[entryNode.ID], d)
	}

	for _, n := range a.Graph.Nodes {
		// DO-loop heads define the IV's initial value; latches define its
		// per-iteration advance.
		if n.IVDef != il.NoVar {
			d := a.addDef(n, n.IVDef, false, false)
			a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
		}
		if n.Stmt == nil {
			continue
		}
		switch s := n.Stmt.(type) {
		case *il.Assign:
			if v, ok := s.Dst.(*il.VarRef); ok {
				d := a.addDef(n, v.ID, false, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			} else {
				for _, v := range a.clobberSet(false) {
					d := a.addDef(n, v, true, false)
					a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
				}
			}
		case *il.VectorAssign:
			for _, v := range a.clobberSet(false) {
				d := a.addDef(n, v, true, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
		case *il.Call:
			if s.Dst != il.NoVar {
				d := a.addDef(n, s.Dst, false, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
			for _, v := range a.clobberSet(true) {
				d := a.addDef(n, v, true, false)
				a.defsAt[n.ID] = append(a.defsAt[n.ID], d)
			}
		}
	}

	// gen/kill, carved from one backing slab (capped sub-slices, so a
	// later grow reallocates instead of clobbering its neighbor).
	nDefs := len(a.Defs)
	a.gen = newBitsetSlab(nNodes, nDefs)
	a.kill = newBitsetSlab(nNodes, nDefs)
	for id := range a.Graph.Nodes {
		for _, d := range a.defsAt[id] {
			a.gen[id].set(d.ID)
			if !d.Ambiguous {
				// An unambiguous def kills all other defs of the variable.
				for _, other := range a.defsOf[d.Var] {
					if other.ID != d.ID {
						a.kill[id].set(other.ID)
					}
				}
			}
		}
		// gen wins over kill within a node.
		a.kill[id].andNot(a.gen[id])
	}
}

// solve runs the reaching-definitions fixpoint as a reverse-postorder
// worklist: nodes are visited predecessors-first, each sweep only touches
// nodes whose inputs changed, and the per-node transfer computes into two
// reused scratch bitsets instead of allocating fresh sets every sweep.
// The solution is the unique least fixpoint, identical to what the naive
// Gauss–Seidel iteration produced.
func (a *Analysis) solve() {
	nNodes := len(a.Graph.Nodes)
	nDefs := len(a.Defs)
	a.in = newBitsetSlab(nNodes, nDefs)
	a.out = newBitsetSlab(nNodes, nDefs)

	order := a.Graph.RPO()
	dirty := make([]bool, nNodes)
	for i := range dirty {
		dirty[i] = true
	}
	inScratch := newBitset(nDefs)
	outScratch := newBitset(nDefs)
	anyDirty := true
	for anyDirty {
		anyDirty = false
		for _, id := range order {
			if !dirty[id] {
				continue
			}
			dirty[id] = false
			n := a.Graph.Nodes[id]
			inScratch.clear()
			for _, p := range n.Preds {
				inScratch.or(a.out[p])
			}
			copy(outScratch, inScratch)
			outScratch.andNot(a.kill[id])
			outScratch.or(a.gen[id])
			if !inScratch.equal(a.in[id]) {
				copy(a.in[id], inScratch)
			}
			if !outScratch.equal(a.out[id]) {
				copy(a.out[id], outScratch)
				for _, s := range n.Succs {
					if !dirty[s] {
						dirty[s] = true
						anyDirty = true
					}
				}
			}
		}
	}
}

// ReachingDefs returns the definitions of v reaching the entry of statement
// s. Returns nil if s has no CFG node.
func (a *Analysis) ReachingDefs(s il.Stmt, v il.VarID) []*Def {
	n, ok := a.Graph.NodeOf[s]
	if !ok {
		return nil
	}
	return a.reachingAt(n, v)
}

func (a *Analysis) reachingAt(n *cfg.Node, v il.VarID) []*Def {
	var out []*Def
	a.forEachReachingAt(n, v, func(d *Def) { out = append(out, d) })
	return out
}

// ForEachReachingDef calls fn for every definition of v reaching the entry
// of s, in def-ID order, without materializing a slice.
func (a *Analysis) ForEachReachingDef(s il.Stmt, v il.VarID, fn func(*Def)) {
	if n, ok := a.Graph.NodeOf[s]; ok {
		a.forEachReachingAt(n, v, fn)
	}
}

// forEachReachingAt intersects the node's reaching set with the variable's
// def mask word-by-word instead of probing every def of v bit-by-bit.
func (a *Analysis) forEachReachingAt(n *cfg.Node, v il.VarID, fn func(*Def)) {
	mask := a.maskOf(v)
	in := a.in[n.ID]
	words := len(mask)
	if len(in) < words {
		words = len(in)
	}
	for w := 0; w < words; w++ {
		word := mask[w] & in[w]
		for word != 0 {
			fn(a.Defs[w*64+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
}

// maskOf returns (building lazily) the bitset of v's def IDs.
func (a *Analysis) maskOf(v il.VarID) bitset {
	if m, ok := a.defMask[v]; ok {
		return m
	}
	if a.defMask == nil {
		a.defMask = map[il.VarID]bitset{}
	}
	m := newBitset(len(a.Defs))
	for _, d := range a.defsOf[v] {
		m.set(d.ID)
	}
	a.defMask[v] = m
	return m
}

// UniqueDef returns the single unambiguous definition of v reaching s, or
// nil if there are several, none, or only ambiguous ones.
func (a *Analysis) UniqueDef(s il.Stmt, v il.VarID) *Def {
	defs := a.ReachingDefs(s, v)
	if len(defs) != 1 || defs[0].Ambiguous {
		return nil
	}
	return defs[0]
}

// DefsInside returns the definitions of v whose node's statement is in the
// given set.
func (a *Analysis) DefsInside(v il.VarID, set map[il.Stmt]bool) []*Def {
	var out []*Def
	for _, d := range a.defsOf[v] {
		if d.Node.Stmt != nil && set[d.Node.Stmt] {
			out = append(out, d)
		}
	}
	return out
}

// DefsOf returns all definitions of v.
func (a *Analysis) DefsOf(v il.VarID) []*Def { return a.defsOf[v] }

// SpliceWhileConversion patches the analysis in place after while→DO
// conversion replaced w with d (same body statements, fresh dummy IV):
// the §5.2 incremental use-def reconstruction, instead of a full re-solve.
// The while's condition node becomes the DO node (head and latch merged),
// one definition of the dummy IV is appended to the chains, and its
// reaching bit is flowed forward along successor edges — the dummy is
// fresh, so the new def kills nothing and is killed nowhere.
//
// The patched analysis answers the conversion queries (NodeOf, EntersBody,
// DefsInside) exactly as a rebuilt one would; it deliberately omits the
// dummy's synthetic entry definition, so it must not outlive the
// conversion pass (UniqueDef on the dummy would be over-precise).
// Returns false when w has no node; the caller falls back to Analyze.
func (a *Analysis) SpliceWhileConversion(w *il.While, d *il.DoLoop) bool {
	n, ok := a.Graph.NodeOf[w]
	if !ok {
		return false
	}
	delete(a.Graph.NodeOf, w)
	a.Graph.NodeOf[d] = n
	n.Stmt = d
	n.IVDef = d.IV

	def := a.addDef(n, d.IV, false, false)
	a.defsAt[n.ID] = append(a.defsAt[n.ID], def)
	delete(a.defMask, d.IV)

	nDefs := len(a.Defs)
	a.gen[n.ID] = growTo(a.gen[n.ID], nDefs)
	a.gen[n.ID].set(def.ID)
	a.out[n.ID] = growTo(a.out[n.ID], nDefs)
	a.out[n.ID].set(def.ID)
	work := []int{n.ID}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range a.Graph.Nodes[id].Succs {
			a.in[s] = growTo(a.in[s], nDefs)
			if !a.in[s].get(def.ID) {
				a.in[s].set(def.ID)
				a.out[s] = growTo(a.out[s], nDefs)
				a.out[s].set(def.ID)
				work = append(work, s)
			}
		}
	}
	return true
}

// growTo widens b to hold at least width bits. The slab sub-slices are
// capped, so growing one reallocates it rather than clobbering a neighbor.
func growTo(b bitset, width int) bitset {
	words := (width + 63) / 64
	for len(b) < words {
		b = append(b, 0)
	}
	return b
}

// UsedVars returns the variables read by statement s (in its expressions;
// a scalar assignment destination is not a use, but a store's address is).
func UsedVars(s il.Stmt) []il.VarID {
	seen := map[il.VarID]bool{}
	var order []il.VarID
	add := func(e il.Expr) {
		il.WalkExpr(e, func(x il.Expr) bool {
			switch n := x.(type) {
			case *il.VarRef:
				if !seen[n.ID] {
					seen[n.ID] = true
					order = append(order, n.ID)
				}
			case *il.AddrOf:
				if !seen[n.ID] {
					seen[n.ID] = true
					order = append(order, n.ID)
				}
			}
			return true
		})
	}
	if as, ok := s.(*il.Assign); ok {
		if ld, isStore := as.Dst.(*il.Load); isStore {
			add(ld.Addr)
		}
		add(as.Src)
		return order
	}
	il.StmtExprs(s, add)
	return order
}

// ---------------------------------------------------------------- liveness

// Liveness holds live-variable sets per CFG node.
type Liveness struct {
	Graph *cfg.Graph
	// liveOut[n] is the set of variables live at n's exit.
	liveOut []bitset
	nVars   int
}

// LiveOut reports whether v is live after statement s.
func (lv *Liveness) LiveOut(s il.Stmt, v il.VarID) bool {
	n, ok := lv.Graph.NodeOf[s]
	if !ok {
		return true // unknown statements stay conservative
	}
	return lv.liveOut[n.ID].get(int(v))
}

// ComputeLiveness runs backward live-variable analysis. Global, static and
// address-taken variables are treated as live at procedure exit.
func ComputeLiveness(p *il.Proc, g *cfg.Graph) *Liveness {
	nVars := len(p.Vars)
	nNodes := len(g.Nodes)
	use := make([]bitset, nNodes)
	def := make([]bitset, nNodes)
	for id, n := range g.Nodes {
		use[id] = newBitset(nVars)
		def[id] = newBitset(nVars)
		if n.IVDef != il.NoVar {
			def[id].set(int(n.IVDef))
		}
		if n.Stmt == nil {
			continue
		}
		for _, v := range UsedVars(n.Stmt) {
			use[id].set(int(v))
		}
		if dv := il.DefinedVar(n.Stmt); dv != il.NoVar {
			def[id].set(int(dv))
		}
	}
	// Variables observable after return.
	exitLive := newBitset(nVars)
	for i := range p.Vars {
		v := &p.Vars[i]
		if v.AddrTaken || v.Class == il.ClassGlobal || v.Class == il.ClassStatic {
			exitLive.set(i)
		}
	}

	// Backward worklist over postorder (successors-first), with the same
	// reused-scratch scheme as the forward solver: no per-sweep bitset
	// allocations, and converged regions are skipped.
	liveIn := newBitsetSlab(nNodes, nVars)
	liveOut := newBitsetSlab(nNodes, nVars)
	copy(liveOut[g.Exit], exitLive)
	copy(liveIn[g.Exit], exitLive)

	order := g.RPO()
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	dirty := make([]bool, nNodes)
	for i := range dirty {
		dirty[i] = true
	}
	outScratch := newBitset(nVars)
	inScratch := newBitset(nVars)
	anyDirty := true
	for anyDirty {
		anyDirty = false
		for _, id := range order {
			if !dirty[id] {
				continue
			}
			dirty[id] = false
			n := g.Nodes[id]
			outScratch.clear()
			if id == g.Exit {
				outScratch.or(exitLive)
			}
			for _, s := range n.Succs {
				outScratch.or(liveIn[s])
			}
			copy(inScratch, outScratch)
			inScratch.andNot(def[id])
			inScratch.or(use[id])
			if !outScratch.equal(liveOut[id]) {
				copy(liveOut[id], outScratch)
			}
			if !inScratch.equal(liveIn[id]) {
				copy(liveIn[id], inScratch)
				for _, p := range n.Preds {
					if !dirty[p] {
						dirty[p] = true
						anyDirty = true
					}
				}
			}
		}
	}
	return &Liveness{Graph: g, liveOut: liveOut, nVars: nVars}
}

// ---------------------------------------------------------------- bitsets

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// forEach calls fn for every set bit, in ascending order, skipping zero
// words and using TrailingZeros64 within non-zero ones.
func (b bitset) forEach(fn func(int)) {
	for w, word := range b {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// newBitsetSlab carves n bitsets of the given width out of one backing
// allocation. The sub-slices are capped (three-index), so a later append
// reallocates the grown set instead of clobbering its neighbor.
func newBitsetSlab(n, width int) []bitset {
	words := (width + 63) / 64
	backing := make([]uint64, n*words)
	out := make([]bitset, n)
	for i := range out {
		out[i] = bitset(backing[i*words : (i+1)*words : (i+1)*words])
	}
	return out
}

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
